// GENERATED FILE -- do not edit by hand.
//
// Single-source determinism pins, rendered from tools/contracts.json by
// `tools/wheels_contract.py --fix-pins`. The wheels-contract analyzer
// (pins-stale rule) fails CI whenever this header and the registry
// disagree, so a deliberate golden/schema bump is a one-line registry
// edit plus a regeneration -- never a hunt for scattered literals.
#pragma once

#include <cstdint>
#include <string_view>

namespace wheels::contract {

// Dataset container format (src/dataset/serialize.h must agree; the
// schema-pin rule cross-checks).
inline constexpr std::uint32_t kSchemaVersion = 2;
inline constexpr std::string_view kDatasetMagic = "WDS1";

// The golden campaign: FNV-1a checksum of encode(CampaignResult) for
// this seed/stride pair, pinning every stochastic process in the
// pipeline. Regenerate deliberately via the registry, never by editing
// this file.
inline constexpr std::uint64_t kGoldenSeed = 42;
inline constexpr int kGoldenStride = 64;
inline constexpr std::uint64_t kGoldenCampaignChecksum =
    0xbba11b2dda6d2b08ULL;

}  // namespace wheels::contract
