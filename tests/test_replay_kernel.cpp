// Equivalence proofs for the batched replay kernel.
//
// Two layers of evidence that WHEELS_REPLAY_KERNEL is an execution knob
// and not a model change: (1) unit sweeps pin every derived table and
// cached mirror in src/radio/kernel.* to the scalar function it was
// hoisted from, including the exact CQI/MCS decision boundaries; (2)
// whole-campaign runs over every library scenario must produce
// byte-identical datasets with the kernel on and off, and (kernel on)
// across jobs counts -- the paper-default run additionally re-proves the
// golden seed-42 stride-64 checksum.
#include <gtest/gtest.h>

#include <string>

#include "contract_pins.h"
#include "dataset/serialize.h"
#include "radio/band.h"
#include "radio/kernel.h"
#include "radio/mcs.h"
#include "radio/pathloss.h"
#include "radio/phy_rate.h"
#include "scenario/spec.h"
#include "trip/campaign.h"

namespace wheels::radio {
namespace {

TEST(ReplayKernelTable, CqiTableMatchesScalarAtBoundaries) {
  const DerivedPlan dp = derive_plan(default_band_plan());
  // Exactly at, just below and just above every decode threshold: the
  // counting lookup and the scalar max-scan must agree on the >= edge.
  for (int c = 1; c <= kMaxCqi; ++c) {
    const double t = cqi_sinr_threshold(c).value;
    for (double s : {t - 1e-9, t, t + 1e-9}) {
      EXPECT_EQ(cqi_from_sinr_table(dp, s), cqi_from_sinr(Db{s}))
          << "cqi " << c << " sinr " << s;
    }
  }
  // Dense sweep across and beyond the table's range.
  for (double s = -30.0; s <= 60.0; s += 0.0625) {
    ASSERT_EQ(cqi_from_sinr_table(dp, s), cqi_from_sinr(Db{s})) << s;
  }
}

TEST(ReplayKernelTable, McsTablesMatchScalar) {
  const DerivedPlan dp = derive_plan(default_band_plan());
  for (int c = 0; c <= kMaxCqi; ++c) {
    EXPECT_EQ(dp.mcs_for_cqi[static_cast<std::size_t>(c)], mcs_from_cqi(c));
  }
  for (int m = 0; m <= kMaxMcs; ++m) {
    EXPECT_EQ(dp.mcs_efficiency[static_cast<std::size_t>(m)],
              mcs_spectral_efficiency(m));
    EXPECT_EQ(dp.mcs_threshold_db[static_cast<std::size_t>(m)],
              mcs_sinr_threshold(m).value);
  }
}

TEST(ReplayKernelTable, PathlossMatchesScalar) {
  const DerivedPlan dp = derive_plan(default_band_plan());
  for (Tech tech : kAllTechs) {
    const BandProfile& band = default_band_plan().profile(tech);
    const BandDerived& bd = dp.band(tech);
    for (Environment env :
         {Environment::Urban, Environment::Suburban, Environment::Rural}) {
      // Includes distances below the clamp reference.
      for (double d = 1.0; d <= 30'000.0; d *= 1.37) {
        ASSERT_EQ(cached_pathloss_db(bd, env, d),
                  pathloss(band, env, Meters{d}).value)
            << to_string(tech) << " d=" << d;
      }
    }
  }
}

TEST(ReplayKernelTable, PhyRateMatchesScalar) {
  const DerivedPlan dp = derive_plan(default_band_plan());
  for (Tech tech : kAllTechs) {
    const BandProfile& band = default_band_plan().profile(tech);
    const BandDerived& bd = dp.band(tech);
    for (Direction dir : {Direction::Downlink, Direction::Uplink}) {
      for (int cc = 1; cc <= 4; ++cc) {
        for (double prb : {0.02, 0.3, 1.0}) {
          for (double s = -12.0; s <= 35.0; s += 0.13) {
            const PhyRateResult a =
                compute_phy_rate(band, dir, Db{s}, cc, prb);
            const PhyRateResult b =
                cached_phy_rate(dp, bd, dir, Db{s}, cc, prb);
            ASSERT_EQ(a.rate.value, b.rate.value)
                << to_string(tech) << " sinr " << s << " cc " << cc;
            ASSERT_EQ(a.mcs, b.mcs);
            ASSERT_EQ(a.bler, b.bler);
            ASSERT_EQ(a.num_cc, b.num_cc);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace wheels::radio

namespace wheels::trip {
namespace {

std::string campaign_bytes(const scenario::ScenarioSpec& spec, int stride,
                           bool kernel, int jobs) {
  Campaign c(CampaignConfig::from_scenario(spec, stride));
  c.set_replay_kernel(kernel);
  c.set_jobs(jobs);
  return dataset::encode(c.run());
}

void expect_kernel_matches_scalar(const std::string& name, int stride) {
  const scenario::ScenarioSpec spec = scenario::load_scenario(name);
  const std::string scalar = campaign_bytes(spec, stride, false, 1);
  const std::string kernel = campaign_bytes(spec, stride, true, 1);
  ASSERT_EQ(scalar.size(), kernel.size()) << name;
  EXPECT_TRUE(scalar == kernel)
      << "scenario " << name
      << " diverged between the scalar and batched replay paths";
}

TEST(ReplayKernel, PaperDefaultMatchesScalarAndGolden) {
  const scenario::ScenarioSpec spec = scenario::paper_default();
  const std::string scalar =
      campaign_bytes(spec, contract::kGoldenStride, false, 1);
  const std::string kernel =
      campaign_bytes(spec, contract::kGoldenStride, true, 1);
  EXPECT_TRUE(scalar == kernel)
      << "paper-default diverged between scalar and batched replay";
  EXPECT_EQ(dataset::fnv1a(kernel), contract::kGoldenCampaignChecksum);
}

TEST(ReplayKernel, UrbanLoopMatchesScalar) {
  expect_kernel_matches_scalar("urban-loop", 16);
}

TEST(ReplayKernel, CommuterCorridorMatchesScalar) {
  expect_kernel_matches_scalar("commuter-corridor", 32);
}

TEST(ReplayKernel, HighwayConvoyMatchesScalar) {
  expect_kernel_matches_scalar("highway-convoy", 64);
}

TEST(ReplayKernel, EuBandPlanMatchesScalar) {
  expect_kernel_matches_scalar("eu-band-plan", 32);
}

TEST(ReplayKernel, DegradedCoverageStormMatchesScalar) {
  expect_kernel_matches_scalar("degraded-coverage-storm", 32);
}

TEST(ReplayKernel, MatchesAcrossJobs) {
  // Kernel on, jobs 1 vs 4: the batched path must stay independent of the
  // worker count (the tsan-parallel preset runs this under ThreadSanitizer).
  const scenario::ScenarioSpec spec = scenario::load_scenario("urban-loop");
  const std::string jobs1 = campaign_bytes(spec, 16, true, 1);
  const std::string jobs4 = campaign_bytes(spec, 16, true, 4);
  EXPECT_TRUE(jobs1 == jobs4)
      << "batched replay diverged between jobs=1 and jobs=4";
}

}  // namespace
}  // namespace wheels::trip
