// Integration: a strided app campaign end-to-end against the paper's
// qualitative QoE findings (§7).
#include <gtest/gtest.h>

#include "apps/app_campaign.h"
#include "core/stats.h"

namespace wheels::apps {
namespace {

class AppsIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AppCampaignConfig cfg;
    cfg.seed = 20250707;
    cfg.cycle_stride = 16;
    campaign_ = new AppCampaign(cfg);
    result_ = new AppCampaignResult(campaign_->run());
  }
  static void TearDownTestSuite() {
    delete result_;
    delete campaign_;
    result_ = nullptr;
    campaign_ = nullptr;
  }

  static AppCampaign* campaign_;
  static AppCampaignResult* result_;
};

AppCampaign* AppsIntegration::campaign_ = nullptr;
AppCampaignResult* AppsIntegration::result_ = nullptr;

TEST_F(AppsIntegration, EveryAppKindHasRuns) {
  for (auto op : ran::kAllOperators) {
    int counts[4] = {};
    for (const auto& r : result_->for_op(op)) {
      ++counts[static_cast<int>(r.app)];
      EXPECT_GE(r.handovers, 0);
      EXPECT_GE(r.frac_high_speed_5g, 0.0);
      EXPECT_LE(r.frac_high_speed_5g, 1.0);
    }
    EXPECT_GT(counts[0], 10) << "AR";
    EXPECT_GT(counts[1], 10) << "CAV";
    EXPECT_GT(counts[2], 5) << "video";
    EXPECT_GT(counts[3], 5) << "gaming";
  }
}

TEST_F(AppsIntegration, ArDrivingWorseThanBestStatic) {
  const auto sb =
      campaign_->run_static_baseline(ran::OperatorId::Verizon);
  double best_static_e2e = 1e18;
  double best_static_map = 0.0;
  for (const auto& r : sb) {
    if (r.app == AppKind::Ar && r.compression && r.mean_e2e_ms > 0.0) {
      best_static_e2e = std::min(best_static_e2e, r.mean_e2e_ms);
      best_static_map = std::max(best_static_map, r.map);
    }
  }
  // Paper: best static ~68 ms, mAP ~36.5.
  EXPECT_LT(best_static_e2e, 110.0);
  EXPECT_GT(best_static_map, 32.0);

  std::vector<double> driving_e2e;
  for (const auto& r : result_->for_op(ran::OperatorId::Verizon)) {
    if (r.app == AppKind::Ar && r.compression && r.median_e2e_ms > 0.0) {
      driving_e2e.push_back(r.median_e2e_ms);
    }
  }
  ASSERT_GT(driving_e2e.size(), 10u);
  EXPECT_GT(median(driving_e2e), best_static_e2e * 1.5);
}

TEST_F(AppsIntegration, CompressionCutsCavLatencyManyFold) {
  // Paper: point-cloud compression reduces the CAV median E2E ~8x.
  for (auto op : ran::kAllOperators) {
    std::vector<double> with, without;
    for (const auto& r : result_->for_op(op)) {
      if (r.app != AppKind::Cav || r.median_e2e_ms <= 0.0) continue;
      (r.compression ? with : without).push_back(r.median_e2e_ms);
    }
    ASSERT_GT(with.size(), 10u);
    ASSERT_GT(without.size(), 10u);
    EXPECT_GT(median(without), median(with) * 4.0) << to_string(op);
  }
}

TEST_F(AppsIntegration, CavCannotMeet100msBudget) {
  // Paper: the CAV pipeline never achieves 100 ms E2E while driving.
  std::vector<double> e2e;
  for (auto op : ran::kAllOperators) {
    for (const auto& r : result_->for_op(op)) {
      if (r.app == AppKind::Cav && r.compression && r.median_e2e_ms > 0.0) {
        e2e.push_back(r.median_e2e_ms);
      }
    }
  }
  ASSERT_FALSE(e2e.empty());
  EXPECT_GT(*std::min_element(e2e.begin(), e2e.end()), 100.0);
}

TEST_F(AppsIntegration, ArMapDegradesWhileDriving) {
  std::vector<double> maps;
  for (const auto& r : result_->for_op(ran::OperatorId::Verizon)) {
    if (r.app == AppKind::Ar && r.compression && !r.e2e_ms.empty()) {
      maps.push_back(r.map);
    }
  }
  ASSERT_GT(maps.size(), 10u);
  const double med = median(maps);
  // Paper: driving mAP ~30 vs 36.5 static; never above the table maximum.
  EXPECT_LT(med, 36.0);
  EXPECT_GT(med, 15.0);
}

TEST_F(AppsIntegration, VideoQoeSuffersWhileDriving) {
  for (auto op : ran::kAllOperators) {
    std::vector<double> qoe;
    int negative = 0;
    for (const auto& r : result_->for_op(op)) {
      if (r.app != AppKind::Video) continue;
      qoe.push_back(r.qoe);
      if (r.qoe < 0.0) ++negative;
      EXPECT_GE(r.rebuffer_fraction, 0.0);
      EXPECT_LE(r.rebuffer_fraction, 1.0);
    }
    ASSERT_GT(qoe.size(), 5u);
    // Paper: ~40% of runs have negative QoE; median way below static 96.
    EXPECT_GT(static_cast<double>(negative) / static_cast<double>(qoe.size()),
              0.2)
        << to_string(op);
    EXPECT_LT(median(qoe), 40.0);
  }
}

TEST_F(AppsIntegration, VideoBestStaticNearTheoreticalMax) {
  const auto sb =
      campaign_->run_static_baseline(ran::OperatorId::Verizon);
  double best = -1e18;
  for (const auto& r : sb) {
    if (r.app == AppKind::Video) best = std::max(best, r.qoe);
  }
  // Paper: 96.29 with a theoretical best of 100.
  EXPECT_GT(best, 80.0);
  EXPECT_LE(best, 100.0);
}

TEST_F(AppsIntegration, GamingBitrateCollapsesVsStatic) {
  const auto sb =
      campaign_->run_static_baseline(ran::OperatorId::Verizon);
  double best_static = 0.0;
  for (const auto& r : sb) {
    if (r.app == AppKind::Gaming) {
      best_static = std::max(best_static, r.gaming_bitrate_mbps);
    }
  }
  EXPECT_GT(best_static, 80.0);  // paper: 98.5 Mbps

  std::vector<double> driving;
  for (const auto& r : result_->for_op(ran::OperatorId::Verizon)) {
    if (r.app == AppKind::Gaming) driving.push_back(r.gaming_bitrate_mbps);
  }
  ASSERT_GT(driving.size(), 5u);
  EXPECT_LT(median(driving), best_static * 0.4);  // paper: 17.5 vs 98.5
}

TEST_F(AppsIntegration, GamingDefendsFrameRate) {
  // Paper: the platform keeps drops low (median ~1.6%) at the cost of
  // latency; drops can still spike into the double digits.
  std::vector<double> drops;
  for (auto op : ran::kAllOperators) {
    for (const auto& r : result_->for_op(op)) {
      if (r.app == AppKind::Gaming) drops.push_back(r.frame_drop_rate);
    }
  }
  ASSERT_GT(drops.size(), 20u);
  EXPECT_LT(median(drops), 0.06);
  EXPECT_GT(percentile(drops, 100.0), 0.03);
}

TEST_F(AppsIntegration, HandoversDoNotDecideAppQoe) {
  // §7: no strong correlation between per-run handover count and QoE.
  std::vector<double> hos, qoe;
  for (auto op : ran::kAllOperators) {
    for (const auto& r : result_->for_op(op)) {
      if (r.app != AppKind::Video) continue;
      hos.push_back(static_cast<double>(r.handovers));
      qoe.push_back(r.qoe);
    }
  }
  ASSERT_GT(hos.size(), 20u);
  EXPECT_LT(std::abs(pearson(hos, qoe)), 0.45);
}

TEST_F(AppsIntegration, EdgeRunsExistForVerizonOnly) {
  bool verizon_edge = false;
  for (const auto& r : result_->for_op(ran::OperatorId::Verizon)) {
    if (r.server == net::ServerKind::Edge) verizon_edge = true;
  }
  EXPECT_TRUE(verizon_edge);
  for (auto op : {ran::OperatorId::TMobile, ran::OperatorId::ATT}) {
    for (const auto& r : result_->for_op(op)) {
      EXPECT_EQ(r.server, net::ServerKind::Cloud);
    }
  }
}

}  // namespace
}  // namespace wheels::apps
