#include <gtest/gtest.h>

#include "analysis/handover_analysis.h"
#include "analysis/longterm.h"

namespace wheels::analysis {
namespace {

using trip::TestSummary;
using trip::TestType;

TestSummary make_test(TestType type, double start_ms, double dur_ms,
                      double dist_miles, int handovers, double mean = 20.0,
                      double stddev = 5.0, double hs5g = 0.0) {
  TestSummary t;
  t.test = type;
  t.start = SimTime{start_ms};
  t.duration = Millis{dur_ms};
  t.distance = Meters::from_miles(dist_miles);
  t.handovers = handovers;
  t.mean = mean;
  t.stddev = stddev;
  t.samples = 60;
  t.frac_high_speed_5g = hs5g;
  return t;
}

ran::HandoverRecord ho(double t_ms, double dur,
                       radio::Tech from = radio::Tech::LTE,
                       radio::Tech to = radio::Tech::LTE) {
  ran::HandoverRecord h;
  h.time = SimTime{t_ms};
  h.duration = Millis{dur};
  h.from_tech = from;
  h.to_tech = to;
  return h;
}

TEST(HandoverStats, PerMileNormalization) {
  std::vector<TestSummary> tests = {
      make_test(TestType::DownlinkBulk, 0.0, 30'000.0, 0.5, 2),
      make_test(TestType::DownlinkBulk, 60'000.0, 30'000.0, 1.0, 3),
      make_test(TestType::UplinkBulk, 120'000.0, 30'000.0, 0.5, 8),
  };
  const auto dl = handovers_per_mile(tests, TestType::DownlinkBulk);
  ASSERT_EQ(dl.size(), 2u);
  EXPECT_DOUBLE_EQ(dl[0], 4.0);
  EXPECT_DOUBLE_EQ(dl[1], 3.0);
  const auto ul = handovers_per_mile(tests, TestType::UplinkBulk);
  ASSERT_EQ(ul.size(), 1u);
  EXPECT_DOUBLE_EQ(ul[0], 16.0);
}

TEST(HandoverStats, StationaryTestsExcluded) {
  std::vector<TestSummary> tests = {
      make_test(TestType::DownlinkBulk, 0.0, 30'000.0, 0.01, 1)};
  EXPECT_TRUE(handovers_per_mile(tests, TestType::DownlinkBulk).empty());
}

TEST(HandoverStats, DurationsOnlyFromMatchingTests) {
  std::vector<TestSummary> tests = {
      make_test(TestType::DownlinkBulk, 0.0, 30'000.0, 0.5, 1),
      make_test(TestType::UplinkBulk, 40'000.0, 30'000.0, 0.5, 1),
  };
  std::vector<ran::HandoverRecord> hos = {
      ho(10'000.0, 55.0),   // inside DL test
      ho(35'000.0, 66.0),   // in the gap: counted nowhere
      ho(50'000.0, 77.0),   // inside UL test
  };
  const auto dl = handover_durations(tests, hos, TestType::DownlinkBulk);
  ASSERT_EQ(dl.size(), 1u);
  EXPECT_DOUBLE_EQ(dl[0], 55.0);
  const auto ul = handover_durations(tests, hos, TestType::UplinkBulk);
  ASSERT_EQ(ul.size(), 1u);
  EXPECT_DOUBLE_EQ(ul[0], 77.0);
}

// Build a KPI series for one test with an HO in the middle window.
std::vector<trip::KpiSample> series_with_ho(
    const std::vector<double>& tputs, int ho_window, int test_id = 1) {
  std::vector<trip::KpiSample> v;
  for (std::size_t i = 0; i < tputs.size(); ++i) {
    trip::KpiSample s;
    s.test = TestType::DownlinkBulk;
    s.test_id = test_id;
    s.time = SimTime{(static_cast<double>(i) + 1.0) * 500.0};
    s.tput_mbps = tputs[i];
    s.handovers = static_cast<int>(i) == ho_window ? 1 : 0;
    s.connected = true;
    v.push_back(s);
  }
  return v;
}

TEST(HandoverImpact, DeltaMath) {
  // T1..T5 = 10, 12, 4, 14, 16 with the HO in T3.
  const auto samples = series_with_ho({10.0, 12.0, 4.0, 14.0, 16.0}, 2);
  std::vector<ran::HandoverRecord> hos = {
      ho(1'100.0, 60.0, radio::Tech::NR_MID, radio::Tech::LTE_A)};
  const auto impacts =
      handover_impacts(samples, hos, TestType::DownlinkBulk);
  ASSERT_EQ(impacts.size(), 1u);
  EXPECT_DOUBLE_EQ(impacts[0].delta_t1, 4.0 - (12.0 + 14.0) / 2.0);
  EXPECT_DOUBLE_EQ(impacts[0].delta_t2,
                   (14.0 + 16.0) / 2.0 - (10.0 + 12.0) / 2.0);
  EXPECT_EQ(impacts[0].kind, radio::HandoverKind::FiveToFour);
}

TEST(HandoverImpact, RequiresCleanNeighbourhood) {
  // HOs in adjacent windows: no clean quintuple, no impact samples.
  auto samples = series_with_ho({10, 12, 4, 14, 16}, 2);
  samples[3].handovers = 1;
  EXPECT_TRUE(
      handover_impacts(samples, {}, TestType::DownlinkBulk).empty());
}

TEST(HandoverImpact, DoesNotCrossTestBoundaries) {
  auto samples = series_with_ho({10, 12, 4, 14, 16}, 2);
  samples[4].test_id = 2;  // the quintuple spans two tests
  EXPECT_TRUE(
      handover_impacts(samples, {}, TestType::DownlinkBulk).empty());
}

TEST(HandoverImpact, EdgesOfSeriesSkipped) {
  // HO in the first window: no two windows before it.
  const auto samples = series_with_ho({4.0, 12.0, 10.0, 14.0, 16.0}, 0);
  EXPECT_TRUE(
      handover_impacts(samples, {}, TestType::DownlinkBulk).empty());
}

TEST(Longterm, TestMeansAndCv) {
  std::vector<TestSummary> tests = {
      make_test(TestType::DownlinkBulk, 0.0, 30'000.0, 0.5, 0, 40.0, 20.0),
      make_test(TestType::DownlinkBulk, 0.0, 30'000.0, 0.5, 0, 10.0, 1.0),
  };
  const auto means = test_means(tests, TestType::DownlinkBulk);
  EXPECT_EQ(means, (std::vector<double>{40.0, 10.0}));
  const auto cv = test_cv_percent(tests, TestType::DownlinkBulk);
  ASSERT_EQ(cv.size(), 2u);
  EXPECT_DOUBLE_EQ(cv[0], 50.0);
  EXPECT_DOUBLE_EQ(cv[1], 10.0);
}

TEST(Longterm, Hs5gBuckets) {
  std::vector<TestSummary> tests;
  for (int i = 0; i < 8; ++i) {
    tests.push_back(make_test(TestType::DownlinkBulk, 0.0, 30'000.0, 0.5,
                              0, i < 4 ? 10.0 : 100.0, 1.0,
                              i < 4 ? 0.1 : 0.9));
  }
  const auto buckets = by_hs5g_share(tests, TestType::DownlinkBulk, 4);
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0].count, 4u);
  EXPECT_NEAR(buckets[0].median, 10.0, 1e-9);
  EXPECT_EQ(buckets[3].count, 4u);
  EXPECT_NEAR(buckets[3].median, 100.0, 1e-9);
  EXPECT_EQ(buckets[1].count, 0u);
}

TEST(Longterm, OoklaReferenceTable) {
  const auto rows = ookla_q3_2022();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_STREQ(rows[0].op, "Verizon");
  EXPECT_NEAR(rows[1].dl_mbps, 116.14, 1e-9);
  EXPECT_NEAR(rows[2].rtt_ms, 61.0, 1e-9);
}

}  // namespace
}  // namespace wheels::analysis
