#include <gtest/gtest.h>

#include <tuple>

#include "radio/link_budget.h"
#include "radio/phy_rate.h"

namespace wheels::radio {
namespace {

class PhyRateProperties
    : public ::testing::TestWithParam<std::tuple<Tech, Direction>> {};

TEST_P(PhyRateProperties, ZeroBelowDecodeRange) {
  const auto [tech, dir] = GetParam();
  const auto r = compute_phy_rate(tech, dir, Db{-15.0}, 1, 1.0);
  EXPECT_DOUBLE_EQ(r.rate.value, 0.0);
  EXPECT_EQ(r.mcs, 0);
}

TEST_P(PhyRateProperties, MonotoneInSinr) {
  const auto [tech, dir] = GetParam();
  double prev = -1.0;
  for (double s = -10.0; s <= 40.0; s += 1.0) {
    const double rate = compute_phy_rate(tech, dir, Db{s}, 1, 1.0).rate.value;
    EXPECT_GE(rate, prev - 1e-9) << "sinr=" << s;
    prev = rate;
  }
}

TEST_P(PhyRateProperties, MonotoneInCc) {
  const auto [tech, dir] = GetParam();
  double prev = 0.0;
  const BandProfile& p = band_profile(tech);
  const int max_cc = dir == Direction::Downlink ? p.max_cc_dl : p.max_cc_ul;
  for (int cc = 1; cc <= max_cc; ++cc) {
    const double rate =
        compute_phy_rate(tech, dir, Db{15.0}, cc, 0.3).rate.value;
    EXPECT_GE(rate, prev - 1e-9) << "cc=" << cc;
    prev = rate;
  }
}

TEST_P(PhyRateProperties, ScalesWithPrbFraction) {
  const auto [tech, dir] = GetParam();
  const double half =
      compute_phy_rate(tech, dir, Db{15.0}, 1, 0.5).rate.value;
  const double full =
      compute_phy_rate(tech, dir, Db{15.0}, 1, 1.0).rate.value;
  if (full < ue_peak_rate(tech, dir).value - 1e-6) {
    EXPECT_NEAR(half, full / 2.0, full * 0.01);
  } else {
    EXPECT_LE(half, full);
  }
}

TEST_P(PhyRateProperties, NeverExceedsUePeak) {
  const auto [tech, dir] = GetParam();
  const auto r = compute_phy_rate(tech, dir, Db{60.0}, 8, 1.0);
  EXPECT_LE(r.rate.value, ue_peak_rate(tech, dir).value + 1e-9);
}

TEST_P(PhyRateProperties, CcClampedToProfile) {
  const auto [tech, dir] = GetParam();
  const BandProfile& p = band_profile(tech);
  const int max_cc = dir == Direction::Downlink ? p.max_cc_dl : p.max_cc_ul;
  const auto r = compute_phy_rate(tech, dir, Db{20.0}, 99, 1.0);
  EXPECT_LE(r.num_cc, max_cc);
  const auto r0 = compute_phy_rate(tech, dir, Db{20.0}, 0, 1.0);
  EXPECT_GE(r0.num_cc, 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllTechDir, PhyRateProperties,
    ::testing::Combine(::testing::ValuesIn(kAllTechs),
                       ::testing::Values(Direction::Downlink,
                                         Direction::Uplink)));

TEST(PhyRate, MmwavePeakNearUeCapability) {
  // Samsung S21 class: ~3.5 Gbps DL over 8CC mmWave at high SINR.
  const auto r =
      compute_phy_rate(Tech::NR_MMWAVE, Direction::Downlink, Db{35.0}, 8,
                       1.0);
  EXPECT_NEAR(r.rate.value, 3500.0, 1.0);
}

TEST(PhyRate, TechnologyOrderingAtGoodSinr) {
  // At the same SINR/PRB share, wider technologies are faster.
  const double lte =
      compute_phy_rate(Tech::LTE, Direction::Downlink, Db{20.0}, 1, 0.5)
          .rate.value;
  const double mid =
      compute_phy_rate(Tech::NR_MID, Direction::Downlink, Db{20.0}, 1, 0.5)
          .rate.value;
  const double mmw =
      compute_phy_rate(Tech::NR_MMWAVE, Direction::Downlink, Db{20.0}, 4,
                       0.5)
          .rate.value;
  EXPECT_LT(lte, mid);
  EXPECT_LT(mid, mmw);
}

TEST(PhyRate, ResidualBlerNearTargetAfterAdaptation) {
  // The 1 dB scheduler backoff should land the primary carrier's BLER in
  // the vicinity of the 10% operating point (quantization makes it vary).
  for (double s = 5.0; s <= 25.0; s += 2.0) {
    const auto r =
        compute_phy_rate(Tech::LTE_A, Direction::Downlink, Db{s}, 1, 1.0);
    EXPECT_LT(r.bler, 0.55) << "sinr=" << s;
  }
}

TEST(LinkBudget, RsrpDecreasesWithDistance) {
  ChannelState ch;
  double prev = 1e9;
  for (double d = 50.0; d <= 5'000.0; d *= 2.0) {
    const double r =
        rsrp(Tech::LTE_A, Environment::Suburban, Meters{d}, ch).value;
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(LinkBudget, RsrpInPlausibleRange) {
  ChannelState ch;
  // Near cell: strong; far: weak. Typical measured range -60..-125 dBm.
  const double near =
      rsrp(Tech::LTE_A, Environment::Urban, Meters{100.0}, ch).value;
  const double far =
      rsrp(Tech::LTE_A, Environment::Urban, Meters{3'000.0}, ch).value;
  EXPECT_GT(near, -85.0);
  EXPECT_LT(near, -35.0);
  EXPECT_GT(far, -135.0);
  EXPECT_LT(far, -90.0);
}

TEST(LinkBudget, ShadowingAndBlockageReduceRsrp) {
  ChannelState clean;
  ChannelState shadowed;
  shadowed.shadowing = Db{8.0};
  shadowed.blockage_loss = Db{25.0};
  const double a =
      rsrp(Tech::NR_MMWAVE, Environment::Urban, Meters{100.0}, clean).value;
  const double b =
      rsrp(Tech::NR_MMWAVE, Environment::Urban, Meters{100.0}, shadowed)
          .value;
  EXPECT_NEAR(a - b, 33.0, 1e-9);
}

TEST(LinkBudget, InterferenceMarginReducesSinr) {
  ChannelState ch;
  const double clean =
      sinr_downlink(Tech::NR_MID, Environment::Urban, Meters{500.0}, ch,
                    Db{0.0})
          .value;
  const double loaded =
      sinr_downlink(Tech::NR_MID, Environment::Urban, Meters{500.0}, ch,
                    Db{15.0})
          .value;
  EXPECT_NEAR(clean - loaded, 15.0, 1e-9);
}

TEST(LinkBudget, UplinkWeakerThanDownlinkAtRange) {
  // The UE's 23 dBm cannot match the BS at distance: UL SINR < DL SINR.
  ChannelState ch;
  for (Tech t : kAllTechs) {
    const double dl =
        sinr_downlink(t, Environment::Rural, Meters{2'000.0}, ch, Db{5.0})
            .value;
    const double ul =
        sinr_uplink(t, Environment::Rural, Meters{2'000.0}, ch, Db{5.0})
            .value;
    EXPECT_LT(ul, dl) << to_string(t);
  }
}

}  // namespace
}  // namespace wheels::radio
