// core/thread_pool: the primitives under the deterministic parallel
// engine. The contract tested here is exactly what the campaign relies on:
// submit returns results (and exceptions) through futures, a pool of one
// behaves like deferred inline execution, and parallel_for_each produces
// results that do not depend on worker scheduling.
#include "core/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace wheels {
namespace {

TEST(ThreadPool, SubmitReturnsValuesThroughFutures) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, SizeClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  auto f = pool.submit([] { return std::string("ran"); });
  EXPECT_EQ(f.get(), "ran");
}

TEST(ThreadPool, PoolOfOneMatchesInlineExecution) {
  // With a single worker, tasks run in submission order — the same
  // observable sequence as calling them inline.
  std::vector<int> inline_order;
  for (int i = 0; i < 16; ++i) inline_order.push_back(i);

  std::vector<int> pooled_order;
  {
    ThreadPool pool(1);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i) {
      futures.push_back(pool.submit([&pooled_order, i] {
        pooled_order.push_back(i);  // safe: one worker, ordered tasks
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(pooled_order, inline_order);
}

TEST(ThreadPool, ParallelForEachResultIndependentOfJobs) {
  // Each index writes only its own slot; every jobs value must produce the
  // same output vector regardless of scheduling.
  const std::size_t n = 100;
  std::vector<long> expected(n);
  for (std::size_t i = 0; i < n; ++i) {
    expected[i] = static_cast<long>(i) * 3 + 1;
  }
  for (int jobs : {1, 2, 4, 7}) {
    std::vector<long> got(n, -1);
    parallel_for_each(jobs, n,
                      [&](std::size_t i) { got[i] = expected[i]; });
    EXPECT_EQ(got, expected) << "jobs=" << jobs;
  }
}

TEST(ThreadPool, ParallelForEachRunsEveryIndexExactlyOnce) {
  const std::size_t n = 257;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_each(8, n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEachPropagatesFirstExceptionByIndex) {
  // Futures drain in index order, so the reported failure is the lowest
  // throwing index — deterministic across schedules.
  for (int jobs : {1, 4}) {
    try {
      parallel_for_each(jobs, std::size_t{10}, [](std::size_t i) {
        if (i == 3 || i == 8) {
          throw std::runtime_error("idx " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "idx 3") << "jobs=" << jobs;
    }
  }
}

TEST(ThreadPool, ParallelForEachInlineWhenSequential) {
  // jobs <= 1 must not spawn threads: the body observes the calling
  // thread's id.
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(3);
  parallel_for_each(1, seen.size(), [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ResolveJobs, ExplicitRequestWins) {
  EXPECT_EQ(resolve_jobs(3), 3);
  EXPECT_EQ(resolve_jobs(1), 1);
}

TEST(ResolveJobs, EnvFallbackAndMalformedValues) {
  // Not using WHEELS_JOBS from the ambient environment: pin it per case.
  ASSERT_EQ(setenv("WHEELS_JOBS", "2", 1), 0);
  EXPECT_EQ(resolve_jobs(), 2);
  EXPECT_EQ(resolve_jobs(3), 3);  // explicit still wins (3 <= the 4*hw cap)

  ASSERT_EQ(setenv("WHEELS_JOBS", "abc", 1), 0);
  EXPECT_EQ(resolve_jobs(), 1);  // malformed -> sequential
  ASSERT_EQ(setenv("WHEELS_JOBS", "0", 1), 0);
  EXPECT_EQ(resolve_jobs(), 1);
  ASSERT_EQ(setenv("WHEELS_JOBS", "-4", 1), 0);
  EXPECT_EQ(resolve_jobs(), 1);

  ASSERT_EQ(unsetenv("WHEELS_JOBS"), 0);
  EXPECT_EQ(resolve_jobs(), 1);
}

}  // namespace
}  // namespace wheels
