#pragma once
// Deliberately relies on the includer having pulled in <vector> first:
// compiled standalone this header must fail, which is exactly what the
// header_selfcheck gate exists to catch.
inline std::size_t bad_count(const std::vector<int>& v) { return v.size(); }
