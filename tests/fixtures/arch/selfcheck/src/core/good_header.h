#pragma once
#include <vector>
inline std::size_t good_count(const std::vector<int>& v) { return v.size(); }
