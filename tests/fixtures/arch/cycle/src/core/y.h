#pragma once
#include "core/x.h"
struct Y {
  int v = 1;
};
