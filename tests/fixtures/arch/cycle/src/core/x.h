#pragma once
#include "core/y.h"
struct X {
  int v = 0;
};
