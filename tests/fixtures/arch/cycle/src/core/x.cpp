#include "core/x.h"
int use_x() { return X{}.v; }
