#include "core/orphan.h"
int test_orphan() { return Orphan{}.v; }
