#pragma once
struct Waived {
  int v = 0;
};
