#pragma once
struct Orphan {
  int v = 0;
};
