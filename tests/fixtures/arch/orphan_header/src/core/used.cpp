#include "core/used.h"
int use_used() { return Used{}.v; }
