#pragma once
struct Used {
  int v = 0;
};
