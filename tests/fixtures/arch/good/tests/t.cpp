#include "radio/b.h"
int test_b() { return B{}.a.x; }
