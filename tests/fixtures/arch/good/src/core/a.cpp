#include "core/a.h"
int use_a() { return A{}.x; }
