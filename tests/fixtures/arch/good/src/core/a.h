#pragma once
struct A {
  int x = 0;
};
