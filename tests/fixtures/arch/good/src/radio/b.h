#pragma once
#include "core/a.h"
struct B {
  A a;
};
