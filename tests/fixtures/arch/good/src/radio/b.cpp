#include "radio/b.h"
int use_b() { return B{}.a.x; }
