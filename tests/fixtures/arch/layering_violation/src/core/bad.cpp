#include "core/bad.h"
int use_bad() { return Bad{}.t.hops; }
