#pragma once
#include "trip/t.h"
struct Bad {
  T t;
};
