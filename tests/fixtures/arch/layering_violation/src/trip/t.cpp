#include "trip/t.h"
int use_t() { return T{}.hops; }
