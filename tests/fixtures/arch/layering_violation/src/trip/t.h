#pragma once
struct T {
  int hops = 0;
};
