#pragma once
struct C {
  int v = 0;
};
