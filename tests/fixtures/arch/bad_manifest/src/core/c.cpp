#include "core/c.h"
int use_c() { return C{}.v; }
