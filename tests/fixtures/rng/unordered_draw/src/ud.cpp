// Fixture: draws inside iteration over an unordered container -- the
// draw sequence follows the hash order, not a deterministic order.
#include <unordered_map>

#include "core/rng.h"

namespace wheels {

struct Config {
  unsigned long long seed = 1;
};

void walk(const Config& cfg) {
  Rng rng(cfg.seed);
  std::unordered_map<int, int> cells;
  for (const auto& cell : cells) {
    (void)cell;
    (void)rng.next_u64();
  }
}

}  // namespace wheels
