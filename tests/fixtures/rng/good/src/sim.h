// Clean RNG provenance: one seeded member root, labelled forks only.
#pragma once

#include "core/rng.h"

namespace wheels {

struct Config {
  unsigned long long seed = 42;
};

class Sim {
 public:
  explicit Sim(const Config& cfg) : rng_(cfg.seed) {}

  void step() {
    Rng fading = rng_.fork("fading");
    (void)fading.next_u64();
  }

 private:
  Rng rng_;
};

}  // namespace wheels
