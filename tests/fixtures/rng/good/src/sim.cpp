// Clean whole-program RNG usage: every stochastic process forks a
// labelled (or declared-dynamic) child of one seed root, and streams
// are handed to sinks as fresh forks, never duplicated.
#include "sim.h"

namespace wheels {

void consume(Rng stream);

void drive(const Config& cfg) {
  Rng root(cfg.seed);
  Rng trip = root.fork("trip");
  (void)trip.next_u64();
  Rng slot = root.fork(7);
  (void)slot.next_u64();
  for (int city = 0; city < 3; ++city) {
    // wheels-rng: dynamic(one independent stream per city index)
    Rng city_rng = root.fork("city").fork(static_cast<unsigned>(city));
    consume(city_rng.fork("sink"));
  }
}

}  // namespace wheels
