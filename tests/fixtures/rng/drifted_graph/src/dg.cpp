// Fixture: the code forks "current" but the pinned manifest still
// records "old" -- the drift rule must flag both directions.
#include "core/rng.h"

namespace wheels {

struct Config {
  unsigned long long seed = 1;
};

void drive(const Config& cfg) {
  Rng root(cfg.seed);
  Rng stream = root.fork("current");
  (void)stream.next_u64();
}

}  // namespace wheels
