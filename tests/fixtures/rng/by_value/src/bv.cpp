// Fixture: live streams duplicated by value -- a pass-by-value whose
// stream is used again afterwards, and a plain copy-initialization.
#include "core/rng.h"

namespace wheels {

struct Config {
  unsigned long long seed = 1;
};

void consume(Rng stream);

void drive(const Config& cfg) {
  Rng root(cfg.seed);
  Rng trip = root.fork("trip");
  consume(trip);
  (void)trip.next_u64();
  Rng dup = trip;
  (void)dup.next_u64();
}

}  // namespace wheels
