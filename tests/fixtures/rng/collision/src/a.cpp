#include "a.h"

namespace wheels {

void A::run() {
  Rng clash = rng_.fork("clash");
  (void)clash.next_u64();
}

}  // namespace wheels
