// Fixture: two translation units fork the same label off one seeded
// member stream -- a whole-program fork collision no lexical rule sees.
#pragma once

#include "core/rng.h"

namespace wheels {

class A {
 public:
  explicit A(unsigned long long seed) : rng_(seed + 1) {}
  void run();
  void poll();

 private:
  Rng rng_;
};

}  // namespace wheels
