#include "a.h"

namespace wheels {

void A::poll() {
  // Same (parent, salt) as A::run in a.cpp: bit-identical streams.
  Rng clash = rng_.fork("clash");
  (void)clash.next_u64();
}

}  // namespace wheels
