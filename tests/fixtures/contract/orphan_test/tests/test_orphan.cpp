// Deliberately not registered in tests/CMakeLists.txt: the
// ctest-registration rule must flag this file.
int main() { return 0; }
