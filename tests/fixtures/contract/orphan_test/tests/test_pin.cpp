// Fixture test spelling the golden pin as a literal; the golden-pin rule
// must accept it here and flag the drifted_golden copy.
constexpr unsigned long long kGoldenChecksum = 0x00000000deadbeefULL;

int main() { return kGoldenChecksum == 0 ? 1 : 0; }
