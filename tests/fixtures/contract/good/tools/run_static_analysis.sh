#!/usr/bin/env bash
# Miniature CI driver: one toggled stage, enough for the ci-stage and
# env-undeclared rules to parse.
set -euo pipefail

if [[ "${WHEELS_CI_SELFTEST:-1}" == 1 ]]; then
  echo "selftest"
fi
