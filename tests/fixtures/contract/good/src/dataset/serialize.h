#pragma once
// Fixture stand-in for the real serialize.h: the schema-pin rule reads
// these two constants.
#include <cstdint>
#include <string_view>

inline constexpr std::uint32_t kSchemaVersion = 1;
inline constexpr std::string_view kMagic = "WDS1";
