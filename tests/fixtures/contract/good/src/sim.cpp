// Fixture consumer of every registry surface the analyzer scans src/
// for: a declared runtime env var, a metric under the declared prefix,
// and a literal covering the required span prefix.
#include <cstdlib>

struct Registry {
  int counter(const char*) { return 0; }
};

int run() {
  (void)std::getenv("WHEELS_FOO");
  Registry reg;
  return reg.counter("sim.run.total");
}
