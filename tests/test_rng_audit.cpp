// The dynamic half of the RNG provenance contract (obs/rng_audit.h):
// the recorder must capture the true fork tree and per-stream draw
// counts, arming it must be byte-transparent (the PR-2 golden checksum
// is unchanged with the audit live), and because draws aggregate with
// commutative atomics the per-stream counts must be identical for
// jobs=1 and jobs=4.
//
// These tests are part of the tsan workload: the tsan-parallel preset
// runs the RngAudit.* campaign tests with WHEELS_JOBS=4 to prove the
// audit's thread-local caches and shared stream map race-free.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "contract_pins.h"
#include "core/rng.h"
#include "dataset/serialize.h"
#include "obs/rng_audit.h"
#include "trip/campaign.h"

namespace wheels {
namespace {

// Re-arm + clear around each test so leftover state from other tests in
// this binary (or a prior campaign) never leaks into the snapshot.
class RngAudit : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_rng_audit_enabled(true);
    obs::reset_rng_audit();
  }
  void TearDown() override {
    obs::set_rng_audit_enabled(false);
    obs::reset_rng_audit();
  }
};

const obs::RngStreamStat* find_stream(
    const std::vector<obs::RngStreamStat>& stats, std::uint64_t id) {
  for (const auto& s : stats) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

TEST_F(RngAudit, ForkTreeRecorded) {
  Rng root(9001);
  Rng by_salt = root.fork(std::uint64_t{7});
  Rng by_label = root.fork("shadowing");
  for (int i = 0; i < 5; ++i) (void)by_salt.next_u64();
  (void)by_label.next_u64();

  const auto stats = obs::rng_audit_snapshot();
  ASSERT_EQ(stats.size(), 3u);

  const auto* r = find_stream(stats, root.stream_id());
  ASSERT_NE(r, nullptr);
  EXPECT_FALSE(r->has_parent);
  EXPECT_EQ(r->seeds, 1u);
  EXPECT_EQ(r->forks, 0u);
  EXPECT_EQ(r->draws, 0u);
  EXPECT_EQ(r->conflicts, 0u);

  const auto* s = find_stream(stats, by_salt.stream_id());
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->has_parent);
  EXPECT_EQ(s->parent, root.stream_id());
  EXPECT_EQ(s->salt, 7u);
  EXPECT_FALSE(s->has_label);
  EXPECT_EQ(s->draws, 5u);
  EXPECT_EQ(s->conflicts, 0u);

  const auto* l = find_stream(stats, by_label.stream_id());
  ASSERT_NE(l, nullptr);
  EXPECT_TRUE(l->has_parent);
  EXPECT_EQ(l->parent, root.stream_id());
  EXPECT_TRUE(l->has_label);
  EXPECT_EQ(l->label, "shadowing");
  EXPECT_EQ(l->draws, 1u);
}

TEST_F(RngAudit, CopiesShareOneStream) {
  // Copying an Rng duplicates generator state but not identity: the
  // blessed by-value hand-off idiom must aggregate into a single row.
  Rng root(5);
  Rng child = root.fork("trip");
  Rng copy = child;  // plain copy -- same stream fingerprint
  (void)child.next_u64();
  (void)copy.next_u64();

  const auto stats = obs::rng_audit_snapshot();
  const auto* c = find_stream(stats, child.stream_id());
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(copy.stream_id(), child.stream_id());
  EXPECT_EQ(c->draws, 2u);
  EXPECT_EQ(c->forks, 1u);
  EXPECT_EQ(c->conflicts, 0u);
}

TEST_F(RngAudit, RepeatedIdenticalForksAreNotConflicts) {
  // Re-deriving the same child from an unadvanced parent (the shared
  // trip-stream idiom in ran/ue.cpp) bumps `forks`, never `conflicts`.
  Rng parent(77);
  Rng a = parent.fork("fading");
  // wheels-lint: allow(duplicate-fork)
  Rng b = parent.fork("fading");
  EXPECT_EQ(a.stream_id(), b.stream_id());

  const auto stats = obs::rng_audit_snapshot();
  const auto* s = find_stream(stats, a.stream_id());
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->forks, 2u);
  EXPECT_EQ(s->conflicts, 0u);
}

TEST_F(RngAudit, JsonlShapeMatchesCheckTraceParser) {
  Rng root(3);
  Rng child = root.fork("city \"quoted\"");
  (void)child.next_u64();

  const std::string jsonl = obs::rng_audit_to_jsonl(obs::rng_audit_snapshot());
  // Two streams -> two newline-terminated objects.
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl.back(), '\n');
  std::size_t lines = 0;
  for (const char ch : jsonl) lines += (ch == '\n') ? 1 : 0;
  EXPECT_EQ(lines, 2u);
  // The fields wheels_rng.py --check-trace keys on.
  EXPECT_NE(jsonl.find("\"id\":\"0x"), std::string::npos);
  EXPECT_NE(jsonl.find("\"parent\":null"), std::string::npos);
  EXPECT_NE(jsonl.find("\"label\":\"city \\\"quoted\\\"\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"draws\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"conflicts\":0"), std::string::npos);
}

// Stride 256 keeps a full-route drive at a few seconds per run (same
// rationale as test_parallel_determinism.cpp).
trip::CampaignConfig sparse_cfg() {
  trip::CampaignConfig cfg;
  cfg.seed = 42;
  cfg.cycle_stride = 256;
  return cfg;
}

TEST_F(RngAudit, DrawCountsMatchAcrossJobs) {
  // Draw counts sum commutatively (relaxed fetch_add), so the recorded
  // tree must be identical for every jobs value -- this is the property
  // that lets CI diff the jobs=1 and jobs=4 JSONL traces byte-for-byte.
  trip::Campaign sequential(sparse_cfg());
  sequential.set_jobs(1);
  (void)sequential.run();
  const auto stats1 = obs::rng_audit_snapshot();

  obs::reset_rng_audit();
  trip::Campaign parallel(sparse_cfg());
  parallel.set_jobs(4);
  (void)parallel.run();
  const auto stats4 = obs::rng_audit_snapshot();

  ASSERT_FALSE(stats1.empty());
  ASSERT_EQ(stats1.size(), stats4.size());
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> by_id;
  for (const auto& s : stats1) by_id[s.id] = {s.draws, s.conflicts};
  for (const auto& s : stats4) {
    const auto it = by_id.find(s.id);
    ASSERT_NE(it, by_id.end()) << "stream only present at jobs=4";
    EXPECT_EQ(it->second.first, s.draws)
        << "draw count diverged across jobs for stream 0x" << std::hex
        << s.id;
    EXPECT_EQ(s.conflicts, 0u);
    EXPECT_EQ(it->second.second, 0u);
  }
  // And the serialized JSONL (what CI actually compares) is identical.
  EXPECT_EQ(obs::rng_audit_to_jsonl(stats1), obs::rng_audit_to_jsonl(stats4));
}

TEST_F(RngAudit, AuditTransparentGoldenChecksum) {
  // The hard transparency pin: with the recorder live, the seed-42
  // stride-64 campaign must still hit the PR-2 golden checksum. The
  // hooks observe state; they may never perturb it.
  trip::CampaignConfig cfg;
  cfg.seed = contract::kGoldenSeed;
  cfg.cycle_stride = contract::kGoldenStride;
  trip::Campaign c(cfg);
  c.set_jobs(4);
  const std::uint64_t checksum = dataset::fnv1a(dataset::encode(c.run()));
  EXPECT_EQ(checksum, contract::kGoldenCampaignChecksum)
      << "audited campaign produced 0x" << std::hex << checksum;

  const auto stats = obs::rng_audit_snapshot();
  EXPECT_FALSE(stats.empty());
  for (const auto& s : stats) {
    EXPECT_EQ(s.conflicts, 0u)
        << "runtime provenance conflict on stream 0x" << std::hex << s.id;
  }
}

}  // namespace
}  // namespace wheels
