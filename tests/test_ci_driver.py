#!/usr/bin/env python3
"""Exit-code contract tests for tools/run_static_analysis.sh.

The heavy stages (dataset CLI, scenario smoke, trace validation, header
selfcheck, werror/sanitizer builds, clang-tidy, gcc-fanalyzer, the RNG
provenance stage) are env-disabled so every
case here finishes in seconds; what's under test is the driver itself: stage toggles, --quick,
unknown-flag rejection, and failure propagation from a stage into the
script's exit status (injected via the WHEELS_CI_LINT_ROOT /
WHEELS_CI_CONTRACT_ROOT / WHEELS_CI_RNG_ROOT test hooks, which point the
full-repo lint, contract or RNG provenance check at a known-violating
fixture tree).

Run directly (python3 tests/test_ci_driver.py) or via ctest.
"""

import os
import subprocess
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TESTS_DIR)
DRIVER = os.path.join(REPO_ROOT, "tools", "run_static_analysis.sh")

HEAVY_STAGES_OFF = {
    "WHEELS_CI_RNG": "0",
    "WHEELS_CI_FANALYZER": "0",
    "WHEELS_CI_DATASET": "0",
    "WHEELS_CI_SCENARIO": "0",
    "WHEELS_CI_TRACE": "0",
    "WHEELS_CI_HEADERS": "0",
    "WHEELS_CI_WERROR": "0",
    "WHEELS_CI_SANITIZE": "0",
    "WHEELS_CI_TSAN": "0",
    "WHEELS_CI_TIDY": "0",
    "WHEELS_CI_KERNEL": "0",
    "WHEELS_CI_SERVE": "0",
}


def run_driver(*args, extra_env=None):
    env = dict(os.environ)
    env.update(HEAVY_STAGES_OFF)
    env.update(extra_env or {})
    proc = subprocess.run(
        ["bash", DRIVER, *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
        check=False)
    return proc.returncode, proc.stdout + proc.stderr


class QuickPass(unittest.TestCase):
    def test_quick_with_light_stages_passes(self):
        # lint + arch + contract stages stay on; all must run and the
        # driver must report overall success.
        code, out = run_driver("--quick")
        self.assertEqual(code, 0, out)
        self.assertIn("wheels-lint: full repo", out)
        self.assertIn("wheels-arch: full repo", out)
        self.assertIn("wheels-contract: full repo", out)
        self.assertIn("static analysis OK", out)

    def test_disabled_stages_do_not_run(self):
        _, out = run_driver("--quick")
        self.assertNotIn("wheels_campaign CLI smoke", out)
        self.assertNotIn("scenario smoke", out)
        self.assertNotIn("werror build", out)
        self.assertNotIn("header self-sufficiency", out)


class UnknownFlag(unittest.TestCase):
    def test_unknown_argument_exits_2(self):
        code, out = run_driver("--bogus")
        self.assertEqual(code, 2, out)
        self.assertIn("unknown argument", out)


class InjectedFailure(unittest.TestCase):
    def test_lint_failure_fails_the_driver(self):
        # Point the full-repo lint at a fixture tree that violates
        # banned-random; the driver must count the stage as failed and
        # exit 1 (not crash, not succeed).
        bad_root = os.path.join(TESTS_DIR, "lint_fixtures", "banned_random")
        code, out = run_driver(
            "--quick",
            extra_env={
                "WHEELS_CI_ARCH": "0",
                "WHEELS_CI_LINT_ROOT": bad_root,
            })
        self.assertEqual(code, 1, out)
        self.assertIn("banned-random", out)
        self.assertIn("static analysis FAILED", out)


class ContractStage(unittest.TestCase):
    """The wheels-contract stage: a member of --quick, toggleable via
    WHEELS_CI_CONTRACT, failure-injectable via WHEELS_CI_CONTRACT_ROOT."""

    def test_contract_stage_runs_under_quick(self):
        code, out = run_driver(
            "--quick", extra_env={"WHEELS_CI_LINT": "0",
                                  "WHEELS_CI_ARCH": "0"})
        self.assertEqual(code, 0, out)
        self.assertIn("wheels-contract: rule self-tests", out)
        self.assertIn("wheels-contract: full repo", out)

    def test_toggle_disables_the_stage(self):
        code, out = run_driver(
            "--quick", extra_env={"WHEELS_CI_CONTRACT": "0"})
        self.assertEqual(code, 0, out)
        self.assertNotIn("wheels-contract", out)

    def test_contract_failure_fails_the_driver(self):
        # Point the full-repo contract check at the drifted-golden fixture
        # tree; the stage must fail and the driver must exit 1.
        bad_root = os.path.join(TESTS_DIR, "fixtures", "contract",
                                "drifted_golden")
        code, out = run_driver(
            "--quick",
            extra_env={
                "WHEELS_CI_LINT": "0",
                "WHEELS_CI_ARCH": "0",
                "WHEELS_CI_CONTRACT_ROOT": bad_root,
            })
        self.assertEqual(code, 1, out)
        self.assertIn("golden-pin", out)
        self.assertIn("static analysis FAILED", out)


class RngStage(unittest.TestCase):
    """The wheels-rng stage: a member of --quick (static half only; the
    runtime audit cross-check runs outside --quick), toggleable via
    WHEELS_CI_RNG, failure-injectable via WHEELS_CI_RNG_ROOT."""

    def test_rng_stage_runs_under_quick(self):
        code, out = run_driver(
            "--quick",
            extra_env={
                "WHEELS_CI_LINT": "0",
                "WHEELS_CI_ARCH": "0",
                "WHEELS_CI_CONTRACT": "0",
                "WHEELS_CI_RNG": "1",
            })
        self.assertEqual(code, 0, out)
        self.assertIn("wheels-rng: rule self-tests", out)
        self.assertIn("wheels-rng: full repo", out)
        # The campaign-generating cross-check is not a --quick member.
        self.assertNotIn("runtime audit cross-check", out)

    def test_toggle_disables_the_stage(self):
        code, out = run_driver("--quick")
        self.assertEqual(code, 0, out)
        self.assertNotIn("wheels-rng", out)

    def test_rng_failure_fails_the_driver(self):
        # Point the provenance check at the cross-TU collision fixture;
        # the stage must fail and the driver must exit 1.
        bad_root = os.path.join(TESTS_DIR, "fixtures", "rng", "collision")
        code, out = run_driver(
            "--quick",
            extra_env={
                "WHEELS_CI_LINT": "0",
                "WHEELS_CI_ARCH": "0",
                "WHEELS_CI_CONTRACT": "0",
                "WHEELS_CI_RNG": "1",
                "WHEELS_CI_RNG_ROOT": bad_root,
            })
        self.assertEqual(code, 1, out)
        self.assertIn("fork-collision", out)
        self.assertIn("static analysis FAILED", out)


class FanalyzerStage(unittest.TestCase):
    """The gcc -fanalyzer stage: best-effort (runs when the toolchain
    accepts -fanalyzer on C++, otherwise skips with a notice) and
    toggleable via WHEELS_CI_FANALYZER."""

    def test_stage_runs_or_skips_with_notice(self):
        code, out = run_driver(
            "--quick",
            extra_env={
                "WHEELS_CI_LINT": "0",
                "WHEELS_CI_ARCH": "0",
                "WHEELS_CI_CONTRACT": "0",
                "WHEELS_CI_FANALYZER": "1",
            })
        self.assertEqual(code, 0, out)
        self.assertTrue("gcc -fanalyzer: OK" in out
                        or "unsupported on this toolchain" in out, out)

    def test_toggle_disables_the_stage(self):
        code, out = run_driver("--quick")
        self.assertEqual(code, 0, out)
        self.assertNotIn("gcc -fanalyzer", out)


class KernelStage(unittest.TestCase):
    """The replay-kernel bench smoke stage: a member of --quick,
    toggleable via WHEELS_CI_KERNEL (off in HEAVY_STAGES_OFF above, so
    the other cases never pay for a campaign build)."""

    def test_kernel_stage_runs_under_quick(self):
        # Re-enable just this stage; it builds bench_replay_kernel and
        # runs one sparse-stride scalar/batched A/B for real.
        code, out = run_driver(
            "--quick",
            extra_env={
                "WHEELS_CI_LINT": "0",
                "WHEELS_CI_ARCH": "0",
                "WHEELS_CI_CONTRACT": "0",
                "WHEELS_CI_KERNEL": "1",
            })
        self.assertEqual(code, 0, out)
        self.assertIn("replay-kernel bench smoke", out)
        self.assertIn('"bytes_equal": true', out)

    def test_toggle_disables_the_stage(self):
        code, out = run_driver(
            "--quick", extra_env={"WHEELS_CI_KERNEL": "0"})
        self.assertEqual(code, 0, out)
        self.assertNotIn("replay-kernel bench smoke", out)


class ServeStage(unittest.TestCase):
    """The serve smoke stage: a member of --quick, toggleable via
    WHEELS_CI_SERVE (off in HEAVY_STAGES_OFF above, so the other cases
    never pay for the daemon build + a cold campaign simulation)."""

    def test_serve_stage_runs_under_quick(self):
        # Re-enable just this stage; it builds wheels_served and
        # wheels_loadgen, boots the daemon on a scratch socket, and runs
        # the scripted probe/cold/herd/hot schedule against it.
        code, out = run_driver(
            "--quick",
            extra_env={
                "WHEELS_CI_LINT": "0",
                "WHEELS_CI_ARCH": "0",
                "WHEELS_CI_CONTRACT": "0",
                "WHEELS_CI_SERVE": "1",
            })
        self.assertEqual(code, 0, out)
        self.assertIn("serve smoke", out)
        self.assertIn('"byte_identical": true', out)
        self.assertIn('"failures": 0', out)

    def test_toggle_disables_the_stage(self):
        code, out = run_driver(
            "--quick", extra_env={"WHEELS_CI_SERVE": "0"})
        self.assertEqual(code, 0, out)
        self.assertNotIn("serve smoke", out)


class StageToggles(unittest.TestCase):
    def test_everything_disabled_still_summarizes_ok(self):
        code, out = run_driver(
            "--quick",
            extra_env={"WHEELS_CI_LINT": "0", "WHEELS_CI_ARCH": "0",
                       "WHEELS_CI_CONTRACT": "0"})
        self.assertEqual(code, 0, out)
        self.assertIn("static analysis OK", out)
        self.assertNotIn("wheels-lint", out)


if __name__ == "__main__":
    unittest.main(verbosity=2)
