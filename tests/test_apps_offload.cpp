#include <gtest/gtest.h>

#include "apps/accuracy.h"
#include "apps/offload.h"

namespace wheels::apps {
namespace {

// Synthetic link with fixed rates.
LinkEnv constant_link(double ul_mbps, double dl_mbps,
                      double path_ms = 2.0) {
  LinkEnv env;
  env.path_one_way = Millis{path_ms};
  env.step = [ul_mbps, dl_mbps](Millis) {
    ran::LinkSample s;
    s.connected = true;
    s.tech = radio::Tech::NR_MMWAVE;
    s.phy_rate_ul = Mbps{ul_mbps};
    s.phy_rate_dl = Mbps{dl_mbps};
    s.air_latency = Millis{5.0};
    return s;
  };
  return env;
}

TEST(OffloadConfig, Table4Values) {
  const auto ar = ar_config(true);
  EXPECT_DOUBLE_EQ(ar.fps, 30.0);
  EXPECT_DOUBLE_EQ(ar.frame_raw_kb, 450.0);
  EXPECT_DOUBLE_EQ(ar.frame_compressed_kb, 50.0);
  EXPECT_DOUBLE_EQ(ar.compression_time.value, 6.3);
  EXPECT_DOUBLE_EQ(ar.inference_time.value, 24.9);
  EXPECT_DOUBLE_EQ(ar.decompression_time.value, 1.0);

  const auto cav = cav_config(true);
  EXPECT_DOUBLE_EQ(cav.fps, 10.0);
  EXPECT_DOUBLE_EQ(cav.frame_raw_kb, 2000.0);
  EXPECT_DOUBLE_EQ(cav.frame_compressed_kb, 38.0);
  EXPECT_DOUBLE_EQ(cav.inference_time.value, 44.0);
}

TEST(Offload, FastLinkApproachesPipelineFloor) {
  auto env = constant_link(300.0, 300.0);
  const auto r = run_offload(ar_config(true), env, Rng(1));
  ASSERT_FALSE(r.e2e_ms.empty());
  // Floor ~ compression 6.3 + upload(50KB @225Mbps ~ 1.8ms) + 2x path +
  // inference 24.9 + decompression 1 = ~40 ms (+ slot quantization).
  EXPECT_GT(r.mean_e2e_ms, 30.0);
  EXPECT_LT(r.mean_e2e_ms, 90.0);
  // Offloaded FPS bounded by 1/E2E, well above 10.
  EXPECT_GT(r.offloaded_fps, 10.0);
  EXPECT_LE(r.offloaded_fps, 30.0);
}

TEST(Offload, DeadLinkOffloadsNothing) {
  auto env = constant_link(0.0, 0.0);
  const auto r = run_offload(ar_config(true), env, Rng(2));
  EXPECT_TRUE(r.e2e_ms.empty());
  EXPECT_DOUBLE_EQ(r.offloaded_fps, 0.0);
}

TEST(Offload, CompressionWinsOnSlowLinks) {
  auto env1 = constant_link(5.0, 20.0);
  const auto with = run_offload(ar_config(true), env1, Rng(3));
  auto env2 = constant_link(5.0, 20.0);
  const auto without = run_offload(ar_config(false), env2, Rng(3));
  ASSERT_FALSE(with.e2e_ms.empty());
  ASSERT_FALSE(without.e2e_ms.empty());
  // 450 KB over 5 Mbps ~ 960 ms; 50 KB ~ 107 ms: compression is a big win.
  EXPECT_LT(with.mean_e2e_ms * 3.0, without.mean_e2e_ms);
  EXPECT_GT(with.offloaded_fps, without.offloaded_fps);
}

TEST(Offload, CavHeavierThanAr) {
  auto env1 = constant_link(20.0, 50.0);
  const auto ar = run_offload(ar_config(false), env1, Rng(4));
  auto env2 = constant_link(20.0, 50.0);
  const auto cav = run_offload(cav_config(false), env2, Rng(4));
  // 2000 KB point clouds vs 450 KB frames.
  EXPECT_GT(cav.mean_e2e_ms, ar.mean_e2e_ms * 2.0);
}

TEST(Offload, OffloadedFpsNeverExceedsCameraFps) {
  auto env = constant_link(1'000.0, 1'000.0);
  const auto ar = run_offload(ar_config(true), env, Rng(5));
  EXPECT_LE(ar.offloaded_fps, 30.0 + 0.1);
  auto env2 = constant_link(1'000.0, 1'000.0);
  const auto cav = run_offload(cav_config(true), env2, Rng(5));
  EXPECT_LE(cav.offloaded_fps, 10.0 + 0.1);
}

TEST(Offload, TracksHighSpeed5gShare) {
  int calls = 0;
  LinkEnv env;
  env.path_one_way = Millis{2.0};
  env.step = [&calls](Millis) {
    ran::LinkSample s;
    s.connected = true;
    s.tech = (calls++ % 2) ? radio::Tech::NR_MID : radio::Tech::LTE;
    s.phy_rate_ul = Mbps{20.0};
    s.phy_rate_dl = Mbps{50.0};
    return s;
  };
  const auto r = run_offload(ar_config(true), env, Rng(6));
  EXPECT_NEAR(r.frac_high_speed_5g, 0.5, 0.05);
  EXPECT_NEAR(r.frac_connected, 1.0, 1e-9);
}

TEST(Accuracy, Table5Anchors) {
  const Millis ft{1'000.0 / 30.0};
  EXPECT_NEAR(detection_map(Millis{10.0}, ft, false), 38.45, 1e-9);
  EXPECT_NEAR(detection_map(Millis{40.0}, ft, false), 37.22, 1e-9);
  EXPECT_NEAR(detection_map(Millis{40.0}, ft, true), 36.14, 1e-9);
  EXPECT_NEAR(detection_map(Millis{29.5 * ft.value}, ft, false), 14.05,
              1e-9);
}

TEST(Accuracy, DecaysBeyondTableTowardFloor) {
  const Millis ft{1'000.0 / 30.0};
  const double at_table_end = detection_map(Millis{29.5 * ft.value}, ft,
                                            true);
  const double beyond = detection_map(Millis{60.0 * ft.value}, ft, true);
  const double far = detection_map(Millis{500.0 * ft.value}, ft, true);
  EXPECT_LT(beyond, at_table_end);
  EXPECT_GT(beyond, 10.0);
  EXPECT_NEAR(far, 10.0, 0.5);
}

TEST(Accuracy, CompressionCostsAccuracyAtEqualLatency) {
  const Millis ft{1'000.0 / 30.0};
  for (double bins = 1.5; bins < 29.0; bins += 3.0) {
    EXPECT_LE(detection_map(Millis{bins * ft.value}, ft, true),
              detection_map(Millis{bins * ft.value}, ft, false) + 1e-9);
  }
}

TEST(Accuracy, RunMapAveragesFrames) {
  const Millis ft{1'000.0 / 30.0};
  const std::vector<double> e2e = {10.0, 10.0};  // bin 0
  EXPECT_NEAR(run_map(e2e, ft, false), 38.45, 1e-9);
  EXPECT_DOUBLE_EQ(run_map({}, ft, false), 0.0);
}

TEST(Accuracy, BestStaticMatchesPaperNumbers) {
  // Paper: best static AR run achieves ~36.5 mAP at 68 ms E2E (bin 2).
  const Millis ft{1'000.0 / 30.0};
  const double map = detection_map(Millis{68.0}, ft, true);
  EXPECT_NEAR(map, 34.75, 1.5);
}

}  // namespace
}  // namespace wheels::apps
