#include <gtest/gtest.h>

#include "apps/gaming.h"
#include "apps/video.h"

namespace wheels::apps {
namespace {

LinkEnv constant_link(double dl_mbps) {
  LinkEnv env;
  env.path_one_way = Millis{10.0};
  env.step = [dl_mbps](Millis) {
    ran::LinkSample s;
    s.connected = true;
    s.tech = radio::Tech::NR_MID;
    s.phy_rate_dl = Mbps{dl_mbps};
    s.phy_rate_ul = Mbps{dl_mbps / 10.0};
    s.air_latency = Millis{12.0};
    return s;
  };
  return env;
}

class BbaLadder : public ::testing::TestWithParam<double> {};

TEST_P(BbaLadder, ChoiceIsOnTheLadderAndMonotone) {
  VideoConfig cfg;
  const double buffer = GetParam();
  const double rate = bba_bitrate(cfg, buffer);
  // Must be a ladder rung.
  bool on_ladder = false;
  for (double r : cfg.bitrates_mbps) {
    if (r == rate) on_ladder = true;
  }
  EXPECT_TRUE(on_ladder) << rate;
  // Monotone in buffer.
  EXPECT_LE(bba_bitrate(cfg, buffer - 0.5), rate + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Buffers, BbaLadder,
                         ::testing::Values(0.5, 3.0, 6.5, 9.0, 12.0, 14.0,
                                           20.0));

TEST(Bba, ReservoirAndCushionEndpoints) {
  VideoConfig cfg;
  EXPECT_DOUBLE_EQ(bba_bitrate(cfg, 0.0), cfg.bitrates_mbps.front());
  EXPECT_DOUBLE_EQ(bba_bitrate(cfg, cfg.reservoir_s),
                   cfg.bitrates_mbps.front());
  EXPECT_DOUBLE_EQ(bba_bitrate(cfg, cfg.cushion_s),
                   cfg.bitrates_mbps.back());
  EXPECT_DOUBLE_EQ(bba_bitrate(cfg, 99.0), cfg.bitrates_mbps.back());
}

TEST(Video, FastLinkGetsTopQoE) {
  auto env = constant_link(2'000.0);
  VideoConfig cfg;
  cfg.run_duration = Millis{120'000.0};
  const auto r = run_video(cfg, env);
  EXPECT_GT(r.chunks, 40);
  EXPECT_GT(r.avg_bitrate_mbps, 60.0);
  EXPECT_GT(r.avg_qoe, 50.0);
  EXPECT_LT(r.rebuffer_fraction, 0.05);
}

TEST(Video, StarvedLinkHasNegativeQoE) {
  auto env = constant_link(1.0);  // below the lowest 5 Mbps rung
  VideoConfig cfg;
  cfg.run_duration = Millis{120'000.0};
  const auto r = run_video(cfg, env);
  EXPECT_LT(r.avg_qoe, 0.0);
  EXPECT_GT(r.rebuffer_fraction, 0.3);
}

TEST(Video, DeadLinkIsAllStall) {
  auto env = constant_link(0.0);
  const auto r = run_video(VideoConfig{}, env);
  EXPECT_EQ(r.chunks, 0);
  EXPECT_LT(r.avg_qoe, -100.0);
  EXPECT_NEAR(r.rebuffer_fraction, 1.0, 0.05);
}

TEST(Video, MidLinkPicksMiddleRungs) {
  auto env = constant_link(25.0);
  VideoConfig cfg;
  cfg.run_duration = Millis{120'000.0};
  const auto r = run_video(cfg, env);
  EXPECT_GT(r.avg_bitrate_mbps, 5.0);
  EXPECT_LT(r.avg_bitrate_mbps, 50.0);
  EXPECT_GE(r.avg_qoe, -20.0);
}

TEST(Video, RebufferFractionInRange) {
  for (double rate : {0.5, 3.0, 8.0, 30.0, 200.0}) {
    auto env = constant_link(rate);
    const auto r = run_video(VideoConfig{}, env);
    EXPECT_GE(r.rebuffer_fraction, 0.0);
    EXPECT_LE(r.rebuffer_fraction, 1.0);
  }
}

TEST(Gaming, FastLinkMaxBitrateFewDrops) {
  auto env = constant_link(500.0);
  const auto r = run_gaming(GamingConfig{}, env, Rng(1));
  EXPECT_GT(r.median_bitrate_mbps, 80.0);
  EXPECT_LE(r.median_bitrate_mbps, 100.0);
  EXPECT_LT(r.frame_drop_rate, 0.02);
  // Latency ~ air + path with empty queue.
  EXPECT_LT(r.mean_latency_ms, 60.0);
}

TEST(Gaming, BitrateTracksModestLink) {
  auto env = constant_link(20.0);
  const auto r = run_gaming(GamingConfig{}, env, Rng(2));
  EXPECT_GT(r.median_bitrate_mbps, 5.0);
  EXPECT_LT(r.median_bitrate_mbps, 20.0);
}

TEST(Gaming, DeadLinkDropsEverything) {
  auto env = constant_link(0.0);
  const auto r = run_gaming(GamingConfig{}, env, Rng(3));
  EXPECT_GT(r.frame_drop_rate, 0.3);
}

TEST(Gaming, LatencyHasFloorFromAirAndPath) {
  auto env = constant_link(500.0);
  const auto r = run_gaming(GamingConfig{}, env, Rng(4));
  // air 12 + path 10: nothing below that.
  EXPECT_GT(r.mean_latency_ms, 20.0);
}

TEST(Gaming, BitrateRespectsCap) {
  auto env = constant_link(5'000.0);
  GamingConfig cfg;
  cfg.max_bitrate_mbps = 40.0;
  const auto r = run_gaming(cfg, env, Rng(5));
  EXPECT_LE(r.median_bitrate_mbps, 40.0 + 1e-9);
}

TEST(Gaming, IntermittentLinkHurtsLatency) {
  // A link that blacks out half the time: queue spikes -> high latency.
  int calls = 0;
  LinkEnv env;
  env.path_one_way = Millis{10.0};
  env.step = [&calls](Millis) {
    ran::LinkSample s;
    s.connected = true;
    s.tech = radio::Tech::LTE_A;
    const bool on = (calls++ / 200) % 2 == 0;  // 2 s on, 2 s off
    s.phy_rate_dl = Mbps{on ? 30.0 : 0.0};
    s.air_latency = Millis{15.0};
    s.in_handover = !on;
    return s;
  };
  const auto r = run_gaming(GamingConfig{}, env, Rng(6));
  auto env2 = constant_link(30.0);
  const auto clean = run_gaming(GamingConfig{}, env2, Rng(6));
  EXPECT_GT(r.mean_latency_ms, clean.mean_latency_ms);
  EXPECT_GT(r.frame_drop_rate, clean.frame_drop_rate);
}

}  // namespace
}  // namespace wheels::apps
