#include <gtest/gtest.h>

#include <sstream>

#include "core/csv.h"
#include "core/stats.h"
#include "core/table.h"

namespace wheels {
namespace {

TEST(Csv, EscapePlainCellUnchanged) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
}

TEST(Csv, EscapeSpecials) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriteParseRoundTrip) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b,c", "d\"e"});
  w.write_row({"1", "", "3"});
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b,c", "d\"e"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "", "3"}));
}

TEST(Csv, ParseCrlfAndQuotedNewline) {
  const auto rows = parse_csv("x,y\r\n\"multi\nline\",z\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "multi\nline");
  EXPECT_EQ(rows[1][1], "z");
}

TEST(Csv, ParseEmpty) { EXPECT_TRUE(parse_csv("").empty()); }

TEST(Table, AlignsAndPrintsHeaderRule) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row_values("beta", {2.5, 3.25}, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
  EXPECT_NE(out.find("3.25"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Table, PrintCdfAndSummary) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  std::ostringstream os;
  print_cdf(os, "test-series", cdf, 3);
  EXPECT_NE(os.str().find("test-series (n=4)"), std::string::npos);
  std::ostringstream os2;
  print_summary(os2, "sum", cdf);
  EXPECT_NE(os2.str().find("med=2.50"), std::string::npos);
  std::ostringstream os3;
  print_cdf(os3, "empty", EmpiricalCdf{});
  EXPECT_NE(os3.str().find("<no samples>"), std::string::npos);
}

}  // namespace
}  // namespace wheels
