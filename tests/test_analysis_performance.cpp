#include <gtest/gtest.h>

#include "analysis/correlation.h"
#include "analysis/operator_diversity.h"
#include "analysis/performance.h"

namespace wheels::analysis {
namespace {

using radio::Tech;
using trip::KpiSample;
using trip::RttSample;
using trip::TestType;

KpiSample kpi(double tput, Tech t = Tech::LTE_A,
              TestType test = TestType::DownlinkBulk, double mph = 50.0,
              double time_ms = 0.0) {
  KpiSample s;
  s.tput_mbps = tput;
  s.tech = t;
  s.test = test;
  s.speed = Mph{mph};
  s.connected = true;
  s.time = SimTime{time_ms};
  return s;
}

TEST(Perf, TputFilterByTestAndTech) {
  std::vector<KpiSample> v = {
      kpi(10.0, Tech::LTE_A, TestType::DownlinkBulk),
      kpi(20.0, Tech::NR_MID, TestType::DownlinkBulk),
      kpi(5.0, Tech::NR_MID, TestType::UplinkBulk),
  };
  PerfFilter f;
  f.test = TestType::DownlinkBulk;
  EXPECT_EQ(tput_samples(v, f).size(), 2u);
  f.tech = Tech::NR_MID;
  const auto mid = tput_samples(v, f);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_DOUBLE_EQ(mid[0], 20.0);
}

TEST(Perf, PingSamplesNeverCountAsTput) {
  std::vector<KpiSample> v = {kpi(10.0, Tech::LTE, TestType::Ping)};
  EXPECT_TRUE(tput_samples(v, {}).empty());
}

TEST(Perf, RttFilterSkipsFailures) {
  RttSample ok;
  ok.success = true;
  ok.rtt_ms = 50.0;
  ok.connected = true;
  ok.tech = Tech::LTE;
  ok.speed = Mph{30.0};
  RttSample lost = ok;
  lost.success = false;
  const std::vector<RttSample> v = {ok, lost};
  EXPECT_EQ(rtt_samples(v, {}).size(), 1u);
}

TEST(Perf, SpeedBins) {
  EXPECT_EQ(speed_bin(Mph{5.0}), 0);
  EXPECT_EQ(speed_bin(Mph{19.9}), 0);
  EXPECT_EQ(speed_bin(Mph{20.0}), 1);
  EXPECT_EQ(speed_bin(Mph{59.9}), 1);
  EXPECT_EQ(speed_bin(Mph{60.0}), 2);
  EXPECT_EQ(speed_bin(Mph{80.0}), 2);
}

TEST(Perf, TputBySpeedAndTech) {
  std::vector<KpiSample> v;
  for (int i = 0; i < 10; ++i) {
    v.push_back(kpi(100.0 + i, Tech::NR_MMWAVE, TestType::DownlinkBulk,
                    5.0));
    v.push_back(kpi(20.0 + i, Tech::LTE_A, TestType::DownlinkBulk, 70.0));
  }
  const auto stats = tput_by_speed_and_tech(v, TestType::DownlinkBulk);
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& st : stats) {
    if (st.tech == Tech::NR_MMWAVE) {
      EXPECT_EQ(st.bin, 0);
      EXPECT_EQ(st.count, 10u);
      EXPECT_NEAR(st.median, 104.5, 1.0);
    } else {
      EXPECT_EQ(st.bin, 2);
      EXPECT_NEAR(st.max, 29.0, 1e-9);
    }
  }
}

TEST(Correlation, RecoverConstructedRelationships) {
  Rng rng(1);
  std::vector<KpiSample> v;
  for (int i = 0; i < 5'000; ++i) {
    KpiSample s;
    s.test = TestType::DownlinkBulk;
    s.connected = true;
    s.rsrp_dbm = rng.normal(-90.0, 10.0);
    s.speed = Mph{rng.uniform(0.0, 80.0)};
    s.mcs = rng.uniform(0.0, 28.0);
    s.num_cc = 1.0;
    s.bler = rng.uniform(0.0, 0.3);
    s.handovers = 0;
    // Throughput strongly driven by RSRP, weakly hurt by speed.
    s.tput_mbps = 2.0 * (s.rsrp_dbm + 120.0) - 0.2 * s.speed.value +
                  rng.normal(0.0, 10.0);
    v.push_back(s);
  }
  const auto c = correlate(v, TestType::DownlinkBulk);
  EXPECT_GT(c.rsrp, 0.7);
  EXPECT_LT(c.speed, 0.0);
  EXPECT_NEAR(c.ca, 0.0, 0.1);        // constant CA: degenerate -> 0
  EXPECT_NEAR(c.handovers, 0.0, 0.1); // constant HO -> 0
  EXPECT_EQ(c.samples, 5'000u);
}

TEST(Correlation, FiltersOtherDirections) {
  std::vector<KpiSample> v = {kpi(10.0, Tech::LTE, TestType::UplinkBulk)};
  const auto c = correlate(v, TestType::DownlinkBulk);
  EXPECT_EQ(c.samples, 0u);
}

TEST(Diversity, PairsConcurrentSamples) {
  std::vector<KpiSample> a, b;
  for (int i = 0; i < 10; ++i) {
    a.push_back(kpi(30.0, Tech::NR_MID, TestType::DownlinkBulk, 50.0,
                    i * 500.0));
    b.push_back(kpi(10.0, Tech::LTE, TestType::DownlinkBulk, 50.0,
                    i * 500.0));
  }
  const auto pairs = pair_samples(a, b, trip::TestType::DownlinkBulk);
  ASSERT_EQ(pairs.size(), 10u);
  for (const auto& p : pairs) {
    EXPECT_DOUBLE_EQ(p.diff_mbps, 20.0);
    EXPECT_EQ(p.bin, TechBin::HtLt);
  }
}

TEST(Diversity, MisalignedTimesDoNotPair) {
  std::vector<KpiSample> a = {
      kpi(30.0, Tech::LTE, TestType::DownlinkBulk, 50.0, 0.0)};
  std::vector<KpiSample> b = {
      kpi(10.0, Tech::LTE, TestType::DownlinkBulk, 50.0, 10'000.0)};
  EXPECT_TRUE(pair_samples(a, b, trip::TestType::DownlinkBulk).empty());
}

TEST(Diversity, AnalyzeBinsAndWins) {
  std::vector<PairedSample> pairs;
  for (int i = 0; i < 6; ++i) {
    pairs.push_back({+5.0, TechBin::LtLt});
  }
  for (int i = 0; i < 4; ++i) {
    pairs.push_back({-3.0, TechBin::HtHt});
  }
  const auto a = analyze_pair(pairs);
  EXPECT_NEAR(a.bin_fraction[static_cast<int>(TechBin::LtLt)], 0.6, 1e-9);
  EXPECT_NEAR(a.bin_fraction[static_cast<int>(TechBin::HtHt)], 0.4, 1e-9);
  EXPECT_NEAR(a.first_wins, 0.6, 1e-9);
  EXPECT_EQ(a.all_diffs.size(), 10u);
  EXPECT_EQ(a.diffs_by_bin[static_cast<int>(TechBin::HtHt)].size(), 4u);
}

TEST(Diversity, EmptyAnalysisSafe) {
  const auto a = analyze_pair({});
  EXPECT_DOUBLE_EQ(a.first_wins, 0.0);
  EXPECT_TRUE(a.all_diffs.empty());
}

}  // namespace
}  // namespace wheels::analysis
