#include <gtest/gtest.h>

#include "logsync/matcher.h"
#include "logsync/timestamp.h"

namespace wheels::logsync {
namespace {

class TimestampRoundTrip
    : public ::testing::TestWithParam<std::tuple<ClockKind, TimeZone>> {};

TEST_P(TimestampRoundTrip, FormatParseIsIdentity) {
  const auto [kind, tz] = GetParam();
  const LogClock clock{kind, tz};
  for (double ms : {0.0, 3.7e8, 5.1e8 + 250.0}) {
    const SimTime t{ms};
    const std::string text = format_timestamp(t, clock);
    const auto back = parse_timestamp(text, clock);
    ASSERT_TRUE(back.has_value()) << text;
    EXPECT_NEAR(back->ms_since_epoch, t.ms_since_epoch, 1.0) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClocks, TimestampRoundTrip,
    ::testing::Combine(::testing::Values(ClockKind::Utc, ClockKind::Local,
                                         ClockKind::FixedEdt),
                       ::testing::Values(TimeZone::Pacific,
                                         TimeZone::Mountain,
                                         TimeZone::Central,
                                         TimeZone::Eastern)));

TEST(Timestamp, SameInstantDifferentClocksDifferentStrings) {
  // The core of challenge [C2]: the same event is stamped differently by
  // different log sources.
  const SimTime t{4.0e8};
  const std::string utc = format_timestamp(t, {ClockKind::Utc, {}});
  const std::string edt =
      format_timestamp(t, {ClockKind::FixedEdt, {}});
  const std::string pac =
      format_timestamp(t, {ClockKind::Local, TimeZone::Pacific});
  EXPECT_NE(utc, edt);
  EXPECT_NE(edt, pac);
  // But all three parse back to the same instant.
  EXPECT_NEAR(parse_timestamp(utc, {ClockKind::Utc, {}})->ms_since_epoch,
              parse_timestamp(edt, {ClockKind::FixedEdt, {}})
                  ->ms_since_epoch,
              1.0);
}

TEST(Timestamp, RejectsGarbage) {
  EXPECT_FALSE(parse_timestamp("not a time", {ClockKind::Utc, {}}));
  EXPECT_FALSE(parse_timestamp("2021-08-08 10:00:00.000",
                               {ClockKind::Utc, {}}));  // wrong year
  EXPECT_FALSE(parse_timestamp("2022-09-08 10:00:00.000",
                               {ClockKind::Utc, {}}));  // wrong month
}

TEST(XcalFilename, RoundTrip) {
  const SimTime start{4.2e8};
  const std::string name = xcal_filename("Verizon", start,
                                         TimeZone::Mountain);
  EXPECT_NE(name.find("XCAL_Verizon_2022-08-"), std::string::npos);
  EXPECT_NE(name.find(".drm"), std::string::npos);
  const auto parsed = parse_xcal_filename(name, TimeZone::Mountain);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_NEAR(parsed->ms_since_epoch, start.ms_since_epoch, 1'000.0);
}

TEST(XcalFilename, WrongZoneShiftsTime) {
  // Parsing a local-time filename with the wrong zone: the classic bug the
  // study had to untangle. Off by exactly the zone difference.
  const SimTime start{4.2e8};
  const std::string name =
      xcal_filename("ATT", start, TimeZone::Pacific);
  const auto wrong = parse_xcal_filename(name, TimeZone::Eastern);
  ASSERT_TRUE(wrong.has_value());
  EXPECT_NEAR(start.ms_since_epoch - wrong->ms_since_epoch, 3.0 * 3600e3,
              1'000.0);
}

TEST(XcalFilename, RejectsMalformed) {
  EXPECT_FALSE(parse_xcal_filename("junk.drm", TimeZone::Pacific));
  EXPECT_FALSE(parse_xcal_filename("XCAL_V_2022-08-10_10-00-00.txt",
                                   TimeZone::Pacific));
}

TEST(Matcher, PicksOverlappingXcalFile) {
  // Three consecutive recordings; the app log sits inside the second.
  std::vector<XcalFile> xcal = {
      {"a.drm", SimTime{0.0}, SimTime{1'800e3}},
      {"b.drm", SimTime{1'800e3}, SimTime{3'600e3}},
      {"c.drm", SimTime{3'600e3}, SimTime{5'400e3}},
  };
  AppLogFile log;
  log.clock = {ClockKind::Utc, {}};
  log.first_record = format_timestamp(SimTime{2'000e3}, log.clock);
  log.last_record = format_timestamp(SimTime{2'500e3}, log.clock);
  const auto idx = match_app_log(log, xcal);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 1u);
}

TEST(Matcher, LocalClockLogStillMatches) {
  // The app stamped local (Central) time while XCAL contents are EDT-based
  // absolute intervals; the matcher normalizes both.
  std::vector<XcalFile> xcal = {
      {"a.drm", SimTime{0.0}, SimTime{1'800e3}},
      {"b.drm", SimTime{1'800e3}, SimTime{3'600e3}},
  };
  AppLogFile log;
  log.clock = {ClockKind::Local, TimeZone::Central};
  log.first_record = format_timestamp(SimTime{600e3}, log.clock);
  log.last_record = format_timestamp(SimTime{900e3}, log.clock);
  const auto idx = match_app_log(log, xcal);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 0u);
}

TEST(Matcher, NoOverlapNoMatch) {
  std::vector<XcalFile> xcal = {{"a.drm", SimTime{0.0}, SimTime{100e3}}};
  AppLogFile log;
  log.clock = {ClockKind::Utc, {}};
  log.first_record = format_timestamp(SimTime{500e3}, log.clock);
  log.last_record = format_timestamp(SimTime{600e3}, log.clock);
  EXPECT_FALSE(match_app_log(log, xcal).has_value());
}

TEST(Matcher, UnparsableLogNoMatch) {
  std::vector<XcalFile> xcal = {{"a.drm", SimTime{0.0}, SimTime{100e3}}};
  AppLogFile log;
  log.clock = {ClockKind::Utc, {}};
  log.first_record = "corrupt";
  log.last_record = "corrupt";
  EXPECT_FALSE(match_app_log(log, xcal).has_value());
}

TEST(AlignTimelines, NearestWithinTolerance) {
  const std::vector<SimTime> left = {SimTime{100.0}, SimTime{600.0},
                                     SimTime{1'200.0}};
  const std::vector<SimTime> right = {SimTime{90.0}, SimTime{590.0},
                                      SimTime{2'000.0}};
  const auto idx = align_timelines(left, right, Millis{50.0});
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 0);
  EXPECT_EQ(idx[1], 1);
  EXPECT_EQ(idx[2], -1);  // 800 ms away: beyond tolerance
}

TEST(AlignTimelines, EmptyInputs) {
  EXPECT_TRUE(align_timelines({}, {SimTime{1.0}}, Millis{5.0}).empty());
  const auto idx = align_timelines({SimTime{1.0}}, {}, Millis{5.0});
  ASSERT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx[0], -1);
}

}  // namespace
}  // namespace wheels::logsync
