// Scenario engine unit tests: JSON parsing (strict keys, helpful errors),
// validation of malformed specs, canonical serialization round-trips,
// scenario hashing, the built-in library, and the scenarios/ directory
// staying in sync with the built-ins it mirrors.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "apps/app_campaign.h"
#include "dataset/fingerprint.h"
#include "scenario/json.h"
#include "scenario/spec.h"
#include "trip/campaign.h"

#ifndef WHEELS_SCENARIO_DIR
#define WHEELS_SCENARIO_DIR "scenarios"
#endif

namespace wheels::scenario {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "cannot open " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

std::string error_of(const std::string& json) {
  try {
    (void)parse_scenario_json(json);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(ScenarioJson, ParsesScalarsArraysObjects) {
  const JsonValue v = parse_json(
      R"({"a": 1.5, "b": [true, null, "x\n"], "c": {"d": -3}})");
  ASSERT_EQ(v.kind, JsonValue::Kind::Object);
  EXPECT_EQ(v.find("a")->number, 1.5);
  ASSERT_EQ(v.find("b")->array.size(), 3u);
  EXPECT_TRUE(v.find("b")->array[0].boolean);
  EXPECT_EQ(v.find("b")->array[2].string, "x\n");
  EXPECT_EQ(v.find("c")->find("d")->number, -3.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ScenarioJson, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse_json("{"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("{} trailing"), std::invalid_argument);
  EXPECT_THROW((void)parse_json(R"({"a":1,"a":2})"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("[1,]"), std::invalid_argument);
  EXPECT_THROW((void)parse_json("nul"), std::invalid_argument);
}

TEST(ScenarioSpecTest, RejectsUnknownKey) {
  EXPECT_NE(error_of(R"({"nam": "x"})").find("unknown key nam"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"speed": {"warp": 9}})")
                .find("unknown key speed.warp"),
            std::string::npos);
}

TEST(ScenarioSpecTest, RejectsUnknownBand) {
  EXPECT_NE(error_of(R"({"bands": {"6G": {"carrier_mhz": 1}}})")
                .find("unknown band \"6G\""),
            std::string::npos);
}

TEST(ScenarioSpecTest, RejectsNegativeSpeed) {
  EXPECT_THROW((void)parse_scenario_json(R"({"speed": {"urban_mph": -5}})"),
               std::invalid_argument);
}

TEST(ScenarioSpecTest, RejectsDuplicateOperatorName) {
  const char* json = R"({"operators": [
    {"name": "A", "calibration": "verizon"},
    {"name": "A", "calibration": "tmobile"},
    {"name": "B", "calibration": "att"}]})";
  EXPECT_THROW((void)parse_scenario_json(json), std::invalid_argument);
}

TEST(ScenarioSpecTest, RejectsWrongRosterSize) {
  const char* json = R"({"operators": [
    {"name": "A", "calibration": "verizon"},
    {"name": "B", "calibration": "tmobile"}]})";
  EXPECT_THROW((void)parse_scenario_json(json), std::invalid_argument);
}

TEST(ScenarioSpecTest, RejectsUnknownCalibration) {
  const char* json = R"({"operators": [
    {"name": "A", "calibration": "sprint"},
    {"name": "B", "calibration": "tmobile"},
    {"name": "C", "calibration": "att"}]})";
  EXPECT_THROW((void)parse_scenario_json(json), std::invalid_argument);
}

TEST(ScenarioSpecTest, RejectsRouteWithoutEdgeServer) {
  const char* json = R"({"route": {"waypoints": [
    {"name": "A", "lat": 1.0, "lon": 2.0},
    {"name": "B", "lat": 3.0, "lon": 4.0}]}})";
  EXPECT_THROW((void)parse_scenario_json(json), std::invalid_argument);
}

TEST(ScenarioSpecTest, RejectsSingleWaypointRoute) {
  const char* json = R"({"route": {"waypoints": [
    {"name": "A", "lat": 1.0, "lon": 2.0, "edge_server": true}]}})";
  EXPECT_THROW((void)parse_scenario_json(json), std::invalid_argument);
}

TEST(ScenarioSpecTest, BuiltinsValidateAndRoundTrip) {
  const auto all = builtin_scenarios();
  ASSERT_EQ(all.size(), 6u);
  for (const ScenarioSpec& spec : all) {
    EXPECT_NO_THROW(validate(spec)) << spec.name;
    const std::string json = to_json(spec);
    const ScenarioSpec reparsed = parse_scenario_json(json);
    EXPECT_EQ(to_json(reparsed), json)
        << spec.name << ": to_json -> parse -> to_json is not a fixpoint";
    EXPECT_EQ(scenario_hash(reparsed), scenario_hash(spec))
        << spec.name << ": hash changed across a serialization round-trip";
  }
}

TEST(ScenarioSpecTest, HashIgnoresNameAndDescription) {
  ScenarioSpec a = paper_default();
  ScenarioSpec b = paper_default();
  b.name = "renamed-copy";
  b.description = "different words entirely";
  EXPECT_EQ(scenario_hash(a), scenario_hash(b));
  b.seed = 43;
  EXPECT_NE(scenario_hash(a), scenario_hash(b));
}

TEST(ScenarioSpecTest, BuiltinHashesAreDistinct) {
  const auto all = builtin_scenarios();
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(scenario_hash(all[i]), scenario_hash(all[j]))
          << all[i].name << " and " << all[j].name
          << " hash identically: the cache would conflate them";
    }
  }
}

TEST(ScenarioSpecTest, FingerprintsAreDistinctAcrossBuiltins) {
  const auto all = builtin_scenarios();
  std::vector<std::uint64_t> fps;
  for (const ScenarioSpec& spec : all) {
    fps.push_back(
        dataset::fingerprint(trip::CampaignConfig::from_scenario(spec, 64)));
    fps.push_back(
        dataset::fingerprint(apps::AppCampaignConfig::from_scenario(spec, 64)));
  }
  for (std::size_t i = 0; i < fps.size(); ++i) {
    for (std::size_t j = i + 1; j < fps.size(); ++j) {
      EXPECT_NE(fps[i], fps[j]) << "fingerprint collision at " << i << "," << j;
    }
  }
}

TEST(ScenarioSpecTest, PaperDefaultConfigMatchesLegacyDefaults) {
  // Satellite #2 of the refactor: CampaignConfig's timing fields are now
  // derived from the spec. A from_scenario(paper_default()) config must be
  // indistinguishable from a default-constructed legacy config.
  const trip::CampaignConfig legacy;
  const trip::CampaignConfig derived =
      trip::CampaignConfig::from_scenario(paper_default(), 1);
  EXPECT_EQ(derived.seed, legacy.seed);
  EXPECT_EQ(derived.slot.value, legacy.slot.value);
  EXPECT_EQ(derived.tput_test_duration.value, legacy.tput_test_duration.value);
  EXPECT_EQ(derived.rtt_test_duration.value, legacy.rtt_test_duration.value);
  EXPECT_EQ(derived.gap.value, legacy.gap.value);
  EXPECT_EQ(derived.ping_interval.value, legacy.ping_interval.value);
  EXPECT_EQ(derived.sample_window.value, legacy.sample_window.value);
  EXPECT_EQ(derived.cycle_stride, legacy.cycle_stride);
  EXPECT_EQ(derived.drive.hours_per_day, legacy.drive.hours_per_day);
  EXPECT_EQ(derived.drive.start_hour_local, legacy.drive.start_hour_local);
  EXPECT_EQ(derived.drive.speed.urban_mph, legacy.drive.speed.urban_mph);
  EXPECT_EQ(derived.drive.speed.max_mph, legacy.drive.speed.max_mph);
  EXPECT_EQ(dataset::fingerprint(derived), dataset::fingerprint(legacy));

  const apps::AppCampaignConfig alegacy;
  const apps::AppCampaignConfig aderived =
      apps::AppCampaignConfig::from_scenario(paper_default(), 1);
  EXPECT_EQ(aderived.seed, alegacy.seed);
  EXPECT_EQ(aderived.gap.value, alegacy.gap.value);
  EXPECT_EQ(dataset::fingerprint(aderived), dataset::fingerprint(alegacy));
}

TEST(ScenarioSpecTest, LoadScenarioResolvesBuiltinsAndRejectsUnknown) {
  EXPECT_EQ(load_scenario("urban-loop").name, "urban-loop");
  EXPECT_THROW((void)load_scenario("not-a-scenario"), std::invalid_argument);
}

TEST(ScenarioSpecTest, LibraryFilesMatchBuiltins) {
  // Every scenarios/*.json delta file must reproduce its built-in exactly:
  // the file is documentation users copy from, so drift is a bug.
  const std::string dir = WHEELS_SCENARIO_DIR;
  for (const ScenarioSpec& spec : builtin_scenarios()) {
    const std::string path = dir + "/" + spec.name + ".json";
    const std::string text = read_file(path);
    ASSERT_FALSE(text.empty()) << path;
    const ScenarioSpec from_file = parse_scenario_json(text);
    EXPECT_EQ(to_json(from_file), to_json(spec))
        << path << " drifted from the built-in definition";
    const ScenarioSpec loaded = load_scenario(path);
    EXPECT_EQ(scenario_hash(loaded), scenario_hash(spec)) << path;
  }
}

}  // namespace
}  // namespace wheels::scenario
