// End-to-end smoke: a short strided campaign produces sane logs.
#include <gtest/gtest.h>

#include "analysis/coverage.h"
#include "trip/campaign.h"

namespace wheels {
namespace {

TEST(Smoke, StridedCampaignProducesLogs) {
  trip::CampaignConfig cfg;
  cfg.seed = 7;
  cfg.cycle_stride = 30;  // ~3% of the cycles: fast smoke
  trip::Campaign campaign(cfg);
  const auto& res = campaign.run();

  EXPECT_GT(res.route_length.kilometers(), 5'000.0);
  EXPECT_GE(res.days, 6);
  for (const auto& log : res.logs) {
    EXPECT_FALSE(log.kpi.empty());
    EXPECT_FALSE(log.rtt.empty());
    EXPECT_FALSE(log.passive.empty());
    EXPECT_GT(log.unique_cells, 100u);
    const auto shares = analysis::coverage_from_kpi(log.kpi);
    EXPECT_NEAR(shares.share[0] + shares.share[1] + shares.share[2] +
                    shares.share[3] + shares.share[4] + shares.share[5],
                1.0, 1e-6);
  }
}

}  // namespace
}  // namespace wheels
