#!/usr/bin/env python3
"""Tests for tools/wheels_lint.py.

Each fixture directory under tests/lint_fixtures/ is a miniature repo
(src/<module>/...) run through the linter with --root. A rule only counts
as enforced if it (a) fires on the violating snippet at the expected
location and (b) stays quiet on the adjacent compliant code.

Run directly (python3 tests/test_lint_rules.py) or via ctest.
"""

import json
import os
import subprocess
import sys
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TESTS_DIR)
LINT = os.path.join(REPO_ROOT, "tools", "wheels_lint.py")
FIXTURES = os.path.join(TESTS_DIR, "lint_fixtures")


def run_lint(fixture, *extra):
    root = os.path.join(FIXTURES, fixture)
    proc = subprocess.run(
        [sys.executable, LINT, "--root", root, "--no-format", *extra],
        capture_output=True,
        text=True,
        check=False)
    return proc.returncode, proc.stdout


class CleanFixture(unittest.TestCase):
    def test_clean_tree_passes(self):
        code, out = run_lint("clean")
        self.assertEqual(code, 0, out)
        self.assertIn("OK", out)

    def test_tokens_in_comments_and_strings_do_not_fire(self):
        # clean/ contains banned tokens inside comments and string
        # literals; a naive grep would flag them.
        code, out = run_lint("clean")
        self.assertEqual(code, 0, out)
        self.assertNotIn("banned-random", out)


class BannedRandom(unittest.TestCase):
    def test_all_banned_sources_fire(self):
        code, out = run_lint("banned_random")
        self.assertEqual(code, 1, out)
        bad = "src/trip/bad_entropy.cpp"
        for token in ("std::random_device", "std::mt19937", "std::rand",
                      "time(nullptr)", "std::chrono::system_clock"):
            self.assertIn(token, out, f"{token} did not fire")
        self.assertIn(bad, out)

    def test_core_rng_is_allowlisted(self):
        _, out = run_lint("banned_random")
        self.assertNotIn("src/core/rng.cpp", out)


class FloatEq(unittest.TestCase):
    def test_direct_comparisons_fire(self):
        code, out = run_lint("float_eq")
        self.assertEqual(code, 1, out)
        # Four sites in analysis (==0.0, !=0.5, 1e-3==, ==2.5f), one in
        # radio.
        self.assertEqual(out.count("bad_compare.cpp"), 4, out)
        self.assertIn("bad_compare_radio.cpp", out)

    def test_rule_scoped_to_analysis_and_radio(self):
        _, out = run_lint("float_eq")
        self.assertNotIn("outside_scope.cpp", out)


class UnorderedIter(unittest.TestCase):
    def test_range_for_over_unordered_fires(self):
        code, out = run_lint("unordered_iter")
        self.assertEqual(code, 1, out)
        self.assertEqual(out.count("unordered-iter"), 2, out)

    def test_vector_iteration_is_fine(self):
        _, out = run_lint("unordered_iter")
        # Only the two unordered loops, not the vector loop at line 29+.
        self.assertNotIn(":31:", out)


class PragmaOnce(unittest.TestCase):
    def test_missing_pragma_fires(self):
        code, out = run_lint("pragma_once")
        self.assertEqual(code, 1, out)
        self.assertIn("no_guard.h", out)
        self.assertIn("pragma-once", out)


class IncludeHygiene(unittest.TestCase):
    def test_bad_includes_fire(self):
        code, out = run_lint("include_hygiene")
        self.assertEqual(code, 1, out)
        self.assertEqual(out.count("include-hygiene"), 2, out)
        self.assertIn('"band.h"', out)
        self.assertIn('"nosuchmodule/header.h"', out)

    def test_parent_relative_path_fires_the_dedicated_rule(self):
        # "../core/rng.h" used to be an include-hygiene finding; it now
        # belongs to relative-include so the two failure modes can be
        # toggled and diffed independently.
        _, out = run_lint("include_hygiene")
        self.assertEqual(out.count("relative-include"), 1, out)
        self.assertIn('"../core/rng.h"', out)

    def test_module_qualified_include_is_fine(self):
        _, out = run_lint("include_hygiene")
        self.assertNotIn('"radio/bad_includes.h"', out)


class RelativeInclude(unittest.TestCase):
    def test_parent_relative_include_fires(self):
        code, out = run_lint("relative_include")
        self.assertEqual(code, 1, out)
        self.assertIn("relative-include", out)
        self.assertIn("uses_parent.cpp:2:", out)

    def test_module_qualified_and_allowed_stay_quiet(self):
        # Line 1 is module-qualified; line 4 carries an allow() comment.
        _, out = run_lint("relative_include")
        self.assertEqual(out.count("relative-include"), 1, out)


class JsonFormat(unittest.TestCase):
    def test_findings_serialize_with_rule_path_line_message(self):
        code, out = run_lint("relative_include", "--format=json")
        self.assertEqual(code, 1, out)
        doc = json.loads(out)
        self.assertEqual(doc["tool"], "wheels-lint")
        self.assertEqual(len(doc["findings"]), 1, out)
        f = doc["findings"][0]
        self.assertEqual(f["rule"], "relative-include")
        self.assertEqual(f["path"], "src/trip/uses_parent.cpp")
        self.assertEqual(f["line"], 2)
        self.assertIn("parent-relative", f["message"])

    def test_clean_tree_serializes_empty_findings(self):
        code, out = run_lint("clean", "--format=json")
        self.assertEqual(code, 0, out)
        doc = json.loads(out)
        self.assertEqual(doc["findings"], [])
        self.assertGreater(doc["files_scanned"], 0)


class DuplicateFork(unittest.TestCase):
    def test_repeated_literal_label_fires(self):
        code, out = run_lint("duplicate_fork")
        self.assertEqual(code, 1, out)
        self.assertIn("duplicate-fork", out)
        self.assertIn("dup_fork.cpp:11", out)
        self.assertIn('"cell"', out)

    def test_repeated_integer_salt_fires(self):
        # 0x7 and 7 are the same salt whatever the spelling.
        _, out = run_lint("duplicate_fork")
        self.assertIn("dup_fork.cpp:52", out)
        self.assertIn("salt 0x7", out)

    def test_compliant_variants_stay_quiet(self):
        # Exactly two findings: distinct labels/salts, other scopes, other
        # parents, computed labels, chained forks, string mentions and a
        # label spelled like a number are all allowed.
        _, out = run_lint("duplicate_fork")
        self.assertEqual(out.count("duplicate-fork"), 2, out)


class StaticLocal(unittest.TestCase):
    def test_mutable_function_local_statics_fire(self):
        code, out = run_lint("static_local")
        self.assertEqual(code, 1, out)
        # Plain int, dynamically-initialised string, static in a nested
        # block -- and nothing else.
        self.assertEqual(out.count("static-local"), 3, out)
        for line in (10, 15, 21):
            self.assertIn(f"bad_static.cpp:{line}:", out)

    def test_compliant_statics_stay_quiet(self):
        # const/constexpr locals, namespace-scope statics, static member
        # declarations and a suppressed atomic are all allowed.
        _, out = run_lint("static_local")
        self.assertNotIn("good_static.cpp", out)


class SteadyClock(unittest.TestCase):
    def test_host_clock_reads_fire(self):
        code, out = run_lint("steady_clock")
        self.assertEqual(code, 1, out)
        # steady_clock::now() and the high_resolution_clock alias (which
        # additionally trips banned-random -- two rules, two findings).
        self.assertEqual(out.count("steady-clock"), 2, out)
        for line in (8, 13):
            self.assertIn(f"bad_timing.cpp:{line}:", out)

    def test_obs_module_is_the_blessed_reader(self):
        _, out = run_lint("steady_clock")
        self.assertNotIn("src/obs/clock.cpp", out)

    def test_scoped_to_src_and_suppressible(self):
        _, out = run_lint("steady_clock")
        self.assertNotIn("outside_scope.cpp", out)
        self.assertNotIn("suppressed_timing.cpp", out)


class FpReassoc(unittest.TestCase):
    def test_all_reassociation_hazards_fire(self):
        code, out = run_lint("fp_reassoc")
        self.assertEqual(code, 1, out)
        # FP_CONTRACT pragma, float_control pragma, std::reduce,
        # std::transform_reduce, fast-math attribute, accumulate over an
        # unordered map -- and nothing else.
        self.assertEqual(out.count("fp-reassoc"), 6, out)
        for line in (10, 14, 17, 21, 24, 32):
            self.assertIn(f"bad_fp.cpp:{line}:", out)

    def test_ordered_accumulate_stays_quiet(self):
        # The std::accumulate over a vector at the bottom of the fixture.
        _, out = run_lint("fp_reassoc")
        self.assertNotIn(":40:", out)


class SarifFormat(unittest.TestCase):
    def test_sarif_round_trips_the_json_findings(self):
        # The SARIF document must carry exactly the findings the native
        # JSON format reports, field for field.
        _, json_out = run_lint("relative_include", "--format=json")
        code, sarif_out = run_lint("relative_include", "--format=sarif")
        self.assertEqual(code, 1, sarif_out)
        native = json.loads(json_out)["findings"]
        doc = json.loads(sarif_out)
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        self.assertEqual(run["tool"]["driver"]["name"], "wheels-lint")
        results = run["results"]
        self.assertEqual(len(results), len(native))
        for res, f in zip(results, native):
            self.assertEqual(res["ruleId"], f["rule"])
            self.assertEqual(res["message"]["text"], f["message"])
            loc = res["locations"][0]["physicalLocation"]
            self.assertEqual(loc["artifactLocation"]["uri"], f["path"])
            self.assertEqual(loc["region"]["startLine"], f["line"])
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        self.assertEqual(rule_ids, {f["rule"] for f in native})


class AllowSuppression(unittest.TestCase):
    def test_allow_comment_suppresses_same_and_previous_line(self):
        code, out = run_lint("allow_suppression")
        # The two allowed sites are silent; the mismatched-rule site fires.
        self.assertEqual(code, 1, out)
        self.assertEqual(out.count("float-eq"), 1, out)
        self.assertIn(":18:", out)


class RepoIsClean(unittest.TestCase):
    def test_real_repo_passes(self):
        proc = subprocess.run(
            [sys.executable, LINT, "--root", REPO_ROOT, "--no-format"],
            capture_output=True,
            text=True,
            check=False)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
