#include <gtest/gtest.h>

#include "net/ping.h"
#include "net/server.h"

namespace wheels::net {
namespace {

ServerSelector make_selector() {
  return ServerSelector({{"Los Angeles", Meters{0.0}},
                         {"Denver", Meters{1'900'000.0}},
                         {"Boston", Meters{5'600'000.0}}});
}

TEST(Server, VerizonGetsEdgeNearCity) {
  const auto sel = make_selector();
  const auto ep = sel.select(ran::OperatorId::Verizon, Meters{10'000.0},
                             TimeZone::Pacific);
  EXPECT_EQ(ep.kind, ServerKind::Edge);
  EXPECT_LT(ep.one_way_delay.value, 5.0);
  EXPECT_NE(ep.name.find("Los Angeles"), std::string::npos);
}

TEST(Server, VerizonFallsBackToCloudFarFromEdge) {
  const auto sel = make_selector();
  const auto ep = sel.select(ran::OperatorId::Verizon, Meters{900'000.0},
                             TimeZone::Mountain);
  EXPECT_EQ(ep.kind, ServerKind::Cloud);
}

TEST(Server, OtherOperatorsAlwaysCloud) {
  const auto sel = make_selector();
  for (auto op : {ran::OperatorId::TMobile, ran::OperatorId::ATT}) {
    const auto ep = sel.select(op, Meters{0.0}, TimeZone::Pacific);
    EXPECT_EQ(ep.kind, ServerKind::Cloud) << to_string(op);
  }
}

TEST(Server, CloudDelayDependsOnTimezone) {
  // Mountain-zone tests use the California servers: longest wired path.
  const auto mtn = ServerSelector::cloud_for(TimeZone::Mountain);
  const auto pac = ServerSelector::cloud_for(TimeZone::Pacific);
  const auto est = ServerSelector::cloud_for(TimeZone::Eastern);
  EXPECT_GT(mtn.one_way_delay.value, pac.one_way_delay.value);
  EXPECT_GT(mtn.one_way_delay.value, est.one_way_delay.value);
}

TEST(Server, NearestEdgeChosen) {
  const auto sel = make_selector();
  const auto ep = sel.select(ran::OperatorId::Verizon,
                             Meters{1'910'000.0}, TimeZone::Mountain);
  EXPECT_EQ(ep.kind, ServerKind::Edge);
  EXPECT_NE(ep.name.find("Denver"), std::string::npos);
}

ran::LinkSample connected_sample() {
  ran::LinkSample s;
  s.connected = true;
  s.air_latency = Millis{15.0};
  s.bler_dl = 0.05;
  return s;
}

TEST(Ping, RttComposition) {
  Rng rng(1);
  auto s = connected_sample();
  const auto rtt = ping_rtt(s, Millis{10.0}, rng);
  ASSERT_TRUE(rtt.has_value());
  // 2x air + 2x path + server processing.
  EXPECT_NEAR(rtt->value, 2.0 * 15.0 + 2.0 * 10.0 + 0.5, 1e-9);
}

TEST(Ping, HandoverBufferingShowsUpInAirLatency) {
  Rng rng(2);
  auto s = connected_sample();
  s.in_handover = true;
  s.air_latency = Millis{80.0};  // includes remaining interruption
  const auto rtt = ping_rtt(s, Millis{10.0}, rng);
  ASSERT_TRUE(rtt.has_value());
  EXPECT_GT(rtt->value, 150.0);
}

TEST(Ping, MostlyLostWhenDisconnected) {
  Rng rng(3);
  ran::LinkSample s;  // disconnected
  int lost = 0, delayed = 0;
  for (int i = 0; i < 2'000; ++i) {
    const auto rtt = ping_rtt(s, Millis{10.0}, rng);
    if (!rtt) {
      ++lost;
    } else {
      ++delayed;
      EXPECT_GT(rtt->value, 500.0);  // straggler echoes are second-scale
    }
  }
  EXPECT_GT(lost, delayed * 3);
}

TEST(Ping, TimeoutDropsExtremeRtt) {
  Rng rng(4);
  auto s = connected_sample();
  s.air_latency = Millis{5'000.0};
  PingConfig cfg;
  EXPECT_FALSE(ping_rtt(s, Millis{10.0}, rng, cfg).has_value());
}

TEST(Ping, CellEdgeSpikesExist) {
  Rng rng(5);
  auto s = connected_sample();
  s.bler_dl = 0.5;  // cell edge: retransmission storms possible
  int spikes = 0;
  for (int i = 0; i < 5'000; ++i) {
    const auto rtt = ping_rtt(s, Millis{10.0}, rng);
    if (rtt && rtt->value > 250.0) ++spikes;
  }
  EXPECT_GT(spikes, 50);
  EXPECT_LT(spikes, 1'000);
}

}  // namespace
}  // namespace wheels::net
