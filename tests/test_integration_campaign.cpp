// Integration: a strided network campaign end-to-end, checking the
// structural invariants every figure/table depends on. One shared campaign
// run (expensive) feeds all the checks.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/coverage.h"
#include "analysis/correlation.h"
#include "analysis/dataset_stats.h"
#include "analysis/handover_analysis.h"
#include "analysis/longterm.h"
#include "analysis/performance.h"
#include "trip/campaign.h"

namespace wheels {
namespace {

class CampaignIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trip::CampaignConfig cfg;
    cfg.seed = 20250707;
    cfg.cycle_stride = 12;
    campaign_ = new trip::Campaign(cfg);
    result_ = new trip::CampaignResult(campaign_->run());
  }
  static void TearDownTestSuite() {
    delete result_;
    delete campaign_;
    result_ = nullptr;
    campaign_ = nullptr;
  }

  static trip::Campaign* campaign_;
  static trip::CampaignResult* result_;
};

trip::Campaign* CampaignIntegration::campaign_ = nullptr;
trip::CampaignResult* CampaignIntegration::result_ = nullptr;

TEST_F(CampaignIntegration, TripShapeMatchesStudy) {
  EXPECT_NEAR(result_->route_length.kilometers(), 5'711.0, 150.0);
  EXPECT_GE(result_->days, 7);
  EXPECT_LE(result_->days, 12);
  EXPECT_GT(result_->drive_time.minutes(), 3'000.0);
}

TEST_F(CampaignIntegration, AllLogsPopulatedForEveryOperator) {
  for (const auto& log : result_->logs) {
    EXPECT_GT(log.kpi.size(), 500u) << to_string(log.op);
    EXPECT_GT(log.rtt.size(), 200u);
    EXPECT_GT(log.passive.size(), 10'000u);
    EXPECT_GT(log.tests.size(), 20u);
    EXPECT_GT(log.unique_cells, 200u);
    EXPECT_FALSE(log.test_handovers.empty());
    EXPECT_FALSE(log.passive_handovers.empty());
  }
}

TEST_F(CampaignIntegration, KpiTimesMonotonicPerOperator) {
  for (const auto& log : result_->logs) {
    for (std::size_t i = 1; i < log.kpi.size(); ++i) {
      EXPECT_LE(log.kpi[i - 1].time.ms_since_epoch,
                log.kpi[i].time.ms_since_epoch);
    }
  }
}

TEST_F(CampaignIntegration, SamplesCarryConsistentContext) {
  for (const auto& log : result_->logs) {
    for (const auto& s : log.kpi) {
      EXPECT_GE(s.tput_mbps, 0.0);
      EXPECT_LE(s.tput_mbps, 3'600.0);
      EXPECT_GE(s.speed.value, 0.0);
      EXPECT_LE(s.speed.value, 85.0);
      EXPECT_GE(s.position.value, 0.0);
      EXPECT_LE(s.position.value, result_->route_length.value + 1.0);
      if (s.connected) {
        EXPECT_GT(s.rsrp_dbm, -150.0);
        EXPECT_LT(s.rsrp_dbm, -30.0);
        EXPECT_GE(s.mcs, 0.0);
        EXPECT_LE(s.mcs, 28.0);
        EXPECT_GE(s.num_cc, 1.0);
      }
      EXPECT_GE(s.handovers, 0);
    }
  }
}

TEST_F(CampaignIntegration, WindowHandoverCountsMatchRecords) {
  for (const auto& log : result_->logs) {
    std::size_t windowed = 0;
    for (const auto& s : log.kpi) {
      windowed += static_cast<std::size_t>(s.handovers);
    }
    std::size_t summarized = 0;
    for (const auto& t : log.tests) {
      if (t.test != trip::TestType::Ping) {
        summarized += static_cast<std::size_t>(t.handovers);
      }
    }
    // Per-window counts and per-test summaries tally the same events; the
    // full record stream additionally covers RTT tests, gaps, and the
    // fast-forwarded cycles, so it dominates both.
    EXPECT_EQ(windowed, summarized) << to_string(log.op);
    EXPECT_LE(windowed, log.test_handovers.size());
    EXPECT_GT(windowed, 0u);
  }
}

TEST_F(CampaignIntegration, CoverageShapesMatchPaper) {
  const auto& v = result_->for_op(ran::OperatorId::Verizon);
  const auto& t = result_->for_op(ran::OperatorId::TMobile);
  const auto& a = result_->for_op(ran::OperatorId::ATT);
  const auto cv = analysis::coverage_from_kpi(v.kpi);
  const auto ct = analysis::coverage_from_kpi(t.kpi);
  const auto ca = analysis::coverage_from_kpi(a.kpi);
  // T-Mobile leads 5G coverage by a wide margin (paper: 68 vs 18-22%).
  EXPECT_GT(ct.total_5g(), 0.5);
  EXPECT_GT(ct.total_5g(), cv.total_5g() + 0.25);
  EXPECT_GT(ct.total_5g(), ca.total_5g() + 0.25);
  EXPECT_LT(cv.total_5g(), 0.35);
  EXPECT_LT(ca.total_5g(), 0.35);
  // Verizon has the most mmWave; AT&T's high-speed 5G is thin.
  EXPECT_GT(cv.tech(radio::Tech::NR_MMWAVE),
            ct.tech(radio::Tech::NR_MMWAVE));
  EXPECT_LT(ca.high_speed_5g(), 0.12);
  // T-Mobile is the only carrier with large mid-band share.
  EXPECT_GT(ct.tech(radio::Tech::NR_MID), 0.2);
}

TEST_F(CampaignIntegration, PassiveViewPessimisticVsActive) {
  // Fig. 1: the handover-logger (passive) sees far less 5G than the XCAL
  // logs from backlogged tests.
  for (const auto& log : result_->logs) {
    const auto passive = analysis::coverage_from_passive(log.passive);
    analysis::KpiFilter dl;
    dl.only_downlink = true;
    const auto active = analysis::coverage_from_kpi(log.kpi, dl);
    EXPECT_LT(passive.total_5g(), active.total_5g() + 0.02)
        << to_string(log.op);
  }
  // AT&T passive: zero 5G, like Fig. 1d.
  const auto att_passive = analysis::coverage_from_passive(
      result_->for_op(ran::OperatorId::ATT).passive);
  EXPECT_NEAR(att_passive.total_5g(), 0.0, 0.005);
}

TEST_F(CampaignIntegration, DownlinkGetsMoreHighSpeed5gThanUplink) {
  for (const auto& log : result_->logs) {
    analysis::KpiFilter dl, ul;
    dl.only_downlink = true;
    ul.only_uplink = true;
    const auto cdl = analysis::coverage_from_kpi(log.kpi, dl);
    const auto cul = analysis::coverage_from_kpi(log.kpi, ul);
    EXPECT_GE(cdl.high_speed_5g(), cul.high_speed_5g() - 0.02)
        << to_string(log.op);
  }
}

TEST_F(CampaignIntegration, DrivingPerformanceInPaperBands) {
  for (const auto& log : result_->logs) {
    analysis::PerfFilter dl, ul;
    dl.test = trip::TestType::DownlinkBulk;
    ul.test = trip::TestType::UplinkBulk;
    const auto dls = analysis::tput_samples(log.kpi, dl);
    const auto uls = analysis::tput_samples(log.kpi, ul);
    const auto rtts = analysis::rtt_samples(log.rtt, {});
    ASSERT_GT(dls.size(), 300u);
    // Paper Fig. 3b: DL median 6-34 Mbps, UL median 6-9 Mbps (we allow
    // slack for the strided subsample), RTT median 60-76 ms.
    EXPECT_GT(percentile(dls, 50.0), 5.0) << to_string(log.op);
    EXPECT_LT(percentile(dls, 50.0), 45.0);
    EXPECT_GT(percentile(uls, 50.0), 3.0);
    EXPECT_LT(percentile(uls, 50.0), 15.0);
    EXPECT_GT(percentile(rtts, 50.0), 50.0);
    EXPECT_LT(percentile(rtts, 50.0), 100.0);
    // A significant very-low-throughput tail exists in both directions.
    EXPECT_GT(EmpiricalCdf(dls).at(5.0), 0.12);
    EXPECT_GT(EmpiricalCdf(uls).at(5.0), 0.2);
  }
}

TEST_F(CampaignIntegration, KpiCorrelationsAreWeak) {
  // Table 2: no KPI has |r| > ~0.65 with throughput, and handovers have
  // essentially none.
  for (const auto& log : result_->logs) {
    for (auto test :
         {trip::TestType::DownlinkBulk, trip::TestType::UplinkBulk}) {
      const auto c = analysis::correlate(log.kpi, test);
      EXPECT_LT(std::abs(c.rsrp), 0.75);
      EXPECT_LT(std::abs(c.mcs), 0.75);
      EXPECT_LT(std::abs(c.ca), 0.75);
      EXPECT_LT(std::abs(c.bler), 0.6);
      EXPECT_LT(std::abs(c.speed), 0.6);
      EXPECT_LT(std::abs(c.handovers), 0.2);
    }
  }
}

TEST_F(CampaignIntegration, HandoverStatisticsMatchPaperShape) {
  for (const auto& log : result_->logs) {
    const auto hpm = analysis::handovers_per_mile(
        log.tests, trip::TestType::DownlinkBulk);
    ASSERT_GT(hpm.size(), 10u);
    const double med = percentile(hpm, 50.0);
    EXPECT_GE(med, 0.5) << to_string(log.op);
    EXPECT_LE(med, 6.0);
    const auto dur = analysis::handover_durations(
        log.tests, log.test_handovers, trip::TestType::DownlinkBulk);
    ASSERT_GT(dur.size(), 10u);
    const double dmed = percentile(dur, 50.0);
    EXPECT_GE(dmed, 35.0);
    EXPECT_LE(dmed, 120.0);
  }
}

TEST_F(CampaignIntegration, HandoverImpactMostlyNegativeDuringHo) {
  // Fig. 12: dT1 < 0 for ~80% of handover windows.
  std::size_t neg = 0, total = 0;
  for (const auto& log : result_->logs) {
    const auto impacts = analysis::handover_impacts(
        log.kpi, log.test_handovers, trip::TestType::DownlinkBulk);
    for (const auto& imp : impacts) {
      ++total;
      if (imp.delta_t1 < 0.0) ++neg;
    }
  }
  ASSERT_GT(total, 50u);
  EXPECT_GT(static_cast<double>(neg) / static_cast<double>(total), 0.6);
}

TEST_F(CampaignIntegration, StaticBaselineBeatsDrivingByOrders) {
  const auto sb = campaign_->run_static_baseline(ran::OperatorId::Verizon);
  ASSERT_GT(sb.cities_tested, 5);
  const double static_med = median(sb.dl_tput_mbps);
  analysis::PerfFilter dl;
  dl.test = trip::TestType::DownlinkBulk;
  const double driving_med = median(analysis::tput_samples(
      result_->for_op(ran::OperatorId::Verizon).kpi, dl));
  // Paper: driving medians are 1-5% of static medians.
  EXPECT_GT(static_med, driving_med * 8.0);
  EXPECT_GT(percentile(sb.dl_tput_mbps, 100.0), 1'500.0);
}

TEST_F(CampaignIntegration, DatasetStatsLookLikeTable1) {
  const auto st = analysis::dataset_stats(*result_);
  EXPECT_NEAR(st.total_km, 5'711.0, 150.0);
  EXPECT_EQ(st.timezones, 4);
  EXPECT_EQ(st.major_cities, 10);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(st.unique_cells[i], 200u);
    EXPECT_GT(st.handovers[i], 100u);
    EXPECT_GT(st.runtime_min[i], 3'000.0);
  }
  // T-Mobile sees the most cells and the most handovers (Table 1).
  const auto t = static_cast<std::size_t>(ran::OperatorId::TMobile);
  const auto v = static_cast<std::size_t>(ran::OperatorId::Verizon);
  const auto a = static_cast<std::size_t>(ran::OperatorId::ATT);
  EXPECT_GT(st.unique_cells[t], st.unique_cells[v]);
  EXPECT_GT(st.handovers[t], st.handovers[a]);
  EXPECT_GT(st.rx_gb, st.tx_gb);  // downlink moves more data
}

TEST_F(CampaignIntegration, EdgeServersOnlyForVerizon) {
  for (const auto& log : result_->logs) {
    bool any_edge = false;
    for (const auto& s : log.kpi) {
      if (s.server == net::ServerKind::Edge) any_edge = true;
    }
    if (log.op == ran::OperatorId::Verizon) {
      EXPECT_TRUE(any_edge);
    } else {
      EXPECT_FALSE(any_edge) << to_string(log.op);
    }
  }
}

TEST_F(CampaignIntegration, DeterministicAcrossRuns) {
  trip::CampaignConfig cfg;
  cfg.seed = 20250707;
  cfg.cycle_stride = 12;
  trip::Campaign again(cfg);
  const auto& res2 = again.run();
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(res2.logs[i].kpi.size(), result_->logs[i].kpi.size());
    for (std::size_t k = 0; k < res2.logs[i].kpi.size(); k += 97) {
      EXPECT_DOUBLE_EQ(res2.logs[i].kpi[k].tput_mbps,
                       result_->logs[i].kpi[k].tput_mbps);
    }
    EXPECT_EQ(res2.logs[i].test_handovers.size(),
              result_->logs[i].test_handovers.size());
  }
}

}  // namespace
}  // namespace wheels
