#include <gtest/gtest.h>

#include "net/mptcp.h"

namespace wheels::net {
namespace {

TEST(Mptcp, InstantAggregation) {
  const double rates[] = {30.0, 10.0, 5.0};
  const auto r = aggregate_instant(rates);
  EXPECT_DOUBLE_EQ(r.best_single_mbps, 30.0);
  EXPECT_DOUBLE_EQ(r.ideal_sum_mbps, 45.0);
  EXPECT_DOUBLE_EQ(r.realistic_mbps, 30.0 + 0.8 * 15.0);
  EXPECT_NEAR(r.gain_over_best, 42.0 / 30.0, 1e-12);
}

TEST(Mptcp, SingleOperatorNoGain) {
  const double rates[] = {20.0};
  const auto r = aggregate_instant(rates);
  EXPECT_DOUBLE_EQ(r.realistic_mbps, 20.0);
  EXPECT_DOUBLE_EQ(r.gain_over_best, 1.0);
}

TEST(Mptcp, AllZeroIsSafe) {
  const double rates[] = {0.0, 0.0};
  const auto r = aggregate_instant(rates);
  EXPECT_DOUBLE_EQ(r.realistic_mbps, 0.0);
  EXPECT_DOUBLE_EQ(r.gain_over_best, 1.0);
}

TEST(Mptcp, CustomEfficiency) {
  const double rates[] = {10.0, 10.0};
  const auto r = aggregate_instant(rates, 0.5);
  EXPECT_DOUBLE_EQ(r.realistic_mbps, 15.0);
}

TEST(Mptcp, SeriesAggregation) {
  const std::vector<std::vector<double>> series = {
      {10.0, 0.0, 5.0},
      {2.0, 8.0, 5.0},
  };
  const auto out = aggregate_series(series);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].best_single_mbps, 10.0);
  EXPECT_DOUBLE_EQ(out[1].best_single_mbps, 8.0);
  // Complementary outages: aggregation always has something.
  for (const auto& r : out) EXPECT_GT(r.realistic_mbps, 0.0);
}

TEST(Mptcp, SeriesRejectsUnequalLengths) {
  const std::vector<std::vector<double>> series = {{1.0, 2.0}, {1.0}};
  EXPECT_THROW(aggregate_series(series), std::invalid_argument);
}

TEST(Mptcp, EmptySeries) {
  EXPECT_TRUE(aggregate_series({}).empty());
}

}  // namespace
}  // namespace wheels::net
