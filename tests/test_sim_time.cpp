#include <gtest/gtest.h>

#include "core/sim_time.h"

namespace wheels {
namespace {

TEST(SimTime, Arithmetic) {
  SimTime t{1000.0};
  t += Millis{500.0};
  EXPECT_DOUBLE_EQ(t.ms_since_epoch, 1500.0);
  EXPECT_DOUBLE_EQ((t + Millis{100.0}).ms_since_epoch, 1600.0);
  EXPECT_DOUBLE_EQ((t - SimTime{1000.0}).value, 500.0);
}

TEST(TimeZone, UtcOffsetsAreDst) {
  EXPECT_EQ(utc_offset_hours(TimeZone::Pacific), -7);
  EXPECT_EQ(utc_offset_hours(TimeZone::Mountain), -6);
  EXPECT_EQ(utc_offset_hours(TimeZone::Central), -5);
  EXPECT_EQ(utc_offset_hours(TimeZone::Eastern), -4);
}

TEST(TimeZone, FromLongitudeAlongRoute) {
  EXPECT_EQ(timezone_from_longitude(-118.24), TimeZone::Pacific);   // LA
  EXPECT_EQ(timezone_from_longitude(-111.89), TimeZone::Mountain);  // SLC
  EXPECT_EQ(timezone_from_longitude(-95.93), TimeZone::Central);    // Omaha
  EXPECT_EQ(timezone_from_longitude(-71.06), TimeZone::Eastern);    // Boston
}

TEST(CivilTime, MidnightUtcEpoch) {
  // Epoch is midnight UTC of day 1; in EDT that is 20:00 of "day 0".
  const CivilTime ct = to_civil(SimTime{0.0}, TimeZone::Eastern);
  EXPECT_EQ(ct.day, 0);
  EXPECT_EQ(ct.hour, 20);
}

TEST(CivilTime, FormatsAsExpected) {
  CivilTime ct{3, 13, 45, 2, 500};
  EXPECT_EQ(format_civil(ct), "D3 13:45:02.500");
}

class CivilRoundTrip : public ::testing::TestWithParam<TimeZone> {};

TEST_P(CivilRoundTrip, ToCivilFromCivilIsIdentity) {
  const TimeZone tz = GetParam();
  for (double ms : {0.0, 12'345.0, 86'400'000.0, 3.6e8, 5.5e8 + 123.0}) {
    const SimTime t{ms};
    const CivilTime ct = to_civil(t, tz);
    const SimTime back = from_civil(ct, tz);
    EXPECT_NEAR(back.ms_since_epoch, t.ms_since_epoch, 1.0)
        << "tz=" << to_string(tz) << " ms=" << ms;
  }
}

TEST_P(CivilRoundTrip, SameInstantDifferentZonesDifferByOffset) {
  const TimeZone tz = GetParam();
  const SimTime noon_utc{12.0 * 3600.0e3};
  const CivilTime ct = to_civil(noon_utc, tz);
  EXPECT_EQ(ct.hour, 12 + utc_offset_hours(tz));
}

INSTANTIATE_TEST_SUITE_P(AllZones, CivilRoundTrip,
                         ::testing::Values(TimeZone::Pacific,
                                           TimeZone::Mountain,
                                           TimeZone::Central,
                                           TimeZone::Eastern),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(CivilTime, RoundingCarryDoesNotProduce1000ms) {
  // A time 0.9 ms before a second boundary must round without ms == 1000.
  const SimTime t{59'999.6};
  const CivilTime ct = to_civil(t, TimeZone::Eastern);
  EXPECT_LT(ct.millisecond, 1000);
}

}  // namespace
}  // namespace wheels
