#include <gtest/gtest.h>

#include "core/stats.h"
#include "net/mptcp_scheduler.h"

namespace wheels::net {
namespace {

std::vector<std::vector<SubflowInput>> constant_inputs(
    std::vector<double> rates_mbps, double rtt_ms, std::size_t slots) {
  std::vector<SubflowInput> one;
  one.reserve(rates_mbps.size());
  for (double r : rates_mbps) {
    one.push_back({Mbps{r}, Millis{rtt_ms}});
  }
  return std::vector<std::vector<SubflowInput>>(slots, one);
}

TEST(MptcpScheduler, RejectsZeroSubflows) {
  EXPECT_THROW(MptcpConnection(Rng(1), 0), std::invalid_argument);
}

TEST(MptcpScheduler, RejectsLinkCountMismatch) {
  MptcpConnection c(Rng(2), 2);
  std::vector<SubflowInput> one = {{Mbps{10.0}, Millis{50.0}}};
  EXPECT_THROW(c.step(Millis{10.0}, one), std::invalid_argument);
}

TEST(MptcpScheduler, BondedApproachesSumOfPaths) {
  const auto inputs = constant_inputs({30.0, 20.0, 10.0}, 50.0, 3'000);
  const auto r = run_bonded(Rng(3), inputs, Millis{10.0}, Millis{500.0});
  ASSERT_FALSE(r.bonded_mbps.empty());
  // Steady state (skip the ramp): near 60 Mbps combined, above the best
  // single path's 30.
  const double steady = percentile(
      std::vector<double>(r.bonded_mbps.begin() + r.bonded_mbps.size() / 2,
                          r.bonded_mbps.end()),
      50.0);
  EXPECT_GT(steady, 42.0);
  EXPECT_LE(steady, 60.5);
  EXPECT_GT(r.bonded_total_gb, r.best_single_total_gb * 1.3);
}

TEST(MptcpScheduler, RedundantModeDeliversBestPathOnly) {
  MptcpConnection c(Rng(4), 2, MptcpScheduler::Redundant);
  std::vector<SubflowInput> links = {{Mbps{40.0}, Millis{40.0}},
                                     {Mbps{10.0}, Millis{40.0}}};
  double delivered = 0.0, wasted = 0.0;
  for (int i = 0; i < 3'000; ++i) {
    const auto r = c.step(Millis{10.0}, links);
    delivered += r.delivered_bytes;
    wasted += r.wasted_bytes;
  }
  const double goodput = delivered * 8.0 / 30.0 / 1e6;
  EXPECT_LE(goodput, 40.5);   // never more than the best path
  EXPECT_GT(goodput, 25.0);
  EXPECT_GT(wasted, 0.0);     // duplicates cost something
}

TEST(MptcpScheduler, SurvivesComplementaryOutages) {
  // Path A on for 2 s, then path B: a lone flow stalls during its path's
  // outage; the bonded connection keeps moving.
  std::vector<std::vector<SubflowInput>> inputs;
  for (int slot = 0; slot < 6'000; ++slot) {
    const bool a_on = (slot / 200) % 2 == 0;
    inputs.push_back({{Mbps{a_on ? 20.0 : 0.0}, Millis{50.0}},
                      {Mbps{a_on ? 0.0 : 20.0}, Millis{50.0}}});
  }
  const auto r = run_bonded(Rng(5), inputs, Millis{10.0}, Millis{500.0});
  int bonded_dead = 0, single_dead = 0;
  for (std::size_t i = 4; i < r.bonded_mbps.size(); ++i) {
    if (r.bonded_mbps[i] < 1.0) ++bonded_dead;
    if (r.best_single_mbps[i] < 1.0) ++single_dead;
  }
  EXPECT_LT(bonded_dead, single_dead);
  EXPECT_GT(r.bonded_total_gb, r.best_single_total_gb);
}

TEST(MptcpScheduler, RestartResetsSubflows) {
  MptcpConnection c(Rng(6), 2);
  std::vector<SubflowInput> links = {{Mbps{50.0}, Millis{40.0}},
                                     {Mbps{50.0}, Millis{40.0}}};
  for (int i = 0; i < 2'000; ++i) c.step(Millis{10.0}, links);
  c.restart();
  EXPECT_TRUE(c.subflow(0).in_slow_start());
  EXPECT_TRUE(c.subflow(1).in_slow_start());
}

TEST(MptcpScheduler, EmptyRunIsEmpty) {
  const auto r = run_bonded(Rng(7), {}, Millis{10.0}, Millis{500.0});
  EXPECT_TRUE(r.bonded_mbps.empty());
  EXPECT_DOUBLE_EQ(r.bonded_total_gb, 0.0);
}

}  // namespace
}  // namespace wheels::net
