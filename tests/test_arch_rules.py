#!/usr/bin/env python3
"""Tests for tools/wheels_arch.py and the header self-sufficiency gate.

Each fixture directory under tests/fixtures/arch/ is a miniature repo
(src/<module>/..., tools/layers.json) run through the analyzer with
--root. A rule only counts as enforced if it (a) fires on the violating
tree at the expected location and (b) stays quiet on the adjacent
compliant tree. The selfcheck fixtures are compiled directly (the same
synthetic-TU recipe the CMake `header_selfcheck` target generates) to
prove a transitively-dependent header actually fails standalone.

Run directly (python3 tests/test_arch_rules.py) or via ctest.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TESTS_DIR)
ARCH = os.path.join(REPO_ROOT, "tools", "wheels_arch.py")
FIXTURES = os.path.join(TESTS_DIR, "fixtures", "arch")

SELFCHECK_FLAGS = [
    "-std=c++20", "-fsyntax-only", "-Wall", "-Wextra", "-Werror",
    "-Wconversion", "-Wshadow", "-Wdouble-promotion", "-Wold-style-cast",
]


def run_arch(fixture, *extra):
    root = os.path.join(FIXTURES, fixture)
    proc = subprocess.run(
        [sys.executable, ARCH, "--root", root, *extra],
        capture_output=True,
        text=True,
        check=False)
    return proc.returncode, proc.stdout


def find_cxx():
    for name in (os.environ.get("CXX"), "c++", "g++", "clang++"):
        if name and shutil.which(name):
            return shutil.which(name)
    return None


class GoodFixture(unittest.TestCase):
    def test_clean_tree_passes(self):
        code, out = run_arch("good")
        self.assertEqual(code, 0, out)
        self.assertIn("OK", out)

    def test_dot_export_contains_module_edges(self):
        code, out = run_arch("good", "--dot")
        self.assertEqual(code, 0, out)
        self.assertIn("digraph", out)
        self.assertIn('"radio" -> "core"', out)
        # DOT mode never reports findings, even on a violating tree.
        code, out = run_arch("layering_violation", "--dot")
        self.assertEqual(code, 0, out)


class Layering(unittest.TestCase):
    def test_disallowed_edge_fires_with_location(self):
        code, out = run_arch("layering_violation")
        self.assertEqual(code, 1, out)
        self.assertIn("layer-violation", out)
        # Reported at the offending #include line.
        self.assertIn("src/core/bad.h:2:", out)
        self.assertIn("'core' may not include from 'trip'", out)

    def test_allowed_downward_edge_is_quiet(self):
        _, out = run_arch("layering_violation")
        # trip -> core is declared; only the upward edge fires.
        self.assertEqual(out.count("layer-violation"), 1, out)


class Cycles(unittest.TestCase):
    def test_cycle_reported_with_full_path(self):
        code, out = run_arch("cycle")
        self.assertEqual(code, 1, out)
        self.assertIn("include-cycle", out)
        self.assertIn(
            "src/core/x.h -> src/core/y.h -> src/core/x.h", out)

    def test_each_cycle_reported_once(self):
        _, out = run_arch("cycle")
        self.assertEqual(out.count("include-cycle"), 1, out)


class OrphanHeaders(unittest.TestCase):
    def test_test_only_header_is_an_orphan(self):
        # orphan.h is included by tests/use_orphan.cpp only; test TUs do
        # not keep a public header alive.
        code, out = run_arch("orphan_header")
        self.assertEqual(code, 1, out)
        self.assertIn("orphan-header", out)
        self.assertIn("src/core/orphan.h", out)

    def test_reachable_and_allowlisted_headers_are_quiet(self):
        _, out = run_arch("orphan_header")
        self.assertNotIn("used.h", out)
        self.assertNotIn("waived.h", out)
        self.assertEqual(out.count("orphan-header"), 1, out)


class ManifestValidation(unittest.TestCase):
    def test_cyclic_manifest_and_unknown_module_fire(self):
        code, out = run_arch("bad_manifest")
        self.assertEqual(code, 1, out)
        self.assertIn("layer-manifest", out)
        self.assertIn("cyclic: core -> radio -> core", out)
        self.assertIn("src/radio/ does not exist", out)

    def test_missing_manifest_is_a_usage_error(self):
        proc = subprocess.run(
            [sys.executable, ARCH, "--root",
             os.path.join(FIXTURES, "good"),
             "--manifest", "/nonexistent/layers.json"],
            capture_output=True, text=True, check=False)
        self.assertEqual(proc.returncode, 2, proc.stderr)


class JsonFormat(unittest.TestCase):
    def test_findings_serialize_with_rule_path_line_message(self):
        code, out = run_arch("layering_violation", "--format=json")
        self.assertEqual(code, 1, out)
        doc = json.loads(out)
        self.assertEqual(doc["tool"], "wheels-arch")
        self.assertEqual(len(doc["findings"]), 1, out)
        f = doc["findings"][0]
        self.assertEqual(f["rule"], "layer-violation")
        self.assertEqual(f["path"], "src/core/bad.h")
        self.assertEqual(f["line"], 2)
        self.assertIn("may not include", f["message"])

    def test_clean_tree_serializes_empty_findings(self):
        code, out = run_arch("good", "--format=json")
        self.assertEqual(code, 0, out)
        doc = json.loads(out)
        self.assertEqual(doc["findings"], [])
        self.assertGreater(doc["files_scanned"], 0)


class SarifFormat(unittest.TestCase):
    def test_sarif_round_trips_the_json_findings(self):
        _, json_out = run_arch("layering_violation", "--format=json")
        code, sarif_out = run_arch("layering_violation", "--format=sarif")
        self.assertEqual(code, 1, sarif_out)
        native = json.loads(json_out)["findings"]
        doc = json.loads(sarif_out)
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        self.assertEqual(run["tool"]["driver"]["name"], "wheels-arch")
        results = run["results"]
        self.assertEqual(len(results), len(native))
        for res, f in zip(results, native):
            self.assertEqual(res["ruleId"], f["rule"])
            self.assertEqual(res["message"]["text"], f["message"])
            loc = res["locations"][0]["physicalLocation"]
            self.assertEqual(loc["artifactLocation"]["uri"], f["path"])
            self.assertEqual(loc["region"]["startLine"], f["line"])
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        self.assertEqual(rule_ids, {f["rule"] for f in native})


class HeaderSelfSufficiency(unittest.TestCase):
    """Compiles the selfcheck fixture headers exactly the way the CMake
    header_selfcheck target does: one synthetic `#include "<header>"` TU
    under the werror flag set."""

    def compile_header(self, header_rel):
        cxx = find_cxx()
        if cxx is None:
            self.skipTest("no C++ compiler on PATH")
        fixture = os.path.join(FIXTURES, "selfcheck")
        with tempfile.TemporaryDirectory() as tmp:
            tu = os.path.join(tmp, "selfcheck_tu.cpp")
            with open(tu, "w", encoding="utf-8") as f:
                f.write(f'#include "{header_rel}"\n')
            proc = subprocess.run(
                [cxx, *SELFCHECK_FLAGS,
                 "-I", os.path.join(fixture, "src"), tu],
                capture_output=True, text=True, check=False)
        return proc.returncode, proc.stderr

    def test_self_sufficient_header_compiles_standalone(self):
        code, err = self.compile_header("core/good_header.h")
        self.assertEqual(code, 0, err)

    def test_transitively_dependent_header_fails_standalone(self):
        code, err = self.compile_header("core/bad_header.h")
        self.assertNotEqual(code, 0,
                            "bad_header.h compiled standalone; the "
                            "selfcheck gate would miss it")
        self.assertIn("vector", err)


class RepoIsClean(unittest.TestCase):
    def test_real_repo_passes(self):
        proc = subprocess.run(
            [sys.executable, ARCH, "--root", REPO_ROOT],
            capture_output=True, text=True, check=False)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_real_repo_dot_names_all_modules(self):
        proc = subprocess.run(
            [sys.executable, ARCH, "--root", REPO_ROOT, "--dot"],
            capture_output=True, text=True, check=False)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        for mod in ("core", "obs", "radio", "ran", "net", "trip", "logsync",
                    "apps", "dataset", "analysis"):
            self.assertIn(f'"{mod}"', proc.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
