// Unit tests for the src/obs observability subsystem: histogram bucket
// math, shard-merge determinism across thread schedules, the name-sorted
// snapshot + JSONL contract, and the Chrome trace_event exporter driven
// by a synthetic clock (set_clock_for_testing) so span arithmetic is
// exact instead of wall-clock-flaky.
//
// The registry is process-global, so every test resets values up front
// and uses test-prefixed metric names; handles stay valid across resets.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wheels::obs {
namespace {

std::atomic<std::int64_t> g_fake_ns{0};
std::int64_t fake_now() { return g_fake_ns.load(); }

TEST(ObsRegistry, RegistrationIsIdempotent) {
  Registry& reg = Registry::global();
  Counter& a = reg.counter("test.idempotent");
  Counter& b = reg.counter("test.idempotent");
  EXPECT_EQ(&a, &b) << "same name must return the same handle";
}

TEST(ObsHistogram, BucketBoundsAreInclusiveAndNegativesClampToZero) {
  Registry& reg = Registry::global();
  Histogram& h =
      reg.histogram("test.hist.buckets", {10, 100, 1000}, Det::Stable);
  reg.reset_values_for_testing();

  h.observe(-7);    // clamps to 0 -> bucket 0, contributes 0 to sum
  h.observe(5);     // bucket 0
  h.observe(10);    // bucket 0 (upper bounds are inclusive)
  h.observe(11);    // bucket 1
  h.observe(100);   // bucket 1
  h.observe(1000);  // bucket 2
  h.observe(1001);  // overflow bucket

  const Snapshot snap = reg.snapshot();
  const MetricValue* mv = snap.find("test.hist.buckets");
  ASSERT_NE(mv, nullptr);
  EXPECT_EQ(mv->kind, MetricKind::Histogram);
  EXPECT_EQ(mv->det, Det::Stable);
  ASSERT_EQ(mv->bounds, (std::vector<std::int64_t>{10, 100, 1000}));
  ASSERT_EQ(mv->counts.size(), 4u);  // bounds + overflow
  EXPECT_EQ(mv->counts[0], 3u);
  EXPECT_EQ(mv->counts[1], 2u);
  EXPECT_EQ(mv->counts[2], 1u);
  EXPECT_EQ(mv->counts[3], 1u);
  EXPECT_EQ(mv->count, 7u);
  EXPECT_EQ(mv->sum, 0 + 5 + 10 + 11 + 100 + 1000 + 1001);
}

TEST(ObsGauge, SetOverwritesAndSetMaxIsHighWatermark) {
  Registry& reg = Registry::global();
  Gauge& g = reg.gauge("test.gauge.watermark");
  reg.reset_values_for_testing();

  g.set(7);
  g.set_max(3);  // below the current value: no-op
  const Snapshot mid = reg.snapshot();
  ASSERT_NE(mid.find("test.gauge.watermark"), nullptr);
  EXPECT_EQ(mid.find("test.gauge.watermark")->value, 7);

  g.set_max(12);  // raises
  g.set(2);       // plain set always overwrites
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("test.gauge.watermark")->value, 2);
  EXPECT_EQ(snap.find("test.gauge.watermark")->det, Det::WallClock);
}

TEST(ObsSnapshot, SortedByNameRegardlessOfRegistrationOrder) {
  Registry& reg = Registry::global();
  reg.counter("test.sort.b");
  reg.counter("test.sort.a");
  reg.counter("test.sort.c");
  const Snapshot snap = reg.snapshot();

  std::vector<std::string> names;
  for (const MetricValue& mv : snap.metrics) names.push_back(mv.name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()))
      << "snapshot order must not depend on registration order";
  ASSERT_NE(snap.find("test.sort.a"), nullptr);
  ASSERT_NE(snap.find("test.sort.b"), nullptr);
  EXPECT_EQ(snap.find("test.sort.missing"), nullptr);
}

TEST(ObsJsonl, CounterLineFormatAndStableOnlyMask) {
  Registry& reg = Registry::global();
  Counter& stable = reg.counter("test.jsonl.stable", Det::Stable);
  Counter& wall = reg.counter("test.jsonl.wall", Det::WallClock);
  reg.reset_values_for_testing();
  stable.add(3);
  wall.add(9);

  const Snapshot snap = reg.snapshot();
  const std::string all = to_jsonl(snap);
  EXPECT_NE(all.find("{\"metric\":\"test.jsonl.stable\",\"type\":\"counter\""
                     ",\"det\":true,\"value\":3}\n"),
            std::string::npos)
      << all;
  EXPECT_NE(all.find("{\"metric\":\"test.jsonl.wall\",\"type\":\"counter\""
                     ",\"det\":false,\"value\":9}\n"),
            std::string::npos)
      << all;

  const std::string masked = to_jsonl(snap, /*stable_only=*/true);
  EXPECT_NE(masked.find("test.jsonl.stable"), std::string::npos);
  EXPECT_EQ(masked.find("test.jsonl.wall"), std::string::npos)
      << "stable_only must drop WallClock metrics";
}

TEST(ObsShards, MergeIsIndependentOfThreadStartOrder) {
  Registry& reg = Registry::global();
  Counter& c = reg.counter("test.shard.counter", Det::Stable);
  Histogram& h = reg.histogram("test.shard.hist", {10, 100}, Det::Stable);

  const auto run_round = [&](bool reversed) {
    reg.reset_values_for_testing();
    std::vector<int> ids{1, 2, 3, 4};
    if (reversed) std::reverse(ids.begin(), ids.end());
    std::vector<std::thread> threads;
    for (const int id : ids) {
      threads.emplace_back([&, id] {
        for (int i = 0; i < id * 100; ++i) {
          c.inc();
          h.observe(id * 7);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    return to_jsonl(reg.snapshot());
  };

  const std::string forward = run_round(false);
  const std::string backward = run_round(true);
  EXPECT_EQ(forward, backward)
      << "merged output must not depend on thread creation order";

  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("test.shard.counter")->value, 100 + 200 + 300 + 400);
  EXPECT_EQ(snap.find("test.shard.hist")->count, 1000u);
}

TEST(ObsShards, LiveAndRetiredShardsBothCount) {
  Registry& reg = Registry::global();
  Counter& c = reg.counter("test.shard.live", Det::Stable);
  reg.reset_values_for_testing();

  std::atomic<bool> wrote{false};
  std::atomic<bool> release{false};
  std::thread t([&] {
    c.add(5);
    wrote.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!wrote.load()) std::this_thread::yield();

  // The worker is still alive: its shard is read live.
  EXPECT_EQ(reg.snapshot().find("test.shard.live")->value, 5);

  release.store(true);
  t.join();
  // After exit the shard has retired into the registry totals.
  EXPECT_EQ(reg.snapshot().find("test.shard.live")->value, 5);
}

TEST(ObsTrace, DisabledTracingRecordsNothing) {
  clear_trace_events();
  ASSERT_FALSE(trace_enabled());
  { Span ghost("ghost"); }
  EXPECT_TRUE(trace_events().empty());
}

TEST(ObsTrace, ChromeJsonSchemaWithSyntheticClock) {
  set_clock_for_testing(&fake_now);
  clear_trace_events();
  set_trace_enabled(true);

  g_fake_ns.store(1'000'000);
  {
    Span outer("outer");
    g_fake_ns.store(2'000'000);
    {
      Span inner("inner", "dataset");
      g_fake_ns.store(3'500'000);
    }
    g_fake_ns.store(6'000'000);
  }

  set_trace_enabled(false);
  set_clock_for_testing(nullptr);

  const std::vector<TraceEvent> events = trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Spans record at destruction, so the inner one lands first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].cat, "dataset");
  EXPECT_EQ(events[0].start_ns, 2'000'000);
  EXPECT_EQ(events[0].end_ns, 3'500'000);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].cat, "campaign");
  EXPECT_EQ(events[1].tid, events[0].tid) << "same thread, same lane";

  // Timestamps rebase to the earliest span (outer, 1 ms): outer becomes
  // ts=0 dur=5000 us, inner ts=1000 dur=1500 us -- properly nested.
  const std::string json = trace_events_to_chrome_json();
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  EXPECT_NE(json.find("{\"name\":\"inner\",\"cat\":\"dataset\",\"ph\":\"X\""
                      ",\"pid\":1,\"tid\":"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find(",\"ts\":1000,\"dur\":1500}"), std::string::npos)
      << json;
  EXPECT_NE(json.find(",\"ts\":0,\"dur\":5000}"), std::string::npos) << json;

  clear_trace_events();
}

}  // namespace
}  // namespace wheels::obs
