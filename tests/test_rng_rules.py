#!/usr/bin/env python3
"""Tests for tools/wheels_rng.py, the whole-program RNG provenance
analyzer.

Each fixture directory under tests/fixtures/rng/ is a miniature repo
(src/..., optional tools/rng_graph.json pin) run through the analyzer
with --root. A rule only counts as enforced if it (a) fires on the
violating tree at the expected location and (b) stays quiet on the
adjacent compliant tree. The trace tests feed handcrafted audit JSONL
(the same shape src/obs/rng_audit.cpp emits) through --check-trace
against the good fixture's static graph.

Run directly (python3 tests/test_rng_rules.py) or via ctest.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import textwrap
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TESTS_DIR)
RNG = os.path.join(REPO_ROOT, "tools", "wheels_rng.py")
FIXTURES = os.path.join(TESTS_DIR, "fixtures", "rng")

sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
from wheels_rng import fnv1a  # noqa: E402


def run_rng(root, *extra):
    if not os.path.isabs(root):
        root = os.path.join(FIXTURES, root)
    proc = subprocess.run(
        [sys.executable, RNG, "--root", root, *extra],
        capture_output=True,
        text=True,
        check=False)
    return proc.returncode, proc.stdout, proc.stderr


def write_tree(base, files):
    for rel, content in files.items():
        path = os.path.join(base, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(textwrap.dedent(content))


def hex64(v):
    return "0x%016x" % v


def stream(sid, parent=None, salt=None, label=None, draws=0, conflicts=0):
    return json.dumps({
        "id": hex64(sid),
        "parent": hex64(parent) if parent is not None else None,
        "salt": hex64(salt) if salt is not None else None,
        "label": label,
        "seeds": 1 if parent is None else 0,
        "forks": 0 if parent is None else 1,
        "draws": draws,
        "conflicts": conflicts,
    })


def write_trace(path, lines):
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


class GoodFixture(unittest.TestCase):
    def test_clean_tree_passes(self):
        code, out, err = run_rng("good")
        self.assertEqual(code, 0, out + err)
        self.assertIn("OK", out)
        # The pin is present, so the drift check must actually run.
        self.assertNotIn("drift check skipped", err)

    def test_dot_export_marks_dynamic_edges(self):
        code, out, _ = run_rng("good", "--dot")
        self.assertEqual(code, 0, out)
        self.assertIn("digraph rng_forks", out)
        self.assertIn('"seed:src/sim.cpp:drive:root"', out)
        self.assertIn("style=dashed", out)  # the declared-dynamic edge

    def test_json_format_reports_graph_size(self):
        code, out, _ = run_rng("good", "--format", "json")
        self.assertEqual(code, 0, out)
        payload = json.loads(out)
        self.assertEqual(payload["tool"], "wheels-rng")
        self.assertEqual(payload["findings"], [])
        self.assertEqual(payload["edges"], 6)

    def test_list_rules_covers_static_and_trace_rules(self):
        code, out, _ = run_rng("good", "--list-rules")
        self.assertEqual(code, 0, out)
        for rule in ("fork-collision", "rng-by-value", "rng-member-copy",
                     "draw-in-unordered", "unlabeled-fork",
                     "fork-graph-drift", "trace-unknown-edge",
                     "trace-conflict", "trace-draw-mismatch"):
            self.assertIn(rule, out)


class CollisionFixture(unittest.TestCase):
    def test_cross_tu_collision_fires(self):
        code, out, _ = run_rng("collision")
        self.assertEqual(code, 1, out)
        self.assertIn("[fork-collision]", out)
        self.assertIn("src/b.cpp:7", out)   # second site is the finding
        self.assertIn("src/a.cpp:6", out)   # ...pointing at the first
        self.assertIn("seed:member:A::rng_", out)

    def test_allow_comment_suppresses(self):
        with tempfile.TemporaryDirectory() as tmp:
            shutil.copytree(os.path.join(FIXTURES, "collision"),
                            os.path.join(tmp, "repo"))
            b = os.path.join(tmp, "repo", "src", "b.cpp")
            with open(b, encoding="utf-8") as f:
                text = f.read()
            text = text.replace(
                "  Rng clash",
                "  // wheels-rng: allow(fork-collision)\n  Rng clash")
            with open(b, "w", encoding="utf-8") as f:
                f.write(text)
            code, out, _ = run_rng(os.path.join(tmp, "repo"))
            self.assertEqual(code, 0, out)

    def test_sarif_format_carries_the_finding(self):
        code, out, _ = run_rng("collision", "--format", "sarif")
        self.assertEqual(code, 1, out)
        payload = json.loads(out)
        results = payload["runs"][0]["results"]
        self.assertTrue(any(r["ruleId"] == "fork-collision"
                            for r in results), out)


class ByValueFixture(unittest.TestCase):
    def test_copy_and_pass_by_value_fire(self):
        code, out, _ = run_rng("by_value")
        self.assertEqual(code, 1, out)
        self.assertEqual(out.count("[rng-by-value]"), 2, out)
        self.assertIn("passed by value and used again", out)
        self.assertIn("copy-initialized from live stream", out)

    def test_fresh_fork_sink_idiom_is_quiet(self):
        # The good fixture passes consume(city_rng.fork("sink")) by
        # value -- the blessed hand-off idiom must not fire.
        code, out, _ = run_rng("good")
        self.assertEqual(code, 0, out)


class UnorderedDrawFixture(unittest.TestCase):
    def test_draw_in_hash_order_fires(self):
        code, out, _ = run_rng("unordered_draw")
        self.assertEqual(code, 1, out)
        self.assertIn("[draw-in-unordered]", out)
        self.assertIn("'cells'", out)


class DriftedGraphFixture(unittest.TestCase):
    def test_both_drift_directions_fire(self):
        code, out, _ = run_rng("drifted_graph")
        self.assertEqual(code, 1, out)
        self.assertIn("new fork edge not in the pinned graph", out)
        self.assertIn("pinned fork edge no longer in the program", out)
        self.assertEqual(out.count("[fork-graph-drift]"), 2, out)

    def test_fix_graph_repins_and_clears(self):
        with tempfile.TemporaryDirectory() as tmp:
            shutil.copytree(os.path.join(FIXTURES, "drifted_graph"),
                            os.path.join(tmp, "repo"))
            root = os.path.join(tmp, "repo")
            code, out, _ = run_rng(root, "--fix-graph")
            self.assertEqual(code, 0, out)
            code, out, _ = run_rng(root)
            self.assertEqual(code, 0, out)

    def test_missing_pin_skips_with_notice(self):
        with tempfile.TemporaryDirectory() as tmp:
            shutil.copytree(os.path.join(FIXTURES, "drifted_graph"),
                            os.path.join(tmp, "repo"))
            os.remove(os.path.join(tmp, "repo", "tools", "rng_graph.json"))
            code, out, err = run_rng(os.path.join(tmp, "repo"))
            self.assertEqual(code, 0, out + err)
            self.assertIn("drift check skipped", err)


class UnlabeledFork(unittest.TestCase):
    SNIPPET = """\
    #include "core/rng.h"
    namespace wheels {
    struct Config { unsigned long long seed = 1; };
    void drive(const Config& cfg, int city) {
      Rng root(cfg.seed);
      {ANNOTATION}Rng s = root.fork(static_cast<unsigned>(city));
      (void)s.next_u64();
    }
    }  // namespace wheels
    """

    def run_snippet(self, annotation):
        with tempfile.TemporaryDirectory() as tmp:
            src = self.SNIPPET.replace("{ANNOTATION}", annotation)
            write_tree(tmp, {"src/uf.cpp": src})
            return run_rng(tmp)

    def test_computed_salt_without_annotation_fires(self):
        code, out, _ = self.run_snippet("")
        self.assertEqual(code, 1, out)
        self.assertIn("[unlabeled-fork]", out)
        self.assertIn("static_cast<unsigned>(city)", out)

    def test_dynamic_annotation_declares_the_wildcard(self):
        code, out, _ = self.run_snippet(
            "// wheels-rng: dynamic(one stream per city)\n      ")
        self.assertEqual(code, 0, out)


class MemberCopy(unittest.TestCase):
    def test_two_members_from_one_stream_fires(self):
        snippet = """\
        #include "core/rng.h"
        namespace wheels {
        class Twin {
         public:
          explicit Twin(Rng base) : left_(base), right_(base) {}
         private:
          Rng left_;
          Rng right_;
        };
        }  // namespace wheels
        """
        with tempfile.TemporaryDirectory() as tmp:
            write_tree(tmp, {"src/tw.cpp": snippet})
            code, out, _ = run_rng(tmp)
            self.assertEqual(code, 1, out)
            self.assertIn("[rng-member-copy]", out)
            self.assertIn("'right_'", out)


class CheckTrace(unittest.TestCase):
    """Handcrafted audit JSONL validated against the good fixture's
    static graph: root -> "trip" (label), -> #7 (salt), -> "city" ->
    dynamic per-city -> "sink"."""

    def check(self, *traces):
        return run_rng("good", "--check-trace", *traces)

    def test_embedded_subtree_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            trace = os.path.join(tmp, "trace.jsonl")
            write_trace(trace, [
                stream(0x1, draws=0),
                stream(0x2, parent=0x1, salt=fnv1a("trip"), label="trip",
                       draws=3),
                stream(0x3, parent=0x1, salt=7, draws=1),
                stream(0x4, parent=0x1, salt=fnv1a("city"), label="city"),
                stream(0x5, parent=0x4, salt=2, draws=0),
                stream(0x6, parent=0x5, salt=fnv1a("sink"), label="sink",
                       draws=9),
            ])
            code, out, _ = self.check(trace)
            self.assertEqual(code, 0, out)
            self.assertIn("trace check", out)

    def test_unregistered_fork_site_fires(self):
        with tempfile.TemporaryDirectory() as tmp:
            trace = os.path.join(tmp, "trace.jsonl")
            write_trace(trace, [
                stream(0x1),
                stream(0x2, parent=0x1, salt=fnv1a("nope"), label="nope"),
            ])
            code, out, _ = self.check(trace)
            self.assertEqual(code, 1, out)
            self.assertIn("[trace-unknown-edge]", out)
            self.assertIn('"nope"', out)

    def test_runtime_conflict_fires(self):
        with tempfile.TemporaryDirectory() as tmp:
            trace = os.path.join(tmp, "trace.jsonl")
            write_trace(trace, [
                stream(0x1),
                stream(0x2, parent=0x1, salt=fnv1a("trip"), label="trip",
                       conflicts=1),
            ])
            code, out, _ = self.check(trace)
            self.assertEqual(code, 1, out)
            self.assertIn("[trace-conflict]", out)

    def test_draw_count_mismatch_across_traces_fires(self):
        with tempfile.TemporaryDirectory() as tmp:
            a = os.path.join(tmp, "jobs1.jsonl")
            b = os.path.join(tmp, "jobs4.jsonl")
            common = [stream(0x1)]
            write_trace(a, common + [
                stream(0x2, parent=0x1, salt=fnv1a("trip"), label="trip",
                       draws=5)])
            write_trace(b, common + [
                stream(0x2, parent=0x1, salt=fnv1a("trip"), label="trip",
                       draws=6)])
            code, out, _ = self.check(a, b)
            self.assertEqual(code, 1, out)
            self.assertIn("[trace-draw-mismatch]", out)
            self.assertIn("drew 5 times", out)

    def test_stream_set_mismatch_across_traces_fires(self):
        with tempfile.TemporaryDirectory() as tmp:
            a = os.path.join(tmp, "jobs1.jsonl")
            b = os.path.join(tmp, "jobs4.jsonl")
            extra = stream(0x2, parent=0x1, salt=fnv1a("trip"),
                           label="trip", draws=5)
            write_trace(a, [stream(0x1), extra])
            write_trace(b, [stream(0x1)])
            code, out, _ = self.check(a, b)
            self.assertEqual(code, 1, out)
            self.assertIn("[trace-draw-mismatch]", out)
            self.assertIn("but not here", out)

    def test_identical_traces_pass(self):
        with tempfile.TemporaryDirectory() as tmp:
            a = os.path.join(tmp, "jobs1.jsonl")
            b = os.path.join(tmp, "jobs4.jsonl")
            lines = [
                stream(0x1),
                stream(0x2, parent=0x1, salt=fnv1a("trip"), label="trip",
                       draws=5),
            ]
            write_trace(a, lines)
            write_trace(b, lines)
            code, out, _ = self.check(a, b)
            self.assertEqual(code, 0, out)

    def test_missing_trace_is_a_usage_error(self):
        code, _, err = self.check("/nonexistent/trace.jsonl")
        self.assertEqual(code, 2, err)
        self.assertIn("trace not found", err)


if __name__ == "__main__":
    unittest.main()
