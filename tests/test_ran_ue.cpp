#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.h"
#include "ran/ue.h"

namespace wheels::ran {
namespace {

using radio::Environment;
using radio::Tech;

Corridor uniform_corridor(Environment env, double length_m = 300'000.0) {
  return Corridor({{Meters{0.0}, Meters{length_m}, env, TimeZone::Central}});
}

// Drive a UE along the corridor at constant speed; returns samples.
std::vector<LinkSample> drive(UeSimulator& ue, double speed_mph,
                              double seconds, Millis dt = Millis{100.0}) {
  std::vector<LinkSample> out;
  SimTime t{0.0};
  Meters pos{0.0};
  const double mps = Mph{speed_mph}.meters_per_second();
  const int steps = static_cast<int>(seconds * 1'000.0 / dt.value);
  for (int i = 0; i < steps; ++i) {
    out.push_back(ue.step(t, pos, Mph{speed_mph}, dt));
    t += dt;
    pos += Meters{mps * dt.seconds()};
  }
  return out;
}

TEST(Ue, AttachesAndProducesSaneSamples) {
  const Corridor c = uniform_corridor(Environment::Suburban);
  const auto& prof = operator_profile(OperatorId::Verizon);
  const auto dep = Deployment::generate(c, prof, Rng(1));
  UeSimulator ue(c, dep, prof, Rng(2), TrafficProfile::BackloggedDl);
  const auto samples = drive(ue, 40.0, 120.0);

  int connected = 0;
  for (const auto& s : samples) {
    if (!s.connected) continue;
    ++connected;
    EXPECT_GE(s.phy_rate_dl.value, 0.0);
    EXPECT_GE(s.phy_rate_ul.value, 0.0);
    EXPECT_GT(s.rsrp.value, -150.0);
    EXPECT_LT(s.rsrp.value, -30.0);
    EXPECT_GE(s.mcs_dl, 0);
    EXPECT_LE(s.mcs_dl, 28);
    EXPECT_GE(s.bler_dl, 0.0);
    EXPECT_LE(s.bler_dl, 1.0);
    EXPECT_GE(s.num_cc_dl, 1);
    EXPECT_GT(s.air_latency.value, 0.0);
    EXPECT_GE(s.cell_load, 0.0);
    EXPECT_LE(s.cell_load, 1.0);
  }
  // Suburban LTE blanket: connected nearly always.
  EXPECT_GT(connected,
            static_cast<int>(static_cast<double>(samples.size()) * 0.8));
}

TEST(Ue, HandoversOccurWhileDriving) {
  const Corridor c = uniform_corridor(Environment::Suburban);
  const auto& prof = operator_profile(OperatorId::TMobile);
  const auto dep = Deployment::generate(c, prof, Rng(3));
  UeSimulator ue(c, dep, prof, Rng(4), TrafficProfile::BackloggedDl);
  drive(ue, 60.0, 600.0);  // 10 minutes at 60 mph = 10 miles
  EXPECT_GT(ue.handovers().size(), 3u);
  EXPECT_LT(ue.handovers().size(), 200u);
  EXPECT_GT(ue.unique_cell_count(), 3u);
}

TEST(Ue, NoHandoversWhenParked) {
  const Corridor c = uniform_corridor(Environment::Suburban);
  const auto& prof = operator_profile(OperatorId::Verizon);
  const auto dep = Deployment::generate(c, prof, Rng(5));
  UeSimulator ue(c, dep, prof, Rng(6), TrafficProfile::BackloggedDl);
  SimTime t{0.0};
  for (int i = 0; i < 3'000; ++i) {
    ue.step(t, Meters{50'000.0}, Mph{0.0}, Millis{100.0});
    t += Millis{100.0};
  }
  // A parked UE may renegotiate tech occasionally but must not ping-pong.
  EXPECT_LT(ue.handovers().size(), 12u);
}

TEST(Ue, HandoverDurationsNearProfileMedian) {
  const Corridor c = uniform_corridor(Environment::Suburban);
  const auto& prof = operator_profile(OperatorId::TMobile);
  const auto dep = Deployment::generate(c, prof, Rng(7));
  UeSimulator ue(c, dep, prof, Rng(8), TrafficProfile::BackloggedDl);
  drive(ue, 65.0, 3'600.0);
  const auto& hos = ue.handovers();
  ASSERT_GT(hos.size(), 20u);
  std::vector<double> durations;
  for (const auto& h : hos) durations.push_back(h.duration.value);
  std::sort(durations.begin(), durations.end());
  const double med = durations[durations.size() / 2];
  EXPECT_NEAR(med, prof.handover.median_dl.value,
              prof.handover.median_dl.value * 0.5);
}

TEST(Ue, AttNeverShows5gWhenIdle) {
  // Fig. 1d: the passive logger saw zero AT&T 5G along the whole route.
  const Corridor c = uniform_corridor(Environment::Urban);
  const auto& prof = operator_profile(OperatorId::ATT);
  const auto dep = Deployment::generate(c, prof, Rng(9));
  UeSimulator ue(c, dep, prof, Rng(10), TrafficProfile::Idle);
  for (const auto& s : drive(ue, 20.0, 900.0)) {
    if (s.connected) {
      EXPECT_FALSE(radio::is_5g(s.tech));
    }
  }
}

TEST(Ue, BackloggedDownlinkPromotesMoreThanIdle) {
  const Corridor c = uniform_corridor(Environment::Urban);
  const auto& prof = operator_profile(OperatorId::TMobile);
  const auto dep = Deployment::generate(c, prof, Rng(11));

  auto hs_fraction = [&](TrafficProfile tp, std::uint64_t seed) {
    UeSimulator ue(c, dep, prof, Rng(seed), tp);
    int hs = 0, total = 0;
    for (const auto& s : drive(ue, 25.0, 1'200.0)) {
      if (!s.connected) continue;
      ++total;
      if (radio::is_high_speed(s.tech)) ++hs;
    }
    return total ? static_cast<double>(hs) / total : 0.0;
  };
  const double dl = hs_fraction(TrafficProfile::BackloggedDl, 12);
  const double idle = hs_fraction(TrafficProfile::Idle, 12);
  EXPECT_GT(dl, idle + 0.2);
}

TEST(Ue, UplinkPromotesLessThanDownlink) {
  const Corridor c = uniform_corridor(Environment::Urban);
  const auto& prof = operator_profile(OperatorId::Verizon);
  const auto dep = Deployment::generate(c, prof, Rng(13));

  auto hs_fraction = [&](TrafficProfile tp) {
    UeSimulator ue(c, dep, prof, Rng(14), tp);
    int hs = 0, total = 0;
    for (const auto& s : drive(ue, 25.0, 1'800.0)) {
      if (!s.connected) continue;
      ++total;
      if (radio::is_high_speed(s.tech)) ++hs;
    }
    return total ? static_cast<double>(hs) / total : 0.0;
  };
  EXPECT_GT(hs_fraction(TrafficProfile::BackloggedDl),
            hs_fraction(TrafficProfile::BackloggedUl) + 0.1);
}

TEST(Ue, RatesZeroDuringHandover) {
  const Corridor c = uniform_corridor(Environment::Suburban);
  const auto& prof = operator_profile(OperatorId::Verizon);
  const auto dep = Deployment::generate(c, prof, Rng(15));
  UeSimulator ue(c, dep, prof, Rng(16), TrafficProfile::BackloggedDl);
  int in_ho = 0;
  for (const auto& s : drive(ue, 70.0, 1'200.0, Millis{20.0})) {
    if (s.in_handover) {
      ++in_ho;
      EXPECT_DOUBLE_EQ(s.phy_rate_dl.value, 0.0);
      EXPECT_DOUBLE_EQ(s.phy_rate_ul.value, 0.0);
    }
  }
  EXPECT_GT(in_ho, 0);
}

TEST(Ue, DisconnectedInEmptyDeployment) {
  // A corridor where nothing is deployed: rural with all-zero availability
  // is impossible via profiles, so build a deployment on a tiny corridor
  // then query far outside it.
  const Corridor big = uniform_corridor(Environment::Rural, 1'000'000.0);
  Corridor tiny({{Meters{0.0}, Meters{1'000.0}, Environment::Rural,
                  TimeZone::Central}});
  const auto& prof = operator_profile(OperatorId::Verizon);
  const auto dep = Deployment::generate(tiny, prof, Rng(17));
  UeSimulator ue(big, dep, prof, Rng(18), TrafficProfile::BackloggedDl);
  const auto s =
      ue.step(SimTime{0.0}, Meters{500'000.0}, Mph{60.0}, Millis{100.0});
  EXPECT_FALSE(s.connected);
  EXPECT_DOUBLE_EQ(s.phy_rate_dl.value, 0.0);
}

TEST(Ue, MmwaveRsrpCarriesBeamPenalty) {
  // Verizon's wide beams: mmWave RSRP several dB below AT&T's at the same
  // geometry (§5.5). Compare average serving mmWave RSRP.
  const Corridor c = uniform_corridor(Environment::Urban);
  auto mmwave_rsrp = [&](OperatorId op) {
    const auto& prof = operator_profile(op);
    const auto dep = Deployment::generate(c, prof, Rng(19));
    UeSimulator ue(c, dep, prof, Rng(20), TrafficProfile::BackloggedDl);
    wheels::RunningStats rs;
    for (const auto& s : drive(ue, 25.0, 4'000.0)) {
      if (s.connected && s.tech == Tech::NR_MMWAVE) rs.add(s.rsrp.value);
    }
    return rs;
  };
  const auto v = mmwave_rsrp(OperatorId::Verizon);
  const auto a = mmwave_rsrp(OperatorId::ATT);
  ASSERT_GT(v.count(), 50u);
  ASSERT_GT(a.count(), 50u);
  EXPECT_LT(v.mean(), a.mean() - 6.0);
}

TEST(Ue, SetTrafficForcesReEvaluation) {
  const Corridor c = uniform_corridor(Environment::Urban);
  const auto& prof = operator_profile(OperatorId::TMobile);
  const auto dep = Deployment::generate(c, prof, Rng(21));
  UeSimulator ue(c, dep, prof, Rng(22), TrafficProfile::Idle);
  SimTime t{0.0};
  ue.step(t, Meters{1'000.0}, Mph{0.0}, Millis{100.0});
  ue.set_traffic(TrafficProfile::BackloggedDl);
  // Within a couple of steps the policy must have been re-run (the tech
  // may or may not change, but traffic() reflects the new context).
  EXPECT_EQ(ue.traffic(), TrafficProfile::BackloggedDl);
  const auto s = ue.step(t + Millis{100.0}, Meters{1'001.0}, Mph{0.0},
                         Millis{100.0});
  EXPECT_TRUE(s.connected);
}

TEST(Ue, ClearHistoryDropsHandoversKeepsCells) {
  const Corridor c = uniform_corridor(Environment::Suburban);
  const auto& prof = operator_profile(OperatorId::TMobile);
  const auto dep = Deployment::generate(c, prof, Rng(23));
  UeSimulator ue(c, dep, prof, Rng(24), TrafficProfile::BackloggedDl);
  drive(ue, 60.0, 600.0);
  const auto cells = ue.unique_cell_count();
  ASSERT_GT(ue.handovers().size(), 0u);
  ue.clear_history();
  EXPECT_TRUE(ue.handovers().empty());
  EXPECT_EQ(ue.unique_cell_count(), cells);
}

TEST(Ue, LatencyGrowsWithSpeedForSensitiveOperators) {
  const Corridor c = uniform_corridor(Environment::Rural);
  const auto& prof = operator_profile(OperatorId::TMobile);
  const auto dep = Deployment::generate(c, prof, Rng(25));
  auto mean_latency = [&](double mph) {
    UeSimulator ue(c, dep, prof, Rng(26), TrafficProfile::Idle);
    wheels::RunningStats rs;
    for (const auto& s : drive(ue, mph, 600.0)) {
      if (s.connected) rs.add(s.air_latency.value);
    }
    return rs.mean();
  };
  EXPECT_GT(mean_latency(70.0), mean_latency(5.0) + 3.0);
}

}  // namespace
}  // namespace wheels::ran
