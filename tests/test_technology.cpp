#include <gtest/gtest.h>

#include "radio/technology.h"

namespace wheels::radio {
namespace {

TEST(Technology, Classification) {
  EXPECT_FALSE(is_5g(Tech::LTE));
  EXPECT_FALSE(is_5g(Tech::LTE_A));
  EXPECT_TRUE(is_5g(Tech::NR_LOW));
  EXPECT_TRUE(is_5g(Tech::NR_MID));
  EXPECT_TRUE(is_5g(Tech::NR_MMWAVE));

  EXPECT_FALSE(is_high_speed(Tech::NR_LOW));
  EXPECT_TRUE(is_high_speed(Tech::NR_MID));
  EXPECT_TRUE(is_high_speed(Tech::NR_MMWAVE));
  EXPECT_FALSE(is_high_speed(Tech::LTE_A));
}

TEST(Technology, Names) {
  EXPECT_EQ(to_string(Tech::LTE), "LTE");
  EXPECT_EQ(to_string(Tech::NR_MMWAVE), "5G-mmWave");
}

class HandoverClassification
    : public ::testing::TestWithParam<std::tuple<Tech, Tech>> {};

TEST_P(HandoverClassification, KindMatchesGenerations) {
  const auto [from, to] = GetParam();
  const HandoverKind k = classify_handover(from, to);
  const bool f5 = is_5g(from), t5 = is_5g(to);
  switch (k) {
    case HandoverKind::FourToFour:
      EXPECT_FALSE(f5);
      EXPECT_FALSE(t5);
      break;
    case HandoverKind::FourToFive:
      EXPECT_FALSE(f5);
      EXPECT_TRUE(t5);
      break;
    case HandoverKind::FiveToFour:
      EXPECT_TRUE(f5);
      EXPECT_FALSE(t5);
      break;
    case HandoverKind::FiveToFive:
      EXPECT_TRUE(f5);
      EXPECT_TRUE(t5);
      break;
  }
  EXPECT_EQ(is_horizontal(k), f5 == t5);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, HandoverClassification,
    ::testing::Combine(::testing::ValuesIn(kAllTechs),
                       ::testing::ValuesIn(kAllTechs)));

TEST(Technology, HandoverKindNames) {
  EXPECT_EQ(to_string(HandoverKind::FourToFive), "4G->5G");
  EXPECT_EQ(to_string(HandoverKind::FiveToFour), "5G->4G");
}

}  // namespace
}  // namespace wheels::radio
