// src/obs/ is the blessed clock reader: this file must stay quiet.
#include <chrono>

namespace wheels::obs {

long long now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace wheels::obs
