// Direct host-clock reads in simulation code: both sites below must fire.
#include <chrono>

namespace wheels::trip {

long long phase_start_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

long long hires_sample() {
  using clock = std::chrono::high_resolution_clock;
  return clock::now().time_since_epoch().count();
}

}  // namespace wheels::trip
