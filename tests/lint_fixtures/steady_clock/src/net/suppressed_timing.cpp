// A reviewed exception carrying the allow comment: must stay quiet.
#include <chrono>

namespace wheels::net {

long long reviewed_probe_ns() {
  // wheels-lint: allow(steady-clock)
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

}  // namespace wheels::net
