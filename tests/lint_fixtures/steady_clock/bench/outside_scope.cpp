// The rule is scoped to src/: bench code may read the host clock freely
// (bench_common migrated to obs::now_ns anyway, but that is a choice, not
// a rule).
#include <chrono>

namespace wheels::bench {

long long bench_now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace wheels::bench
