#include "analysis/summary.h"

#include "core/stats.h"

namespace wheels::analysis {

// Epsilon comparisons are the sanctioned way to compare derived doubles.
bool same_bin(double a, double b) { return approx_equal(a, b, 1e-6); }

// Inequalities on float literals are fine; only ==/!= are banned.
bool loaded(double frac) { return frac >= 0.75; }

}  // namespace wheels::analysis
