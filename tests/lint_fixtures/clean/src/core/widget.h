// A fixture file that satisfies every wheels-lint rule.
#pragma once

#include "core/other.h"

namespace wheels {

struct Widget {
  double value = 0.0;
};

}  // namespace wheels
