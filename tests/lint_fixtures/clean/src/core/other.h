#pragma once

namespace wheels {

// Mentions of std::mt19937 or time(nullptr) inside comments or string
// literals must NOT fire banned-random: the linter strips both.
inline const char* banned_tokens_in_string() {
  return "std::rand time(nullptr) std::random_device";
}

}  // namespace wheels
