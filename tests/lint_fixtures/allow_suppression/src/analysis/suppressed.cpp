// Fixture: inline allow() comments must suppress findings, same-line or
// on the line directly above.
#include "analysis/suppressed.h"

namespace wheels::analysis {

bool exact_sentinel(double x) {
  return x == -1.0;  // wheels-lint: allow(float-eq)
}

bool exact_zero(double x) {
  // wheels-lint: allow(float-eq)
  return x == 0.0;
}

// An allow for a DIFFERENT rule must not suppress float-eq.
bool still_fires(double x) {
  return x == 0.25;  // wheels-lint: allow(banned-random)
}

}  // namespace wheels::analysis
