// Fixture: every banned entropy / wall-clock source outside the blessed
// core/rng.* and core/sim_time.* wrappers must fire banned-random.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

#include "trip/bad_entropy.h"

namespace wheels::trip {

int bad_seed() {
  std::random_device rd;
  std::mt19937 gen(rd());
  std::srand(static_cast<unsigned>(time(nullptr)));
  const auto now = std::chrono::system_clock::now();
  (void)now;
  return std::rand() + static_cast<int>(gen());
}

}  // namespace wheels::trip
