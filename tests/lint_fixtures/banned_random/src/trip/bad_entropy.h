#pragma once

namespace wheels::trip {

int bad_seed();

}  // namespace wheels::trip
