// Fixture: core/rng.* is allowlisted -- raw entropy here must NOT fire.
#include <random>

#include "core/rng.h"

namespace wheels {

unsigned hardware_entropy() {
  std::random_device rd;
  return rd();
}

}  // namespace wheels
