// Fixture: range-for over an unordered container must fire unordered-iter.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/bad_iter.h"

namespace wheels {

double sum_table(const std::unordered_map<std::string, double>& cells) {
  double total = 0.0;
  for (const auto& [name, value] : cells) {
    total += value;
  }
  return total;
}

int count_set() {
  std::unordered_set<int> ids = {3, 1, 2};
  int n = 0;
  for (int id : ids) {
    n += id;
  }
  return n;
}

// Iterating a vector is fine.
double sum_vector(const std::vector<double>& xs) {
  double total = 0.0;
  for (double x : xs) {
    total += x;
  }
  return total;
}

}  // namespace wheels
