// Fixture: every floating-point reassociation hazard must fire
// fp-reassoc; the ordered accumulate at the bottom must not.
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bad_fp.h"

#pragma STDC FP_CONTRACT ON

namespace wheels {

#pragma float_control(precise, off)

double reduce_losses(const std::vector<double>& xs) {
  return std::reduce(xs.begin(), xs.end(), 0.0);
}

double weighted(const std::vector<double>& xs) {
  return std::transform_reduce(xs.begin(), xs.end(), xs.begin(), 0.0);
}

__attribute__((optimize("fast-math")))
double fast_sum(const std::vector<double>& xs) {
  double total = 0.0;
  for (double x : xs) total += x;
  return total;
}

double sum_cells(const std::unordered_map<std::string, double>& cells) {
  return std::accumulate(cells.begin(), cells.end(), 0.0,
                         [](double acc, const auto& kv) {
                           return acc + kv.second;
                         });
}

// Accumulating an ordered range is the blessed spelling.
double sum_vector(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

}  // namespace wheels
