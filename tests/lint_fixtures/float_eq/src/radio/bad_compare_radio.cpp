// Fixture: the float-eq rule also covers src/radio/.
#include "radio/bad_compare_radio.h"

namespace wheels::radio {

bool full_load(double load) { return load == 1.0; }

}  // namespace wheels::radio
