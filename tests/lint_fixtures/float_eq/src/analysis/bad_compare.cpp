// Fixture: direct floating-point ==/!= in the analysis layer must fire.
#include "analysis/bad_compare.h"

namespace wheels::analysis {

bool at_origin(double x) { return x == 0.0; }

bool not_half(double x) { return x != 0.5; }

bool scientific(double x) { return 1e-3 == x; }

bool single_precision(float x) { return x == 2.5f; }

}  // namespace wheels::analysis
