// Fixture: float ==/!= outside src/analysis and src/radio is NOT in scope
// for the float-eq rule (core/trip/etc. own their exact-comparison guards).
#include "trip/outside_scope.h"

namespace wheels::trip {

bool exact_guard(double x) { return x == 0.0; }

}  // namespace wheels::trip
