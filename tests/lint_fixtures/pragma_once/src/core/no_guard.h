// Fixture: header without #pragma once must fire pragma-once.

namespace wheels {

struct Unguarded {
  int x = 0;
};

}  // namespace wheels
