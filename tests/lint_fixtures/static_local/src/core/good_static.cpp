// Compliant counterparts: everything here must stay quiet.
#include <array>
#include <atomic>
#include <string>

namespace wheels {

// Namespace-scope state is outside the rule (no magic-static guard).
static int namespace_scope_counter = 0;

struct Registry {
  static Registry instance();  // member declaration, not a local
  static int live_count;       // static data member, not a local
  int size() const { return 0; }
};

int table_lookup(int i) {
  static constexpr std::array<int, 3> table = {1, 2, 3};  // constexpr: exempt
  static const std::string kLabel = "ok";                 // const: exempt
  return table[static_cast<unsigned>(i) % table.size()] +
         static_cast<int>(kLabel.size());
}

int suppressed_site() {
  // A reviewed, constant-initialised atomic is allowed with a suppression.
  // wheels-lint: allow(static-local)
  static std::atomic<int> hits{0};
  return hits.fetch_add(1) + namespace_scope_counter;
}

}  // namespace wheels
