// Mutable function-local statics: every site below is lazily initialised
// on first call, which is a data race the moment two campaign workers
// enter the function concurrently.
#include <string>
#include <vector>

namespace wheels::trip {

int next_id() {
  static int counter = 0;  // line 10: plain mutable magic static
  return ++counter;
}

const std::string& lazy_name() {
  static std::string name = "campaign";  // line 15: dynamic init races
  return name;
}

double rolling_sum(double x) {
  if (x > 0.0) {
    static std::vector<double> window;  // line 21: static in nested block
    window.push_back(x);
    return window.back();
  }
  return 0.0;
}

}  // namespace wheels::trip
