// Fixture: non-module-qualified and parent-relative includes must fire
// include-hygiene; module-qualified ones must not.
#include "band.h"
#include "../core/rng.h"
#include "nosuchmodule/header.h"

#include "radio/bad_includes.h"

namespace wheels::radio {

int ok() { return 1; }

}  // namespace wheels::radio
