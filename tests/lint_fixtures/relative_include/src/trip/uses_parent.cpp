#include "core/dep.h"
#include "../core/dep.h"
// wheels-lint: allow(relative-include)
#include "../core/dep.h"

int consume() { return dep_value(); }
