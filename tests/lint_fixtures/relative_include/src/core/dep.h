#pragma once
inline int dep_value() { return 7; }
