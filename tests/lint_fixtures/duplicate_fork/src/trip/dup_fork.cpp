// Fixture for the duplicate-fork rule: the repeated literal label in
// bad() must fire; every other function is a compliant pattern the rule
// must stay quiet on.
struct Rng {
  Rng fork(const char* label);
  Rng fork(int salt);
};

void bad(Rng& rng) {
  Rng a = rng.fork("cell");
  Rng b = rng.fork("cell");
}

void good_distinct_labels(Rng& rng) {
  Rng a = rng.fork("cell");
  Rng b = rng.fork("trip");
}

void good_other_scope(Rng& rng) {
  // Same label as bad(), but a different scope: no finding.
  Rng a = rng.fork("cell");
}

void good_different_parent(Rng& rng, Rng& other) {
  Rng a = rng.fork("cell");
  Rng b = other.fork("cell");
}

void good_dynamic_label(Rng& rng, const char* name) {
  // Computed labels may or may not collide; the linter only flags what it
  // can prove, i.e. identical literals.
  Rng a = rng.fork(name);
  Rng b = rng.fork(name);
}

void good_chained(Rng& rng) {
  // Chained forks have distinct parents even when a label repeats.
  Rng a = rng.fork("op").fork("ue");
  Rng b = rng.fork("apps").fork("ue");
}

void good_in_string(Rng& rng) {
  // Mentions inside string literals are not calls.
  const char* doc = "call rng.fork(\"cell\") once per scope";
  Rng a = rng.fork("cell");
  (void)doc;
}

void bad_int_salt(Rng& rng) {
  Rng a = rng.fork(7);
  // Different spelling, same numeric salt: must fire like the labels do.
  Rng b = rng.fork(0x7);
}

void good_distinct_salts(Rng& rng) {
  Rng a = rng.fork(1'000);
  Rng b = rng.fork(1'001);
}

void good_label_vs_salt(Rng& rng) {
  // fnv1a("7") != 7: a label spelled like a number is a different salt.
  Rng a = rng.fork("7");
  Rng b = rng.fork(7);
}
