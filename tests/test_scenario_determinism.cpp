// Determinism proofs for the scenario engine.
//
// Two hard requirements: (1) the paper-default scenario, routed through
// CampaignConfig::from_scenario, reproduces the golden seed-42 stride-64
// checksum byte-for-byte -- the scenario layer is a pure refactor of the
// hardcoded campaign; (2) every library scenario is byte-identical at
// jobs=1 and jobs=4 (the tsan-parallel preset runs a subset of these as
// its scenario workload).
#include <gtest/gtest.h>

#include <string>

#include "contract_pins.h"
#include "dataset/serialize.h"
#include "scenario/spec.h"
#include "trip/campaign.h"

namespace wheels::trip {
namespace {

std::string scenario_bytes(const std::string& name, int stride, int jobs) {
  Campaign c(CampaignConfig::from_scenario(scenario::load_scenario(name),
                                           stride));
  c.set_jobs(jobs);
  return dataset::encode(c.run());
}

void expect_matches_across_jobs(const std::string& name, int stride) {
  const std::string bytes1 = scenario_bytes(name, stride, 1);
  const std::string bytes4 = scenario_bytes(name, stride, 4);
  ASSERT_EQ(bytes1.size(), bytes4.size()) << name;
  EXPECT_TRUE(bytes1 == bytes4)
      << "scenario " << name << " diverged between jobs=1 and jobs=4";
}

TEST(ScenarioDeterminism, PaperDefaultReproducesGoldenChecksum) {
  // The load-bearing claim of the whole refactor: a config *derived from
  // the declarative spec* lands on the exact pinned bytes of the
  // hand-rolled pre-scenario engine.
  const scenario::ScenarioSpec spec = scenario::paper_default();
  ASSERT_EQ(spec.seed, contract::kGoldenSeed);
  Campaign c(CampaignConfig::from_scenario(spec, contract::kGoldenStride));
  c.set_jobs(4);
  const std::uint64_t checksum = dataset::fnv1a(dataset::encode(c.run()));
  EXPECT_EQ(checksum, contract::kGoldenCampaignChecksum)
      << "scenario-derived paper-default produced 0x" << std::hex << checksum;
}

// Per-scenario jobs=1 vs jobs=4 agreement. Strides are chosen so each run
// covers the scenario's full (short) route in a few seconds; determinism
// bugs are scheduling bugs, not sample-count bugs.
TEST(ScenarioDeterminism, UrbanLoopMatchesAcrossJobs) {
  expect_matches_across_jobs("urban-loop", 16);
}

TEST(ScenarioDeterminism, CommuterCorridorMatchesAcrossJobs) {
  expect_matches_across_jobs("commuter-corridor", 32);
}

TEST(ScenarioDeterminism, HighwayConvoyMatchesAcrossJobs) {
  expect_matches_across_jobs("highway-convoy", 64);
}

TEST(ScenarioDeterminism, EuBandPlanMatchesAcrossJobs) {
  expect_matches_across_jobs("eu-band-plan", 32);
}

TEST(ScenarioDeterminism, DegradedCoverageStormMatchesAcrossJobs) {
  expect_matches_across_jobs("degraded-coverage-storm", 32);
}

TEST(ScenarioDeterminism, ScenariosProduceDistinctBytes) {
  // Differently-specified worlds must not collapse onto the same dataset
  // (a symptom of the spec not actually being threaded through).
  const std::string urban = scenario_bytes("urban-loop", 64, 1);
  const std::string storm = scenario_bytes("degraded-coverage-storm", 64, 1);
  EXPECT_FALSE(urban == storm);
}

}  // namespace
}  // namespace wheels::trip
