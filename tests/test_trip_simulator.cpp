#include <gtest/gtest.h>

#include "core/stats.h"
#include "trip/region.h"
#include "trip/speed_profile.h"
#include "trip/trip_simulator.h"

namespace wheels::trip {
namespace {

using radio::Environment;

TEST(SpeedProfile, ConvergesToEnvironmentTargets) {
  SpeedProfile sp(Rng(1));
  RunningStats rural, urban;
  for (int i = 0; i < 40'000; ++i) {
    rural.add(sp.step(Environment::Rural, Millis{200.0}).value);
  }
  for (int i = 0; i < 40'000; ++i) {
    urban.add(sp.step(Environment::Urban, Millis{200.0}).value);
  }
  EXPECT_GT(rural.mean(), 50.0);
  EXPECT_LT(urban.mean(), 25.0);
}

TEST(SpeedProfile, SpeedAlwaysInPhysicalRange) {
  SpeedProfile sp(Rng(2));
  for (int i = 0; i < 50'000; ++i) {
    const auto env = i % 3 == 0 ? Environment::Urban
                     : i % 3 == 1 ? Environment::Suburban
                                  : Environment::Rural;
    const Mph v = sp.step(env, Millis{100.0});
    EXPECT_GE(v.value, 0.0);
    EXPECT_LE(v.value, 82.0);
  }
}

TEST(SpeedProfile, UrbanHasFullStops) {
  SpeedProfile sp(Rng(3));
  int stopped = 0;
  for (int i = 0; i < 60'000; ++i) {
    if (sp.step(Environment::Urban, Millis{200.0}).value < 1.0) ++stopped;
  }
  EXPECT_GT(stopped, 100);  // stoplights exist
}

TEST(TripSimulator, AdvancesMonotonically) {
  const Route route = Route::cross_country();
  const auto corridor = build_corridor(route, Rng(4));
  TripSimulator trip(route, corridor, Rng(5));
  double prev_pos = -1.0;
  double prev_t = -1e18;
  for (int i = 0; i < 20'000; ++i) {
    const auto pt = trip.advance(Millis{1'000.0});
    EXPECT_GE(pt.position.value, prev_pos);
    EXPECT_GT(pt.time.ms_since_epoch, prev_t);
    prev_pos = pt.position.value;
    prev_t = pt.time.ms_since_epoch;
  }
}

TEST(TripSimulator, DayRolloverAfterDrivingBudget) {
  const Route route = Route::cross_country();
  const auto corridor = build_corridor(route, Rng(6));
  DriveConfig cfg;
  cfg.hours_per_day = 2.0;  // short days to see rollovers quickly
  TripSimulator trip(route, corridor, Rng(7), cfg);
  int max_day = 1;
  for (int i = 0; i < 30'000 && !trip.finished(); ++i) {
    max_day = std::max(max_day, trip.advance(Millis{1'000.0}).day);
  }
  EXPECT_GE(max_day, 4);
}

TEST(TripSimulator, StartsAtEightLocal) {
  const Route route = Route::cross_country();
  const auto corridor = build_corridor(route, Rng(8));
  TripSimulator trip(route, corridor, Rng(9));
  const auto pt = trip.current();
  const CivilTime ct = to_civil(pt.time, TimeZone::Pacific);
  EXPECT_EQ(ct.hour, 8);
  EXPECT_EQ(ct.day, 1);
}

TEST(TripSimulator, CompletesTheRouteInAboutEightDays) {
  const Route route = Route::cross_country();
  const auto corridor = build_corridor(route, Rng(10));
  TripSimulator trip(route, corridor, Rng(11));
  // Step in 5 s chunks until done (bounded loop for safety).
  for (int i = 0; i < 200'000 && !trip.finished(); ++i) {
    trip.advance(Millis{5'000.0});
  }
  EXPECT_TRUE(trip.finished());
  EXPECT_GE(trip.current().day, 7);
  EXPECT_LE(trip.current().day, 12);
  // Total wheel time plausible for 5,700 km.
  EXPECT_GT(trip.total_drive_time().minutes() / 60.0, 55.0);
  EXPECT_LT(trip.total_drive_time().minutes() / 60.0, 110.0);
}

TEST(TripSimulator, FinishedTripStopsAdvancing) {
  const Route route = Route::cross_country();
  const auto corridor = build_corridor(route, Rng(12));
  TripSimulator trip(route, corridor, Rng(13));
  for (int i = 0; i < 200'000 && !trip.finished(); ++i) {
    trip.advance(Millis{5'000.0});
  }
  const auto end = trip.current();
  const auto still = trip.advance(Millis{5'000.0});
  EXPECT_DOUBLE_EQ(still.position.value, end.position.value);
}

}  // namespace
}  // namespace wheels::trip
