// Serve-layer tests: wire protocol round-trips and malformed-frame
// rejection, router error taxonomy, LRU store bounds, cross-request
// single-flight (a thundering herd on one cold fingerprint simulates
// exactly once), byte-identical responses across jobs counts and request
// interleavings, and the daemon transport end-to-end over an AF_UNIX
// socket. The concurrent suites (ServeSingleFlight.*, ServeStore.Concurrent*,
// ServeDaemon.ConcurrentPings) also run under the tsan-parallel preset.
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/singleflight.h"
#include "dataset/fingerprint.h"
#include "scenario/spec.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/store.h"
#include "trip/campaign.h"

namespace wheels::serve {
namespace {

// A selector the expensive suites share: urban-loop at a sparse stride so
// a full campaign resolves in well under a second even under tsan.
DatasetSelector fast_selector(std::uint64_t seed) {
  DatasetSelector sel;
  sel.scenario = "urban-loop";
  sel.has_seed = true;
  sel.seed = seed;
  sel.stride = 1024;
  return sel;
}

trip::CampaignConfig fast_config(std::uint64_t seed) {
  scenario::ScenarioSpec spec = scenario::load_scenario("urban-loop");
  spec.seed = seed;
  return trip::CampaignConfig::from_scenario(spec, 1024);
}

// Strip + validate the frame header of a response and decode the body.
std::pair<std::uint8_t, Reply> unwrap(const std::string& frame) {
  std::uint32_t body_len = 0;
  EXPECT_EQ(peek_frame(frame, kDefaultMaxFrameBytes, body_len),
            FrameStatus::Ok);
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + body_len);
  std::uint8_t kind = 0;
  Reply reply;
  EXPECT_TRUE(decode_reply(
      std::string_view(frame).substr(kFrameHeaderBytes, body_len), kind,
      reply));
  return {kind, reply};
}

RouterOptions hermetic_router_options() {
  RouterOptions opts;
  opts.store.provider.use_cache = false;  // no disk traffic from tests
  return opts;
}

// ---- Protocol --------------------------------------------------------------

TEST(ServeProtocol, FrameRoundTrip) {
  const std::string frame = wrap_frame("hello");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 5);
  EXPECT_EQ(frame.substr(0, 4), kFrameMagic);
  std::uint32_t body_len = 0;
  EXPECT_EQ(peek_frame(frame, kDefaultMaxFrameBytes, body_len),
            FrameStatus::Ok);
  EXPECT_EQ(body_len, 5u);
  EXPECT_EQ(frame.substr(kFrameHeaderBytes), "hello");
}

TEST(ServeProtocol, PeekNeedsFullHeader) {
  const std::string frame = wrap_frame("x");
  std::uint32_t body_len = 0;
  for (std::size_t n = 0; n < kFrameHeaderBytes; ++n) {
    EXPECT_EQ(peek_frame(std::string_view(frame).substr(0, n),
                         kDefaultMaxFrameBytes, body_len),
              FrameStatus::NeedMore)
        << "header prefix of " << n << " bytes";
  }
}

TEST(ServeProtocol, PeekRejectsBadMagic) {
  std::string frame = wrap_frame("x");
  frame[0] = 'X';
  std::uint32_t body_len = 0;
  EXPECT_EQ(peek_frame(frame, kDefaultMaxFrameBytes, body_len),
            FrameStatus::BadMagic);
}

TEST(ServeProtocol, PeekRejectsOversize) {
  const std::string frame = wrap_frame(std::string(64, 'a'));
  std::uint32_t body_len = 0;
  EXPECT_EQ(peek_frame(frame, 63, body_len), FrameStatus::Oversize);
  EXPECT_EQ(peek_frame(frame, 64, body_len), FrameStatus::Ok);
}

std::vector<Request> all_request_kinds() {
  KpiQuery kpi;
  kpi.dataset = fast_selector(7);
  kpi.op = 1;
  kpi.test = 2;
  kpi.tz = 3;
  kpi.min_mph = 25.0;
  kpi.max_mph = 70.0;
  RegionSliceQuery region;
  region.dataset.scenario = "paper-default";
  region.op = 2;
  region.test = 1;
  AppQoeQuery qoe;
  qoe.dataset = fast_selector(11);
  qoe.op = 0;
  return {PingRequest{0x1234abcdu}, kpi,           region,
          qoe,                      StatsRequest{}, ShutdownRequest{}};
}

TEST(ServeProtocol, RequestRoundTripEveryKind) {
  for (const Request& req : all_request_kinds()) {
    const std::string body = encode_request(req);
    Request out;
    ASSERT_EQ(decode_request(body, out), DecodeStatus::Ok)
        << to_string(kind_of(req));
    EXPECT_EQ(out, req) << to_string(kind_of(req));
  }
}

TEST(ServeProtocol, TruncatedRequestsAreMalformedAtEveryLength) {
  for (const Request& req : all_request_kinds()) {
    const std::string body = encode_request(req);
    for (std::size_t n = 0; n < body.size(); ++n) {
      Request out;
      EXPECT_EQ(decode_request(std::string_view(body).substr(0, n), out),
                DecodeStatus::Malformed)
          << to_string(kind_of(req)) << " truncated to " << n << " of "
          << body.size() << " bytes";
    }
  }
}

TEST(ServeProtocol, TrailingBytesAreMalformed) {
  for (const Request& req : all_request_kinds()) {
    std::string body = encode_request(req);
    body.push_back('\0');
    Request out;
    EXPECT_EQ(decode_request(body, out), DecodeStatus::Malformed)
        << to_string(kind_of(req));
  }
}

TEST(ServeProtocol, UnknownTagIsItsOwnStatus) {
  Request out;
  EXPECT_EQ(decode_request(std::string(1, '\x63'), out),
            DecodeStatus::UnknownKind);
  EXPECT_EQ(decode_request(std::string_view(), out), DecodeStatus::Malformed);
}

TEST(ServeProtocol, SelectorRejectsZeroStride) {
  KpiQuery kpi;
  kpi.dataset.stride = 0;
  Request out;
  EXPECT_EQ(decode_request(encode_request(Request{kpi}), out),
            DecodeStatus::Malformed);
}

TEST(ServeProtocol, ReplyRoundTripEveryKind) {
  KpiReply kpi{100, 55.5, 10.0, 50.0, 90.0, 99.0};
  RegionReply region;
  region.rows = {{0, 4, 1.0, 2.0}, {3, 9, 5.0, 6.0}};
  AppQoeReply qoe;
  qoe.rows = {{0, 1, 42, 33.0, 21.0, 0.5}};
  StatsReply stats;
  stats.requests = 12;
  stats.inflight_joins = 7;
  // The reply payload decodes by the echoed request kind, so each reply
  // travels under the kind of the request that produced it.
  const std::vector<std::pair<QueryKind, Reply>> replies = {
      {QueryKind::KpiPercentiles,
       Reply{ErrorReply{ErrorCode::BadScenario, "no such scenario"}}},
      {QueryKind::Ping, Reply{PongReply{0xfeedu}}},
      {QueryKind::KpiPercentiles, Reply{kpi}},
      {QueryKind::RegionSlice, Reply{region}},
      {QueryKind::AppQoe, Reply{qoe}},
      {QueryKind::Stats, Reply{stats}},
      {QueryKind::Shutdown, Reply{ShutdownReply{}}}};
  for (const auto& [req_kind, reply] : replies) {
    const std::string body =
        encode_reply(static_cast<std::uint8_t>(req_kind), reply);
    std::uint8_t kind = 0;
    Reply out;
    ASSERT_TRUE(decode_reply(body, kind, out)) << reply.index();
    EXPECT_EQ(kind, static_cast<std::uint8_t>(req_kind));
    EXPECT_EQ(out, reply) << reply.index();
  }
}

TEST(ServeProtocol, TruncatedRepliesNeverDecode) {
  RegionReply region;
  region.rows = {{1, 2, 3.0, 4.0}};
  const std::string body =
      encode_reply(static_cast<std::uint8_t>(QueryKind::RegionSlice),
                   Reply{region});
  for (std::size_t n = 0; n < body.size(); ++n) {
    std::uint8_t kind = 0;
    Reply out;
    EXPECT_FALSE(
        decode_reply(std::string_view(body).substr(0, n), kind, out))
        << "reply truncated to " << n << " bytes";
  }
}

// ---- Router error taxonomy -------------------------------------------------

TEST(ServeRouterErrors, PingEchoesToken) {
  Router router(hermetic_router_options());
  SessionState session;
  const auto [kind, reply] =
      unwrap(router.handle(encode_request(Request{PingRequest{77}}), session));
  EXPECT_EQ(kind, static_cast<std::uint8_t>(QueryKind::Ping));
  ASSERT_TRUE(std::holds_alternative<PongReply>(reply));
  EXPECT_EQ(std::get<PongReply>(reply).token, 77u);
  EXPECT_EQ(session.requests, 1u);
  EXPECT_EQ(session.errors, 0u);
}

TEST(ServeRouterErrors, UnknownKindGetsTypedError) {
  Router router(hermetic_router_options());
  SessionState session;
  const auto [kind, reply] = unwrap(router.handle("\x63", session));
  EXPECT_EQ(kind, 0x63);
  ASSERT_TRUE(std::holds_alternative<ErrorReply>(reply));
  EXPECT_EQ(std::get<ErrorReply>(reply).code, ErrorCode::UnknownKind);
  EXPECT_EQ(session.errors, 1u);
}

TEST(ServeRouterErrors, MalformedPayloadGetsTypedError) {
  Router router(hermetic_router_options());
  SessionState session;
  // A KPI tag with no payload at all.
  const auto [kind, reply] = unwrap(router.handle(
      std::string(1, static_cast<char>(QueryKind::KpiPercentiles)), session));
  EXPECT_EQ(kind, static_cast<std::uint8_t>(QueryKind::KpiPercentiles));
  ASSERT_TRUE(std::holds_alternative<ErrorReply>(reply));
  EXPECT_EQ(std::get<ErrorReply>(reply).code, ErrorCode::BadPayload);
}

TEST(ServeRouterErrors, UnknownScenarioGetsTypedError) {
  Router router(hermetic_router_options());
  SessionState session;
  KpiQuery kpi;
  kpi.dataset.scenario = "no-such-scenario";
  const auto [kind, reply] =
      unwrap(router.handle(encode_request(Request{kpi}), session));
  EXPECT_EQ(kind, static_cast<std::uint8_t>(QueryKind::KpiPercentiles));
  ASSERT_TRUE(std::holds_alternative<ErrorReply>(reply));
  EXPECT_EQ(std::get<ErrorReply>(reply).code, ErrorCode::BadScenario);
  // Nothing simulated and nothing resident for a query that never resolved.
  EXPECT_EQ(router.store().provider().campaign_simulations(), 0);
  EXPECT_EQ(router.store().resident(), 0u);
}

TEST(ServeRouterErrors, FrameLayerErrorsCarryKindZero) {
  Router router(hermetic_router_options());
  SessionState session;
  const auto [kind, reply] =
      unwrap(router.error_frame(ErrorCode::Truncated, "mid-frame EOF",
                                session));
  EXPECT_EQ(kind, 0u);
  ASSERT_TRUE(std::holds_alternative<ErrorReply>(reply));
  EXPECT_EQ(std::get<ErrorReply>(reply).code, ErrorCode::Truncated);
  EXPECT_EQ(std::get<ErrorReply>(reply).message, "mid-frame EOF");
}

TEST(ServeRouterErrors, StatsCountsRequestsAndErrors) {
  Router router(hermetic_router_options());
  SessionState session;
  (void)router.handle(encode_request(Request{PingRequest{1}}), session);
  (void)router.handle("\x63", session);
  const auto [kind, reply] =
      unwrap(router.handle(encode_request(Request{StatsRequest{}}), session));
  EXPECT_EQ(kind, static_cast<std::uint8_t>(QueryKind::Stats));
  ASSERT_TRUE(std::holds_alternative<StatsReply>(reply));
  const StatsReply& stats = std::get<StatsReply>(reply);
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.store_capacity, static_cast<std::uint64_t>(
                                      router.store().capacity()));
}

TEST(ServeRouterErrors, ShutdownLatches) {
  Router router(hermetic_router_options());
  SessionState session;
  EXPECT_FALSE(router.shutdown_requested());
  const auto [kind, reply] = unwrap(
      router.handle(encode_request(Request{ShutdownRequest{}}), session));
  EXPECT_EQ(kind, static_cast<std::uint8_t>(QueryKind::Shutdown));
  EXPECT_TRUE(std::holds_alternative<ShutdownReply>(reply));
  EXPECT_TRUE(router.shutdown_requested());
}

// ---- LRU store -------------------------------------------------------------

TEST(ServeStore, LruEvictionBoundsResidency) {
  StoreOptions opts;
  opts.max_datasets = 2;
  opts.provider.use_cache = false;
  DatasetStore store(opts);
  std::atomic<int> factory_calls{0};
  store.set_campaign_factory_for_testing(
      [&](const trip::CampaignConfig&) {
        factory_calls.fetch_add(1);
        return std::make_shared<const trip::CampaignResult>();
      });

  const trip::CampaignConfig a = fast_config(1);
  const trip::CampaignConfig b = fast_config(2);
  const trip::CampaignConfig c = fast_config(3);
  ASSERT_NE(dataset::fingerprint(a), dataset::fingerprint(b));

  (void)store.campaign(a);
  (void)store.campaign(b);
  EXPECT_EQ(store.resident(), 2u);
  EXPECT_EQ(store.evictions(), 0);

  (void)store.campaign(c);  // capacity 2: the LRU entry (a) must go
  EXPECT_EQ(store.resident(), 2u);
  EXPECT_EQ(store.evictions(), 1);
  EXPECT_EQ(factory_calls.load(), 3);

  (void)store.campaign(a);  // evicted, so a fourth factory call
  EXPECT_EQ(factory_calls.load(), 4);
  EXPECT_EQ(store.misses(), 4);
  EXPECT_EQ(store.hits(), 0);
}

TEST(ServeStore, HitsBumpRecency) {
  StoreOptions opts;
  opts.max_datasets = 2;
  opts.provider.use_cache = false;
  DatasetStore store(opts);
  std::atomic<int> factory_calls{0};
  store.set_campaign_factory_for_testing(
      [&](const trip::CampaignConfig&) {
        factory_calls.fetch_add(1);
        return std::make_shared<const trip::CampaignResult>();
      });

  const trip::CampaignConfig a = fast_config(1);
  const trip::CampaignConfig b = fast_config(2);
  const trip::CampaignConfig c = fast_config(3);
  (void)store.campaign(a);
  (void)store.campaign(b);
  (void)store.campaign(a);  // hit: a becomes most recent
  EXPECT_EQ(store.hits(), 1);
  (void)store.campaign(c);  // evicts b, not a
  (void)store.campaign(a);  // still resident
  EXPECT_EQ(store.hits(), 2);
  EXPECT_EQ(factory_calls.load(), 3);
  (void)store.campaign(b);  // b was the eviction victim
  EXPECT_EQ(factory_calls.load(), 4);
}

TEST(ServeStore, EvictedDatasetsStayAliveForHolders) {
  StoreOptions opts;
  opts.max_datasets = 1;
  opts.provider.use_cache = false;
  DatasetStore store(opts);
  store.set_campaign_factory_for_testing([](const trip::CampaignConfig&) {
    return std::make_shared<const trip::CampaignResult>();
  });
  const auto held = store.campaign(fast_config(1));
  (void)store.campaign(fast_config(2));  // evicts the first entry
  EXPECT_EQ(store.evictions(), 1);
  EXPECT_EQ(held->logs.size(), 3u);  // shared_ptr keeps it valid
}

TEST(ServeStore, ConcurrentDistinctKeys) {
  constexpr int kThreads = 8;
  StoreOptions opts;
  opts.max_datasets = kThreads;
  opts.provider.use_cache = false;
  DatasetStore store(opts);
  std::atomic<int> factory_calls{0};
  store.set_campaign_factory_for_testing(
      [&](const trip::CampaignConfig&) {
        factory_calls.fetch_add(1);
        return std::make_shared<const trip::CampaignResult>();
      });

  std::vector<trip::CampaignConfig> cfgs;
  for (int i = 0; i < kThreads; ++i)
    cfgs.push_back(fast_config(static_cast<std::uint64_t>(100 + i)));

  std::atomic<int> null_results{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int round = 0; round < 20; ++round) {
        if (!store.campaign(cfgs[static_cast<std::size_t>(i)]))
          null_results.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(null_results.load(), 0);
  EXPECT_EQ(factory_calls.load(), kThreads);
  EXPECT_EQ(store.resident(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(store.hits(), kThreads * 19);
}

// ---- Single-flight ---------------------------------------------------------

TEST(ServeSingleFlight, WaitersShareTheLeadersResult) {
  constexpr int kWaiters = 7;
  SingleFlight<int, int> flights;
  std::mutex mu;
  std::condition_variable cv;
  bool lead_started = false;
  int joined = 0;
  std::atomic<int> computes{0};

  auto resolve_one = [&](bool leader) {
    return flights.resolve(
        42,
        [&] {
          computes.fetch_add(1);
          // The leader holds the flight open until every waiter joined,
          // making "they all shared one computation" deterministic.
          std::unique_lock<std::mutex> lock(mu);
          cv.wait_for(lock, std::chrono::seconds(60),
                      [&] { return joined >= kWaiters; });
          return std::make_shared<const int>(1234);
        },
        [&] {
          EXPECT_TRUE(leader);
          const std::lock_guard<std::mutex> lock(mu);
          lead_started = true;
          cv.notify_all();
        },
        [&] {
          EXPECT_FALSE(leader);
          const std::lock_guard<std::mutex> lock(mu);
          ++joined;
          cv.notify_all();
        });
  };

  std::vector<std::shared_ptr<const int>> results(kWaiters + 1);
  std::thread lead([&] { results[0] = resolve_one(true); });
  // Wait for the leader's flight to exist so every other thread joins it.
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(60), [&] { return lead_started; });
  }
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back(
        [&, i] { results[static_cast<std::size_t>(i) + 1] = resolve_one(false); });
  }
  lead.join();
  for (auto& t : waiters) t.join();

  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(flights.in_flight(), 0u);
  for (const auto& r : results) {
    ASSERT_TRUE(r);
    EXPECT_EQ(r.get(), results[0].get());
    EXPECT_EQ(*r, 1234);
  }
}

TEST(ServeSingleFlight, ExceptionPropagatesAndFlightRetires) {
  SingleFlight<int, int> flights;
  EXPECT_THROW(
      (void)flights.resolve(
          7, []() -> std::shared_ptr<const int> {
            throw std::runtime_error("boom");
          },
          [] {}, [] {}),
      std::runtime_error);
  EXPECT_EQ(flights.in_flight(), 0u);
  // A later call retries instead of inheriting the failure.
  const auto ok = flights.resolve(
      7, [] { return std::make_shared<const int>(5); }, [] {}, [] {});
  ASSERT_TRUE(ok);
  EXPECT_EQ(*ok, 5);
}

// The acceptance-criterion proof: 8 concurrent requests for one cold
// fingerprint run exactly one simulation, with >= 7 in-flight joins, and
// every caller receives the same dataset.
TEST(ServeSingleFlight, HerdSimulatesOnce) {
  constexpr int kClients = 8;
  StoreOptions opts;
  opts.provider.use_cache = false;  // cold by construction
  DatasetStore store(opts);

  std::mutex mu;
  std::condition_variable cv;
  int joins = 0;
  store.provider().set_inflight_hook(
      [&](dataset::DatasetKind, std::uint64_t, bool joined) {
        std::unique_lock<std::mutex> lock(mu);
        if (joined) {
          ++joins;
          cv.notify_all();
          return;
        }
        // Leader: hold the flight open until the whole herd has joined so
        // the exactly-one-simulation assertion cannot race.
        cv.wait_for(lock, std::chrono::seconds(120),
                    [&] { return joins >= kClients - 1; });
      });

  const trip::CampaignConfig cfg = fast_config(4242);
  std::vector<std::shared_ptr<const trip::CampaignResult>> results(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back(
        [&, i] { results[static_cast<std::size_t>(i)] = store.campaign(cfg); });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(store.provider().campaign_simulations(), 1);
  EXPECT_EQ(store.provider().inflight_leaders(), 1);
  EXPECT_EQ(store.provider().inflight_joins(), kClients - 1);
  EXPECT_EQ(store.provider().disk_hits(), 0);
  for (const auto& r : results) {
    ASSERT_TRUE(r);
    EXPECT_EQ(r.get(), results[0].get());
  }
  EXPECT_EQ(store.resident(), 1u);
}

// ---- Byte-determinism across jobs and interleavings ------------------------

TEST(ServeDeterminism, ResponsesMatchAcrossJobsAndOrder) {
  std::vector<std::string> bodies;
  for (std::uint8_t test = 0; test <= 2; ++test) {
    KpiQuery kpi;
    kpi.dataset = fast_selector(7);
    kpi.op = test;  // a different operator per test for variety
    kpi.test = test;
    bodies.push_back(encode_request(Request{kpi}));
  }
  RegionSliceQuery region;
  region.dataset = fast_selector(7);
  region.op = 1;
  region.test = 0;
  bodies.push_back(encode_request(Request{region}));
  AppQoeQuery qoe;
  qoe.dataset = fast_selector(7);
  qoe.op = 2;
  bodies.push_back(encode_request(Request{qoe}));

  RouterOptions opts1 = hermetic_router_options();
  opts1.store.provider.jobs = 1;
  Router r1(opts1);
  RouterOptions opts4 = hermetic_router_options();
  opts4.store.provider.jobs = 4;
  Router r4(opts4);

  // jobs=1 serves the queries in order; jobs=4 serves them in reverse, so
  // byte-identity also covers request interleaving.
  std::vector<std::string> frames1(bodies.size());
  std::vector<std::string> frames4(bodies.size());
  SessionState s1, s4;
  for (std::size_t i = 0; i < bodies.size(); ++i)
    frames1[i] = r1.handle(bodies[i], s1);
  for (std::size_t i = bodies.size(); i-- > 0;)
    frames4[i] = r4.handle(bodies[i], s4);

  ASSERT_GE(r1.store().provider().campaign_simulations(), 1);
  ASSERT_GE(r4.store().provider().campaign_simulations(), 1);
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    EXPECT_EQ(frames1[i], frames4[i]) << "query " << i;
    // Sanity: the identical frames are real replies, not identical errors.
    const auto [kind, reply] = unwrap(frames1[i]);
    EXPECT_NE(kind, 0u);
    EXPECT_FALSE(std::holds_alternative<ErrorReply>(reply)) << "query " << i;
  }

  // Asking again (now store-resident) reproduces the same bytes.
  SessionState again;
  EXPECT_EQ(r1.handle(bodies[0], again), frames1[0]);
  EXPECT_GE(r1.store().hits(), 1);
}

// ---- Daemon transport ------------------------------------------------------

std::string scratch_socket(const std::string& name) {
  const std::string dir =
      "/tmp/wheels-serve-test-" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0700);
  const std::string path = dir + "/" + name + ".sock";
  ::unlink(path.c_str());
  return path;
}

bool wait_for_socket(const std::string& path) {
  for (int i = 0; i < 400; ++i) {
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0 && S_ISSOCK(st.st_mode)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return false;
}

struct RunningDaemon {
  explicit RunningDaemon(DaemonOptions opts) : daemon(std::move(opts)) {
    thread = std::thread([this] { exit_code.store(daemon.run()); });
    socket_ok = wait_for_socket(daemon.socket_path());
  }
  ~RunningDaemon() {
    daemon.request_stop();
    if (thread.joinable()) thread.join();
  }
  Daemon daemon;
  std::thread thread;
  std::atomic<int> exit_code{-1};
  bool socket_ok = false;
};

DaemonOptions daemon_options(const std::string& socket_name) {
  DaemonOptions opts;
  opts.socket_path = scratch_socket(socket_name);
  opts.idle_timeout_ms = 0;  // tests control timing explicitly
  opts.router.store.provider.use_cache = false;
  return opts;
}

TEST(ServeDaemon, PingStatsAndCleanShutdown) {
  RunningDaemon running(daemon_options("ping"));
  ASSERT_TRUE(running.socket_ok);

  Client client;
  ASSERT_TRUE(client.connect(running.daemon.socket_path()));
  const auto pong = client.call(Request{PingRequest{0xabcdefu}});
  ASSERT_TRUE(pong.has_value());
  ASSERT_TRUE(std::holds_alternative<PongReply>(pong->second));
  EXPECT_EQ(std::get<PongReply>(pong->second).token, 0xabcdefu);

  const auto stats = client.call(Request{StatsRequest{}});
  ASSERT_TRUE(stats.has_value());
  ASSERT_TRUE(std::holds_alternative<StatsReply>(stats->second));
  EXPECT_GE(std::get<StatsReply>(stats->second).requests, 2u);
  EXPECT_GE(std::get<StatsReply>(stats->second).sessions, 1u);

  const auto bye = client.call(Request{ShutdownRequest{}});
  ASSERT_TRUE(bye.has_value());
  EXPECT_TRUE(std::holds_alternative<ShutdownReply>(bye->second));

  running.thread.join();
  EXPECT_EQ(running.exit_code.load(), 0);
}

ErrorCode probe_error(const std::string& socket_path,
                      const std::string& raw_bytes, bool truncate_after) {
  Client client;
  if (!client.connect(socket_path)) return ErrorCode::Internal;
  if (!client.send_raw(raw_bytes)) return ErrorCode::Internal;
  if (truncate_after) client.shutdown_writes();
  const auto reply = client.read_reply();
  if (!reply.has_value() ||
      !std::holds_alternative<ErrorReply>(reply->second))
    return ErrorCode::Internal;
  return std::get<ErrorReply>(reply->second).code;
}

TEST(ServeDaemon, MalformedFramesGetTypedErrorsNotCrashes) {
  RunningDaemon running(daemon_options("malformed"));
  ASSERT_TRUE(running.socket_ok);
  const std::string& path = running.daemon.socket_path();

  EXPECT_EQ(probe_error(path, std::string("XWSV\0\0\0\0", 8), false),
            ErrorCode::BadMagic);
  EXPECT_EQ(probe_error(path, std::string("WSV1\xff\xff\xff\xff", 8), false),
            ErrorCode::Oversize);
  // A header promising 16 body bytes, then EOF after 3.
  EXPECT_EQ(probe_error(path, std::string("WSV1\x10\0\0\0", 8) + "abc", true),
            ErrorCode::Truncated);
  EXPECT_EQ(probe_error(path, wrap_frame(std::string(1, '\x63')), false),
            ErrorCode::UnknownKind);
  EXPECT_EQ(probe_error(
                path,
                wrap_frame(std::string(
                    1, static_cast<char>(QueryKind::KpiPercentiles))),
                false),
            ErrorCode::BadPayload);

  // The daemon survived every probe and still answers real requests.
  Client client;
  ASSERT_TRUE(client.connect(path));
  const auto pong = client.call(Request{PingRequest{9}});
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(std::holds_alternative<PongReply>(pong->second));
}

TEST(ServeDaemon, IdleClientsTimeOutWithTypedError) {
  DaemonOptions opts = daemon_options("idle");
  opts.idle_timeout_ms = 200;
  RunningDaemon running(std::move(opts));
  ASSERT_TRUE(running.socket_ok);

  Client client;
  ASSERT_TRUE(client.connect(running.daemon.socket_path()));
  // Send nothing: the daemon must report the timeout, then hang up.
  const auto reply = client.read_reply();
  ASSERT_TRUE(reply.has_value());
  ASSERT_TRUE(std::holds_alternative<ErrorReply>(reply->second));
  EXPECT_EQ(std::get<ErrorReply>(reply->second).code, ErrorCode::IdleTimeout);
  EXPECT_FALSE(client.read_reply().has_value());  // connection closed
}

TEST(ServeDaemon, ConcurrentPings) {
  constexpr int kClients = 8;
  constexpr int kCallsEach = 50;
  RunningDaemon running(daemon_options("concurrent"));
  ASSERT_TRUE(running.socket_ok);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.connect(running.daemon.socket_path())) {
        failures.fetch_add(kCallsEach);
        return;
      }
      for (int i = 0; i < kCallsEach; ++i) {
        const std::uint64_t token =
            static_cast<std::uint64_t>(c) * 1000 + static_cast<std::uint64_t>(i);
        const auto reply = client.call(Request{PingRequest{token}});
        if (!reply.has_value() ||
            !std::holds_alternative<PongReply>(reply->second) ||
            std::get<PongReply>(reply->second).token != token)
          failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  Client client;
  ASSERT_TRUE(client.connect(running.daemon.socket_path()));
  const auto stats = client.call(Request{StatsRequest{}});
  ASSERT_TRUE(stats.has_value());
  ASSERT_TRUE(std::holds_alternative<StatsReply>(stats->second));
  EXPECT_GE(std::get<StatsReply>(stats->second).requests,
            static_cast<std::uint64_t>(kClients * kCallsEach));
  EXPECT_GE(std::get<StatsReply>(stats->second).sessions,
            static_cast<std::uint64_t>(kClients));
}

}  // namespace
}  // namespace wheels::serve
