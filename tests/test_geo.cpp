#include <gtest/gtest.h>

#include "core/geo.h"

namespace wheels {
namespace {

const LatLon kLosAngeles{34.05, -118.24};
const LatLon kBoston{42.36, -71.06};
const LatLon kLasVegas{36.17, -115.14};

TEST(Geo, HaversineZeroForSamePoint) {
  EXPECT_DOUBLE_EQ(haversine_distance(kBoston, kBoston).value, 0.0);
}

TEST(Geo, HaversineSymmetric) {
  EXPECT_NEAR(haversine_distance(kLosAngeles, kBoston).value,
              haversine_distance(kBoston, kLosAngeles).value, 1e-6);
}

TEST(Geo, LaToBostonGreatCircle) {
  // Known great-circle distance ~4,170 km.
  const Meters d = haversine_distance(kLosAngeles, kBoston);
  EXPECT_NEAR(d.kilometers(), 4170.0, 60.0);
}

TEST(Geo, LaToVegas) {
  const Meters d = haversine_distance(kLosAngeles, kLasVegas);
  EXPECT_NEAR(d.kilometers(), 368.0, 15.0);
}

TEST(Geo, TriangleInequalityViaWaypoint) {
  const double direct = haversine_distance(kLosAngeles, kBoston).value;
  const double via = haversine_distance(kLosAngeles, kLasVegas).value +
                     haversine_distance(kLasVegas, kBoston).value;
  EXPECT_LE(direct, via + 1.0);
}

TEST(Geo, InterpolateEndpoints) {
  EXPECT_EQ(interpolate(kLosAngeles, kBoston, 0.0), kLosAngeles);
  EXPECT_EQ(interpolate(kLosAngeles, kBoston, 1.0), kBoston);
  const LatLon mid = interpolate(kLosAngeles, kBoston, 0.5);
  EXPECT_NEAR(mid.lat, (kLosAngeles.lat + kBoston.lat) / 2, 1e-12);
  EXPECT_NEAR(mid.lon, (kLosAngeles.lon + kBoston.lon) / 2, 1e-12);
}

TEST(Geo, BearingEastward) {
  // LA -> Boston is roughly east-northeast.
  const double brg = initial_bearing_deg(kLosAngeles, kBoston);
  EXPECT_GT(brg, 45.0);
  EXPECT_LT(brg, 90.0);
}

TEST(Geo, BearingRange) {
  const double brg = initial_bearing_deg(kBoston, kLosAngeles);
  EXPECT_GE(brg, 0.0);
  EXPECT_LT(brg, 360.0);
}

TEST(Geo, DestinationRoundTrip) {
  // Travel 100 km at bearing 60, distance back must match.
  const LatLon dst = destination(kLosAngeles, 60.0,
                                 Meters::from_kilometers(100.0));
  EXPECT_NEAR(haversine_distance(kLosAngeles, dst).kilometers(), 100.0,
              0.5);
}

TEST(Geo, DestinationZeroDistance) {
  const LatLon dst = destination(kBoston, 123.0, Meters{0.0});
  EXPECT_NEAR(dst.lat, kBoston.lat, 1e-9);
  EXPECT_NEAR(dst.lon, kBoston.lon, 1e-9);
}

}  // namespace
}  // namespace wheels
