#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "core/stats.h"
#include "radio/fading.h"

namespace wheels::radio {
namespace {

TEST(Shadowing, StationaryVariance) {
  ShadowingProcess sp(Rng(1), 6.0, Meters{50.0});
  RunningStats rs;
  for (int i = 0; i < 50'000; ++i) {
    rs.add(sp.advance(Meters{10.0}).value);
  }
  EXPECT_NEAR(rs.mean(), 0.0, 0.3);
  EXPECT_NEAR(rs.stddev(), 6.0, 0.5);
}

TEST(Shadowing, ZeroDistanceKeepsValue) {
  ShadowingProcess sp(Rng(2), 6.0, Meters{50.0});
  const double v = sp.advance(Meters{5.0}).value;
  EXPECT_DOUBLE_EQ(sp.advance(Meters{0.0}).value, v);
}

TEST(Shadowing, CorrelationDecaysWithDistance) {
  // Lag-1 autocorrelation at step d should be ~exp(-d/dcorr).
  for (double step : {5.0, 25.0, 100.0}) {
    ShadowingProcess sp(Rng(3), 6.0, Meters{50.0});
    std::vector<double> xs, ys;
    double prev = sp.advance(Meters{step}).value;
    for (int i = 0; i < 40'000; ++i) {
      const double cur = sp.advance(Meters{step}).value;
      xs.push_back(prev);
      ys.push_back(cur);
      prev = cur;
    }
    const double rho = pearson(xs, ys);
    EXPECT_NEAR(rho, std::exp(-step / 50.0), 0.05) << "step=" << step;
  }
}

TEST(Shadowing, ForTechUsesCatalogSigma) {
  auto sp = ShadowingProcess::for_tech(Rng(4), Tech::NR_MMWAVE,
                                       Environment::Urban);
  EXPECT_DOUBLE_EQ(sp.sigma_db(), shadowing_sigma_db(Tech::NR_MMWAVE,
                                                     Environment::Urban));
}

TEST(FastFading, ZeroMeanish) {
  FastFading ff(Rng(5), Tech::NR_MID);
  RunningStats rs;
  for (int i = 0; i < 50'000; ++i) rs.add(ff.sample_db().value);
  // Slight negative skew from the deep-fade tail; mean within ~1 dB of 0.
  EXPECT_NEAR(rs.mean(), 0.0, 1.0);
  EXPECT_GT(rs.stddev(), 1.0);
}

TEST(FastFading, DeepFadeTailExists) {
  FastFading ff(Rng(6), Tech::NR_MMWAVE);
  int deep = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (ff.sample_db().value < -12.0) ++deep;
  }
  EXPECT_GT(deep, 50);  // deep fades happen
  EXPECT_LT(deep, 4'000);  // but are not the norm
}

TEST(Blockage, OnlyAffectsMmwave) {
  BlockageProcess bp(Rng(7), Tech::NR_MID);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_DOUBLE_EQ(bp.advance(Millis{20.0}).value, 0.0);
    EXPECT_FALSE(bp.blocked());
  }
}

TEST(Blockage, DutyCycleMatchesConfiguration) {
  BlockageProcess bp(Rng(8), Tech::NR_MMWAVE);
  int blocked = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    if (bp.advance(Millis{10.0}).value > 0.0) ++blocked;
  }
  // Stationary blocked fraction = 300 / (300 + 1500) = 1/6.
  EXPECT_NEAR(static_cast<double>(blocked) / n, 1.0 / 6.0, 0.03);
}

TEST(Blockage, EpisodesAreBursty) {
  BlockageProcess bp(Rng(9), Tech::NR_MMWAVE);
  int transitions = 0;
  bool prev = false;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const bool cur = bp.advance(Millis{10.0}).value > 0.0;
    if (cur != prev) ++transitions;
    prev = cur;
  }
  // Mean episode ~30-150 slots; far fewer transitions than slots.
  EXPECT_LT(transitions, n / 20);
  EXPECT_GT(transitions, 100);
}

}  // namespace
}  // namespace wheels::radio
