// Provider/cache integration at the smoke stride: a warm cache must serve
// byte-identical data without simulating, corruption must degrade to
// re-simulation, and the seed-42 stride-64 dataset is pinned by checksum
// so an accidental change to any stochastic process (or to the encoder)
// is caught here rather than as a silent drift of every figure.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "contract_pins.h"
#include "dataset/cache.h"
#include "dataset/fingerprint.h"
#include "dataset/provider.h"
#include "dataset/serialize.h"

namespace wheels::dataset {
namespace {

namespace fs = std::filesystem;

// All determinism pins come from tests/contract_pins.h (generated from
// tools/contracts.json); an intentional simulation or schema change is a
// registry edit + `tools/wheels_contract.py --fix-pins`, never an edit
// here. The container format the cache writes must be the registry's.
static_assert(kSchemaVersion == contract::kSchemaVersion,
              "src/dataset/serialize.h schema drifted from the registry");
static_assert(kMagic == contract::kDatasetMagic,
              "src/dataset/serialize.h magic drifted from the registry");

constexpr int kStride = contract::kGoldenStride;
constexpr std::uint64_t kGoldenCampaignChecksum =
    contract::kGoldenCampaignChecksum;

const char kDir[] = "dataset-cache-test";

trip::CampaignConfig small_cfg() {
  trip::CampaignConfig cfg;
  cfg.seed = contract::kGoldenSeed;
  cfg.cycle_stride = kStride;
  return cfg;
}

apps::AppCampaignConfig small_app_cfg() {
  apps::AppCampaignConfig cfg;
  cfg.seed = contract::kGoldenSeed;
  cfg.cycle_stride = kStride;
  return cfg;
}

ProviderOptions opts() {
  ProviderOptions o;
  o.cache_dir = kDir;
  return o;
}

TEST(DatasetCache, WarmCacheEqualsFreshSimulation) {
  fs::remove_all(kDir);

  CampaignProvider fresh(opts());
  const auto& res = fresh.load_or_run(small_cfg());
  EXPECT_EQ(fresh.campaign_simulations(), 1);
  EXPECT_EQ(fresh.disk_hits(), 0);

  // Second ask in the same process: the in-memory memo, not a second
  // simulation and not even a disk read.
  const auto& again = fresh.load_or_run(small_cfg());
  EXPECT_EQ(&res, &again);
  EXPECT_EQ(fresh.campaign_simulations(), 1);
  EXPECT_EQ(fresh.disk_hits(), 0);

  // A new provider over the same directory (a fresh process, as far as the
  // cache is concerned) must serve identical data purely from disk.
  CampaignProvider warm(opts());
  const auto& cached = warm.load_or_run(small_cfg());
  EXPECT_EQ(warm.campaign_simulations(), 0);
  EXPECT_EQ(warm.disk_hits(), 1);
  EXPECT_TRUE(res == cached);
}

TEST(DatasetCache, GoldenChecksumPinsSeed42Dataset) {
  // The previous test left the dataset on disk; load it without
  // simulating.
  CampaignProvider p(opts());
  const auto& res = p.load_or_run(small_cfg());
  ASSERT_EQ(p.campaign_simulations(), 0) << "expected a warm cache";
  const std::uint64_t checksum = fnv1a(encode(res));
  EXPECT_EQ(checksum, kGoldenCampaignChecksum)
      << "seed-42 stride-64 dataset changed; if intentional, repin the "
      << "golden in tools/contracts.json to 0x" << std::hex << checksum
      << " and rerun tools/wheels_contract.py --fix-pins --fix-docs";
}

TEST(DatasetCache, CorruptFileFallsBackToSimulation) {
  const auto cfg = small_cfg();
  const std::uint64_t fp = fingerprint(cfg);
  const fs::path path = fs::path(kDir) / DatasetCache::file_name(
      DatasetKind::Campaign, fp, ran::OperatorId::Verizon);
  ASSERT_TRUE(fs::exists(path));

  // Reference copy (memo) before corrupting the file.
  CampaignProvider reference(opts());
  const auto& good = reference.load_or_run(cfg);
  ASSERT_EQ(reference.campaign_simulations(), 0);

  // Flip one payload byte on disk.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(-1, std::ios::end);
    char c = 0;
    f.get(c);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(c ^ 0x5a));
  }

  CampaignProvider repaired(opts());
  const auto& resim = repaired.load_or_run(cfg);
  EXPECT_EQ(repaired.campaign_simulations(), 1)
      << "corrupt cache entry must re-simulate, not serve garbage";
  EXPECT_EQ(repaired.disk_hits(), 0);
  EXPECT_TRUE(good == resim);

  // The re-simulation healed the cache entry.
  CampaignProvider healed(opts());
  healed.load_or_run(cfg);
  EXPECT_EQ(healed.campaign_simulations(), 0);
  EXPECT_EQ(healed.disk_hits(), 1);
}

TEST(DatasetCache, AppCampaignRoundTripsThroughCache) {
  CampaignProvider fresh(opts());
  const auto& res = fresh.load_or_run_apps(small_app_cfg());
  EXPECT_EQ(fresh.campaign_simulations(), 1);

  CampaignProvider warm(opts());
  const auto& cached = warm.load_or_run_apps(small_app_cfg());
  EXPECT_EQ(warm.campaign_simulations(), 0);
  EXPECT_EQ(warm.disk_hits(), 1);
  EXPECT_TRUE(res == cached);
}

TEST(DatasetCache, EnvVariableDisablesDiskCache) {
  // Static baselines are cheap enough to simulate twice here.
  const auto cfg = small_cfg();
  CampaignProvider writer(opts());
  const auto& sb = writer.load_or_run_static(cfg, ran::OperatorId::Verizon);
  EXPECT_EQ(writer.baseline_simulations(), 1);

  ASSERT_EQ(setenv("WHEELS_DATASET_CACHE", "0", 1), 0);
  CampaignProvider bypass(opts());
  EXPECT_FALSE(bypass.cache_enabled());
  const auto& sb2 = bypass.load_or_run_static(cfg, ran::OperatorId::Verizon);
  EXPECT_EQ(bypass.baseline_simulations(), 1)
      << "WHEELS_DATASET_CACHE=0 must force re-simulation";
  EXPECT_EQ(bypass.disk_hits(), 0);
  EXPECT_TRUE(sb == sb2);
  ASSERT_EQ(unsetenv("WHEELS_DATASET_CACHE"), 0);

  // With the variable cleared the same directory serves hits again.
  CampaignProvider reader(opts());
  reader.load_or_run_static(cfg, ran::OperatorId::Verizon);
  EXPECT_EQ(reader.baseline_simulations(), 0);
  EXPECT_EQ(reader.disk_hits(), 1);
}

}  // namespace
}  // namespace wheels::dataset
