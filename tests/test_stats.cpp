#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/rng.h"
#include "core/stats.h"

namespace wheels {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 4.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.cv_percent(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.cv_percent(), 0.0);
}

TEST(RunningStats, EmptyExtremaAreNaN) {
  // An empty window has no extrema; a silent 0.0 used to poison
  // downstream min/max aggregation.
  RunningStats rs;
  EXPECT_TRUE(std::isnan(rs.min()));
  EXPECT_TRUE(std::isnan(rs.max()));
  rs.add(-3.0);
  EXPECT_DOUBLE_EQ(rs.min(), -3.0);
  EXPECT_DOUBLE_EQ(rs.max(), -3.0);
}

TEST(RunningStats, MergeEmptyKeepsExtremaNaN) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_TRUE(std::isnan(a.min()));
  EXPECT_TRUE(std::isnan(a.max()));
  b.add(2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 2.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats all, a, b;
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, KnownValues) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 12.5), 1.5);  // interpolation
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Percentile, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(percentile(std::vector<double>{}, 50.0)));
  EXPECT_TRUE(std::isnan(median(std::vector<double>{})));
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.0}, 99.0), 7.0);
}

TEST(Percentile, NanInputsAreRejected) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(percentile(std::vector<double>{1.0, nan, 3.0}, 50.0)));
  EXPECT_TRUE(std::isnan(percentile(std::vector<double>{1.0, 2.0}, nan)));
}

TEST(ApproxEqual, ToleratesRoundoffButNotRealDifferences) {
  EXPECT_TRUE(approx_equal(0.1 + 0.2, 0.3));
  EXPECT_TRUE(approx_equal(1e12, 1e12 * (1.0 + 1e-12)));
  EXPECT_FALSE(approx_equal(1.0, 1.0001));
  EXPECT_FALSE(approx_equal(0.0, 1e-3));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(approx_equal(nan, nan));
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(approx_equal(inf, inf));
  EXPECT_FALSE(approx_equal(inf, -inf));
  EXPECT_TRUE(approx_zero(0.0));
  EXPECT_TRUE(approx_zero(-1e-12));
  EXPECT_FALSE(approx_zero(1e-3));
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5}, y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> yn{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, yn), -1.0, 1e-12);
}

TEST(Pearson, IndependentNearZero) {
  Rng rng(2);
  std::vector<double> x(20'000), y(20'000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.03);
}

TEST(Pearson, DegenerateInputs) {
  std::vector<double> x{1, 1, 1}, y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);  // zero variance
  std::vector<double> one{1.0};
  EXPECT_DOUBLE_EQ(pearson(one, one), 0.0);  // too few points
}

TEST(Pearson, InvariantToAffineTransform) {
  Rng rng(3);
  std::vector<double> x(1'000), y(1'000), y2(1'000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = 0.7 * x[i] + rng.normal();
    y2[i] = 100.0 + 42.0 * y[i];
  }
  EXPECT_NEAR(pearson(x, y), pearson(x, y2), 1e-12);
}

TEST(EmpiricalCdf, BasicProperties) {
  EmpiricalCdf cdf({3.0, 1.0, 2.0, 2.0});
  EXPECT_EQ(cdf.count(), 4u);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
}

TEST(EmpiricalCdf, QuantileMonotone) {
  Rng rng(4);
  std::vector<double> v(5'000);
  for (auto& x : v) x = rng.normal(0.0, 5.0);
  EmpiricalCdf cdf(std::move(v));
  double prev = cdf.quantile(0.0);
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    const double q = cdf.quantile(p);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(EmpiricalCdf, CurveShape) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0, 5.0});
  const auto curve = cdf.curve(5);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve.front().p, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().p, 1.0);
  EXPECT_DOUBLE_EQ(curve.front().x, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().x, 5.0);
}

TEST(EmpiricalCdf, EmptyIsSafe) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_TRUE(cdf.curve().empty());
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);   // bin 0
  h.add(3.0);   // bin 1
  h.add(-5.0);  // clamps to bin 0
  h.add(99.0);  // clamps to bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10.0, 0.0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace wheels
