#include <gtest/gtest.h>

#include "trip/region.h"
#include "trip/route.h"

namespace wheels::trip {
namespace {

TEST(Route, CrossCountryLengthMatchesStudy) {
  const Route r = Route::cross_country();
  EXPECT_NEAR(r.length().kilometers(), 5'711.0, 150.0);
}

TEST(Route, TenMajorCitiesInOrder) {
  const Route r = Route::cross_country();
  ASSERT_EQ(r.cities().size(), 10u);
  EXPECT_EQ(r.cities().front().name, "Los Angeles");
  EXPECT_EQ(r.cities().back().name, "Boston");
  for (std::size_t i = 1; i < r.cities().size(); ++i) {
    EXPECT_GT(r.cities()[i].route_pos.value,
              r.cities()[i - 1].route_pos.value);
  }
}

TEST(Route, FiveWavelengthCities) {
  const Route r = Route::cross_country();
  int edges = 0;
  for (const auto& c : r.cities()) {
    if (c.has_edge_server) ++edges;
  }
  EXPECT_EQ(edges, 5);  // LA, Las Vegas, Denver, Chicago, Boston
}

TEST(Route, PositionInterpolation) {
  const Route r = Route::cross_country();
  const LatLon start = r.position_at(Meters{0.0});
  EXPECT_NEAR(start.lat, 34.05, 1e-9);
  const LatLon end = r.position_at(r.length());
  EXPECT_NEAR(end.lat, 42.36, 1e-9);
  // Past the end clamps.
  const LatLon past = r.position_at(r.length() + Meters{1e6});
  EXPECT_NEAR(past.lon, end.lon, 1e-9);
}

TEST(Route, CrossesAllFourTimezonesInOrder) {
  const Route r = Route::cross_country();
  EXPECT_EQ(r.timezone_at(Meters{0.0}), TimeZone::Pacific);
  EXPECT_EQ(r.timezone_at(r.length()), TimeZone::Eastern);
  int prev = -1;
  bool saw[4] = {};
  for (double p = 0.0; p <= r.length().value; p += 50'000.0) {
    const int tz = static_cast<int>(r.timezone_at(Meters{p}));
    EXPECT_GE(tz, prev);  // monotonically eastward
    prev = tz;
    saw[tz] = true;
  }
  for (bool s : saw) EXPECT_TRUE(s);
}

TEST(Route, DistanceToNearestCity) {
  const Route r = Route::cross_country();
  EXPECT_DOUBLE_EQ(r.distance_to_nearest_city(Meters{0.0}).value, 0.0);
  const Meters mid{(r.cities()[0].route_pos.value +
                    r.cities()[1].route_pos.value) / 2.0};
  EXPECT_GT(r.distance_to_nearest_city(mid).kilometers(), 100.0);
}

TEST(Corridor, BuildCoversWholeRoute) {
  const Route r = Route::cross_country();
  const auto c = build_corridor(r, Rng(1));
  EXPECT_NEAR(c.length().value, r.length().value, 2'500.0);
}

TEST(Corridor, UrbanNearCitiesRuralBetween) {
  const Route r = Route::cross_country();
  const auto c = build_corridor(r, Rng(2));
  EXPECT_EQ(c.at(Meters{1'000.0}).env, radio::Environment::Urban);  // LA
  // Deep between Las Vegas and Salt Lake City: rural unless a town.
  double rural_km = 0.0, total_km = 0.0;
  for (const auto& seg : c.segments()) {
    const double len = (seg.end.value - seg.begin.value) / 1000.0;
    total_km += len;
    if (seg.env == radio::Environment::Rural) rural_km += len;
  }
  EXPECT_GT(rural_km / total_km, 0.5);  // mostly interstate
  EXPECT_LT(rural_km / total_km, 0.95);
}

TEST(Corridor, EnvironmentMixIsPlausible) {
  const Route r = Route::cross_country();
  const auto c = build_corridor(r, Rng(3));
  double urban = 0.0, total = 0.0;
  for (const auto& seg : c.segments()) {
    const double len = seg.end.value - seg.begin.value;
    total += len;
    if (seg.env == radio::Environment::Urban) urban += len;
  }
  EXPECT_GT(urban / total, 0.03);
  EXPECT_LT(urban / total, 0.20);
}

TEST(Corridor, TimezonesConsistentWithRoute) {
  const Route r = Route::cross_country();
  const auto c = build_corridor(r, Rng(4));
  for (double p = 10'000.0; p < c.length().value; p += 250'000.0) {
    EXPECT_EQ(c.at(Meters{p}).tz, r.timezone_at(Meters{p}));
  }
}

}  // namespace
}  // namespace wheels::trip
