// The hard requirement of the parallel campaign engine: the jobs count is
// a pure wall-clock knob. jobs=1 (fully sequential, no threads at all) and
// jobs=N must produce byte-identical serialized datasets, and the parallel
// path must still hit the PR-2 golden checksum that pins every stochastic
// process of the seed-42 stride-64 campaign.
//
// These tests are also the tsan workload: the tsan-parallel preset runs
// the *MatchesAcrossJobs tests with WHEELS_JOBS=4 to prove the replay
// workers share no unsynchronized state.
#include <gtest/gtest.h>

#include <string>

#include "contract_pins.h"
#include "dataset/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "trip/campaign.h"

namespace wheels::trip {
namespace {

// Stride 256 keeps a full-route drive (every segment kind, all four
// timezones) at a few seconds per run: determinism bugs are scheduling
// bugs, not sample-count bugs, so a sparse campaign finds them too.
CampaignConfig sparse_cfg() {
  CampaignConfig cfg;
  cfg.seed = 42;
  cfg.cycle_stride = 256;
  return cfg;
}

TEST(ParallelDeterminism, CampaignMatchesAcrossJobs) {
  Campaign sequential(sparse_cfg());
  sequential.set_jobs(1);
  const std::string bytes1 = dataset::encode(sequential.run());

  Campaign parallel(sparse_cfg());
  parallel.set_jobs(4);
  ASSERT_EQ(parallel.jobs(), 4);
  const std::string bytes4 = dataset::encode(parallel.run());

  ASSERT_EQ(bytes1.size(), bytes4.size());
  EXPECT_TRUE(bytes1 == bytes4)
      << "jobs=4 campaign diverged from jobs=1: replay is reading "
         "cross-operator state";
}

TEST(ParallelDeterminism, StaticBaselinesMatchAcrossJobs) {
  Campaign sequential(sparse_cfg());
  sequential.set_jobs(1);
  Campaign parallel(sparse_cfg());
  parallel.set_jobs(4);

  for (auto op : ran::kAllOperators) {
    const std::string bytes1 =
        dataset::encode(sequential.run_static_baseline(op));
    const std::string bytes4 =
        dataset::encode(parallel.run_static_baseline(op));
    EXPECT_TRUE(bytes1 == bytes4)
        << "static baseline for " << to_string(op)
        << " diverged across jobs: a city is consuming another city's "
           "RNG stream";
  }
}

TEST(ParallelDeterminism, RepeatedParallelRunsAreIdentical) {
  // Same Campaign object: run() is idempotent; a second call (possibly
  // from another thread in real use) returns the memoized result.
  Campaign c(sparse_cfg());
  c.set_jobs(4);
  const auto& first = c.run();
  const auto& second = c.run();
  EXPECT_EQ(&first, &second);

  // And a distinct instance at a different jobs value reproduces it.
  Campaign again(sparse_cfg());
  again.set_jobs(2);
  EXPECT_TRUE(dataset::encode(first) == dataset::encode(again.run()));
}

TEST(ParallelDeterminism, GoldenChecksumWithParallelJobs) {
  // The same pin as test_dataset_cache.cpp (seed 42, stride 64), read
  // from the generated tests/contract_pins.h: the parallel engine must
  // land on the exact bytes the sequential PR-2 engine produced. An
  // intentional simulation change repins tools/contracts.json once and
  // every consumer follows.
  CampaignConfig cfg;
  cfg.seed = contract::kGoldenSeed;
  cfg.cycle_stride = contract::kGoldenStride;
  Campaign c(cfg);
  c.set_jobs(4);
  const std::uint64_t checksum = dataset::fnv1a(dataset::encode(c.run()));
  EXPECT_EQ(checksum, contract::kGoldenCampaignChecksum)
      << "parallel campaign produced 0x" << std::hex << checksum;
}

TEST(ParallelDeterminism, ObservabilityTransparentAcrossJobs) {
  // The obs hard invariant: collecting metrics and trace spans is
  // bit-transparent. With tracing armed (the most invasive obs mode --
  // every phase span heap-allocates and locks the collector), jobs=1 and
  // jobs=4 must still agree byte-for-byte, and the stable-only metrics
  // export must be identical across jobs values too.
  obs::set_trace_enabled(true);
  obs::clear_trace_events();
  obs::Registry& reg = obs::Registry::global();

  reg.reset_values_for_testing();
  Campaign sequential(sparse_cfg());
  sequential.set_jobs(1);
  const std::string bytes1 = dataset::encode(sequential.run());
  const std::string stable1 = obs::to_jsonl(reg.snapshot(),
                                            /*stable_only=*/true);

  reg.reset_values_for_testing();
  Campaign parallel(sparse_cfg());
  parallel.set_jobs(4);
  const std::string bytes4 = dataset::encode(parallel.run());
  const std::string stable4 = obs::to_jsonl(reg.snapshot(),
                                            /*stable_only=*/true);

  const bool spans_collected = !obs::trace_events().empty();
  obs::set_trace_enabled(false);
  obs::clear_trace_events();

  EXPECT_TRUE(spans_collected)
      << "tracing was supposed to be live during both runs";
  EXPECT_TRUE(bytes1 == bytes4)
      << "enabling tracing changed the campaign bytes";
  EXPECT_EQ(stable1, stable4)
      << "Det::Stable metrics must be byte-stable across WHEELS_JOBS";
}

TEST(ParallelDeterminism, GoldenChecksumWithObservabilityEnabled) {
  // Same pin as GoldenChecksumWithParallelJobs, now with tracing live:
  // the seed-42 stride-64 bytes may not move when observability is on.
  obs::set_trace_enabled(true);
  obs::clear_trace_events();

  CampaignConfig cfg;
  cfg.seed = contract::kGoldenSeed;
  cfg.cycle_stride = contract::kGoldenStride;
  Campaign c(cfg);
  c.set_jobs(4);
  const std::uint64_t checksum = dataset::fnv1a(dataset::encode(c.run()));

  obs::set_trace_enabled(false);
  obs::clear_trace_events();
  EXPECT_EQ(checksum, contract::kGoldenCampaignChecksum)
      << "campaign with tracing enabled produced 0x" << std::hex << checksum;
}

}  // namespace
}  // namespace wheels::trip
