#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.h"
#include "ran/deployment.h"

namespace wheels::ran {
namespace {

using radio::Environment;
using radio::Tech;

// A long corridor with an urban core in the middle.
Corridor test_corridor() {
  return Corridor({
      {Meters{0.0}, Meters{100'000.0}, Environment::Rural,
       TimeZone::Pacific},
      {Meters{100'000.0}, Meters{140'000.0}, Environment::Urban,
       TimeZone::Pacific},
      {Meters{140'000.0}, Meters{240'000.0}, Environment::Rural,
       TimeZone::Pacific},
  });
}

TEST(Deployment, DeterministicForSameSeed) {
  const Corridor c = test_corridor();
  const auto& prof = operator_profile(OperatorId::Verizon);
  const auto a = Deployment::generate(c, prof, Rng(5));
  const auto b = Deployment::generate(c, prof, Rng(5));
  ASSERT_EQ(a.total_cells(), b.total_cells());
  for (Tech t : radio::kAllTechs) {
    const auto ca = a.cells(t), cb = b.cells(t);
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
      EXPECT_DOUBLE_EQ(ca[i].route_pos.value, cb[i].route_pos.value);
    }
  }
}

TEST(Deployment, MmwaveOnlyInUrbanCore) {
  const Corridor c = test_corridor();
  const auto dep = Deployment::generate(
      c, operator_profile(OperatorId::Verizon), Rng(6));
  for (const auto& cell : dep.cells(Tech::NR_MMWAVE)) {
    EXPECT_GE(cell.route_pos.value, 100'000.0 - 3'000.0);
    EXPECT_LE(cell.route_pos.value, 140'000.0 + 3'000.0);
  }
}

TEST(Deployment, LteBlanketsTheCorridor) {
  const Corridor c = test_corridor();
  const auto dep = Deployment::generate(
      c, operator_profile(OperatorId::ATT), Rng(7));
  // AT&T LTE availability ~1: expect cells roughly every site_spacing.
  const auto cells = dep.cells(Tech::LTE);
  const double expected =
      c.length().value /
      operator_profile(OperatorId::ATT).deployment(Tech::LTE)
          .site_spacing.value;
  EXPECT_GT(static_cast<double>(cells.size()), expected * 0.6);
}

TEST(Deployment, CellsSortedByPosition) {
  const Corridor c = test_corridor();
  const auto dep = Deployment::generate(
      c, operator_profile(OperatorId::TMobile), Rng(8));
  for (Tech t : radio::kAllTechs) {
    const auto cells = dep.cells(t);
    for (std::size_t i = 1; i < cells.size(); ++i) {
      EXPECT_LE(cells[i - 1].route_pos.value, cells[i].route_pos.value);
    }
  }
}

TEST(Deployment, NearestCellMatchesBruteForce) {
  const Corridor c = test_corridor();
  const auto& prof = operator_profile(OperatorId::TMobile);
  const auto dep = Deployment::generate(c, prof, Rng(9));
  Rng probe(10);
  for (int i = 0; i < 500; ++i) {
    const Meters pos{probe.uniform(0.0, c.length().value)};
    for (Tech t : radio::kAllTechs) {
      const Cell* fast = dep.nearest_cell(t, pos);
      // Brute force.
      const Cell* slow = nullptr;
      double best = 1e18;
      for (const auto& cell : dep.cells(t)) {
        const double d = Deployment::distance_to(cell, pos).value;
        if (d < best) {
          best = d;
          slow = &cell;
        }
      }
      if (slow && best <= Deployment::service_range(t, prof).value) {
        ASSERT_NE(fast, nullptr);
        EXPECT_EQ(fast->id, slow->id);
      } else {
        EXPECT_EQ(fast, nullptr);
      }
    }
  }
}

TEST(Deployment, DistanceIncludesLateralOffset) {
  Cell cell;
  cell.route_pos = Meters{1'000.0};
  cell.lateral = Meters{300.0};
  EXPECT_NEAR(Deployment::distance_to(cell, Meters{1'000.0}).value, 300.0,
              1e-9);
  EXPECT_NEAR(Deployment::distance_to(cell, Meters{1'400.0}).value,
              500.0, 1e-9);  // 3-4-5 triangle
}

TEST(Deployment, BackhaulReflectsEnvironment) {
  const Corridor c = test_corridor();
  const auto dep = Deployment::generate(
      c, operator_profile(OperatorId::Verizon), Rng(11));
  wheels::RunningStats urban, rural;
  for (const auto& cell : dep.cells(Tech::LTE)) {
    const bool is_urban = cell.route_pos.value >= 100'000.0 &&
                          cell.route_pos.value < 140'000.0;
    (is_urban ? urban : rural).add(std::log(cell.backhaul_dl_mbps));
  }
  ASSERT_GT(urban.count(), 5u);
  ASSERT_GT(rural.count(), 5u);
  // Urban sites are fibered: much higher median backhaul.
  EXPECT_GT(urban.mean(), rural.mean() + 1.0);
}

TEST(Deployment, UniqueCellIds) {
  const Corridor c = test_corridor();
  const auto dep = Deployment::generate(
      c, operator_profile(OperatorId::TMobile), Rng(12));
  std::vector<CellId> ids;
  for (Tech t : radio::kAllTechs) {
    for (const auto& cell : dep.cells(t)) ids.push_back(cell.id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(Deployment, CoverageIsFragmented) {
  // With rural availability < 1 there must be stretches with no mid-band
  // service at all (coverage holes), not a uniform sprinkle.
  const Corridor c = test_corridor();
  const auto dep = Deployment::generate(
      c, operator_profile(OperatorId::TMobile), Rng(13));
  int holes = 0, covered = 0;
  for (double pos = 0.0; pos < 100'000.0; pos += 1'000.0) {
    if (dep.nearest_cell(Tech::NR_MID, Meters{pos})) {
      ++covered;
    } else {
      ++holes;
    }
  }
  EXPECT_GT(holes, 5);
  EXPECT_GT(covered, 5);
}

}  // namespace
}  // namespace wheels::ran
