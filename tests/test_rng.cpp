#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string_view>

#include "core/rng.h"

namespace wheels {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsIndependentOfParentAdvancement) {
  Rng parent(7);
  Rng child1 = parent.fork(11);
  (void)parent.next_u64();  // advancing the parent after the fork...
  Rng parent2(7);
  Rng child2 = parent2.fork(11);
  // ...must not change what an identically-derived child produces.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child1.next_u64(), child2.next_u64());
  }
}

TEST(Rng, ForkSaltsAndLabelsDistinguish) {
  Rng parent(7);
  Rng a = parent.fork(1), b = parent.fork(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
  Rng c = parent.fork("cell"), d = parent.fork("trip");
  EXPECT_NE(c.next_u64(), d.next_u64());
  // Duplicate labels are the point here: same label, same stream.
  Rng e = parent.fork("cell");  // wheels-lint: allow(duplicate-fork)
  Rng f = parent.fork("cell");  // wheels-lint: allow(duplicate-fork)
  EXPECT_EQ(e.next_u64(), f.next_u64());
}

// Golden values: the determinism contract says any figure regenerates
// bit-for-bit from the campaign seed, which only holds if fork() streams
// are stable across platforms, compilers, and refactors. These constants
// were produced by the reference implementation; if this test fails, the
// generator changed and every recorded figure is invalidated -- do not
// "fix" the constants without bumping the campaign seed policy in
// DESIGN.md.
TEST(Rng, ForkStreamsMatchGoldenValues) {
  const Rng campaign(0xC0FFEEull);

  const struct {
    std::string_view label;
    std::uint64_t expected[4];
  } cases[] = {
      {"fading",
       {0xf7595deb18896445ull, 0x906234501e656982ull, 0x2a4de8b44093fc68ull,
        0x90c0c07dbb077ff7ull}},
      {"cell-load",
       {0xb7b3c1367da509b4ull, 0x64ce0cde67f2d256ull, 0xd2ed3e49812028eaull,
        0x04c6701e124afe37ull}},
      {"handover",
       {0xb0f12ad4695d9285ull, 0xadd92569dde76e05ull, 0x80985a3a2fe5cfe9ull,
        0x039addd60ef0d306ull}},
      {"app-traffic",
       {0x5982801b2ed6d3b5ull, 0x861a7d5fdb2e9057ull, 0xac7ea76d7219222aull,
        0x618711fc5321a923ull}},
  };
  for (const auto& c : cases) {
    Rng stream = campaign.fork(c.label);
    for (std::uint64_t want : c.expected) {
      EXPECT_EQ(stream.next_u64(), want) << "label=" << c.label;
    }
  }

  Rng salted = campaign.fork(std::uint64_t{12345});
  EXPECT_EQ(salted.next_u64(), 0xd49d8913efa9a206ull);
  EXPECT_EQ(salted.next_u64(), 0x18ad1b24d14beaa6ull);

  // Nested forks (campaign -> trip -> UE) are how per-entity streams are
  // actually derived in the simulator; pin one chain end-to-end.
  Rng nested = campaign.fork("trip").fork(std::uint64_t{7}).fork("ue");
  EXPECT_EQ(nested.next_u64(), 0xa1228cab59d091dfull);
  EXPECT_EQ(nested.next_u64(), 0x1c62b782fa3d1aa4ull);

  // The double-producing paths go through bit-exact integer arithmetic
  // (mantissa shift, Box-Muller on exact libm inputs), so they are pinned
  // too: a change here means figures no longer regenerate.
  EXPECT_DOUBLE_EQ(campaign.fork("uniform").uniform(), 0.9028112945776835);
}

TEST(Rng, UniformInRange) {
  Rng r(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1'000; ++i) {
    const double u = r.uniform(5.0, 7.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng r(5);
  double sum = 0.0, sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformIndexBounds) {
  Rng r(9);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.uniform_index(17), 17u);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  double sum = 0.0, sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 3.0);
    sum += x;
    sq += (x - 10.0) * (x - 10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / n), 3.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, LognormalMedian) {
  Rng r(15);
  std::vector<double> v(20'001);
  for (auto& x : v) x = r.lognormal(std::log(50.0), 0.5);
  std::nth_element(v.begin(), v.begin() + 10'000, v.end());
  EXPECT_NEAR(v[10'000], 50.0, 3.0);
}

TEST(Rng, ChanceFrequency) {
  Rng r(17);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

}  // namespace
}  // namespace wheels
