#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace wheels {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsIndependentOfParentAdvancement) {
  Rng parent(7);
  Rng child1 = parent.fork(11);
  (void)parent.next_u64();  // advancing the parent after the fork...
  Rng parent2(7);
  Rng child2 = parent2.fork(11);
  // ...must not change what an identically-derived child produces.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child1.next_u64(), child2.next_u64());
  }
}

TEST(Rng, ForkSaltsAndLabelsDistinguish) {
  Rng parent(7);
  Rng a = parent.fork(1), b = parent.fork(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
  Rng c = parent.fork("cell"), d = parent.fork("trip");
  EXPECT_NE(c.next_u64(), d.next_u64());
  Rng e = parent.fork("cell");
  Rng f = parent.fork("cell");
  EXPECT_EQ(e.next_u64(), f.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng r(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1'000; ++i) {
    const double u = r.uniform(5.0, 7.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng r(5);
  double sum = 0.0, sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformIndexBounds) {
  Rng r(9);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.uniform_index(17), 17u);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  double sum = 0.0, sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 3.0);
    sum += x;
    sq += (x - 10.0) * (x - 10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / n), 3.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, LognormalMedian) {
  Rng r(15);
  std::vector<double> v(20'001);
  for (auto& x : v) x = r.lognormal(std::log(50.0), 0.5);
  std::nth_element(v.begin(), v.begin() + 10'000, v.end());
  EXPECT_NEAR(v[10'000], 50.0, 3.0);
}

TEST(Rng, ChanceFrequency) {
  Rng r(17);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

}  // namespace
}  // namespace wheels
