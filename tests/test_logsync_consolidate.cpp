#include <gtest/gtest.h>

#include "logsync/consolidate.h"

namespace wheels::logsync {
namespace {

std::string stamp(double ms, const LogClock& clock) {
  return format_timestamp(SimTime{ms}, clock);
}

TEST(Consolidate, MergesStreamsInTimeOrder) {
  ConsolidatedDb db;
  const LogClock utc{ClockKind::Utc, {}};
  const LogClock edt{ClockKind::FixedEdt, {}};
  const double base = 3.0e8;
  // XCAL stamped EDT, app stamped UTC: interleaved in absolute time.
  const auto xcal = db.add_stream(
      RecordSource::Xcal,
      {stamp(base, edt), stamp(base + 1'000, edt), stamp(base + 2'000, edt)},
      edt);
  const auto app = db.add_stream(
      RecordSource::App, {stamp(base + 500, utc), stamp(base + 1'500, utc)},
      utc);
  db.finalize();

  const auto& rec = db.records();
  ASSERT_EQ(rec.size(), 5u);
  for (std::size_t i = 1; i < rec.size(); ++i) {
    EXPECT_LE(rec[i - 1].time.ms_since_epoch, rec[i].time.ms_since_epoch);
  }
  // Alternating sources despite different clock formats.
  EXPECT_EQ(rec[0].stream, xcal);
  EXPECT_EQ(rec[1].stream, app);
  EXPECT_EQ(rec[2].stream, xcal);
  EXPECT_EQ(rec[3].stream, app);
}

TEST(Consolidate, CorruptLinesAreCountedNotFatal) {
  ConsolidatedDb db;
  const LogClock utc{ClockKind::Utc, {}};
  db.add_stream(RecordSource::Rtt,
                {stamp(1e8, utc), "### corrupt ###", stamp(2e8, utc)}, utc);
  db.finalize();
  EXPECT_EQ(db.records().size(), 2u);
  EXPECT_EQ(db.dropped_records(), 1u);
}

TEST(Consolidate, BetweenSlicesHalfOpen) {
  ConsolidatedDb db;
  const LogClock utc{ClockKind::Utc, {}};
  db.add_stream(RecordSource::Xcal,
                {stamp(1'000, utc), stamp(2'000, utc), stamp(3'000, utc)},
                utc);
  db.finalize();
  const auto slice = db.between(SimTime{1'000}, SimTime{3'000});
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_DOUBLE_EQ(slice[0].time.ms_since_epoch, 1'000.0);
  EXPECT_DOUBLE_EQ(slice[1].time.ms_since_epoch, 2'000.0);
}

TEST(Consolidate, JoinNearestAcrossClocks) {
  ConsolidatedDb db;
  const LogClock utc{ClockKind::Utc, {}};
  const LogClock pac{ClockKind::Local, TimeZone::Pacific};
  const double base = 4.0e8;
  // XCAL windows every 500 ms; app samples (phone local time!) at 40 ms
  // offset every 1 s.
  std::vector<std::string> xcal_ts, app_ts;
  for (int i = 0; i < 10; ++i) xcal_ts.push_back(stamp(base + 500.0 * i, utc));
  for (int i = 0; i < 5; ++i) {
    app_ts.push_back(stamp(base + 40.0 + 1'000.0 * i, pac));
  }
  const auto xcal = db.add_stream(RecordSource::Xcal, xcal_ts, utc);
  const auto app = db.add_stream(RecordSource::App, app_ts, pac);
  db.finalize();

  const auto join = db.join_nearest(app, xcal, Millis{100.0});
  ASSERT_EQ(join.size(), 5u);
  for (std::size_t i = 0; i < join.size(); ++i) {
    EXPECT_EQ(join[i], static_cast<long>(2 * i));  // every other window
  }
}

TEST(Consolidate, JoinRespectsTolerance) {
  ConsolidatedDb db;
  const LogClock utc{ClockKind::Utc, {}};
  const auto a = db.add_stream(RecordSource::App, {stamp(1'000, utc)}, utc);
  const auto b = db.add_stream(RecordSource::Xcal, {stamp(5'000, utc)}, utc);
  db.finalize();
  const auto join = db.join_nearest(a, b, Millis{100.0});
  ASSERT_EQ(join.size(), 1u);
  EXPECT_EQ(join[0], -1);
}

TEST(Consolidate, UsageErrorsThrow) {
  ConsolidatedDb db;
  EXPECT_THROW(db.between(SimTime{0}, SimTime{1}), std::logic_error);
  EXPECT_THROW(db.join_nearest(0, 1, Millis{1}), std::logic_error);
  db.finalize();
  const LogClock utc{ClockKind::Utc, {}};
  EXPECT_THROW(db.add_stream(RecordSource::App, {}, utc), std::logic_error);
}

TEST(Consolidate, SourceNames) {
  EXPECT_STREQ(to_string(RecordSource::Xcal), "xcal");
  EXPECT_STREQ(to_string(RecordSource::Passive), "passive");
}

}  // namespace
}  // namespace wheels::logsync
