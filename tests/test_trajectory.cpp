// trip/trajectory: the record half of record/replay. The recorded points
// must be exactly the points the sequential campaign loop would have seen
// (same TripSimulator fork, same schedule, same slot sizes), and the
// segment index must tile the point array in schedule order — replay
// correctness reduces to these two properties.
#include "trip/trajectory.h"

#include <vector>

#include <gtest/gtest.h>

#include "trip/campaign.h"
#include "trip/region.h"
#include "trip/route.h"

namespace wheels::trip {
namespace {

// Keep the unit test fast: one active cycle per 64 is plenty to cover
// every segment kind while most of the drive advances at the idle step.
CampaignConfig test_cfg() {
  CampaignConfig cfg;
  cfg.seed = 42;
  cfg.cycle_stride = 64;
  return cfg;
}

// The campaign's trip stream: Rng(seed).fork("corridor") builds the
// corridor, .fork("trip") drives the vehicle (mirrors the Campaign ctor).
struct TripUnderTest {
  Route route = Route::cross_country();
  Rng rng;
  ran::Corridor corridor;
  TripSimulator trip;

  explicit TripUnderTest(const CampaignConfig& cfg)
      : rng(cfg.seed),
        corridor(build_corridor(route, rng.fork("corridor"))),
        trip(route, corridor, rng.fork("trip"), cfg.drive) {}
};

// Transcription of the sequential campaign loop (pre-record/replay): the
// reference the recorder must reproduce point for point.
std::vector<TrajectoryPoint> sequential_walk(TripUnderTest& t,
                                             const CampaignConfig& cfg) {
  std::vector<TrajectoryPoint> pts;
  const auto advance_for = [&](Millis duration, Millis step) {
    Millis elapsed{0.0};
    while (elapsed.value < duration.value && !t.trip.finished()) {
      const TripPoint pt = t.trip.advance(step);
      elapsed += step;
      const auto& c = t.corridor.at(pt.position);
      pts.push_back({pt.time, pt.position, pt.speed, pt.day, c.tz, c.env});
    }
  };
  const Millis cycle{2.0 * cfg.tput_test_duration.value +
                     cfg.rtt_test_duration.value + 3.0 * cfg.gap.value};
  int cycle_no = 0;
  while (!t.trip.finished()) {
    if (cfg.cycle_stride > 1 && (cycle_no % cfg.cycle_stride) != 0) {
      advance_for(cycle, kIdleStep);
    } else {
      advance_for(cfg.tput_test_duration, cfg.slot);
      advance_for(cfg.gap, kIdleStep);
      advance_for(cfg.tput_test_duration, cfg.slot);
      advance_for(cfg.gap, kIdleStep);
      advance_for(cfg.rtt_test_duration, cfg.slot);
      advance_for(cfg.gap, kIdleStep);
    }
    ++cycle_no;
  }
  return pts;
}

TEST(Trajectory, RecordedPointsMatchSequentialWalk) {
  const CampaignConfig cfg = test_cfg();
  TripUnderTest recorded(cfg);
  const Trajectory traj = record_trajectory(recorded.trip, recorded.corridor,
                                            cfg);

  TripUnderTest reference(cfg);
  const std::vector<TrajectoryPoint> expected =
      sequential_walk(reference, cfg);

  ASSERT_EQ(traj.points.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(traj.points[i], expected[i]) << "point " << i;
  }
  EXPECT_EQ(traj.total_drive_time.value,
            reference.trip.total_drive_time().value);
  EXPECT_EQ(traj.days, reference.trip.current().day);
  EXPECT_GE(traj.days, 7);
  EXPECT_LE(traj.days, 12);
}

TEST(Trajectory, SegmentsTileThePointsInScheduleOrder) {
  const CampaignConfig cfg = test_cfg();
  TripUnderTest t(cfg);
  const Trajectory traj = record_trajectory(t.trip, t.corridor, cfg);

  // Contiguous tiling: every point belongs to exactly one segment.
  ASSERT_FALSE(traj.segments.empty());
  EXPECT_EQ(traj.segments.front().begin, 0u);
  for (std::size_t s = 1; s < traj.segments.size(); ++s) {
    EXPECT_EQ(traj.segments[s].begin, traj.segments[s - 1].end)
        << "segment " << s;
  }
  EXPECT_EQ(traj.segments.back().end, traj.points.size());

  // The first cycle is active: DL, gap, UL, gap, RTT, gap with the
  // configured slot sizes and durations, then stride-1 fast-forwards.
  const auto slots = [&](std::size_t s) {
    return traj.segments[s].end - traj.segments[s].begin;
  };
  ASSERT_GE(traj.segments.size(), std::size_t{7});
  EXPECT_EQ(traj.segments[0].kind, SegmentKind::BulkDl);
  EXPECT_EQ(traj.segments[0].test_id, 0);
  EXPECT_EQ(traj.segments[0].slot.value, cfg.slot.value);
  EXPECT_EQ(slots(0), 1500u);  // 30 s / 20 ms
  EXPECT_EQ(traj.segments[1].kind, SegmentKind::Gap);
  EXPECT_EQ(traj.segments[1].test_id, -1);
  EXPECT_EQ(slots(1), 30u);  // 3 s / 100 ms
  EXPECT_EQ(traj.segments[2].kind, SegmentKind::BulkUl);
  EXPECT_EQ(traj.segments[2].test_id, 1);
  EXPECT_EQ(traj.segments[3].kind, SegmentKind::Gap);
  EXPECT_EQ(traj.segments[4].kind, SegmentKind::Rtt);
  EXPECT_EQ(traj.segments[4].test_id, 2);
  EXPECT_EQ(slots(4), 1000u);  // 20 s / 20 ms
  EXPECT_EQ(traj.segments[5].kind, SegmentKind::Gap);
  EXPECT_EQ(traj.segments[6].kind, SegmentKind::FastForward);
  EXPECT_EQ(traj.segments[6].slot.value, kIdleStep.value);
  EXPECT_EQ(slots(6), 890u);  // (60 + 20 + 9) s / 100 ms

  // Each segment's recorded start is the previous segment's last point
  // (the trip state the sequential code sampled before advancing).
  for (std::size_t s = 1; s < traj.segments.size(); ++s) {
    const auto& prev = traj.segments[s - 1];
    if (prev.end == prev.begin) continue;  // empty: start carried over
    ASSERT_EQ(traj.segments[s].start, traj.points[prev.end - 1])
        << "segment " << s;
  }

  // Time is strictly monotonic across the whole drive.
  for (std::size_t i = 1; i < traj.points.size(); ++i) {
    ASSERT_GT(traj.points[i].time.ms_since_epoch,
              traj.points[i - 1].time.ms_since_epoch)
        << "point " << i;
  }
}

}  // namespace
}  // namespace wheels::trip
