#include <gtest/gtest.h>

#include <tuple>

#include "radio/band.h"
#include "radio/pathloss.h"

namespace wheels::radio {
namespace {

TEST(Band, CatalogSanity) {
  for (Tech t : kAllTechs) {
    const BandProfile& p = band_profile(t);
    EXPECT_EQ(p.tech, t);
    EXPECT_GT(p.carrier.value, 0.0);
    EXPECT_GT(p.cc_bandwidth_dl.value, 0.0);
    EXPECT_GE(p.max_cc_dl, 1);
    EXPECT_GE(p.mimo_layers_dl, 1);
    EXPECT_GT(p.typical_range.value, 0.0);
  }
}

TEST(Band, MmwaveIsHighFrequencyShortRange) {
  const auto& mmw = band_profile(Tech::NR_MMWAVE);
  const auto& low = band_profile(Tech::NR_LOW);
  EXPECT_GT(mmw.carrier.value, 10'000.0);
  EXPECT_LT(low.carrier.value, 1'000.0);
  EXPECT_LT(mmw.typical_range.value, low.typical_range.value);
}

TEST(Band, NoiseFloorScalesWithBandwidth) {
  const Dbm n10 = noise_floor(MHz{10.0});
  const Dbm n100 = noise_floor(MHz{100.0});
  EXPECT_NEAR(n100.value - n10.value, 10.0, 1e-9);
  // 10 MHz, 9 dB NF: -174 + 70 + 9 = -95 dBm.
  EXPECT_NEAR(n10.value, -95.0, 0.1);
}

TEST(Pathloss, FreeSpaceKnownValue) {
  // FSPL at 1 km, 2 GHz: ~98.5 dB.
  const Db pl = free_space_pathloss(Meters{1000.0}, MHz{2000.0});
  EXPECT_NEAR(pl.value, 98.5, 0.5);
}

TEST(Pathloss, FreeSpaceFrequencyScaling) {
  const Db a = free_space_pathloss(Meters{500.0}, MHz{700.0});
  const Db b = free_space_pathloss(Meters{500.0}, MHz{7000.0});
  EXPECT_NEAR(b.value - a.value, 20.0, 1e-9);  // 10x frequency = +20 dB
}

class PathlossProperties
    : public ::testing::TestWithParam<std::tuple<Tech, Environment>> {};

TEST_P(PathlossProperties, MonotoneInDistance) {
  const auto [tech, env] = GetParam();
  double prev = pathloss(tech, env, Meters{10.0}).value;
  for (double d = 20.0; d <= 20'000.0; d *= 1.5) {
    const double pl = pathloss(tech, env, Meters{d}).value;
    EXPECT_GT(pl, prev) << "d=" << d;
    prev = pl;
  }
}

TEST_P(PathlossProperties, ExponentInPhysicalRange) {
  const auto [tech, env] = GetParam();
  const double n = pathloss_exponent(tech, env);
  EXPECT_GE(n, 2.0);
  EXPECT_LE(n, 4.5);
}

TEST_P(PathlossProperties, ShadowingSigmaPositiveBounded) {
  const auto [tech, env] = GetParam();
  const double s = shadowing_sigma_db(tech, env);
  EXPECT_GT(s, 0.0);
  EXPECT_LE(s, 12.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllTechEnv, PathlossProperties,
    ::testing::Combine(::testing::ValuesIn(kAllTechs),
                       ::testing::Values(Environment::Urban,
                                         Environment::Suburban,
                                         Environment::Rural)));

TEST(Pathloss, RuralPropagatesFurtherThanUrban) {
  for (Tech t : kAllTechs) {
    const Db urban = pathloss(t, Environment::Urban, Meters{2000.0});
    const Db rural = pathloss(t, Environment::Rural, Meters{2000.0});
    EXPECT_LE(rural.value, urban.value) << to_string(t);
  }
}

TEST(Pathloss, MmwaveWorstAtEqualDistance) {
  // Carrier frequency dominates: mmWave loses the most at any distance.
  const Meters d{200.0};
  const double mmw = pathloss(Tech::NR_MMWAVE, Environment::Urban, d).value;
  for (Tech t : {Tech::LTE, Tech::LTE_A, Tech::NR_LOW, Tech::NR_MID}) {
    EXPECT_GT(mmw, pathloss(t, Environment::Urban, d).value);
  }
}

TEST(Pathloss, ClampsBelowReferenceDistance) {
  const Db at0 = pathloss(Tech::LTE, Environment::Urban, Meters{0.0});
  const Db at10 = pathloss(Tech::LTE, Environment::Urban, Meters{10.0});
  EXPECT_DOUBLE_EQ(at0.value, at10.value);
}

}  // namespace
}  // namespace wheels::radio
