#include <gtest/gtest.h>

#include "analysis/coverage.h"

namespace wheels::analysis {
namespace {

using radio::Tech;
using trip::KpiSample;
using trip::PassiveSample;
using trip::TestType;

PassiveSample passive(Tech t, double mph, bool connected = true,
                      double pos_m = 0.0) {
  PassiveSample s;
  s.tech = t;
  s.connected = connected;
  s.speed = Mph{mph};
  s.position = Meters{pos_m};
  return s;
}

KpiSample kpi(Tech t, TestType test, double mph, int tz = 0,
              bool connected = true, double pos_m = 0.0) {
  KpiSample s;
  s.tech = t;
  s.test = test;
  s.speed = Mph{mph};
  s.tz = static_cast<TimeZone>(tz);
  s.connected = connected;
  s.position = Meters{pos_m};
  return s;
}

TEST(Coverage, PassiveSharesAreDistanceWeighted) {
  // Equal time on LTE at 60 mph and mmWave at 20 mph: LTE covers 3x the
  // distance, so its share must be 75%.
  std::vector<PassiveSample> v;
  for (int i = 0; i < 100; ++i) {
    v.push_back(passive(Tech::LTE, 60.0));
    v.push_back(passive(Tech::NR_MMWAVE, 20.0));
  }
  const auto ts = coverage_from_passive(v);
  EXPECT_NEAR(ts.tech(Tech::LTE), 0.75, 1e-9);
  EXPECT_NEAR(ts.tech(Tech::NR_MMWAVE), 0.25, 1e-9);
  EXPECT_NEAR(ts.total_5g(), 0.25, 1e-9);
  EXPECT_NEAR(ts.high_speed_5g(), 0.25, 1e-9);
}

TEST(Coverage, DisconnectedCountsAsNoService) {
  std::vector<PassiveSample> v = {passive(Tech::LTE, 50.0),
                                  passive(Tech::LTE, 50.0, false)};
  const auto ts = coverage_from_passive(v);
  EXPECT_NEAR(ts.no_service(), 0.5, 1e-9);
}

TEST(Coverage, KpiDirectionFilter) {
  std::vector<KpiSample> v = {
      kpi(Tech::NR_MID, TestType::DownlinkBulk, 50.0),
      kpi(Tech::LTE, TestType::UplinkBulk, 50.0),
  };
  KpiFilter dl;
  dl.only_downlink = true;
  EXPECT_NEAR(coverage_from_kpi(v, dl).tech(Tech::NR_MID), 1.0, 1e-9);
  KpiFilter ul;
  ul.only_uplink = true;
  EXPECT_NEAR(coverage_from_kpi(v, ul).tech(Tech::LTE), 1.0, 1e-9);
}

TEST(Coverage, KpiTimezoneAndSpeedFilters) {
  std::vector<KpiSample> v = {
      kpi(Tech::NR_LOW, TestType::DownlinkBulk, 10.0, 0),
      kpi(Tech::LTE_A, TestType::DownlinkBulk, 70.0, 2),
  };
  KpiFilter tz;
  tz.tz = 2;
  EXPECT_NEAR(coverage_from_kpi(v, tz).tech(Tech::LTE_A), 1.0, 1e-9);
  KpiFilter slow;
  slow.max_mph = 20.0;
  EXPECT_NEAR(coverage_from_kpi(v, slow).tech(Tech::NR_LOW), 1.0, 1e-9);
  KpiFilter fast;
  fast.min_mph = 60.0;
  EXPECT_NEAR(coverage_from_kpi(v, fast).tech(Tech::LTE_A), 1.0, 1e-9);
}

TEST(Coverage, EmptyInputIsZero) {
  const auto ts = coverage_from_kpi({}, {});
  EXPECT_DOUBLE_EQ(ts.total_miles, 0.0);
  EXPECT_DOUBLE_EQ(ts.total_5g(), 0.0);
}

TEST(RouteMap, DominantTechPerBin) {
  std::vector<PassiveSample> v;
  // Bin 0 (0-10 km): mostly LTE; bin 1 (10-20 km): mostly mmWave.
  for (int i = 0; i < 10; ++i) {
    v.push_back(passive(Tech::LTE, 50.0, true, 5'000.0));
  }
  v.push_back(passive(Tech::NR_MID, 50.0, true, 5'000.0));
  for (int i = 0; i < 5; ++i) {
    v.push_back(passive(Tech::NR_MMWAVE, 50.0, true, 15'000.0));
  }
  const auto bins = route_coverage_map_passive(v, 10.0, 30.0);
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_TRUE(bins[0].any_samples);
  EXPECT_EQ(bins[0].dominant, Tech::LTE);
  EXPECT_EQ(bins[1].dominant, Tech::NR_MMWAVE);
  EXPECT_FALSE(bins[2].any_samples);
}

TEST(RouteMap, DisagreementFraction) {
  // Passive sees LTE everywhere; active sees 5G in one of two bins.
  std::vector<PassiveSample> p = {passive(Tech::LTE, 50.0, true, 5'000.0),
                                  passive(Tech::LTE, 50.0, true, 15'000.0)};
  std::vector<KpiSample> a = {
      kpi(Tech::NR_MID, TestType::DownlinkBulk, 50.0, 0, true, 5'000.0),
      kpi(Tech::LTE, TestType::DownlinkBulk, 50.0, 0, true, 15'000.0)};
  const auto pm = route_coverage_map_passive(p, 10.0, 20.0);
  const auto am = route_coverage_map_active(a, 10.0, 20.0);
  EXPECT_NEAR(coverage_disagreement(pm, am), 0.5, 1e-9);
}

}  // namespace
}  // namespace wheels::analysis
