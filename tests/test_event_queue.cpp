#include <gtest/gtest.h>

#include <vector>

#include "core/event_queue.h"

namespace wheels {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime{30.0}, [&](SimTime) { order.push_back(3); });
  q.schedule(SimTime{10.0}, [&](SimTime) { order.push_back(1); });
  q.schedule(SimTime{20.0}, [&](SimTime) { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now().ms_since_epoch, 30.0);
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime{5.0}, [&, i](SimTime) { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule(SimTime{10.0}, [&](SimTime) { ++fired; });
  q.schedule(SimTime{50.0}, [&](SimTime) { ++fired; });
  q.run_until(SimTime{20.0});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_DOUBLE_EQ(q.now().ms_since_epoch, 20.0);
  q.run_until(SimTime{100.0});
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void(SimTime)> tick = [&](SimTime) {
    if (++count < 5) q.schedule_after(Millis{10.0}, tick);
  };
  q.schedule(SimTime{0.0}, tick);
  q.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.now().ms_since_epoch, 40.0);
}

TEST(EventQueue, PastEventsClampToNow) {
  EventQueue q;
  q.schedule(SimTime{100.0}, [](SimTime) {});
  q.run_all();
  SimTime fired_at{};
  q.schedule(SimTime{1.0}, [&](SimTime t) { fired_at = t; });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at.ms_since_epoch, 100.0);  // not back in time
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  SimTime fired{};
  q.schedule(SimTime{100.0}, [&](SimTime) {
    q.schedule_after(Millis{25.0}, [&](SimTime t) { fired = t; });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired.ms_since_epoch, 125.0);
}

}  // namespace
}  // namespace wheels
