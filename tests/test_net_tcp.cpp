#include <gtest/gtest.h>

#include "net/tcp_cubic.h"

namespace wheels::net {
namespace {

// Run the flow over a constant link for `seconds`; returns mean goodput.
double run_constant(CubicFlow& flow, Mbps rate, Millis rtt, double seconds,
                    double skip_first_s = 0.0) {
  const Millis dt{10.0};
  double bytes = 0.0;
  const int steps = static_cast<int>(seconds * 100.0);
  const int skip = static_cast<int>(skip_first_s * 100.0);
  for (int i = 0; i < steps; ++i) {
    const double b = flow.step(dt, rate, rtt);
    if (i >= skip) bytes += b;
  }
  return bytes * 8.0 / ((seconds - skip_first_s) * 1e6);
}

TEST(Cubic, ReachesCapacityOnCleanLink) {
  CubicFlow flow(Rng(1));
  const double goodput =
      run_constant(flow, Mbps{100.0}, Millis{40.0}, 20.0, 5.0);
  EXPECT_GT(goodput, 80.0);
  EXPECT_LE(goodput, 100.0 + 1e-6);
}

TEST(Cubic, SlowStartDoublesPerRtt) {
  CubicFlow flow(Rng(2));
  const double w0 = flow.cwnd_bytes();
  // One RTT of steps on an uncongested link.
  for (int i = 0; i < 4; ++i) {
    flow.step(Millis{10.0}, Mbps{10'000.0}, Millis{40.0});
  }
  EXPECT_TRUE(flow.in_slow_start());
  EXPECT_GT(flow.cwnd_bytes(), w0 * 1.5);
  EXPECT_LT(flow.cwnd_bytes(), w0 * 4.0);
}

class CubicCapacityTracking : public ::testing::TestWithParam<double> {};

TEST_P(CubicCapacityTracking, Achieves80PercentOfLink) {
  const double cap = GetParam();
  CubicFlow flow(Rng(3));
  const double goodput =
      run_constant(flow, Mbps{cap}, Millis{50.0}, 30.0, 8.0);
  EXPECT_GT(goodput, cap * 0.8) << "cap=" << cap;
  EXPECT_LE(goodput, cap * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CubicCapacityTracking,
                         ::testing::Values(2.0, 10.0, 50.0, 200.0, 1'000.0));

TEST(Cubic, HighBdpPathFillsWithinSeconds) {
  // 2 Gbps x 20 ms: the mmWave static case that motivated the buffer model.
  CubicFlow flow(Rng(4));
  const double goodput =
      run_constant(flow, Mbps{2'000.0}, Millis{20.0}, 10.0, 3.0);
  EXPECT_GT(goodput, 1'500.0);
}

TEST(Cubic, ShortStallDoesNotCollapseWindow) {
  CubicFlow flow(Rng(5));
  run_constant(flow, Mbps{100.0}, Millis{40.0}, 10.0);
  const double w_before = flow.cwnd_bytes();
  // 100 ms handover interruption: under the 1 s RTO.
  for (int i = 0; i < 10; ++i) {
    flow.step(Millis{10.0}, Mbps{0.0}, Millis{40.0});
  }
  EXPECT_EQ(flow.timeouts(), 0);
  EXPECT_NEAR(flow.cwnd_bytes(), w_before, 1.0);
}

TEST(Cubic, LongOutageFiresRtoAndRestartsSlow) {
  CubicFlow flow(Rng(6));
  run_constant(flow, Mbps{100.0}, Millis{40.0}, 10.0);
  for (int i = 0; i < 300; ++i) {  // 3 s outage
    flow.step(Millis{10.0}, Mbps{0.0}, Millis{40.0});
  }
  EXPECT_GE(flow.timeouts(), 1);
  EXPECT_LE(flow.cwnd_bytes(), 2.0 * 1448.0);
  // Recovery: goodput returns eventually.
  const double post = run_constant(flow, Mbps{100.0}, Millis{40.0}, 20.0,
                                   10.0);
  EXPECT_GT(post, 40.0);
}

TEST(Cubic, LossEventsOccurOnSaturatedLink) {
  CubicFlow flow(Rng(7));
  run_constant(flow, Mbps{50.0}, Millis{40.0}, 30.0);
  EXPECT_GE(flow.loss_events(), 1);
}

TEST(Cubic, QueueingDelayBounded) {
  CubicFlow flow(Rng(8));
  const Millis dt{10.0};
  for (int i = 0; i < 3'000; ++i) {
    flow.step(dt, Mbps{20.0}, Millis{50.0});
    // Bufferbloat bounded by the configured buffer depth (+ slack).
    EXPECT_LT(flow.queueing_delay().value, 1'000.0);
  }
}

TEST(Cubic, RestartResetsState) {
  CubicFlow flow(Rng(9));
  run_constant(flow, Mbps{100.0}, Millis{40.0}, 10.0);
  flow.restart();
  EXPECT_TRUE(flow.in_slow_start());
  EXPECT_NEAR(flow.cwnd_bytes(), 10.0 * 1448.0, 1.0);
  EXPECT_DOUBLE_EQ(flow.queueing_delay().value, 0.0);
}

TEST(Cubic, DeliversNothingWhenLinkDead) {
  CubicFlow flow(Rng(10));
  double bytes = 0.0;
  for (int i = 0; i < 100; ++i) {
    bytes += flow.step(Millis{10.0}, Mbps{0.0}, Millis{40.0});
  }
  EXPECT_DOUBLE_EQ(bytes, 0.0);
}

TEST(Cubic, FasterOnShorterRtt) {
  // Over a short window, the short-RTT flow ramps faster (slow start is
  // per-RTT).
  CubicFlow near(Rng(11)), far(Rng(12));
  const double g_near = run_constant(near, Mbps{500.0}, Millis{15.0}, 3.0);
  const double g_far = run_constant(far, Mbps{500.0}, Millis{120.0}, 3.0);
  EXPECT_GT(g_near, g_far);
}

}  // namespace
}  // namespace wheels::net
