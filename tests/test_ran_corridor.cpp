#include <gtest/gtest.h>

#include "ran/corridor.h"

namespace wheels::ran {
namespace {

using radio::Environment;

std::vector<CorridorSegment> three_segments() {
  return {
      {Meters{0.0}, Meters{1'000.0}, Environment::Urban, TimeZone::Pacific},
      {Meters{1'000.0}, Meters{5'000.0}, Environment::Suburban,
       TimeZone::Pacific},
      {Meters{5'000.0}, Meters{9'000.0}, Environment::Rural,
       TimeZone::Mountain},
  };
}

TEST(Corridor, LengthAndLookup) {
  Corridor c(three_segments());
  EXPECT_DOUBLE_EQ(c.length().value, 9'000.0);
  EXPECT_EQ(c.at(Meters{500.0}).env, Environment::Urban);
  EXPECT_EQ(c.at(Meters{1'500.0}).env, Environment::Suburban);
  EXPECT_EQ(c.at(Meters{7'000.0}).env, Environment::Rural);
  EXPECT_EQ(c.at(Meters{7'000.0}).tz, TimeZone::Mountain);
}

TEST(Corridor, BoundaryBelongsToNextSegment) {
  Corridor c(three_segments());
  EXPECT_EQ(c.at(Meters{1'000.0}).env, Environment::Suburban);
}

TEST(Corridor, ClampsOutOfRange) {
  Corridor c(three_segments());
  EXPECT_EQ(c.at(Meters{-10.0}).env, Environment::Urban);
  EXPECT_EQ(c.at(Meters{99'999.0}).env, Environment::Rural);
}

TEST(Corridor, RejectsEmpty) {
  EXPECT_THROW(Corridor({}), std::invalid_argument);
}

TEST(Corridor, RejectsNonZeroStart) {
  std::vector<CorridorSegment> s{{Meters{10.0}, Meters{20.0},
                                  Environment::Urban, TimeZone::Pacific}};
  EXPECT_THROW(Corridor(std::move(s)), std::invalid_argument);
}

TEST(Corridor, RejectsGaps) {
  std::vector<CorridorSegment> s{
      {Meters{0.0}, Meters{10.0}, Environment::Urban, TimeZone::Pacific},
      {Meters{20.0}, Meters{30.0}, Environment::Rural, TimeZone::Pacific}};
  EXPECT_THROW(Corridor(std::move(s)), std::invalid_argument);
}

TEST(Corridor, RejectsInvertedSegment) {
  std::vector<CorridorSegment> s{{Meters{0.0}, Meters{0.0},
                                  Environment::Urban, TimeZone::Pacific}};
  EXPECT_THROW(Corridor(std::move(s)), std::invalid_argument);
}

}  // namespace
}  // namespace wheels::ran
