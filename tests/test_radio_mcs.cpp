#include <gtest/gtest.h>

#include "radio/mcs.h"

namespace wheels::radio {
namespace {

TEST(Cqi, OutOfRangeIsZero) {
  EXPECT_EQ(cqi_from_sinr(Db{-20.0}), 0);
  EXPECT_DOUBLE_EQ(cqi_spectral_efficiency(0), 0.0);
}

TEST(Cqi, SaturatesAtMax) {
  EXPECT_EQ(cqi_from_sinr(Db{40.0}), kMaxCqi);
  EXPECT_EQ(cqi_from_sinr(Db{100.0}), kMaxCqi);
}

TEST(Cqi, MonotoneInSinr) {
  int prev = 0;
  for (double s = -10.0; s <= 30.0; s += 0.5) {
    const int c = cqi_from_sinr(Db{s});
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(Cqi, EfficiencyTableMatches3gpp) {
  EXPECT_NEAR(cqi_spectral_efficiency(1), 0.1523, 1e-4);
  EXPECT_NEAR(cqi_spectral_efficiency(7), 1.4766, 1e-4);
  EXPECT_NEAR(cqi_spectral_efficiency(15), 5.5547, 1e-4);
}

TEST(Cqi, EfficiencyMonotone) {
  for (int c = 1; c <= kMaxCqi; ++c) {
    EXPECT_GT(cqi_spectral_efficiency(c), cqi_spectral_efficiency(c - 1));
  }
}

TEST(Mcs, MappingEndpoints) {
  EXPECT_EQ(mcs_from_cqi(0), 0);
  EXPECT_EQ(mcs_from_cqi(1), 0);
  EXPECT_EQ(mcs_from_cqi(15), kMaxMcs);
}

TEST(Mcs, MappingMonotone) {
  int prev = -1;
  for (int c = 1; c <= kMaxCqi; ++c) {
    const int m = mcs_from_cqi(c);
    EXPECT_GE(m, prev);
    EXPECT_GE(m, 0);
    EXPECT_LE(m, kMaxMcs);
    prev = m;
  }
}

TEST(Mcs, EfficiencyMonotoneAndBracketedByCqiTable) {
  double prev = -1.0;
  for (int m = 0; m <= kMaxMcs; ++m) {
    const double e = mcs_spectral_efficiency(m);
    EXPECT_GE(e, prev);
    EXPECT_GE(e, cqi_spectral_efficiency(1) - 1e-9);
    EXPECT_LE(e, cqi_spectral_efficiency(kMaxCqi) + 1e-9);
    prev = e;
  }
}

TEST(Mcs, ThresholdMonotone) {
  for (int m = 1; m <= kMaxMcs; ++m) {
    EXPECT_GT(mcs_sinr_threshold(m).value, mcs_sinr_threshold(m - 1).value);
  }
}

class BlerWaterfall : public ::testing::TestWithParam<int> {};

TEST_P(BlerWaterfall, FiftyPercentAtThreshold) {
  const int mcs = GetParam();
  const Db thr = mcs_sinr_threshold(mcs);
  EXPECT_NEAR(bler(mcs, thr), 0.5, 1e-9);
}

TEST_P(BlerWaterfall, TenPercentOneDbAbove) {
  const int mcs = GetParam();
  const Db thr = mcs_sinr_threshold(mcs);
  EXPECT_NEAR(bler(mcs, Db{thr.value + 1.0}), 0.1, 0.02);
}

TEST_P(BlerWaterfall, MonotoneDecreasingInSinr) {
  const int mcs = GetParam();
  double prev = 1.1;
  for (double s = -20.0; s <= 40.0; s += 1.0) {
    const double b = bler(mcs, Db{s});
    EXPECT_LE(b, prev);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
    prev = b;
  }
}

TEST_P(BlerWaterfall, ExtremesSaturate) {
  const int mcs = GetParam();
  EXPECT_GT(bler(mcs, Db{-40.0}), 0.999);
  EXPECT_LT(bler(mcs, Db{60.0}), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(McsSweep, BlerWaterfall,
                         ::testing::Values(0, 4, 10, 16, 22, 28));

TEST(Bler, HigherMcsNeedsMoreSinr) {
  // At a fixed SINR, BLER grows with the MCS index.
  const Db s{10.0};
  double prev = -1.0;
  for (int m = 0; m <= kMaxMcs; m += 4) {
    const double b = bler(m, s);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

}  // namespace
}  // namespace wheels::radio
