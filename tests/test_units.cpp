#include <gtest/gtest.h>

#include <sstream>

#include "core/units.h"

namespace wheels {
namespace {

TEST(Units, MbpsConversions) {
  const Mbps r{8.0};
  EXPECT_DOUBLE_EQ(r.bits_per_second(), 8e6);
  EXPECT_DOUBLE_EQ(r.bytes_per_ms(), 1000.0);
}

TEST(Units, MbpsArithmetic) {
  EXPECT_EQ(Mbps{3.0} + Mbps{4.0}, Mbps{7.0});
  EXPECT_EQ(Mbps{10.0} - Mbps{4.0}, Mbps{6.0});
  EXPECT_EQ(Mbps{10.0} * 2.0, Mbps{20.0});
  EXPECT_EQ(2.0 * Mbps{10.0}, Mbps{20.0});
  EXPECT_DOUBLE_EQ(Mbps{10.0} / Mbps{5.0}, 2.0);
}

TEST(Units, DbmMilliwattsRoundTrip) {
  EXPECT_NEAR(Dbm{0.0}.milliwatts(), 1.0, 1e-12);
  EXPECT_NEAR(Dbm{30.0}.milliwatts(), 1000.0, 1e-9);
  EXPECT_NEAR(Dbm::from_milliwatts(100.0).value, 20.0, 1e-12);
}

TEST(Units, PowerGainArithmetic) {
  // dBm + dB = dBm; dBm - dBm = dB.
  const Dbm tx{30.0};
  const Db gain{15.0};
  const Db loss{100.0};
  const Dbm rx = tx + gain - loss;
  EXPECT_DOUBLE_EQ(rx.value, -55.0);
  const Db diff = tx - rx;
  EXPECT_DOUBLE_EQ(diff.value, 85.0);
}

TEST(Units, DbLinear) {
  EXPECT_NEAR(Db{3.0103}.linear(), 2.0, 1e-3);
  EXPECT_NEAR(Db::from_linear(10.0).value, 10.0, 1e-12);
}

TEST(Units, MillisConversions) {
  EXPECT_DOUBLE_EQ(Millis::from_seconds(1.5).value, 1500.0);
  EXPECT_DOUBLE_EQ(Millis::from_minutes(2.0).value, 120'000.0);
  EXPECT_DOUBLE_EQ(Millis::from_hours(1.0).value, 3'600'000.0);
  EXPECT_DOUBLE_EQ(Millis{2500.0}.seconds(), 2.5);
  EXPECT_DOUBLE_EQ(Millis{90'000.0}.minutes(), 1.5);
}

TEST(Units, MetersConversions) {
  EXPECT_DOUBLE_EQ(Meters::from_kilometers(2.0).value, 2000.0);
  EXPECT_NEAR(Meters::from_miles(1.0).value, 1609.344, 1e-9);
  EXPECT_NEAR(Meters{1609.344}.miles(), 1.0, 1e-12);
}

TEST(Units, SpeedTimesTimeIsDistance) {
  // 60 mph for one minute is one mile.
  const Meters d = Mph{60.0} * Millis::from_minutes(1.0);
  EXPECT_NEAR(d.miles(), 1.0, 1e-9);
  EXPECT_NEAR((Millis::from_minutes(1.0) * Mph{60.0}).miles(), 1.0, 1e-9);
}

TEST(Units, MphMetersPerSecond) {
  EXPECT_NEAR(Mph{60.0}.meters_per_second(), 26.8224, 1e-4);
  EXPECT_NEAR(Mph::from_meters_per_second(26.8224).value, 60.0, 1e-4);
}

TEST(Units, BytesTransferred) {
  // 8 Mbps for 1 second = 1 MB.
  EXPECT_NEAR(bytes_transferred(Mbps{8.0}, Millis::from_seconds(1.0)),
              1e6, 1e-6);
}

TEST(Units, MHzConversions) {
  EXPECT_DOUBLE_EQ(MHz{100.0}.hz(), 1e8);
  EXPECT_DOUBLE_EQ(MHz::from_ghz(3.5).value, 3500.0);
  EXPECT_DOUBLE_EQ(MHz{28'000.0}.ghz(), 28.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Mbps{1.0}, Mbps{2.0});
  EXPECT_GT(Dbm{-70.0}, Dbm{-90.0});
  EXPECT_LE(Millis{5.0}, Millis{5.0});
}

TEST(Units, StreamOutput) {
  std::ostringstream os;
  os << Mbps{12.5} << ", " << Dbm{-80.0} << ", " << Millis{3.0};
  EXPECT_EQ(os.str(), "12.5 Mbps, -80 dBm, 3 ms");
}

}  // namespace
}  // namespace wheels
