// Dataset serialization: byte-exact round-trips for every record type,
// container/header validation, and fingerprint stability. Everything here
// runs on synthetic records (no simulation), so it stays in the fast tier.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dataset/cache.h"
#include "dataset/fingerprint.h"
#include "dataset/serialize.h"

namespace wheels::dataset {
namespace {

using apps::AppCampaignConfig;
using apps::AppCampaignResult;
using apps::AppKind;
using apps::AppRunRecord;
using ran::OperatorId;
using trip::CampaignConfig;
using trip::CampaignResult;
using trip::StaticBaseline;

// Synthetic records with every field away from its default, so a skipped
// or reordered field breaks equality.
trip::KpiSample make_kpi(int salt) {
  trip::KpiSample s;
  s.time = SimTime{1'000.5 + salt};
  s.test_id = 7 + salt;
  s.test = trip::TestType::UplinkBulk;
  s.op = OperatorId::TMobile;
  s.position = Meters{12'345.0 + salt};
  s.speed = Mph{71.5};
  s.tz = TimeZone::Mountain;
  s.env = radio::Environment::Suburban;
  s.connected = true;
  s.tech = radio::Tech::NR_MMWAVE;
  s.rsrp_dbm = -87.25;
  s.mcs = 21.5;
  s.bler = 0.125;
  s.num_cc = 3.5;
  s.tput_mbps = 512.75;
  s.handovers = 2;
  s.server = net::ServerKind::Edge;
  return s;
}

trip::RttSample make_rtt(int salt) {
  trip::RttSample s;
  s.time = SimTime{2'000.25 + salt};
  s.test_id = 9;
  s.op = OperatorId::ATT;
  s.position = Meters{50'000.0 + salt};
  s.speed = Mph{64.0};
  s.tz = TimeZone::Central;
  s.success = true;
  s.rtt_ms = 43.875;
  s.connected = true;
  s.tech = radio::Tech::NR_MID;
  s.server = net::ServerKind::Cloud;
  return s;
}

trip::PassiveSample make_passive(int salt) {
  trip::PassiveSample s;
  s.time = SimTime{3'000.0 + salt};
  s.op = OperatorId::Verizon;
  s.position = Meters{99'000.0};
  s.speed = Mph{55.0};
  s.tz = TimeZone::Eastern;
  s.connected = true;
  s.tech = radio::Tech::LTE_A;
  s.cell = 4'242u + static_cast<ran::CellId>(salt);
  return s;
}

trip::TestSummary make_summary(int salt) {
  trip::TestSummary s;
  s.test_id = 11 + salt;
  s.test = trip::TestType::Ping;
  s.op = OperatorId::TMobile;
  s.start = SimTime{4'000.75};
  s.duration = Millis{20'000.0};
  s.start_position = Meters{1'234.0};
  s.distance = Meters{567.0};
  s.tz = TimeZone::Pacific;
  s.server = net::ServerKind::Edge;
  s.mean = 12.5;
  s.stddev = 3.25;
  s.samples = 99;
  s.handovers = 4;
  s.frac_high_speed_5g = 0.625;
  s.bytes_transferred = 1e9;
  return s;
}

ran::HandoverRecord make_handover(int salt) {
  ran::HandoverRecord h;
  h.time = SimTime{5'000.5};
  h.duration = Millis{180.0 + salt};
  h.from_tech = radio::Tech::LTE;
  h.to_tech = radio::Tech::NR_LOW;
  h.from_cell = 10u + static_cast<ran::CellId>(salt);
  h.to_cell = 20u;
  h.position = Meters{77'000.0};
  return h;
}

AppRunRecord make_app_run(int salt) {
  AppRunRecord r;
  r.app = AppKind::Video;
  r.compression = true;
  r.op = OperatorId::ATT;
  r.start = SimTime{6'000.0 + salt};
  r.position = Meters{88'000.0};
  r.tz = TimeZone::Mountain;
  r.server = net::ServerKind::Edge;
  r.handovers = 3;
  r.frac_high_speed_5g = 0.375;
  r.mean_e2e_ms = 120.5;
  r.median_e2e_ms = 110.25;
  r.offloaded_fps = 24.5;
  r.map = 0.8125;
  r.e2e_ms = {100.5, 110.25, 131.0};
  r.qoe = 3.75;
  r.avg_bitrate_mbps = 18.5;
  r.rebuffer_fraction = 0.03125;
  r.gaming_bitrate_mbps = 22.25;
  r.gaming_latency_ms = 38.5;
  r.frame_drop_rate = 0.0625;
  return r;
}

CampaignResult make_campaign_result() {
  CampaignResult res;
  res.route_length = Meters{4'500'000.0};
  res.days = 9;
  res.drive_time = Millis{3.6e7};
  for (int i = 0; i < 3; ++i) {
    auto& log = res.logs[static_cast<std::size_t>(i)];
    log.op = static_cast<OperatorId>(i);
    log.kpi = {make_kpi(i), make_kpi(i + 10)};
    log.rtt = {make_rtt(i)};
    log.tests = {make_summary(i), make_summary(i + 5)};
    log.test_handovers = {make_handover(i)};
    log.passive = {make_passive(i), make_passive(i + 3)};
    log.passive_handovers = {make_handover(i + 7), make_handover(i + 8)};
    log.unique_cells = 123u + static_cast<std::size_t>(i);
    log.experiment_runtime = Millis{1e6 + i};
  }
  return res;
}

StaticBaseline make_static_baseline() {
  StaticBaseline sb;
  sb.op = OperatorId::TMobile;
  sb.dl_tput_mbps = {1511.0, 1400.5, 900.25};
  sb.ul_tput_mbps = {167.5, 120.0};
  sb.rtt_ms = {8.5, 12.25, 150.0};
  sb.cities_tested = 10;
  return sb;
}

AppCampaignResult make_app_result() {
  AppCampaignResult res;
  for (int i = 0; i < 3; ++i) {
    res.runs[static_cast<std::size_t>(i)] = {make_app_run(i),
                                             make_app_run(i + 4)};
  }
  return res;
}

TEST(DatasetRoundtrip, CampaignResult) {
  const CampaignResult in = make_campaign_result();
  const std::string payload = encode(in);
  CampaignResult out;
  ASSERT_TRUE(decode(payload, out));
  EXPECT_TRUE(in == out);
  // Re-encoding the decoded value must be byte-identical: the encoding is
  // canonical, so dataset files are stable across load/store cycles.
  EXPECT_EQ(payload, encode(out));
}

TEST(DatasetRoundtrip, StaticBaseline) {
  const StaticBaseline in = make_static_baseline();
  const std::string payload = encode(in);
  StaticBaseline out;
  ASSERT_TRUE(decode(payload, out));
  EXPECT_TRUE(in == out);
  EXPECT_EQ(payload, encode(out));
}

TEST(DatasetRoundtrip, AppCampaignResult) {
  const AppCampaignResult in = make_app_result();
  const std::string payload = encode(in);
  AppCampaignResult out;
  ASSERT_TRUE(decode(payload, out));
  EXPECT_TRUE(in == out);
  EXPECT_EQ(payload, encode(out));
}

TEST(DatasetRoundtrip, AppRunVector) {
  const std::vector<AppRunRecord> in = {make_app_run(1), make_app_run(2),
                                        make_app_run(3)};
  const std::string payload = encode(in);
  std::vector<AppRunRecord> out;
  ASSERT_TRUE(decode(payload, out));
  EXPECT_TRUE(in == out);
  EXPECT_EQ(payload, encode(out));
}

TEST(DatasetRoundtrip, EveryTruncationIsRejected) {
  const std::string payload = encode(make_static_baseline());
  StaticBaseline out;
  for (std::size_t k = 0; k < payload.size(); ++k) {
    EXPECT_FALSE(decode(payload.substr(0, k), out)) << "prefix " << k;
  }
  EXPECT_FALSE(decode(payload + '\0', out)) << "trailing garbage";
}

TEST(DatasetRoundtrip, TruncatedCampaignIsRejected) {
  const std::string payload = encode(make_campaign_result());
  CampaignResult out;
  EXPECT_FALSE(decode(payload.substr(0, payload.size() - 1), out));
  EXPECT_FALSE(decode(payload.substr(0, payload.size() / 2), out));
  EXPECT_FALSE(decode(std::string_view{}, out));
  EXPECT_FALSE(decode(payload + 'x', out));
}

TEST(DatasetContainer, WrapUnwrapRoundtrip) {
  const std::string payload = encode(make_static_baseline());
  const std::uint64_t fp = 0xdeadbeefcafef00dULL;
  const std::string file =
      wrap_dataset(DatasetKind::StaticBaseline, fp, payload);

  const auto header = parse_header(file);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->version, kSchemaVersion);
  EXPECT_EQ(header->kind, DatasetKind::StaticBaseline);
  EXPECT_EQ(header->fingerprint, fp);
  EXPECT_EQ(header->payload_bytes, payload.size());
  EXPECT_EQ(header->checksum, fnv1a(payload));

  const auto view = unwrap_dataset(file, DatasetKind::StaticBaseline, fp);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(*view, payload);
  // Fingerprint 0 skips the match (used by `wheels_campaign info`).
  EXPECT_TRUE(unwrap_dataset(file, DatasetKind::StaticBaseline, 0)
                  .has_value());
}

TEST(DatasetContainer, RejectsMismatches) {
  const std::string payload = encode(make_static_baseline());
  const std::uint64_t fp = 42;
  std::string file = wrap_dataset(DatasetKind::StaticBaseline, fp, payload);

  // Wrong kind or fingerprint.
  EXPECT_FALSE(
      unwrap_dataset(file, DatasetKind::Campaign, fp).has_value());
  EXPECT_FALSE(
      unwrap_dataset(file, DatasetKind::StaticBaseline, fp + 1).has_value());

  // Schema version bump: the header still parses (so `info` can describe
  // foreign files), but unwrap refuses to serve the payload.
  std::string bumped = file;
  bumped[4] = static_cast<char>(kSchemaVersion + 1);
  EXPECT_FALSE(
      unwrap_dataset(bumped, DatasetKind::StaticBaseline, fp).has_value());
  ASSERT_TRUE(parse_header(bumped).has_value());
  EXPECT_EQ(parse_header(bumped)->version, kSchemaVersion + 1);

  // Bad magic.
  std::string magic = file;
  magic[0] = 'X';
  EXPECT_FALSE(
      unwrap_dataset(magic, DatasetKind::StaticBaseline, fp).has_value());

  // Truncated container (header alone, half the payload, empty).
  EXPECT_FALSE(unwrap_dataset(file.substr(0, 33), DatasetKind::StaticBaseline,
                              fp)
                   .has_value());
  EXPECT_FALSE(unwrap_dataset(file.substr(0, file.size() / 2),
                              DatasetKind::StaticBaseline, fp)
                   .has_value());
  EXPECT_FALSE(
      unwrap_dataset("", DatasetKind::StaticBaseline, fp).has_value());

  // A flipped payload byte breaks the checksum.
  std::string corrupt = file;
  corrupt[file.size() - 1] =
      static_cast<char>(corrupt[file.size() - 1] ^ 0x5a);
  EXPECT_FALSE(
      unwrap_dataset(corrupt, DatasetKind::StaticBaseline, fp).has_value());
}

TEST(DatasetFingerprint, StableAndSensitive) {
  CampaignConfig a;
  CampaignConfig b;
  EXPECT_EQ(fingerprint(a), fingerprint(b));

  b.seed = 43;
  EXPECT_NE(fingerprint(a), fingerprint(b));
  b = a;
  b.cycle_stride = 99;
  EXPECT_NE(fingerprint(a), fingerprint(b));
  b = a;
  b.gap = Millis{1.0};
  EXPECT_NE(fingerprint(a), fingerprint(b));
  b = a;
  b.drive.start_hour_local = 5;
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(DatasetFingerprint, StaticVariantIgnoresStride) {
  CampaignConfig a;
  CampaignConfig b;
  a.cycle_stride = 1;
  b.cycle_stride = 64;
  EXPECT_EQ(fingerprint_static(a), fingerprint_static(b));
  EXPECT_NE(fingerprint(a), fingerprint(b));

  AppCampaignConfig aa;
  AppCampaignConfig ab;
  aa.cycle_stride = 1;
  ab.cycle_stride = 64;
  EXPECT_EQ(fingerprint_static(aa), fingerprint_static(ab));
  EXPECT_NE(fingerprint(aa), fingerprint(ab));
}

TEST(DatasetFingerprint, DomainsAreSeparated) {
  // A measurement config and an app config must never share a cache key,
  // even with identical field values.
  CampaignConfig c;
  AppCampaignConfig a;
  c.seed = a.seed = 7;
  c.cycle_stride = a.cycle_stride = 3;
  EXPECT_NE(fingerprint(c), fingerprint(a));
}

TEST(DatasetCacheNaming, FileNamesAreStable) {
  EXPECT_EQ(DatasetCache::file_name(DatasetKind::Campaign, 0xabcULL,
                                    OperatorId::Verizon),
            "campaign-0000000000000abc.wds");
  EXPECT_EQ(DatasetCache::file_name(DatasetKind::StaticBaseline, 1,
                                    OperatorId::TMobile),
            "static-0000000000000001-tmobile.wds");
  EXPECT_EQ(DatasetCache::file_name(DatasetKind::AppStaticBaseline, 2,
                                    OperatorId::ATT),
            "apps-static-0000000000000002-att.wds");
}

}  // namespace
}  // namespace wheels::dataset
