#!/usr/bin/env python3
"""Tests for tools/wheels_contract.py (and validate_trace.py --contracts).

Each fixture directory under tests/fixtures/contract/ is a miniature
repo (tools/contracts.json + the artifacts the analyzer cross-checks)
run with --root. The good tree must pass every rule; each drift tree
breaks exactly one artifact and must be caught with a file:line finding.
The fix modes (--fix-pins / --fix-docs) are exercised on temp copies so
the checked-in fixtures stay byte-stable.

Run directly (python3 tests/test_contract_rules.py) or via ctest.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TESTS_DIR)
CONTRACT = os.path.join(REPO_ROOT, "tools", "wheels_contract.py")
VALIDATE_TRACE = os.path.join(REPO_ROOT, "tools", "validate_trace.py")
FIXTURES = os.path.join(TESTS_DIR, "fixtures", "contract")


def run_contract(fixture, *extra):
    root = os.path.join(FIXTURES, fixture)
    return run_contract_at(root, *extra)


def run_contract_at(root, *extra):
    proc = subprocess.run(
        [sys.executable, CONTRACT, "--root", root, *extra],
        capture_output=True,
        text=True,
        check=False)
    return proc.returncode, proc.stdout, proc.stderr


class GoodFixture(unittest.TestCase):
    def test_clean_tree_passes(self):
        code, out, err = run_contract("good")
        self.assertEqual(code, 0, out + err)
        self.assertIn("OK", out)

    def test_list_rules_names_every_rule(self):
        proc = subprocess.run(
            [sys.executable, CONTRACT, "--list-rules"],
            capture_output=True, text=True, check=False)
        self.assertEqual(proc.returncode, 0)
        for rule in ("registry", "schema-pin", "golden-pin", "pins-stale",
                     "env-undeclared", "env-unused", "doc-drift",
                     "cli-flag", "span-prefix", "ci-stage",
                     "ctest-registration", "scenario-registry"):
            self.assertIn(rule, proc.stdout)


class StaleDocPin(unittest.TestCase):
    def test_stale_readme_checksum_fires_with_location(self):
        code, out, _ = run_contract("stale_doc")
        self.assertEqual(code, 1, out)
        # Both views of the same drift: the generated table no longer
        # matches its render, and the stale literal itself is flagged.
        self.assertIn("README.md:8: [doc-drift]", out)
        self.assertIn("README.md:13: [golden-pin]", out)
        self.assertIn("0x1111111111111111", out)

    def test_fix_docs_repairs_the_drift(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = os.path.join(tmp, "stale_doc")
            shutil.copytree(os.path.join(FIXTURES, "stale_doc"), root)
            code, out, err = run_contract_at(root, "--fix-docs")
            self.assertEqual(code, 0, out + err)
            code, out, _ = run_contract_at(root)
            self.assertEqual(code, 0, out)


class DriftedGolden(unittest.TestCase):
    def test_code_literal_differing_from_registry_fires(self):
        code, out, _ = run_contract("drifted_golden")
        self.assertEqual(code, 1, out)
        self.assertIn("tests/test_pin.cpp:3: [golden-pin]", out)
        self.assertIn("0x00000000cafef00d", out)
        self.assertIn("0x00000000deadbeef", out)


class UnregisteredEnv(unittest.TestCase):
    def test_undeclared_getenv_fires_at_the_call_site(self):
        code, out, _ = run_contract("unregistered_env")
        self.assertEqual(code, 1, out)
        self.assertIn("src/sim.cpp:12: [env-undeclared]", out)
        self.assertIn("WHEELS_BAR", out)

    def test_declared_vars_do_not_fire(self):
        _, out, _ = run_contract("unregistered_env")
        self.assertNotIn("WHEELS_FOO", out)


class OrphanTest(unittest.TestCase):
    def test_unregistered_test_file_fires(self):
        code, out, _ = run_contract("orphan_test")
        self.assertEqual(code, 1, out)
        self.assertIn("tests/test_orphan.cpp:1: [ctest-registration]", out)

    def test_registered_test_stays_quiet(self):
        _, out, _ = run_contract("orphan_test")
        self.assertNotIn("test_pin.cpp", out)


class PinsHeader(unittest.TestCase):
    def test_missing_pins_header_fires_and_fix_pins_regenerates(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = os.path.join(tmp, "good")
            shutil.copytree(os.path.join(FIXTURES, "good"), root)
            os.remove(os.path.join(root, "tests", "contract_pins.h"))
            code, out, _ = run_contract_at(root)
            self.assertEqual(code, 1, out)
            self.assertIn("tests/contract_pins.h:1: [pins-stale]", out)
            code, out, err = run_contract_at(root, "--fix-pins")
            self.assertEqual(code, 0, out + err)
            code, out, _ = run_contract_at(root)
            self.assertEqual(code, 0, out)

    def test_hand_edited_pins_header_fires(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = os.path.join(tmp, "good")
            shutil.copytree(os.path.join(FIXTURES, "good"), root)
            pins = os.path.join(root, "tests", "contract_pins.h")
            with open(pins, "a", encoding="utf-8") as f:
                f.write("// hand edit\n")
            code, out, _ = run_contract_at(root)
            self.assertEqual(code, 1, out)
            self.assertIn("[pins-stale]", out)


class RegistryValidation(unittest.TestCase):
    def test_unreadable_registry_is_a_usage_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            code, _, err = run_contract_at(tmp)
            self.assertEqual(code, 2, err)
            self.assertIn("cannot read", err)

    def test_missing_golden_for_schema_version_fires(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = os.path.join(tmp, "good")
            shutil.copytree(os.path.join(FIXTURES, "good"), root)
            reg_path = os.path.join(root, "tools", "contracts.json")
            with open(reg_path, encoding="utf-8") as f:
                reg = json.load(f)
            reg["schema_version"] = 9  # no golden registered for 9
            with open(reg_path, "w", encoding="utf-8") as f:
                json.dump(reg, f, indent=2)
            code, out, _ = run_contract_at(root)
            self.assertEqual(code, 1, out)
            self.assertIn("[registry]", out)
            self.assertIn("schema version 9", out)


class OutputFormats(unittest.TestCase):
    def test_findings_serialize_with_rule_path_line_message(self):
        code, out, _ = run_contract("drifted_golden", "--format=json")
        self.assertEqual(code, 1, out)
        doc = json.loads(out)
        self.assertEqual(doc["tool"], "wheels-contract")
        self.assertEqual(len(doc["findings"]), 1, out)
        f = doc["findings"][0]
        self.assertEqual(f["rule"], "golden-pin")
        self.assertEqual(f["path"], "tests/test_pin.cpp")
        self.assertEqual(f["line"], 3)
        self.assertIn("registry pin", f["message"])

    def test_clean_tree_serializes_empty_findings(self):
        code, out, _ = run_contract("good", "--format=json")
        self.assertEqual(code, 0, out)
        doc = json.loads(out)
        self.assertEqual(doc["findings"], [])
        self.assertGreater(doc["files_scanned"], 0)

    def test_sarif_round_trips_the_json_findings(self):
        _, json_out, _ = run_contract("stale_doc", "--format=json")
        code, sarif_out, _ = run_contract("stale_doc", "--format=sarif")
        self.assertEqual(code, 1, sarif_out)
        native = json.loads(json_out)["findings"]
        doc = json.loads(sarif_out)
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        self.assertEqual(run["tool"]["driver"]["name"], "wheels-contract")
        results = run["results"]
        self.assertEqual(len(results), len(native))
        for res, f in zip(results, native):
            self.assertEqual(res["ruleId"], f["rule"])
            self.assertEqual(res["message"]["text"], f["message"])
            loc = res["locations"][0]["physicalLocation"]
            self.assertEqual(loc["artifactLocation"]["uri"], f["path"])
            self.assertEqual(loc["region"]["startLine"], f["line"])
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        self.assertEqual(rule_ids, {f["rule"] for f in native})


class ValidateTraceContracts(unittest.TestCase):
    """The satellite: validate_trace.py loads its required span prefixes
    from the registry instead of hard-coded flags."""

    REGISTRY = os.path.join(FIXTURES, "good", "tools", "contracts.json")

    def run_validate(self, events, *extra):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as f:
            json.dump({"traceEvents": events}, f)
            path = f.name
        try:
            proc = subprocess.run(
                [sys.executable, VALIDATE_TRACE, path, *extra],
                capture_output=True, text=True, check=False)
            return proc.returncode, proc.stdout, proc.stderr
        finally:
            os.unlink(path)

    @staticmethod
    def span(name, ts=0, dur=1):
        return {"name": name, "cat": "wheels", "ph": "X", "pid": 1,
                "tid": 1, "ts": ts, "dur": dur}

    def test_registry_prefixes_are_required(self):
        # The fixture registry requires a sim.run* span.
        code, out, err = self.run_validate(
            [self.span("sim.run.total")], "--contracts", self.REGISTRY)
        self.assertEqual(code, 0, out + err)
        code, _, err = self.run_validate(
            [self.span("other.phase")], "--contracts", self.REGISTRY)
        self.assertEqual(code, 1, err)
        self.assertIn("sim.run", err)

    def test_contracts_and_require_span_compose(self):
        code, _, err = self.run_validate(
            [self.span("sim.run.total")],
            "--contracts", self.REGISTRY, "--require-span", "extra.")
        self.assertEqual(code, 1, err)
        self.assertIn("extra.", err)

    def test_bad_registry_is_a_usage_error(self):
        code, _, err = self.run_validate(
            [self.span("sim.run.total")], "--contracts", "/nonexistent.json")
        self.assertEqual(code, 2, err)


class ScenarioRegistry(unittest.TestCase):
    """The scenario-registry rule: shipped scenarios/*.json files must
    parse, carry unique names matching their filenames, and show up in
    the generated README scenario table. Exercised on temp copies of the
    good fixture (which itself has no scenarios/ directory, proving the
    rule is a no-op for trees without a library)."""

    def make_root(self, tmp, files):
        root = os.path.join(tmp, "good")
        shutil.copytree(os.path.join(FIXTURES, "good"), root)
        scen = os.path.join(root, "scenarios")
        os.makedirs(scen)
        for name, text in files.items():
            with open(os.path.join(scen, name), "w", encoding="utf-8") as f:
                f.write(text)
        return root

    def test_no_scenarios_dir_is_a_noop(self):
        code, out, err = run_contract("good")
        self.assertEqual(code, 0, out + err)

    def test_valid_library_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self.make_root(tmp, {
                "alpha.json": '{"name": "alpha", "description": "a"}\n',
            })
            code, out, _ = run_contract_at(root)
            self.assertEqual(code, 0, out)

    def test_malformed_scenario_fires(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self.make_root(tmp, {"broken.json": '{"name": "broken"'})
            code, out, _ = run_contract_at(root)
            self.assertEqual(code, 1, out)
            self.assertIn("scenarios/broken.json:1: [scenario-registry]",
                          out)

    def test_name_filename_mismatch_fires(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self.make_root(tmp, {
                "alpha.json": '{"name": "beta", "description": "x"}\n',
            })
            code, out, _ = run_contract_at(root)
            self.assertEqual(code, 1, out)
            self.assertIn("[scenario-registry]", out)
            self.assertIn("alpha.json", out)

    def test_duplicate_name_fires(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = self.make_root(tmp, {
                "alpha.json": '{"name": "alpha", "description": "x"}\n',
                "beta.json": '{"name": "alpha", "description": "y"}\n',
            })
            code, out, _ = run_contract_at(root)
            self.assertEqual(code, 1, out)
            self.assertIn("already taken", out)


class RepoIsClean(unittest.TestCase):
    def test_real_repo_passes(self):
        code, out, err = run_contract_at(REPO_ROOT)
        self.assertEqual(code, 0, out + err)

    def test_real_registry_pins_the_documented_golden(self):
        # The acceptance pin: the registry (single source of truth) still
        # carries the PR-2 golden for the current schema version.
        with open(os.path.join(REPO_ROOT, "tools", "contracts.json"),
                  encoding="utf-8") as f:
            reg = json.load(f)
        golden = reg["golden_checksums"][str(reg["schema_version"])]
        self.assertEqual(golden["checksum"], "0xbba11b2dda6d2b08")
        self.assertEqual(golden["seed"], 42)
        self.assertEqual(golden["stride"], 64)


if __name__ == "__main__":
    unittest.main(verbosity=2)
