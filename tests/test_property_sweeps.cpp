// Property sweeps: invariants that must hold for every combination of
// operator, traffic profile, and environment (UE), and across the
// (RTT x capacity) plane (TCP). These are the guard rails the calibration
// knobs must never break.
#include <gtest/gtest.h>

#include <tuple>

#include "core/stats.h"
#include "net/tcp_cubic.h"
#include "ran/ue.h"

namespace wheels {
namespace {

using ran::OperatorId;
using ran::TrafficProfile;
using radio::Environment;

class UeSweep
    : public ::testing::TestWithParam<
          std::tuple<OperatorId, TrafficProfile, Environment>> {
 protected:
  static ran::Corridor make_corridor(Environment env) {
    return ran::Corridor(
        {{Meters{0.0}, Meters{200'000.0}, env, TimeZone::Central}});
  }
};

TEST_P(UeSweep, InvariantsHoldWhileDriving) {
  const auto [op, traffic, env] = GetParam();
  const ran::Corridor corridor = make_corridor(env);
  const auto& prof = ran::operator_profile(op);
  const auto dep = ran::Deployment::generate(corridor, prof, Rng(1));
  ran::UeSimulator ue(corridor, dep, prof, Rng(2), traffic);

  SimTime t{0.0};
  Meters pos{0.0};
  const Mph speed{45.0};
  int connected = 0;
  const int steps = 4'000;
  std::size_t ho_before = 0;
  for (int i = 0; i < steps; ++i) {
    const auto s = ue.step(t, pos, speed, Millis{100.0});
    t += Millis{100.0};
    pos += speed * Millis{100.0};

    // Rates are non-negative, capped by the UE capability, zero in HO.
    EXPECT_GE(s.phy_rate_dl.value, 0.0);
    EXPECT_GE(s.phy_rate_ul.value, 0.0);
    EXPECT_LE(s.phy_rate_dl.value, 3'500.0 + 1e-9);
    EXPECT_LE(s.phy_rate_ul.value, 350.0 + 1e-9);
    if (s.in_handover) {
      EXPECT_DOUBLE_EQ(s.phy_rate_dl.value, 0.0);
    }
    // Latency positive and bounded by sane RAN numbers.
    EXPECT_GT(s.air_latency.value, 0.0);
    EXPECT_LT(s.air_latency.value, 5'000.0);
    // KPI ranges.
    EXPECT_GE(s.bler_dl, 0.0);
    EXPECT_LE(s.bler_dl, 1.0);
    EXPECT_GE(s.cell_load, 0.0);
    EXPECT_LE(s.cell_load, 1.0);
    if (s.connected) {
      ++connected;
      EXPECT_GE(s.num_cc_dl, 1);
      EXPECT_LE(s.num_cc_dl, 8);
      EXPECT_GE(s.num_cc_ul, 1);
      EXPECT_LE(s.num_cc_ul, 2);
      EXPECT_GT(s.rsrp.value, -160.0);
      EXPECT_LT(s.rsrp.value, -20.0);
      // AT&T idle policy: no 5G, ever (Fig. 1d).
      if (op == OperatorId::ATT && traffic == TrafficProfile::Idle) {
        EXPECT_FALSE(radio::is_5g(s.tech));
      }
    }
    // Handover history only grows.
    EXPECT_GE(ue.handovers().size(), ho_before);
    ho_before = ue.handovers().size();
  }
  // Every operator keeps a mostly-connected UE in every environment.
  EXPECT_GT(connected, steps / 2);
  // HO records are time-ordered with positive durations.
  const auto& hos = ue.handovers();
  for (std::size_t i = 0; i < hos.size(); ++i) {
    EXPECT_GT(hos[i].duration.value, 0.0);
    EXPECT_LT(hos[i].duration.value, 2'000.0);
    if (i) {
      EXPECT_LE(hos[i - 1].time.ms_since_epoch,
                hos[i].time.ms_since_epoch);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, UeSweep,
    ::testing::Combine(
        ::testing::Values(OperatorId::Verizon, OperatorId::TMobile,
                          OperatorId::ATT),
        ::testing::Values(TrafficProfile::Idle, TrafficProfile::BackloggedDl,
                          TrafficProfile::BackloggedUl,
                          TrafficProfile::Interactive),
        ::testing::Values(Environment::Urban, Environment::Suburban,
                          Environment::Rural)));

class CubicSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CubicSweep, GoodputBoundedAndSubstantial) {
  const auto [rtt_ms, cap_mbps] = GetParam();
  net::CubicFlow flow(Rng(3));
  const Millis dt{10.0};
  double bytes = 0.0;
  const double seconds = 30.0;
  const int steps = static_cast<int>(seconds * 100.0);
  const int skip = steps / 3;
  for (int i = 0; i < steps; ++i) {
    const double b = flow.step(dt, Mbps{cap_mbps}, Millis{rtt_ms});
    if (i >= skip) bytes += b;
    // The flow never conjures bandwidth.
    EXPECT_LE(b * 8.0 / dt.seconds() / 1e6, cap_mbps * 1.001);
  }
  const double goodput = bytes * 8.0 / (seconds * 2.0 / 3.0) / 1e6;
  EXPECT_LE(goodput, cap_mbps * 1.001);
  // Steady state must realize most of the pipe at any (rtt, cap) combo.
  EXPECT_GT(goodput, cap_mbps * 0.6)
      << "rtt=" << rtt_ms << " cap=" << cap_mbps;
}

INSTANTIATE_TEST_SUITE_P(
    RttCapacityPlane, CubicSweep,
    ::testing::Combine(::testing::Values(15.0, 40.0, 80.0, 150.0),
                       ::testing::Values(3.0, 25.0, 120.0, 600.0)));

}  // namespace
}  // namespace wheels
