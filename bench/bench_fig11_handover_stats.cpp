// Fig. 11: handover frequency (per mile) and duration.
#include "bench_common.h"

#include "analysis/handover_analysis.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  auto cfg = bench::campaign_config(argc, argv);
  bench::print_header("Fig. 11", "Handovers per mile and HO duration",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run(cfg);

  std::cout << "(a) Handovers per mile during 30 s tests\n";
  TextTable t({"Operator", "dir", "med", "p75", "max"});
  for (const auto& log : res.logs) {
    for (auto test :
         {trip::TestType::DownlinkBulk, trip::TestType::UplinkBulk}) {
      const auto v = analysis::handovers_per_mile(log.tests, test);
      t.add_row_values(std::string(to_string(log.op)) + " " +
                           std::string(to_string(test)),
                       {percentile(v, 50), percentile(v, 75),
                        percentile(v, 100)},
                       1);
    }
  }
  t.print(std::cout);
  bench::paper_note("paper medians (p75): DL 3(6)/2(5)/2(5), UL "
                    "2(5)/2(6)/1(3) for V/T/A; extremes beyond 20/mile.");

  std::cout << "\n(b) Handover duration (ms)\n";
  TextTable t2({"Operator", "dir", "med", "p75", "p95"});
  for (const auto& log : res.logs) {
    for (auto test :
         {trip::TestType::DownlinkBulk, trip::TestType::UplinkBulk}) {
      const auto v = analysis::handover_durations(log.tests,
                                                  log.test_handovers, test);
      t2.add_row_values(std::string(to_string(log.op)) + " " +
                            std::string(to_string(test)),
                        {percentile(v, 50), percentile(v, 75),
                         percentile(v, 95)},
                        1);
    }
  }
  t2.print(std::cout);
  bench::paper_note("paper medians (p75): DL 53(73)/76(107)/58(74) ms, UL "
                    "49(63)/75(101)/57(73) ms.");
  return 0;
}
