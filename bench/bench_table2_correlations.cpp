// Table 2: Pearson correlation of throughput with RSRP, MCS, CA, BLER,
// speed, and handovers.
#include "bench_common.h"

#include "analysis/correlation.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  auto cfg = bench::campaign_config(argc, argv);
  bench::print_header("Table 2",
                      "Correlation of 500 ms throughput with KPIs",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run(cfg);

  TextTable t({"Operator", "dir", "RSRP", "MCS", "CA", "BLER", "Speed",
               "HO", "n"});
  for (const auto& log : res.logs) {
    for (auto test :
         {trip::TestType::DownlinkBulk, trip::TestType::UplinkBulk}) {
      const auto c = analysis::correlate(log.kpi, test);
      t.add_row({std::string(to_string(log.op)),
                 std::string(to_string(test)), fmt(c.rsrp, 2),
                 fmt(c.mcs, 2), fmt(c.ca, 2), fmt(c.bler, 2),
                 fmt(c.speed, 2), fmt(c.handovers, 2),
                 std::to_string(c.samples)});
    }
  }
  t.print(std::cout);
  bench::paper_note("paper values: RSRP 0.06-0.51, MCS 0.23-0.62, CA up "
                    "to 0.58 (AT&T DL), BLER ~0, speed -0.10..-0.37, "
                    "handovers ~0. No KPI strongly predicts throughput.");
  return 0;
}
