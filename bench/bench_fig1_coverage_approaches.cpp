// Fig. 1: passive (handover-logger) vs active (XCAL during tests) coverage
// along the route, per operator.
#include "bench_common.h"

#include "analysis/coverage.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  auto cfg = bench::campaign_config(argc, argv);
  bench::print_header(
      "Fig. 1", "Coverage: passive handover-logger vs active XCAL view",
      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run(cfg);
  const double route_km = res.route_length.kilometers();

  TextTable t({"Operator", "view", "5G share (%)", "HS-5G (%)",
               "dominant-5G route bins (%)"});
  for (const auto& log : res.logs) {
    const auto passive = analysis::coverage_from_passive(log.passive);
    const auto active = analysis::coverage_from_kpi(log.kpi);
    const auto pm =
        analysis::route_coverage_map_passive(log.passive, 50.0, route_km);
    const auto am =
        analysis::route_coverage_map_active(log.kpi, 50.0, route_km);
    auto bins_5g = [](const auto& bins) {
      int n = 0, five = 0;
      for (const auto& b : bins) {
        if (!b.any_samples) continue;
        ++n;
        if (b.connected && radio::is_5g(b.dominant)) ++five;
      }
      return n ? 100.0 * five / n : 0.0;
    };
    t.add_row({std::string(to_string(log.op)), "passive",
               fmt(100 * passive.total_5g(), 1),
               fmt(100 * passive.high_speed_5g(), 1), fmt(bins_5g(pm), 1)});
    t.add_row({"", "active (XCAL)", fmt(100 * active.total_5g(), 1),
               fmt(100 * active.high_speed_5g(), 1), fmt(bins_5g(am), 1)});
    std::cout << to_string(log.op) << ": passive-vs-active 4G/5G "
              << "disagreement over route bins = "
              << fmt(100 * analysis::coverage_disagreement(pm, am), 1)
              << "%\n";
  }
  std::cout << "\n";
  t.print(std::cout);
  bench::paper_note(
      "passive loggers show LTE/LTE-A dominant everywhere (AT&T: zero 5G); "
      "XCAL during backlogged tests shows large 5G areas.");
  return 0;
}
