// Fig. 7: technology-wise throughput as a function of vehicle speed.
#include "bench_common.h"

#include "analysis/performance.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  auto cfg = bench::campaign_config(argc, argv);
  bench::print_header("Fig. 7",
                      "Throughput vs speed (three speed regions)",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run(cfg);

  for (auto test :
       {trip::TestType::DownlinkBulk, trip::TestType::UplinkBulk}) {
    std::cout << "--- " << to_string(test) << " ---\n";
    TextTable t({"Operator", "Tech", "Speed bin", "n", "p10", "med",
                 "p90", "max"});
    for (const auto& log : res.logs) {
      for (const auto& st :
           analysis::tput_by_speed_and_tech(log.kpi, test)) {
        t.add_row({std::string(to_string(log.op)),
                   std::string(to_string(st.tech)),
                   analysis::speed_bin_label(st.bin),
                   std::to_string(st.count), fmt(st.p10, 1),
                   fmt(st.median, 1), fmt(st.p90, 1), fmt(st.max, 1)});
      }
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  bench::paper_note("mmWave points cluster in the 0-20 mph (city) bin; "
                    "mid-speed (suburban) throughput dips below highway "
                    "speeds for Verizon/AT&T; low-throughput points exist "
                    "in every region (weak speed correlation).");
  return 0;
}
