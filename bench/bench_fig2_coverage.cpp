// Fig. 2: technology coverage as % of miles -- (a) overall, (b) by traffic
// direction, (c) by timezone, (d) by speed bin.
#include "bench_common.h"

#include "analysis/coverage.h"
#include "analysis/performance.h"
#include "core/table.h"

namespace {

using namespace wheels;

std::vector<double> share_row(const analysis::TechShares& ts) {
  return {100 * ts.tech(radio::Tech::LTE),
          100 * ts.tech(radio::Tech::LTE_A),
          100 * ts.tech(radio::Tech::NR_LOW),
          100 * ts.tech(radio::Tech::NR_MID),
          100 * ts.tech(radio::Tech::NR_MMWAVE),
          100 * ts.no_service(),
          100 * ts.total_5g(),
          100 * ts.high_speed_5g()};
}

TextTable make_table() {
  return TextTable({"Case", "LTE", "LTE-A", "5G-low", "5G-mid", "5G-mmW",
                    "none", "5G", "HS-5G"});
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = bench::campaign_config(argc, argv);
  bench::print_header("Fig. 2", "Technology coverage (% of miles driven)",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run(cfg);

  std::cout << "(a) Overall coverage during active tests\n";
  auto ta = make_table();
  for (const auto& log : res.logs) {
    ta.add_row_values(std::string(to_string(log.op)),
                      share_row(analysis::coverage_from_kpi(log.kpi)), 1);
  }
  ta.print(std::cout);
  bench::paper_note("5G total: T-Mobile ~68%, Verizon/AT&T ~18-22%; "
                    "HS-5G: 38% (T) down to 3% (A); Verizon leads mmWave.");

  std::cout << "\n(b) By traffic direction (backlogged tests)\n";
  auto tb = make_table();
  for (const auto& log : res.logs) {
    analysis::KpiFilter dl, ul;
    dl.only_downlink = true;
    ul.only_uplink = true;
    tb.add_row_values(std::string(to_string(log.op)) + " DL",
                      share_row(analysis::coverage_from_kpi(log.kpi, dl)),
                      1);
    tb.add_row_values(std::string(to_string(log.op)) + " UL",
                      share_row(analysis::coverage_from_kpi(log.kpi, ul)),
                      1);
  }
  tb.print(std::cout);
  bench::paper_note("HS-5G share is higher for downlink than uplink for "
                    "all three operators.");

  std::cout << "\n(c) By timezone\n";
  auto tc = make_table();
  for (const auto& log : res.logs) {
    for (int tz = 0; tz < 4; ++tz) {
      analysis::KpiFilter f;
      f.tz = tz;
      tc.add_row_values(std::string(to_string(log.op)) + " " +
                            to_string(static_cast<TimeZone>(tz)),
                        share_row(analysis::coverage_from_kpi(log.kpi, f)),
                        1);
    }
  }
  tc.print(std::cout);
  bench::paper_note("T-Mobile mid-band strongest in Pacific; AT&T 5G thin "
                    "in Mountain/Central; Verizon better in the east.");

  std::cout << "\n(d) By speed bin\n";
  auto td = make_table();
  const double bounds[4] = {0.0, 20.0, 60.0, 1e9};
  for (const auto& log : res.logs) {
    for (int b = 0; b < 3; ++b) {
      analysis::KpiFilter f;
      f.min_mph = bounds[b];
      f.max_mph = bounds[b + 1];
      td.add_row_values(std::string(to_string(log.op)) + " " +
                            analysis::speed_bin_label(b),
                        share_row(analysis::coverage_from_kpi(log.kpi, f)),
                        1);
    }
  }
  td.print(std::cout);
  bench::paper_note("HS-5G coverage falls from low to high speed bins; "
                    "T-Mobile is the only carrier keeping substantial "
                    "mid-band at 60+ mph.");
  return 0;
}
