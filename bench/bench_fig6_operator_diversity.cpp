// Fig. 6: pairwise throughput difference of concurrent samples and the
// HT/LT technology-bin decomposition.
#include "bench_common.h"

#include "analysis/operator_diversity.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  auto cfg = bench::campaign_config(argc, argv);
  bench::print_header("Fig. 6",
                      "Operator diversity: concurrent throughput "
                      "differences and HT/LT bins",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run(cfg);

  const std::pair<ran::OperatorId, ran::OperatorId> pairs[] = {
      {ran::OperatorId::Verizon, ran::OperatorId::TMobile},
      {ran::OperatorId::TMobile, ran::OperatorId::ATT},
      {ran::OperatorId::ATT, ran::OperatorId::Verizon},
  };

  for (auto test :
       {trip::TestType::DownlinkBulk, trip::TestType::UplinkBulk}) {
    std::cout << "--- " << to_string(test) << " ---\n";
    TextTable t({"Pair", "n", "HT-HT%", "HT-LT%", "LT-HT%", "LT-LT%",
                 "first wins %", "diff p25", "diff med", "diff p75"});
    for (const auto& [a, b] : pairs) {
      const auto ps = analysis::pair_samples(res.for_op(a).kpi,
                                             res.for_op(b).kpi, test);
      const auto an = analysis::analyze_pair(ps);
      t.add_row(
          {std::string(to_string(a)) + "-" + std::string(to_string(b)),
           std::to_string(ps.size()),
           fmt(100 * an.bin_fraction[0], 1), fmt(100 * an.bin_fraction[1], 1),
           fmt(100 * an.bin_fraction[2], 1), fmt(100 * an.bin_fraction[3], 1),
           fmt(100 * an.first_wins, 1),
           fmt(percentile(an.all_diffs, 25), 1),
           fmt(percentile(an.all_diffs, 50), 1),
           fmt(percentile(an.all_diffs, 75), 1)});
      // HT-vs-LT upsets: the high-tech side losing anyway.
      const auto& htlt =
          an.diffs_by_bin[static_cast<int>(analysis::TechBin::HtLt)];
      if (htlt.size() > 20) {
        int upsets = 0;
        for (double d : htlt) {
          if (d < 0.0) ++upsets;
        }
        std::cout << "  " << to_string(a) << " HT loses to " << to_string(b)
                  << " LT in "
                  << fmt(100.0 * upsets / static_cast<double>(htlt.size()), 1)
                  << "% of HT-LT samples\n";
      }
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  bench::paper_note("LT-LT dominates most pairs; HT-HT rare (0.3-10%); an "
                    "HT operator still loses to an LT one in ~20% of "
                    "instants -- the multi-connectivity argument.");
  return 0;
}
