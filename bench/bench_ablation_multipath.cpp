// Ablation for §8 recommendation (2): how much would multi-operator
// aggregation (MPTCP-style) help while driving?
#include "bench_common.h"

#include <memory>

#include "analysis/operator_diversity.h"
#include "core/stats.h"
#include "core/table.h"
#include "net/mptcp.h"
#include "net/mptcp_scheduler.h"
#include "trip/region.h"

int main(int argc, char** argv) {
  using namespace wheels;
  auto cfg = bench::campaign_config(argc, argv);
  bench::print_header("Ablation",
                      "Multi-operator aggregation (MPTCP what-if)",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run(cfg);

  for (auto test :
       {trip::TestType::DownlinkBulk, trip::TestType::UplinkBulk}) {
    // Align the three operators' concurrent samples.
    std::vector<std::vector<double>> series(3);
    const auto& v = res.for_op(ran::OperatorId::Verizon).kpi;
    const auto& t = res.for_op(ran::OperatorId::TMobile).kpi;
    const auto& a = res.for_op(ran::OperatorId::ATT).kpi;
    std::size_t n = std::min({v.size(), t.size(), a.size()});
    for (std::size_t i = 0; i < n; ++i) {
      if (v[i].test != test) continue;
      series[0].push_back(v[i].tput_mbps);
      series[1].push_back(t[i].tput_mbps);
      series[2].push_back(a[i].tput_mbps);
    }
    const auto agg = net::aggregate_series(series);

    std::vector<double> best, realistic, ideal, gains;
    int rescued = 0;
    for (const auto& r : agg) {
      best.push_back(r.best_single_mbps);
      realistic.push_back(r.realistic_mbps);
      ideal.push_back(r.ideal_sum_mbps);
      if (r.best_single_mbps > 0.1) gains.push_back(r.gain_over_best);
      // Instants where the single best operator is nearly dead but
      // another one has capacity.
      if (r.best_single_mbps < 1.0 && r.realistic_mbps > 5.0) ++rescued;
    }
    std::cout << "--- " << to_string(test) << " (n=" << agg.size()
              << " concurrent instants) ---\n";
    TextTable tab({"Series", "med", "p75", "p90"});
    tab.add_row_values("best single operator",
                       {percentile(best, 50), percentile(best, 75),
                        percentile(best, 90)},
                       1);
    tab.add_row_values("aggregated (80% secondary)",
                       {percentile(realistic, 50), percentile(realistic, 75),
                        percentile(realistic, 90)},
                       1);
    tab.add_row_values("aggregated (ideal sum)",
                       {percentile(ideal, 50), percentile(ideal, 75),
                        percentile(ideal, 90)},
                       1);
    tab.print(std::cout);
    std::cout << "median gain over the best single subscription: "
              << fmt(percentile(gains, 50), 2) << "x\n"
              << "dead-zone rescues (best<1 Mbps but aggregate>5): "
              << rescued << " instants\n\n";
  }
  bench::paper_note("the paper recommends multi-connectivity because "
                    "per-location operator diversity is large (Fig. 6); "
                    "this bench quantifies the headroom.");

  // Dynamic bonded transport: run one CUBIC subflow per operator over the
  // live links for an hour of driving, schedule with minRTT, and compare
  // against the best lone subscription (congestion control and stalls
  // included, unlike the static sum above).
  std::cout << "\n--- Dynamic MPTCP simulation (1 h of driving, 20 ms "
               "slots) ---\n";
  {
    const trip::Route route = trip::Route::cross_country();
    Rng rng(42);
    const ran::Corridor corridor =
        trip::build_corridor(route, rng.fork("corridor"));
    trip::TripSimulator trip_sim(route, corridor, rng.fork("trip"));
    std::vector<std::unique_ptr<ran::Deployment>> deps;
    std::vector<std::unique_ptr<ran::UeSimulator>> ues;
    for (auto op : ran::kAllOperators) {
      deps.push_back(std::make_unique<ran::Deployment>(
          ran::Deployment::generate(corridor, ran::operator_profile(op),
                                    rng.fork(to_string(op)))));
      ues.push_back(std::make_unique<ran::UeSimulator>(
          corridor, *deps.back(), ran::operator_profile(op),
          rng.fork(to_string(op)).fork("ue"),
          ran::TrafficProfile::BackloggedDl));
    }
    const Millis slot{20.0};
    std::vector<std::vector<net::SubflowInput>> inputs;
    inputs.reserve(180'000);
    for (int i = 0; i < 180'000 && !trip_sim.finished(); ++i) {
      const auto pt = trip_sim.advance(slot);
      std::vector<net::SubflowInput> in;
      in.reserve(3);
      for (auto& ue : ues) {
        const auto link = ue->step(pt.time, pt.position, pt.speed, slot);
        in.push_back({link.phy_rate_dl,
                      link.air_latency * 2.0 + Millis{24.0}});
      }
      inputs.push_back(std::move(in));
    }
    const auto bonded =
        net::run_bonded(rng.fork("mptcp"), inputs, slot, Millis{500.0});
    TextTable tb({"Series", "med", "p75", "%windows<5 Mbps", "total GB"});
    auto dead = [](const std::vector<double>& v) {
      int n = 0;
      for (double x : v) {
        if (x < 5.0) ++n;
      }
      return v.empty() ? 0.0 : 100.0 * n / static_cast<double>(v.size());
    };
    tb.add_row_values("best single subscription",
                      {percentile(bonded.best_single_mbps, 50),
                       percentile(bonded.best_single_mbps, 75),
                       dead(bonded.best_single_mbps),
                       bonded.best_single_total_gb},
                      1);
    tb.add_row_values("bonded (minRTT, real CUBIC subflows)",
                      {percentile(bonded.bonded_mbps, 50),
                       percentile(bonded.bonded_mbps, 75),
                       dead(bonded.bonded_mbps), bonded.bonded_total_gb},
                      1);
    tb.print(std::cout);
    std::cout << "bonded/best-single data volume: "
              << fmt(bonded.bonded_total_gb /
                         std::max(1e-9, bonded.best_single_total_gb),
                     2)
              << "x\n";
  }
  return 0;
}
