// Shared plumbing for the figure/table benches.
//
// Every bench accepts an optional stride argument (`bench_x [stride]`, or
// the WHEELS_BENCH_STRIDE environment variable): the campaign executes
// every stride-th round-robin test cycle and fast-forwards the rest.
// stride=1 reproduces the full 8-day campaign; the default keeps a bench
// under ~1 minute while preserving the geographic spread of samples.
//
// Benches do not simulate directly: they ask the shared CampaignProvider
// for the dataset, which serves it from the content-addressed cache
// (WHEELS_DATASET_DIR, default build/dataset-cache/) when warm and
// simulates + persists otherwise. Warm the cache once with
// `tools/wheels_campaign generate`; after that, regenerating every figure
// costs cache loads, not campaigns. Set WHEELS_DATASET_CACHE=0 to force
// re-simulation.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "apps/app_campaign.h"
#include "core/thread_pool.h"
#include "dataset/provider.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/runtime.h"
#include "trip/campaign.h"

namespace wheels::bench {

// Strictly parse a stride value; empty optional argument semantics are
// handled by the callers. Exits with a usage message on anything that is
// not a whole positive decimal number (a silent fallback here once meant
// `bench_x abc` quietly benchmarked the wrong configuration).
inline int parse_stride_or_exit(const char* text, const char* origin,
                                const char* argv0) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || v < 1 ||
      v > 1'000'000L) {
    std::cerr << argv0 << ": invalid stride '" << text << "' (from " << origin
              << ")\n"
              << "usage: " << argv0 << " [stride]\n"
              << "  stride: whole number >= 1; every stride-th test cycle "
                 "is simulated\n"
              << "  (also read from WHEELS_BENCH_STRIDE when no argument "
                 "is given)\n";
    std::exit(2);
  }
  return static_cast<int>(v);
}

inline int stride_from(int argc, char** argv, int fallback) {
  if (argc > 2) {
    std::cerr << argv[0] << ": too many arguments\n"
              << "usage: " << argv[0] << " [stride]\n";
    std::exit(2);
  }
  if (argc > 1) return parse_stride_or_exit(argv[1], "argv[1]", argv[0]);
  // WHEELS_BENCH_STRIDE / WHEELS_BENCH_JSON below are declared in
  // tools/contracts.json; new bench knobs must be registered there too.
  if (const char* env = std::getenv("WHEELS_BENCH_STRIDE")) {
    return parse_stride_or_exit(env, "WHEELS_BENCH_STRIDE", argv[0]);
  }
  return fallback;
}

inline trip::CampaignConfig campaign_config(int argc, char** argv,
                                            int default_stride = 8) {
  trip::CampaignConfig cfg;
  cfg.seed = 42;
  cfg.cycle_stride = stride_from(argc, argv, default_stride);
  return cfg;
}

inline apps::AppCampaignConfig app_campaign_config(int argc, char** argv,
                                                   int default_stride = 10) {
  apps::AppCampaignConfig cfg;
  cfg.seed = 42;
  cfg.cycle_stride = stride_from(argc, argv, default_stride);
  return cfg;
}

// The process-wide dataset provider. Provenance notes go to stderr so the
// figures on stdout are bit-identical between cached and fresh runs.
inline dataset::CampaignProvider& provider() {
  static dataset::CampaignProvider p{[] {
    dataset::ProviderOptions opts;
    opts.verbose = true;
    return opts;
  }()};
  return p;
}

namespace detail {

// Wall-clock for the whole bench (simulation or cache load + analysis):
// armed by print_header, reported at process exit as one JSON line on
// stderr when WHEELS_BENCH_JSON=1. Timestamps never reach stdout, so the
// figures stay bit-identical between runs. The metrics object comes from
// the obs registry (print_header constructs the registry before this
// clock, so the destructor ordering is safe); it reports how the time was
// spent: simulate fan-out vs disk hits, and the per-phase breakdown.
struct BenchClock {
  std::string name;
  std::int64_t start_ns = 0;
  int jobs = 1;
  bool armed = false;

  ~BenchClock() {
    if (!armed) return;
    const char* env = std::getenv("WHEELS_BENCH_JSON");
    if (env == nullptr || std::string_view(env) != "1") return;
    const long long sim_ms =
        static_cast<long long>((obs::now_ns() - start_ns) / 1'000'000);
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    const auto value_of = [&snap](std::string_view metric) -> long long {
      const obs::MetricValue* mv = snap.find(metric);
      return mv != nullptr ? static_cast<long long>(mv->value) : 0;
    };
    const long long simulations =
        value_of("dataset.provider.campaign_simulations") +
        value_of("dataset.provider.baseline_simulations");
    std::fprintf(stderr,
                 "{\"bench\": \"%s\", \"sim_ms\": %lld, \"jobs\": %d, "
                 "\"metrics\": {\"simulations\": %lld, \"disk_hits\": %lld, "
                 "\"record_ms\": %lld, \"replay_ms\": %lld, "
                 "\"baseline_ms\": %lld}}\n",
                 name.c_str(), sim_ms, jobs, simulations,
                 value_of("dataset.provider.disk_hits"),
                 value_of("campaign.record_us") / 1000,
                 value_of("campaign.replay_us") / 1000,
                 value_of("campaign.baseline_us") / 1000);
  }
};

inline BenchClock& bench_clock() {
  static BenchClock clock;
  return clock;
}

}  // namespace detail

inline void print_header(const std::string& id, const std::string& title,
                         int stride) {
  // Constructs the obs registry (and arms any WHEELS_METRICS/WHEELS_TRACE
  // exporters) before the bench clock below, so the clock's destructor can
  // still read the registry during static teardown.
  obs::init_from_env();
  auto& clock = detail::bench_clock();
  clock.name = id;
  clock.start_ns = obs::now_ns();
  clock.jobs = resolve_jobs();
  clock.armed = true;
  std::cout << "=== " << id << ": " << title << " ===\n"
            << "(campaign stride " << stride
            << "; stride 1 reproduces the full 8-day drive)\n\n";
}

// Warm every dataset a measurement-figure bench needs (the campaign and
// all three static baselines) in one concurrent round, so a cold cache
// pays max(simulations) instead of their sum when jobs > 1. Wasted on a
// warm cache: everything resolves from memo/disk instantly.
inline void warm_campaign_and_baselines(const trip::CampaignConfig& cfg) {
  auto& p = provider();
  std::vector<std::function<void()>> work;
  work.emplace_back([&] { p.load_or_run(cfg); });
  for (auto op : ran::kAllOperators) {
    work.emplace_back([&, op] { p.load_or_run_static(cfg, op); });
  }
  parallel_for_each(p.jobs(), work.size(),
                    [&](std::size_t i) { work[i](); });
}

// A one-line reminder of the paper's reference numbers next to ours.
inline void paper_note(const std::string& text) {
  std::cout << "  [paper] " << text << "\n";
}

}  // namespace wheels::bench
