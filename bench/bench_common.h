// Shared plumbing for the figure/table benches.
//
// Every bench accepts an optional stride argument (`bench_x [stride]`, or
// the WHEELS_BENCH_STRIDE environment variable): the campaign executes
// every stride-th round-robin test cycle and fast-forwards the rest.
// stride=1 reproduces the full 8-day campaign; the default keeps a bench
// under ~1 minute while preserving the geographic spread of samples.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/app_campaign.h"
#include "trip/campaign.h"

namespace wheels::bench {

inline int stride_from(int argc, char** argv, int fallback) {
  if (argc > 1) {
    const int s = std::atoi(argv[1]);
    if (s >= 1) return s;
  }
  if (const char* env = std::getenv("WHEELS_BENCH_STRIDE")) {
    const int s = std::atoi(env);
    if (s >= 1) return s;
  }
  return fallback;
}

inline trip::CampaignConfig campaign_config(int argc, char** argv,
                                            int default_stride = 8) {
  trip::CampaignConfig cfg;
  cfg.seed = 42;
  cfg.cycle_stride = stride_from(argc, argv, default_stride);
  return cfg;
}

inline apps::AppCampaignConfig app_campaign_config(int argc, char** argv,
                                                   int default_stride = 10) {
  apps::AppCampaignConfig cfg;
  cfg.seed = 42;
  cfg.cycle_stride = stride_from(argc, argv, default_stride);
  return cfg;
}

inline void print_header(const std::string& id, const std::string& title,
                         int stride) {
  std::cout << "=== " << id << ": " << title << " ===\n"
            << "(campaign stride " << stride
            << "; stride 1 reproduces the full 8-day drive)\n\n";
}

// A one-line reminder of the paper's reference numbers next to ours.
inline void paper_note(const std::string& text) {
  std::cout << "  [paper] " << text << "\n";
}

}  // namespace wheels::bench
