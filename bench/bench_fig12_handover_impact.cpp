// Fig. 12: throughput impact of handovers -- dT1 (during-HO drop) and dT2
// (post-minus-pre change), split by HO type.
#include "bench_common.h"

#include <map>

#include "analysis/handover_analysis.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  auto cfg = bench::campaign_config(argc, argv);
  bench::print_header("Fig. 12",
                      "Throughput around handovers (dT1, dT2)",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run(cfg);

  for (auto test :
       {trip::TestType::DownlinkBulk, trip::TestType::UplinkBulk}) {
    std::cout << "--- " << to_string(test) << " ---\n";
    TextTable t({"Operator", "n", "dT1 med", "%dT1<0", "dT2 med",
                 "%dT2>0", "dT2 max"});
    for (const auto& log : res.logs) {
      const auto impacts = analysis::handover_impacts(
          log.kpi, log.test_handovers, test);
      if (impacts.empty()) continue;
      std::vector<double> d1, d2;
      int neg1 = 0, pos2 = 0;
      for (const auto& i : impacts) {
        d1.push_back(i.delta_t1);
        d2.push_back(i.delta_t2);
        if (i.delta_t1 < 0.0) ++neg1;
        if (i.delta_t2 > 0.0) ++pos2;
      }
      t.add_row({std::string(to_string(log.op)),
                 std::to_string(impacts.size()),
                 fmt(percentile(d1, 50), 1),
                 fmt(100.0 * neg1 / static_cast<double>(impacts.size()), 1),
                 fmt(percentile(d2, 50), 1),
                 fmt(100.0 * pos2 / static_cast<double>(impacts.size()), 1),
                 fmt(percentile(d2, 100), 1)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  bench::paper_note("dT1 < 0 ~80% of the time (small drops); dT2 > 0 "
                    "~55-60% of the time (post-HO often better).");

  std::cout << "dT2 by handover type (DL, all operators pooled):\n";
  std::map<radio::HandoverKind, std::vector<double>> by_kind;
  for (const auto& log : res.logs) {
    for (const auto& i : analysis::handover_impacts(
             log.kpi, log.test_handovers, trip::TestType::DownlinkBulk)) {
      by_kind[i.kind].push_back(i.delta_t2);
    }
  }
  TextTable tk({"HO type", "n", "dT2 med", "%dT2>0"});
  for (const auto& [kind, v] : by_kind) {
    int pos = 0;
    for (double d : v) {
      if (d > 0.0) ++pos;
    }
    tk.add_row({std::string(to_string(kind)), std::to_string(v.size()),
                fmt(percentile(v, 50), 1),
                fmt(v.empty() ? 0.0
                              : 100.0 * pos / static_cast<double>(v.size()),
                    1)});
  }
  tk.print(std::cout);
  bench::paper_note("5G->4G mostly lowers post-HO throughput; 4G->5G "
                    "typically improves it; horizontal HOs have small "
                    "impact either way.");
  return 0;
}
