// Fig. 13 (and Figs. 18-19): AR app performance -- E2E offloading
// latency, offloaded FPS, detection accuracy; driving vs best static;
// effect of compression, technology, server, and handovers.
#include "bench_common.h"

#include "core/stats.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  using apps::AppKind;
  auto cfg = bench::app_campaign_config(argc, argv);
  bench::print_header("Fig. 13 (+18-19)", "AR app QoE",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run_apps(cfg);

  TextTable t({"Operator", "compr", "runs", "E2E med (ms)", "E2E p90",
               "FPS med", "mAP med", "mAP max"});
  for (auto op : ran::kAllOperators) {
    for (const bool compression : {false, true}) {
      std::vector<double> e2e, fps, map;
      for (const auto& r : res.for_op(op)) {
        if (r.app != AppKind::Ar || r.compression != compression) continue;
        if (r.median_e2e_ms > 0.0) {
          e2e.push_back(r.median_e2e_ms);
          fps.push_back(r.offloaded_fps);
          map.push_back(r.map);
        }
      }
      t.add_row({std::string(to_string(op)), compression ? "yes" : "no",
                 std::to_string(e2e.size()), fmt(percentile(e2e, 50), 1),
                 fmt(percentile(e2e, 90), 1), fmt(percentile(fps, 50), 2),
                 fmt(percentile(map, 50), 1),
                 fmt(percentile(map, 100), 1)});
    }
  }
  t.print(std::cout);
  bench::paper_note("driving, compressed: E2E med ~214 ms (3x best "
                    "static), FPS ~4.35, mAP ~30.1; compression clearly "
                    "beats raw frames.");

  // Best static runs per operator.
  std::cout << "\nBest static runs (compressed):\n";
  TextTable ts({"Operator", "E2E (ms)", "FPS", "mAP"});
  for (auto op : ran::kAllOperators) {
    const auto& sb = bench::provider().load_or_run_apps_static(cfg, op);
    double best_e2e = 1e18, best_fps = 0.0, best_map = 0.0;
    for (const auto& r : sb) {
      if (r.app != AppKind::Ar || !r.compression || r.mean_e2e_ms <= 0.0) {
        continue;
      }
      if (r.mean_e2e_ms < best_e2e) {
        best_e2e = r.mean_e2e_ms;
        best_fps = r.offloaded_fps;
        best_map = r.map;
      }
    }
    ts.add_row_values(std::string(to_string(op)),
                      {best_e2e, best_fps, best_map}, 2);
  }
  ts.print(std::cout);
  bench::paper_note("best static: 68 ms E2E, 12.5 FPS, 36.5 mAP; Verizon "
                    "leads thanks to the lowest RTT (edge).");

  // Technology / server / handover effects (Verizon, compressed).
  std::cout << "\nVerizon, compressed runs -- context splits:\n";
  std::vector<double> hs_map, lt_map, edge_e2e, cloud_e2e, hos, maps;
  for (const auto& r : res.for_op(ran::OperatorId::Verizon)) {
    if (r.app != AppKind::Ar || !r.compression || r.e2e_ms.empty()) {
      continue;
    }
    (r.frac_high_speed_5g > 0.5 ? hs_map : lt_map).push_back(r.map);
    (r.server == net::ServerKind::Edge ? edge_e2e : cloud_e2e)
        .push_back(r.median_e2e_ms);
    hos.push_back(static_cast<double>(r.handovers));
    maps.push_back(r.map);
  }
  std::cout << "  mAP med: mostly-HS5G runs " << fmt(percentile(hs_map, 50), 1)
            << " (n=" << hs_map.size() << ") vs mostly-4G/low "
            << fmt(percentile(lt_map, 50), 1) << " (n=" << lt_map.size()
            << ")\n";
  std::cout << "  E2E med: edge " << fmt(percentile(edge_e2e, 50), 1)
            << " ms (n=" << edge_e2e.size() << ") vs cloud "
            << fmt(percentile(cloud_e2e, 50), 1) << " ms (n="
            << cloud_e2e.size() << ")\n";
  std::cout << "  corr(handovers, mAP) = " << fmt(pearson(hos, maps), 2)
            << "\n";
  bench::paper_note("high-speed 5G lifts the worst case only; edge helps "
                    "everywhere; handovers show no strong correlation "
                    "with mAP (local tracking hides them).");
  return 0;
}
