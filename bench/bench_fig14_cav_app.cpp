// Fig. 14 (and Fig. 20): CAV app performance -- E2E latency vs the 100 ms
// budget, with and without point-cloud compression.
#include "bench_common.h"

#include "core/stats.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  using apps::AppKind;
  auto cfg = bench::app_campaign_config(argc, argv);
  bench::print_header("Fig. 14 (+20)", "CAV app E2E latency",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run_apps(cfg);

  TextTable t({"Operator", "compr", "runs", "E2E med (ms)", "E2E min",
               "E2E p90", "FPS med"});
  for (auto op : ran::kAllOperators) {
    for (const bool compression : {false, true}) {
      std::vector<double> e2e, fps;
      for (const auto& r : res.for_op(op)) {
        if (r.app != AppKind::Cav || r.compression != compression) {
          continue;
        }
        if (r.median_e2e_ms > 0.0) {
          e2e.push_back(r.median_e2e_ms);
          fps.push_back(r.offloaded_fps);
        }
      }
      t.add_row({std::string(to_string(op)), compression ? "yes" : "no",
                 std::to_string(e2e.size()), fmt(percentile(e2e, 50), 1),
                 fmt(percentile(e2e, 0), 1), fmt(percentile(e2e, 90), 1),
                 fmt(percentile(fps, 50), 2)});
    }
  }
  t.print(std::cout);
  bench::paper_note("compressed driving med ~269 ms, minimum ~148 ms: the "
                    "100 ms budget is never met; compression cuts the "
                    "median ~8x vs raw 2 MB point clouds.");

  // Compression gain + budget check.
  std::cout << "\n";
  for (auto op : ran::kAllOperators) {
    std::vector<double> with, without;
    double best = 1e18;
    for (const auto& r : res.for_op(op)) {
      if (r.app != AppKind::Cav || r.median_e2e_ms <= 0.0) continue;
      (r.compression ? with : without).push_back(r.median_e2e_ms);
      if (r.compression) best = std::min(best, r.median_e2e_ms);
    }
    std::cout << to_string(op) << ": compression gain = "
              << fmt(percentile(without, 50) /
                         std::max(1.0, percentile(with, 50)),
                     1)
              << "x; best run " << fmt(best, 1)
              << " ms -> 100 ms budget met: "
              << (best < 100.0 ? "YES (!)" : "no") << "\n";
  }

  // Handover correlation (Verizon).
  std::vector<double> hos, e2e;
  for (const auto& r : res.for_op(ran::OperatorId::Verizon)) {
    if (r.app == AppKind::Cav && r.compression && r.median_e2e_ms > 0.0) {
      hos.push_back(static_cast<double>(r.handovers));
      e2e.push_back(r.median_e2e_ms);
    }
  }
  std::cout << "\nVerizon corr(handovers, E2E) = "
            << fmt(pearson(hos, e2e), 2) << "\n";
  bench::paper_note("no obvious correlation between handovers and E2E.");
  return 0;
}
