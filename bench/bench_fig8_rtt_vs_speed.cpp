// Fig. 8: technology-wise RTT as a function of vehicle speed.
#include "bench_common.h"

#include "analysis/performance.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  auto cfg = bench::campaign_config(argc, argv);
  bench::print_header("Fig. 8", "RTT vs speed (three speed regions)",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run(cfg);

  TextTable t({"Operator", "Tech", "Speed bin", "n", "med", "p90"});
  for (const auto& log : res.logs) {
    for (const auto& st : analysis::rtt_by_speed_and_tech(log.rtt)) {
      t.add_row({std::string(to_string(log.op)),
                 std::string(to_string(st.tech)),
                 analysis::speed_bin_label(st.bin), std::to_string(st.count),
                 fmt(st.median, 1), fmt(st.p90, 1)});
    }
  }
  t.print(std::cout);

  std::cout << "\nRTT medians per speed bin (all techs):\n";
  TextTable t2({"Operator", "0-20 mph", "20-60 mph", "60+ mph"});
  for (const auto& log : res.logs) {
    std::vector<double> meds;
    const double bounds[4] = {0.0, 20.0, 60.0, 1e9};
    for (int b = 0; b < 3; ++b) {
      analysis::PerfFilter f;
      f.min_mph = bounds[b];
      f.max_mph = bounds[b + 1];
      meds.push_back(percentile(analysis::rtt_samples(log.rtt, f), 50));
    }
    t2.add_row_values(std::string(to_string(log.op)), meds, 1);
  }
  t2.print(std::cout);
  bench::paper_note("RTT grows with speed for Verizon/T-Mobile; AT&T's "
                    "LTE-anchored RTT is speed-insensitive; mmWave ping "
                    "samples appear only near 0 mph.");
  return 0;
}
