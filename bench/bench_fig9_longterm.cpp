// Fig. 9: per-test (30 s / 20 s) means and fluctuation.
#include "bench_common.h"

#include "analysis/longterm.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  auto cfg = bench::campaign_config(argc, argv);
  bench::print_header("Fig. 9",
                      "Per-test means and within-test fluctuation",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run(cfg);

  std::cout << "Per-test mean (upper row of Fig. 9):\n";
  TextTable t({"Operator", "DL med (Mbps)", "UL med (Mbps)",
               "RTT med (ms)"});
  for (const auto& log : res.logs) {
    t.add_row_values(
        std::string(to_string(log.op)),
        {percentile(analysis::test_means(log.tests,
                                         trip::TestType::DownlinkBulk),
                    50),
         percentile(
             analysis::test_means(log.tests, trip::TestType::UplinkBulk),
             50),
         percentile(analysis::test_means(log.tests, trip::TestType::Ping),
                    50)},
        1);
  }
  t.print(std::cout);
  bench::paper_note("paper medians: DL 30/37/48, UL 13/14/10 Mbps, RTT "
                    "64/82/81 ms for V/T/A.");

  std::cout << "\nWithin-test stddev as % of mean (lower row):\n";
  TextTable t2({"Operator", "DL med %", "UL med %", "RTT med %"});
  for (const auto& log : res.logs) {
    t2.add_row_values(
        std::string(to_string(log.op)),
        {percentile(analysis::test_cv_percent(log.tests,
                                              trip::TestType::DownlinkBulk),
                    50),
         percentile(analysis::test_cv_percent(log.tests,
                                              trip::TestType::UplinkBulk),
                    50),
         percentile(
             analysis::test_cv_percent(log.tests, trip::TestType::Ping),
             50)},
        1);
  }
  t2.print(std::cout);
  bench::paper_note("paper medians: 70/48/52% (DL), 45/52/44% (UL), "
                    "18/29/19% (RTT).");
  return 0;
}
