// Fig. 4: per-technology throughput/RTT while driving; Verizon edge-vs-
// cloud split.
#include "bench_common.h"

#include "analysis/performance.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  auto cfg = bench::campaign_config(argc, argv);
  bench::print_header("Fig. 4",
                      "Per-technology driving performance (and edge vs "
                      "cloud for Verizon)",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run(cfg);

  for (auto test :
       {trip::TestType::DownlinkBulk, trip::TestType::UplinkBulk}) {
    std::cout << "--- " << to_string(test) << " throughput (Mbps) ---\n";
    TextTable t({"Operator", "Tech", "n", "p10", "med", "p75", "p90",
                 "max", "%<2Mbps"});
    for (const auto& log : res.logs) {
      for (radio::Tech tech : radio::kAllTechs) {
        analysis::PerfFilter f;
        f.test = test;
        f.tech = tech;
        const auto v = analysis::tput_samples(log.kpi, f);
        if (v.size() < 20) continue;
        t.add_row({std::string(to_string(log.op)),
                   std::string(to_string(tech)), std::to_string(v.size()),
                   fmt(percentile(v, 10), 1), fmt(percentile(v, 50), 1),
                   fmt(percentile(v, 75), 1), fmt(percentile(v, 90), 1),
                   fmt(percentile(v, 100), 1),
                   fmt(100 * EmpiricalCdf(v).at(2.0), 1)});
      }
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  bench::paper_note("5G > 4G in throughput but every technology has a "
                    "deep low tail; T-Mobile mid-band reaches ~760 Mbps DL "
                    "yet is <2 Mbps ~40% of the time.");

  std::cout << "\n--- RTT by technology (ms) ---\n";
  TextTable tr({"Operator", "Tech", "n", "med", "p90"});
  for (const auto& log : res.logs) {
    for (radio::Tech tech : radio::kAllTechs) {
      analysis::PerfFilter f;
      f.tech = tech;
      f.connected_only = true;
      const auto v = analysis::rtt_samples(log.rtt, f);
      if (v.size() < 20) continue;
      tr.add_row({std::string(to_string(log.op)),
                  std::string(to_string(tech)), std::to_string(v.size()),
                  fmt(percentile(v, 50), 1), fmt(percentile(v, 90), 1)});
    }
  }
  tr.print(std::cout);
  bench::paper_note("mmWave lowest RTT (Verizon), mid-band below 5G-low "
                    "and 4G; LTE-A can beat 5G-low (tput/RTT tradeoff).");

  std::cout << "\n--- Verizon: edge vs cloud server ---\n";
  TextTable te({"Metric", "edge", "cloud"});
  const auto& v = res.for_op(ran::OperatorId::Verizon);
  for (auto test :
       {trip::TestType::DownlinkBulk, trip::TestType::UplinkBulk}) {
    analysis::PerfFilter fe, fc;
    fe.test = fc.test = test;
    fe.server = net::ServerKind::Edge;
    fc.server = net::ServerKind::Cloud;
    te.add_row_values(std::string(to_string(test)) + " med Mbps",
                      {percentile(analysis::tput_samples(v.kpi, fe), 50),
                       percentile(analysis::tput_samples(v.kpi, fc), 50)},
                      1);
  }
  {
    analysis::PerfFilter fe, fc;
    fe.server = net::ServerKind::Edge;
    fc.server = net::ServerKind::Cloud;
    te.add_row_values("RTT med ms",
                      {percentile(analysis::rtt_samples(v.rtt, fe), 50),
                       percentile(analysis::rtt_samples(v.rtt, fc), 50)},
                      1);
  }
  te.print(std::cout);
  bench::paper_note("edge servers boost both throughput and RTT; mmWave "
                    "RTT to an edge stays below ~40 ms (median 18 ms).");
  return 0;
}
