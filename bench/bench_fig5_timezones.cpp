// Fig. 5: throughput CDFs per timezone.
#include "bench_common.h"

#include "analysis/performance.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  auto cfg = bench::campaign_config(argc, argv);
  bench::print_header("Fig. 5", "Throughput by timezone",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run(cfg);

  for (auto test :
       {trip::TestType::DownlinkBulk, trip::TestType::UplinkBulk}) {
    std::cout << "--- " << to_string(test) << " ---\n";
    TextTable t({"Operator", "Pacific med", "Mountain med", "Central med",
                 "Eastern med", "Pacific p75", "Mountain p75",
                 "Central p75", "Eastern p75"});
    for (const auto& log : res.logs) {
      std::vector<double> meds, p75s;
      for (int tz = 0; tz < 4; ++tz) {
        analysis::PerfFilter f;
        f.test = test;
        f.tz = static_cast<TimeZone>(tz);
        const auto v = analysis::tput_samples(log.kpi, f);
        meds.push_back(percentile(v, 50));
        p75s.push_back(percentile(v, 75));
      }
      std::vector<double> row = meds;
      row.insert(row.end(), p75s.begin(), p75s.end());
      t.add_row_values(std::string(to_string(log.op)), row, 1);
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  bench::paper_note("Pacific strongest for nearly all operator/direction "
                    "pairs; Mountain weak for everyone; coverage alone "
                    "does not explain the ranking.");
  return 0;
}
