// Table 3: comparison of driving medians with Ookla's static-user report.
#include "bench_common.h"

#include "analysis/longterm.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  auto cfg = bench::campaign_config(argc, argv);
  bench::print_header("Table 3",
                      "Driving medians vs Ookla Q3 2022 (static users)",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run(cfg);
  const auto ookla = analysis::ookla_q3_2022();

  TextTable t({"Operator", "DL ours", "DL Speedtest", "UL ours",
               "UL Speedtest", "RTT ours", "RTT Speedtest"});
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& log = res.logs[i];
    t.add_row_values(
        std::string(to_string(log.op)),
        {percentile(analysis::test_means(log.tests,
                                         trip::TestType::DownlinkBulk),
                    50),
         ookla[i].dl_mbps,
         percentile(
             analysis::test_means(log.tests, trip::TestType::UplinkBulk),
             50),
         ookla[i].ul_mbps,
         percentile(analysis::test_means(log.tests, trip::TestType::Ping),
                    50),
         ookla[i].rtt_ms},
        1);
  }
  t.print(std::cout);
  bench::paper_note("driving shows much lower DL than the (mostly static) "
                    "Speedtest numbers, slightly higher UL, higher RTT "
                    "(paper: 29.6 vs 58.6 DL for Verizon, etc).");
  return 0;
}
