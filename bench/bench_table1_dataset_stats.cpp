// Table 1: driving dataset statistics.
#include "bench_common.h"

#include "analysis/dataset_stats.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  auto cfg = bench::campaign_config(argc, argv);
  bench::print_header("Table 1", "Driving dataset statistics",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run(cfg);
  const auto st = analysis::dataset_stats(res);

  TextTable t({"Statistic", "Measured", "Paper"});
  t.add_row({"Total distance (km)", fmt(st.total_km, 0), "5711+"});
  t.add_row({"Days", std::to_string(st.days), "8"});
  t.add_row({"States / cities / timezones",
             std::to_string(st.states) + " / " +
                 std::to_string(st.major_cities) + " / " +
                 std::to_string(st.timezones),
             "14 / 10 / 4"});
  t.add_row({"Unique cells V/T/A",
             std::to_string(st.unique_cells[0]) + " / " +
                 std::to_string(st.unique_cells[1]) + " / " +
                 std::to_string(st.unique_cells[2]),
             "3020 / 4038 / 3150"});
  t.add_row({"Handovers V/T/A (logger phones)",
             std::to_string(st.handovers[0]) + " / " +
                 std::to_string(st.handovers[1]) + " / " +
                 std::to_string(st.handovers[2]),
             "2657 / 4119 / 2494"});
  t.add_row({"Cellular data Rx/Tx (GB)",
             fmt(st.rx_gb, 1) + " / " + fmt(st.tx_gb, 1),
             "777+ / 83+ (full campaign)"});
  t.add_row({"Experiment runtime (min, per op)",
             fmt(st.runtime_min[0], 0),
             "5561 (V) 4595 (T) 4541 (A)"});
  t.print(std::cout);
  std::cout << "\nNote: data volume and runtime scale ~1/stride. Our\n"
               "simulated links average a higher DL rate than the 2022\n"
               "testbed, so stride-1 data volume overshoots Table 1.\n";
  return 0;
}
