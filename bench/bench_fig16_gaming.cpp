// Fig. 16 (and Fig. 22): cloud gaming (Steam-Remote-Play-style) QoE.
#include "bench_common.h"

#include "core/stats.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  using apps::AppKind;
  auto cfg = bench::app_campaign_config(argc, argv);
  bench::print_header("Fig. 16 (+22)", "Cloud gaming QoE",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run_apps(cfg);

  TextTable t({"Operator", "runs", "bitrate med", "latency med (ms)",
               "% runs lat>200ms", "drop med %", "drop max %"});
  for (auto op : ran::kAllOperators) {
    std::vector<double> br, lat, drop;
    for (const auto& r : res.for_op(op)) {
      if (r.app != AppKind::Gaming) continue;
      br.push_back(r.gaming_bitrate_mbps);
      lat.push_back(r.gaming_latency_ms);
      drop.push_back(100.0 * r.frame_drop_rate);
    }
    int high = 0;
    for (double l : lat) {
      if (l > 200.0) ++high;
    }
    t.add_row({std::string(to_string(op)), std::to_string(br.size()),
               fmt(percentile(br, 50), 1), fmt(percentile(lat, 50), 1),
               fmt(lat.empty()
                       ? 0.0
                       : 100.0 * high / static_cast<double>(lat.size()),
                   1),
               fmt(percentile(drop, 50), 2), fmt(percentile(drop, 100), 2)});
  }
  t.print(std::cout);
  bench::paper_note("driving bitrate med ~17.5 (V) / 21 (T) / 9 (A) Mbps "
                    "vs 98.5 static; latency >200 ms for ~20% of runs; "
                    "frame drops kept low (med ~1.6%, max ~13%).");

  std::cout << "\nBest static run per operator:\n";
  for (auto op : ran::kAllOperators) {
    const auto& sb = bench::provider().load_or_run_apps_static(cfg, op);
    double best_br = 0.0, best_drop = 1.0;
    for (const auto& r : sb) {
      if (r.app != AppKind::Gaming) continue;
      if (r.gaming_bitrate_mbps > best_br) {
        best_br = r.gaming_bitrate_mbps;
        best_drop = r.frame_drop_rate;
      }
    }
    std::cout << "  " << to_string(op) << ": bitrate " << fmt(best_br, 1)
              << " Mbps, drops " << fmt(100.0 * best_drop, 2) << "%\n";
  }

  // Technology & handover effects.
  std::vector<double> hs_drop, lt_drop, hos, drops;
  for (const auto& r : res.for_op(ran::OperatorId::Verizon)) {
    if (r.app != AppKind::Gaming) continue;
    (r.frac_high_speed_5g > 0.5 ? hs_drop : lt_drop)
        .push_back(100.0 * r.frame_drop_rate);
    hos.push_back(static_cast<double>(r.handovers));
    drops.push_back(r.frame_drop_rate);
  }
  std::cout << "\nVerizon: drop max mostly-HS5G "
            << fmt(percentile(hs_drop, 100), 2) << "% (n=" << hs_drop.size()
            << ") vs mostly-4G/low " << fmt(percentile(lt_drop, 100), 2)
            << "% (n=" << lt_drop.size()
            << "); corr(handovers, drops) = " << fmt(pearson(hos, drops), 2)
            << "\n";
  bench::paper_note("high-speed 5G improves the worst-case drop rate but "
                    "not the typical QoE; handovers uncorrelated.");
  return 0;
}
