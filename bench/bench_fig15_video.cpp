// Fig. 15 (and Fig. 21): 360-degree video streaming QoE.
#include "bench_common.h"

#include "core/stats.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  using apps::AppKind;
  auto cfg = bench::app_campaign_config(argc, argv);
  bench::print_header("Fig. 15 (+21)", "360-degree video streaming QoE",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run_apps(cfg);

  TextTable t({"Operator", "runs", "QoE med", "QoE min", "% runs QoE<0",
               "bitrate med", "rebuffer med %", "rebuffer max %"});
  for (auto op : ran::kAllOperators) {
    std::vector<double> qoe, br, reb;
    for (const auto& r : res.for_op(op)) {
      if (r.app != AppKind::Video) continue;
      qoe.push_back(r.qoe);
      br.push_back(r.avg_bitrate_mbps);
      reb.push_back(100.0 * r.rebuffer_fraction);
    }
    int neg = 0;
    for (double q : qoe) {
      if (q < 0.0) ++neg;
    }
    t.add_row({std::string(to_string(op)), std::to_string(qoe.size()),
               fmt(percentile(qoe, 50), 1), fmt(percentile(qoe, 0), 1),
               fmt(qoe.empty()
                       ? 0.0
                       : 100.0 * neg / static_cast<double>(qoe.size()),
                   1),
               fmt(percentile(br, 50), 1), fmt(percentile(reb, 50), 1),
               fmt(percentile(reb, 100), 1)});
  }
  t.print(std::cout);
  bench::paper_note("driving QoE med -53.75 (best static 96.29 of a "
                    "theoretical 100); ~40% of runs negative; rebuffering "
                    "up to 87% of playback.");

  std::cout << "\nBest static run per operator:\n";
  for (auto op : ran::kAllOperators) {
    const auto& sb = bench::provider().load_or_run_apps_static(cfg, op);
    double best = -1e18;
    for (const auto& r : sb) {
      if (r.app == AppKind::Video) best = std::max(best, r.qoe);
    }
    std::cout << "  " << to_string(op) << ": QoE " << fmt(best, 2) << "\n";
  }

  // Technology & handover effects (Verizon).
  std::vector<double> hs_qoe, lt_qoe, hos, qoes, edge_qoe, cloud_qoe;
  for (const auto& r : res.for_op(ran::OperatorId::Verizon)) {
    if (r.app != AppKind::Video) continue;
    (r.frac_high_speed_5g > 0.5 ? hs_qoe : lt_qoe).push_back(r.qoe);
    (r.server == net::ServerKind::Edge ? edge_qoe : cloud_qoe)
        .push_back(r.qoe);
    hos.push_back(static_cast<double>(r.handovers));
    qoes.push_back(r.qoe);
  }
  std::cout << "\nVerizon splits: QoE med mostly-HS5G "
            << fmt(percentile(hs_qoe, 50), 1) << " (n=" << hs_qoe.size()
            << ") vs mostly-4G/low " << fmt(percentile(lt_qoe, 50), 1)
            << " (n=" << lt_qoe.size() << "); edge "
            << fmt(percentile(edge_qoe, 50), 1) << " vs cloud "
            << fmt(percentile(cloud_qoe, 50), 1)
            << "; corr(handovers, QoE) = " << fmt(pearson(hos, qoes), 2)
            << "\n";
  bench::paper_note("technology matters more for video than for AR/CAV "
                    "(bandwidth-bound, buffered); edge helps; handovers "
                    "do not decide QoE.");
  return 0;
}
