// Micro-benchmarks of the simulator's hot paths (google-benchmark).
#include <benchmark/benchmark.h>

#include "net/tcp_cubic.h"
#include "radio/link_budget.h"
#include "radio/mcs.h"
#include "radio/phy_rate.h"
#include "ran/ue.h"
#include "trip/region.h"
#include "trip/route.h"

namespace {

using namespace wheels;

void BM_PhyRateChain(benchmark::State& state) {
  double sinr = -5.0;
  for (auto _ : state) {
    sinr += 0.37;
    if (sinr > 35.0) sinr = -5.0;
    auto r = radio::compute_phy_rate(radio::Tech::NR_MID,
                                     radio::Direction::Downlink, Db{sinr},
                                     2, 0.5);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PhyRateChain);

void BM_LinkBudget(benchmark::State& state) {
  radio::ChannelState ch;
  double d = 100.0;
  for (auto _ : state) {
    d = d > 3'000.0 ? 100.0 : d + 13.0;
    auto s = radio::sinr_downlink(radio::Tech::LTE_A,
                                  radio::Environment::Rural, Meters{d}, ch,
                                  Db{8.0});
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_LinkBudget);

void BM_CubicStep(benchmark::State& state) {
  net::CubicFlow flow(Rng(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flow.step(Millis{20.0}, Mbps{50.0}, Millis{60.0}));
  }
}
BENCHMARK(BM_CubicStep);

void BM_UeStep(benchmark::State& state) {
  const auto route = trip::Route::cross_country();
  static const ran::Corridor corridor =
      trip::build_corridor(route, Rng(2));
  static const ran::Deployment dep = ran::Deployment::generate(
      corridor, ran::operator_profile(ran::OperatorId::TMobile), Rng(3));
  ran::UeSimulator ue(corridor, dep,
                      ran::operator_profile(ran::OperatorId::TMobile),
                      Rng(4), ran::TrafficProfile::BackloggedDl);
  SimTime t{0.0};
  Meters pos{0.0};
  for (auto _ : state) {
    t += Millis{20.0};
    pos += Meters{0.6};
    if (pos.value > corridor.length().value - 1'000.0) pos = Meters{0.0};
    benchmark::DoNotOptimize(ue.step(t, pos, Mph{65.0}, Millis{20.0}));
  }
}
BENCHMARK(BM_UeStep);

void BM_DeploymentNearestCell(benchmark::State& state) {
  const auto route = trip::Route::cross_country();
  static const ran::Corridor corridor =
      trip::build_corridor(route, Rng(5));
  static const ran::Deployment dep = ran::Deployment::generate(
      corridor, ran::operator_profile(ran::OperatorId::Verizon), Rng(6));
  double pos = 0.0;
  for (auto _ : state) {
    pos = pos > corridor.length().value ? 0.0 : pos + 313.0;
    benchmark::DoNotOptimize(
        dep.nearest_cell(radio::Tech::LTE_A, Meters{pos}));
  }
}
BENCHMARK(BM_DeploymentNearestCell);

}  // namespace

BENCHMARK_MAIN();
