// Fig. 10: per-test performance vs the fraction of time the UE spent on
// high-speed 5G (mid-band or mmWave).
#include "bench_common.h"

#include "analysis/longterm.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  auto cfg = bench::campaign_config(argc, argv);
  bench::print_header("Fig. 10",
                      "Per-test performance vs high-speed-5G time share",
                      cfg.cycle_stride);

  const auto& res = bench::provider().load_or_run(cfg);

  for (auto test : {trip::TestType::DownlinkBulk,
                    trip::TestType::UplinkBulk, trip::TestType::Ping}) {
    std::cout << "--- " << to_string(test)
              << (test == trip::TestType::Ping ? " (ms)" : " (Mbps)")
              << " ---\n";
    TextTable t({"Operator", "share 0-25%", "25-50%", "50-75%", "75-100%",
                 "n per bucket"});
    for (const auto& log : res.logs) {
      const auto buckets = analysis::by_hs5g_share(log.tests, test, 4);
      std::vector<double> meds;
      std::string counts;
      for (const auto& b : buckets) {
        meds.push_back(b.median);
        counts += std::to_string(b.count) + " ";
      }
      auto row = meds;
      t.add_row({std::string(to_string(log.op)), fmt(row[0], 1),
                 fmt(row[1], 1), fmt(row[2], 1), fmt(row[3], 1), counts});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  bench::paper_note("only T-Mobile's mid-band lifts the DL medians with "
                    "share; elsewhere performance is similar regardless of "
                    "high-speed-5G time (poor performance even under full "
                    "coverage).");
  return 0;
}
