// Fig. 3: overall throughput and RTT, static city baselines vs driving.
#include "bench_common.h"

#include "analysis/performance.h"
#include "core/table.h"

int main(int argc, char** argv) {
  using namespace wheels;
  auto cfg = bench::campaign_config(argc, argv);
  bench::print_header("Fig. 3",
                      "Static vs driving throughput and RTT CDFs",
                      cfg.cycle_stride);
  bench::warm_campaign_and_baselines(cfg);

  std::cout << "(a) Static (best per-city 5G sites)\n";
  TextTable ta({"Operator", "DL med", "DL max", "UL med", "UL max",
                "RTT med", "RTT min"});
  for (auto op : ran::kAllOperators) {
    const auto& sb = bench::provider().load_or_run_static(cfg, op);
    ta.add_row_values(
        std::string(to_string(op)),
        {percentile(sb.dl_tput_mbps, 50), percentile(sb.dl_tput_mbps, 100),
         percentile(sb.ul_tput_mbps, 50), percentile(sb.ul_tput_mbps, 100),
         percentile(sb.rtt_ms, 50), percentile(sb.rtt_ms, 0)},
        1);
  }
  ta.print(std::cout);
  bench::paper_note("static DL med 1511/311/710 (V/T/A), max up to "
                    "3415/812/2043; UL med 167/39/62, max 350/137/215; "
                    "RTT 8..150+ ms.");

  const auto& res = bench::provider().load_or_run(cfg);
  std::cout << "\n(b) Driving (all 500 ms samples)\n";
  TextTable tb({"Operator", "DL med", "DL p75", "DL max", "UL med",
                "UL p75", "RTT med", "RTT max", "%DL<5Mbps", "%UL<5Mbps"});
  for (const auto& log : res.logs) {
    analysis::PerfFilter dl, ul;
    dl.test = trip::TestType::DownlinkBulk;
    ul.test = trip::TestType::UplinkBulk;
    const auto dls = analysis::tput_samples(log.kpi, dl);
    const auto uls = analysis::tput_samples(log.kpi, ul);
    const auto rtts = analysis::rtt_samples(log.rtt, {});
    tb.add_row_values(
        std::string(to_string(log.op)),
        {percentile(dls, 50), percentile(dls, 75), percentile(dls, 100),
         percentile(uls, 50), percentile(uls, 75), percentile(rtts, 50),
         percentile(rtts, 100), 100 * EmpiricalCdf(dls).at(5.0),
         100 * EmpiricalCdf(uls).at(5.0)},
        1);
  }
  tb.print(std::cout);
  bench::paper_note("driving DL med 6-34 / p75 47-74 Mbps; UL med 6-9 / "
                    "p75 14-24; ~35% of samples < 5 Mbps; RTT med "
                    "60-76 ms with multi-second maxima.");

  std::cout << "\nDriving DL CDF curves:\n";
  for (const auto& log : res.logs) {
    analysis::PerfFilter dl;
    dl.test = trip::TestType::DownlinkBulk;
    print_cdf(std::cout, std::string(to_string(log.op)) + " DL (Mbps)",
              EmpiricalCdf(analysis::tput_samples(log.kpi, dl)), 11);
  }
  return 0;
}
