// Table 5: object-detection accuracy (mAP) per E2E latency bin, with and
// without frame compression.
#include <iostream>

#include "apps/accuracy.h"
#include "core/table.h"

int main() {
  using namespace wheels;
  std::cout << "=== Table 5: mAP vs E2E latency (Argoverse + Faster "
               "R-CNN, local tracking) ===\n\n";
  const Millis frame{1'000.0 / 30.0};
  TextTable t({"E2E (frame times)", "mAP w/o compression",
               "mAP w/ compression"});
  for (int bin = 0; bin < 30; ++bin) {
    const Millis e2e{(bin + 0.5) * frame.value};
    t.add_row({std::to_string(bin) + "-" + std::to_string(bin + 1),
               fmt(apps::detection_map(e2e, frame, false), 2),
               fmt(apps::detection_map(e2e, frame, true), 2)});
  }
  t.print(std::cout);
  std::cout << "\nBeyond the table the model decays toward a floor:\n";
  for (double bins : {35.0, 50.0, 100.0}) {
    std::cout << "  " << bins << " frame times -> "
              << fmt(apps::detection_map(Millis{bins * frame.value}, frame,
                                         true),
                     2)
              << " mAP\n";
  }
  return 0;
}
