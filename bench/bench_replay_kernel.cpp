// A/B microbenchmark of the batched replay kernel (DESIGN.md "Replay
// kernel"): runs the same campaign twice from scratch -- once on the
// original per-slot scalar path, once on the structure-of-arrays kernel --
// and reports the replay-phase speedup. The two runs must produce
// byte-identical datasets (the kernel is an execution knob, not a model
// change); the bench exits non-zero if they ever diverge, so the CI smoke
// stage doubles as an equivalence check.
//
// Usage: bench_replay_kernel [stride]   (default stride 64)
// With WHEELS_BENCH_JSON=1 a machine-readable summary line lands on
// stderr; stdout carries only the human table.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "bench_common.h"
#include "dataset/serialize.h"
#include "obs/metrics.h"
#include "obs/runtime.h"
#include "trip/campaign.h"

namespace {

using namespace wheels;

long long counter_value(std::string_view metric) {
  const obs::Snapshot snap = obs::Registry::global().snapshot();
  const obs::MetricValue* mv = snap.find(metric);
  return mv != nullptr ? static_cast<long long>(mv->value) : 0;
}

// Simulate one fresh campaign with the kernel forced on or off; returns
// the encoded dataset bytes and the replay-phase wall time in ms (delta of
// the cumulative campaign.replay_us counter, so back-to-back runs in one
// process do not double-count).
std::string run_once(const trip::CampaignConfig& cfg, bool kernel,
                     long long& replay_ms) {
  const long long before = counter_value("campaign.replay_us");
  trip::Campaign campaign(cfg);
  campaign.set_replay_kernel(kernel);
  const std::string bytes = dataset::encode(campaign.run());
  replay_ms = (counter_value("campaign.replay_us") - before) / 1000;
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  obs::init_from_env();
  const int stride = bench::stride_from(argc, argv, 64);
  trip::CampaignConfig cfg;
  cfg.seed = 42;
  cfg.cycle_stride = stride;
  const int jobs = resolve_jobs();

  std::cout << "=== bench_replay_kernel: scalar vs batched replay ===\n"
            << "(campaign stride " << stride << ", jobs " << jobs << ")\n\n";

  long long scalar_ms = 0;
  long long kernel_ms = 0;
  const std::string scalar_bytes = run_once(cfg, /*kernel=*/false, scalar_ms);
  const std::string kernel_bytes = run_once(cfg, /*kernel=*/true, kernel_ms);

  const bool bytes_equal = scalar_bytes == kernel_bytes;
  const double speedup = kernel_ms > 0 ? static_cast<double>(scalar_ms) /
                                             static_cast<double>(kernel_ms)
                                       : 0.0;

  std::cout << "  scalar replay:  " << scalar_ms << " ms\n"
            << "  batched replay: " << kernel_ms << " ms\n";
  std::printf("  speedup:        %.2fx\n", speedup);
  std::cout << "  dataset bytes:  "
            << (bytes_equal ? "identical" : "DIVERGED") << " ("
            << scalar_bytes.size() << " bytes)\n";

  if (const char* env = std::getenv("WHEELS_BENCH_JSON");
      env != nullptr && std::string_view(env) == "1") {
    std::fprintf(stderr,
                 "{\"bench\": \"replay_kernel\", \"stride\": %d, "
                 "\"jobs\": %d, \"scalar_replay_ms\": %lld, "
                 "\"kernel_replay_ms\": %lld, \"speedup\": %.3f, "
                 "\"bytes_equal\": %s}\n",
                 stride, jobs, scalar_ms, kernel_ms, speedup,
                 bytes_equal ? "true" : "false");
  }

  if (!bytes_equal) {
    std::cerr << "bench_replay_kernel: scalar and batched datasets differ\n";
    return 1;
  }
  return 0;
}
