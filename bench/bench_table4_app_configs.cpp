// Table 4: configuration constants of the AR and CAV applications.
#include <iostream>

#include "apps/offload.h"
#include "core/table.h"

int main() {
  using namespace wheels;
  std::cout << "=== Table 4: AR & CAV application configuration ===\n\n";
  const auto ar = apps::ar_config(true);
  const auto cav = apps::cav_config(true);
  TextTable t({"Parameter", "AR", "CAV", "Paper (AR/CAV)"});
  t.add_row({"Frames per second", fmt(ar.fps, 0), fmt(cav.fps, 0),
             "30 / 10"});
  t.add_row({"Frame size raw (KB)", fmt(ar.frame_raw_kb, 0),
             fmt(cav.frame_raw_kb, 0), "450 / 2000"});
  t.add_row({"Frame size compressed (KB)", fmt(ar.frame_compressed_kb, 0),
             fmt(cav.frame_compressed_kb, 0), "50 / 38"});
  t.add_row({"Compression time (ms)", fmt(ar.compression_time.value, 1),
             fmt(cav.compression_time.value, 1), "6.3 / 34.8"});
  t.add_row({"Server inference time (ms)", fmt(ar.inference_time.value, 1),
             fmt(cav.inference_time.value, 1), "24.9 / 44.0"});
  t.add_row({"Decompression time (ms)",
             fmt(ar.decompression_time.value, 1),
             fmt(cav.decompression_time.value, 1), "1.0 / 19.1"});
  t.add_row({"Run duration (s)", fmt(ar.run_duration.seconds(), 0),
             fmt(cav.run_duration.seconds(), 0), "20 / 20"});
  t.print(std::cout);
  return 0;
}
