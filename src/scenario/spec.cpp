#include "scenario/spec.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "scenario/json.h"

namespace wheels::scenario {
namespace {

// Domain tag "whl-scen": scenario hashes live in their own namespace so a
// spec hash can never collide with a campaign/app fingerprint input.
constexpr std::uint64_t kTagScenario = 0x77686C2D7363656EULL;

// Local FNV-1a (the dataset layer sits above scenario, so its hasher is
// not reachable from here; same constants, same byte order).
class Hasher {
 public:
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<unsigned char>(v >> (8 * i)));
    }
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void i32(std::int32_t v) { u64(static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(v))); }
  void boolean(bool v) { byte(v ? 1 : 0); }
  void str(std::string_view s) {
    u64(s.size());
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }
  [[nodiscard]] std::uint64_t digest() const { return state_; }

 private:
  void byte(unsigned char b) {
    state_ ^= b;
    state_ *= 0x100000001B3ULL;
  }
  std::uint64_t state_ = 0xCBF29CE484222325ULL;
};

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("scenario: " + what);
}

// ---------------------------------------------------------------------------
// JSON -> spec

double as_number(const JsonValue& v, const std::string& path) {
  if (v.kind != JsonValue::Kind::Number) bad(path + " must be a number");
  return v.number;
}

int as_int(const JsonValue& v, const std::string& path) {
  const double d = as_number(v, path);
  const double r = std::floor(d);
  if (r != d || d < -2147483648.0 || d > 2147483647.0) {
    bad(path + " must be an integer");
  }
  return static_cast<int>(r);
}

std::uint64_t as_u64(const JsonValue& v, const std::string& path) {
  const double d = as_number(v, path);
  if (std::floor(d) != d || d < 0.0 || d > 9007199254740992.0) {
    bad(path + " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

bool as_bool(const JsonValue& v, const std::string& path) {
  if (v.kind != JsonValue::Kind::Bool) bad(path + " must be a boolean");
  return v.boolean;
}

const std::string& as_string(const JsonValue& v, const std::string& path) {
  if (v.kind != JsonValue::Kind::String) bad(path + " must be a string");
  return v.string;
}

void require_object(const JsonValue& v, const std::string& path) {
  if (v.kind != JsonValue::Kind::Object) bad(path + " must be an object");
}

void apply_timing(TimingSpec& t, const JsonValue& v) {
  require_object(v, "timing");
  for (const auto& [key, val] : v.object) {
    const std::string path = "timing." + key;
    if (key == "slot_ms") {
      t.slot_ms = as_number(val, path);
    } else if (key == "tput_test_ms") {
      t.tput_test_ms = as_number(val, path);
    } else if (key == "rtt_test_ms") {
      t.rtt_test_ms = as_number(val, path);
    } else if (key == "gap_ms") {
      t.gap_ms = as_number(val, path);
    } else if (key == "ping_interval_ms") {
      t.ping_interval_ms = as_number(val, path);
    } else if (key == "sample_window_ms") {
      t.sample_window_ms = as_number(val, path);
    } else {
      bad("unknown key " + path);
    }
  }
}

void apply_drive(DriveSpec& d, const JsonValue& v) {
  require_object(v, "drive");
  for (const auto& [key, val] : v.object) {
    const std::string path = "drive." + key;
    if (key == "hours_per_day") {
      d.hours_per_day = as_number(val, path);
    } else if (key == "start_hour_local") {
      d.start_hour_local = as_int(val, path);
    } else {
      bad("unknown key " + path);
    }
  }
}

void apply_speed(SpeedSpec& s, const JsonValue& v) {
  require_object(v, "speed");
  for (const auto& [key, val] : v.object) {
    const std::string path = "speed." + key;
    if (key == "urban_mph") {
      s.urban_mph = as_number(val, path);
    } else if (key == "suburban_mph") {
      s.suburban_mph = as_number(val, path);
    } else if (key == "rural_mph") {
      s.rural_mph = as_number(val, path);
    } else if (key == "max_mph") {
      s.max_mph = as_number(val, path);
    } else {
      bad("unknown key " + path);
    }
  }
}

WaypointSpec parse_waypoint(const JsonValue& v, const std::string& path) {
  require_object(v, path);
  WaypointSpec w;
  bool have_name = false, have_lat = false, have_lon = false;
  for (const auto& [key, val] : v.object) {
    const std::string kp = path + "." + key;
    if (key == "name") {
      w.name = as_string(val, kp);
      have_name = true;
    } else if (key == "lat") {
      w.lat = as_number(val, kp);
      have_lat = true;
    } else if (key == "lon") {
      w.lon = as_number(val, kp);
      have_lon = true;
    } else if (key == "edge_server") {
      w.edge_server = as_bool(val, kp);
    } else {
      bad("unknown key " + kp);
    }
  }
  if (!have_name || !have_lat || !have_lon) {
    bad(path + " requires name, lat, and lon");
  }
  return w;
}

void apply_route(RouteSpec& r, const JsonValue& v) {
  require_object(v, "route");
  for (const auto& [key, val] : v.object) {
    const std::string path = "route." + key;
    if (key == "road_factor") {
      r.road_factor = as_number(val, path);
    } else if (key == "waypoints") {
      if (val.kind != JsonValue::Kind::Array) bad(path + " must be an array");
      r.waypoints.clear();
      for (std::size_t i = 0; i < val.array.size(); ++i) {
        r.waypoints.push_back(parse_waypoint(
            val.array[i], path + "[" + std::to_string(i) + "]"));
      }
    } else {
      bad("unknown key " + path);
    }
  }
}

void apply_promotion(PromotionSpec& p, const JsonValue& v,
                     const std::string& path) {
  require_object(v, path);
  for (const auto& [key, val] : v.object) {
    const std::string kp = path + "." + key;
    if (key == "hs5g_given_dl") {
      p.hs5g_given_dl = as_number(val, kp);
    } else if (key == "hs5g_given_ul") {
      p.hs5g_given_ul = as_number(val, kp);
    } else if (key == "hs5g_given_interactive") {
      p.hs5g_given_interactive = as_number(val, kp);
    } else if (key == "low5g_given_traffic") {
      p.low5g_given_traffic = as_number(val, kp);
    } else if (key == "any5g_given_idle") {
      p.any5g_given_idle = as_number(val, kp);
    } else {
      bad("unknown key " + kp);
    }
  }
}

OperatorSpec parse_operator(const JsonValue& v, const std::string& path) {
  require_object(v, path);
  OperatorSpec op;
  bool have_name = false, have_cal = false;
  for (const auto& [key, val] : v.object) {
    const std::string kp = path + "." + key;
    if (key == "name") {
      op.name = as_string(val, kp);
      have_name = true;
    } else if (key == "calibration") {
      op.calibration = as_string(val, kp);
      have_cal = true;
    } else if (key == "promotion") {
      apply_promotion(op.promotion, val, kp);
    } else if (key == "availability_scale") {
      op.availability_scale = as_number(val, kp);
    } else if (key == "load_scale") {
      op.load_scale = as_number(val, kp);
    } else {
      bad("unknown key " + kp);
    }
  }
  if (!have_name || !have_cal) bad(path + " requires name and calibration");
  return op;
}

void apply_band(radio::BandProfile& b, const JsonValue& v,
                const std::string& path) {
  require_object(v, path);
  for (const auto& [key, val] : v.object) {
    const std::string kp = path + "." + key;
    if (key == "carrier_mhz") {
      b.carrier = MHz{as_number(val, kp)};
    } else if (key == "cc_bandwidth_dl_mhz") {
      b.cc_bandwidth_dl = MHz{as_number(val, kp)};
    } else if (key == "cc_bandwidth_ul_mhz") {
      b.cc_bandwidth_ul = MHz{as_number(val, kp)};
    } else if (key == "max_cc_dl") {
      b.max_cc_dl = as_int(val, kp);
    } else if (key == "max_cc_ul") {
      b.max_cc_ul = as_int(val, kp);
    } else if (key == "mimo_layers_dl") {
      b.mimo_layers_dl = as_int(val, kp);
    } else if (key == "mimo_layers_ul") {
      b.mimo_layers_ul = as_int(val, kp);
    } else if (key == "tx_power_dl_dbm") {
      b.tx_power_dl = Dbm{as_number(val, kp)};
    } else if (key == "tx_power_ul_dbm") {
      b.tx_power_ul = Dbm{as_number(val, kp)};
    } else if (key == "antenna_gain_dl_db") {
      b.antenna_gain_dl = Db{as_number(val, kp)};
    } else if (key == "typical_range_m") {
      b.typical_range = Meters{as_number(val, kp)};
    } else {
      bad("unknown key " + kp);
    }
  }
}

void apply_bands(radio::BandPlan& plan, const JsonValue& v) {
  require_object(v, "bands");
  for (const auto& [key, val] : v.object) {
    bool known = false;
    for (const radio::Tech tech : radio::kAllTechs) {
      if (key == radio::to_string(tech)) {
        apply_band(plan.profile(tech), val, "bands." + key);
        known = true;
        break;
      }
    }
    if (!known) bad("unknown band \"" + key + "\" in bands");
  }
}

void apply_regime(LoadRegimeSpec& r, const JsonValue& v) {
  require_object(v, "load_regime");
  for (const auto& [key, val] : v.object) {
    const std::string path = "load_regime." + key;
    if (key == "night") {
      r.night = as_number(val, path);
    } else if (key == "morning") {
      r.morning = as_number(val, path);
    } else if (key == "afternoon") {
      r.afternoon = as_number(val, path);
    } else if (key == "evening") {
      r.evening = as_number(val, path);
    } else {
      bad("unknown key " + path);
    }
  }
}

void apply_apps(AppMixSpec& a, const JsonValue& v) {
  require_object(v, "apps");
  for (const auto& [key, val] : v.object) {
    const std::string path = "apps." + key;
    if (key == "ar") {
      a.ar = as_bool(val, path);
    } else if (key == "cav") {
      a.cav = as_bool(val, path);
    } else if (key == "video") {
      a.video = as_bool(val, path);
    } else if (key == "gaming") {
      a.gaming = as_bool(val, path);
    } else {
      bad("unknown key " + path);
    }
  }
}

// ---------------------------------------------------------------------------
// spec -> JSON

// Shortest representation that round-trips exactly: try %.15g/%.16g, fall
// back to %.17g.
std::string fmt_double(double v) {
  char buf[64];
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (std::bit_cast<std::uint64_t>(back) ==
        std::bit_cast<std::uint64_t>(v)) {
      break;
    }
  }
  return buf;
}

class JsonWriter {
 public:
  void open(const std::string& key) {
    field_key(key);
    out_ += "{";
    first_ = true;
  }
  void open_root() {
    out_ += "{";
    first_ = true;
  }
  void close() {
    out_ += "}";
    first_ = false;
  }
  void open_array(const std::string& key) {
    field_key(key);
    out_ += "[";
    first_ = true;
  }
  void close_array() {
    out_ += "]";
    first_ = false;
  }
  void open_element() {
    sep();
    out_ += "{";
    first_ = true;
  }
  void str(const std::string& key, std::string_view v) {
    field_key(key);
    out_ += json_quote(v);
  }
  void num(const std::string& key, double v) {
    field_key(key);
    out_ += fmt_double(v);
  }
  void integer(const std::string& key, long long v) {
    field_key(key);
    out_ += std::to_string(v);
  }
  void boolean(const std::string& key, bool v) {
    field_key(key);
    out_ += v ? "true" : "false";
  }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void sep() {
    if (!first_) out_ += ",";
    first_ = false;
  }
  void field_key(const std::string& key) {
    sep();
    out_ += json_quote(key);
    out_ += ":";
  }
  std::string out_;
  bool first_ = true;
};

void write_promotion(JsonWriter& w, const PromotionSpec& p) {
  // NaN means "inherit" and has no JSON spelling: dump only overridden
  // fields (absence == inherit, so the round-trip is exact).
  w.open("promotion");
  if (!std::isnan(p.hs5g_given_dl)) w.num("hs5g_given_dl", p.hs5g_given_dl);
  if (!std::isnan(p.hs5g_given_ul)) w.num("hs5g_given_ul", p.hs5g_given_ul);
  if (!std::isnan(p.hs5g_given_interactive)) {
    w.num("hs5g_given_interactive", p.hs5g_given_interactive);
  }
  if (!std::isnan(p.low5g_given_traffic)) {
    w.num("low5g_given_traffic", p.low5g_given_traffic);
  }
  if (!std::isnan(p.any5g_given_idle)) {
    w.num("any5g_given_idle", p.any5g_given_idle);
  }
  w.close();
}

// ---------------------------------------------------------------------------
// built-in library

OperatorSpec make_operator(std::string name, std::string calibration) {
  OperatorSpec op;
  op.name = std::move(name);
  op.calibration = std::move(calibration);
  return op;
}

std::vector<OperatorSpec> paper_roster() {
  return {make_operator("Verizon", "verizon"),
          make_operator("T-Mobile", "tmobile"),
          make_operator("AT&T", "att")};
}

ScenarioSpec make_urban_loop() {
  ScenarioSpec s = paper_default();
  s.name = "urban-loop";
  s.description =
      "Short Los Angeles metro loop: dense urban driving, strong diurnal "
      "load swings, low speeds.";
  s.route.waypoints = {
      {"Los Angeles", 34.05, -118.24, true},
      {"Santa Monica", 34.02, -118.49, false},
      {"Long Beach", 33.77, -118.19, false},
      {"Pasadena", 34.15, -118.14, false},
      {"Hollywood", 34.10, -118.33, false},
  };
  s.drive.hours_per_day = 6.0;
  s.speed = SpeedSpec{12.0, 30.0, 55.0, 65.0};
  s.load_regime = LoadRegimeSpec{0.6, 1.3, 1.1, 1.25};
  return s;
}

ScenarioSpec make_commuter_corridor() {
  ScenarioSpec s = paper_default();
  s.name = "commuter-corridor";
  s.description =
      "LA -> Barstow -> Las Vegas commuter run with rush-hour load peaks.";
  s.route.waypoints = {
      {"Los Angeles", 34.05, -118.24, true},
      {"Barstow", 34.90, -117.02, false},
      {"Las Vegas", 36.17, -115.14, true},
  };
  s.drive.hours_per_day = 5.0;
  s.load_regime = LoadRegimeSpec{0.5, 1.4, 1.0, 1.3};
  return s;
}

ScenarioSpec make_highway_convoy() {
  ScenarioSpec s = paper_default();
  s.name = "highway-convoy";
  s.description =
      "Denver -> Omaha -> Chicago interstate convoy: sustained high speed, "
      "CAV offload and cloud gaming only.";
  s.route.waypoints = {
      {"Denver", 39.74, -104.99, true},
      {"Omaha", 41.26, -95.93, false},
      {"Chicago", 41.88, -87.63, true},
  };
  s.drive.hours_per_day = 10.0;
  s.speed.rural_mph = 75.0;
  s.speed.max_mph = 80.0;
  s.apps = AppMixSpec{false, true, false, true};
  return s;
}

ScenarioSpec make_eu_band_plan() {
  ScenarioSpec s = paper_default();
  s.name = "eu-band-plan";
  s.description =
      "European carrier frequencies (B3/B7 LTE, n78 mid-band, n258 mmWave) "
      "on a short desert corridor.";
  s.route.waypoints = {
      {"Los Angeles", 34.05, -118.24, true},
      {"Las Vegas", 36.17, -115.14, true},
  };
  s.operators = {make_operator("EU-North", "verizon"),
                 make_operator("EU-Central", "tmobile"),
                 make_operator("EU-South", "att")};
  s.bands.profile(radio::Tech::LTE).carrier = MHz{1800.0};
  s.bands.profile(radio::Tech::LTE_A).carrier = MHz{2600.0};
  s.bands.profile(radio::Tech::NR_MID).carrier = MHz{3600.0};
  s.bands.profile(radio::Tech::NR_MID).cc_bandwidth_dl = MHz{100.0};
  s.bands.profile(radio::Tech::NR_MID).cc_bandwidth_ul = MHz{100.0};
  s.bands.profile(radio::Tech::NR_MMWAVE).carrier = MHz{26000.0};
  return s;
}

ScenarioSpec make_degraded_coverage_storm() {
  ScenarioSpec s = paper_default();
  s.name = "degraded-coverage-storm";
  s.description =
      "Severe-weather corridor: coverage availability cut, cells loaded, "
      "slow cautious driving.";
  s.route.waypoints = {
      {"Los Angeles", 34.05, -118.24, true},
      {"Las Vegas", 36.17, -115.14, true},
      {"Salt Lake City", 40.76, -111.89, false},
  };
  for (OperatorSpec& op : s.operators) {
    op.availability_scale = 0.55;
    op.load_scale = 1.25;
  }
  s.speed = SpeedSpec{10.0, 25.0, 45.0, 55.0};
  s.load_regime = LoadRegimeSpec{1.1, 1.2, 1.3, 1.2};
  return s;
}

}  // namespace

double inherit() { return std::numeric_limits<double>::quiet_NaN(); }

PromotionSpec::PromotionSpec()
    : hs5g_given_dl(inherit()),
      hs5g_given_ul(inherit()),
      hs5g_given_interactive(inherit()),
      low5g_given_traffic(inherit()),
      any5g_given_idle(inherit()) {}

ScenarioSpec paper_default() {
  ScenarioSpec s;
  s.name = "paper-default";
  s.description =
      "The study's LA -> Boston cross-country drive: 2022-era US band "
      "plans, three-operator roster, eleven-hour driving days.";
  s.route.waypoints = {
      {"Los Angeles", 34.05, -118.24, true},
      {"Las Vegas", 36.17, -115.14, true},
      {"Salt Lake City", 40.76, -111.89, false},
      {"Denver", 39.74, -104.99, true},
      {"Omaha", 41.26, -95.93, false},
      {"Chicago", 41.88, -87.63, true},
      {"Indianapolis", 39.77, -86.16, false},
      {"Cleveland", 41.50, -81.69, false},
      {"Rochester", 43.16, -77.61, false},
      {"Boston", 42.36, -71.06, true},
  };
  s.operators = paper_roster();
  return s;
}

std::vector<ScenarioSpec> builtin_scenarios() {
  std::vector<ScenarioSpec> all;
  all.push_back(paper_default());
  all.push_back(make_urban_loop());
  all.push_back(make_commuter_corridor());
  all.push_back(make_highway_convoy());
  all.push_back(make_eu_band_plan());
  all.push_back(make_degraded_coverage_storm());
  return all;
}

void validate(const ScenarioSpec& spec) {
  if (spec.name.empty()) bad("name must not be empty");
  for (const char c : spec.name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-';
    if (!ok) bad("name must match [a-z0-9-]+: \"" + spec.name + "\"");
  }

  const TimingSpec& t = spec.timing;
  const std::pair<const char*, double> timings[] = {
      {"timing.slot_ms", t.slot_ms},
      {"timing.tput_test_ms", t.tput_test_ms},
      {"timing.rtt_test_ms", t.rtt_test_ms},
      {"timing.gap_ms", t.gap_ms},
      {"timing.ping_interval_ms", t.ping_interval_ms},
      {"timing.sample_window_ms", t.sample_window_ms}};
  for (const auto& [label, v] : timings) {
    if (!(v > 0.0) || !std::isfinite(v)) {
      bad(std::string(label) + " must be a positive number");
    }
  }

  if (!(spec.drive.hours_per_day > 0.0) || spec.drive.hours_per_day > 24.0) {
    bad("drive.hours_per_day must be in (0, 24]");
  }
  if (spec.drive.start_hour_local < 0 || spec.drive.start_hour_local > 23) {
    bad("drive.start_hour_local must be in [0, 23]");
  }

  const SpeedSpec& sp = spec.speed;
  if (!(sp.max_mph > 0.0) || !std::isfinite(sp.max_mph)) {
    bad("speed.max_mph must be a positive number");
  }
  const std::pair<const char*, double> targets[] = {
      {"speed.urban_mph", sp.urban_mph},
      {"speed.suburban_mph", sp.suburban_mph},
      {"speed.rural_mph", sp.rural_mph}};
  for (const auto& [label, v] : targets) {
    if (!(v > 0.0) || !std::isfinite(v)) {
      bad(std::string(label) + " must be a positive number");
    }
    if (v > sp.max_mph) {
      bad(std::string(label) + " exceeds speed.max_mph");
    }
  }

  if (!(spec.route.road_factor > 0.0) ||
      !std::isfinite(spec.route.road_factor)) {
    bad("route.road_factor must be a positive number");
  }
  if (spec.route.waypoints.size() < 2) {
    bad("route needs at least two waypoints");
  }
  bool any_edge = false;
  for (std::size_t i = 0; i < spec.route.waypoints.size(); ++i) {
    const WaypointSpec& w = spec.route.waypoints[i];
    const std::string at = "route.waypoints[" + std::to_string(i) + "]";
    if (w.name.empty()) bad(at + ".name must not be empty");
    if (w.lat < -90.0 || w.lat > 90.0) bad(at + ".lat out of [-90, 90]");
    if (w.lon < -180.0 || w.lon > 180.0) bad(at + ".lon out of [-180, 180]");
    for (std::size_t j = 0; j < i; ++j) {
      if (spec.route.waypoints[j].name == w.name) {
        bad("duplicate waypoint name \"" + w.name + "\"");
      }
    }
    any_edge = any_edge || w.edge_server;
  }
  if (!any_edge) bad("route needs at least one edge_server waypoint");

  if (spec.operators.size() != 3) {
    bad("operators must list exactly 3 entries (one per result slot)");
  }
  for (std::size_t i = 0; i < spec.operators.size(); ++i) {
    const OperatorSpec& op = spec.operators[i];
    const std::string at = "operators[" + std::to_string(i) + "]";
    if (op.name.empty()) bad(at + ".name must not be empty");
    for (std::size_t j = 0; j < i; ++j) {
      if (spec.operators[j].name == op.name) {
        bad("duplicate operator name \"" + op.name + "\"");
      }
    }
    if (op.calibration != "verizon" && op.calibration != "tmobile" &&
        op.calibration != "att") {
      bad(at + ".calibration must be one of verizon/tmobile/att");
    }
    const std::pair<const char*, double> promos[] = {
        {"hs5g_given_dl", op.promotion.hs5g_given_dl},
        {"hs5g_given_ul", op.promotion.hs5g_given_ul},
        {"hs5g_given_interactive", op.promotion.hs5g_given_interactive},
        {"low5g_given_traffic", op.promotion.low5g_given_traffic},
        {"any5g_given_idle", op.promotion.any5g_given_idle}};
    for (const auto& [label, v] : promos) {
      if (std::isnan(v)) continue;  // inherit
      if (v < 0.0 || v > 1.0) {
        bad(at + ".promotion." + label + " must be in [0, 1] or absent");
      }
    }
    if (!(op.availability_scale > 0.0) || op.availability_scale > 10.0) {
      bad(at + ".availability_scale must be in (0, 10]");
    }
    if (!(op.load_scale > 0.0) || op.load_scale > 10.0) {
      bad(at + ".load_scale must be in (0, 10]");
    }
  }

  for (const radio::Tech tech : radio::kAllTechs) {
    const radio::BandProfile& b = spec.bands.profile(tech);
    const std::string at = "bands." + std::string(radio::to_string(tech));
    if (b.tech != tech) bad(at + " profile tech mismatch");
    if (!(b.carrier.value > 0.0)) bad(at + ".carrier_mhz must be positive");
    if (!(b.cc_bandwidth_dl.value > 0.0)) {
      bad(at + ".cc_bandwidth_dl_mhz must be positive");
    }
    if (!(b.cc_bandwidth_ul.value > 0.0)) {
      bad(at + ".cc_bandwidth_ul_mhz must be positive");
    }
    if (b.max_cc_dl < 1 || b.max_cc_ul < 1) {
      bad(at + " carrier counts must be >= 1");
    }
    if (b.mimo_layers_dl < 1 || b.mimo_layers_ul < 1) {
      bad(at + " MIMO layer counts must be >= 1");
    }
    if (!std::isfinite(b.tx_power_dl.value) ||
        !std::isfinite(b.tx_power_ul.value) ||
        !std::isfinite(b.antenna_gain_dl.value)) {
      bad(at + " powers/gains must be finite");
    }
    if (!(b.typical_range.value > 0.0)) {
      bad(at + ".typical_range_m must be positive");
    }
  }

  const std::pair<const char*, double> regimes[] = {
      {"load_regime.night", spec.load_regime.night},
      {"load_regime.morning", spec.load_regime.morning},
      {"load_regime.afternoon", spec.load_regime.afternoon},
      {"load_regime.evening", spec.load_regime.evening}};
  for (const auto& [label, v] : regimes) {
    if (!(v > 0.0) || v > 5.0) {
      bad(std::string(label) + " must be in (0, 5]");
    }
  }

  if (!spec.apps.ar && !spec.apps.cav && !spec.apps.video &&
      !spec.apps.gaming) {
    bad("apps must enable at least one session family");
  }
}

std::uint64_t scenario_hash(const ScenarioSpec& spec) {
  Hasher h;
  h.u64(kTagScenario);
  h.u64(spec.seed);

  h.f64(spec.timing.slot_ms);
  h.f64(spec.timing.tput_test_ms);
  h.f64(spec.timing.rtt_test_ms);
  h.f64(spec.timing.gap_ms);
  h.f64(spec.timing.ping_interval_ms);
  h.f64(spec.timing.sample_window_ms);

  h.f64(spec.drive.hours_per_day);
  h.i32(spec.drive.start_hour_local);

  h.f64(spec.speed.urban_mph);
  h.f64(spec.speed.suburban_mph);
  h.f64(spec.speed.rural_mph);
  h.f64(spec.speed.max_mph);

  h.f64(spec.route.road_factor);
  h.u64(spec.route.waypoints.size());
  for (const WaypointSpec& w : spec.route.waypoints) {
    h.str(w.name);
    h.f64(w.lat);
    h.f64(w.lon);
    h.boolean(w.edge_server);
  }

  h.u64(spec.operators.size());
  for (const OperatorSpec& op : spec.operators) {
    h.str(op.name);
    h.str(op.calibration);
    h.f64(op.promotion.hs5g_given_dl);
    h.f64(op.promotion.hs5g_given_ul);
    h.f64(op.promotion.hs5g_given_interactive);
    h.f64(op.promotion.low5g_given_traffic);
    h.f64(op.promotion.any5g_given_idle);
    h.f64(op.availability_scale);
    h.f64(op.load_scale);
  }

  for (const radio::Tech tech : radio::kAllTechs) {
    const radio::BandProfile& b = spec.bands.profile(tech);
    h.f64(b.carrier.value);
    h.f64(b.cc_bandwidth_dl.value);
    h.f64(b.cc_bandwidth_ul.value);
    h.i32(b.max_cc_dl);
    h.i32(b.max_cc_ul);
    h.i32(b.mimo_layers_dl);
    h.i32(b.mimo_layers_ul);
    h.f64(b.tx_power_dl.value);
    h.f64(b.tx_power_ul.value);
    h.f64(b.antenna_gain_dl.value);
    h.f64(b.typical_range.value);
  }

  h.f64(spec.load_regime.night);
  h.f64(spec.load_regime.morning);
  h.f64(spec.load_regime.afternoon);
  h.f64(spec.load_regime.evening);

  h.boolean(spec.apps.ar);
  h.boolean(spec.apps.cav);
  h.boolean(spec.apps.video);
  h.boolean(spec.apps.gaming);
  return h.digest();
}

ScenarioSpec parse_scenario_json(std::string_view text) {
  const JsonValue doc = parse_json(text);
  require_object(doc, "scenario document");
  ScenarioSpec spec = paper_default();
  spec.description.clear();  // deltas describe themselves
  for (const auto& [key, val] : doc.object) {
    if (key == "name") {
      spec.name = as_string(val, "name");
    } else if (key == "description") {
      spec.description = as_string(val, "description");
    } else if (key == "seed") {
      spec.seed = as_u64(val, "seed");
    } else if (key == "timing") {
      apply_timing(spec.timing, val);
    } else if (key == "drive") {
      apply_drive(spec.drive, val);
    } else if (key == "speed") {
      apply_speed(spec.speed, val);
    } else if (key == "route") {
      apply_route(spec.route, val);
    } else if (key == "operators") {
      if (val.kind != JsonValue::Kind::Array) {
        bad("operators must be an array");
      }
      spec.operators.clear();
      for (std::size_t i = 0; i < val.array.size(); ++i) {
        spec.operators.push_back(parse_operator(
            val.array[i], "operators[" + std::to_string(i) + "]"));
      }
    } else if (key == "bands") {
      apply_bands(spec.bands, val);
    } else if (key == "load_regime") {
      apply_regime(spec.load_regime, val);
    } else if (key == "apps") {
      apply_apps(spec.apps, val);
    } else {
      bad("unknown key " + key);
    }
  }
  validate(spec);
  return spec;
}

std::string to_json(const ScenarioSpec& spec) {
  JsonWriter w;
  w.open_root();
  w.str("name", spec.name);
  w.str("description", spec.description);
  w.integer("seed", static_cast<long long>(spec.seed));

  w.open("timing");
  w.num("slot_ms", spec.timing.slot_ms);
  w.num("tput_test_ms", spec.timing.tput_test_ms);
  w.num("rtt_test_ms", spec.timing.rtt_test_ms);
  w.num("gap_ms", spec.timing.gap_ms);
  w.num("ping_interval_ms", spec.timing.ping_interval_ms);
  w.num("sample_window_ms", spec.timing.sample_window_ms);
  w.close();

  w.open("drive");
  w.num("hours_per_day", spec.drive.hours_per_day);
  w.integer("start_hour_local", spec.drive.start_hour_local);
  w.close();

  w.open("speed");
  w.num("urban_mph", spec.speed.urban_mph);
  w.num("suburban_mph", spec.speed.suburban_mph);
  w.num("rural_mph", spec.speed.rural_mph);
  w.num("max_mph", spec.speed.max_mph);
  w.close();

  w.open("route");
  w.num("road_factor", spec.route.road_factor);
  w.open_array("waypoints");
  for (const WaypointSpec& wp : spec.route.waypoints) {
    w.open_element();
    w.str("name", wp.name);
    w.num("lat", wp.lat);
    w.num("lon", wp.lon);
    w.boolean("edge_server", wp.edge_server);
    w.close();
  }
  w.close_array();
  w.close();

  w.open_array("operators");
  for (const OperatorSpec& op : spec.operators) {
    w.open_element();
    w.str("name", op.name);
    w.str("calibration", op.calibration);
    write_promotion(w, op.promotion);
    w.num("availability_scale", op.availability_scale);
    w.num("load_scale", op.load_scale);
    w.close();
  }
  w.close_array();

  w.open("bands");
  for (const radio::Tech tech : radio::kAllTechs) {
    const radio::BandProfile& b = spec.bands.profile(tech);
    w.open(std::string(radio::to_string(tech)));
    w.num("carrier_mhz", b.carrier.value);
    w.num("cc_bandwidth_dl_mhz", b.cc_bandwidth_dl.value);
    w.num("cc_bandwidth_ul_mhz", b.cc_bandwidth_ul.value);
    w.integer("max_cc_dl", b.max_cc_dl);
    w.integer("max_cc_ul", b.max_cc_ul);
    w.integer("mimo_layers_dl", b.mimo_layers_dl);
    w.integer("mimo_layers_ul", b.mimo_layers_ul);
    w.num("tx_power_dl_dbm", b.tx_power_dl.value);
    w.num("tx_power_ul_dbm", b.tx_power_ul.value);
    w.num("antenna_gain_dl_db", b.antenna_gain_dl.value);
    w.num("typical_range_m", b.typical_range.value);
    w.close();
  }
  w.close();

  w.open("load_regime");
  w.num("night", spec.load_regime.night);
  w.num("morning", spec.load_regime.morning);
  w.num("afternoon", spec.load_regime.afternoon);
  w.num("evening", spec.load_regime.evening);
  w.close();

  w.open("apps");
  w.boolean("ar", spec.apps.ar);
  w.boolean("cav", spec.apps.cav);
  w.boolean("video", spec.apps.video);
  w.boolean("gaming", spec.apps.gaming);
  w.close();

  w.close();
  return w.take();
}

ScenarioSpec load_scenario(const std::string& name_or_path) {
  for (ScenarioSpec& s : builtin_scenarios()) {
    if (s.name == name_or_path) {
      validate(s);
      return std::move(s);
    }
  }
  std::ifstream in(name_or_path, std::ios::binary);
  if (!in) {
    bad("\"" + name_or_path +
        "\" is neither a built-in scenario nor a readable file");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_scenario_json(buf.str());
}

}  // namespace wheels::scenario
