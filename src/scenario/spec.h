// Declarative scenario descriptions.
//
// A ScenarioSpec captures everything the campaign engine previously
// hardcoded: route geometry and speed profile, the operator roster with
// band plan and 5G promotion policy (the Fig. 1 passive-vs-active artifact
// as a tunable), the diurnal load regime, and the app-session mix. The
// built-in `paper-default` spec reproduces the LA->Boston drive verbatim
// (golden checksum pinned in tools/contracts.json); every other scenario
// is expressed as a delta from it, either as a built-in below or as a JSON
// file under scenarios/.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "radio/band.h"

namespace wheels::scenario {

// Sentinel for "inherit the calibrated per-operator value": promotion
// probabilities default to NaN, which profile_from_spec leaves untouched.
[[nodiscard]] double inherit();

// One named route waypoint. `edge_server` marks cities hosting an edge
// measurement server (the paper's 10-city server footprint).
struct WaypointSpec {
  std::string name;
  double lat = 0.0;
  double lon = 0.0;
  bool edge_server = false;
};

// Route geometry: waypoints joined by great-circle legs, stretched by a
// road factor (driving distance / great-circle distance).
struct RouteSpec {
  double road_factor = 1.218;
  std::vector<WaypointSpec> waypoints;
};

// Measurement-cycle timing (milliseconds). Owned here so DriveConfig and
// CampaignConfig can no longer disagree about the slot length.
struct TimingSpec {
  double slot_ms = 20.0;
  double tput_test_ms = 30'000.0;
  double rtt_test_ms = 20'000.0;
  double gap_ms = 3'000.0;
  double ping_interval_ms = 200.0;
  double sample_window_ms = 500.0;
};

// Daily driving shift.
struct DriveSpec {
  double hours_per_day = 11.0;
  int start_hour_local = 8;
};

// Speed-profile targets per environment (mph), plus the hard cap.
struct SpeedSpec {
  double urban_mph = 14.0;
  double suburban_mph = 38.0;
  double rural_mph = 70.0;
  double max_mph = 82.0;
};

// 5G promotion policy overrides. NaN (the default, via inherit()) keeps
// the calibrated value of the operator's base profile; a number in [0, 1]
// replaces it. Setting the traffic-conditioned fields to the idle value
// removes the Fig. 1 passive-vs-active artifact.
struct PromotionSpec {
  double hs5g_given_dl;
  double hs5g_given_ul;
  double hs5g_given_interactive;
  double low5g_given_traffic;
  double any5g_given_idle;

  PromotionSpec();
};

// One operator in the roster. `calibration` names the base profile
// ("verizon", "tmobile", or "att") whose deployment/policy constants
// seed this operator; `name` is the display/fork label (paper-default
// uses the real operator names so RNG fork labels stay bit-identical).
struct OperatorSpec {
  std::string name;
  std::string calibration;
  PromotionSpec promotion;
  double availability_scale = 1.0;  // scales per-tech coverage availability
  double load_scale = 1.0;          // scales mean cell load
};

// Diurnal load multipliers by quarter of the local day:
// night 00-06, morning 06-12, afternoon 12-18, evening 18-24.
// All-ones (the default) disables the regime entirely.
struct LoadRegimeSpec {
  double night = 1.0;
  double morning = 1.0;
  double afternoon = 1.0;
  double evening = 1.0;
};

// Which app-session families the app campaign replays.
struct AppMixSpec {
  bool ar = true;
  bool cav = true;
  bool video = true;
  bool gaming = true;
};

// A complete, validated scenario.
struct ScenarioSpec {
  std::string name = "paper-default";
  std::string description;
  std::uint64_t seed = 42;
  TimingSpec timing;
  DriveSpec drive;
  SpeedSpec speed;
  RouteSpec route;
  std::vector<OperatorSpec> operators;  // exactly 3 (one per result slot)
  radio::BandPlan bands = radio::default_band_plan();
  LoadRegimeSpec load_regime;
  AppMixSpec apps;
};

// The built-in library. paper_default() reproduces the hardcoded campaign
// bit-for-bit; builtin_scenarios() returns it plus five variants (urban
// loop, commuter corridor, highway convoy, EU band plan, degraded-coverage
// storm). Returned by value: specs are small and callers mutate copies.
[[nodiscard]] ScenarioSpec paper_default();
[[nodiscard]] std::vector<ScenarioSpec> builtin_scenarios();

// Throws std::invalid_argument describing the first violated constraint.
void validate(const ScenarioSpec& spec);

// Order-sensitive FNV-1a hash over every behavior-affecting field (name
// and description excluded). Feeds dataset fingerprints so the
// content-addressed cache keys distinct scenarios apart.
[[nodiscard]] std::uint64_t scenario_hash(const ScenarioSpec& spec);

// Parse a scenario JSON document: fields override paper_default(), unknown
// keys throw. The result is validated before being returned.
[[nodiscard]] ScenarioSpec parse_scenario_json(std::string_view text);

// Full canonical serialization (every field, %.17g doubles); parsing the
// output reproduces the spec exactly.
[[nodiscard]] std::string to_json(const ScenarioSpec& spec);

// Resolve a built-in name or a filesystem path to a validated spec.
[[nodiscard]] ScenarioSpec load_scenario(const std::string& name_or_path);

}  // namespace wheels::scenario
