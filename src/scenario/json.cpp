#include "scenario/json.h"

#include <charconv>
#include <stdexcept>

namespace wheels::scenario {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string_value();
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  JsonValue parse_null() {
    if (!consume_literal("null")) fail("invalid literal");
    return JsonValue{};
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    if (consume_literal("true")) {
      v.boolean = true;
    } else if (consume_literal("false")) {
      v.boolean = false;
    } else {
      fail("invalid literal");
    }
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool numeric = (c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                           c == 'E' || c == '+' || c == '-';
      if (!numeric) break;
      ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, v.number);
    if (ec != std::errc{} || ptr != last || first == last) {
      pos_ = start;
      fail("invalid number");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control char in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape");
      }
    }
  }

  void append_unicode_escape(std::string& out) {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    // Scenario files are ASCII/BMP; surrogate pairs are out of scope.
    if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate \\u escape");
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    v.string = parse_string();
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      for (const auto& [existing, unused] : v.object) {
        if (existing == key) fail("duplicate key \"" + key + "\"");
      }
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
          out.push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  out += "\"";
  return out;
}

}  // namespace wheels::scenario
