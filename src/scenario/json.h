// Minimal JSON reader for scenario files.
//
// Self-contained recursive-descent parser (no third-party dependency, per
// the repo's no-new-deps rule). Objects preserve key order as a
// vector<pair>, which keeps iteration deterministic and lets the scenario
// layer report unknown keys in file order. Numbers parse via
// std::from_chars so the result is locale-independent and round-trips the
// shortest representation printed by to_json().
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wheels::scenario {

// One parsed JSON value. A plain tagged struct rather than std::variant:
// the handful of accessors the spec loader needs stay readable and the
// error messages stay precise.
struct JsonValue {
  enum class Kind : int { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

// Parse a complete JSON document. Throws std::invalid_argument with the
// byte offset of the first error (trailing non-whitespace content and
// duplicate object keys are errors).
[[nodiscard]] JsonValue parse_json(std::string_view text);

// Serialize a string with JSON escaping (used by scenario::to_json).
[[nodiscard]] std::string json_quote(std::string_view s);

}  // namespace wheels::scenario
