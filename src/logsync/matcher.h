// Matching application log files to their XCAL (.drm) counterparts and
// aligning their sample timelines -- the study's post-processing pipeline.
//
// An XCAL file is named with a *local-time* timestamp
// ("XCAL_Verizon_2022-08-10_14-02-05.drm") while its *contents* are
// EDT-stamped; an app log knows its own clock (UTC or local). The matcher
// normalizes both to absolute campaign time and pairs each app log with
// the XCAL file whose recording interval covers it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "logsync/timestamp.h"

namespace wheels::logsync {

struct XcalFile {
  std::string filename;       // "XCAL_<op>_2022-08-10_14-02-05.drm"
  SimTime content_start;      // derived from EDT-stamped contents
  SimTime content_end;
};

struct AppLogFile {
  std::string name;
  LogClock clock;             // how this app stamps records
  std::string first_record;   // e.g. "2022-08-10 18:02:06.000"
  std::string last_record;
};

// Compose the .drm filename for a recording that starts at `start` while
// the vehicle is in `local_tz`.
[[nodiscard]] std::string xcal_filename(const std::string& op, SimTime start,
                                        TimeZone local_tz);

// Recover the recording start time from an XCAL filename (inverse of
// xcal_filename; needs the timezone the file was created in).
[[nodiscard]] std::optional<SimTime> parse_xcal_filename(
    const std::string& filename, TimeZone local_tz);

// Absolute [start, end] of an app log, or nullopt if its records are
// unparsable.
[[nodiscard]] std::optional<std::pair<SimTime, SimTime>> app_log_interval(
    const AppLogFile& log);

// Index (into `xcal`) of the file whose content interval overlaps the app
// log the most; nullopt when nothing overlaps.
[[nodiscard]] std::optional<std::size_t> match_app_log(
    const AppLogFile& log, const std::vector<XcalFile>& xcal);

// Align two sample timelines: for each left timestamp, the index of the
// nearest right timestamp within `tolerance`, or -1. Both inputs must be
// sorted ascending.
[[nodiscard]] std::vector<long> align_timelines(
    const std::vector<SimTime>& left, const std::vector<SimTime>& right,
    Millis tolerance);

}  // namespace wheels::logsync
