#include "logsync/consolidate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wheels::logsync {

const char* to_string(RecordSource s) {
  switch (s) {
    case RecordSource::Xcal: return "xcal";
    case RecordSource::Rtt: return "rtt";
    case RecordSource::App: return "app";
    case RecordSource::Passive: return "passive";
  }
  return "?";
}

std::uint32_t ConsolidatedDb::add_stream(
    RecordSource source, const std::vector<std::string>& timestamps,
    const LogClock& clock) {
  if (finalized_) {
    throw std::logic_error("ConsolidatedDb: already finalized");
  }
  const std::uint32_t id = next_stream_++;
  records_.reserve(records_.size() + timestamps.size());
  for (std::size_t i = 0; i < timestamps.size(); ++i) {
    const auto t = parse_timestamp(timestamps[i], clock);
    if (!t) {
      ++dropped_;
      continue;
    }
    records_.push_back({*t, source, id, i});
  }
  return id;
}

void ConsolidatedDb::finalize() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const ConsolidatedRecord& a,
                      const ConsolidatedRecord& b) {
                     return a.time.ms_since_epoch < b.time.ms_since_epoch;
                   });
  finalized_ = true;
}

std::vector<ConsolidatedRecord> ConsolidatedDb::between(SimTime from,
                                                        SimTime to) const {
  if (!finalized_) {
    throw std::logic_error("ConsolidatedDb: finalize() first");
  }
  const auto lo = std::lower_bound(
      records_.begin(), records_.end(), from,
      [](const ConsolidatedRecord& r, SimTime t) {
        return r.time.ms_since_epoch < t.ms_since_epoch;
      });
  const auto hi = std::lower_bound(
      lo, records_.end(), to,
      [](const ConsolidatedRecord& r, SimTime t) {
        return r.time.ms_since_epoch < t.ms_since_epoch;
      });
  return {lo, hi};
}

std::vector<long> ConsolidatedDb::join_nearest(std::uint32_t left_stream,
                                               std::uint32_t right_stream,
                                               Millis tolerance) const {
  if (!finalized_) {
    throw std::logic_error("ConsolidatedDb: finalize() first");
  }
  // Gather both streams' records (already time-ordered).
  std::vector<const ConsolidatedRecord*> left, right;
  for (const auto& r : records_) {
    if (r.stream == left_stream) left.push_back(&r);
    if (r.stream == right_stream) right.push_back(&r);
  }
  std::vector<long> out(left.size(), -1);
  std::size_t j = 0;
  for (std::size_t i = 0; i < left.size(); ++i) {
    const double t = left[i]->time.ms_since_epoch;
    while (j + 1 < right.size() &&
           std::abs(right[j + 1]->time.ms_since_epoch - t) <=
               std::abs(right[j]->time.ms_since_epoch - t)) {
      ++j;
    }
    if (!right.empty() &&
        std::abs(right[j]->time.ms_since_epoch - t) <= tolerance.value) {
      out[i] = static_cast<long>(right[j]->payload);
    }
  }
  return out;
}

}  // namespace wheels::logsync
