#include "logsync/timestamp.h"

#include <cstdio>

namespace wheels::logsync {
namespace {

TimeZone effective_zone(const LogClock& clock) {
  switch (clock.kind) {
    case ClockKind::Local: return clock.local_tz;
    case ClockKind::FixedEdt: return TimeZone::Eastern;
    case ClockKind::Utc: return TimeZone::Eastern;  // placeholder, not used
  }
  return TimeZone::Eastern;
}

}  // namespace

const char* to_string(ClockKind k) {
  switch (k) {
    case ClockKind::Utc: return "UTC";
    case ClockKind::Local: return "local";
    case ClockKind::FixedEdt: return "EDT";
  }
  return "?";
}

std::string format_timestamp(SimTime t, const LogClock& clock) {
  CivilTime ct;
  if (clock.kind == ClockKind::Utc) {
    // UTC: offset 0; reuse to_civil via a zone with zero offset by shifting.
    const double ms = t.ms_since_epoch;
    const double day_ms = 86'400.0e3;
    const int day = static_cast<int>(ms / day_ms) + 1;
    double rem = ms - (day - 1) * day_ms;
    ct.day = day;
    ct.hour = static_cast<int>(rem / 3600.0e3);
    rem -= ct.hour * 3600.0e3;
    ct.minute = static_cast<int>(rem / 60.0e3);
    rem -= ct.minute * 60.0e3;
    ct.second = static_cast<int>(rem / 1.0e3);
    rem -= ct.second * 1.0e3;
    ct.millisecond = static_cast<int>(rem + 0.5);
  } else {
    ct = to_civil(t, effective_zone(clock));
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s-%02d %02d:%02d:%02d.%03d",
                kCampaignMonth, kCampaignStartDayOfMonth + ct.day - 1,
                ct.hour, ct.minute, ct.second, ct.millisecond);
  return buf;
}

std::optional<SimTime> parse_timestamp(const std::string& text,
                                       const LogClock& clock) {
  int year = 0, month = 0, dom = 0, h = 0, m = 0, s = 0, ms = 0;
  const int n = std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%d.%d", &year,
                            &month, &dom, &h, &m, &s, &ms);
  if (n < 6) return std::nullopt;
  if (year != 2022 || month != 8) return std::nullopt;
  const int day = dom - kCampaignStartDayOfMonth + 1;
  // day 0 is legal: a UTC instant early on day 1 is still the previous
  // local calendar day out west.
  if (day < 0 || day > 31) return std::nullopt;
  CivilTime ct{day, h, m, s, ms};
  if (clock.kind == ClockKind::Utc) {
    return SimTime{(ct.day - 1) * 86'400.0e3 + ct.hour * 3600.0e3 +
                   ct.minute * 60.0e3 + ct.second * 1.0e3 + ct.millisecond};
  }
  return from_civil(ct, effective_zone(clock));
}

}  // namespace wheels::logsync
