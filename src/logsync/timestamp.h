// Timestamp formats and conversion.
//
// The study's log-synchronization headache (§B): applications logged in
// UTC or local time, XCAL .drm files carry local-time filenames but
// EDT-timestamped contents, and the car crossed four timezones. This
// module gives every log source an explicit clock description and converts
// everything to the campaign's absolute SimTime.
#pragma once

#include <optional>
#include <string>

#include "core/sim_time.h"

namespace wheels::logsync {

// How a log source stamps its records.
enum class ClockKind : std::uint8_t {
  Utc,       // app servers, some apps
  Local,     // phone local time (follows the vehicle's timezone)
  FixedEdt,  // XCAL record contents: always EDT regardless of location
};

[[nodiscard]] const char* to_string(ClockKind k);

struct LogClock {
  ClockKind kind = ClockKind::Utc;
  // The vehicle's timezone at logging time; meaningful for Local.
  TimeZone local_tz = TimeZone::Pacific;
};

// Campaign day 1 = 2022-08-08 (the study's first driving day).
inline constexpr int kCampaignStartDayOfMonth = 8;
inline constexpr const char* kCampaignMonth = "2022-08";

// "2022-08-10 14:02:05.250" in the clock's frame.
[[nodiscard]] std::string format_timestamp(SimTime t, const LogClock& clock);

// Parse a timestamp string back to absolute time. Returns nullopt on
// malformed input or an out-of-campaign date.
[[nodiscard]] std::optional<SimTime> parse_timestamp(const std::string& text,
                                                     const LogClock& clock);

}  // namespace wheels::logsync
