#include "logsync/matcher.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace wheels::logsync {

std::string xcal_filename(const std::string& op, SimTime start,
                          TimeZone local_tz) {
  const CivilTime ct = to_civil(start, local_tz);
  char buf[96];
  std::snprintf(buf, sizeof buf, "XCAL_%s_%s-%02d_%02d-%02d-%02d.drm",
                op.c_str(), kCampaignMonth,
                kCampaignStartDayOfMonth + ct.day - 1, ct.hour, ct.minute,
                ct.second);
  return buf;
}

std::optional<SimTime> parse_xcal_filename(const std::string& filename,
                                           TimeZone local_tz) {
  // Scan from the end: ..._YYYY-MM-DD_HH-MM-SS.drm
  const auto pos = filename.rfind(".drm");
  if (pos == std::string::npos || pos < 20) return std::nullopt;
  const std::string stamp = filename.substr(pos - 19, 19);
  int year = 0, month = 0, dom = 0, h = 0, m = 0, s = 0;
  if (std::sscanf(stamp.c_str(), "%d-%d-%d_%d-%d-%d", &year, &month, &dom,
                  &h, &m, &s) != 6) {
    return std::nullopt;
  }
  if (year != 2022 || month != 8) return std::nullopt;
  CivilTime ct{dom - kCampaignStartDayOfMonth + 1, h, m, s, 0};
  return from_civil(ct, local_tz);
}

std::optional<std::pair<SimTime, SimTime>> app_log_interval(
    const AppLogFile& log) {
  const auto a = parse_timestamp(log.first_record, log.clock);
  const auto b = parse_timestamp(log.last_record, log.clock);
  if (!a || !b || *b < *a) return std::nullopt;
  return std::make_pair(*a, *b);
}

std::optional<std::size_t> match_app_log(const AppLogFile& log,
                                         const std::vector<XcalFile>& xcal) {
  const auto interval = app_log_interval(log);
  if (!interval) return std::nullopt;
  const auto [a, b] = *interval;
  std::optional<std::size_t> best;
  double best_overlap = 0.0;
  for (std::size_t i = 0; i < xcal.size(); ++i) {
    const double lo =
        std::max(a.ms_since_epoch, xcal[i].content_start.ms_since_epoch);
    const double hi =
        std::min(b.ms_since_epoch, xcal[i].content_end.ms_since_epoch);
    const double overlap = hi - lo;
    if (overlap > best_overlap) {
      best_overlap = overlap;
      best = i;
    }
  }
  return best;
}

std::vector<long> align_timelines(const std::vector<SimTime>& left,
                                  const std::vector<SimTime>& right,
                                  Millis tolerance) {
  std::vector<long> out(left.size(), -1);
  std::size_t j = 0;
  for (std::size_t i = 0; i < left.size(); ++i) {
    const double t = left[i].ms_since_epoch;
    while (j + 1 < right.size() &&
           std::abs(right[j + 1].ms_since_epoch - t) <=
               std::abs(right[j].ms_since_epoch - t)) {
      ++j;
    }
    if (!right.empty() &&
        std::abs(right[j].ms_since_epoch - t) <= tolerance.value) {
      out[i] = static_cast<long>(j);
    }
  }
  return out;
}

}  // namespace wheels::logsync
