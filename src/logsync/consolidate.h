// The consolidated database (§B): merges heterogeneous log streams (XCAL
// KPI windows, RTT echoes, app runs) into one absolute-time-ordered
// record stream, the artifact the study's post-processing software
// produced for analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logsync/timestamp.h"

namespace wheels::logsync {

enum class RecordSource : std::uint8_t { Xcal, Rtt, App, Passive };

[[nodiscard]] const char* to_string(RecordSource s);

// A normalized record: absolute time + source + an opaque payload index
// into the source's own storage (the database does not copy payloads).
struct ConsolidatedRecord {
  SimTime time;
  RecordSource source = RecordSource::Xcal;
  std::uint32_t stream = 0;   // which input stream it came from
  std::uint64_t payload = 0;  // index into that stream's records
};

class ConsolidatedDb {
 public:
  // Register a stream: its records' raw timestamp strings plus the clock
  // they were written with. Unparsable timestamps are counted and
  // skipped, not fatal (real logs have corrupt lines). Returns the stream
  // id.
  std::uint32_t add_stream(RecordSource source,
                           const std::vector<std::string>& timestamps,
                           const LogClock& clock);

  // Sort everything into one timeline. Call once after adding streams.
  void finalize();

  [[nodiscard]] const std::vector<ConsolidatedRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t dropped_records() const { return dropped_; }
  [[nodiscard]] bool finalized() const { return finalized_; }

  // All records within [from, to), in time order. Requires finalize().
  [[nodiscard]] std::vector<ConsolidatedRecord> between(SimTime from,
                                                        SimTime to) const;

  // For each record of `left_stream`, the payload index of the nearest
  // record of `right_stream` within `tolerance`, or -1 (the app->XCAL
  // join the study performed). Requires finalize().
  [[nodiscard]] std::vector<long> join_nearest(std::uint32_t left_stream,
                                               std::uint32_t right_stream,
                                               Millis tolerance) const;

 private:
  std::vector<ConsolidatedRecord> records_;
  std::size_t dropped_ = 0;
  std::uint32_t next_stream_ = 0;
  bool finalized_ = false;
};

}  // namespace wheels::logsync
