#include "core/sim_time.h"

#include <cmath>
#include <cstdio>

namespace wheels {

const char* to_string(TimeZone tz) {
  switch (tz) {
    case TimeZone::Pacific: return "Pacific";
    case TimeZone::Mountain: return "Mountain";
    case TimeZone::Central: return "Central";
    case TimeZone::Eastern: return "Eastern";
  }
  return "?";
}

int utc_offset_hours(TimeZone tz) {
  switch (tz) {
    case TimeZone::Pacific: return -7;   // PDT
    case TimeZone::Mountain: return -6;  // MDT
    case TimeZone::Central: return -5;   // CDT
    case TimeZone::Eastern: return -4;   // EDT
  }
  return 0;
}

TimeZone timezone_from_longitude(double longitude_deg) {
  // Boundaries tuned to the route: Pacific/Mountain near the NV/UT line,
  // Mountain/Central in western Nebraska, Central/Eastern at the IN/OH area.
  if (longitude_deg < -114.0) return TimeZone::Pacific;
  if (longitude_deg < -102.0) return TimeZone::Mountain;
  if (longitude_deg < -86.0) return TimeZone::Central;
  return TimeZone::Eastern;
}

CivilTime to_civil(SimTime t, TimeZone tz) {
  const double local_ms =
      t.ms_since_epoch + utc_offset_hours(tz) * 3600.0e3;
  // Civil time may be "before" the UTC epoch on day 1; clamp into day 0
  // semantics by flooring, allowing negative day handling via floor division.
  const double day_ms = 86'400.0e3;
  const double day_index = std::floor(local_ms / day_ms);
  double rem = local_ms - day_index * day_ms;
  CivilTime ct;
  ct.day = static_cast<int>(day_index) + 1;
  ct.hour = static_cast<int>(rem / 3600.0e3);
  rem -= ct.hour * 3600.0e3;
  ct.minute = static_cast<int>(rem / 60.0e3);
  rem -= ct.minute * 60.0e3;
  ct.second = static_cast<int>(rem / 1.0e3);
  rem -= ct.second * 1.0e3;
  ct.millisecond = static_cast<int>(rem + 0.5);
  if (ct.millisecond == 1000) {  // rounding carry
    ct.millisecond = 0;
    ++ct.second;
  }
  return ct;
}

SimTime from_civil(const CivilTime& ct, TimeZone tz) {
  const double local_ms = (ct.day - 1) * 86'400.0e3 + ct.hour * 3600.0e3 +
                          ct.minute * 60.0e3 + ct.second * 1.0e3 +
                          ct.millisecond;
  return SimTime{local_ms - utc_offset_hours(tz) * 3600.0e3};
}

std::string format_civil(const CivilTime& ct) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "D%d %02d:%02d:%02d.%03d", ct.day, ct.hour,
                ct.minute, ct.second, ct.millisecond);
  return buf;
}

}  // namespace wheels
