// Geodesy helpers for the drive-route model.
#pragma once

#include "core/units.h"

namespace wheels {

// A WGS-84 coordinate. Degrees; west longitudes are negative.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;

  friend constexpr bool operator==(const LatLon&, const LatLon&) = default;
};

// Great-circle distance (haversine, spherical earth R = 6371 km). Accurate
// to ~0.5% which is ample for coverage bookkeeping.
[[nodiscard]] Meters haversine_distance(const LatLon& a, const LatLon& b);

// Linear interpolation between two coordinates. Fine over the < 500 km legs
// used by the route model.
[[nodiscard]] LatLon interpolate(const LatLon& a, const LatLon& b, double t);

// Initial bearing from a to b, degrees clockwise from north in [0, 360).
[[nodiscard]] double initial_bearing_deg(const LatLon& a, const LatLon& b);

// Destination point at `distance` along `bearing_deg` from `origin`.
[[nodiscard]] LatLon destination(const LatLon& origin, double bearing_deg,
                                 Meters distance);

}  // namespace wheels
