// A minimal discrete-event scheduler.
//
// Most of the simulator advances in fixed 10 ms slots, but the application
// pipelines (frame offloading, chunk downloads) are naturally event-driven:
// "frame k finishes uploading at t", "chunk finishes at t". EventQueue keeps
// those timelines exact instead of quantizing them to slot boundaries.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/sim_time.h"

namespace wheels {

class EventQueue {
 public:
  using Handler = std::function<void(SimTime)>;

  // Schedule `fn` at absolute time `t`. Events at equal times fire in
  // insertion order (stable), which keeps runs deterministic.
  void schedule(SimTime t, Handler fn);
  void schedule_after(Millis delay, Handler fn);

  // Run all events with time <= horizon. Handlers may schedule more events.
  void run_until(SimTime horizon);
  // Run until the queue drains.
  void run_all();

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    SimTime t;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return b.t < a.t;
      return b.seq < a.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_{};
  std::uint64_t seq_ = 0;
};

}  // namespace wheels
