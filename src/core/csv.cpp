#include "core/csv.h"

#include <ostream>

namespace wheels {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;

  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
  };
  auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        cell_started = true;
        break;
      case ',':
        end_cell();
        cell_started = true;  // next cell exists even if empty
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        cell += c;
        cell_started = true;
        break;
    }
  }
  if (cell_started || !cell.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace wheels
