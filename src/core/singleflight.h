// Keyed single-flight execution: at most one concurrent computation per
// key, with waiter futures.
//
// The first caller for a key (the leader) inserts a flight into the table
// and runs `compute` outside the lock; callers that arrive while that
// computation is in flight (the waiters) block on a shared future and
// receive the leader's result instead of recomputing. The flight is
// retired when the computation finishes, so the table only ever holds
// in-progress keys -- residency policy (memo, LRU, nothing) stays with
// the caller's `compute`.
#pragma once

#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <mutex>

namespace wheels {

template <typename Key, typename Value>
class SingleFlight {
 public:
  // Resolve `key`, computing it at most once across concurrent callers.
  // `compute` returns std::shared_ptr<const Value> and runs with no lock
  // held; it is responsible for publishing the value anywhere it should
  // outlive the flight (memo, cache) before returning, because the flight
  // is retired before the waiters are woken. on_lead() / on_join() are
  // observation callbacks, also invoked outside the table lock: exactly
  // one on_lead() per flight, one on_join() per waiter that joined it. If
  // `compute` throws, the exception propagates to the leader and to every
  // waiter, and the flight is retired so a later call retries.
  template <typename Compute, typename OnLead, typename OnJoin>
  std::shared_ptr<const Value> resolve(const Key& key, Compute&& compute,
                                       OnLead&& on_lead, OnJoin&& on_join) {
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      auto it = flights_.find(key);
      if (it == flights_.end()) {
        flight = std::make_shared<Flight>();
        flights_.emplace(key, flight);
        leader = true;
      } else {
        flight = it->second;
      }
    }

    if (!leader) {
      on_join();
      return flight->future.get();
    }

    on_lead();
    std::shared_ptr<const Value> value;
    try {
      value = compute();
    } catch (...) {
      retire(key);
      flight->promise.set_exception(std::current_exception());
      throw;
    }
    retire(key);
    flight->promise.set_value(value);
    return value;
  }

  // Number of keys currently being computed.
  [[nodiscard]] std::size_t in_flight() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return flights_.size();
  }

 private:
  struct Flight {
    std::promise<std::shared_ptr<const Value>> promise;
    std::shared_future<std::shared_ptr<const Value>> future =
        promise.get_future().share();
  };

  void retire(const Key& key) {
    const std::lock_guard<std::mutex> lock(mu_);
    flights_.erase(key);
  }

  mutable std::mutex mu_;
  std::map<Key, std::shared_ptr<Flight>> flights_;
};

}  // namespace wheels
