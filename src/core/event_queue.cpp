#include "core/event_queue.h"

#include <utility>

namespace wheels {

void EventQueue::schedule(SimTime t, Handler fn) {
  if (t < now_) t = now_;  // never schedule into the past
  heap_.push(Entry{t, seq_++, std::move(fn)});
}

void EventQueue::schedule_after(Millis delay, Handler fn) {
  schedule(now_ + delay, std::move(fn));
}

void EventQueue::run_until(SimTime horizon) {
  while (!heap_.empty() && !(horizon < heap_.top().t)) {
    // Copy out before pop: the handler may push into the queue.
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.t;
    e.fn(now_);
  }
  if (now_ < horizon) now_ = horizon;
}

void EventQueue::run_all() {
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.t;
    e.fn(now_);
  }
}

}  // namespace wheels
