// Simulated wall-clock time and US timezone handling.
//
// The measurement campaign in the paper crosses four US timezones, and log
// synchronization (its challenge [C2]) hinges on reconciling UTC, local, and
// EDT timestamps. SimClock models absolute campaign time as milliseconds
// since the campaign epoch (2022-08-08 00:00 UTC in the original study);
// TimeZone converts to the local clock at the vehicle's longitude.
#pragma once

#include <cstdint>
#include <string>

#include "core/units.h"

namespace wheels {

// The four continental US timezones crossed on the LA -> Boston route.
enum class TimeZone : std::uint8_t { Pacific, Mountain, Central, Eastern };

[[nodiscard]] const char* to_string(TimeZone tz);

// UTC offset during daylight saving time (the trip was in August):
// PDT = UTC-7, MDT = UTC-6, CDT = UTC-5, EDT = UTC-4.
[[nodiscard]] int utc_offset_hours(TimeZone tz);

// Approximate timezone from longitude, tuned to the I-80/I-90 corridor the
// route follows (not the true jagged legal boundaries; the analysis needs
// only four coarse buckets).
[[nodiscard]] TimeZone timezone_from_longitude(double longitude_deg);

// Absolute simulated time: milliseconds since the campaign epoch, which is
// taken to be midnight UTC of day 1.
struct SimTime {
  double ms_since_epoch = 0.0;

  friend constexpr auto operator<=>(const SimTime&, const SimTime&) = default;
  friend constexpr SimTime operator+(SimTime t, Millis d) {
    return SimTime{t.ms_since_epoch + d.value};
  }
  friend constexpr SimTime operator-(SimTime t, Millis d) {
    return SimTime{t.ms_since_epoch - d.value};
  }
  friend constexpr Millis operator-(SimTime a, SimTime b) {
    return Millis{a.ms_since_epoch - b.ms_since_epoch};
  }
  SimTime& operator+=(Millis d) {
    ms_since_epoch += d.value;
    return *this;
  }
};

// Broken-down civil time within the 8-day campaign; good enough for log
// file naming and timezone reconciliation (no month rollover needed).
struct CivilTime {
  int day = 1;  // campaign day, 1-based
  int hour = 0;
  int minute = 0;
  int second = 0;
  int millisecond = 0;

  friend auto operator<=>(const CivilTime&, const CivilTime&) = default;
};

// Convert an absolute SimTime to civil time in the given zone.
[[nodiscard]] CivilTime to_civil(SimTime t, TimeZone tz);

// Convert civil time in a zone back to absolute SimTime.
[[nodiscard]] SimTime from_civil(const CivilTime& ct, TimeZone tz);

// "D1 13:45:02.500" -- human-readable form used in logs.
[[nodiscard]] std::string format_civil(const CivilTime& ct);

}  // namespace wheels
