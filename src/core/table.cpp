#include "core/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace wheels {

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_values(const std::string& label,
                               const std::vector<double>& values,
                               int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t i = 0; i < rows_[r].size(); ++i) {
      const auto& cell = rows_[r][i];
      os << cell;
      if (i + 1 < rows_[r].size()) {
        os << std::string(widths[i] - cell.size() + 2, ' ');
      }
    }
    os << '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t w : widths) total += w + 2;
      os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    }
  }
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void print_cdf(std::ostream& os, const std::string& label,
               const EmpiricalCdf& cdf, std::size_t points) {
  os << label << " (n=" << cdf.count() << ")\n";
  if (cdf.empty()) {
    os << "  <no samples>\n";
    return;
  }
  for (const auto& pt : cdf.curve(points)) {
    os << "  p=" << fmt(pt.p, 2) << "  x=" << fmt(pt.x, 3) << '\n';
  }
}

void print_summary(std::ostream& os, const std::string& label,
                   const EmpiricalCdf& cdf) {
  os << label << ": n=" << cdf.count();
  if (!cdf.empty()) {
    os << "  min=" << fmt(cdf.min(), 2) << "  p25=" << fmt(cdf.quantile(0.25), 2)
       << "  med=" << fmt(cdf.quantile(0.50), 2)
       << "  p75=" << fmt(cdf.quantile(0.75), 2)
       << "  p90=" << fmt(cdf.quantile(0.90), 2)
       << "  max=" << fmt(cdf.max(), 2);
  }
  os << '\n';
}

}  // namespace wheels
