// Deterministic random number generation.
//
// Every stochastic process in the simulator draws from an Rng seeded from
// the campaign seed, so any figure or table can be regenerated bit-for-bit.
// xoshiro256++ is used instead of std::mt19937 for speed and because its
// stream-splitting (via SplitMix64 jumps) gives cheap independent
// sub-streams per cell / per UE / per process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wheels {

// SplitMix64: used for seeding and for deriving child seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

// Optional provenance hooks, mirroring ThreadPoolHooks: core stays free of
// obs dependencies, obs (or a test) fills the struct in. All callbacks are
// observational only -- they receive stream fingerprints and must never
// touch generator state, so arming them cannot change campaign bytes.
// Callbacks may fire concurrently from worker threads and must be
// thread-safe. The struct must outlive its installation.
struct RngHooks {
  // A stream was constructed directly from a seed (not via fork()).
  void (*on_seed)(std::uint64_t stream_id, std::uint64_t seed) = nullptr;
  // `child` was derived from `parent` via fork(). For string-labelled
  // forks `label` points at the label bytes (not NUL-terminated, valid
  // only for the duration of the call); for integer salts it is nullptr.
  void (*on_fork)(std::uint64_t parent_id, std::uint64_t child_id,
                  std::uint64_t salt, const char* label,
                  std::size_t label_len) = nullptr;
  // One base draw (next_u64) was consumed from the stream. Distributions
  // that draw several times (normal, rejection loops) fire once per base
  // draw, so counts are comparable across jobs values.
  void (*on_draw)(std::uint64_t stream_id) = nullptr;
};

// Install (or clear, with nullptr) the process-wide hook struct. Install
// once at startup before campaign threads exist; draws load the pointer
// with relaxed ordering, so mid-campaign swaps are not synchronized.
void set_rng_hooks(const RngHooks* hooks);
[[nodiscard]] const RngHooks* rng_hooks();

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Derive an independent child generator. `salt` distinguishes siblings
  // derived from the same parent (e.g. one stream per cell id).
  [[nodiscard]] Rng fork(std::uint64_t salt) const;
  [[nodiscard]] Rng fork(std::string_view label) const;

  // Deterministic fingerprint of the stream's initial state: identical for
  // copies of one stream, stable across runs and jobs values. Used by the
  // provenance hooks to key the runtime fork tree.
  [[nodiscard]] std::uint64_t stream_id() const { return id_; }

  [[nodiscard]] std::uint64_t next_u64();

  // Uniform in [0, 1).
  [[nodiscard]] double uniform();
  // Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  // Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n);
  // Standard normal via Box-Muller (no cached spare: keeps fork() streams
  // independent of call parity).
  [[nodiscard]] double normal();
  [[nodiscard]] double normal(double mean, double stddev);
  // Log-normal parameterized by the mean/stddev of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma);
  // Exponential with the given mean.
  [[nodiscard]] double exponential(double mean);
  // Bernoulli trial.
  [[nodiscard]] bool chance(double p);

 private:
  // Fork children are built through this tag ctor so only explicit
  // seed construction fires on_seed; fork() fires on_fork itself.
  struct NoHook {};
  Rng(std::uint64_t seed, NoHook);

  void init_state(std::uint64_t seed);
  Rng fork_impl(std::uint64_t salt, const char* label,
                std::size_t label_len) const;

  std::uint64_t s_[4];
  std::uint64_t id_;
};

}  // namespace wheels
