// Deterministic random number generation.
//
// Every stochastic process in the simulator draws from an Rng seeded from
// the campaign seed, so any figure or table can be regenerated bit-for-bit.
// xoshiro256++ is used instead of std::mt19937 for speed and because its
// stream-splitting (via SplitMix64 jumps) gives cheap independent
// sub-streams per cell / per UE / per process.
#pragma once

#include <cstdint>
#include <string_view>

namespace wheels {

// SplitMix64: used for seeding and for deriving child seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Derive an independent child generator. `salt` distinguishes siblings
  // derived from the same parent (e.g. one stream per cell id).
  [[nodiscard]] Rng fork(std::uint64_t salt) const;
  [[nodiscard]] Rng fork(std::string_view label) const;

  [[nodiscard]] std::uint64_t next_u64();

  // Uniform in [0, 1).
  [[nodiscard]] double uniform();
  // Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  // Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n);
  // Standard normal via Box-Muller (no cached spare: keeps fork() streams
  // independent of call parity).
  [[nodiscard]] double normal();
  [[nodiscard]] double normal(double mean, double stddev);
  // Log-normal parameterized by the mean/stddev of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma);
  // Exponential with the given mean.
  [[nodiscard]] double exponential(double mean);
  // Bernoulli trial.
  [[nodiscard]] bool chance(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace wheels
