// Plain-text table and CDF-series printers used by the bench harness to
// emit the rows/series of each paper table and figure.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/stats.h"

namespace wheels {

// A simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  void add_row_values(const std::string& label,
                      const std::vector<double>& values, int precision = 2);

  void print(std::ostream& os) const;

 private:
  std::vector<std::vector<std::string>> rows_;  // rows_[0] is the header
};

// Format a double with fixed precision.
[[nodiscard]] std::string fmt(double v, int precision = 2);

// Print one CDF as "x p" pairs under a series label, plus summary
// quantiles, the way the benches reproduce figure curves.
void print_cdf(std::ostream& os, const std::string& label,
               const EmpiricalCdf& cdf, std::size_t points = 11);

// Print a one-line quantile summary: n, min, p25, median, p75, p90, max.
void print_summary(std::ostream& os, const std::string& label,
                   const EmpiricalCdf& cdf);

}  // namespace wheels
