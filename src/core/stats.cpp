#include "core/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wheels {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv_percent() const {
  return mean_ != 0.0 ? 100.0 * stddev() / std::abs(mean_) : 0.0;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty() || std::isnan(p)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  std::vector<double> v(xs.begin(), xs.end());
  for (double x : v) {
    if (std::isnan(x)) return std::numeric_limits<double>::quiet_NaN();
  }
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] + frac * (v[lo + 1] - v[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double p) const {
  return percentile(sorted_, p * 100.0);
}

double EmpiricalCdf::min() const {
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double EmpiricalCdf::max() const {
  return sorted_.empty() ? 0.0 : sorted_.back();
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::curve(std::size_t points) const {
  std::vector<Point> out;
  if (sorted_.empty() || points < 2) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p =
        static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back({quantile(p), p});
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need bins > 0 and hi > lo");
  }
}

void Histogram::add(double x) {
  auto bin = static_cast<long>((x - lo_) / width_);
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const { return counts_.at(bin); }

double Histogram::fraction(std::size_t bin) const {
  return total_ ? static_cast<double>(counts_.at(bin)) /
                      static_cast<double>(total_)
                : 0.0;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

}  // namespace wheels
