// Statistics toolkit used by the analysis layer: percentiles, empirical
// CDFs, Pearson correlation, running moments, and histograms.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace wheels {

// Epsilon comparison helpers. wheels_lint bans direct floating-point ==/!=
// in the analysis and radio layers (a bit-exact match on a derived double is
// almost always a latent nondeterminism or porting bug); these are the
// sanctioned replacements. `tol` is applied both absolutely (near zero) and
// relative to the larger magnitude.
[[nodiscard]] inline bool approx_equal(double a, double b,
                                       double tol = 1e-9) {
  if (std::isnan(a) || std::isnan(b)) return false;
  if (a == b) return true;  // exact hit, covers equal infinities
  // Unequal infinities (or inf vs finite) must not satisfy the relative
  // test via tol * inf = inf.
  if (std::isinf(a) || std::isinf(b)) return false;
  const double diff = std::abs(a - b);
  return diff <= tol ||
         diff <= tol * std::fmax(std::abs(a), std::abs(b));
}

[[nodiscard]] inline bool approx_zero(double a, double tol = 1e-9) {
  return std::abs(a) <= tol;
}

// Running mean / variance (Welford). Numerically stable for the millions of
// 500 ms samples a campaign produces.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  // NaN when no samples have been added: an empty window has no extrema,
  // and a silent 0.0 poisons downstream mins/maxes.
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  // Coefficient of variation as a percentage (the paper's "std. dev. as a
  // percentage over the mean", Fig. 9 bottom row).
  [[nodiscard]] double cv_percent() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::quiet_NaN();
  double max_ = std::numeric_limits<double>::quiet_NaN();
};

// Percentile of a sample set using linear interpolation between closest
// ranks (the "exclusive" R-7 definition used by numpy.percentile default).
// p in [0, 100]. The input need not be sorted. An empty input, a NaN in the
// input, or a NaN p yields NaN: sorting NaNs breaks strict weak ordering,
// so rejecting them explicitly beats returning an arbitrary rank.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

// Convenience: median.
[[nodiscard]] double median(std::span<const double> xs);

// Pearson's correlation coefficient. Returns 0 when either side is
// degenerate (fewer than 2 points or zero variance).
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

// Empirical CDF: sorted samples + evaluation and fixed-grid summarization
// for printing figure series.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  [[nodiscard]] std::size_t count() const { return sorted_.size(); }
  [[nodiscard]] bool empty() const { return sorted_.empty(); }
  // P(X <= x).
  [[nodiscard]] double at(double x) const;
  // Inverse CDF, p in [0, 1].
  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] const std::vector<double>& sorted() const { return sorted_; }

  // Sample the CDF at `points` evenly spaced quantiles -- the series a
  // bench prints to reproduce a figure's CDF curve.
  struct Point {
    double x;
    double p;
  };
  [[nodiscard]] std::vector<Point> curve(std::size_t points = 21) const;

 private:
  std::vector<double> sorted_;
};

// Fixed-width histogram over [lo, hi); out-of-range values clamp into the
// first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double fraction(std::size_t bin) const;
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace wheels
