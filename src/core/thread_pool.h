// Fixed-size worker-thread pool for the deterministic parallel engine.
//
// Parallelism in this codebase never reorders results: work is partitioned
// up front into independent units (one operator's phones, one city's
// baseline), each unit owns its forked Rng streams, and outputs land in
// pre-sized slots indexed by the unit. The pool therefore only needs two
// primitives: futures-based submit() and an index-driven
// parallel_for_each() that propagates the first exception in index order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace wheels {

// Observability hooks for the pool, installed by src/obs (core sits below
// obs in the layer DAG, so the dependency points the other way: obs fills
// in this struct and core calls through it). Any field may be null. The
// struct passed to set_thread_pool_hooks must outlive every pool -- obs
// installs a pointer to static storage exactly once, before workers exist.
struct ThreadPoolHooks {
  // After a task is enqueued; depth is the queue length it left behind.
  void (*on_submit)(std::size_t queue_depth) = nullptr;
  // Around each task body, on the worker thread that runs it.
  void (*on_task_begin)() = nullptr;
  void (*on_task_end)() = nullptr;
};

// nullptr uninstalls. The previous pointer is not freed or flushed.
void set_thread_pool_hooks(const ThreadPoolHooks* hooks);
[[nodiscard]] const ThreadPoolHooks* thread_pool_hooks();

// Resolve a worker count: `requested` >= 1 wins, otherwise the WHEELS_JOBS
// environment variable, otherwise 1 (fully sequential). The result is
// clamped to [1, 4 * hardware_concurrency] so a stray env value cannot
// oversubscribe the machine into thrashing.
[[nodiscard]] int resolve_jobs(int requested = 0);

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to at least 1). Workers drain tasks
  // in submission order; with one worker this is exactly inline execution,
  // deferred.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  // Schedule `fn` and return a future for its result. Exceptions thrown by
  // `fn` are captured into the future.
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    post([task] { (*task)(); });
    return result;
  }

 private:
  void post(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Run fn(0), ..., fn(count - 1) across `jobs` workers and wait for all of
// them. jobs <= 1 (or count <= 1) executes inline on the calling thread
// with no pool at all, so the sequential path stays thread-free. Futures
// are drained in index order, which makes exception propagation
// deterministic: the first throwing index wins regardless of scheduling.
template <typename Fn>
void parallel_for_each(int jobs, std::size_t count, Fn&& fn) {
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool pool(static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs), count)));
  std::vector<std::future<void>> pending;
  pending.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pending.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace wheels
