// Strong unit types used across the wheels library.
//
// The measurement domain mixes many scalar quantities (dBm, Mbps, ms,
// meters, mph, ...). Interfaces taking bare `double`s invite unit mix-ups
// (e.g. passing a distance in km where meters are expected), so each
// physical quantity gets a distinct, zero-overhead wrapper. Arithmetic is
// provided only where it is physically meaningful.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

namespace wheels {

// CRTP base providing comparison, addition/subtraction within the same
// quantity, and scaling by dimensionless factors.
template <typename Derived>
struct ScalarUnit {
  double value = 0.0;

  constexpr ScalarUnit() = default;
  constexpr explicit ScalarUnit(double v) : value(v) {}

  friend constexpr auto operator<=>(const Derived& a, const Derived& b) {
    return a.value <=> b.value;
  }
  friend constexpr bool operator==(const Derived& a, const Derived& b) {
    return a.value == b.value;
  }
  friend constexpr Derived operator+(const Derived& a, const Derived& b) {
    return Derived{a.value + b.value};
  }
  friend constexpr Derived operator-(const Derived& a, const Derived& b) {
    return Derived{a.value - b.value};
  }
  friend constexpr Derived operator*(const Derived& a, double k) {
    return Derived{a.value * k};
  }
  friend constexpr Derived operator*(double k, const Derived& a) {
    return Derived{a.value * k};
  }
  friend constexpr Derived operator/(const Derived& a, double k) {
    return Derived{a.value / k};
  }
  // Ratio of two quantities of the same kind is dimensionless.
  friend constexpr double operator/(const Derived& a, const Derived& b) {
    return a.value / b.value;
  }
  Derived& operator+=(const Derived& o) {
    value += o.value;
    return static_cast<Derived&>(*this);
  }
  Derived& operator-=(const Derived& o) {
    value -= o.value;
    return static_cast<Derived&>(*this);
  }
};

// ---------------------------------------------------------------------------
// Data rate.
// ---------------------------------------------------------------------------
struct Mbps : ScalarUnit<Mbps> {
  using ScalarUnit::ScalarUnit;
  [[nodiscard]] constexpr double bits_per_second() const { return value * 1e6; }
  [[nodiscard]] constexpr double bytes_per_ms() const { return value * 1e3 / 8.0; }
};

// ---------------------------------------------------------------------------
// Received power / signal strength (dBm) and gain/loss (dB).
//
// Dbm deliberately does NOT use the CRTP base: adding two absolute powers
// expressed in dBm is meaningless, so only dBm +/- dB and dBm - dBm -> dB
// are provided (below, after Db).
// ---------------------------------------------------------------------------
struct Dbm {
  double value = 0.0;

  constexpr Dbm() = default;
  constexpr explicit Dbm(double v) : value(v) {}

  friend constexpr auto operator<=>(const Dbm&, const Dbm&) = default;

  [[nodiscard]] double milliwatts() const { return std::pow(10.0, value / 10.0); }
  [[nodiscard]] static Dbm from_milliwatts(double mw) {
    return Dbm{10.0 * std::log10(mw)};
  }
};

struct Db : ScalarUnit<Db> {
  using ScalarUnit::ScalarUnit;
  [[nodiscard]] double linear() const { return std::pow(10.0, value / 10.0); }
  [[nodiscard]] static Db from_linear(double lin) {
    return Db{10.0 * std::log10(lin)};
  }
};

// Power arithmetic that is physically meaningful: dBm +/- dB.
constexpr Dbm operator+(Dbm p, Db g) { return Dbm{p.value + g.value}; }
constexpr Dbm operator-(Dbm p, Db l) { return Dbm{p.value - l.value}; }
constexpr Db operator-(Dbm a, Dbm b) { return Db{a.value - b.value}; }

// ---------------------------------------------------------------------------
// Durations. Milliseconds is the library's canonical time resolution.
// ---------------------------------------------------------------------------
struct Millis : ScalarUnit<Millis> {
  using ScalarUnit::ScalarUnit;
  [[nodiscard]] constexpr double seconds() const { return value / 1e3; }
  [[nodiscard]] constexpr double minutes() const { return value / 60e3; }
  [[nodiscard]] static constexpr Millis from_seconds(double s) {
    return Millis{s * 1e3};
  }
  [[nodiscard]] static constexpr Millis from_minutes(double m) {
    return Millis{m * 60e3};
  }
  [[nodiscard]] static constexpr Millis from_hours(double h) {
    return Millis{h * 3600e3};
  }
};

// ---------------------------------------------------------------------------
// Distances and speed.
// ---------------------------------------------------------------------------
struct Meters : ScalarUnit<Meters> {
  using ScalarUnit::ScalarUnit;
  [[nodiscard]] constexpr double kilometers() const { return value / 1e3; }
  [[nodiscard]] constexpr double miles() const { return value / 1609.344; }
  [[nodiscard]] static constexpr Meters from_kilometers(double km) {
    return Meters{km * 1e3};
  }
  [[nodiscard]] static constexpr Meters from_miles(double mi) {
    return Meters{mi * 1609.344};
  }
};

struct Mph : ScalarUnit<Mph> {
  using ScalarUnit::ScalarUnit;
  [[nodiscard]] constexpr double meters_per_second() const {
    return value * 0.44704;
  }
  [[nodiscard]] static constexpr Mph from_meters_per_second(double mps) {
    return Mph{mps / 0.44704};
  }
};

// distance = speed * time
constexpr Meters operator*(Mph v, Millis t) {
  return Meters{v.meters_per_second() * t.seconds()};
}
constexpr Meters operator*(Millis t, Mph v) { return v * t; }

// data = rate * time (bytes)
constexpr double bytes_transferred(Mbps rate, Millis t) {
  return rate.bytes_per_ms() * t.value;
}

// Frequency in MHz (carrier frequencies, bandwidths).
struct MHz : ScalarUnit<MHz> {
  using ScalarUnit::ScalarUnit;
  [[nodiscard]] constexpr double hz() const { return value * 1e6; }
  [[nodiscard]] constexpr double ghz() const { return value / 1e3; }
  [[nodiscard]] static constexpr MHz from_ghz(double g) { return MHz{g * 1e3}; }
};

inline std::ostream& operator<<(std::ostream& os, Mbps v) {
  return os << v.value << " Mbps";
}
inline std::ostream& operator<<(std::ostream& os, Dbm v) {
  return os << v.value << " dBm";
}
inline std::ostream& operator<<(std::ostream& os, Db v) {
  return os << v.value << " dB";
}
inline std::ostream& operator<<(std::ostream& os, Millis v) {
  return os << v.value << " ms";
}
inline std::ostream& operator<<(std::ostream& os, Meters v) {
  return os << v.value << " m";
}
inline std::ostream& operator<<(std::ostream& os, Mph v) {
  return os << v.value << " mph";
}
inline std::ostream& operator<<(std::ostream& os, MHz v) {
  return os << v.value << " MHz";
}

}  // namespace wheels
