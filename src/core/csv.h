// Minimal CSV reader/writer for exporting datasets and re-ingesting them in
// the logsync pipeline tests. Handles quoting of commas/quotes/newlines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wheels {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);

  // Quote a cell if needed per RFC 4180.
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
};

// Parse a full CSV document into rows of cells. Supports quoted cells with
// embedded commas, quotes ("" escape) and newlines.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(
    const std::string& text);

}  // namespace wheels
