#include "core/thread_pool.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

namespace wheels {

int resolve_jobs(int requested) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int cap = static_cast<int>(4u * hw);
  int jobs = requested;
  if (jobs < 1) {
    jobs = 1;
    if (const char* env = std::getenv("WHEELS_JOBS")) {
      errno = 0;
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      // A malformed WHEELS_JOBS falls back to sequential rather than
      // guessing: parallelism is an optimization, never a requirement.
      if (errno == 0 && end != env && *end == '\0' && v >= 1) {
        jobs = static_cast<int>(std::min<long>(v, cap));
      }
    }
  }
  return std::clamp(jobs, 1, cap);
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace wheels
