#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>

namespace wheels {
namespace {

std::atomic<const ThreadPoolHooks*> g_hooks{nullptr};

}  // namespace

void set_thread_pool_hooks(const ThreadPoolHooks* hooks) {
  g_hooks.store(hooks, std::memory_order_release);
}

const ThreadPoolHooks* thread_pool_hooks() {
  return g_hooks.load(std::memory_order_acquire);
}

int resolve_jobs(int requested) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int cap = static_cast<int>(4u * hw);
  int jobs = requested;
  if (jobs < 1) {
    jobs = 1;
    if (const char* env = std::getenv("WHEELS_JOBS")) {
      errno = 0;
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      // A malformed WHEELS_JOBS falls back to sequential rather than
      // guessing: parallelism is an optimization, never a requirement.
      if (errno == 0 && end != env && *end == '\0' && v >= 1) {
        jobs = static_cast<int>(std::min<long>(v, cap));
      }
    }
  }
  return std::clamp(jobs, 1, cap);
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    depth = tasks_.size();
  }
  cv_.notify_one();
  if (const ThreadPoolHooks* hooks = thread_pool_hooks())
    if (hooks->on_submit != nullptr) hooks->on_submit(depth);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    const ThreadPoolHooks* hooks = thread_pool_hooks();
    if (hooks != nullptr && hooks->on_task_begin != nullptr)
      hooks->on_task_begin();
    task();
    if (hooks != nullptr && hooks->on_task_end != nullptr) hooks->on_task_end();
  }
}

}  // namespace wheels
