#include "core/rng.h"

#include <atomic>
#include <cmath>
#include <numbers>

namespace wheels {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a for string labels.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::atomic<const RngHooks*> g_rng_hooks{nullptr};

}  // namespace

void set_rng_hooks(const RngHooks* hooks) {
  g_rng_hooks.store(hooks, std::memory_order_release);
}

const RngHooks* rng_hooks() {
  return g_rng_hooks.load(std::memory_order_acquire);
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void Rng::init_state(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Stream fingerprint: a fixed mix of the initial state words. Copies
  // share it (copying duplicates a stream, it does not create one), and it
  // never changes as the generator advances.
  id_ = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 43);
}

Rng::Rng(std::uint64_t seed) {
  init_state(seed);
  if (const RngHooks* h = rng_hooks(); h && h->on_seed) {
    h->on_seed(id_, seed);
  }
}

Rng::Rng(std::uint64_t seed, NoHook) { init_state(seed); }

Rng Rng::fork_impl(std::uint64_t salt, const char* label,
                   std::size_t label_len) const {
  // Mix the four state words with the salt through SplitMix64 to obtain a
  // decorrelated child seed without advancing this generator.
  std::uint64_t sm = s_[0] ^ rotl(s_[1], 17) ^ rotl(s_[2], 31) ^ s_[3] ^ salt;
  Rng child(splitmix64(sm), NoHook{});
  if (const RngHooks* h = rng_hooks(); h && h->on_fork) {
    h->on_fork(id_, child.id_, salt, label, label_len);
  }
  return child;
}

Rng Rng::fork(std::uint64_t salt) const { return fork_impl(salt, nullptr, 0); }

Rng Rng::fork(std::string_view label) const {
  return fork_impl(fnv1a(label), label.data(), label.size());
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  if (const RngHooks* h = g_rng_hooks.load(std::memory_order_relaxed);
      h && h->on_draw) {
    h->on_draw(id_);
  }
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Lemire's unbiased bounded generation would be overkill here; modulo bias
  // for n << 2^64 is negligible for simulation purposes, but we still use
  // the multiply-shift trick which is both fast and nearly unbiased.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
}

double Rng::normal() {
  // Box-Muller; discard the spare to keep the stream call-parity free.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

bool Rng::chance(double p) { return uniform() < p; }

}  // namespace wheels
