#include "core/geo.h"

#include <cmath>
#include <numbers>

namespace wheels {
namespace {

constexpr double kEarthRadiusM = 6'371'000.0;

constexpr double deg2rad(double d) { return d * std::numbers::pi / 180.0; }
constexpr double rad2deg(double r) { return r * 180.0 / std::numbers::pi; }

}  // namespace

Meters haversine_distance(const LatLon& a, const LatLon& b) {
  const double phi1 = deg2rad(a.lat);
  const double phi2 = deg2rad(b.lat);
  const double dphi = deg2rad(b.lat - a.lat);
  const double dlam = deg2rad(b.lon - a.lon);
  const double s = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlam / 2) *
                       std::sin(dlam / 2);
  return Meters{2.0 * kEarthRadiusM *
                std::atan2(std::sqrt(s), std::sqrt(1.0 - s))};
}

LatLon interpolate(const LatLon& a, const LatLon& b, double t) {
  return LatLon{a.lat + (b.lat - a.lat) * t, a.lon + (b.lon - a.lon) * t};
}

double initial_bearing_deg(const LatLon& a, const LatLon& b) {
  const double phi1 = deg2rad(a.lat);
  const double phi2 = deg2rad(b.lat);
  const double dlam = deg2rad(b.lon - a.lon);
  const double y = std::sin(dlam) * std::cos(phi2);
  const double x = std::cos(phi1) * std::sin(phi2) -
                   std::sin(phi1) * std::cos(phi2) * std::cos(dlam);
  double brg = rad2deg(std::atan2(y, x));
  if (brg < 0) brg += 360.0;
  return brg;
}

LatLon destination(const LatLon& origin, double bearing_deg, Meters distance) {
  const double delta = distance.value / kEarthRadiusM;
  const double theta = deg2rad(bearing_deg);
  const double phi1 = deg2rad(origin.lat);
  const double lam1 = deg2rad(origin.lon);
  const double phi2 = std::asin(std::sin(phi1) * std::cos(delta) +
                                std::cos(phi1) * std::sin(delta) *
                                    std::cos(theta));
  const double lam2 =
      lam1 + std::atan2(std::sin(theta) * std::sin(delta) * std::cos(phi1),
                        std::cos(delta) - std::sin(phi1) * std::sin(phi2));
  return LatLon{rad2deg(phi2), rad2deg(lam2)};
}

}  // namespace wheels
