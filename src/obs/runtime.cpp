#include "obs/runtime.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <utility>

#include "core/thread_pool.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/rng_audit.h"
#include "obs/trace.h"

namespace wheels::obs {
namespace {

struct ExportState {
  std::mutex mu;
  std::string metrics_path;
  std::string trace_path;
  std::string rng_audit_path;
  bool atexit_registered = false;
};

ExportState& state() {
  // wheels-lint: allow(static-local)
  static ExportState instance;
  return instance;
}

struct PoolMetrics {
  Counter& tasks;
  Histogram& task_us;
  Gauge& depth_max;
};

// The pool hooks run on worker threads, so the handles must exist before
// any pool does: install_thread_pool_hooks() touches this first.
PoolMetrics& pool_metrics() {
  // wheels-lint: allow(static-local)
  static PoolMetrics m{
      Registry::global().counter("pool.tasks", Det::WallClock),
      Registry::global().histogram(
          "pool.task_us",
          {100, 1000, 10000, 100000, 1000000, 10000000}, Det::WallClock),
      Registry::global().gauge("pool.queue_depth_max", Det::WallClock),
  };
  return m;
}

thread_local std::int64_t t_task_start_ns = 0;  // wheels-lint: allow(static-local)

void hook_on_submit(std::size_t depth) {
  pool_metrics().depth_max.set_max(static_cast<std::int64_t>(depth));
}

void hook_task_begin() { t_task_start_ns = now_ns(); }

void hook_task_end() {
  PoolMetrics& m = pool_metrics();
  m.tasks.inc();
  m.task_us.observe((now_ns() - t_task_start_ns) / 1000);
}

// nullptr / "" / "0" all mean "off" so WHEELS_TRACE=0 disables cleanly.
bool env_path(const char* value, std::string& out) {
  if (value == nullptr) return false;
  const std::string_view v(value);
  if (v.empty() || v == "0") return false;
  out.assign(v);
  return true;
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return (std::fclose(f) == 0) && wrote;
}

void flush_at_exit() { (void)flush_exports(); }

// Caller holds state().mu. Constructing the registry and the trace
// collector first matters: atexit handlers and magic-static destructors
// run in one reverse-registration sequence, so both collectors must exist
// (their destructors registered) before the flush handler registers --
// otherwise a collector constructed later (e.g. by the first span to
// close) would be torn down before the flush reads it.
void ensure_atexit_locked(ExportState& s) {
  if (s.atexit_registered) return;
  (void)Registry::global();
  (void)trace_events();
  (void)rng_audit_enabled();
  (void)std::atexit(&flush_at_exit);
  s.atexit_registered = true;
}

}  // namespace

void install_thread_pool_hooks() {
  (void)pool_metrics();
  // wheels-lint: allow(static-local)
  static const ThreadPoolHooks hooks{&hook_on_submit, &hook_task_begin,
                                     &hook_task_end};
  set_thread_pool_hooks(&hooks);
}

void init_from_env() {
  install_thread_pool_hooks();
  std::string path;
  if (env_path(std::getenv("WHEELS_METRICS"), path))
    set_metrics_export_path(std::move(path));
  if (env_path(std::getenv("WHEELS_TRACE"), path))
    set_trace_export_path(std::move(path));
  if (env_path(std::getenv("WHEELS_RNG_AUDIT"), path))
    set_rng_audit_enabled(true);
  if (env_path(std::getenv("WHEELS_RNG_AUDIT_OUT"), path))
    set_rng_audit_export_path(std::move(path));
}

void set_metrics_export_path(std::string path) {
  install_thread_pool_hooks();
  ExportState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.metrics_path = std::move(path);
  if (!s.metrics_path.empty()) ensure_atexit_locked(s);
}

void set_trace_export_path(std::string path) {
  install_thread_pool_hooks();
  ExportState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.trace_path = std::move(path);
  set_trace_enabled(!s.trace_path.empty());
  if (!s.trace_path.empty()) ensure_atexit_locked(s);
}

void set_rng_audit_export_path(std::string path) {
  install_thread_pool_hooks();
  ExportState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.rng_audit_path = std::move(path);
  if (!s.rng_audit_path.empty()) {
    set_rng_audit_enabled(true);
    ensure_atexit_locked(s);
  }
}

std::string metrics_export_path() {
  ExportState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.metrics_path;
}

std::string trace_export_path() {
  ExportState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.trace_path;
}

std::string rng_audit_export_path() {
  ExportState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.rng_audit_path;
}

bool flush_exports() {
  std::string metrics_path;
  std::string trace_path;
  std::string rng_audit_path;
  {
    ExportState& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    metrics_path = s.metrics_path;
    trace_path = s.trace_path;
    rng_audit_path = s.rng_audit_path;
  }
  bool ok = true;
  if (!metrics_path.empty()) {
    const std::string body = to_jsonl(Registry::global().snapshot());
    if (!write_file(metrics_path, body)) {
      std::fprintf(stderr, "obs: failed to write metrics to %s\n",
                   metrics_path.c_str());
      ok = false;
    }
  }
  if (!trace_path.empty()) {
    if (!write_file(trace_path, trace_events_to_chrome_json())) {
      std::fprintf(stderr, "obs: failed to write trace to %s\n",
                   trace_path.c_str());
      ok = false;
    }
  }
  if (!rng_audit_path.empty()) {
    if (!write_file(rng_audit_path,
                    rng_audit_to_jsonl(rng_audit_snapshot()))) {
      std::fprintf(stderr, "obs: failed to write rng audit to %s\n",
                   rng_audit_path.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace wheels::obs
