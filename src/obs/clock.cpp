#include "obs/clock.h"

#include <atomic>
#include <chrono>

namespace wheels::obs {
namespace {

std::atomic<ClockFn> g_clock{nullptr};

std::int64_t monotonic_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::int64_t now_ns() {
  if (const ClockFn fn = g_clock.load(std::memory_order_relaxed)) return fn();
  return monotonic_now_ns();
}

void set_clock_for_testing(ClockFn fn) {
  g_clock.store(fn, std::memory_order_relaxed);
}

}  // namespace wheels::obs
