#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

#include "obs/clock.h"

namespace wheels::obs {
namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint32_t> g_next_tid{1};

struct Collector {
  std::mutex mu;
  std::vector<TraceEvent> events;
};

Collector& collector() {
  // wheels-lint: allow(static-local)
  static Collector instance;
  return instance;
}

std::uint32_t local_tid() {
  thread_local std::uint32_t id = 0;  // wheels-lint: allow(static-local)
  if (id == 0) id = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

void append_int(std::string& out, std::int64_t v) {
  std::array<char, 32> buf{};
  const int n =
      std::snprintf(buf.data(), buf.size(), "%lld", static_cast<long long>(v));
  out.append(buf.data(), static_cast<std::size_t>(n));
}

}  // namespace

bool trace_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_trace_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void clear_trace_events() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mu);
  c.events.clear();
}

std::vector<TraceEvent> trace_events() {
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mu);
  return c.events;
}

std::string trace_events_to_chrome_json() {
  const std::vector<TraceEvent> events = trace_events();
  std::int64_t origin_ns = 0;
  if (!events.empty()) {
    origin_ns = events.front().start_ns;
    for (const TraceEvent& e : events)
      origin_ns = std::min(origin_ns, e.start_ns);
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    const std::int64_t ts_us = (e.start_ns - origin_ns) / 1000;
    const std::int64_t end_us = (e.end_ns - origin_ns) / 1000;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, e.name);
    out += "\",\"cat\":\"";
    append_json_escaped(out, e.cat);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    append_int(out, e.tid);
    out += ",\"ts\":";
    append_int(out, ts_us);
    out += ",\"dur\":";
    append_int(out, end_us - ts_us);
    out += '}';
  }
  out += "]}\n";
  return out;
}

Span::Span(std::string_view name, std::string_view cat) {
  if (!trace_enabled()) return;
  name_.assign(name);
  cat_.assign(cat);
  start_ns_ = now_ns();
  armed_ = true;
}

Span::~Span() {
  if (!armed_) return;
  TraceEvent event;
  event.name = std::move(name_);
  event.cat = std::move(cat_);
  event.tid = local_tid();
  event.start_ns = start_ns_;
  event.end_ns = now_ns();
  Collector& c = collector();
  const std::lock_guard<std::mutex> lock(c.mu);
  c.events.push_back(std::move(event));
}

}  // namespace wheels::obs
