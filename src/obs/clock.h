// The observability clock: the only place in src/ allowed to read a host
// monotonic clock.
//
// Everything the simulation computes derives from SimTime; wall-clock time
// exists only to *measure the measurement* (task latency, phase durations,
// trace span timestamps) and must never leak into results. Funnelling every
// reading through obs::now_ns() keeps that boundary mechanical: the
// steady-clock wheels_lint rule bans std::chrono::steady_clock /
// high_resolution_clock everywhere else under src/, and tests swap the
// source via set_clock_for_testing() to make span math deterministic.
#pragma once

#include <cstdint>

namespace wheels::obs {

// A replacement timestamp source for tests. Must be monotonic
// non-decreasing; returns nanoseconds from an arbitrary origin.
using ClockFn = std::int64_t (*)();

// Nanoseconds from the process monotonic clock (or the test override).
[[nodiscard]] std::int64_t now_ns();

// Override the timestamp source (nullptr restores the real monotonic
// clock). Test-only: swapping clocks while spans are open mixes origins.
void set_clock_for_testing(ClockFn fn);

}  // namespace wheels::obs
