// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms with per-thread shards.
//
// Determinism contract (see DESIGN.md "Observability"):
//   * Collection is bit-transparent. No metric update touches an Rng, a
//     SimTime, or any simulation output; enabling metrics cannot change
//     campaign bytes.
//   * Every value is integral (counts, bytes, microseconds), so merging
//     the per-thread shards is a plain sum -- associative and commutative,
//     independent of worker scheduling and of the WHEELS_JOBS value.
//   * Snapshots emit metrics sorted by name, so the exported byte stream
//     does not depend on which thread happened to register a metric first.
//   * Metrics are tagged Det::Stable (a pure function of the workload:
//     cache hits, simulation counts, bytes) or Det::WallClock (durations,
//     queue depths -- anything scheduling-dependent). Tests that assert
//     byte-stability across jobs values mask the WallClock ones, which the
//     JSONL exporter supports directly via stable_only.
//
// Hot-path cost: an update is one thread-local lookup plus a relaxed
// atomic load/store on a cell only its owning thread writes (snapshots
// read the same cells with relaxed loads, so ThreadSanitizer agrees the
// scheme is race-free). There is no enable check: collection is always on
// and cheap; only the exporters are gated by WHEELS_METRICS/WHEELS_TRACE.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wheels::obs {

class Registry;

// Whether a metric's value is a pure function of the workload (Stable) or
// depends on scheduling / wall-clock time (WallClock). Stable metrics must
// be byte-identical across WHEELS_JOBS values; WallClock ones are masked
// by determinism tests.
enum class Det : std::uint8_t { Stable, WallClock };

// Handles are registry-owned and live for the process lifetime; holding a
// reference across threads is safe (updates land in the calling thread's
// shard).
class Counter {
 public:
  void add(std::uint64_t n);
  void inc() { add(1); }

 private:
  friend class Registry;
  Counter(Registry* reg, std::size_t cell) : reg_(reg), cell_(cell) {}
  Registry* reg_;
  std::size_t cell_;
};

class Gauge {
 public:
  void set(std::int64_t v);
  // Raise the gauge to v if v is larger (high-watermark semantics).
  void set_max(std::int64_t v);

 private:
  friend class Registry;
  Gauge(Registry* reg, std::size_t index) : reg_(reg), index_(index) {}
  Registry* reg_;
  std::size_t index_;
};

class Histogram {
 public:
  // Records v into the first bucket whose upper bound is >= v (the last,
  // unbounded bucket catches the rest). Negative values clamp to 0.
  void observe(std::int64_t v);

 private:
  friend class Registry;
  Histogram(Registry* reg, std::size_t cell,
            const std::vector<std::int64_t>* bounds)
      : reg_(reg), cell_(cell), bounds_(bounds) {}
  Registry* reg_;
  std::size_t cell_;  // first of bounds->size() + 3 cells
                      // (per-bucket counts incl. overflow, sum, count)
  const std::vector<std::int64_t>* bounds_;  // registry-owned, sorted
};

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

[[nodiscard]] constexpr std::string_view to_string(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

// One merged metric in a snapshot.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  Det det = Det::Stable;
  std::int64_t value = 0;            // counter / gauge
  std::vector<std::int64_t> bounds;  // histogram upper bounds (inclusive)
  std::vector<std::uint64_t> counts; // bounds.size() + 1 (overflow last)
  std::int64_t sum = 0;              // histogram: sum of observed values
  std::uint64_t count = 0;           // histogram: number of observations
};

struct Snapshot {
  std::vector<MetricValue> metrics;  // sorted by name

  // nullptr when the metric was never registered.
  [[nodiscard]] const MetricValue* find(std::string_view name) const;
};

// One JSON object per line, metrics in name order. With stable_only, the
// WallClock metrics are dropped (the mask determinism tests apply).
[[nodiscard]] std::string to_jsonl(const Snapshot& snap,
                                   bool stable_only = false);

class Registry {
 public:
  // The process-wide registry every instrumentation site uses.
  static Registry& global();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Registration is idempotent: the same name always returns the same
  // handle. Re-registering with a different kind (or different histogram
  // bounds) is a programming error and aborts loudly in debug builds; in
  // release the first registration wins.
  Counter& counter(std::string_view name, Det det = Det::Stable);
  Gauge& gauge(std::string_view name, Det det = Det::WallClock);
  Histogram& histogram(std::string_view name,
                       std::vector<std::int64_t> bounds,
                       Det det = Det::WallClock);

  // Merge every thread's shard (plus the totals of threads that have
  // exited) into one snapshot, sorted by metric name.
  [[nodiscard]] Snapshot snapshot() const;

  // Zero every value while keeping all registrations (handles stay
  // valid). Only call while no worker threads are updating metrics.
  void reset_values_for_testing();

  // Opaque internals (defined in metrics.cpp; the per-thread shard slot
  // there needs to name the type, hence the public declaration).
  class Impl;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  Registry();
  ~Registry();

  void bump(std::size_t cell, std::uint64_t n);
  void gauge_store(std::size_t index, std::int64_t v, bool max_only);

  Impl* impl_;
};

}  // namespace wheels::obs
