// Wiring between the obs collectors and the outside world: env-var gating,
// exporter file paths, the atexit flush, and the core thread-pool hooks.
//
// Exporters are off by default. WHEELS_METRICS=<path> arms the JSON-lines
// metrics snapshot, WHEELS_TRACE=<path> arms the Chrome trace_event file
// (empty or "0" keeps an exporter off). WHEELS_RNG_AUDIT=1 enables the RNG
// provenance recorder and WHEELS_RNG_AUDIT_OUT=<path> additionally writes
// its JSONL fork tree at exit (setting only _OUT implies the recorder).
// Tools can arm the same exporters programmatically without touching the
// environment.
#pragma once

#include <string>

namespace wheels::obs {

// Read WHEELS_METRICS / WHEELS_TRACE, arm the matching exporters, install
// the thread-pool hooks, and register an atexit flush. Idempotent; safe to
// call from every entry point that wants observability.
void init_from_env();

// Arm (non-empty path) or disarm (empty) an exporter explicitly. Arming
// the trace exporter also turns span collection on. Also installs the
// thread-pool hooks and the atexit flush, like init_from_env().
void set_metrics_export_path(std::string path);
void set_trace_export_path(std::string path);
// Arming the RNG-audit exporter also enables the audit recorder (see
// obs/rng_audit.h); the JSONL fork-tree snapshot is written at flush.
void set_rng_audit_export_path(std::string path);

[[nodiscard]] std::string metrics_export_path();
[[nodiscard]] std::string trace_export_path();
[[nodiscard]] std::string rng_audit_export_path();

// Write every armed export now (overwriting the files). Returns false if
// any armed export failed to write; disarmed exporters are skipped and
// never fail. Also runs at process exit, so explicit calls are only needed
// to observe the files before exit.
bool flush_exports();

// Point core's ThreadPoolHooks at the obs counters (task count/latency,
// queue depth high-watermark). Idempotent; init_from_env() calls it.
void install_thread_pool_hooks();

}  // namespace wheels::obs
