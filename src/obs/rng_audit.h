// Runtime RNG provenance audit: the dynamic half of tools/wheels_rng.py.
//
// When enabled (WHEELS_RNG_AUDIT=1 or programmatically), core's RngHooks
// are pointed at a process-wide recorder that aggregates, per stream
// fingerprint (Rng::stream_id), how the stream came to exist (seeded or
// forked, from which parent, with which salt/label) and how many base
// draws it consumed. The recorder is observational only -- it never
// touches generator state -- so arming it cannot change campaign bytes,
// and draw counts are summed with commutative relaxed atomics so they are
// identical for every WHEELS_JOBS value.
//
// The JSONL snapshot (one object per stream, sorted by id) is what
// `wheels_rng.py --check-trace` validates against the static fork graph:
// every runtime fork edge must exist in the whole-program graph, no two
// distinct (parent, salt) pairs may map to one child id, and two traces
// (jobs=1 vs jobs=4) must agree stream-for-stream on draw counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wheels::obs {

// Aggregated per-stream statistics. `id` keys the runtime fork tree;
// copies of one Rng share an id, so their draws accumulate into one row.
struct RngStreamStat {
  std::uint64_t id = 0;
  bool has_parent = false;   // false for seed-constructed roots
  std::uint64_t parent = 0;
  std::uint64_t salt = 0;    // fork salt (fnv1a(label) for labelled forks)
  bool has_label = false;
  std::string label;
  std::uint64_t seeds = 0;     // direct seed-constructions observed
  std::uint64_t forks = 0;     // times produced by fork() (repeats allowed)
  std::uint64_t draws = 0;     // base draws consumed across all copies
  std::uint64_t conflicts = 0; // provenance conflicts (see .cpp)
};

// Install (or remove) the audit hooks. Enable before campaign threads
// exist; disabling mid-draw is not synchronized. Idempotent.
void set_rng_audit_enabled(bool on);
[[nodiscard]] bool rng_audit_enabled();

// Drop all recorded streams (the enabled state is kept). Must not race
// with in-flight draws; intended for tests that compare two runs.
void reset_rng_audit();

// Copy out the recorded streams, sorted by id (deterministic).
[[nodiscard]] std::vector<RngStreamStat> rng_audit_snapshot();

// One JSON object per stream, newline-terminated, in snapshot order.
[[nodiscard]] std::string rng_audit_to_jsonl(
    const std::vector<RngStreamStat>& stats);

}  // namespace wheels::obs
