// Scoped trace spans exported as a Chrome trace_event file (loadable in
// chrome://tracing or Perfetto).
//
// Spans are coarse -- campaign phases, per-operator replays, dataset cache
// operations -- so the collector is a mutex-guarded central vector; a span
// is recorded once, at destruction. Collection is off unless tracing was
// enabled (WHEELS_TRACE / --trace), and a disarmed Span is a relaxed
// atomic load plus two dead stores, so instrumented code pays nothing
// measurable when tracing is off.
//
// Determinism contract: span timestamps come from obs::now_ns() and are
// wall-clock by definition. Tracing must stay bit-transparent -- it never
// touches simulation state -- and nothing in the campaign output may
// depend on it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wheels::obs {

// A completed span. tid is a small per-thread id assigned in the order
// threads first emit an event (1-based); pid in the export is always 1.
struct TraceEvent {
  std::string name;
  std::string cat;
  std::uint32_t tid = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
};

[[nodiscard]] bool trace_enabled();

// Flip collection on or off. Spans already open keep the armed state they
// started with.
void set_trace_enabled(bool on);

void clear_trace_events();

// Copy of every span recorded so far, in completion order.
[[nodiscard]] std::vector<TraceEvent> trace_events();

// Chrome trace_event JSON ("X" complete events, microsecond timestamps
// rebased to the earliest span so the viewer opens at t=0). Nesting
// survives the ns->us floor because start and end are floored with the
// same origin.
[[nodiscard]] std::string trace_events_to_chrome_json();

// RAII scope: records one TraceEvent from construction to destruction.
// Construction snapshots the name only when tracing is enabled.
class Span {
 public:
  explicit Span(std::string_view name) : Span(name, "campaign") {}
  Span(std::string_view name, std::string_view cat);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string name_;
  std::string cat_;
  std::int64_t start_ns_ = 0;
  bool armed_ = false;
};

}  // namespace wheels::obs
