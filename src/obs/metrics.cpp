#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace wheels::obs {
namespace {

constexpr std::size_t kChunkCells = 64;

struct CellChunk {
  std::array<std::atomic<std::uint64_t>, kChunkCells> cells{};
};

// Per-thread cell store. The owning thread is the only writer, so bump()
// can use a plain relaxed load+store instead of an RMW; snapshot readers
// use relaxed loads on the same atomics and can never see a torn value.
// The chunk vector itself only grows under the registry mutex (which
// snapshot also holds), and bump() never runs concurrently with the owner
// growing its own shard.
class Shard {
 public:
  void bump(std::size_t i, std::uint64_t n) {
    std::atomic<std::uint64_t>& cell =
        chunks_[i / kChunkCells]->cells[i % kChunkCells];
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t load(std::size_t i) const {
    if (i >= cap_.load(std::memory_order_relaxed)) return 0;
    return chunks_[i / kChunkCells]->cells[i % kChunkCells].load(
        std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const {
    return cap_.load(std::memory_order_relaxed);
  }

  // Caller holds the registry mutex.
  void grow_to(std::size_t cells) {
    while (cap_.load(std::memory_order_relaxed) < cells) {
      chunks_.push_back(std::make_unique<CellChunk>());
      cap_.store(chunks_.size() * kChunkCells, std::memory_order_relaxed);
    }
  }

  // Caller holds the registry mutex and guarantees no concurrent updates.
  void zero() {
    for (auto& chunk : chunks_)
      for (auto& cell : chunk->cells) cell.store(0, std::memory_order_relaxed);
  }

 private:
  std::vector<std::unique_ptr<CellChunk>> chunks_;
  std::atomic<std::size_t> cap_{0};
};

}  // namespace

class Registry::Impl {
 public:
  struct Def {
    std::string name;
    MetricKind kind = MetricKind::Counter;
    Det det = Det::Stable;
    std::vector<std::int64_t> bounds;  // histogram only
    std::size_t cell_begin = 0;        // counter / histogram
    std::size_t cell_count = 0;
    std::size_t gauge_index = 0;  // gauge only
    // The process-lifetime handle handed back to callers. Defs live in a
    // deque so these addresses are stable across registrations.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct GaugeCell {
    std::atomic<std::int64_t> v{0};
  };

  mutable std::mutex mu;
  std::deque<Def> defs;
  std::map<std::string, std::size_t, std::less<>> by_name;
  std::deque<GaugeCell> gauges;
  std::size_t total_cells = 0;
  std::vector<std::uint64_t> retired;  // totals of exited threads
  std::vector<Shard*> shards;          // live per-thread shards
};

namespace {

// The calling thread's shard, registered with the process registry on
// first use and folded into the retired totals when the thread exits.
// Thread-local destruction strongly happens before static destruction on
// the same thread, and worker threads are joined before process exit, so
// the registry outlives every slot that points at it.
struct ThreadSlot {
  Registry::Impl* impl = nullptr;
  Shard shard;

  ~ThreadSlot() {
    if (impl == nullptr) return;
    const std::lock_guard<std::mutex> lock(impl->mu);
    for (std::size_t i = 0; i < impl->total_cells; ++i)
      impl->retired[i] += shard.load(i);
    impl->shards.erase(
        std::remove(impl->shards.begin(), impl->shards.end(), &shard),
        impl->shards.end());
  }
};

thread_local ThreadSlot t_slot;  // wheels-lint: allow(static-local)

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

void append_int(std::string& out, std::int64_t v) {
  std::array<char, 32> buf{};
  const int n =
      std::snprintf(buf.data(), buf.size(), "%lld", static_cast<long long>(v));
  out.append(buf.data(), static_cast<std::size_t>(n));
}

void append_uint(std::string& out, std::uint64_t v) {
  std::array<char, 32> buf{};
  const int n = std::snprintf(buf.data(), buf.size(), "%llu",
                              static_cast<unsigned long long>(v));
  out.append(buf.data(), static_cast<std::size_t>(n));
}

}  // namespace

Registry& Registry::global() {
  // Magic static: constructed on first use, before any thread-local slot
  // can attach to it.
  // wheels-lint: allow(static-local)
  static Registry instance;
  return instance;
}

Registry::Registry() : impl_(new Impl) {}

Registry::~Registry() { delete impl_; }

Counter& Registry::counter(std::string_view name, Det det) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  if (const auto it = impl_->by_name.find(name); it != impl_->by_name.end()) {
    Impl::Def& def = impl_->defs[it->second];
    assert(def.kind == MetricKind::Counter && "metric re-registered as counter");
    return *def.counter;
  }
  Impl::Def& def = impl_->defs.emplace_back();
  def.name = std::string(name);
  def.kind = MetricKind::Counter;
  def.det = det;
  def.cell_begin = impl_->total_cells;
  def.cell_count = 1;
  impl_->total_cells += 1;
  impl_->retired.resize(impl_->total_cells, 0);
  def.counter.reset(new Counter(this, def.cell_begin));
  impl_->by_name.emplace(def.name, impl_->defs.size() - 1);
  return *def.counter;
}

Gauge& Registry::gauge(std::string_view name, Det det) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  if (const auto it = impl_->by_name.find(name); it != impl_->by_name.end()) {
    Impl::Def& def = impl_->defs[it->second];
    assert(def.kind == MetricKind::Gauge && "metric re-registered as gauge");
    return *def.gauge;
  }
  Impl::Def& def = impl_->defs.emplace_back();
  def.name = std::string(name);
  def.kind = MetricKind::Gauge;
  def.det = det;
  def.gauge_index = impl_->gauges.size();
  impl_->gauges.emplace_back();
  def.gauge.reset(new Gauge(this, def.gauge_index));
  impl_->by_name.emplace(def.name, impl_->defs.size() - 1);
  return *def.gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<std::int64_t> bounds, Det det) {
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  const std::lock_guard<std::mutex> lock(impl_->mu);
  if (const auto it = impl_->by_name.find(name); it != impl_->by_name.end()) {
    Impl::Def& def = impl_->defs[it->second];
    assert(def.kind == MetricKind::Histogram && def.bounds == bounds &&
           "metric re-registered as a different histogram");
    return *def.histogram;
  }
  Impl::Def& def = impl_->defs.emplace_back();
  def.name = std::string(name);
  def.kind = MetricKind::Histogram;
  def.det = det;
  def.bounds = std::move(bounds);
  def.cell_begin = impl_->total_cells;
  // bounds.size() + 1 bucket counts (overflow last), then sum, then count.
  def.cell_count = def.bounds.size() + 3;
  impl_->total_cells += def.cell_count;
  impl_->retired.resize(impl_->total_cells, 0);
  def.histogram.reset(new Histogram(this, def.cell_begin, &def.bounds));
  impl_->by_name.emplace(def.name, impl_->defs.size() - 1);
  return *def.histogram;
}

void Registry::bump(std::size_t cell, std::uint64_t n) {
  ThreadSlot& slot = t_slot;
  if (slot.impl != impl_) {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    slot.shard.grow_to(impl_->total_cells);
    impl_->shards.push_back(&slot.shard);
    slot.impl = impl_;
  }
  if (cell >= slot.shard.capacity()) {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    slot.shard.grow_to(impl_->total_cells);
  }
  slot.shard.bump(cell, n);
}

void Registry::gauge_store(std::size_t index, std::int64_t v, bool max_only) {
  Impl::GaugeCell& cell = impl_->gauges[index];
  if (!max_only) {
    cell.v.store(v, std::memory_order_relaxed);
    return;
  }
  std::int64_t cur = cell.v.load(std::memory_order_relaxed);
  while (v > cur && !cell.v.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::uint64_t> totals = impl_->retired;
  for (const Shard* shard : impl_->shards)
    for (std::size_t i = 0; i < totals.size(); ++i) totals[i] += shard->load(i);

  Snapshot snap;
  snap.metrics.reserve(impl_->defs.size());
  for (const Impl::Def& def : impl_->defs) {
    MetricValue mv;
    mv.name = def.name;
    mv.kind = def.kind;
    mv.det = def.det;
    switch (def.kind) {
      case MetricKind::Counter:
        mv.value = static_cast<std::int64_t>(totals[def.cell_begin]);
        break;
      case MetricKind::Gauge:
        mv.value = impl_->gauges[def.gauge_index].v.load(
            std::memory_order_relaxed);
        break;
      case MetricKind::Histogram: {
        mv.bounds = def.bounds;
        const std::size_t buckets = def.bounds.size() + 1;
        mv.counts.assign(buckets, 0);
        for (std::size_t b = 0; b < buckets; ++b)
          mv.counts[b] = totals[def.cell_begin + b];
        mv.sum = static_cast<std::int64_t>(totals[def.cell_begin + buckets]);
        mv.count = totals[def.cell_begin + buckets + 1];
        break;
      }
    }
    snap.metrics.push_back(std::move(mv));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snap;
}

void Registry::reset_values_for_testing() {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  std::fill(impl_->retired.begin(), impl_->retired.end(), 0);
  for (Shard* shard : impl_->shards) shard->zero();
  for (Impl::GaugeCell& cell : impl_->gauges)
    cell.v.store(0, std::memory_order_relaxed);
}

void Counter::add(std::uint64_t n) { reg_->bump(cell_, n); }

void Gauge::set(std::int64_t v) { reg_->gauge_store(index_, v, false); }

void Gauge::set_max(std::int64_t v) { reg_->gauge_store(index_, v, true); }

void Histogram::observe(std::int64_t v) {
  if (v < 0) v = 0;
  const auto it = std::lower_bound(bounds_->begin(), bounds_->end(), v);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_->begin());  // == size() -> overflow
  const std::size_t buckets = bounds_->size() + 1;
  reg_->bump(cell_ + bucket, 1);
  reg_->bump(cell_ + buckets, static_cast<std::uint64_t>(v));
  reg_->bump(cell_ + buckets + 1, 1);
}

const MetricValue* Snapshot::find(std::string_view name) const {
  const auto it = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const MetricValue& mv, std::string_view n) { return mv.name < n; });
  if (it == metrics.end() || it->name != name) return nullptr;
  return &*it;
}

std::string to_jsonl(const Snapshot& snap, bool stable_only) {
  std::string out;
  for (const MetricValue& mv : snap.metrics) {
    if (stable_only && mv.det != Det::Stable) continue;
    out += "{\"metric\":\"";
    append_json_escaped(out, mv.name);
    out += "\",\"type\":\"";
    out += to_string(mv.kind);
    out += "\",\"det\":";
    out += mv.det == Det::Stable ? "true" : "false";
    if (mv.kind == MetricKind::Histogram) {
      out += ",\"le\":[";
      for (std::size_t i = 0; i < mv.bounds.size(); ++i) {
        if (i > 0) out += ',';
        append_int(out, mv.bounds[i]);
      }
      out += "],\"counts\":[";
      for (std::size_t i = 0; i < mv.counts.size(); ++i) {
        if (i > 0) out += ',';
        append_uint(out, mv.counts[i]);
      }
      out += "],\"sum\":";
      append_int(out, mv.sum);
      out += ",\"count\":";
      append_uint(out, mv.count);
    } else {
      out += ",\"value\":";
      append_int(out, mv.value);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace wheels::obs
