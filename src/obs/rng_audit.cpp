#include "obs/rng_audit.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/rng.h"

namespace wheels::obs {
namespace {

// Hot-path cost mirrors the metrics shards: a draw is one thread-local
// hash lookup plus a relaxed fetch_add on a cell shared only through
// atomics. Fork/seed events are rare (tens per campaign) and take the
// global lock.
struct StreamRec {
  std::atomic<std::uint64_t> draws{0};
  std::uint64_t parent = 0;
  bool has_parent = false;
  std::uint64_t salt = 0;
  bool has_label = false;
  std::string label;
  std::uint64_t seeds = 0;
  std::uint64_t forks = 0;
  // A conflict is the runtime analogue of fork-collision: one stream id
  // arising from two distinct (parent, salt) pairs, or arising both by
  // seed construction and by fork. Repeated identical forks (the shared
  // trip-stream idiom) are not conflicts; they bump `forks` instead.
  std::uint64_t conflicts = 0;
};

struct AuditState {
  std::mutex mu;
  std::unordered_map<std::uint64_t, std::unique_ptr<StreamRec>> streams;
  // Bumped by reset_rng_audit() so per-thread pointer caches drop entries
  // that point into the cleared map.
  std::atomic<std::uint64_t> generation{1};
  std::atomic<bool> enabled{false};
};

AuditState& audit() {
  // wheels-lint: allow(static-local)
  static AuditState instance;
  return instance;
}

struct ThreadCache {
  std::unordered_map<std::uint64_t, StreamRec*> recs;
  std::uint64_t generation = 0;
};

ThreadCache& thread_cache() {
  // wheels-lint: allow(static-local)
  thread_local ThreadCache cache;
  return cache;
}

// Caller holds audit().mu.
StreamRec& rec_locked(AuditState& a, std::uint64_t id) {
  std::unique_ptr<StreamRec>& slot = a.streams[id];
  if (!slot) slot = std::make_unique<StreamRec>();
  return *slot;
}

StreamRec* rec_cached(std::uint64_t id) {
  AuditState& a = audit();
  ThreadCache& c = thread_cache();
  const std::uint64_t gen = a.generation.load(std::memory_order_acquire);
  if (c.generation != gen) {
    c.recs.clear();
    c.generation = gen;
  }
  const auto it = c.recs.find(id);
  if (it != c.recs.end()) return it->second;
  const std::lock_guard<std::mutex> lock(a.mu);
  StreamRec* rec = &rec_locked(a, id);
  c.recs.emplace(id, rec);
  return rec;
}

void hook_on_seed(std::uint64_t id, std::uint64_t /*seed*/) {
  AuditState& a = audit();
  const std::lock_guard<std::mutex> lock(a.mu);
  StreamRec& r = rec_locked(a, id);
  if (r.has_parent) ++r.conflicts;
  ++r.seeds;
}

void hook_on_fork(std::uint64_t parent, std::uint64_t child,
                  std::uint64_t salt, const char* label,
                  std::size_t label_len) {
  AuditState& a = audit();
  const std::lock_guard<std::mutex> lock(a.mu);
  // Make the parent visible even if it never draws (pure hub streams).
  (void)rec_locked(a, parent);
  StreamRec& c = rec_locked(a, child);
  if (c.forks == 0) {
    if (c.seeds > 0) ++c.conflicts;
    c.parent = parent;
    c.has_parent = true;
    c.salt = salt;
    if (label != nullptr) {
      c.has_label = true;
      c.label.assign(label, label_len);
    }
  } else if (c.parent != parent || c.salt != salt) {
    ++c.conflicts;
  }
  ++c.forks;
}

void hook_on_draw(std::uint64_t id) {
  rec_cached(id)->draws.fetch_add(1, std::memory_order_relaxed);
}

constexpr RngHooks kAuditHooks{&hook_on_seed, &hook_on_fork, &hook_on_draw};

void append_hex(std::string& out, std::uint64_t v) {
  char buf[19];
  const int n = std::snprintf(buf, sizeof buf, "0x%016llx",
                              static_cast<unsigned long long>(v));
  out.append(buf, static_cast<std::size_t>(n));
}

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char ch : s) {
    const auto u = static_cast<unsigned char>(ch);
    if (ch == '"' || ch == '\\') {
      out.push_back('\\');
      out.push_back(ch);
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      out.append(buf);
    } else {
      out.push_back(ch);
    }
  }
  out.push_back('"');
}

}  // namespace

void set_rng_audit_enabled(bool on) {
  AuditState& a = audit();
  const bool was = a.enabled.exchange(on);
  if (on == was) return;
  set_rng_hooks(on ? &kAuditHooks : nullptr);
}

bool rng_audit_enabled() { return audit().enabled.load(); }

void reset_rng_audit() {
  AuditState& a = audit();
  const std::lock_guard<std::mutex> lock(a.mu);
  a.streams.clear();
  a.generation.fetch_add(1, std::memory_order_release);
}

std::vector<RngStreamStat> rng_audit_snapshot() {
  AuditState& a = audit();
  std::vector<RngStreamStat> out;
  {
    const std::lock_guard<std::mutex> lock(a.mu);
    out.reserve(a.streams.size());
    // Sorted by id below before anything consumes the rows.
    // wheels-lint: allow(unordered-iter)
    for (const auto& [id, rec] : a.streams) {
      RngStreamStat s;
      s.id = id;
      s.has_parent = rec->has_parent;
      s.parent = rec->parent;
      s.salt = rec->salt;
      s.has_label = rec->has_label;
      s.label = rec->label;
      s.seeds = rec->seeds;
      s.forks = rec->forks;
      s.draws = rec->draws.load(std::memory_order_relaxed);
      s.conflicts = rec->conflicts;
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RngStreamStat& x, const RngStreamStat& y) {
              return x.id < y.id;
            });
  return out;
}

std::string rng_audit_to_jsonl(const std::vector<RngStreamStat>& stats) {
  std::string out;
  for (const RngStreamStat& s : stats) {
    out.append("{\"id\":\"");
    append_hex(out, s.id);
    out.append("\",\"parent\":");
    if (s.has_parent) {
      out.push_back('"');
      append_hex(out, s.parent);
      out.push_back('"');
    } else {
      out.append("null");
    }
    out.append(",\"salt\":");
    if (s.has_parent) {
      out.push_back('"');
      append_hex(out, s.salt);
      out.push_back('"');
    } else {
      out.append("null");
    }
    out.append(",\"label\":");
    if (s.has_label) {
      append_json_string(out, s.label);
    } else {
      out.append("null");
    }
    out.append(",\"seeds\":").append(std::to_string(s.seeds));
    out.append(",\"forks\":").append(std::to_string(s.forks));
    out.append(",\"draws\":").append(std::to_string(s.draws));
    out.append(",\"conflicts\":").append(std::to_string(s.conflicts));
    out.append("}\n");
  }
  return out;
}

}  // namespace wheels::obs
