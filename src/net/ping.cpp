#include "net/ping.h"

namespace wheels::net {

std::optional<Millis> ping_rtt(const ran::LinkSample& link,
                               Millis path_one_way, Rng& rng,
                               const PingConfig& cfg) {
  if (!link.connected) {
    // Out of coverage: occasionally the echo squeaks through on the edge
    // of a cell with a huge delay; usually it is simply lost.
    if (rng.chance(0.15)) {
      return Millis{rng.uniform(800.0, 3'000.0)};
    }
    return std::nullopt;
  }
  // air_latency already contains queueing/HARQ jitter and, while a
  // handover is in progress, the remaining interruption (buffering).
  Millis rtt = link.air_latency * 2.0 + path_one_way * 2.0 +
               cfg.server_processing;
  // Rare second-scale spikes from RLC retransmission storms at cell edge.
  if (link.bler_dl > 0.3 && rng.chance(0.05)) {
    rtt += Millis{rng.uniform(200.0, 2'000.0)};
  }
  if (rtt.value > cfg.timeout.value) return std::nullopt;
  return rtt;
}

}  // namespace wheels::net
