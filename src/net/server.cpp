#include "net/server.h"

#include <cmath>
#include <limits>

namespace wheels::net {

ServerSelector::ServerSelector(std::vector<EdgeSite> edge_sites,
                               Meters edge_radius)
    : edge_sites_(std::move(edge_sites)), edge_radius_(edge_radius) {}

ServerEndpoint ServerSelector::cloud_for(TimeZone tz) {
  // One-way wired delays from the cellular gateway to the EC2 region used
  // for that leg of the trip. Mountain-zone tests still used the
  // California servers; Central-zone tests the Ohio ones.
  switch (tz) {
    case TimeZone::Pacific:
      return {ServerKind::Cloud, "aws-us-west (CA)", Millis{10.0}};
    case TimeZone::Mountain:
      return {ServerKind::Cloud, "aws-us-west (CA)", Millis{18.0}};
    case TimeZone::Central:
      return {ServerKind::Cloud, "aws-us-east (OH)", Millis{14.0}};
    case TimeZone::Eastern:
      return {ServerKind::Cloud, "aws-us-east (OH)", Millis{10.0}};
  }
  return {ServerKind::Cloud, "aws", Millis{14.0}};
}

ServerEndpoint ServerSelector::select(ran::OperatorId op, Meters pos,
                                      TimeZone tz) const {
  if (op == ran::OperatorId::Verizon) {
    const EdgeSite* best = nullptr;
    double best_d = std::numeric_limits<double>::max();
    for (const auto& site : edge_sites_) {
      const double d = std::abs(site.route_pos.value - pos.value);
      if (d < best_d) {
        best_d = d;
        best = &site;
      }
    }
    if (best && best_d <= edge_radius_.value) {
      // Wavelength: inside the operator network, a couple ms away, growing
      // slightly with metro distance.
      return {ServerKind::Edge, "wavelength-" + best->city,
              Millis{1.5 + best_d / 1000.0 * 0.02}};
    }
  }
  return cloud_for(tz);
}

}  // namespace wheels::net
