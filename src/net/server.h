// Server placement and wired-path latency model.
//
// The study used AWS EC2 cloud instances (two in California serving the
// Pacific/Mountain legs, two in Ohio serving the Central/Eastern legs) and
// five Verizon Wavelength edge servers (Los Angeles, Las Vegas, Denver,
// Chicago, Boston). Edge servers sit inside the operator network, so their
// wired path is a couple of ms; cloud paths cross the internet.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/sim_time.h"
#include "core/units.h"
#include "ran/operator_profile.h"

namespace wheels::net {

enum class ServerKind : std::uint8_t { Cloud, Edge };

[[nodiscard]] constexpr std::string_view to_string(ServerKind k) {
  return k == ServerKind::Cloud ? "cloud" : "edge";
}

struct ServerEndpoint {
  ServerKind kind = ServerKind::Cloud;
  std::string name;
  Millis one_way_delay{12.0};  // wired path UE-gateway -> server (one way)
};

// An edge site pinned to a corridor position (an edge city along the route).
struct EdgeSite {
  std::string city;
  Meters route_pos{0.0};
};

class ServerSelector {
 public:
  // `edge_sites` are the Wavelength cities mapped onto the corridor.
  // Edge service only exists for Verizon (the study's deployment).
  explicit ServerSelector(std::vector<EdgeSite> edge_sites,
                          Meters edge_radius = Meters::from_kilometers(60.0));

  // Pick the server a test at corridor position `pos` in timezone `tz`
  // would use: the nearest edge site when in range (Verizon only),
  // otherwise the cloud region for the timezone.
  [[nodiscard]] ServerEndpoint select(ran::OperatorId op, Meters pos,
                                      TimeZone tz) const;

  // The cloud endpoint regardless of edge availability (for edge-vs-cloud
  // comparisons).
  [[nodiscard]] static ServerEndpoint cloud_for(TimeZone tz);

 private:
  std::vector<EdgeSite> edge_sites_;
  Meters edge_radius_;
};

}  // namespace wheels::net
