#include "net/mptcp_scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace wheels::net {

MptcpConnection::MptcpConnection(Rng rng, std::size_t subflows,
                                 MptcpScheduler scheduler)
    : scheduler_(scheduler) {
  if (subflows == 0) {
    throw std::invalid_argument("MptcpConnection: need >= 1 subflow");
  }
  flows_.reserve(subflows);
  for (std::size_t i = 0; i < subflows; ++i) {
    flows_.emplace_back(rng.fork(i));  // wheels-rng: dynamic(one stream per subflow index)
  }
}

void MptcpConnection::restart() {
  for (auto& f : flows_) f.restart();
}

MptcpStepResult MptcpConnection::step(
    Millis dt, const std::vector<SubflowInput>& links) {
  if (links.size() != flows_.size()) {
    throw std::invalid_argument("MptcpConnection: link count mismatch");
  }
  MptcpStepResult out;
  switch (scheduler_) {
    case MptcpScheduler::MinRtt: {
      // Each subflow runs its own congestion control against its own
      // path; a backlogged sender keeps every window full, so the bonded
      // goodput is the sum, minus a small scheduling overhead that grows
      // when paths are heavily imbalanced (head-of-line reinjections).
      double total = 0.0;
      double fastest = 0.0;
      for (std::size_t i = 0; i < flows_.size(); ++i) {
        const double b =
            flows_[i].step(dt, links[i].link_rate, links[i].base_rtt);
        total += b;
        fastest = std::max(fastest, b);
      }
      const double slow_share = total > 0.0 ? 1.0 - fastest / total : 0.0;
      // Up to 10% of the slow-path contribution is spent on reinjection.
      const double overhead = 0.1 * slow_share * (total - fastest);
      out.delivered_bytes = total - overhead;
      out.wasted_bytes = overhead;
      break;
    }
    case MptcpScheduler::Redundant: {
      // Every byte rides every subflow: goodput is the best path, the
      // rest is overhead.
      double best = 0.0, total = 0.0;
      for (std::size_t i = 0; i < flows_.size(); ++i) {
        const double b =
            flows_[i].step(dt, links[i].link_rate, links[i].base_rtt);
        total += b;
        best = std::max(best, b);
      }
      out.delivered_bytes = best;
      out.wasted_bytes = total - best;
      break;
    }
  }
  return out;
}

BondedRunResult run_bonded(
    Rng rng, const std::vector<std::vector<SubflowInput>>& per_slot_inputs,
    Millis dt, Millis window, MptcpScheduler scheduler) {
  BondedRunResult out;
  if (per_slot_inputs.empty()) return out;
  const std::size_t n_sub = per_slot_inputs.front().size();

  MptcpConnection bonded(rng.fork("bonded"), n_sub, scheduler);
  // One independent single-path flow per operator, to find the best lone
  // subscription over the same inputs.
  std::vector<CubicFlow> singles;
  for (std::size_t i = 0; i < n_sub; ++i) {
    // wheels-rng: dynamic(one stream per single-path flow index)
    singles.emplace_back(rng.fork("single").fork(i));
  }

  // Per-window series for the bond and for each lone subscription; the
  // "best single" is the one subscription that moved the most data over
  // the whole run (you cannot switch SIMs per half-second).
  double win_bonded = 0.0;
  std::vector<double> win_single(n_sub, 0.0);
  std::vector<std::vector<double>> single_series(n_sub);
  std::vector<double> single_total(n_sub, 0.0);
  Millis win_elapsed{0.0};
  for (const auto& links : per_slot_inputs) {
    if (links.size() != n_sub) {
      throw std::invalid_argument("run_bonded: ragged input");
    }
    win_bonded += bonded.step(dt, links).delivered_bytes;
    for (std::size_t i = 0; i < n_sub; ++i) {
      win_single[i] +=
          singles[i].step(dt, links[i].link_rate, links[i].base_rtt);
    }
    win_elapsed += dt;
    if (win_elapsed.value >= window.value) {
      out.bonded_mbps.push_back(win_bonded * 8.0 / win_elapsed.value /
                                1e3);
      out.bonded_total_gb += win_bonded / 1e9;
      for (std::size_t i = 0; i < n_sub; ++i) {
        single_series[i].push_back(win_single[i] * 8.0 /
                                   win_elapsed.value / 1e3);
        single_total[i] += win_single[i] / 1e9;
        win_single[i] = 0.0;
      }
      win_bonded = 0.0;
      win_elapsed = Millis{0.0};
    }
  }
  const auto best_it =
      std::max_element(single_total.begin(), single_total.end());
  const auto best_idx =
      static_cast<std::size_t>(best_it - single_total.begin());
  out.best_single_mbps = std::move(single_series[best_idx]);
  out.best_single_total_gb = *best_it;
  return out;
}

}  // namespace wheels::net
