// ICMP ping RTT model.
//
// The study's RTT tests send one 38-byte ICMP echo every 200 ms for 20 s.
// An echo's RTT is twice the one-way RAN latency plus twice the wired path
// delay; echoes that hit a handover interruption are buffered and released
// when it completes (producing the multi-hundred-ms spikes of Fig. 3b),
// and echoes sent while the UE is out of coverage are lost outright.
#pragma once

#include <optional>

#include "core/rng.h"
#include "core/units.h"
#include "ran/ue.h"

namespace wheels::net {

struct PingConfig {
  Millis interval{200.0};
  Millis timeout{4'000.0};
  Millis server_processing{0.5};
};

// Outcome of one echo given the link state at send time.
// Returns nullopt when the echo is lost (disconnected, or stall beyond the
// timeout).
[[nodiscard]] std::optional<Millis> ping_rtt(const ran::LinkSample& link,
                                             Millis path_one_way, Rng& rng,
                                             const PingConfig& cfg = {});

}  // namespace wheels::net
