// Multipath (multi-operator) aggregation what-if analysis.
//
// §8 recommendation (2): performance under driving could benefit from
// multi-connectivity across operators (e.g. Multipath TCP). This module
// evaluates that counterfactual on concurrent per-operator throughput
// samples: an idealized MPTCP scheduler achieves (nearly) the sum of the
// subflows, a conservative one achieves the max plus a fraction of the
// rest.
#pragma once

#include <span>
#include <vector>

#include "core/units.h"

namespace wheels::net {

struct AggregationResult {
  double best_single_mbps = 0.0;
  double ideal_sum_mbps = 0.0;      // perfect scheduler: sum of subflows
  double realistic_mbps = 0.0;      // max + 80% of the remainder
  double gain_over_best = 0.0;      // realistic / best_single
};

// Aggregate one instant's concurrent samples (one per operator).
[[nodiscard]] AggregationResult aggregate_instant(
    std::span<const double> per_operator_mbps,
    double secondary_efficiency = 0.8);

// Aggregate aligned series: element i of each series is the same instant.
// Series must be equally sized.
[[nodiscard]] std::vector<AggregationResult> aggregate_series(
    std::span<const std::vector<double>> per_operator_series,
    double secondary_efficiency = 0.8);

}  // namespace wheels::net
