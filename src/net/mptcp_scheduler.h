// A dynamic MPTCP-style bonding simulation (extension of §8 rec. (2)).
//
// aggregate_instant() in mptcp.h answers the static what-if ("sum of
// concurrent samples"); this module actually *runs* one CUBIC subflow per
// operator over the per-slot links and schedules application data across
// them, which captures what a real bonded transport would lose to
// per-path congestion control, stalls, and reinjection overhead.
#pragma once

#include <vector>

#include "core/rng.h"
#include "core/units.h"
#include "net/tcp_cubic.h"

namespace wheels::net {

enum class MptcpScheduler : std::uint8_t {
  MinRtt,      // classic: fill the lowest-RTT subflow's window first
  Redundant,   // duplicate on all subflows (latency-optimal, wasteful)
};

struct SubflowInput {
  Mbps link_rate{0.0};   // instantaneous capacity of this path
  Millis base_rtt{50.0};
};

struct MptcpStepResult {
  double delivered_bytes = 0.0;  // application goodput this slot
  double wasted_bytes = 0.0;     // redundant duplicates (Redundant mode)
};

class MptcpConnection {
 public:
  MptcpConnection(Rng rng, std::size_t subflows,
                  MptcpScheduler scheduler = MptcpScheduler::MinRtt);

  // Advance all subflows by dt over their current links.
  MptcpStepResult step(Millis dt, const std::vector<SubflowInput>& links);

  void restart();
  [[nodiscard]] std::size_t subflow_count() const { return flows_.size(); }
  [[nodiscard]] const CubicFlow& subflow(std::size_t i) const {
    return flows_.at(i);
  }

 private:
  std::vector<CubicFlow> flows_;
  MptcpScheduler scheduler_;
};

// Convenience: bonded goodput (Mbps) over aligned per-operator rate/rtt
// series sampled at `dt`, alongside the best single subflow for the same
// inputs. Series must be equal length.
struct BondedRunResult {
  std::vector<double> bonded_mbps;       // per sample window
  std::vector<double> best_single_mbps;  // best lone flow, same windows
  double bonded_total_gb = 0.0;
  double best_single_total_gb = 0.0;
};

[[nodiscard]] BondedRunResult run_bonded(
    Rng rng, const std::vector<std::vector<SubflowInput>>& per_slot_inputs,
    Millis dt, Millis window,
    MptcpScheduler scheduler = MptcpScheduler::MinRtt);

}  // namespace wheels::net
