// A slot-based TCP CUBIC flow model.
//
// The study measures bulk transfers with nuttcp over a single CUBIC
// connection; the transport dynamics (slow start, cubic window growth,
// multiplicative backoff on buffer overflow, RTO collapse across handover
// stalls) shape the 500 ms throughput samples far more than the raw PHY
// rate does, so they are modeled explicitly. The flow advances in discrete
// slots: each step receives the link's current goodput capacity and base
// RTT and returns the bytes it actually delivered.
#pragma once

#include "core/rng.h"
#include "core/units.h"

namespace wheels::net {

struct CubicParams {
  double mss_bytes = 1448.0;
  double cubic_c = 0.4;   // CUBIC C constant (window in MSS, time in s)
  double beta = 0.7;      // multiplicative decrease factor
  Millis rto_min{1'000.0};  // minimum RTO (RFC 6298 uses 1 s)
  Millis buffer_depth{400.0};  // bottleneck buffer in time units
                               // (cellular bufferbloat: 100s of ms)
  double initial_cwnd_mss = 10.0;
};

class CubicFlow {
 public:
  explicit CubicFlow(Rng rng, CubicParams params = CubicParams{});

  // Advance the flow by `dt`. `link_rate` is the instantaneous bottleneck
  // goodput (0 during handover interruptions/outages); `base_rtt` the
  // path RTT excluding this flow's own queueing. Returns bytes delivered.
  double step(Millis dt, Mbps link_rate, Millis base_rtt);

  // Self-inflicted queueing delay at the bottleneck (bufferbloat).
  [[nodiscard]] Millis queueing_delay() const;

  [[nodiscard]] double cwnd_bytes() const { return cwnd_; }
  [[nodiscard]] bool in_slow_start() const { return slow_start_; }
  [[nodiscard]] int loss_events() const { return loss_events_; }
  [[nodiscard]] int timeouts() const { return timeouts_; }

  // Reset to initial window (a new connection for the next test).
  void restart();

 private:
  void on_loss();
  void on_timeout();

  Rng rng_;
  CubicParams p_;
  double cwnd_;           // bytes
  double ssthresh_;       // bytes
  bool slow_start_ = true;
  double w_max_mss_ = 0.0;
  double epoch_s_ = -1.0;  // time since loss epoch start, seconds
  double queue_bytes_ = 0.0;
  double last_capacity_bps_ = 0.0;
  double ema_capacity_bps_ = 0.0;  // smoothed capacity (buffer sizing)
  Millis stall_{0.0};
  Millis rto_{250.0};
  Millis since_loss_{0.0};
  int loss_events_ = 0;
  int timeouts_ = 0;
};

}  // namespace wheels::net
