#include "net/mptcp.h"

#include <algorithm>
#include <stdexcept>

namespace wheels::net {

AggregationResult aggregate_instant(std::span<const double> per_operator_mbps,
                                    double secondary_efficiency) {
  AggregationResult r;
  for (double v : per_operator_mbps) {
    r.best_single_mbps = std::max(r.best_single_mbps, v);
    r.ideal_sum_mbps += v;
  }
  r.realistic_mbps =
      r.best_single_mbps +
      secondary_efficiency * (r.ideal_sum_mbps - r.best_single_mbps);
  r.gain_over_best = r.best_single_mbps > 0.0
                         ? r.realistic_mbps / r.best_single_mbps
                         : (r.realistic_mbps > 0.0 ? 1e9 : 1.0);
  return r;
}

std::vector<AggregationResult> aggregate_series(
    std::span<const std::vector<double>> per_operator_series,
    double secondary_efficiency) {
  if (per_operator_series.empty()) return {};
  const std::size_t n = per_operator_series.front().size();
  for (const auto& s : per_operator_series) {
    if (s.size() != n) {
      throw std::invalid_argument("aggregate_series: unequal series");
    }
  }
  std::vector<AggregationResult> out;
  out.reserve(n);
  std::vector<double> instant(per_operator_series.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < per_operator_series.size(); ++k) {
      instant[k] = per_operator_series[k][i];
    }
    out.push_back(aggregate_instant(instant, secondary_efficiency));
  }
  return out;
}

}  // namespace wheels::net
