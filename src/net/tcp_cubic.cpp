#include "net/tcp_cubic.h"

#include <algorithm>
#include <cmath>

namespace wheels::net {

CubicFlow::CubicFlow(Rng rng, CubicParams params)
    : rng_(rng),
      p_(params),
      cwnd_(params.initial_cwnd_mss * params.mss_bytes),
      ssthresh_(1e12),  // effectively unbounded until the first loss
      rto_(params.rto_min) {}

void CubicFlow::restart() {
  cwnd_ = p_.initial_cwnd_mss * p_.mss_bytes;
  ssthresh_ = 1e12;
  slow_start_ = true;
  w_max_mss_ = 0.0;
  epoch_s_ = -1.0;
  queue_bytes_ = 0.0;
  ema_capacity_bps_ = 0.0;
  stall_ = Millis{0.0};
  rto_ = p_.rto_min;
  since_loss_ = Millis{0.0};
}

Millis CubicFlow::queueing_delay() const {
  if (last_capacity_bps_ <= 0.0) return Millis{0.0};
  return Millis{queue_bytes_ * 8.0 / last_capacity_bps_ * 1e3};
}

void CubicFlow::on_loss() {
  ++loss_events_;
  w_max_mss_ = cwnd_ / p_.mss_bytes;
  cwnd_ = std::max(p_.mss_bytes, cwnd_ * p_.beta);
  ssthresh_ = cwnd_;
  slow_start_ = false;
  epoch_s_ = 0.0;
  since_loss_ = Millis{0.0};
}

void CubicFlow::on_timeout() {
  ++timeouts_;
  w_max_mss_ = std::max(w_max_mss_, cwnd_ / p_.mss_bytes);
  ssthresh_ = std::max(p_.mss_bytes * 2.0, cwnd_ / 2.0);
  cwnd_ = p_.mss_bytes;
  slow_start_ = true;
  epoch_s_ = -1.0;
  queue_bytes_ = 0.0;  // stale packets flushed
  rto_ = Millis{std::min(rto_.value * 2.0, 4'000.0)};  // Karn backoff
  stall_ = Millis{0.0};
}

double CubicFlow::step(Millis dt, Mbps link_rate, Millis base_rtt) {
  const double capacity_bps = link_rate.bits_per_second();
  last_capacity_bps_ = capacity_bps;

  // Outage / handover interruption: nothing delivered; an RTO fires if the
  // stall outlives the (backed-off) timer.
  if (capacity_bps < 1e3) {
    stall_ += dt;
    if (stall_.value > rto_.value) on_timeout();
    return 0.0;
  }
  stall_ = Millis{0.0};
  rto_ = Millis{std::max(p_.rto_min.value, 2.0 * base_rtt.value)};

  // Smoothed capacity (tau ~ 2 s): the RLC buffer at the bottleneck is
  // sized for the sustained rate, not the instantaneous fading dips.
  const double alpha = std::min(1.0, dt.value / 2'000.0);
  if (ema_capacity_bps_ <= 0.0) ema_capacity_bps_ = capacity_bps;
  ema_capacity_bps_ += alpha * (capacity_bps - ema_capacity_bps_);

  const double rtt_s =
      std::max(1e-3, (base_rtt + queueing_delay()).seconds());
  const double dt_s = dt.seconds();

  // Arrival vs service at the bottleneck.
  const double send_bps = cwnd_ * 8.0 / rtt_s;
  const double delivered_bps = std::min(send_bps, capacity_bps);
  const double delivered_bytes = delivered_bps / 8.0 * dt_s;

  // Queue evolution and loss detection. Buffer depth follows the
  // sustained rate (bufferbloat), so transient fades inflate delay rather
  // than instantly overflowing the queue.
  const double buffer_bytes =
      std::max(ema_capacity_bps_ / 8.0 * p_.buffer_depth.seconds(),
               64.0 * p_.mss_bytes);
  queue_bytes_ += (send_bps - delivered_bps) / 8.0 * dt_s;
  queue_bytes_ = std::max(0.0, queue_bytes_);

  since_loss_ += dt;
  if (queue_bytes_ > buffer_bytes &&
      since_loss_.value > base_rtt.value) {
    on_loss();
    queue_bytes_ = buffer_bytes * 0.5;  // drain after backoff
    return delivered_bytes;
  }

  // Window growth.
  if (slow_start_) {
    cwnd_ += delivered_bytes;  // doubles per RTT
    if (cwnd_ >= ssthresh_) slow_start_ = false;
  } else {
    if (epoch_s_ < 0.0) {
      epoch_s_ = 0.0;
      if (w_max_mss_ <= 0.0) w_max_mss_ = cwnd_ / p_.mss_bytes;
    }
    epoch_s_ += dt_s;
    const double k =
        std::cbrt(w_max_mss_ * (1.0 - p_.beta) / p_.cubic_c);
    const double target_mss =
        p_.cubic_c * std::pow(epoch_s_ - k, 3.0) + w_max_mss_;
    const double target = target_mss * p_.mss_bytes;
    if (target > cwnd_) {
      // Approach the cubic target within one RTT.
      cwnd_ += (target - cwnd_) * std::min(1.0, dt_s / rtt_s);
    } else {
      // TCP-friendly floor: at least Reno-like 1 MSS per RTT.
      cwnd_ += p_.mss_bytes * (dt_s / rtt_s);
    }
  }
  // No explicit window cap: overshoot beyond buffer + BDP produces queue
  // overflow and a loss event above, which is exactly CUBIC's regulator.
  return delivered_bytes;
}

}  // namespace wheels::net
