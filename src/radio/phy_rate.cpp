#include "radio/phy_rate.h"

#include <algorithm>
#include <cmath>

#include "radio/mcs.h"

namespace wheels::radio {

Mbps ue_peak_rate(Tech t, Direction d) {
  const bool dl = d == Direction::Downlink;
  switch (t) {
    case Tech::LTE: return dl ? Mbps{75.0} : Mbps{25.0};
    case Tech::LTE_A: return dl ? Mbps{400.0} : Mbps{60.0};
    case Tech::NR_LOW: return dl ? Mbps{300.0} : Mbps{75.0};
    case Tech::NR_MID: return dl ? Mbps{780.0} : Mbps{120.0};
    case Tech::NR_MMWAVE: return dl ? Mbps{3500.0} : Mbps{350.0};
  }
  return Mbps{0.0};
}

PhyRateResult compute_phy_rate(const BandProfile& p, Direction dir, Db sinr,
                               int num_cc, double prb_fraction) {
  const bool dl = dir == Direction::Downlink;
  const int max_cc = dl ? p.max_cc_dl : p.max_cc_ul;
  num_cc = std::clamp(num_cc, 1, max_cc);
  prb_fraction = std::clamp(prb_fraction, 0.0, 1.0);

  const MHz bw = dl ? p.cc_bandwidth_dl : p.cc_bandwidth_ul;
  const int layers = dl ? p.mimo_layers_dl : p.mimo_layers_ul;

  PhyRateResult out;
  out.num_cc = num_cc;

  double bits_per_second = 0.0;
  for (int cc = 0; cc < num_cc; ++cc) {
    const Db cc_sinr{sinr.value - cc * kSecondaryCcPenaltyDb};
    const int cqi = cqi_from_sinr(
        Db{cc_sinr.value - kAdaptationBackoffDb});
    if (cqi == 0) {
      if (cc == 0) {
        out.mcs = 0;
        out.bler = bler(0, cc_sinr);
      }
      continue;  // carrier out of range
    }
    const int mcs = mcs_from_cqi(cqi);
    const double b = bler(mcs, cc_sinr);
    const double se = mcs_spectral_efficiency(mcs);
    bits_per_second += bw.hz() * se * layers * (1.0 - b) * kPhyOverhead;
    if (cc == 0) {
      out.mcs = mcs;
      out.bler = b;
    }
  }
  const Mbps uncapped{bits_per_second / 1e6 * prb_fraction};
  out.rate = std::min(uncapped, ue_peak_rate(p.tech, dir));
  return out;
}

PhyRateResult compute_phy_rate(Tech tech, Direction dir, Db sinr, int num_cc,
                               double prb_fraction) {
  return compute_phy_rate(band_profile(tech), dir, sinr, num_cc, prb_fraction);
}

}  // namespace wheels::radio
