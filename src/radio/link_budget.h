// Link-budget computation: RSRP and SINR from geometry + channel state.
#pragma once

#include "core/units.h"
#include "radio/band.h"
#include "radio/pathloss.h"
#include "radio/technology.h"

namespace wheels::radio {

// Instantaneous channel state fed by the fading layer.
struct ChannelState {
  Db shadowing{0.0};
  Db fast_fading{0.0};
  Db blockage_loss{0.0};
};

// Noise per resource element at the receiver (15 kHz, 9 dB NF).
inline constexpr Dbm kNoisePerRe{-174.0 + 41.76 + 9.0};  // ~ -123.2 dBm

// Per-resource-element transmit powers: the band-constant terms of the
// link budget, exposed so the batched replay kernel can hoist them per
// segment. `rsrp` / `sinr_*` below are defined in terms of these.
[[nodiscard]] Dbm per_re_power_dl(const BandProfile& p);
[[nodiscard]] Dbm per_re_power_ul(const BandProfile& p);

// Reference Signal Received Power: per-resource-element received power.
// RSRP = per-RE transmit power + antenna gain - pathloss - shadowing -
// blockage. Fast fading is averaged out by the UE's RSRP filter, so it is
// deliberately excluded here (it does enter SINR). The band-profile forms
// are the primary ones (scenario band plans flow through them); the Tech
// forms evaluate the default US plan.
[[nodiscard]] Dbm rsrp(const BandProfile& band, Environment env,
                       Meters distance, const ChannelState& ch);
[[nodiscard]] Dbm rsrp(Tech tech, Environment env, Meters distance,
                       const ChannelState& ch);

// Downlink SINR for data: wideband signal over noise + interference.
// `interference_margin` folds in neighbour-cell load (from the RAN layer).
[[nodiscard]] Db sinr_downlink(const BandProfile& band, Environment env,
                               Meters distance, const ChannelState& ch,
                               Db interference_margin);
[[nodiscard]] Db sinr_downlink(Tech tech, Environment env, Meters distance,
                               const ChannelState& ch,
                               Db interference_margin);

// Uplink SINR: limited by the UE's transmit power; interference at the BS
// is milder (power control) so a smaller default margin applies.
[[nodiscard]] Db sinr_uplink(const BandProfile& band, Environment env,
                             Meters distance, const ChannelState& ch,
                             Db interference_margin);
[[nodiscard]] Db sinr_uplink(Tech tech, Environment env, Meters distance,
                             const ChannelState& ch, Db interference_margin);

}  // namespace wheels::radio
