#include "radio/fading.h"

#include <cmath>
#include <cstddef>

namespace wheels::radio {

ShadowingProcess::ShadowingProcess(Rng rng, double sigma_db,
                                   Meters decorrelation)
    : rng_(rng),
      sigma_db_(sigma_db),
      decorrelation_m_(decorrelation.value),
      value_db_(rng_.normal(0.0, sigma_db)) {}

ShadowingProcess ShadowingProcess::for_tech(Rng rng, Tech t, Environment env) {
  // mmWave decorrelates over ~10 m (street furniture), sub-6 over ~50-100 m.
  const Meters dcorr = t == Tech::NR_MMWAVE ? Meters{12.0}
                       : is_high_speed(t)   ? Meters{40.0}
                                            : Meters{80.0};
  return ShadowingProcess(rng, shadowing_sigma_db(t, env), dcorr);
}

Db ShadowingProcess::advance(Meters travelled) {
  // Gudmundson: rho = exp(-d / d_corr); X' = rho X + sqrt(1-rho^2) N(0,s).
  const double rho = rho_for(travelled.value);
  value_db_ = rho * value_db_ +
              std::sqrt(1.0 - rho * rho) * rng_.normal(0.0, sigma_db_);
  return Db{value_db_};
}

void ShadowingProcess::advance_span(std::span<const double> rho,
                                    std::span<const double> noise_scale,
                                    std::span<double> out) {
  // Same recurrence as advance(), with rho and sqrt(1 - rho^2) supplied by
  // the caller (noise_scale[i] must equal sqrt(1 - rho[i]^2) for the
  // kernel equivalence tests to hold).
  double v = value_db_;
  for (std::size_t i = 0; i < out.size(); ++i) {
    v = rho[i] * v + noise_scale[i] * rng_.normal(0.0, sigma_db_);
    out[i] = v;
  }
  value_db_ = v;
}

FastFading::FastFading(Rng rng, Tech tech)
    : rng_(rng), sigma_db_(tech == Tech::NR_MMWAVE ? 4.0 : 2.5) {}

Db FastFading::sample_db() {
  // Skewed: a Gaussian body with an exponential deep-fade tail.
  const double g = rng_.normal(0.0, sigma_db_);
  if (rng_.chance(0.05)) {
    return Db{g - rng_.exponential(2.0 * sigma_db_)};  // occasional deep fade
  }
  return Db{g};
}

BlockageProcess::BlockageProcess(Rng rng, Tech tech)
    : rng_(rng),
      applicable_(tech == Tech::NR_MMWAVE),
      // Driving through a street canyon: blockage episodes of ~300 ms
      // (other vehicles, poles, own car body), clear spells of ~1.5 s.
      mean_clear_ms_(1500.0),
      mean_blocked_ms_(300.0),
      loss_db_(25.0) {}

Db BlockageProcess::advance(Millis dt) {
  if (!applicable_) return Db{0.0};
  // Memoryless state flips evaluated per step.
  const double rate =
      blocked_ ? 1.0 / mean_blocked_ms_ : 1.0 / mean_clear_ms_;
  if (rng_.chance(1.0 - std::exp(-rate * dt.value))) blocked_ = !blocked_;
  return Db{blocked_ ? loss_db_ : 0.0};
}

}  // namespace wheels::radio
