#include "radio/mcs.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace wheels::radio {
namespace {

// 3GPP TS 36.213 Table 7.2.3-1: CQI -> efficiency (bits/s/Hz).
constexpr std::array<double, 16> kCqiEfficiency = {
    0.0,     0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758, 1.4766,
    1.9141, 2.4063, 2.7305, 3.3223, 3.9023, 4.5234, 5.1152, 5.5547};

// Approximate SINR (dB) required for each CQI at 10% BLER; standard
// link-level curves place CQI1 near -6 dB and CQI15 near 20 dB, roughly
// 1.9 dB per step.
constexpr double kCqi1SinrDb = -6.0;
constexpr double kSinrPerCqiDb = 1.85;

double cqi_required_sinr(int cqi) {
  return kCqi1SinrDb + (cqi - 1) * kSinrPerCqiDb;
}

}  // namespace

Db cqi_sinr_threshold(int cqi) { return Db{cqi_required_sinr(cqi)}; }

int cqi_from_sinr(Db sinr) {
  int cqi = 0;
  for (int c = 1; c <= kMaxCqi; ++c) {
    if (sinr.value >= cqi_required_sinr(c)) cqi = c;
  }
  return cqi;
}

double cqi_spectral_efficiency(int cqi) {
  return kCqiEfficiency[static_cast<std::size_t>(
      std::clamp(cqi, 0, kMaxCqi))];
}

int mcs_from_cqi(int cqi) {
  // Linear CQI->MCS mapping: CQI 1 -> MCS 0, CQI 15 -> MCS 28.
  if (cqi <= 0) return 0;
  return std::clamp((cqi - 1) * 2, 0, kMaxMcs);
}

double mcs_spectral_efficiency(int mcs) {
  // Interpolate the CQI efficiency curve over the 0-28 MCS range.
  const double c = 1.0 + std::clamp(mcs, 0, kMaxMcs) / 2.0;
  const int lo = static_cast<int>(c);
  const double frac = c - lo;
  const double e_lo = cqi_spectral_efficiency(std::min(lo, kMaxCqi));
  const double e_hi = cqi_spectral_efficiency(std::min(lo + 1, kMaxCqi));
  return e_lo + frac * (e_hi - e_lo);
}

Db mcs_sinr_threshold(int mcs) {
  const double c = 1.0 + std::clamp(mcs, 0, kMaxMcs) / 2.0;
  return Db{kCqi1SinrDb + (c - 1.0) * kSinrPerCqiDb};
}

double bler(int mcs, Db sinr) {
  // Logistic waterfall: ~1.0 well below threshold, ~0 well above, 50% at
  // threshold, ~10% one dB above (slope 0.45 dB).
  const double gap = sinr.value - mcs_sinr_threshold(mcs).value;
  return 1.0 / (1.0 + std::exp(gap / 0.45));
}

}  // namespace wheels::radio
