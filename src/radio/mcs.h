// Link adaptation: SINR -> CQI -> MCS -> spectral efficiency, and the
// residual block error rate after adaptation.
//
// The CQI table follows 3GPP TS 36.213 Table 7.2.3-1 (the 4-bit 64-QAM
// table); MCS indices 0-28 interpolate the same efficiency range, which is
// what XCAL reports and Table 2 correlates against throughput.
#pragma once

#include "core/units.h"
#include "radio/technology.h"

namespace wheels::radio {

inline constexpr int kMaxCqi = 15;
inline constexpr int kMaxMcs = 28;

// CQI from SINR: highest CQI whose decode threshold is below the SINR.
[[nodiscard]] int cqi_from_sinr(Db sinr);

// SINR required to decode CQI index `cqi` (1..kMaxCqi): the boundary the
// CQI selection compares against. Exposed so table-driven callers (the
// batched replay kernel) build their thresholds from the same source.
[[nodiscard]] Db cqi_sinr_threshold(int cqi);

// Spectral efficiency (bits/s/Hz per layer) of a CQI index, per the 3GPP
// 64-QAM CQI table. CQI 0 means out of range (efficiency 0).
[[nodiscard]] double cqi_spectral_efficiency(int cqi);

// MCS index (0-28) selected for a CQI, with an operator back-off margin in
// dB (conservative schedulers pick lower MCS to keep BLER near target).
[[nodiscard]] int mcs_from_cqi(int cqi);

// Spectral efficiency of an MCS index (bits/s/Hz per layer).
[[nodiscard]] double mcs_spectral_efficiency(int mcs);

// SINR decode threshold of an MCS: the SINR at which its BLER is ~50%.
[[nodiscard]] Db mcs_sinr_threshold(int mcs);

// Residual BLER for transmitting `mcs` at `sinr`: logistic in the SINR gap.
// With ideal adaptation this lands near the 10% target; fast fading between
// CQI reports produces the spread seen in the BLER KPI.
[[nodiscard]] double bler(int mcs, Db sinr);

}  // namespace wheels::radio
