// Batched replay kernel, radio half: per-band hoisted link-budget
// constants and table-driven SINR -> CQI -> MCS adaptation.
//
// Every function here is a cached mirror of an existing scalar radio
// function (pathloss, rsrp, sinr_downlink/uplink, compute_phy_rate): the
// per-band constant subexpressions are evaluated once in derive_plan() by
// calling the originals, and the per-slot remainder repeats the original
// expression tree term for term, in the same association order. The
// mirrors are bit-identical to the scalar path by construction -- the
// golden seed-42 stride-64 checksum pins this, and
// tests/test_replay_kernel.cpp sweeps every table against its source
// function.
#pragma once

#include <array>
#include <cstddef>

#include "core/units.h"
#include "radio/band.h"
#include "radio/mcs.h"
#include "radio/pathloss.h"
#include "radio/phy_rate.h"
#include "radio/technology.h"

namespace wheels::radio {

// Per-band constants hoisted out of the per-slot KPI chain.
struct BandDerived {
  Tech tech = Tech::LTE;
  double pl0_db = 0.0;  // FSPL at the d0 reference, pathloss()'s first term
  std::array<double, 3> ple{};  // pathloss exponent, indexed by Environment
  double rsrp_const_db = 0.0;   // (per_re_power_dl + antenna_gain_dl)
  double ul_const_db = 0.0;     // (per_re_power_ul + antenna_gain_dl)
  double bw_hz_dl = 0.0;
  double bw_hz_ul = 0.0;
  int max_cc_dl = 1;
  int max_cc_ul = 1;
  int layers_dl = 1;
  int layers_ul = 1;
  double peak_dl_mbps = 0.0;
  double peak_ul_mbps = 0.0;
  // Per-MCS carrier rate prefixes of compute_phy_rate()'s accumulation
  // term ((bw_hz * se) * layers, evaluated in exactly that order), and the
  // same with the trailing * kPhyOverhead already applied -- used when the
  // BLER factor is provably exactly 1.0 (see cached_phy_rate).
  std::array<double, static_cast<std::size_t>(kMaxMcs) + 1> rate_base_dl{};
  std::array<double, static_cast<std::size_t>(kMaxMcs) + 1> rate_base_ul{};
  std::array<double, static_cast<std::size_t>(kMaxMcs) + 1> rate_full_dl{};
  std::array<double, static_cast<std::size_t>(kMaxMcs) + 1> rate_full_ul{};
};

// The full derived state of one band plan: per-band constants plus the
// link-adaptation tables (which are plan-independent but live here so a
// replaying UE carries exactly one derived object, no globals).
struct DerivedPlan {
  std::array<BandDerived, 5> bands{};  // indexed by Tech
  // cqi_required_sinr_db[c - 1] is the decode threshold of CQI c (1..15),
  // strictly increasing -- the counting lookup below relies on that.
  std::array<double, static_cast<std::size_t>(kMaxCqi)> cqi_required_sinr_db{};
  std::array<int, static_cast<std::size_t>(kMaxCqi) + 1> mcs_for_cqi{};
  std::array<double, static_cast<std::size_t>(kMaxMcs) + 1> mcs_efficiency{};
  std::array<double, static_cast<std::size_t>(kMaxMcs) + 1> mcs_threshold_db{};

  [[nodiscard]] const BandDerived& band(Tech t) const {
    return bands[static_cast<std::size_t>(t)];
  }
};

[[nodiscard]] BandDerived derive_band(const BandProfile& p);
[[nodiscard]] DerivedPlan derive_plan(const BandPlan& plan);

// pathloss(band, env, distance).value with the FSPL term and exponent
// table hoisted.
[[nodiscard]] double cached_pathloss_db(const BandDerived& b, Environment env,
                                        double distance_m);

// cqi_from_sinr(sinr) via the threshold table. The original keeps the
// highest CQI whose threshold is <= sinr; with strictly increasing
// thresholds that equals the count of thresholds <= sinr.
[[nodiscard]] int cqi_from_sinr_table(const DerivedPlan& dp, double sinr_db);

// compute_phy_rate(band, dir, sinr, num_cc, prb_fraction) with band
// constants from `b` and adaptation lookups from the tables in `dp`.
[[nodiscard]] PhyRateResult cached_phy_rate(const DerivedPlan& dp,
                                            const BandDerived& b,
                                            Direction dir, Db sinr, int num_cc,
                                            double prb_fraction);

}  // namespace wheels::radio
