#include "radio/pathloss.h"

#include <algorithm>
#include <cmath>

#include "radio/band.h"

namespace wheels::radio {
Db free_space_pathloss(Meters d, MHz f) {
  const double dm = std::max(d.value, 1.0);
  // 20 log10(d_m) + 20 log10(f_MHz) + 32.45 (d in km form folded in).
  return Db{20.0 * std::log10(dm / 1000.0) + 20.0 * std::log10(f.value) +
            32.45};
}

double pathloss_exponent(Tech t, Environment env) {
  // Exponents beyond the close-in reference distance.
  switch (t) {
    case Tech::NR_MMWAVE:
      // Effective LOS/light-NLOS mix; open terrain is no worse than a
      // street canyon.
      return env == Environment::Urban ? 2.6 : 2.55;
    case Tech::NR_MID:
      switch (env) {
        case Environment::Urban: return 3.2;
        case Environment::Suburban: return 3.0;
        case Environment::Rural: return 2.8;
      }
      break;
    case Tech::NR_LOW:
      switch (env) {
        case Environment::Urban: return 3.3;
        case Environment::Suburban: return 3.0;
        case Environment::Rural: return 2.7;
      }
      break;
    case Tech::LTE:
    case Tech::LTE_A:
      switch (env) {
        case Environment::Urban: return 3.4;
        case Environment::Suburban: return 3.1;
        case Environment::Rural: return 2.8;
      }
      break;
  }
  return 3.0;
}

Db pathloss(const BandProfile& band, Environment env, Meters distance) {
  const Db pl0 = free_space_pathloss(Meters{kPathlossReferenceM}, band.carrier);
  const double dm = std::max(distance.value, kPathlossReferenceM);
  const double n = pathloss_exponent(band.tech, env);
  return Db{pl0.value + 10.0 * n * std::log10(dm / kPathlossReferenceM)};
}

Db pathloss(Tech t, Environment env, Meters distance) {
  return pathloss(band_profile(t), env, distance);
}

double shadowing_sigma_db(Tech t, Environment env) {
  // mmWave shadows hardest (foliage/vehicle blockage shows up as shadowing
  // at the timescales we model); rural terrain is smoother.
  double base = 0.0;
  switch (t) {
    case Tech::NR_MMWAVE: base = 8.0; break;
    case Tech::NR_MID: base = 6.0; break;
    case Tech::NR_LOW: base = 5.0; break;
    case Tech::LTE:
    case Tech::LTE_A: base = 5.5; break;
  }
  if (env == Environment::Rural) base -= 1.0;
  return base;
}

}  // namespace wheels::radio
