// PHY-layer achievable rate from link adaptation + carrier aggregation.
#pragma once

#include "core/units.h"
#include "radio/band.h"
#include "radio/technology.h"

namespace wheels::radio {

enum class Direction : std::uint8_t { Downlink, Uplink };

// Link-adaptation constants, shared with the batched replay kernel so the
// cached mirror in radio/kernel.cpp stays bit-identical by construction.
// Control/reference-signal overhead: fraction of symbols carrying data.
inline constexpr double kPhyOverhead = 0.75;
// Scheduler backoff applied to the measured SINR before picking MCS.
inline constexpr double kAdaptationBackoffDb = 1.0;
// Each further aggregated carrier is a bit weaker than the primary
// (different band, less favourable geometry).
inline constexpr double kSecondaryCcPenaltyDb = 1.5;

[[nodiscard]] constexpr std::string_view to_string(Direction d) {
  return d == Direction::Downlink ? "DL" : "UL";
}

// UE-category peak rates (Mbps), Samsung S21 / Snapdragon 888 class.
// These cap the instantaneous PHY rate regardless of the link budget.
[[nodiscard]] Mbps ue_peak_rate(Tech t, Direction d);

// Outcome of link adaptation on one scheduling interval.
struct PhyRateResult {
  Mbps rate{0.0};     // goodput after BLER and overhead
  int mcs = 0;        // selected MCS of the primary carrier
  double bler = 0.0;  // residual BLER at the selected MCS
  int num_cc = 1;     // aggregated component carriers
};

// Compute the achievable PHY goodput.
//   sinr          -- primary-carrier SINR for this interval
//   num_cc        -- aggregated carriers (1..profile max); secondary
//                    carriers are assumed slightly weaker (1.5 dB/CC step)
//   prb_fraction  -- fraction of PRBs the scheduler grants this UE
//                    (cell load model), in (0, 1]
// The band-profile form is the primary one (scenario band plans flow
// through it); the Tech form evaluates the default US plan.
[[nodiscard]] PhyRateResult compute_phy_rate(const BandProfile& band,
                                             Direction dir, Db sinr,
                                             int num_cc, double prb_fraction);
[[nodiscard]] PhyRateResult compute_phy_rate(Tech tech, Direction dir, Db sinr,
                                             int num_cc, double prb_fraction);

}  // namespace wheels::radio
