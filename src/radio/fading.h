// Time/space-correlated channel variation processes.
//
//  - ShadowingProcess: first-order Gauss-Markov log-normal shadowing with a
//    distance decorrelation constant (Gudmundson model). Advanced by the
//    distance the vehicle covers, so faster driving decorrelates faster in
//    time -- one of the mechanisms behind the speed effects in Figs. 7/8.
//  - FastFading: per-slot small-scale fading margin (Rician-ish for
//    sub-6, harsher for mmWave).
//  - BlockageProcess: two-state (clear/blocked) Markov chain for mmWave
//    links; a blocked mmWave link loses tens of dB, producing the extreme
//    low-throughput tail the paper observes even under full coverage.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>

#include "core/rng.h"
#include "core/units.h"
#include "radio/pathloss.h"
#include "radio/technology.h"

namespace wheels::radio {

class ShadowingProcess {
 public:
  // `decorrelation` is the Gudmundson decorrelation distance; `sigma_db`
  // the stationary standard deviation.
  ShadowingProcess(Rng rng, double sigma_db, Meters decorrelation);

  // Factory using the catalog sigma for a tech/environment.
  [[nodiscard]] static ShadowingProcess for_tech(Rng rng, Tech t,
                                                 Environment env);

  // Advance the process by `travelled` meters and return the new value.
  Db advance(Meters travelled);

  // Batched advance for the replay kernel: one step per element of
  // `rho`/`noise_scale` (precomputed per segment with rho_for()), writing
  // each successive value (dB) to `out`. Bit-identical to calling
  // advance() once per step: same recurrence, same rng_ draw order.
  void advance_span(std::span<const double> rho,
                    std::span<const double> noise_scale, std::span<double> out);

  // The Gudmundson correlation factor for one step of `travelled` meters;
  // advance() uses exactly this expression. Segments precompute rho (and
  // sqrt(1 - rho^2)) once per decorrelation class and share it across the
  // layers that use the same class.
  [[nodiscard]] double rho_for(double travelled_m) const {
    return std::exp(-std::max(travelled_m, 0.0) / decorrelation_m_);
  }

  [[nodiscard]] Db current() const { return Db{value_db_}; }
  [[nodiscard]] double sigma_db() const { return sigma_db_; }
  [[nodiscard]] double decorrelation_m() const { return decorrelation_m_; }

 private:
  Rng rng_;
  double sigma_db_;
  double decorrelation_m_;
  double value_db_;
};

class FastFading {
 public:
  FastFading(Rng rng, Tech tech);

  // A fresh small-scale fading deviation (dB) for one scheduling slot.
  // Zero-mean-ish but skewed: deep fades are more likely than strong
  // up-fades, matching Rayleigh/Rician envelope statistics.
  [[nodiscard]] Db sample_db();

 private:
  Rng rng_;
  double sigma_db_;
};

class BlockageProcess {
 public:
  // Only meaningful for mmWave; other techs stay permanently "clear".
  BlockageProcess(Rng rng, Tech tech);

  // Advance by dt; returns the extra loss to apply (0 dB when clear).
  Db advance(Millis dt);

  [[nodiscard]] bool blocked() const { return blocked_; }

 private:
  Rng rng_;
  bool applicable_;
  bool blocked_ = false;
  double mean_clear_ms_;
  double mean_blocked_ms_;
  double loss_db_;
};

}  // namespace wheels::radio
