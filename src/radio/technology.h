// Cellular technology taxonomy used throughout the study.
//
// The paper buckets service into five technologies: LTE, LTE-A, 5G low-band,
// 5G mid-band, and 5G mmWave, and further groups mid-band + mmWave as
// "high-speed 5G" / high-throughput (HT) vs everything else (LT) for the
// operator-diversity analysis (Fig. 6).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace wheels::radio {

enum class Tech : std::uint8_t {
  LTE,
  LTE_A,
  NR_LOW,   // 5G low band (600-900 MHz)
  NR_MID,   // 5G mid band (2.5-3.7 GHz)
  NR_MMWAVE // 5G mmWave (24-39 GHz)
};

inline constexpr std::array<Tech, 5> kAllTechs = {
    Tech::LTE, Tech::LTE_A, Tech::NR_LOW, Tech::NR_MID, Tech::NR_MMWAVE};

[[nodiscard]] constexpr std::string_view to_string(Tech t) {
  switch (t) {
    case Tech::LTE: return "LTE";
    case Tech::LTE_A: return "LTE-A";
    case Tech::NR_LOW: return "5G-low";
    case Tech::NR_MID: return "5G-mid";
    case Tech::NR_MMWAVE: return "5G-mmWave";
  }
  return "?";
}

[[nodiscard]] constexpr bool is_5g(Tech t) {
  return t == Tech::NR_LOW || t == Tech::NR_MID || t == Tech::NR_MMWAVE;
}

// "High-speed 5G" in the paper's terminology: mid-band or mmWave.
[[nodiscard]] constexpr bool is_high_speed(Tech t) {
  return t == Tech::NR_MID || t == Tech::NR_MMWAVE;
}

// Handover classification (Fig. 12): horizontal = same generation.
enum class HandoverKind : std::uint8_t {
  FourToFour,  // 4G -> 4G
  FourToFive,  // 4G -> 5G
  FiveToFour,  // 5G -> 4G
  FiveToFive,  // 5G -> 5G
};

[[nodiscard]] constexpr HandoverKind classify_handover(Tech from, Tech to) {
  const bool f5 = is_5g(from), t5 = is_5g(to);
  if (!f5 && !t5) return HandoverKind::FourToFour;
  if (!f5 && t5) return HandoverKind::FourToFive;
  if (f5 && !t5) return HandoverKind::FiveToFour;
  return HandoverKind::FiveToFive;
}

[[nodiscard]] constexpr std::string_view to_string(HandoverKind k) {
  switch (k) {
    case HandoverKind::FourToFour: return "4G->4G";
    case HandoverKind::FourToFive: return "4G->5G";
    case HandoverKind::FiveToFour: return "5G->4G";
    case HandoverKind::FiveToFive: return "5G->5G";
  }
  return "?";
}

[[nodiscard]] constexpr bool is_horizontal(HandoverKind k) {
  return k == HandoverKind::FourToFour || k == HandoverKind::FiveToFive;
}

}  // namespace wheels::radio
