#include "radio/kernel.h"

#include <algorithm>
#include <cmath>

#include "radio/link_budget.h"

namespace wheels::radio {

BandDerived derive_band(const BandProfile& p) {
  BandDerived b;
  b.tech = p.tech;
  b.pl0_db = free_space_pathloss(Meters{kPathlossReferenceM}, p.carrier).value;
  for (Environment env :
       {Environment::Urban, Environment::Suburban, Environment::Rural}) {
    b.ple[static_cast<std::size_t>(env)] = pathloss_exponent(p.tech, env);
  }
  b.rsrp_const_db = (per_re_power_dl(p) + p.antenna_gain_dl).value;
  b.ul_const_db = (per_re_power_ul(p) + p.antenna_gain_dl).value;
  b.bw_hz_dl = p.cc_bandwidth_dl.hz();
  b.bw_hz_ul = p.cc_bandwidth_ul.hz();
  b.max_cc_dl = p.max_cc_dl;
  b.max_cc_ul = p.max_cc_ul;
  b.layers_dl = p.mimo_layers_dl;
  b.layers_ul = p.mimo_layers_ul;
  b.peak_dl_mbps = ue_peak_rate(p.tech, Direction::Downlink).value;
  b.peak_ul_mbps = ue_peak_rate(p.tech, Direction::Uplink).value;
  for (int m = 0; m <= kMaxMcs; ++m) {
    const std::size_t i = static_cast<std::size_t>(m);
    const double se = mcs_spectral_efficiency(m);
    // Exactly compute_phy_rate()'s leading multiplications, once per MCS.
    b.rate_base_dl[i] = (b.bw_hz_dl * se) * b.layers_dl;
    b.rate_base_ul[i] = (b.bw_hz_ul * se) * b.layers_ul;
    b.rate_full_dl[i] = b.rate_base_dl[i] * kPhyOverhead;
    b.rate_full_ul[i] = b.rate_base_ul[i] * kPhyOverhead;
  }
  return b;
}

DerivedPlan derive_plan(const BandPlan& plan) {
  DerivedPlan dp;
  for (Tech tech : kAllTechs) {
    dp.bands[static_cast<std::size_t>(tech)] = derive_band(plan.profile(tech));
  }
  for (int c = 1; c <= kMaxCqi; ++c) {
    dp.cqi_required_sinr_db[static_cast<std::size_t>(c - 1)] =
        cqi_sinr_threshold(c).value;
  }
  for (int c = 0; c <= kMaxCqi; ++c) {
    dp.mcs_for_cqi[static_cast<std::size_t>(c)] = mcs_from_cqi(c);
  }
  for (int m = 0; m <= kMaxMcs; ++m) {
    dp.mcs_efficiency[static_cast<std::size_t>(m)] = mcs_spectral_efficiency(m);
    dp.mcs_threshold_db[static_cast<std::size_t>(m)] =
        mcs_sinr_threshold(m).value;
  }
  return dp;
}

double cached_pathloss_db(const BandDerived& b, Environment env,
                          double distance_m) {
  // Mirrors pathloss(): dm clamp, then pl0 + 10 n log10(dm / d0).
  const double dm = std::max(distance_m, kPathlossReferenceM);
  const double n = b.ple[static_cast<std::size_t>(env)];
  return b.pl0_db + 10.0 * n * std::log10(dm / kPathlossReferenceM);
}

int cqi_from_sinr_table(const DerivedPlan& dp, double sinr_db) {
  // The unique result R satisfies (R == 0 or t[R-1] <= sinr) and
  // (R == kMaxCqi or sinr < t[R]) for the strictly increasing table t.
  // Start from a linear guess (the thresholds are evenly spaced) and let
  // the two adjustment loops establish the invariant; they converge to
  // the same R from any start, so the guess only affects speed. A
  // non-finite sinr falls through the !(g > 0) guard to 0, matching the
  // original scan (every comparison false).
  const double step = dp.cqi_required_sinr_db[1] - dp.cqi_required_sinr_db[0];
  const double g = (sinr_db - dp.cqi_required_sinr_db[0]) / step + 1.0;
  int cqi = 0;
  if (g >= kMaxCqi) {
    cqi = kMaxCqi;
  } else if (g > 0.0) {
    cqi = static_cast<int>(g);
  }
  while (cqi < kMaxCqi &&
         sinr_db >= dp.cqi_required_sinr_db[static_cast<std::size_t>(cqi)]) {
    ++cqi;
  }
  while (cqi > 0 &&
         sinr_db < dp.cqi_required_sinr_db[static_cast<std::size_t>(cqi - 1)]) {
    --cqi;
  }
  return cqi;
}

PhyRateResult cached_phy_rate(const DerivedPlan& dp, const BandDerived& b,
                              Direction dir, Db sinr, int num_cc,
                              double prb_fraction) {
  // Mirrors compute_phy_rate() line for line; only the band constants and
  // adaptation lookups come from the derived tables.
  const bool dl = dir == Direction::Downlink;
  const int max_cc = dl ? b.max_cc_dl : b.max_cc_ul;
  num_cc = std::clamp(num_cc, 1, max_cc);
  prb_fraction = std::clamp(prb_fraction, 0.0, 1.0);

  PhyRateResult out;
  out.num_cc = num_cc;

  double bits_per_second = 0.0;
  for (int cc = 0; cc < num_cc; ++cc) {
    const Db cc_sinr{sinr.value - cc * kSecondaryCcPenaltyDb};
    const int cqi =
        cqi_from_sinr_table(dp, cc_sinr.value - kAdaptationBackoffDb);
    if (cqi == 0) {
      if (cc == 0) {
        out.mcs = 0;
        out.bler =
            1.0 /
            (1.0 + std::exp((cc_sinr.value - dp.mcs_threshold_db[0]) / 0.45));
      }
      continue;  // carrier out of range
    }
    const int mcs = dp.mcs_for_cqi[static_cast<std::size_t>(cqi)];
    const double gap =
        cc_sinr.value - dp.mcs_threshold_db[static_cast<std::size_t>(mcs)];
    const auto& rate_base = dl ? b.rate_base_dl : b.rate_base_ul;
    const auto& rate_full = dl ? b.rate_full_dl : b.rate_full_ul;
    if (cc > 0 && gap >= 17.0) {
      // BLER factor is exactly 1.0 here, so skip the exp: gap >= 17 gives
      // exp(gap/0.45) >= e^37.7 > 2^54, hence blk < 2^-54 and 1.0 - blk
      // rounds to 1.0 (the midpoint to the next double below 1.0 is
      // 1 - 2^-54). rate_full is (rate_base * 1.0) * kPhyOverhead
      // pre-multiplied; multiplying by exactly 1.0 is the identity, so
      // the sum is bit-identical. cc == 0 still computes blk because the
      // sample records it as the BLER.
      bits_per_second += rate_full[static_cast<std::size_t>(mcs)];
      continue;
    }
    const double blk = 1.0 / (1.0 + std::exp(gap / 0.45));
    bits_per_second +=
        (rate_base[static_cast<std::size_t>(mcs)] * (1.0 - blk)) *
        kPhyOverhead;
    if (cc == 0) {
      out.mcs = mcs;
      out.bler = blk;
    }
  }
  const Mbps uncapped{bits_per_second / 1e6 * prb_fraction};
  out.rate = std::min(uncapped, Mbps{dl ? b.peak_dl_mbps : b.peak_ul_mbps});
  return out;
}

}  // namespace wheels::radio
