// Frequency bands and per-technology radio profiles.
#pragma once

#include <array>
#include <cstddef>

#include "core/units.h"
#include "radio/technology.h"

namespace wheels::radio {

// Static radio parameters of one technology class: carrier frequency,
// component-carrier bandwidths, MIMO layers, and link-budget constants.
// Values are representative of 2022-era US deployments (Samsung S21-class
// UE: 8CC DL / 2CC UL over mmWave, per the paper's testbed description).
struct BandProfile {
  Tech tech;
  MHz carrier;           // representative carrier frequency
  MHz cc_bandwidth_dl;   // one component carrier, downlink
  MHz cc_bandwidth_ul;   // one component carrier, uplink
  int max_cc_dl = 1;     // max aggregated component carriers (DL)
  int max_cc_ul = 1;     // max aggregated component carriers (UL)
  int mimo_layers_dl = 2;
  int mimo_layers_ul = 1;
  Dbm tx_power_dl{43.0};     // BS EIRP contribution per CC (before antenna gain)
  Dbm tx_power_ul{23.0};     // UE max transmit power
  Db antenna_gain_dl{15.0};  // BS antenna gain (beamforming gain for mmWave)
  Meters typical_range{2000.0};  // deployment inter-site distance scale
};

// A complete band plan: one profile per technology layer. Scenarios swap
// plans wholesale (e.g. EU carriers/bandwidths) without recompiling; the
// link-budget and PHY-rate functions below take the profile explicitly so
// they never reach back into the US catalog.
struct BandPlan {
  std::array<BandProfile, 5> profiles{};  // indexed by Tech

  [[nodiscard]] const BandProfile& profile(Tech t) const {
    return profiles[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] BandProfile& profile(Tech t) {
    return profiles[static_cast<std::size_t>(t)];
  }
};

// The 2022-era US catalog the paper's campaign ran on.
[[nodiscard]] const BandPlan& default_band_plan();

// Catalog lookup: the canonical (default-plan) profile for a technology.
[[nodiscard]] const BandProfile& band_profile(Tech t);

// Thermal noise floor for a given bandwidth at ~9 dB UE noise figure:
// -174 dBm/Hz + 10log10(BW) + NF.
[[nodiscard]] Dbm noise_floor(MHz bandwidth, double noise_figure_db = 9.0);

}  // namespace wheels::radio
