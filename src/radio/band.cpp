#include "radio/band.h"

#include <cmath>

namespace wheels::radio {
namespace {

// Representative 2022 US deployments:
//  - LTE: 10 MHz FDD around 1.9 GHz (PCS/AWS).
//  - LTE-A: 20 MHz CCs, up to 3xCA around 2.1 GHz.
//  - NR low: n71/n5 (600-850 MHz), 15/10 MHz, long range.
//  - NR mid: n41/n77 (2.5/3.7 GHz), 60-100 MHz CCs; T-Mobile's n41 at
//    ~80 MHz dominates the paper's mid-band results.
//  - NR mmWave: n260/n261 (28/39 GHz), 100 MHz CCs, up to 8CC DL / 2CC UL
//    (Snapdragon 888 capability per the testbed appendix).
constexpr BandProfile kLte{
    .tech = Tech::LTE,
    .carrier = MHz{1900.0},
    .cc_bandwidth_dl = MHz{10.0},
    .cc_bandwidth_ul = MHz{10.0},
    .max_cc_dl = 1,
    .max_cc_ul = 1,
    .mimo_layers_dl = 2,
    .mimo_layers_ul = 1,
    .tx_power_dl = Dbm{43.0},
    .tx_power_ul = Dbm{23.0},
    .antenna_gain_dl = Db{15.0},
    .typical_range = Meters{3500.0},
};

constexpr BandProfile kLteA{
    .tech = Tech::LTE_A,
    .carrier = MHz{2100.0},
    .cc_bandwidth_dl = MHz{20.0},
    .cc_bandwidth_ul = MHz{20.0},
    .max_cc_dl = 3,
    .max_cc_ul = 2,
    .mimo_layers_dl = 4,
    .mimo_layers_ul = 1,
    .tx_power_dl = Dbm{43.0},
    .tx_power_ul = Dbm{23.0},
    .antenna_gain_dl = Db{16.0},
    .typical_range = Meters{3000.0},
};

constexpr BandProfile kNrLow{
    .tech = Tech::NR_LOW,
    .carrier = MHz{700.0},
    .cc_bandwidth_dl = MHz{20.0},
    .cc_bandwidth_ul = MHz{20.0},
    // NSA EN-DC: the NR leg is aggregated with LTE anchor carriers.
    .max_cc_dl = 3,
    .max_cc_ul = 1,
    .mimo_layers_dl = 4,
    .mimo_layers_ul = 1,
    .tx_power_dl = Dbm{43.0},
    .tx_power_ul = Dbm{23.0},
    .antenna_gain_dl = Db{14.0},
    .typical_range = Meters{5000.0},
};

constexpr BandProfile kNrMid{
    .tech = Tech::NR_MID,
    .carrier = MHz{3500.0},
    .cc_bandwidth_dl = MHz{80.0},
    .cc_bandwidth_ul = MHz{80.0},
    .max_cc_dl = 2,
    .max_cc_ul = 2,
    .mimo_layers_dl = 2,
    .mimo_layers_ul = 1,
    .tx_power_dl = Dbm{46.0},
    .tx_power_ul = Dbm{26.0},
    .antenna_gain_dl = Db{24.0},  // massive-MIMO beamforming
    .typical_range = Meters{1800.0},
};

constexpr BandProfile kNrMmwave{
    .tech = Tech::NR_MMWAVE,
    .carrier = MHz{28000.0},
    .cc_bandwidth_dl = MHz{100.0},
    .cc_bandwidth_ul = MHz{100.0},
    .max_cc_dl = 8,
    .max_cc_ul = 2,
    .mimo_layers_dl = 2,
    .mimo_layers_ul = 1,
    .tx_power_dl = Dbm{40.0},
    .tx_power_ul = Dbm{23.0},
    .antenna_gain_dl = Db{30.0},  // phased-array beam gain
    .typical_range = Meters{250.0},
};

// Constant-initialized (no magic static): safe to read from any worker
// thread without synchronization.
constexpr BandPlan kUsPlan{{kLte, kLteA, kNrLow, kNrMid, kNrMmwave}};

}  // namespace

const BandPlan& default_band_plan() { return kUsPlan; }

const BandProfile& band_profile(Tech t) {
  switch (t) {
    case Tech::LTE: return kLte;
    case Tech::LTE_A: return kLteA;
    case Tech::NR_LOW: return kNrLow;
    case Tech::NR_MID: return kNrMid;
    case Tech::NR_MMWAVE: return kNrMmwave;
  }
  return kLte;
}

Dbm noise_floor(MHz bandwidth, double noise_figure_db) {
  return Dbm{-174.0 + 10.0 * std::log10(bandwidth.hz()) + noise_figure_db};
}

}  // namespace wheels::radio
