#include "radio/link_budget.h"

#include <cmath>

#include "radio/band.h"

namespace wheels::radio {

// Per-resource-element transmit power: total CC power spread over the
// occupied subcarriers (15 kHz LTE / 30+ kHz NR; we use the CC bandwidth
// directly, which is equivalent up to a constant we calibrate away).
Dbm per_re_power_dl(const BandProfile& p) {
  const double subcarriers = p.cc_bandwidth_dl.hz() / 15e3;
  return Dbm{p.tx_power_dl.value - 10.0 * std::log10(subcarriers)};
}

// UE transmits with full power over its UL allocation; model the
// allocation as 1/6 of the CC, which boosts the per-Hz density ~9 dB --
// uplink power control in disguise.
Dbm per_re_power_ul(const BandProfile& p) {
  const double subcarriers = p.cc_bandwidth_ul.hz() / 15e3 / 12.0;
  return Dbm{p.tx_power_ul.value - 10.0 * std::log10(subcarriers)};
}

Dbm rsrp(const BandProfile& band, Environment env, Meters distance,
         const ChannelState& ch) {
  const Db pl = pathloss(band, env, distance);
  return per_re_power_dl(band) + band.antenna_gain_dl - pl - ch.shadowing -
         ch.blockage_loss;
}

Dbm rsrp(Tech tech, Environment env, Meters distance, const ChannelState& ch) {
  return rsrp(band_profile(tech), env, distance, ch);
}

Db sinr_downlink(const BandProfile& band, Environment env, Meters distance,
                 const ChannelState& ch, Db interference_margin) {
  // Per-RE SNR equals wideband SNR; interference margin subtracts directly.
  const Dbm rx = rsrp(band, env, distance, ch) + ch.fast_fading;
  return (rx - kNoisePerRe) - interference_margin;
}

Db sinr_downlink(Tech tech, Environment env, Meters distance,
                 const ChannelState& ch, Db interference_margin) {
  return sinr_downlink(band_profile(tech), env, distance, ch,
                       interference_margin);
}

Db sinr_uplink(const BandProfile& p, Environment env, Meters distance,
               const ChannelState& ch, Db interference_margin) {
  const Db pl = pathloss(p, env, distance);
  // BS antenna gain helps on receive.
  const Dbm rx = per_re_power_ul(p) + p.antenna_gain_dl - pl - ch.shadowing -
                 ch.blockage_loss + ch.fast_fading;
  return (rx - kNoisePerRe) - interference_margin;
}

Db sinr_uplink(Tech tech, Environment env, Meters distance,
               const ChannelState& ch, Db interference_margin) {
  return sinr_uplink(band_profile(tech), env, distance, ch,
                     interference_margin);
}

}  // namespace wheels::radio
