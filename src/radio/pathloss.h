// Path-loss models.
//
// A close-in free-space reference model with band-dependent exponents,
// following the 3GPP TR 38.901 UMa/UMi/RMa spirit without the full
// machinery: PL(d) = FSPL(d0, f) + 10 n log10(d / d0), with the exponent n
// chosen per band class and environment. mmWave additionally suffers
// distance-independent blockage handled by the fading layer.
#pragma once

#include "core/units.h"
#include "radio/band.h"
#include "radio/technology.h"

namespace wheels::radio {

enum class Environment : std::uint8_t { Urban, Suburban, Rural };

// Close-in reference distance d0 of the path-loss model. Exposed so the
// batched replay kernel can hoist FSPL(d0, f) per band with the exact same
// constant pathloss() uses.
inline constexpr double kPathlossReferenceM = 10.0;

// Free-space path loss at distance d and carrier frequency f.
[[nodiscard]] Db free_space_pathloss(Meters d, MHz f);

// Path-loss exponent for a technology/environment pair. Sub-6 propagates
// further in rural terrain (lower clutter); mmWave is near-free-space when
// line-of-sight but the effective exponent we use folds in light NLOS.
[[nodiscard]] double pathloss_exponent(Tech t, Environment env);

// Full distance-dependent path loss (excluding shadowing/fading). The
// band-profile form is the primary one (the carrier frequency comes from
// the profile, so scenario band plans propagate); the Tech form evaluates
// the default US plan.
[[nodiscard]] Db pathloss(const BandProfile& band, Environment env,
                          Meters distance);
[[nodiscard]] Db pathloss(Tech t, Environment env, Meters distance);

// Log-normal shadowing standard deviation (dB) per technology/environment.
[[nodiscard]] double shadowing_sigma_db(Tech t, Environment env);

}  // namespace wheels::radio
