// Object-detection accuracy model (Appendix C.2, Table 5).
//
// The AR app runs on-device local tracking that propagates the latest
// server-returned bounding boxes forward; accuracy (mAP on Argoverse with
// Faster R-CNN) therefore degrades as a function of the end-to-end
// offloading latency measured in frame times. The study tabulated this
// relation offline; we embed the table.
#pragma once

#include <span>

#include "core/units.h"

namespace wheels::apps {

// mAP (percent) at an E2E latency of `e2e` given a frame interval. The
// table has 30 one-frame-time bins; latencies beyond the table decay
// smoothly toward a floor of ~10 (tracker fully stale).
[[nodiscard]] double detection_map(Millis e2e, Millis frame_interval,
                                   bool with_compression);

// Run-level accuracy: the mean over the per-frame mAPs of a run's E2E
// latency samples.
[[nodiscard]] double run_map(std::span<const double> e2e_ms,
                             Millis frame_interval, bool with_compression);

}  // namespace wheels::apps
