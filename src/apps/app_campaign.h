// Runs the four "5G killer" apps along the drive, round-robin, one phone
// per operator (all phones share the car, hence the trajectory), plus the
// per-city best-static baselines.
//
// Cycle per operator: AR w/o compression, AR w/ compression, CAV w/o,
// CAV w/ (20 s each), 360-video (180 s), cloud gaming (60 s), separated by
// short gaps -- the study's round-robin of §3.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "apps/gaming.h"
#include "apps/offload.h"
#include "apps/video.h"
#include "core/rng.h"
#include "net/server.h"
#include "ran/operator_profile.h"
#include "scenario/spec.h"
#include "trip/trip_simulator.h"

namespace wheels::apps {

enum class AppKind : std::uint8_t { Ar, Cav, Video, Gaming };

[[nodiscard]] constexpr std::string_view to_string(AppKind a) {
  switch (a) {
    case AppKind::Ar: return "AR";
    case AppKind::Cav: return "CAV";
    case AppKind::Video: return "360-video";
    case AppKind::Gaming: return "cloud-gaming";
  }
  return "?";
}

// One app run with its mobility/radio context. Metric fields not relevant
// to the app kind stay zero.
struct AppRunRecord {
  AppKind app = AppKind::Ar;
  bool compression = false;  // AR/CAV only
  ran::OperatorId op = ran::OperatorId::Verizon;
  SimTime start;
  Meters position{0.0};
  TimeZone tz = TimeZone::Pacific;
  net::ServerKind server = net::ServerKind::Cloud;
  int handovers = 0;
  double frac_high_speed_5g = 0.0;
  // AR / CAV.
  double mean_e2e_ms = 0.0;
  double median_e2e_ms = 0.0;
  double offloaded_fps = 0.0;
  double map = 0.0;  // AR only
  std::vector<double> e2e_ms;
  // Video.
  double qoe = 0.0;
  double avg_bitrate_mbps = 0.0;
  double rebuffer_fraction = 0.0;
  // Gaming.
  double gaming_bitrate_mbps = 0.0;
  double gaming_latency_ms = 0.0;
  double frame_drop_rate = 0.0;

  friend bool operator==(const AppRunRecord&, const AppRunRecord&) = default;
};

struct AppCampaignConfig {
  std::uint64_t seed = 42;
  // Run every k-th cycle (fast-forwarding the rest) to trade sample count
  // for runtime; geographic spread is preserved.
  int cycle_stride = 1;
  Millis gap{3'000.0};
  trip::DriveConfig drive{};
  // The scenario this app campaign realizes: route, roster, band plan,
  // load regime, and which app families run (spec.apps). The fields above
  // are derived from it by from_scenario().
  scenario::ScenarioSpec spec = scenario::paper_default();

  static AppCampaignConfig from_scenario(const scenario::ScenarioSpec& spec,
                                         int cycle_stride = 1);
};

struct AppCampaignResult {
  std::array<std::vector<AppRunRecord>, 3> runs;  // by OperatorId

  [[nodiscard]] const std::vector<AppRunRecord>& for_op(
      ran::OperatorId op) const {
    return runs[static_cast<std::size_t>(op)];
  }

  friend bool operator==(const AppCampaignResult&,
                         const AppCampaignResult&) = default;
};

class AppCampaign {
 public:
  explicit AppCampaign(AppCampaignConfig cfg = AppCampaignConfig{});

  // Run the driving campaign for all three operators (idempotent: the
  // first call simulates, later calls return the same result). The
  // reference stays valid for the lifetime of the AppCampaign.
  const AppCampaignResult& run();

  // Best-static baselines: several runs next to the best high-speed-5G
  // site of each major city; the study quotes the best run.
  std::vector<AppRunRecord> run_static_baseline(ran::OperatorId op);

 private:
  AppCampaignConfig cfg_;
  AppCampaignResult result_;
  bool ran_ = false;
};

}  // namespace wheels::apps
