// The canonical edge-assisted AR / CAV offloading benchmark app.
//
// Reproduces the study's custom Android app (§C.1): camera frames (AR) or
// LIDAR point clouds (CAV) are offloaded best-effort to a GPU server; the
// end-to-end latency of a frame is
//   compression + upload + wired path + DNN inference + result download
//   + decompression,
// and the app always offloads the *newest* frame once the pipeline frees
// up (stale frames are dropped, bounding the offloaded FPS by 1/E2E).
#pragma once

#include <vector>

#include "apps/link_env.h"
#include "core/rng.h"
#include "core/units.h"

namespace wheels::apps {

// Table 4 of the paper.
struct OffloadConfig {
  double fps = 30.0;
  double frame_raw_kb = 450.0;
  double frame_compressed_kb = 50.0;
  Millis compression_time{6.3};
  Millis inference_time{24.9};
  Millis decompression_time{1.0};
  Millis run_duration{20'000.0};
  bool use_compression = true;
  double result_kb = 4.0;  // detection results shipped back
};

[[nodiscard]] OffloadConfig ar_config(bool use_compression);
[[nodiscard]] OffloadConfig cav_config(bool use_compression);

struct OffloadRunResult {
  std::vector<double> e2e_ms;  // per offloaded frame
  double offloaded_fps = 0.0;
  double mean_e2e_ms = 0.0;
  double median_e2e_ms = 0.0;
  double frac_high_speed_5g = 0.0;
  double frac_connected = 0.0;
};

// Execute one run of the app over the given link.
[[nodiscard]] OffloadRunResult run_offload(const OffloadConfig& cfg,
                                           LinkEnv& env, Rng rng);

}  // namespace wheels::apps
