// The link environment an application run executes against.
//
// Applications are written against this tiny interface instead of the trip
// machinery so they can run over a live drive (AppCampaign), a static
// baseline, or a synthetic trace in tests.
#pragma once

#include <functional>

#include "core/units.h"
#include "ran/ue.h"

namespace wheels::apps {

struct LinkEnv {
  // Advance the underlying link by dt and return its state.
  std::function<ran::LinkSample(Millis dt)> step;
  // Wired one-way delay to the serving (cloud or edge) server.
  Millis path_one_way{12.0};
};

}  // namespace wheels::apps
