// 360-degree video streaming (Appendix D).
//
// A Puffer-style chunked streaming session with the BBA (buffer-based)
// ABR: bitrate is a piecewise-linear function of the playback buffer
// between a reservoir and a cushion. QoE follows Yin et al.:
//   QoE_k = B_k - lambda * |B_k - B_{k-1}| - mu * T_k
// with lambda = 1, mu = 100 (the study's choice), averaged over chunks.
#pragma once

#include <vector>

#include "apps/link_env.h"
#include "core/units.h"

namespace wheels::apps {

struct VideoConfig {
  Millis chunk_duration{2'000.0};
  std::vector<double> bitrates_mbps{5.0, 10.0, 50.0, 100.0};  // ascending
  Millis run_duration{180'000.0};
  double reservoir_s = 6.0;   // below: lowest bitrate
  double cushion_s = 13.0;    // above: highest bitrate
  double buffer_max_s = 15.0;
  double qoe_lambda = 1.0;
  double qoe_mu = 100.0;
};

struct VideoRunResult {
  double avg_qoe = 0.0;
  double avg_bitrate_mbps = 0.0;
  double rebuffer_fraction = 0.0;  // stall time / run duration
  int bitrate_switches = 0;
  int chunks = 0;
  double frac_high_speed_5g = 0.0;
};

[[nodiscard]] VideoRunResult run_video(const VideoConfig& cfg, LinkEnv& env);

// BBA bitrate choice for a buffer level (exposed for unit testing).
[[nodiscard]] double bba_bitrate(const VideoConfig& cfg, double buffer_s);

}  // namespace wheels::apps
