#include "apps/gaming.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/stats.h"
#include "radio/technology.h"

namespace wheels::apps {

GamingRunResult run_gaming(const GamingConfig& cfg, LinkEnv& env, Rng rng) {
  const Millis slot{10.0};
  GamingRunResult out;

  double capacity_est = 20.0;  // Mbps, warm start
  double bitrate = 15.0;
  double queue_mbit = 0.0;  // backlog at the bottleneck
  double fps = cfg.target_fps;

  std::vector<double> bitrate_samples;
  std::vector<double> latency_samples;
  double frames_sent = 0.0, frames_dropped = 0.0;
  int hs5g_slots = 0, slots = 0;
  Millis since_adapt{0.0};
  Millis blackout{0.0};  // consecutive time with no usable capacity

  for (Millis now{0.0}; now.value < cfg.run_duration.value; now += slot) {
    const auto link = env.step(slot);
    ++slots;
    if (link.connected && radio::is_high_speed(link.tech)) ++hs5g_slots;

    const double cap = link.phy_rate_dl.value;

    // Bottleneck backlog: grows when sending above capacity, drains at
    // the spare rate. The jitter buffer drops (rather than queues) frames
    // beyond ~400 ms of backlog, bounding the latency excursion.
    queue_mbit += (bitrate - cap) * slot.seconds();
    queue_mbit = std::clamp(queue_mbit, 0.0, 0.25 * std::max(bitrate, cap));
    const double queue_ms =
        cap > 0.1 ? queue_mbit / cap * 1e3
                  : (queue_mbit > 0.0 ? 250.0 : 0.0);

    // Frame accounting: frames whose queueing exceeds a few frame
    // intervals are dropped unless the frame rate adapts.
    const double frame_interval_ms = 1'000.0 / fps;
    frames_sent += fps * slot.seconds();
    if (!link.connected || link.in_handover || cap < 0.1) {
      blackout += slot;
      // Brief interruptions ride out the jitter buffer; once it is
      // exhausted (~2 s) every frame is lost.
      frames_dropped +=
          (blackout.value > 2'000.0 ? 0.9 : 0.2) * fps * slot.seconds();
    } else if (queue_ms > 4.0 * frame_interval_ms && cap < bitrate) {
      // Overloaded: the platform first adapts FPS, still losing a few.
      blackout = Millis{0.0};
      fps = std::max(15.0, fps - 30.0 * slot.seconds());
      frames_dropped += 0.1 * fps * slot.seconds();
    } else {
      blackout = Millis{0.0};
      fps = std::min(cfg.target_fps, fps + 10.0 * slot.seconds());
    }

    // Latency sample ~10 Hz: RTT/2-ish network latency + queueing.
    if (slots % 10 == 0) {
      const double net_lat = link.air_latency.value +
                             env.path_one_way.value + queue_ms +
                             rng.uniform(0.0, 3.0);
      latency_samples.push_back(net_lat);
      bitrate_samples.push_back(bitrate);
    }

    // Capacity estimation + bitrate adaptation at 100 ms cadence.
    since_adapt += slot;
    if (since_adapt.value >= 100.0) {
      since_adapt = Millis{0.0};
      capacity_est = (1.0 - cfg.ema_alpha) * capacity_est +
                     cfg.ema_alpha * cap;
      double target = cfg.capacity_safety * capacity_est;
      target = std::clamp(target, cfg.min_bitrate_mbps,
                          cfg.max_bitrate_mbps);
      // The adapter ramps up slowly and cuts quickly.
      if (target > bitrate) {
        bitrate += std::min(2.0, target - bitrate);
      } else {
        bitrate = target;
      }
    }
  }

  if (!bitrate_samples.empty()) {
    out.median_bitrate_mbps = median(bitrate_samples);
  }
  if (!latency_samples.empty()) {
    RunningStats rs;
    for (double v : latency_samples) rs.add(v);
    out.mean_latency_ms = rs.mean();
    out.p90_latency_ms = percentile(latency_samples, 90.0);
  }
  out.frame_drop_rate =
      frames_sent > 0.0 ? std::min(1.0, frames_dropped / frames_sent) : 0.0;
  out.frac_high_speed_5g =
      slots ? static_cast<double>(hs5g_slots) / slots : 0.0;
  return out;
}

}  // namespace wheels::apps
