#include "apps/accuracy.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace wheels::apps {
namespace {

// Table 5: mAP per E2E latency bin (frame times), without / with
// compression.
constexpr std::array<double, 30> kMapNoCompression = {
    38.45, 37.22, 36.04, 34.65, 33.36, 32.20, 31.08, 28.03, 27.01, 25.62,
    25.77, 23.29, 22.75, 22.48, 21.59, 20.59, 20.11, 19.53, 18.40, 18.01,
    17.52, 16.96, 16.59, 15.41, 15.78, 15.86, 14.81, 14.70, 14.44, 14.05};

constexpr std::array<double, 30> kMapWithCompression = {
    38.45, 36.14, 34.75, 33.12, 31.82, 30.50, 29.53, 26.99, 25.73, 25.21,
    24.35, 22.44, 21.56, 21.64, 21.16, 20.35, 19.69, 18.95, 17.61, 17.85,
    17.00, 16.55, 15.97, 15.16, 14.94, 15.37, 14.71, 13.77, 13.62, 13.70};

constexpr double kFloorMap = 10.0;

}  // namespace

double detection_map(Millis e2e, Millis frame_interval,
                     bool with_compression) {
  const auto& table =
      with_compression ? kMapWithCompression : kMapNoCompression;
  const double ft = std::max(frame_interval.value, 1.0);
  const double bins = std::max(0.0, e2e.value / ft);
  const auto bin = static_cast<std::size_t>(bins);
  if (bin < table.size()) return table[bin];
  // Beyond the table: exponential decay from the last entry to the floor.
  const double overshoot = bins - static_cast<double>(table.size());
  return kFloorMap +
         (table.back() - kFloorMap) * std::exp(-overshoot / 10.0);
}

double run_map(std::span<const double> e2e_ms, Millis frame_interval,
               bool with_compression) {
  if (e2e_ms.empty()) return 0.0;  // nothing offloaded: detector blind
  double sum = 0.0;
  for (double v : e2e_ms) {
    sum += detection_map(Millis{v}, frame_interval, with_compression);
  }
  return sum / static_cast<double>(e2e_ms.size());
}

}  // namespace wheels::apps
