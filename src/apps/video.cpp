#include "apps/video.h"

#include <algorithm>
#include <cmath>

#include "radio/technology.h"

namespace wheels::apps {

double bba_bitrate(const VideoConfig& cfg, double buffer_s) {
  const auto& rates = cfg.bitrates_mbps;
  if (buffer_s <= cfg.reservoir_s) return rates.front();
  if (buffer_s >= cfg.cushion_s) return rates.back();
  // Linear map of the buffer position onto the ladder.
  const double f = (buffer_s - cfg.reservoir_s) /
                   (cfg.cushion_s - cfg.reservoir_s);
  const double target =
      rates.front() + f * (rates.back() - rates.front());
  // Highest ladder rung not exceeding the target.
  double chosen = rates.front();
  for (double r : rates) {
    if (r <= target) chosen = r;
  }
  return chosen;
}

VideoRunResult run_video(const VideoConfig& cfg, LinkEnv& env) {
  const Millis slot{10.0};
  VideoRunResult out;

  double buffer_s = 0.0;
  double prev_bitrate = 0.0;
  double qoe_sum = 0.0;
  double bitrate_sum = 0.0;
  double total_stall_s = 0.0;

  // Chunk in flight.
  double chunk_bitrate = bba_bitrate(cfg, buffer_s);
  double chunk_kb_left =
      chunk_bitrate * cfg.chunk_duration.value / 8.0;  // Mbps*ms/8 = KB
  double chunk_stall_s = 0.0;
  bool first_chunk = true;

  int hs5g_slots = 0, slots = 0;
  for (Millis now{0.0}; now.value < cfg.run_duration.value; now += slot) {
    const auto link = env.step(slot);
    ++slots;
    if (link.connected && radio::is_high_speed(link.tech)) ++hs5g_slots;

    // Playback drains the buffer; stalls accrue when it is empty (after
    // the initial startup fill).
    const double dt_s = slot.seconds();
    if (buffer_s > 0.0) {
      buffer_s = std::max(0.0, buffer_s - dt_s);
    } else if (!first_chunk) {
      chunk_stall_s += dt_s;
    }

    // Chunk download progress. HTTP-over-TCP only realizes part of the
    // radio rate (slow-start restarts between chunks, header overhead).
    const double kb =
        0.65 * link.phy_rate_dl.value * slot.value / 8.0;
    chunk_kb_left -= kb;
    if (chunk_kb_left <= 0.0) {
      // Chunk complete: account QoE, enqueue playback, pick the next one.
      const double switch_pen =
          first_chunk ? 0.0
                      : cfg.qoe_lambda * std::abs(chunk_bitrate - prev_bitrate);
      qoe_sum += chunk_bitrate - switch_pen - cfg.qoe_mu * chunk_stall_s;
      bitrate_sum += chunk_bitrate;
      total_stall_s += chunk_stall_s;
      if (!first_chunk && chunk_bitrate != prev_bitrate) {
        ++out.bitrate_switches;
      }
      prev_bitrate = chunk_bitrate;
      first_chunk = false;
      ++out.chunks;
      buffer_s = std::min(cfg.buffer_max_s,
                          buffer_s + cfg.chunk_duration.seconds());

      chunk_bitrate = bba_bitrate(cfg, buffer_s);
      chunk_kb_left = chunk_bitrate * cfg.chunk_duration.value / 8.0;
      chunk_stall_s = 0.0;
      // Buffer full: pause the download until there is room.
      if (buffer_s >= cfg.buffer_max_s) {
        // Model the pause as deferring the next chunk by one chunk time.
        chunk_kb_left += 0.0;  // (drain handles it; no extra state needed)
      }
    }
  }
  total_stall_s += chunk_stall_s;  // partial chunk's stall still counts
  if (out.chunks == 0) {
    // Nothing ever played: the whole run is one long stall.
    total_stall_s = cfg.run_duration.seconds();
  }

  if (out.chunks > 0) {
    out.avg_qoe = qoe_sum / out.chunks;
    out.avg_bitrate_mbps = bitrate_sum / out.chunks;
  } else {
    // Nothing ever arrived: every would-be chunk was pure stall.
    out.avg_qoe = -cfg.qoe_mu * cfg.chunk_duration.seconds();
  }
  out.rebuffer_fraction =
      std::min(1.0, total_stall_s / cfg.run_duration.seconds());
  out.frac_high_speed_5g =
      slots ? static_cast<double>(hs5g_slots) / slots : 0.0;
  return out;
}

}  // namespace wheels::apps
