#include "apps/offload.h"

#include <algorithm>

#include "core/stats.h"
#include "radio/technology.h"

namespace wheels::apps {

OffloadConfig ar_config(bool use_compression) {
  OffloadConfig c;
  c.fps = 30.0;
  c.frame_raw_kb = 450.0;
  c.frame_compressed_kb = 50.0;
  c.compression_time = Millis{6.3};
  c.inference_time = Millis{24.9};
  c.decompression_time = Millis{1.0};
  c.run_duration = Millis{20'000.0};
  c.use_compression = use_compression;
  return c;
}

OffloadConfig cav_config(bool use_compression) {
  OffloadConfig c;
  c.fps = 10.0;
  c.frame_raw_kb = 2000.0;
  c.frame_compressed_kb = 38.0;
  c.compression_time = Millis{34.8};
  c.inference_time = Millis{44.0};
  c.decompression_time = Millis{19.1};
  c.run_duration = Millis{20'000.0};
  c.use_compression = use_compression;
  return c;
}

OffloadRunResult run_offload(const OffloadConfig& cfg, LinkEnv& env,
                             Rng rng) {
  const Millis slot{10.0};
  const double frame_kb =
      cfg.use_compression ? cfg.frame_compressed_kb : cfg.frame_raw_kb;

  // Pipeline state for the frame in flight.
  enum class Stage { Idle, Compressing, Uploading, Serving, Downloading };
  Stage stage = Stage::Idle;
  Millis stage_remaining{0.0};
  double upload_kb_left = 0.0;
  double download_kb_left = 0.0;
  Millis frame_started{0.0};  // E2E clock of the frame in flight

  OffloadRunResult out;
  int hs5g_slots = 0, connected_slots = 0, slots = 0;
  Millis now{0.0};
  Millis next_frame{0.0};
  const Millis frame_interval{1'000.0 / cfg.fps};
  bool frame_available = false;

  while (now.value < cfg.run_duration.value) {
    const auto link = env.step(slot);
    now += slot;
    ++slots;
    if (link.connected) ++connected_slots;
    if (link.connected && radio::is_high_speed(link.tech)) ++hs5g_slots;

    // Camera produces frames at the configured FPS; only the newest one is
    // kept (best-effort offloading).
    if (!(now < next_frame)) {
      frame_available = true;
      next_frame += frame_interval;
    }

    // Advance the in-flight frame.
    if (stage != Stage::Idle) frame_started += slot;
    switch (stage) {
      case Stage::Idle:
        if (frame_available) {
          frame_available = false;
          frame_started = Millis{0.0};
          if (cfg.use_compression) {
            stage = Stage::Compressing;
            // Compression time varies a little with content.
            stage_remaining =
                Millis{cfg.compression_time.value * rng.uniform(0.9, 1.15)};
          } else {
            stage = Stage::Uploading;
            upload_kb_left = frame_kb;
          }
        }
        break;
      case Stage::Compressing:
        stage_remaining -= slot;
        if (stage_remaining.value <= 0.0) {
          stage = Stage::Uploading;
          upload_kb_left = frame_kb * rng.uniform(0.85, 1.15);
        }
        break;
      case Stage::Uploading: {
        // Mbps * ms / 8 = KB; best-effort sockets realize ~3/4 of the
        // radio rate (slow start, HARQ stalls).
        const double kb = 0.75 * link.phy_rate_ul.value * slot.value / 8.0;
        upload_kb_left -= kb;
        if (upload_kb_left <= 0.0) {
          stage = Stage::Serving;
          // One-way wired path + inference.
          stage_remaining =
              Millis{env.path_one_way.value * 2.0 +
                     cfg.inference_time.value * rng.uniform(0.95, 1.1)};
        }
        break;
      }
      case Stage::Serving:
        stage_remaining -= slot;
        if (stage_remaining.value <= 0.0) {
          stage = Stage::Downloading;
          download_kb_left = cfg.result_kb;
        }
        break;
      case Stage::Downloading: {
        const double kb = 0.75 * link.phy_rate_dl.value * slot.value / 8.0;
        download_kb_left -= kb;
        if (download_kb_left <= 0.0) {
          Millis e2e = frame_started;
          if (cfg.use_compression) {
            e2e += Millis{cfg.decompression_time.value *
                          rng.uniform(0.9, 1.1)};
          }
          out.e2e_ms.push_back(e2e.value);
          stage = Stage::Idle;
        }
        break;
      }
    }
  }

  out.offloaded_fps =
      static_cast<double>(out.e2e_ms.size()) / cfg.run_duration.seconds();
  if (!out.e2e_ms.empty()) {
    RunningStats rs;
    for (double v : out.e2e_ms) rs.add(v);
    out.mean_e2e_ms = rs.mean();
    out.median_e2e_ms = median(out.e2e_ms);
  }
  out.frac_high_speed_5g =
      slots ? static_cast<double>(hs5g_slots) / slots : 0.0;
  out.frac_connected =
      slots ? static_cast<double>(connected_slots) / slots : 0.0;
  return out;
}

}  // namespace wheels::apps
