// Cloud gaming (Appendix E): a Steam-Remote-Play-style session model.
//
// The server streams 4K/60FPS video whose send bitrate is governed by a
// capacity-tracking adapter capped at 100 Mbps. The platform's observable
// behaviour per the study: it defends the frame-drop rate (by adapting the
// frame rate) even at the cost of very high network latency. Metrics per
// run: send bitrate, network latency, frame-drop rate.
#pragma once

#include "apps/link_env.h"
#include "core/rng.h"
#include "core/units.h"

namespace wheels::apps {

struct GamingConfig {
  Millis run_duration{60'000.0};
  double max_bitrate_mbps = 100.0;
  double min_bitrate_mbps = 1.0;
  double target_fps = 60.0;
  double capacity_safety = 0.65; // adapter targets this fraction of capacity
  double ema_alpha = 0.15;       // capacity estimator smoothing (per 100 ms)
};

struct GamingRunResult {
  double median_bitrate_mbps = 0.0;
  double mean_latency_ms = 0.0;
  double p90_latency_ms = 0.0;
  double frame_drop_rate = 0.0;  // fraction of frames dropped
  double frac_high_speed_5g = 0.0;
};

[[nodiscard]] GamingRunResult run_gaming(const GamingConfig& cfg,
                                         LinkEnv& env, Rng rng);

}  // namespace wheels::apps
