#include "apps/app_campaign.h"

#include <cmath>

#include "apps/accuracy.h"
#include "trip/region.h"
#include "trip/route.h"

namespace wheels::apps {
namespace {

using radio::Tech;
using ran::OperatorId;

std::vector<net::EdgeSite> edge_sites_from(const trip::Route& route) {
  std::vector<net::EdgeSite> sites;
  for (const auto& c : route.cities()) {
    if (c.has_edge_server) sites.push_back({c.name, c.route_pos});
  }
  return sites;
}

constexpr Millis kArFrameInterval{1'000.0 / 30.0};

// Fill the app-specific metric fields of a record.
void fill_offload(AppRunRecord& rec, const OffloadRunResult& r,
                  bool is_ar, bool compression) {
  rec.mean_e2e_ms = r.mean_e2e_ms;
  rec.median_e2e_ms = r.median_e2e_ms;
  rec.offloaded_fps = r.offloaded_fps;
  rec.e2e_ms = r.e2e_ms;
  rec.frac_high_speed_5g = r.frac_high_speed_5g;
  if (is_ar) {
    rec.map = run_map(r.e2e_ms, kArFrameInterval, compression);
  }
}

}  // namespace

AppCampaign::AppCampaign(AppCampaignConfig cfg) : cfg_(cfg) {}

const AppCampaignResult& AppCampaign::run() {
  if (ran_) return result_;
  ran_ = true;
  AppCampaignResult& result = result_;
  const trip::Route route = trip::Route::cross_country();
  Rng rng(cfg_.seed);
  const ran::Corridor corridor =
      trip::build_corridor(route, rng.fork("corridor"));
  const net::ServerSelector servers(edge_sites_from(route));

  for (OperatorId op : ran::kAllOperators) {
    const auto oi = static_cast<std::size_t>(op);
    const auto& profile = ran::operator_profile(op);
    const ran::Deployment dep = ran::Deployment::generate(
        corridor, profile, rng.fork(to_string(op)));
    // Same trip seed for every operator: the phones share the car.
    trip::TripSimulator trip(route, corridor, rng.fork("trip"), cfg_.drive);
    ran::UeSimulator ue(corridor, dep, profile,
                        rng.fork(to_string(op)).fork("app-ue"),
                        ran::TrafficProfile::Interactive);
    Rng app_rng = rng.fork(to_string(op)).fork("apps");

    LinkEnv env;
    env.step = [&](Millis dt) {
      const auto pt = trip.advance(dt);
      return ue.step(pt.time, pt.position, pt.speed, dt);
    };

    auto gap = [&](Millis duration) {
      ue.set_traffic(ran::TrafficProfile::Idle);
      for (Millis el{0.0}; el.value < duration.value && !trip.finished();
           el += Millis{100.0}) {
        const auto pt = trip.advance(Millis{100.0});
        ue.step(pt.time, pt.position, pt.speed, Millis{100.0});
      }
      ue.set_traffic(ran::TrafficProfile::Interactive);
    };

    auto begin_record = [&](AppKind app, bool compression) {
      AppRunRecord rec;
      rec.app = app;
      rec.compression = compression;
      rec.op = op;
      rec.start = trip.current().time;
      rec.position = trip.current().position;
      rec.tz = corridor.at(rec.position).tz;
      const auto ep = servers.select(op, rec.position, rec.tz);
      rec.server = ep.kind;
      env.path_one_way = ep.one_way_delay;
      return rec;
    };

    int cycle = 0;
    while (!trip.finished()) {
      if (cfg_.cycle_stride > 1 && (cycle % cfg_.cycle_stride) != 0) {
        // 4x20s offload + 180s video + 60s gaming + 6 gaps.
        gap(Millis{4.0 * 20'000.0 + 180'000.0 + 60'000.0 +
                   6.0 * cfg_.gap.value});
        ++cycle;
        continue;
      }
      ++cycle;

      for (const bool is_ar : {true, false}) {
        for (const bool compression : {false, true}) {
          if (trip.finished()) break;
          auto rec = begin_record(is_ar ? AppKind::Ar : AppKind::Cav,
                                  compression);
          const std::size_t ho_base = ue.handovers().size();
          const auto cfg = is_ar ? ar_config(compression)
                                 : cav_config(compression);
          const auto r = run_offload(cfg, env, app_rng.fork(cycle * 8 +
                                                            (is_ar ? 0 : 2) +
                                                            compression));
          fill_offload(rec, r, is_ar, compression);
          rec.handovers =
              static_cast<int>(ue.handovers().size() - ho_base);
          result.runs[oi].push_back(std::move(rec));
          gap(cfg_.gap);
        }
      }

      if (trip.finished()) break;
      {
        auto rec = begin_record(AppKind::Video, false);
        const std::size_t ho_base = ue.handovers().size();
        const auto r = run_video(VideoConfig{}, env);
        rec.qoe = r.avg_qoe;
        rec.avg_bitrate_mbps = r.avg_bitrate_mbps;
        rec.rebuffer_fraction = r.rebuffer_fraction;
        rec.frac_high_speed_5g = r.frac_high_speed_5g;
        rec.handovers = static_cast<int>(ue.handovers().size() - ho_base);
        result.runs[oi].push_back(std::move(rec));
        gap(cfg_.gap);
      }

      if (trip.finished()) break;
      {
        auto rec = begin_record(AppKind::Gaming, false);
        const std::size_t ho_base = ue.handovers().size();
        const auto r =
            run_gaming(GamingConfig{}, env, app_rng.fork(cycle * 8 + 7));
        rec.gaming_bitrate_mbps = r.median_bitrate_mbps;
        rec.gaming_latency_ms = r.mean_latency_ms;
        rec.frame_drop_rate = r.frame_drop_rate;
        rec.frac_high_speed_5g = r.frac_high_speed_5g;
        rec.handovers = static_cast<int>(ue.handovers().size() - ho_base);
        result.runs[oi].push_back(std::move(rec));
        gap(cfg_.gap);
      }
    }
  }
  return result;
}

std::vector<AppRunRecord> AppCampaign::run_static_baseline(OperatorId op) {
  std::vector<AppRunRecord> out;
  const trip::Route route = trip::Route::cross_country();
  Rng rng(cfg_.seed);
  const ran::Corridor corridor =
      trip::build_corridor(route, rng.fork("corridor"));
  const net::ServerSelector servers(edge_sites_from(route));
  const auto& profile = ran::operator_profile(op);
  const ran::Deployment dep =
      ran::Deployment::generate(corridor, profile, rng.fork(to_string(op)));
  Rng srng = rng.fork(to_string(op)).fork("static-apps");

  for (const auto& city : route.cities()) {
    // Nearest mmWave site in the urban core, else mid-band.
    const ran::Cell* site = nullptr;
    for (Tech tech : {Tech::NR_MMWAVE, Tech::NR_MID}) {
      double best_d = 22'000.0;
      for (const auto& c : dep.cells(tech)) {
        const double d = std::abs(c.route_pos.value - city.route_pos.value);
        if (d < best_d) {
          best_d = d;
          site = &c;
        }
      }
      if (site) break;
    }
    if (!site) continue;

    const Meters pos = site->route_pos;
    const TimeZone tz = corridor.at(pos).tz;
    const auto ep = servers.select(op, pos, tz);
    ran::UeSimulator ue(corridor, dep, profile, srng.fork(city.name),
                        ran::TrafficProfile::Interactive);
    ue.set_favourable_conditions(true);
    CivilTime noon;
    noon.day = 1;
    noon.hour = 12;
    SimTime t = from_civil(noon, tz);

    LinkEnv env;
    env.path_one_way = ep.one_way_delay;
    env.step = [&](Millis dt) {
      const auto link = ue.step(t, pos, Mph{0.0}, dt);
      t += dt;
      return link;
    };

    auto make_record = [&](AppKind app, bool compression) {
      AppRunRecord rec;
      rec.app = app;
      rec.compression = compression;
      rec.op = op;
      rec.start = t;
      rec.position = pos;
      rec.tz = tz;
      rec.server = ep.kind;
      return rec;
    };

    for (int rep = 0; rep < 3; ++rep) {
      for (const bool is_ar : {true, false}) {
        for (const bool compression : {false, true}) {
          auto rec = make_record(is_ar ? AppKind::Ar : AppKind::Cav,
                                 compression);
          const auto cfg =
              is_ar ? ar_config(compression) : cav_config(compression);
          const auto r =
              run_offload(cfg, env, srng.fork(city.name).fork(rep * 8 + 2 *
                                                              is_ar +
                                                              compression));
          fill_offload(rec, r, is_ar, compression);
          out.push_back(std::move(rec));
        }
      }
      {
        auto rec = make_record(AppKind::Video, false);
        const auto r = run_video(VideoConfig{}, env);
        rec.qoe = r.avg_qoe;
        rec.avg_bitrate_mbps = r.avg_bitrate_mbps;
        rec.rebuffer_fraction = r.rebuffer_fraction;
        rec.frac_high_speed_5g = r.frac_high_speed_5g;
        out.push_back(std::move(rec));
      }
      {
        auto rec = make_record(AppKind::Gaming, false);
        const auto r = run_gaming(GamingConfig{}, env,
                                  srng.fork(city.name).fork(100 + rep));
        rec.gaming_bitrate_mbps = r.median_bitrate_mbps;
        rec.gaming_latency_ms = r.mean_latency_ms;
        rec.frame_drop_rate = r.frame_drop_rate;
        rec.frac_high_speed_5g = r.frac_high_speed_5g;
        out.push_back(std::move(rec));
      }
    }
  }
  return out;
}

}  // namespace wheels::apps
