#include "apps/app_campaign.h"

#include <cmath>

#include "apps/accuracy.h"
#include "ran/scenario_profiles.h"
#include "trip/region.h"
#include "trip/route.h"

namespace wheels::apps {
namespace {

using radio::Tech;
using ran::OperatorId;

std::vector<net::EdgeSite> edge_sites_from(const trip::Route& route) {
  std::vector<net::EdgeSite> sites;
  for (const auto& c : route.cities()) {
    if (c.has_edge_server) sites.push_back({c.name, c.route_pos});
  }
  return sites;
}

constexpr Millis kArFrameInterval{1'000.0 / 30.0};

// Fill the app-specific metric fields of a record.
void fill_offload(AppRunRecord& rec, const OffloadRunResult& r,
                  bool is_ar, bool compression) {
  rec.mean_e2e_ms = r.mean_e2e_ms;
  rec.median_e2e_ms = r.median_e2e_ms;
  rec.offloaded_fps = r.offloaded_fps;
  rec.e2e_ms = r.e2e_ms;
  rec.frac_high_speed_5g = r.frac_high_speed_5g;
  if (is_ar) {
    rec.map = run_map(r.e2e_ms, kArFrameInterval, compression);
  }
}

}  // namespace

AppCampaignConfig AppCampaignConfig::from_scenario(
    const scenario::ScenarioSpec& spec, int cycle_stride) {
  scenario::validate(spec);
  AppCampaignConfig cfg;
  cfg.seed = spec.seed;
  cfg.cycle_stride = cycle_stride;
  cfg.gap = Millis{spec.timing.gap_ms};
  cfg.drive.hours_per_day = spec.drive.hours_per_day;
  cfg.drive.start_hour_local = spec.drive.start_hour_local;
  cfg.drive.speed =
      trip::SpeedTargets{spec.speed.urban_mph, spec.speed.suburban_mph,
                         spec.speed.rural_mph, spec.speed.max_mph};
  cfg.spec = spec;
  return cfg;
}

AppCampaign::AppCampaign(AppCampaignConfig cfg) : cfg_(std::move(cfg)) {
  scenario::validate(cfg_.spec);
}

const AppCampaignResult& AppCampaign::run() {
  if (ran_) return result_;
  ran_ = true;
  AppCampaignResult& result = result_;
  const trip::Route route = trip::Route::from_spec(cfg_.spec.route);
  Rng rng(cfg_.seed);
  const ran::Corridor corridor =
      trip::build_corridor(route, rng.fork("corridor"));
  const net::ServerSelector servers(edge_sites_from(route));
  const ran::LoadRegime regime =
      ran::regime_from_spec(cfg_.spec.load_regime);
  const scenario::AppMixSpec& mix = cfg_.spec.apps;
  // Skipped-cycle drive time: each enabled offload run is 20 s, video
  // 180 s, gaming 60 s, one gap after every enabled run. The default mix
  // evaluates to exactly the pre-scenario constant.
  const double offload_runs =
      (mix.ar ? 2.0 : 0.0) + (mix.cav ? 2.0 : 0.0);
  const double gap_count = offload_runs + (mix.video ? 1.0 : 0.0) +
                           (mix.gaming ? 1.0 : 0.0);
  const Millis skip_len{offload_runs * 20'000.0 +
                        (mix.video ? 180'000.0 : 0.0) +
                        (mix.gaming ? 60'000.0 : 0.0) +
                        gap_count * cfg_.gap.value};

  for (OperatorId op : ran::kAllOperators) {
    const auto oi = static_cast<std::size_t>(op);
    const scenario::OperatorSpec& ospec = cfg_.spec.operators[oi];
    const ran::OperatorProfile profile = ran::profile_from_spec(ospec, op);
    const ran::Deployment dep = ran::Deployment::generate(
        // wheels-rng: dynamic(one deployment stream per operator name)
        corridor, profile, rng.fork(ospec.name));
    // Same trip seed for every operator: the phones share the car.
    trip::TripSimulator trip(route, corridor, rng.fork("trip"), cfg_.drive);
    ran::UeSimulator ue(corridor, dep, profile,
                        // wheels-rng: dynamic(per-operator UE stream)
                        rng.fork(ospec.name).fork("app-ue"),
                        ran::TrafficProfile::Interactive, cfg_.spec.bands,
                        regime);
    // wheels-rng: dynamic(per-operator app-session stream)
    Rng app_rng = rng.fork(ospec.name).fork("apps");

    LinkEnv env;
    env.step = [&](Millis dt) {
      const auto pt = trip.advance(dt);
      return ue.step(pt.time, pt.position, pt.speed, dt);
    };

    auto gap = [&](Millis duration) {
      ue.set_traffic(ran::TrafficProfile::Idle);
      for (Millis el{0.0}; el.value < duration.value && !trip.finished();
           el += Millis{100.0}) {
        const auto pt = trip.advance(Millis{100.0});
        ue.step(pt.time, pt.position, pt.speed, Millis{100.0});
      }
      ue.set_traffic(ran::TrafficProfile::Interactive);
    };

    auto begin_record = [&](AppKind app, bool compression) {
      AppRunRecord rec;
      rec.app = app;
      rec.compression = compression;
      rec.op = op;
      rec.start = trip.current().time;
      rec.position = trip.current().position;
      rec.tz = corridor.at(rec.position).tz;
      const auto ep = servers.select(op, rec.position, rec.tz);
      rec.server = ep.kind;
      env.path_one_way = ep.one_way_delay;
      return rec;
    };

    int cycle = 0;
    while (!trip.finished()) {
      if (cfg_.cycle_stride > 1 && (cycle % cfg_.cycle_stride) != 0) {
        gap(skip_len);
        ++cycle;
        continue;
      }
      ++cycle;

      for (const bool is_ar : {true, false}) {
        // Fork indices derive from (cycle, is_ar, compression), so
        // disabling a family never renumbers the remaining streams.
        if (is_ar ? !mix.ar : !mix.cav) continue;
        for (const bool compression : {false, true}) {
          if (trip.finished()) break;
          auto rec = begin_record(is_ar ? AppKind::Ar : AppKind::Cav,
                                  compression);
          const std::size_t ho_base = ue.handovers().size();
          const auto cfg = is_ar ? ar_config(compression)
                                 : cav_config(compression);
          // wheels-rng: dynamic(disjoint salt per cycle/app/compression)
          const auto r = run_offload(cfg, env, app_rng.fork(cycle * 8 +
                                                            (is_ar ? 0 : 2) +
                                                            compression));
          fill_offload(rec, r, is_ar, compression);
          rec.handovers =
              static_cast<int>(ue.handovers().size() - ho_base);
          result.runs[oi].push_back(std::move(rec));
          gap(cfg_.gap);
        }
      }

      if (trip.finished()) break;
      if (mix.video) {
        auto rec = begin_record(AppKind::Video, false);
        const std::size_t ho_base = ue.handovers().size();
        const auto r = run_video(VideoConfig{}, env);
        rec.qoe = r.avg_qoe;
        rec.avg_bitrate_mbps = r.avg_bitrate_mbps;
        rec.rebuffer_fraction = r.rebuffer_fraction;
        rec.frac_high_speed_5g = r.frac_high_speed_5g;
        rec.handovers = static_cast<int>(ue.handovers().size() - ho_base);
        result.runs[oi].push_back(std::move(rec));
        gap(cfg_.gap);
      }

      if (trip.finished()) break;
      if (mix.gaming) {
        auto rec = begin_record(AppKind::Gaming, false);
        const std::size_t ho_base = ue.handovers().size();
        const auto r =
            // wheels-rng: dynamic(gaming slot 7 of the per-cycle salt block)
            run_gaming(GamingConfig{}, env, app_rng.fork(cycle * 8 + 7));
        rec.gaming_bitrate_mbps = r.median_bitrate_mbps;
        rec.gaming_latency_ms = r.mean_latency_ms;
        rec.frame_drop_rate = r.frame_drop_rate;
        rec.frac_high_speed_5g = r.frac_high_speed_5g;
        rec.handovers = static_cast<int>(ue.handovers().size() - ho_base);
        result.runs[oi].push_back(std::move(rec));
        gap(cfg_.gap);
      }
    }
  }
  return result;
}

std::vector<AppRunRecord> AppCampaign::run_static_baseline(OperatorId op) {
  std::vector<AppRunRecord> out;
  const trip::Route route = trip::Route::from_spec(cfg_.spec.route);
  Rng rng(cfg_.seed);
  const ran::Corridor corridor =
      trip::build_corridor(route, rng.fork("corridor"));
  const net::ServerSelector servers(edge_sites_from(route));
  const ran::LoadRegime regime =
      ran::regime_from_spec(cfg_.spec.load_regime);
  const scenario::AppMixSpec& mix = cfg_.spec.apps;
  const scenario::OperatorSpec& ospec =
      cfg_.spec.operators[static_cast<std::size_t>(op)];
  const ran::OperatorProfile profile = ran::profile_from_spec(ospec, op);
  const ran::Deployment dep =
      // wheels-rng: dynamic(one deployment stream per operator name)
      ran::Deployment::generate(corridor, profile, rng.fork(ospec.name));
  // wheels-rng: dynamic(per-operator static-baseline stream)
  Rng srng = rng.fork(ospec.name).fork("static-apps");

  for (const auto& city : route.cities()) {
    // Nearest mmWave site in the urban core, else mid-band.
    const ran::Cell* site = nullptr;
    for (Tech tech : {Tech::NR_MMWAVE, Tech::NR_MID}) {
      double best_d = 22'000.0;
      for (const auto& c : dep.cells(tech)) {
        const double d = std::abs(c.route_pos.value - city.route_pos.value);
        if (d < best_d) {
          best_d = d;
          site = &c;
        }
      }
      if (site) break;
    }
    if (!site) continue;

    const Meters pos = site->route_pos;
    const TimeZone tz = corridor.at(pos).tz;
    const auto ep = servers.select(op, pos, tz);
    // wheels-rng: dynamic(per-city UE stream for the static baseline)
    ran::UeSimulator ue(corridor, dep, profile, srng.fork(city.name),
                        ran::TrafficProfile::Interactive, cfg_.spec.bands,
                        regime);
    ue.set_favourable_conditions(true);
    CivilTime noon;
    noon.day = 1;
    noon.hour = 12;
    SimTime t = from_civil(noon, tz);

    LinkEnv env;
    env.path_one_way = ep.one_way_delay;
    env.step = [&](Millis dt) {
      const auto link = ue.step(t, pos, Mph{0.0}, dt);
      t += dt;
      return link;
    };

    auto make_record = [&](AppKind app, bool compression) {
      AppRunRecord rec;
      rec.app = app;
      rec.compression = compression;
      rec.op = op;
      rec.start = t;
      rec.position = pos;
      rec.tz = tz;
      rec.server = ep.kind;
      return rec;
    };

    for (int rep = 0; rep < 3; ++rep) {
      for (const bool is_ar : {true, false}) {
        if (is_ar ? !mix.ar : !mix.cav) continue;
        for (const bool compression : {false, true}) {
          auto rec = make_record(is_ar ? AppKind::Ar : AppKind::Cav,
                                 compression);
          const auto cfg =
              is_ar ? ar_config(compression) : cav_config(compression);
          const auto r =
              // wheels-rng: dynamic(per-city stream, disjoint salt per rep/app)
              run_offload(cfg, env, srng.fork(city.name).fork(rep * 8 + 2 *
                                                              is_ar +
                                                              compression));
          fill_offload(rec, r, is_ar, compression);
          out.push_back(std::move(rec));
        }
      }
      if (mix.video) {
        auto rec = make_record(AppKind::Video, false);
        const auto r = run_video(VideoConfig{}, env);
        rec.qoe = r.avg_qoe;
        rec.avg_bitrate_mbps = r.avg_bitrate_mbps;
        rec.rebuffer_fraction = r.rebuffer_fraction;
        rec.frac_high_speed_5g = r.frac_high_speed_5g;
        out.push_back(std::move(rec));
      }
      if (mix.gaming) {
        auto rec = make_record(AppKind::Gaming, false);
        const auto r = run_gaming(GamingConfig{}, env,
                                  // wheels-rng: dynamic(per-city gaming rep, offset past the offload salt block)
                                  srng.fork(city.name).fork(100 + rep));
        rec.gaming_bitrate_mbps = r.median_bitrate_mbps;
        rec.gaming_latency_ms = r.mean_latency_ms;
        rec.frame_drop_rate = r.frame_drop_rate;
        rec.frac_high_speed_5g = r.frac_high_speed_5g;
        out.push_back(std::move(rec));
      }
    }
  }
  return out;
}

}  // namespace wheels::apps
