#include "analysis/performance.h"

#include <algorithm>

namespace wheels::analysis {

std::vector<double> tput_samples(std::span<const trip::KpiSample> samples,
                                 const PerfFilter& f) {
  std::vector<double> out;
  for (const auto& s : samples) {
    if (s.test == trip::TestType::Ping) continue;
    if (f.test && s.test != *f.test) continue;
    if (f.tech && (!s.connected || s.tech != *f.tech)) continue;
    if (f.server && s.server != *f.server) continue;
    if (f.tz && s.tz != *f.tz) continue;
    if (s.speed.value < f.min_mph || s.speed.value > f.max_mph) continue;
    if (f.connected_only && !s.connected) continue;
    out.push_back(s.tput_mbps);
  }
  return out;
}

std::vector<double> rtt_samples(std::span<const trip::RttSample> samples,
                                const PerfFilter& f) {
  std::vector<double> out;
  for (const auto& s : samples) {
    if (!s.success) continue;
    if (f.tech && (!s.connected || s.tech != *f.tech)) continue;
    if (f.server && s.server != *f.server) continue;
    if (f.tz && s.tz != *f.tz) continue;
    if (s.speed.value < f.min_mph || s.speed.value > f.max_mph) continue;
    if (f.connected_only && !s.connected) continue;
    out.push_back(s.rtt_ms);
  }
  return out;
}

int speed_bin(Mph v) {
  if (v.value < 20.0) return 0;
  if (v.value < 60.0) return 1;
  return 2;
}

const char* speed_bin_label(int bin) {
  switch (bin) {
    case 0: return "0-20 mph";
    case 1: return "20-60 mph";
    default: return "60+ mph";
  }
}

namespace {

std::vector<SpeedBinStats> summarize(
    const std::array<std::array<std::vector<double>, 3>, 5>& buckets) {
  std::vector<SpeedBinStats> out;
  for (std::size_t t = 0; t < 5; ++t) {
    for (int b = 0; b < 3; ++b) {
      const auto& v = buckets[t][static_cast<std::size_t>(b)];
      if (v.empty()) continue;
      SpeedBinStats s;
      s.tech = static_cast<radio::Tech>(t);
      s.bin = b;
      s.count = v.size();
      s.p10 = percentile(v, 10.0);
      s.median = percentile(v, 50.0);
      s.p90 = percentile(v, 90.0);
      s.max = *std::max_element(v.begin(), v.end());
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace

std::vector<SpeedBinStats> tput_by_speed_and_tech(
    std::span<const trip::KpiSample> samples, trip::TestType test) {
  std::array<std::array<std::vector<double>, 3>, 5> buckets;
  for (const auto& s : samples) {
    if (s.test != test || !s.connected) continue;
    buckets[static_cast<std::size_t>(s.tech)]
           [static_cast<std::size_t>(speed_bin(s.speed))]
               .push_back(s.tput_mbps);
  }
  return summarize(buckets);
}

std::vector<SpeedBinStats> rtt_by_speed_and_tech(
    std::span<const trip::RttSample> samples) {
  std::array<std::array<std::vector<double>, 3>, 5> buckets;
  for (const auto& s : samples) {
    if (!s.success || !s.connected) continue;
    buckets[static_cast<std::size_t>(s.tech)]
           [static_cast<std::size_t>(speed_bin(s.speed))]
               .push_back(s.rtt_ms);
  }
  return summarize(buckets);
}

}  // namespace wheels::analysis
