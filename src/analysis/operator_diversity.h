// Operator-diversity analysis (Fig. 6): pairwise throughput differences of
// concurrent samples and their HT/LT technology-bin decomposition.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "ran/operator_profile.h"
#include "trip/records.h"

namespace wheels::analysis {

// HT = high-throughput technology (5G mid-band or mmWave), LT = the rest.
enum class TechBin : std::uint8_t { HtHt, HtLt, LtHt, LtLt };

[[nodiscard]] constexpr std::string_view to_string(TechBin b) {
  switch (b) {
    case TechBin::HtHt: return "HT-HT";
    case TechBin::HtLt: return "HT-LT";
    case TechBin::LtHt: return "LT-HT";
    case TechBin::LtLt: return "LT-LT";
  }
  return "?";
}

struct PairedSample {
  double diff_mbps = 0.0;  // first operator minus second operator
  TechBin bin = TechBin::LtLt;
};

// Pair the 500 ms samples of two operators that were collected at the same
// instant of the same test (the campaign runs the phones in lockstep).
[[nodiscard]] std::vector<PairedSample> pair_samples(
    std::span<const trip::KpiSample> a, std::span<const trip::KpiSample> b,
    trip::TestType test);

struct PairAnalysis {
  std::array<double, 4> bin_fraction{};  // by TechBin
  std::array<std::vector<double>, 4> diffs_by_bin;
  std::vector<double> all_diffs;
  // Fraction of samples where the first operator wins.
  double first_wins = 0.0;
};

[[nodiscard]] PairAnalysis analyze_pair(std::span<const PairedSample> pairs);

}  // namespace wheels::analysis
