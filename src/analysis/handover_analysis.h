// Handover analysis (Fig. 11-12): frequency, duration, and throughput
// impact (during-HO drop dT1 and post-vs-pre change dT2).
#pragma once

#include <span>
#include <vector>

#include "radio/technology.h"
#include "trip/records.h"

namespace wheels::analysis {

// Fig. 11a: handovers per mile for each bulk test.
[[nodiscard]] std::vector<double> handovers_per_mile(
    std::span<const trip::TestSummary> tests, trip::TestType test);

// Fig. 11b: durations (ms) of handovers that occurred inside bulk tests of
// the given direction.
[[nodiscard]] std::vector<double> handover_durations(
    std::span<const trip::TestSummary> tests,
    std::span<const ran::HandoverRecord> handovers, trip::TestType test);

// One HO-impact measurement around a 500 ms window that contained >=1 HO.
struct HoImpact {
  double delta_t1 = 0.0;  // T3 - (T2+T4)/2  (during-HO drop)
  double delta_t2 = 0.0;  // (T4+T5)/2 - (T1+T2)/2  (post minus pre)
  radio::HandoverKind kind = radio::HandoverKind::FourToFour;
};

// Fig. 12: scan the 500 ms series of every test for HO windows with two
// clean windows on each side and compute dT1/dT2. HO kind is taken from
// the handover record(s) in that window (the first one).
[[nodiscard]] std::vector<HoImpact> handover_impacts(
    std::span<const trip::KpiSample> samples,
    std::span<const ran::HandoverRecord> handovers, trip::TestType test);

}  // namespace wheels::analysis
