// Longer-timescale analysis (Figs. 9-10, Table 3): per-test means and
// fluctuation, performance vs high-speed-5G time share, and the Ookla
// SpeedTest comparison.
#pragma once

#include <span>
#include <vector>

#include "trip/records.h"

namespace wheels::analysis {

// Per-test means (Mbps or ms) for one test type.
[[nodiscard]] std::vector<double> test_means(
    std::span<const trip::TestSummary> tests, trip::TestType test);

// Per-test stddev as percent of mean (the fluctuation metric of Fig. 9).
[[nodiscard]] std::vector<double> test_cv_percent(
    std::span<const trip::TestSummary> tests, trip::TestType test);

// Fig. 10: bucket per-test means by the test's high-speed-5G time share.
struct Hs5gBucket {
  double lo = 0.0, hi = 0.0;   // share range
  std::size_t count = 0;
  double median = 0.0;
  double p90 = 0.0;
};

[[nodiscard]] std::vector<Hs5gBucket> by_hs5g_share(
    std::span<const trip::TestSummary> tests, trip::TestType test,
    std::size_t buckets = 4);

// Table 3 reference: Ookla Speedtest medians for Q3 2022 (from the paper).
struct OoklaRow {
  const char* op;
  double dl_mbps;
  double ul_mbps;
  double rtt_ms;
};
[[nodiscard]] std::span<const OoklaRow> ookla_q3_2022();

}  // namespace wheels::analysis
