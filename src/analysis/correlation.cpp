#include "analysis/correlation.h"

#include <vector>

#include "core/stats.h"

namespace wheels::analysis {

KpiCorrelations correlate(std::span<const trip::KpiSample> samples,
                          trip::TestType test) {
  std::vector<double> tput, rsrp, mcs, ca, bler, speed, hos;
  for (const auto& s : samples) {
    if (s.test != test || !s.connected) continue;
    tput.push_back(s.tput_mbps);
    rsrp.push_back(s.rsrp_dbm);
    mcs.push_back(s.mcs);
    ca.push_back(s.num_cc);
    bler.push_back(s.bler);
    speed.push_back(s.speed.value);
    hos.push_back(static_cast<double>(s.handovers));
  }
  KpiCorrelations out;
  out.samples = tput.size();
  out.rsrp = pearson(tput, rsrp);
  out.mcs = pearson(tput, mcs);
  out.ca = pearson(tput, ca);
  out.bler = pearson(tput, bler);
  out.speed = pearson(tput, speed);
  out.handovers = pearson(tput, hos);
  return out;
}

}  // namespace wheels::analysis
