// Throughput / RTT distribution extraction (Figs. 3-5, 7-8).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/stats.h"
#include "net/server.h"
#include "radio/technology.h"
#include "trip/records.h"

namespace wheels::analysis {

struct PerfFilter {
  std::optional<trip::TestType> test;
  std::optional<radio::Tech> tech;
  std::optional<net::ServerKind> server;
  std::optional<TimeZone> tz;
  double min_mph = -1.0;
  double max_mph = 1e9;
  bool connected_only = false;
};

// 500 ms throughput samples matching the filter (Mbps).
[[nodiscard]] std::vector<double> tput_samples(
    std::span<const trip::KpiSample> samples, const PerfFilter& f);

// Individual successful echo RTTs matching the filter (ms).
[[nodiscard]] std::vector<double> rtt_samples(
    std::span<const trip::RttSample> samples, const PerfFilter& f);

// Speed-bin scatter summary for Figs. 7-8: per (tech, speed bin) count +
// quantiles.
struct SpeedBinStats {
  radio::Tech tech = radio::Tech::LTE;
  int bin = 0;  // 0: 0-20 mph, 1: 20-60, 2: 60+
  std::size_t count = 0;
  double p10 = 0.0, median = 0.0, p90 = 0.0, max = 0.0;
};

[[nodiscard]] int speed_bin(Mph v);
[[nodiscard]] const char* speed_bin_label(int bin);

[[nodiscard]] std::vector<SpeedBinStats> tput_by_speed_and_tech(
    std::span<const trip::KpiSample> samples, trip::TestType test);

[[nodiscard]] std::vector<SpeedBinStats> rtt_by_speed_and_tech(
    std::span<const trip::RttSample> samples);

}  // namespace wheels::analysis
