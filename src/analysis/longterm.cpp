#include "analysis/longterm.h"

#include <algorithm>
#include <array>

#include "core/stats.h"

namespace wheels::analysis {

std::vector<double> test_means(std::span<const trip::TestSummary> tests,
                               trip::TestType test) {
  std::vector<double> out;
  for (const auto& t : tests) {
    if (t.test == test && t.samples > 0) out.push_back(t.mean);
  }
  return out;
}

std::vector<double> test_cv_percent(std::span<const trip::TestSummary> tests,
                                    trip::TestType test) {
  std::vector<double> out;
  for (const auto& t : tests) {
    if (t.test == test && t.samples > 1 && t.mean > 0.0) {
      out.push_back(100.0 * t.stddev / t.mean);
    }
  }
  return out;
}

std::vector<Hs5gBucket> by_hs5g_share(
    std::span<const trip::TestSummary> tests, trip::TestType test,
    std::size_t buckets) {
  std::vector<std::vector<double>> vals(buckets);
  for (const auto& t : tests) {
    if (t.test != test || t.samples == 0) continue;
    auto b = static_cast<std::size_t>(t.frac_high_speed_5g *
                                      static_cast<double>(buckets));
    b = std::min(b, buckets - 1);
    vals[b].push_back(t.mean);
  }
  std::vector<Hs5gBucket> out;
  for (std::size_t b = 0; b < buckets; ++b) {
    Hs5gBucket bk;
    bk.lo = static_cast<double>(b) / static_cast<double>(buckets);
    bk.hi = static_cast<double>(b + 1) / static_cast<double>(buckets);
    bk.count = vals[b].size();
    if (!vals[b].empty()) {
      bk.median = percentile(vals[b], 50.0);
      bk.p90 = percentile(vals[b], 90.0);
    }
    out.push_back(bk);
  }
  return out;
}

std::span<const OoklaRow> ookla_q3_2022() {
  static constexpr std::array<OoklaRow, 3> rows = {{
      {"Verizon", 58.64, 8.30, 59.0},
      {"T-Mobile", 116.14, 10.91, 60.0},
      {"AT&T", 57.94, 7.55, 61.0},
  }};
  return rows;
}

}  // namespace wheels::analysis
