// KPI correlation analysis (Table 2): Pearson's r between 500 ms
// throughput and RSRP / MCS / CA / BLER / vehicle speed / handovers.
#pragma once

#include <span>

#include "trip/records.h"

namespace wheels::analysis {

struct KpiCorrelations {
  double rsrp = 0.0;
  double mcs = 0.0;
  double ca = 0.0;
  double bler = 0.0;
  double speed = 0.0;
  double handovers = 0.0;
  std::size_t samples = 0;
};

// Correlations over the connected 500 ms samples of one direction.
[[nodiscard]] KpiCorrelations correlate(
    std::span<const trip::KpiSample> samples, trip::TestType test);

}  // namespace wheels::analysis
