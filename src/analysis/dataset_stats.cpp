#include "analysis/dataset_stats.h"

namespace wheels::analysis {

DatasetStats dataset_stats(const trip::CampaignResult& res) {
  DatasetStats st;
  st.total_km = res.route_length.kilometers();
  st.days = res.days;
  for (const auto& log : res.logs) {
    const auto i = static_cast<std::size_t>(log.op);
    st.unique_cells[i] = log.unique_cells;
    // Table 1 counts the dedicated handover-logger phones, which ran for
    // the whole trip (the test phones' handovers overlap in time).
    st.handovers[i] = log.passive_handovers.size();
    st.runtime_min[i] = log.experiment_runtime.minutes();
    for (const auto& t : log.tests) {
      const double gb = t.bytes_transferred / 1e9;
      if (t.test == trip::TestType::DownlinkBulk) st.rx_gb += gb;
      if (t.test == trip::TestType::UplinkBulk) st.tx_gb += gb;
    }
  }
  return st;
}

}  // namespace wheels::analysis
