// Coverage analysis (Figs. 1-2): distance-weighted technology shares.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "radio/technology.h"
#include "trip/records.h"

namespace wheels::analysis {

// Share of driven distance per technology; index 5 = no service.
struct TechShares {
  std::array<double, 6> share{};  // fractions summing to ~1
  double total_miles = 0.0;

  [[nodiscard]] double tech(radio::Tech t) const {
    return share[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] double no_service() const { return share[5]; }
  [[nodiscard]] double total_5g() const {
    return tech(radio::Tech::NR_LOW) + tech(radio::Tech::NR_MID) +
           tech(radio::Tech::NR_MMWAVE);
  }
  [[nodiscard]] double high_speed_5g() const {
    return tech(radio::Tech::NR_MID) + tech(radio::Tech::NR_MMWAVE);
  }
};

// Filter predicate support: compute shares over any sample subset.
// Samples are weighted by the distance they represent (speed x interval).

[[nodiscard]] TechShares coverage_from_passive(
    std::span<const trip::PassiveSample> samples);

struct KpiFilter {
  bool only_downlink = false;
  bool only_uplink = false;
  int tz = -1;           // -1 = all, else TimeZone value
  double min_mph = -1.0;
  double max_mph = 1e9;
};

[[nodiscard]] TechShares coverage_from_kpi(
    std::span<const trip::KpiSample> samples, const KpiFilter& f = KpiFilter{});

// Fig. 1: dominant technology per route bin, comparing the passive
// handover-logger view with the active XCAL view.
struct RouteBin {
  double start_km = 0.0;
  radio::Tech dominant = radio::Tech::LTE;
  bool any_samples = false;
  bool connected = false;
};

[[nodiscard]] std::vector<RouteBin> route_coverage_map_passive(
    std::span<const trip::PassiveSample> samples, double bin_km,
    double route_km);
[[nodiscard]] std::vector<RouteBin> route_coverage_map_active(
    std::span<const trip::KpiSample> samples, double bin_km,
    double route_km);

// Fraction of route bins where the two maps disagree on 4G-vs-5G.
[[nodiscard]] double coverage_disagreement(
    std::span<const RouteBin> passive, std::span<const RouteBin> active);

}  // namespace wheels::analysis
