#include "analysis/operator_diversity.h"

#include <algorithm>
#include <cmath>

namespace wheels::analysis {
namespace {

bool is_ht(const trip::KpiSample& s) {
  return s.connected && radio::is_high_speed(s.tech);
}

}  // namespace

std::vector<PairedSample> pair_samples(std::span<const trip::KpiSample> a,
                                       std::span<const trip::KpiSample> b,
                                       trip::TestType test) {
  // Both streams are time-ordered; walk them in lockstep matching on
  // (test_id, timestamp) within half a window.
  std::vector<PairedSample> out;
  std::size_t j = 0;
  for (const auto& sa : a) {
    if (sa.test != test) continue;
    while (j < b.size() &&
           (b[j].test != test ||
            b[j].time.ms_since_epoch < sa.time.ms_since_epoch - 250.0)) {
      ++j;
    }
    if (j >= b.size()) break;
    const auto& sb = b[j];
    if (std::abs(sb.time.ms_since_epoch - sa.time.ms_since_epoch) > 250.0) {
      continue;
    }
    PairedSample p;
    p.diff_mbps = sa.tput_mbps - sb.tput_mbps;
    const bool ha = is_ht(sa), hb = is_ht(sb);
    p.bin = ha ? (hb ? TechBin::HtHt : TechBin::HtLt)
               : (hb ? TechBin::LtHt : TechBin::LtLt);
    out.push_back(p);
  }
  return out;
}

PairAnalysis analyze_pair(std::span<const PairedSample> pairs) {
  PairAnalysis out;
  if (pairs.empty()) return out;
  std::size_t wins = 0;
  for (const auto& p : pairs) {
    const auto b = static_cast<std::size_t>(p.bin);
    out.bin_fraction[b] += 1.0;
    out.diffs_by_bin[b].push_back(p.diff_mbps);
    out.all_diffs.push_back(p.diff_mbps);
    if (p.diff_mbps > 0.0) ++wins;
  }
  for (double& f : out.bin_fraction) {
    f /= static_cast<double>(pairs.size());
  }
  out.first_wins = static_cast<double>(wins) /
                   static_cast<double>(pairs.size());
  return out;
}

}  // namespace wheels::analysis
