#include "analysis/handover_analysis.h"

#include <algorithm>

namespace wheels::analysis {

std::vector<double> handovers_per_mile(
    std::span<const trip::TestSummary> tests, trip::TestType test) {
  std::vector<double> out;
  for (const auto& t : tests) {
    if (t.test != test) continue;
    const double miles = t.distance.miles();
    if (miles < 0.05) continue;  // standing still: per-mile rate undefined
    out.push_back(static_cast<double>(t.handovers) / miles);
  }
  return out;
}

std::vector<double> handover_durations(
    std::span<const trip::TestSummary> tests,
    std::span<const ran::HandoverRecord> handovers, trip::TestType test) {
  std::vector<double> out;
  // Handover records are time-ordered (appended during the run), as are
  // tests; a two-pointer sweep collects the records inside matching tests.
  std::size_t h = 0;
  for (const auto& t : tests) {
    const double t0 = t.start.ms_since_epoch;
    const double t1 = t0 + t.duration.value;
    while (h < handovers.size() &&
           handovers[h].time.ms_since_epoch < t0) {
      ++h;
    }
    std::size_t k = h;
    while (k < handovers.size() && handovers[k].time.ms_since_epoch < t1) {
      if (t.test == test) out.push_back(handovers[k].duration.value);
      ++k;
    }
  }
  return out;
}

std::vector<HoImpact> handover_impacts(
    std::span<const trip::KpiSample> samples,
    std::span<const ran::HandoverRecord> handovers, trip::TestType test) {
  std::vector<HoImpact> out;
  // Index handover records by time for kind lookup.
  std::size_t h_lo = 0;

  for (std::size_t i = 0; i + 2 < samples.size(); ++i) {
    if (i < 2) continue;
    const auto& s = samples[i];
    if (s.test != test || s.handovers == 0) continue;
    // Require the +/-2 window neighbourhood to be within the same test and
    // itself handover-free (a clean T1,T2,[T3],T4,T5 quintuple).
    bool clean = true;
    for (std::size_t j = i - 2; j <= i + 2; ++j) {
      if (samples[j].test_id != s.test_id) {
        clean = false;
        break;
      }
      if (j != i && samples[j].handovers != 0) {
        clean = false;
        break;
      }
    }
    if (!clean) continue;

    const double t1 = samples[i - 2].tput_mbps;
    const double t2 = samples[i - 1].tput_mbps;
    const double t3 = samples[i].tput_mbps;
    const double t4 = samples[i + 1].tput_mbps;
    const double t5 = samples[i + 2].tput_mbps;

    HoImpact imp;
    imp.delta_t1 = t3 - (t2 + t4) / 2.0;
    imp.delta_t2 = (t4 + t5) / 2.0 - (t1 + t2) / 2.0;

    // Find the handover record inside this window (window end = s.time).
    const double w_end = s.time.ms_since_epoch;
    const double w_start = w_end - 500.0;
    while (h_lo < handovers.size() &&
           handovers[h_lo].time.ms_since_epoch < w_start) {
      ++h_lo;
    }
    for (std::size_t k = h_lo; k < handovers.size(); ++k) {
      const double t = handovers[k].time.ms_since_epoch;
      if (t >= w_end) break;
      imp.kind = handovers[k].kind();
      break;
    }
    out.push_back(imp);
  }
  return out;
}

}  // namespace wheels::analysis
