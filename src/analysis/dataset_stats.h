// Dataset statistics (Table 1).
#pragma once

#include "trip/campaign.h"

namespace wheels::analysis {

struct DatasetStats {
  double total_km = 0.0;
  int days = 0;
  int states = 14;          // route metadata (constant of the itinerary)
  int major_cities = 10;
  int timezones = 4;
  // Per operator, indexed by OperatorId.
  std::array<std::size_t, 3> unique_cells{};
  std::array<std::size_t, 3> handovers{};
  std::array<double, 3> runtime_min{};
  double rx_gb = 0.0;  // downlink bytes over all operators
  double tx_gb = 0.0;
};

[[nodiscard]] DatasetStats dataset_stats(const trip::CampaignResult& res);

}  // namespace wheels::analysis
