#include "analysis/coverage.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace wheels::analysis {
namespace {

constexpr double kSampleIntervalPassiveS = 1.0;  // passive logs at 1 Hz
constexpr double kSampleIntervalKpiS = 0.5;      // XCAL windows are 500 ms

void normalize(TechShares& ts, double total_m) {
  double sum = 0.0;
  for (double s : ts.share) sum += s;
  if (sum > 0.0) {
    for (double& s : ts.share) s /= sum;
  }
  ts.total_miles = total_m / 1609.344;
}

template <typename Sample>
std::size_t tech_index(const Sample& s) {
  return s.connected ? static_cast<std::size_t>(s.tech) : 5u;
}

}  // namespace

TechShares coverage_from_passive(
    std::span<const trip::PassiveSample> samples) {
  TechShares ts;
  double total_m = 0.0;
  for (const auto& s : samples) {
    const double d = s.speed.meters_per_second() * kSampleIntervalPassiveS;
    ts.share[tech_index(s)] += d;
    total_m += d;
  }
  normalize(ts, total_m);
  return ts;
}

TechShares coverage_from_kpi(std::span<const trip::KpiSample> samples,
                             const KpiFilter& f) {
  TechShares ts;
  double total_m = 0.0;
  for (const auto& s : samples) {
    if (f.only_downlink && s.test != trip::TestType::DownlinkBulk) continue;
    if (f.only_uplink && s.test != trip::TestType::UplinkBulk) continue;
    if (f.tz >= 0 && static_cast<int>(s.tz) != f.tz) continue;
    if (s.speed.value < f.min_mph || s.speed.value > f.max_mph) continue;
    const double d = s.speed.meters_per_second() * kSampleIntervalKpiS;
    ts.share[tech_index(s)] += d;
    total_m += d;
  }
  normalize(ts, total_m);
  return ts;
}

namespace {

template <typename Sample>
std::vector<RouteBin> route_map(std::span<const Sample> samples,
                                double bin_km, double route_km) {
  const auto nbins =
      static_cast<std::size_t>(std::ceil(route_km / bin_km));
  // Count sample-time per tech per bin.
  std::vector<std::array<double, 6>> counts(nbins);
  for (const auto& s : samples) {
    auto b = static_cast<std::size_t>(s.position.value / 1000.0 / bin_km);
    if (b >= nbins) b = nbins - 1;
    counts[b][tech_index(s)] += 1.0;
  }
  std::vector<RouteBin> bins(nbins);
  for (std::size_t b = 0; b < nbins; ++b) {
    bins[b].start_km = static_cast<double>(b) * bin_km;
    const auto& c = counts[b];
    double total = 0.0;
    for (double v : c) total += v;
    bins[b].any_samples = total > 0.0;
    if (!bins[b].any_samples) continue;
    const auto best = std::max_element(c.begin(), c.begin() + 5);
    bins[b].connected = *best > c[5];
    bins[b].dominant =
        static_cast<radio::Tech>(best - c.begin());
  }
  return bins;
}

}  // namespace

std::vector<RouteBin> route_coverage_map_passive(
    std::span<const trip::PassiveSample> samples, double bin_km,
    double route_km) {
  return route_map(samples, bin_km, route_km);
}

std::vector<RouteBin> route_coverage_map_active(
    std::span<const trip::KpiSample> samples, double bin_km,
    double route_km) {
  return route_map(samples, bin_km, route_km);
}

double coverage_disagreement(std::span<const RouteBin> passive,
                             std::span<const RouteBin> active) {
  const std::size_t n = std::min(passive.size(), active.size());
  std::size_t both = 0, differ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!passive[i].any_samples || !active[i].any_samples) continue;
    ++both;
    const bool p5 = passive[i].connected && radio::is_5g(passive[i].dominant);
    const bool a5 = active[i].connected && radio::is_5g(active[i].dominant);
    if (p5 != a5) ++differ;
  }
  return both ? static_cast<double>(differ) / static_cast<double>(both) : 0.0;
}

}  // namespace wheels::analysis
