// Deterministic record/replay of the drive trajectory.
//
// The campaign's round-robin test schedule is a pure function of the
// config, and the vehicle's motion is driven by the trip's own forked Rng
// stream -- independent of every per-operator radio/transport process. The
// trajectory pass therefore executes the schedule against TripSimulator
// exactly once (single-threaded, cheap: no UEs, no TCP) and records one
// TrajectoryPoint per simulation slot, grouped into schedule segments.
// Each operator's PhoneSet then replays the recorded points on its own
// worker thread with bit-identical results to the old interleaved loop,
// because every stochastic process a phone touches forks from that
// operator's own streams (the same record-once / replay-concurrently idea
// as the Mahimahi-style network emulators, applied to the drive).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/sim_time.h"
#include "core/units.h"
#include "radio/pathloss.h"
#include "ran/corridor.h"
#include "trip/trip_simulator.h"

namespace wheels::trip {

struct CampaignConfig;  // trip/campaign.h (which includes this header)

// What the campaign was doing during a segment of the drive. Bulk and RTT
// segments advance at CampaignConfig::slot; gaps and fast-forwarded cycles
// advance at the coarse idle step.
enum class SegmentKind : std::uint8_t {
  BulkDl,
  BulkUl,
  Rtt,
  Gap,
  FastForward,
};

[[nodiscard]] constexpr std::string_view to_string(SegmentKind k) {
  switch (k) {
    case SegmentKind::BulkDl: return "bulk-dl";
    case SegmentKind::BulkUl: return "bulk-ul";
    case SegmentKind::Rtt: return "rtt";
    case SegmentKind::Gap: return "gap";
    case SegmentKind::FastForward: return "fast-forward";
  }
  return "?";
}

// One recorded simulation slot: the TripPoint TripSimulator produced plus
// the corridor context at that position, pre-resolved so replay workers
// never have to agree on lookup order.
struct TrajectoryPoint {
  SimTime time;
  Meters position{0.0};
  Mph speed{0.0};
  int day = 1;
  TimeZone tz = TimeZone::Pacific;
  radio::Environment env = radio::Environment::Rural;

  friend bool operator==(const TrajectoryPoint&,
                         const TrajectoryPoint&) = default;
};

// One schedule step: `[begin, end)` indexes Trajectory::points; `start` is
// the trip state just before the segment's first advance (the sequential
// code sampled it for server selection and test summaries). A segment can
// be empty when the drive ended mid-cycle.
struct TrajectorySegment {
  SegmentKind kind = SegmentKind::Gap;
  int test_id = -1;  // -1 for gaps and fast-forwarded cycles
  Millis slot{0.0};  // dt between consecutive points of this segment
  TrajectoryPoint start;
  std::size_t begin = 0;
  std::size_t end = 0;

  friend bool operator==(const TrajectorySegment&,
                         const TrajectorySegment&) = default;
};

struct Trajectory {
  std::vector<TrajectorySegment> segments;
  std::vector<TrajectoryPoint> points;
  Millis total_drive_time{0.0};
  int days = 0;

  friend bool operator==(const Trajectory&, const Trajectory&) = default;
};

// The coarse step used while idling between tests (gaps, fast-forward).
inline constexpr Millis kIdleStep{100.0};

// Execute the full test-cycle schedule of `cfg` against `trip`, recording
// every slot. Consumes the trip (drives it to the end of the route).
[[nodiscard]] Trajectory record_trajectory(TripSimulator& trip,
                                           const ran::Corridor& corridor,
                                           const CampaignConfig& cfg);

}  // namespace wheels::trip
