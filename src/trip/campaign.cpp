#include "trip/campaign.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "core/stats.h"
#include "core/thread_pool.h"
#include "net/ping.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "radio/phy_rate.h"
#include "ran/scenario_profiles.h"
#include "trip/replay_kernel.h"

namespace wheels::trip {
namespace {

using radio::Direction;
using radio::Tech;
using ran::OperatorId;

// Phase durations are wall-clock and scheduling-dependent, so every one of
// these is Det::WallClock; determinism tests mask them. The counters
// accumulate across campaigns in the process (bench warm-up + measured
// runs), which is exactly what the bench metrics object wants.
struct CampaignMetrics {
  obs::Counter& record_us;
  obs::Counter& replay_us;
  obs::Counter& baseline_us;
};

CampaignMetrics& campaign_metrics() {
  // wheels-lint: allow(static-local)
  static CampaignMetrics m{
      obs::Registry::global().counter("campaign.record_us",
                                      obs::Det::WallClock),
      obs::Registry::global().counter("campaign.replay_us",
                                      obs::Det::WallClock),
      obs::Registry::global().counter("campaign.baseline_us",
                                      obs::Det::WallClock),
  };
  return m;
}

std::uint64_t elapsed_us(std::int64_t start_ns) {
  const std::int64_t d = obs::now_ns() - start_ns;
  return d > 0 ? static_cast<std::uint64_t>(d) / 1000 : 0;
}

std::vector<net::EdgeSite> edge_sites_from(const Route& route) {
  std::vector<net::EdgeSite> sites;
  for (const auto& c : route.cities()) {
    if (c.has_edge_server) sites.push_back({c.name, c.route_pos});
  }
  return sites;
}

// Validates before any member that derives from the spec is built (the
// route is constructed in the init list, ahead of the ctor body).
CampaignConfig validated(CampaignConfig cfg) {
  scenario::validate(cfg.spec);
  return cfg;
}

}  // namespace

CampaignConfig CampaignConfig::from_scenario(
    const scenario::ScenarioSpec& spec, int cycle_stride) {
  scenario::validate(spec);
  CampaignConfig cfg;
  cfg.seed = spec.seed;
  cfg.slot = Millis{spec.timing.slot_ms};
  cfg.tput_test_duration = Millis{spec.timing.tput_test_ms};
  cfg.rtt_test_duration = Millis{spec.timing.rtt_test_ms};
  cfg.gap = Millis{spec.timing.gap_ms};
  cfg.ping_interval = Millis{spec.timing.ping_interval_ms};
  cfg.sample_window = Millis{spec.timing.sample_window_ms};
  cfg.cycle_stride = cycle_stride;
  cfg.drive.hours_per_day = spec.drive.hours_per_day;
  cfg.drive.start_hour_local = spec.drive.start_hour_local;
  cfg.drive.speed = SpeedTargets{spec.speed.urban_mph, spec.speed.suburban_mph,
                                 spec.speed.rural_mph, spec.speed.max_mph};
  cfg.spec = spec;
  return cfg;
}

struct Campaign::PhoneSet {
  OperatorId op;
  ran::UeSimulator test_ue;
  ran::UeSimulator passive_ue;
  net::CubicFlow flow;
  Rng rng;
  Millis passive_step_accum{0.0};
  Millis passive_log_accum{0.0};
  ReplayScratch scratch;  // batch + sample buffers, reused per segment

  PhoneSet(OperatorId op_, const ran::Corridor& corridor,
           const ran::Deployment& dep, const ran::OperatorProfile& profile,
           const radio::BandPlan& plan, ran::LoadRegime regime, Rng r)
      : op(op_),
        test_ue(corridor, dep, profile, r.fork("test"),
                ran::TrafficProfile::Idle, plan, regime),
        passive_ue(corridor, dep, profile, r.fork("passive"),
                   ran::TrafficProfile::Idle, plan, regime),
        flow(r.fork("tcp")),
        rng(r.fork("misc")) {}
};

Campaign::Campaign(CampaignConfig cfg)
    : cfg_(validated(std::move(cfg))),
      rng_(cfg_.seed),
      route_(Route::from_spec(cfg_.spec.route)),
      corridor_(build_corridor(route_, rng_.fork("corridor"))),
      regime_(ran::regime_from_spec(cfg_.spec.load_regime)),
      servers_(edge_sites_from(route_)),
      trip_(route_, corridor_, rng_.fork("trip"), cfg_.drive),
      jobs_(resolve_jobs()),
      use_kernel_(replay_kernel_enabled_from_env()) {
  // Roster slot i realizes operators[i] (validate() pins the roster to
  // exactly 3). Fork labels are the roster names: paper-default names the
  // real operators, so the streams match the pre-scenario engine exactly.
  for (OperatorId op : ran::kAllOperators) {
    const auto i = static_cast<std::size_t>(op);
    const scenario::OperatorSpec& ospec = cfg_.spec.operators[i];
    profiles_[i] = ran::profile_from_spec(ospec, op);
    deployments_[i] = std::make_unique<ran::Deployment>(
        ran::Deployment::generate(corridor_, profiles_[i],
                                  // wheels-rng: dynamic(one deployment stream per operator name)
                                  rng_.fork(ospec.name)));
    phones_.push_back(std::make_unique<PhoneSet>(
        op, corridor_, *deployments_[i], profiles_[i], cfg_.spec.bands,
        // wheels-rng: dynamic(per-operator phone-set stream)
        regime_, rng_.fork(ospec.name).fork("ue")));
    result_.logs[i].op = op;
  }
}

Campaign::~Campaign() = default;

const ran::Deployment& Campaign::deployment(OperatorId op) const {
  return *deployments_[static_cast<std::size_t>(op)];
}

void Campaign::set_jobs(int jobs) { jobs_ = resolve_jobs(jobs); }

const ran::SegmentBatch* Campaign::maybe_batch(PhoneSet& ph,
                                               const Trajectory& traj,
                                               const TrajectorySegment& seg) {
  if (!use_kernel_ || seg.end <= seg.begin) return nullptr;
  const auto i = static_cast<std::size_t>(ph.op);
  prepare_segment_batch(traj, seg, *deployments_[i], profiles_[i],
                        ph.scratch.batch);
  ph.test_ue.begin_segment(ph.scratch.batch);
  return &ph.scratch.batch;
}

void Campaign::step_passive(PhoneSet& ph, const TrajectoryPoint& pt, Millis dt,
                            const ran::SegmentBatch* batch, std::size_t row) {
  // The passive phone samples coarsely (its ping cadence is 200 ms) and
  // logs a technology record every second.
  ph.passive_step_accum += dt;
  ph.passive_log_accum += dt;
  if (ph.passive_step_accum.value >= 200.0) {
    const auto link =
        batch != nullptr
            ? ph.passive_ue.step(pt.time, ph.passive_step_accum, *batch, row)
            : ph.passive_ue.step(pt.time, pt.position, pt.speed,
                                 ph.passive_step_accum);
    ph.passive_step_accum = Millis{0.0};
    if (ph.passive_log_accum.value >= 1'000.0) {
      ph.passive_log_accum = Millis{0.0};
      PassiveSample ps;
      ps.time = pt.time;
      ps.op = ph.op;
      ps.position = pt.position;
      ps.speed = pt.speed;
      ps.tz = pt.tz;
      ps.connected = link.connected;
      ps.tech = link.tech;
      ps.cell = link.cell;
      result_.logs[static_cast<std::size_t>(ph.op)].passive.push_back(ps);
    }
  }
}

void Campaign::replay_bulk(PhoneSet& ph, const Trajectory& traj,
                           const TrajectorySegment& seg, TestType type) {
  const Direction dir = type == TestType::DownlinkBulk
                            ? Direction::Downlink
                            : Direction::Uplink;
  const auto traffic = type == TestType::DownlinkBulk
                           ? ran::TrafficProfile::BackloggedDl
                           : ran::TrafficProfile::BackloggedUl;

  struct WindowAccum {
    double rsrp = 0.0, mcs = 0.0, bler = 0.0, cc = 0.0;
    double bytes = 0.0;
    int slots = 0, connected_slots = 0;
    std::array<int, 5> tech_slots{};
  };

  auto& log = result_.logs[static_cast<std::size_t>(ph.op)];
  ph.test_ue.set_traffic(traffic);
  ph.flow.restart();
  const auto server = servers_.select(ph.op, seg.start.position, seg.start.tz);
  const std::size_t ho_base = ph.test_ue.handovers().size();
  std::size_t ho_window_base = ho_base;
  // Scratch reuse: one 500 ms window per ~25 slots, so seg.end - seg.begin
  // bounds the sample count; no per-segment reallocation once warm.
  std::vector<double>& window_tputs = ph.scratch.window_tputs;
  window_tputs.clear();
  window_tputs.reserve(seg.end - seg.begin);
  const ran::SegmentBatch* batch = maybe_batch(ph, traj, seg);
  WindowAccum w;
  int hs5g_slots = 0;
  int total_slots = 0;
  double total_bytes = 0.0;
  Millis window_elapsed{0.0};

  const auto flush_window = [&](const TrajectoryPoint& pt) {
    KpiSample s;
    s.time = pt.time;
    s.test_id = seg.test_id;
    s.test = type;
    s.op = ph.op;
    s.position = pt.position;
    s.speed = pt.speed;
    s.tz = pt.tz;
    s.env = pt.env;
    s.connected = w.connected_slots > 0;
    if (s.connected) {
      const double n = w.connected_slots;
      s.rsrp_dbm = w.rsrp / n;
      s.mcs = w.mcs / n;
      s.bler = w.bler / n;
      s.num_cc = w.cc / n;
      const auto it =
          std::max_element(w.tech_slots.begin(), w.tech_slots.end());
      s.tech = static_cast<Tech>(it - w.tech_slots.begin());
    }
    s.tput_mbps = w.bytes * 8.0 / window_elapsed.value / 1e3;
    const auto& hos = ph.test_ue.handovers();
    s.handovers = static_cast<int>(hos.size() - ho_window_base);
    ho_window_base = hos.size();
    s.server = server.kind;
    log.kpi.push_back(s);
    window_tputs.push_back(s.tput_mbps);
    w = WindowAccum{};
    window_elapsed = Millis{0.0};
  };

  for (std::size_t j = seg.begin; j < seg.end; ++j) {
    const TrajectoryPoint& pt = traj.points[j];
    window_elapsed += seg.slot;
    step_passive(ph, pt, seg.slot, batch, j - seg.begin);

    const auto link =
        batch != nullptr
            ? ph.test_ue.step(pt.time, seg.slot, *batch, j - seg.begin)
            : ph.test_ue.step(pt.time, pt.position, pt.speed, seg.slot);
    const Millis base_rtt =
        link.air_latency * 2.0 + server.one_way_delay * 2.0;
    const double bytes = ph.flow.step(seg.slot, link.phy_rate(dir), base_rtt);
    ++w.slots;
    ++total_slots;
    if (link.connected) {
      ++w.connected_slots;
      w.rsrp += link.rsrp.value;
      w.mcs += dir == Direction::Downlink ? link.mcs_dl : link.mcs_ul;
      w.bler += dir == Direction::Downlink ? link.bler_dl : link.bler_ul;
      w.cc += dir == Direction::Downlink ? link.num_cc_dl : link.num_cc_ul;
      ++w.tech_slots[static_cast<std::size_t>(link.tech)];
      if (radio::is_high_speed(link.tech)) ++hs5g_slots;
    }
    w.bytes += bytes;
    total_bytes += bytes;

    if (window_elapsed.value >= cfg_.sample_window.value) {
      flush_window(pt);
    }
  }
  // A test cut short (end of route, odd durations) leaves a partial window;
  // XCAL logs it like any other period, so flush the remainder too.
  if (w.slots > 0 && window_elapsed.value > 0.0) {
    flush_window(traj.points[seg.end - 1]);
  }

  if (window_tputs.empty()) return;
  const TrajectoryPoint& end_pt =
      seg.end > seg.begin ? traj.points[seg.end - 1] : seg.start;
  RunningStats rs;
  for (double v : window_tputs) rs.add(v);
  TestSummary sum;
  sum.test_id = seg.test_id;
  sum.test = type;
  sum.op = ph.op;
  sum.start = seg.start.time;
  sum.duration =
      Millis{static_cast<double>(seg.end - seg.begin) * seg.slot.value};
  sum.start_position = seg.start.position;
  sum.distance = end_pt.position - seg.start.position;
  sum.tz = seg.start.tz;
  sum.server = server.kind;
  sum.mean = rs.mean();
  sum.stddev = rs.stddev();
  sum.samples = static_cast<int>(rs.count());
  sum.handovers = static_cast<int>(ph.test_ue.handovers().size() - ho_base);
  sum.frac_high_speed_5g =
      total_slots ? static_cast<double>(hs5g_slots) / total_slots : 0.0;
  sum.bytes_transferred = total_bytes;
  log.tests.push_back(sum);
}

void Campaign::replay_rtt(PhoneSet& ph, const Trajectory& traj,
                          const TrajectorySegment& seg) {
  auto& log = result_.logs[static_cast<std::size_t>(ph.op)];
  ph.test_ue.set_traffic(ran::TrafficProfile::Idle);
  const auto server = servers_.select(ph.op, seg.start.position, seg.start.tz);
  const std::size_t ho_base = ph.test_ue.handovers().size();
  Millis since_ping{1e9};
  std::vector<double>& rtts = ph.scratch.rtts;
  rtts.clear();
  rtts.reserve(seg.end - seg.begin);
  const ran::SegmentBatch* batch = maybe_batch(ph, traj, seg);
  int hs5g_slots = 0;
  int total_slots = 0;

  for (std::size_t j = seg.begin; j < seg.end; ++j) {
    const TrajectoryPoint& pt = traj.points[j];
    step_passive(ph, pt, seg.slot, batch, j - seg.begin);

    const auto link =
        batch != nullptr
            ? ph.test_ue.step(pt.time, seg.slot, *batch, j - seg.begin)
            : ph.test_ue.step(pt.time, pt.position, pt.speed, seg.slot);
    ++total_slots;
    if (link.connected && radio::is_high_speed(link.tech)) ++hs5g_slots;
    since_ping += seg.slot;
    if (since_ping.value >= cfg_.ping_interval.value) {
      since_ping = Millis{0.0};
      const auto rtt = net::ping_rtt(link, server.one_way_delay, ph.rng);
      RttSample s;
      s.time = pt.time;
      s.test_id = seg.test_id;
      s.op = ph.op;
      s.position = pt.position;
      s.speed = pt.speed;
      s.tz = pt.tz;
      s.success = rtt.has_value();
      s.rtt_ms = rtt ? rtt->value : 0.0;
      s.connected = link.connected;
      s.tech = link.tech;
      s.server = server.kind;
      log.rtt.push_back(s);
      if (rtt) rtts.push_back(rtt->value);
    }
  }

  if (rtts.empty()) return;
  const TrajectoryPoint& end_pt =
      seg.end > seg.begin ? traj.points[seg.end - 1] : seg.start;
  RunningStats rs;
  for (double v : rtts) rs.add(v);
  TestSummary sum;
  sum.test_id = seg.test_id;
  sum.test = TestType::Ping;
  sum.op = ph.op;
  sum.start = seg.start.time;
  sum.duration =
      Millis{static_cast<double>(seg.end - seg.begin) * seg.slot.value};
  sum.start_position = seg.start.position;
  sum.distance = end_pt.position - seg.start.position;
  sum.tz = seg.start.tz;
  sum.server = server.kind;
  sum.mean = rs.mean();
  sum.stddev = rs.stddev();
  sum.samples = static_cast<int>(rs.count());
  sum.handovers = static_cast<int>(ph.test_ue.handovers().size() - ho_base);
  sum.frac_high_speed_5g =
      total_slots ? static_cast<double>(hs5g_slots) / total_slots : 0.0;
  log.tests.push_back(sum);
}

void Campaign::replay_idle(PhoneSet& ph, const Trajectory& traj,
                           const TrajectorySegment& seg) {
  ph.test_ue.set_traffic(ran::TrafficProfile::Idle);
  const ran::SegmentBatch* batch = maybe_batch(ph, traj, seg);
  for (std::size_t j = seg.begin; j < seg.end; ++j) {
    const TrajectoryPoint& pt = traj.points[j];
    step_passive(ph, pt, seg.slot, batch, j - seg.begin);
    if (batch != nullptr) {
      ph.test_ue.step(pt.time, seg.slot, *batch, j - seg.begin);
    } else {
      ph.test_ue.step(pt.time, pt.position, pt.speed, seg.slot);
    }
  }
}

void Campaign::replay_operator(PhoneSet& ph, const Trajectory& traj) {
  for (const auto& seg : traj.segments) {
    switch (seg.kind) {
      case SegmentKind::BulkDl:
        replay_bulk(ph, traj, seg, TestType::DownlinkBulk);
        break;
      case SegmentKind::BulkUl:
        replay_bulk(ph, traj, seg, TestType::UplinkBulk);
        break;
      case SegmentKind::Rtt:
        replay_rtt(ph, traj, seg);
        break;
      case SegmentKind::Gap:
      case SegmentKind::FastForward:
        replay_idle(ph, traj, seg);
        break;
    }
  }
}

const CampaignResult& Campaign::run() {
  const std::lock_guard<std::mutex> lock(run_mu_);
  if (ran_) return result_;

  // Phase 1 (sequential, cheap): drive the route once, recording the
  // schedule. Phase 2 (parallel): each operator replays the recording on
  // its own worker, touching only its own RNG streams and logs slot.
  const std::int64_t record_start = obs::now_ns();
  const Trajectory traj = [&] {
    const obs::Span span("campaign.record");
    return record_trajectory(trip_, corridor_, cfg_);
  }();
  campaign_metrics().record_us.add(elapsed_us(record_start));

  const std::int64_t replay_start = obs::now_ns();
  parallel_for_each(jobs_, phones_.size(), [&](std::size_t i) {
    std::string span_name = "campaign.replay.";
    span_name += cfg_.spec.operators[i].name;
    const obs::Span span(span_name);
    replay_operator(*phones_[i], traj);
  });
  campaign_metrics().replay_us.add(elapsed_us(replay_start));

  for (auto& ph : phones_) {
    const auto i = static_cast<std::size_t>(ph->op);
    auto& log = result_.logs[i];
    log.test_handovers = ph->test_ue.handovers();
    log.passive_handovers = ph->passive_ue.handovers();
    // Unique cells across both phones of this operator.
    std::vector<ran::CellId> cells = ph->test_ue.seen_cells();
    const auto& pc = ph->passive_ue.seen_cells();
    cells.insert(cells.end(), pc.begin(), pc.end());
    std::sort(cells.begin(), cells.end());
    cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
    log.unique_cells = cells.size();
    log.experiment_runtime = traj.total_drive_time;
  }
  result_.route_length = route_.length();
  result_.days = traj.days;
  result_.drive_time = traj.total_drive_time;
  ran_ = true;
  return result_;
}

StaticBaseline Campaign::run_static_baseline(OperatorId op) {
  const std::int64_t baseline_start = obs::now_ns();
  const std::string& op_name =
      cfg_.spec.operators[static_cast<std::size_t>(op)].name;
  std::string baseline_span_name = "campaign.baseline.";
  baseline_span_name += op_name;
  const obs::Span baseline_span(baseline_span_name);

  StaticBaseline out;
  out.op = op;
  const auto& dep = deployment(op);
  const auto& profile = profiles_[static_cast<std::size_t>(op)];
  // wheels-rng: dynamic(per-operator static-baseline stream)
  const Rng base = rng_.fork("static").fork(op_name);

  struct CityRun {
    bool tested = false;
    std::vector<double> dl, ul, rtt;
  };
  const auto& cities = route_.cities();
  std::vector<CityRun> runs(cities.size());

  parallel_for_each(jobs_, cities.size(), [&](std::size_t ci) {
    const auto& city = cities[ci];
    std::string city_span_name = baseline_span_name;
    city_span_name += '.';
    city_span_name += city.name;
    const obs::Span city_span(city_span_name);
    // Find the best high-speed-5G site near the city center: the nearest
    // mmWave cell within the urban core, else the nearest mid-band one.
    const ran::Cell* site = nullptr;
    for (Tech tech : {Tech::NR_MMWAVE, Tech::NR_MID}) {
      double best_d = 22'000.0;  // urban-core radius
      for (const auto& c : dep.cells(tech)) {
        const double d = std::abs(c.route_pos.value - city.route_pos.value);
        if (d < best_d) {
          best_d = d;
          site = &c;
        }
      }
      if (site) break;  // prefer mmWave; fall back to mid-band
    }
    if (!site) return;  // operator-city combo skipped, like the study
    CityRun& cr = runs[ci];
    cr.tested = true;

    const Meters pos = site->route_pos;  // standing right by the site
    CivilTime noon;
    noon.day = 1;
    noon.hour = 12;
    SimTime t = from_civil(noon, corridor_.at(pos).tz);
    const auto server = servers_.select(op, pos, corridor_.at(pos).tz);

    // Every stream this city consumes forks from its own label so cities
    // never race (or depend) on one another's draws.
    const Rng city_rng = base.fork(city.name);  // wheels-rng: dynamic(one stream per city)
    ran::UeSimulator ue(corridor_, dep, profile, city_rng,
                        ran::TrafficProfile::BackloggedDl, cfg_.spec.bands,
                        regime_);
    ue.set_favourable_conditions(true);
    net::CubicFlow flow(city_rng.fork("tcp"));
    Rng ping_rng = city_rng.fork("ping");

    auto run_bulk = [&](Direction dir, std::vector<double>& sink) {
      ue.set_traffic(dir == Direction::Downlink
                         ? ran::TrafficProfile::BackloggedDl
                         : ran::TrafficProfile::BackloggedUl);
      flow.restart();
      double window_bytes = 0.0;
      Millis win{0.0};
      for (Millis el{0.0}; el.value < cfg_.tput_test_duration.value;
           el += cfg_.slot) {
        const auto link = ue.step(t, pos, Mph{0.0}, cfg_.slot);
        t += cfg_.slot;
        const Millis base_rtt =
            link.air_latency * 2.0 + server.one_way_delay * 2.0;
        window_bytes +=
            flow.step(cfg_.slot, link.phy_rate(dir), base_rtt);
        win += cfg_.slot;
        if (win.value >= cfg_.sample_window.value) {
          sink.push_back(window_bytes * 8.0 / win.value / 1e3);
          window_bytes = 0.0;
          win = Millis{0.0};
        }
      }
    };
    run_bulk(Direction::Downlink, cr.dl);
    run_bulk(Direction::Uplink, cr.ul);

    // RTT test (light ICMP traffic).
    ue.set_traffic(ran::TrafficProfile::Idle);
    Millis since_ping{1e9};
    for (Millis el{0.0}; el.value < cfg_.rtt_test_duration.value;
         el += cfg_.slot) {
      const auto link = ue.step(t, pos, Mph{0.0}, cfg_.slot);
      t += cfg_.slot;
      since_ping += cfg_.slot;
      if (since_ping.value >= cfg_.ping_interval.value) {
        since_ping = Millis{0.0};
        if (const auto rtt =
                net::ping_rtt(link, server.one_way_delay, ping_rng)) {
          cr.rtt.push_back(rtt->value);
        }
      }
    }
  });

  // Merge in route (city) order: the output is a pure function of the
  // config, never of worker scheduling.
  for (const auto& cr : runs) {
    if (!cr.tested) continue;
    ++out.cities_tested;
    out.dl_tput_mbps.insert(out.dl_tput_mbps.end(), cr.dl.begin(),
                            cr.dl.end());
    out.ul_tput_mbps.insert(out.ul_tput_mbps.end(), cr.ul.begin(),
                            cr.ul.end());
    out.rtt_ms.insert(out.rtt_ms.end(), cr.rtt.begin(), cr.rtt.end());
  }
  campaign_metrics().baseline_us.add(elapsed_us(baseline_start));
  return out;
}

}  // namespace wheels::trip
