#include "trip/campaign.h"

#include <algorithm>
#include <cmath>

#include "core/stats.h"
#include "net/ping.h"
#include "radio/phy_rate.h"

namespace wheels::trip {
namespace {

using radio::Direction;
using radio::Tech;
using ran::OperatorId;

std::vector<net::EdgeSite> edge_sites_from(const Route& route) {
  std::vector<net::EdgeSite> sites;
  for (const auto& c : route.cities()) {
    if (c.has_edge_server) sites.push_back({c.name, c.route_pos});
  }
  return sites;
}

}  // namespace

struct Campaign::PhoneSet {
  OperatorId op;
  ran::UeSimulator test_ue;
  ran::UeSimulator passive_ue;
  net::CubicFlow flow;
  Rng rng;
  Millis passive_step_accum{0.0};
  Millis passive_log_accum{0.0};

  PhoneSet(OperatorId op_, const ran::Corridor& corridor,
           const ran::Deployment& dep, Rng r)
      : op(op_),
        test_ue(corridor, dep, ran::operator_profile(op_), r.fork("test"),
                ran::TrafficProfile::Idle),
        passive_ue(corridor, dep, ran::operator_profile(op_),
                   r.fork("passive"), ran::TrafficProfile::Idle),
        flow(r.fork("tcp")),
        rng(r.fork("misc")) {}
};

Campaign::Campaign(CampaignConfig cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      route_(Route::cross_country()),
      corridor_(build_corridor(route_, rng_.fork("corridor"))),
      servers_(edge_sites_from(route_)),
      trip_(route_, corridor_, rng_.fork("trip"), cfg.drive) {
  for (OperatorId op : ran::kAllOperators) {
    const auto i = static_cast<std::size_t>(op);
    deployments_[i] = std::make_unique<ran::Deployment>(
        ran::Deployment::generate(corridor_, ran::operator_profile(op),
                                  rng_.fork(to_string(op))));
    phones_.push_back(std::make_unique<PhoneSet>(
        op, corridor_, *deployments_[i], rng_.fork(to_string(op)).fork("ue")));
    result_.logs[i].op = op;
  }
}

Campaign::~Campaign() = default;

const ran::Deployment& Campaign::deployment(OperatorId op) const {
  return *deployments_[static_cast<std::size_t>(op)];
}

void Campaign::step_passive(Millis dt) {
  // Passive phones sample coarsely (their ping cadence is 200 ms) and log
  // a technology record every second.
  const TripPoint& pt = trip_.current();
  for (auto& ph : phones_) {
    ph->passive_step_accum += dt;
    ph->passive_log_accum += dt;
    if (ph->passive_step_accum.value >= 200.0) {
      const auto link = ph->passive_ue.step(pt.time, pt.position, pt.speed,
                                            ph->passive_step_accum);
      ph->passive_step_accum = Millis{0.0};
      if (ph->passive_log_accum.value >= 1'000.0) {
        ph->passive_log_accum = Millis{0.0};
        PassiveSample ps;
        ps.time = pt.time;
        ps.op = ph->op;
        ps.position = pt.position;
        ps.speed = pt.speed;
        ps.tz = corridor_.at(pt.position).tz;
        ps.connected = link.connected;
        ps.tech = link.tech;
        ps.cell = link.cell;
        result_.logs[static_cast<std::size_t>(ph->op)].passive.push_back(ps);
      }
    }
  }
}

void Campaign::run_bulk_test(TestType type, int test_id) {
  const Direction dir = type == TestType::DownlinkBulk
                            ? Direction::Downlink
                            : Direction::Uplink;
  const auto traffic = type == TestType::DownlinkBulk
                           ? ran::TrafficProfile::BackloggedDl
                           : ran::TrafficProfile::BackloggedUl;

  struct WindowAccum {
    double rsrp = 0.0, mcs = 0.0, bler = 0.0, cc = 0.0;
    double bytes = 0.0;
    int slots = 0, connected_slots = 0;
    std::array<int, 5> tech_slots{};
  };
  struct PhoneTestState {
    WindowAccum win;
    net::ServerEndpoint server;
    std::size_t ho_base = 0;
    std::size_t ho_window_base = 0;
    std::vector<double> window_tputs;
    int hs5g_slots = 0;
    int total_slots = 0;
    double total_bytes = 0.0;
  };
  std::array<PhoneTestState, 3> st;

  const TripPoint start_pt = trip_.current();
  const TimeZone start_tz = corridor_.at(start_pt.position).tz;
  for (auto& ph : phones_) {
    const auto i = static_cast<std::size_t>(ph->op);
    ph->test_ue.set_traffic(traffic);
    ph->flow.restart();
    st[i].server = servers_.select(ph->op, start_pt.position, start_tz);
    st[i].ho_base = ph->test_ue.handovers().size();
    st[i].ho_window_base = st[i].ho_base;
  }

  Millis elapsed{0.0};
  Millis window_elapsed{0.0};
  while (elapsed.value < cfg_.tput_test_duration.value && !trip_.finished()) {
    const TripPoint pt = trip_.advance(cfg_.slot);
    elapsed += cfg_.slot;
    window_elapsed += cfg_.slot;
    step_passive(cfg_.slot);

    for (auto& ph : phones_) {
      const auto i = static_cast<std::size_t>(ph->op);
      const auto link =
          ph->test_ue.step(pt.time, pt.position, pt.speed, cfg_.slot);
      const Millis base_rtt = link.air_latency * 2.0 +
                              st[i].server.one_way_delay * 2.0;
      const double bytes =
          ph->flow.step(cfg_.slot, link.phy_rate(dir), base_rtt);
      auto& w = st[i].win;
      ++w.slots;
      ++st[i].total_slots;
      if (link.connected) {
        ++w.connected_slots;
        w.rsrp += link.rsrp.value;
        w.mcs += dir == Direction::Downlink ? link.mcs_dl : link.mcs_ul;
        w.bler += dir == Direction::Downlink ? link.bler_dl : link.bler_ul;
        w.cc += dir == Direction::Downlink ? link.num_cc_dl : link.num_cc_ul;
        ++w.tech_slots[static_cast<std::size_t>(link.tech)];
        if (radio::is_high_speed(link.tech)) ++st[i].hs5g_slots;
      }
      w.bytes += bytes;
      st[i].total_bytes += bytes;
    }

    if (window_elapsed.value >= cfg_.sample_window.value) {
      for (auto& ph : phones_) {
        const auto i = static_cast<std::size_t>(ph->op);
        auto& w = st[i].win;
        KpiSample s;
        s.time = pt.time;
        s.test_id = test_id;
        s.test = type;
        s.op = ph->op;
        s.position = pt.position;
        s.speed = pt.speed;
        s.tz = corridor_.at(pt.position).tz;
        s.env = corridor_.at(pt.position).env;
        s.connected = w.connected_slots > 0;
        if (s.connected) {
          const double n = w.connected_slots;
          s.rsrp_dbm = w.rsrp / n;
          s.mcs = w.mcs / n;
          s.bler = w.bler / n;
          s.num_cc = w.cc / n;
          const auto it = std::max_element(w.tech_slots.begin(),
                                           w.tech_slots.end());
          s.tech = static_cast<Tech>(it - w.tech_slots.begin());
        }
        s.tput_mbps = w.bytes * 8.0 / window_elapsed.value / 1e3;
        const auto& hos = ph->test_ue.handovers();
        s.handovers =
            static_cast<int>(hos.size() - st[i].ho_window_base);
        st[i].ho_window_base = hos.size();
        s.server = st[i].server.kind;
        result_.logs[i].kpi.push_back(s);
        st[i].window_tputs.push_back(s.tput_mbps);
        w = WindowAccum{};
      }
      window_elapsed = Millis{0.0};
    }
  }

  const TripPoint end_pt = trip_.current();
  for (auto& ph : phones_) {
    const auto i = static_cast<std::size_t>(ph->op);
    if (st[i].window_tputs.empty()) continue;
    RunningStats rs;
    for (double v : st[i].window_tputs) rs.add(v);
    TestSummary sum;
    sum.test_id = test_id;
    sum.test = type;
    sum.op = ph->op;
    sum.start = start_pt.time;
    sum.duration = elapsed;
    sum.start_position = start_pt.position;
    sum.distance = end_pt.position - start_pt.position;
    sum.tz = start_tz;
    sum.server = st[i].server.kind;
    sum.mean = rs.mean();
    sum.stddev = rs.stddev();
    sum.samples = static_cast<int>(rs.count());
    sum.handovers = static_cast<int>(ph->test_ue.handovers().size() -
                                     st[i].ho_base);
    sum.frac_high_speed_5g =
        st[i].total_slots
            ? static_cast<double>(st[i].hs5g_slots) / st[i].total_slots
            : 0.0;
    sum.bytes_transferred = st[i].total_bytes;
    result_.logs[i].tests.push_back(sum);
  }
}

void Campaign::run_rtt_test(int test_id) {
  struct PhoneTestState {
    net::ServerEndpoint server;
    Millis since_ping{1e9};
    std::vector<double> rtts;
    int hs5g_slots = 0;
    int total_slots = 0;
    std::size_t ho_base = 0;
  };
  std::array<PhoneTestState, 3> st;

  const TripPoint start_pt = trip_.current();
  const TimeZone start_tz = corridor_.at(start_pt.position).tz;
  for (auto& ph : phones_) {
    const auto i = static_cast<std::size_t>(ph->op);
    ph->test_ue.set_traffic(ran::TrafficProfile::Idle);
    st[i].server = servers_.select(ph->op, start_pt.position, start_tz);
    st[i].ho_base = ph->test_ue.handovers().size();
  }

  Millis elapsed{0.0};
  while (elapsed.value < cfg_.rtt_test_duration.value && !trip_.finished()) {
    const TripPoint pt = trip_.advance(cfg_.slot);
    elapsed += cfg_.slot;
    step_passive(cfg_.slot);

    for (auto& ph : phones_) {
      const auto i = static_cast<std::size_t>(ph->op);
      const auto link =
          ph->test_ue.step(pt.time, pt.position, pt.speed, cfg_.slot);
      ++st[i].total_slots;
      if (link.connected && radio::is_high_speed(link.tech)) {
        ++st[i].hs5g_slots;
      }
      st[i].since_ping += cfg_.slot;
      if (st[i].since_ping.value >= cfg_.ping_interval.value) {
        st[i].since_ping = Millis{0.0};
        const auto rtt =
            net::ping_rtt(link, st[i].server.one_way_delay, ph->rng);
        RttSample s;
        s.time = pt.time;
        s.test_id = test_id;
        s.op = ph->op;
        s.position = pt.position;
        s.speed = pt.speed;
        s.tz = corridor_.at(pt.position).tz;
        s.success = rtt.has_value();
        s.rtt_ms = rtt ? rtt->value : 0.0;
        s.connected = link.connected;
        s.tech = link.tech;
        s.server = st[i].server.kind;
        result_.logs[i].rtt.push_back(s);
        if (rtt) st[i].rtts.push_back(rtt->value);
      }
    }
  }

  const TripPoint end_pt = trip_.current();
  for (auto& ph : phones_) {
    const auto i = static_cast<std::size_t>(ph->op);
    if (st[i].rtts.empty()) continue;
    RunningStats rs;
    for (double v : st[i].rtts) rs.add(v);
    TestSummary sum;
    sum.test_id = test_id;
    sum.test = TestType::Ping;
    sum.op = ph->op;
    sum.start = start_pt.time;
    sum.duration = elapsed;
    sum.start_position = start_pt.position;
    sum.distance = end_pt.position - start_pt.position;
    sum.tz = start_tz;
    sum.server = st[i].server.kind;
    sum.mean = rs.mean();
    sum.stddev = rs.stddev();
    sum.samples = static_cast<int>(rs.count());
    sum.handovers = static_cast<int>(ph->test_ue.handovers().size() -
                                     st[i].ho_base);
    sum.frac_high_speed_5g =
        st[i].total_slots
            ? static_cast<double>(st[i].hs5g_slots) / st[i].total_slots
            : 0.0;
    result_.logs[i].tests.push_back(sum);
  }
}

void Campaign::run_gap(Millis duration) {
  const Millis step{100.0};
  for (auto& ph : phones_) {
    ph->test_ue.set_traffic(ran::TrafficProfile::Idle);
  }
  Millis elapsed{0.0};
  while (elapsed.value < duration.value && !trip_.finished()) {
    const TripPoint pt = trip_.advance(step);
    elapsed += step;
    step_passive(step);
    for (auto& ph : phones_) {
      ph->test_ue.step(pt.time, pt.position, pt.speed, step);
    }
  }
}

void Campaign::fast_forward_cycle() {
  const double cycle_ms = 2.0 * cfg_.tput_test_duration.value +
                          cfg_.rtt_test_duration.value +
                          3.0 * cfg_.gap.value;
  run_gap(Millis{cycle_ms});
}

const CampaignResult& Campaign::run() {
  if (ran_) return result_;
  ran_ = true;

  int cycle = 0;
  int test_id = 0;
  while (!trip_.finished()) {
    if (cfg_.cycle_stride > 1 && (cycle % cfg_.cycle_stride) != 0) {
      fast_forward_cycle();
    } else {
      run_bulk_test(TestType::DownlinkBulk, test_id++);
      run_gap(cfg_.gap);
      run_bulk_test(TestType::UplinkBulk, test_id++);
      run_gap(cfg_.gap);
      run_rtt_test(test_id++);
      run_gap(cfg_.gap);
    }
    ++cycle;
  }

  for (auto& ph : phones_) {
    const auto i = static_cast<std::size_t>(ph->op);
    auto& log = result_.logs[i];
    log.test_handovers = ph->test_ue.handovers();
    log.passive_handovers = ph->passive_ue.handovers();
    // Unique cells across both phones of this operator.
    std::vector<ran::CellId> cells = ph->test_ue.seen_cells();
    const auto& pc = ph->passive_ue.seen_cells();
    cells.insert(cells.end(), pc.begin(), pc.end());
    std::sort(cells.begin(), cells.end());
    cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
    log.unique_cells = cells.size();
    log.experiment_runtime = trip_.total_drive_time();
  }
  result_.route_length = route_.length();
  result_.days = trip_.current().day;
  result_.drive_time = trip_.total_drive_time();
  return result_;
}

StaticBaseline Campaign::run_static_baseline(OperatorId op) {
  StaticBaseline out;
  out.op = op;
  const auto& dep = deployment(op);
  const auto& profile = ran::operator_profile(op);
  Rng rng = rng_.fork("static").fork(to_string(op));

  for (const auto& city : route_.cities()) {
    // Find the best high-speed-5G site near the city center: the nearest
    // mmWave cell within the urban core, else the nearest mid-band one.
    const ran::Cell* site = nullptr;
    for (Tech tech : {Tech::NR_MMWAVE, Tech::NR_MID}) {
      double best_d = 22'000.0;  // urban-core radius
      for (const auto& c : dep.cells(tech)) {
        const double d = std::abs(c.route_pos.value - city.route_pos.value);
        if (d < best_d) {
          best_d = d;
          site = &c;
        }
      }
      if (site) break;  // prefer mmWave; fall back to mid-band
    }
    if (!site) continue;  // operator-city combo skipped, like the study
    ++out.cities_tested;

    const Meters pos = site->route_pos;  // standing right by the site
    CivilTime noon;
    noon.day = 1;
    noon.hour = 12;
    SimTime t = from_civil(noon, corridor_.at(pos).tz);
    const auto server = servers_.select(op, pos, corridor_.at(pos).tz);

    ran::UeSimulator ue(corridor_, dep, profile, rng.fork(city.name),
                        ran::TrafficProfile::BackloggedDl);
    ue.set_favourable_conditions(true);
    net::CubicFlow flow(rng.fork(city.name).fork("tcp"));

    auto run_bulk = [&](Direction dir, std::vector<double>& sink) {
      ue.set_traffic(dir == Direction::Downlink
                         ? ran::TrafficProfile::BackloggedDl
                         : ran::TrafficProfile::BackloggedUl);
      flow.restart();
      double window_bytes = 0.0;
      Millis win{0.0};
      for (Millis el{0.0}; el.value < cfg_.tput_test_duration.value;
           el += cfg_.slot) {
        const auto link = ue.step(t, pos, Mph{0.0}, cfg_.slot);
        t += cfg_.slot;
        const Millis base_rtt =
            link.air_latency * 2.0 + server.one_way_delay * 2.0;
        window_bytes +=
            flow.step(cfg_.slot, link.phy_rate(dir), base_rtt);
        win += cfg_.slot;
        if (win.value >= cfg_.sample_window.value) {
          sink.push_back(window_bytes * 8.0 / win.value / 1e3);
          window_bytes = 0.0;
          win = Millis{0.0};
        }
      }
    };
    run_bulk(Direction::Downlink, out.dl_tput_mbps);
    run_bulk(Direction::Uplink, out.ul_tput_mbps);

    // RTT test (light ICMP traffic).
    ue.set_traffic(ran::TrafficProfile::Idle);
    Millis since_ping{1e9};
    for (Millis el{0.0}; el.value < cfg_.rtt_test_duration.value;
         el += cfg_.slot) {
      const auto link = ue.step(t, pos, Mph{0.0}, cfg_.slot);
      t += cfg_.slot;
      since_ping += cfg_.slot;
      if (since_ping.value >= cfg_.ping_interval.value) {
        since_ping = Millis{0.0};
        if (const auto rtt =
                net::ping_rtt(link, server.one_way_delay, rng)) {
          out.rtt_ms.push_back(rtt->value);
        }
      }
    }
  }
  return out;
}

}  // namespace wheels::trip
