#include "trip/trajectory.h"

#include "trip/campaign.h"

namespace wheels::trip {
namespace {

TrajectoryPoint resolve(const TripPoint& pt, const ran::Corridor& corridor) {
  const auto& seg = corridor.at(pt.position);
  return {pt.time, pt.position, pt.speed, pt.day, seg.tz, seg.env};
}

// Mirrors the sequential runner's per-segment loop shape exactly: sample the
// start state, then advance while the budget lasts and the trip is not done.
// Empty segments (trip finished mid-cycle) are still recorded because replay
// must mirror their side effects (traffic-profile switches, flow restarts).
void record_segment(Trajectory& out, TripSimulator& trip,
                    const ran::Corridor& corridor, SegmentKind kind,
                    int test_id, Millis slot, Millis duration) {
  TrajectorySegment seg;
  seg.kind = kind;
  seg.test_id = test_id;
  seg.slot = slot;
  seg.start = resolve(trip.current(), corridor);
  seg.begin = out.points.size();
  Millis elapsed{0.0};
  while (elapsed.value < duration.value && !trip.finished()) {
    const TripPoint pt = trip.advance(slot);
    elapsed += slot;
    out.points.push_back(resolve(pt, corridor));
  }
  seg.end = out.points.size();
  out.segments.push_back(seg);
}

}  // namespace

Trajectory record_trajectory(TripSimulator& trip, const ran::Corridor& corridor,
                             const CampaignConfig& cfg) {
  Trajectory out;
  const Millis cycle{2.0 * cfg.tput_test_duration.value +
                     cfg.rtt_test_duration.value + 3.0 * cfg.gap.value};
  int cycle_no = 0;
  int test_id = 0;
  while (!trip.finished()) {
    if (cfg.cycle_stride > 1 && (cycle_no % cfg.cycle_stride) != 0) {
      record_segment(out, trip, corridor, SegmentKind::FastForward, -1,
                     kIdleStep, cycle);
    } else {
      record_segment(out, trip, corridor, SegmentKind::BulkDl, test_id++,
                     cfg.slot, cfg.tput_test_duration);
      record_segment(out, trip, corridor, SegmentKind::Gap, -1, kIdleStep,
                     cfg.gap);
      record_segment(out, trip, corridor, SegmentKind::BulkUl, test_id++,
                     cfg.slot, cfg.tput_test_duration);
      record_segment(out, trip, corridor, SegmentKind::Gap, -1, kIdleStep,
                     cfg.gap);
      record_segment(out, trip, corridor, SegmentKind::Rtt, test_id++,
                     cfg.slot, cfg.rtt_test_duration);
      record_segment(out, trip, corridor, SegmentKind::Gap, -1, kIdleStep,
                     cfg.gap);
    }
    ++cycle_no;
  }
  out.total_drive_time = trip.total_drive_time();
  out.days = trip.current().day;
  return out;
}

}  // namespace wheels::trip
