#include "trip/trip_simulator.h"

#include <algorithm>

namespace wheels::trip {

TripSimulator::TripSimulator(const Route& route,
                             const ran::Corridor& corridor, Rng rng,
                             DriveConfig cfg)
    : route_(route), corridor_(corridor),
      speed_(rng.fork("speed"), cfg.speed), cfg_(cfg) {
  point_.day = 1;
  point_.position = Meters{0.0};
  start_day();
}

void TripSimulator::start_day() {
  // 08:00 local at the current position.
  const TimeZone tz = route_.timezone_at(point_.position);
  CivilTime ct;
  ct.day = point_.day;
  ct.hour = cfg_.start_hour_local;
  point_.time = from_civil(ct, tz);
  driven_today_ = Millis{0.0};
}

bool TripSimulator::finished() const {
  return point_.position.value >= route_.length().value;
}

TripPoint TripSimulator::advance(Millis dt) {
  if (finished()) return point_;

  if (driven_today_.value >= Millis::from_hours(cfg_.hours_per_day).value) {
    ++point_.day;
    start_day();
  }

  const auto env = corridor_.at(point_.position).env;
  const Mph v = speed_.step(env, dt);
  point_.position += v * dt;
  point_.position =
      Meters{std::min(point_.position.value, route_.length().value)};
  point_.speed = v;
  point_.time += dt;
  driven_today_ += dt;
  drive_time_ += dt;
  return point_;
}

}  // namespace wheels::trip
