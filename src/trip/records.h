// Log record schemas produced by the measurement campaign.
//
// These mirror the study's data sources:
//  - KpiSample: one 500 ms XCAL snapshot during an active test, joined with
//    the application-layer throughput for that interval.
//  - RttSample: one ICMP echo of an RTT test.
//  - PassiveSample: one record of the "handover-logger" phones (light ICMP
//    keep-alive, Android-API-level technology/cell logging).
//  - TestSummary: per-test aggregate (30 s throughput test / 20 s RTT
//    test), the granularity of Figs. 9-10 and the Ookla comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sim_time.h"
#include "core/units.h"
#include "net/server.h"
#include "radio/pathloss.h"
#include "radio/phy_rate.h"
#include "radio/technology.h"
#include "ran/operator_profile.h"
#include "ran/ue.h"

namespace wheels::trip {

enum class TestType : std::uint8_t { DownlinkBulk, UplinkBulk, Ping };

[[nodiscard]] constexpr std::string_view to_string(TestType t) {
  switch (t) {
    case TestType::DownlinkBulk: return "DL";
    case TestType::UplinkBulk: return "UL";
    case TestType::Ping: return "RTT";
  }
  return "?";
}

struct KpiSample {
  SimTime time;
  int test_id = 0;
  TestType test = TestType::DownlinkBulk;
  ran::OperatorId op = ran::OperatorId::Verizon;
  // Mobility context.
  Meters position{0.0};
  Mph speed{0.0};
  TimeZone tz = TimeZone::Pacific;
  radio::Environment env = radio::Environment::Rural;
  // Radio KPIs (averages over the 500 ms window).
  bool connected = false;
  radio::Tech tech = radio::Tech::LTE;
  double rsrp_dbm = -140.0;
  double mcs = 0.0;
  double bler = 0.0;
  double num_cc = 1.0;
  // Application layer.
  double tput_mbps = 0.0;
  int handovers = 0;  // HOs that started within this window
  net::ServerKind server = net::ServerKind::Cloud;

  friend bool operator==(const KpiSample&, const KpiSample&) = default;
};

struct RttSample {
  SimTime time;
  int test_id = 0;
  ran::OperatorId op = ran::OperatorId::Verizon;
  Meters position{0.0};
  Mph speed{0.0};
  TimeZone tz = TimeZone::Pacific;
  bool success = false;
  double rtt_ms = 0.0;
  bool connected = false;
  radio::Tech tech = radio::Tech::LTE;
  net::ServerKind server = net::ServerKind::Cloud;

  friend bool operator==(const RttSample&, const RttSample&) = default;
};

struct PassiveSample {
  SimTime time;
  ran::OperatorId op = ran::OperatorId::Verizon;
  Meters position{0.0};
  Mph speed{0.0};
  TimeZone tz = TimeZone::Pacific;
  bool connected = false;
  radio::Tech tech = radio::Tech::LTE;
  ran::CellId cell = 0;

  friend bool operator==(const PassiveSample&, const PassiveSample&) = default;
};

struct TestSummary {
  int test_id = 0;
  TestType test = TestType::DownlinkBulk;
  ran::OperatorId op = ran::OperatorId::Verizon;
  SimTime start;
  Millis duration{0.0};
  Meters start_position{0.0};
  Meters distance{0.0};
  TimeZone tz = TimeZone::Pacific;
  net::ServerKind server = net::ServerKind::Cloud;
  // Throughput tests: mean/stddev of the 500 ms samples; RTT tests: of the
  // echo RTTs.
  double mean = 0.0;
  double stddev = 0.0;
  int samples = 0;
  int handovers = 0;
  double frac_high_speed_5g = 0.0;  // time fraction on mmWave/mid-band
  double bytes_transferred = 0.0;

  friend bool operator==(const TestSummary&, const TestSummary&) = default;
};

// Everything one operator's phones produced over the campaign.
struct OperatorLogs {
  ran::OperatorId op = ran::OperatorId::Verizon;
  std::vector<KpiSample> kpi;
  std::vector<RttSample> rtt;
  std::vector<TestSummary> tests;
  std::vector<ran::HandoverRecord> test_handovers;
  std::vector<PassiveSample> passive;
  std::vector<ran::HandoverRecord> passive_handovers;
  std::size_t unique_cells = 0;
  Millis experiment_runtime{0.0};

  friend bool operator==(const OperatorLogs&, const OperatorLogs&) = default;
};

}  // namespace wheels::trip
