#include "trip/speed_profile.h"

#include <algorithm>
#include <cmath>

namespace wheels::trip {

using radio::Environment;

SpeedProfile::SpeedProfile(Rng rng) : rng_(rng) {}

double SpeedProfile::target_mph(Environment env) {
  switch (env) {
    case Environment::Urban: return 14.0;
    case Environment::Suburban: return 38.0;
    case Environment::Rural: return 70.0;
  }
  return 60.0;
}

Mph SpeedProfile::step(Environment env, Millis dt) {
  const double dt_s = dt.seconds();

  // Stoplight stops in the city.
  if (stop_remaining_.value > 0.0) {
    stop_remaining_ -= dt;
    speed_mph_ = std::max(0.0, speed_mph_ - 12.0 * dt_s);  // braking
    return Mph{speed_mph_};
  }
  if (env == Environment::Urban && rng_.chance(0.01 * dt_s)) {
    stop_remaining_ = Millis{rng_.uniform(10'000.0, 45'000.0)};
  }

  // Congestion / construction slow-downs.
  if (slowdown_remaining_.value > 0.0) {
    slowdown_remaining_ -= dt;
  } else if (rng_.chance(0.0015 * dt_s)) {
    slowdown_remaining_ = Millis{rng_.uniform(60'000.0, 300'000.0)};
    slowdown_factor_ = rng_.uniform(0.3, 0.7);
  } else {
    slowdown_factor_ = 1.0;
  }

  const double target = target_mph(env) *
                        (slowdown_remaining_.value > 0.0 ? slowdown_factor_
                                                         : 1.0);
  // OU relaxation toward the target (tau ~ 15 s) with noise.
  const double theta = std::min(1.0, dt_s / 15.0);
  speed_mph_ += theta * (target - speed_mph_) +
                2.0 * std::sqrt(std::min(1.0, dt_s)) * rng_.normal();
  speed_mph_ = std::clamp(speed_mph_, 0.0, 82.0);
  return Mph{speed_mph_};
}

}  // namespace wheels::trip
