#include "trip/speed_profile.h"

#include <algorithm>
#include <cmath>

namespace wheels::trip {

using radio::Environment;

SpeedProfile::SpeedProfile(Rng rng, SpeedTargets targets)
    : rng_(rng), targets_(targets) {}

double SpeedProfile::target_mph(Environment env) const {
  switch (env) {
    case Environment::Urban: return targets_.urban_mph;
    case Environment::Suburban: return targets_.suburban_mph;
    case Environment::Rural: return targets_.rural_mph;
  }
  return targets_.rural_mph;
}

Mph SpeedProfile::step(Environment env, Millis dt) {
  const double dt_s = dt.seconds();

  // Stoplight stops in the city.
  if (stop_remaining_.value > 0.0) {
    stop_remaining_ -= dt;
    speed_mph_ = std::max(0.0, speed_mph_ - 12.0 * dt_s);  // braking
    return Mph{speed_mph_};
  }
  if (env == Environment::Urban && rng_.chance(0.01 * dt_s)) {
    stop_remaining_ = Millis{rng_.uniform(10'000.0, 45'000.0)};
  }

  // Congestion / construction slow-downs.
  if (slowdown_remaining_.value > 0.0) {
    slowdown_remaining_ -= dt;
  } else if (rng_.chance(0.0015 * dt_s)) {
    slowdown_remaining_ = Millis{rng_.uniform(60'000.0, 300'000.0)};
    slowdown_factor_ = rng_.uniform(0.3, 0.7);
  } else {
    slowdown_factor_ = 1.0;
  }

  const double target = target_mph(env) *
                        (slowdown_remaining_.value > 0.0 ? slowdown_factor_
                                                         : 1.0);
  // OU relaxation toward the target (tau ~ 15 s) with noise.
  const double theta = std::min(1.0, dt_s / 15.0);
  speed_mph_ += theta * (target - speed_mph_) +
                2.0 * std::sqrt(std::min(1.0, dt_s)) * rng_.normal();
  speed_mph_ = std::clamp(speed_mph_, 0.0, targets_.max_mph);
  return Mph{speed_mph_};
}

}  // namespace wheels::trip
