// The LA -> Boston drive route.
//
// Waypoints are the major cities the study lists (Los Angeles, Las Vegas,
// Salt Lake City, Denver, Omaha, Chicago, Indianapolis, Cleveland,
// Rochester, Boston). Great-circle leg lengths are inflated by a road
// factor so the total driven distance matches the reported 5,711+ km.
#pragma once

#include <string>
#include <vector>

#include "core/geo.h"
#include "core/sim_time.h"
#include "core/units.h"
#include "scenario/spec.h"

namespace wheels::trip {

struct City {
  std::string name;
  LatLon location;
  Meters route_pos{0.0};  // driven distance from the start
  bool has_edge_server = false;  // AWS Wavelength site (Verizon)
};

class Route {
 public:
  // The study's cross-continental route (the paper-default scenario).
  static Route cross_country();

  // Build a route from a scenario's declarative waypoint list.
  static Route from_spec(const scenario::RouteSpec& spec);

  [[nodiscard]] Meters length() const { return length_; }
  [[nodiscard]] const std::vector<City>& cities() const { return cities_; }

  // Geographic position at a driven distance (linear on each leg).
  [[nodiscard]] LatLon position_at(Meters pos) const;
  [[nodiscard]] TimeZone timezone_at(Meters pos) const;

  // Distance (along the route) to the nearest city center.
  [[nodiscard]] Meters distance_to_nearest_city(Meters pos) const;

 private:
  Route(std::vector<City> cities, double road_factor);

  std::vector<City> cities_;
  Meters length_{0.0};
  double road_factor_ = 1.0;
};

}  // namespace wheels::trip
