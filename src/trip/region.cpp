#include "trip/region.h"

#include <algorithm>
#include <vector>

namespace wheels::trip {

ran::Corridor build_corridor(const Route& route, Rng rng,
                             const RegionConfig& cfg) {
  using radio::Environment;

  // Sprinkle small-town centers along the route.
  std::vector<double> towns;
  Rng town_rng = rng.fork("towns");
  double t = town_rng.exponential(cfg.town_spacing.value);
  while (t < route.length().value) {
    towns.push_back(t);
    t += cfg.town_spacing.value * town_rng.uniform(0.5, 1.5);
  }

  auto env_at = [&](double pos) {
    const Meters d_city = route.distance_to_nearest_city(Meters{pos});
    if (d_city.value <= cfg.urban_radius.value) return Environment::Urban;
    if (d_city.value <= cfg.suburban_radius.value) {
      return Environment::Suburban;
    }
    for (double town : towns) {
      if (std::abs(town - pos) <= cfg.town_radius.value) {
        return Environment::Suburban;
      }
    }
    return Environment::Rural;
  };

  std::vector<ran::CorridorSegment> segments;
  const double step = cfg.granularity.value;
  double seg_start = 0.0;
  Environment seg_env = env_at(step / 2.0);
  TimeZone seg_tz = route.timezone_at(Meters{step / 2.0});
  for (double pos = step; pos < route.length().value + step; pos += step) {
    const double mid = std::min(pos + step / 2.0, route.length().value);
    const Environment env = env_at(mid);
    const TimeZone tz = route.timezone_at(Meters{mid});
    const double seg_end = std::min(pos, route.length().value);
    if (env != seg_env || tz != seg_tz || seg_end >= route.length().value) {
      segments.push_back({Meters{seg_start}, Meters{seg_end}, seg_env,
                          seg_tz});
      seg_start = seg_end;
      seg_env = env;
      seg_tz = tz;
    }
    if (seg_end >= route.length().value) break;
  }
  if (segments.empty() ||
      segments.back().end.value < route.length().value) {
    segments.push_back({Meters{seg_start}, route.length(), seg_env, seg_tz});
  }
  return ran::Corridor(std::move(segments));
}

}  // namespace wheels::trip
