// Batched structure-of-arrays replay: per-segment scratch and batch
// preparation for the campaign engine.
//
// The replay loops in campaign.cpp hand each trajectory segment to
// prepare_segment_batch(), which extracts the SoA columns (position,
// speed, pre-resolved environment/timezone) straight out of the recorded
// TrajectoryPoints and fills the per-layer nearest-cell columns with one
// monotone sweep (ran::fill_nearest_cells). UEs then consume the batch via
// ran::UeSimulator::begin_segment + the batched step overload. The kernel
// is on by default and byte-identical to the scalar path; set
// WHEELS_REPLAY_KERNEL=0 (or Campaign::set_replay_kernel(false)) to force
// the original per-slot lookups, which is what bench_replay_kernel
// measures against.
#pragma once

#include <vector>

#include "ran/deployment.h"
#include "ran/kernel.h"
#include "ran/operator_profile.h"
#include "trip/trajectory.h"

namespace wheels::trip {

// Default kernel enablement: on unless WHEELS_REPLAY_KERNEL=0.
[[nodiscard]] bool replay_kernel_enabled_from_env();

// Per-PhoneSet scratch, reused across every segment of the replay so the
// hot loop performs no per-segment allocation once warm.
struct ReplayScratch {
  ran::SegmentBatch batch;
  std::vector<double> window_tputs;
  std::vector<double> rtts;
};

// Fill `batch` with the SoA view of `seg` (geometry from the recorded
// points, candidate cells from one sweep over `dep`). Timed into the
// campaign.kernel.* obs counters.
void prepare_segment_batch(const Trajectory& traj, const TrajectorySegment& seg,
                           const ran::Deployment& dep,
                           const ran::OperatorProfile& profile,
                           ran::SegmentBatch& batch);

}  // namespace wheels::trip
