#include "trip/route.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wheels::trip {
namespace {

// Ratio of driven distance to great-circle distance, chosen so the route
// totals ~5,711 km like the study's odometer.
constexpr double kRoadFactor = 1.218;

}  // namespace

Route::Route(std::vector<City> cities, double road_factor)
    : cities_(std::move(cities)), road_factor_(road_factor) {
  if (cities_.size() < 2) {
    throw std::invalid_argument("Route: need at least two cities");
  }
  double pos = 0.0;
  cities_.front().route_pos = Meters{0.0};
  for (std::size_t i = 1; i < cities_.size(); ++i) {
    const Meters leg = haversine_distance(cities_[i - 1].location,
                                          cities_[i].location);
    pos += leg.value * road_factor_;
    cities_[i].route_pos = Meters{pos};
  }
  length_ = Meters{pos};
}

Route Route::cross_country() {
  std::vector<City> cities = {
      {"Los Angeles", {34.05, -118.24}, Meters{0.0}, true},
      {"Las Vegas", {36.17, -115.14}, Meters{0.0}, true},
      {"Salt Lake City", {40.76, -111.89}, Meters{0.0}, false},
      {"Denver", {39.74, -104.99}, Meters{0.0}, true},
      {"Omaha", {41.26, -95.93}, Meters{0.0}, false},
      {"Chicago", {41.88, -87.63}, Meters{0.0}, true},
      {"Indianapolis", {39.77, -86.16}, Meters{0.0}, false},
      {"Cleveland", {41.50, -81.69}, Meters{0.0}, false},
      {"Rochester", {43.16, -77.61}, Meters{0.0}, false},
      {"Boston", {42.36, -71.06}, Meters{0.0}, true},
  };
  return Route(std::move(cities), kRoadFactor);
}

LatLon Route::position_at(Meters pos) const {
  const double p =
      std::clamp(pos.value, 0.0, length_.value);
  for (std::size_t i = 1; i < cities_.size(); ++i) {
    if (p <= cities_[i].route_pos.value) {
      const double a = cities_[i - 1].route_pos.value;
      const double b = cities_[i].route_pos.value;
      const double t = b > a ? (p - a) / (b - a) : 0.0;
      return interpolate(cities_[i - 1].location, cities_[i].location, t);
    }
  }
  return cities_.back().location;
}

TimeZone Route::timezone_at(Meters pos) const {
  return timezone_from_longitude(position_at(pos).lon);
}

Meters Route::distance_to_nearest_city(Meters pos) const {
  double best = std::abs(cities_.front().route_pos.value - pos.value);
  for (const auto& c : cities_) {
    best = std::min(best, std::abs(c.route_pos.value - pos.value));
  }
  return Meters{best};
}

}  // namespace wheels::trip
