#include "trip/route.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wheels::trip {

Route::Route(std::vector<City> cities, double road_factor)
    : cities_(std::move(cities)), road_factor_(road_factor) {
  if (cities_.size() < 2) {
    throw std::invalid_argument("Route: need at least two cities");
  }
  double pos = 0.0;
  cities_.front().route_pos = Meters{0.0};
  for (std::size_t i = 1; i < cities_.size(); ++i) {
    const Meters leg = haversine_distance(cities_[i - 1].location,
                                          cities_[i].location);
    pos += leg.value * road_factor_;
    cities_[i].route_pos = Meters{pos};
  }
  length_ = Meters{pos};
}

Route Route::cross_country() {
  return from_spec(scenario::paper_default().route);
}

Route Route::from_spec(const scenario::RouteSpec& spec) {
  std::vector<City> cities;
  cities.reserve(spec.waypoints.size());
  for (const scenario::WaypointSpec& w : spec.waypoints) {
    cities.push_back(City{w.name, {w.lat, w.lon}, Meters{0.0}, w.edge_server});
  }
  return Route(std::move(cities), spec.road_factor);
}

LatLon Route::position_at(Meters pos) const {
  const double p =
      std::clamp(pos.value, 0.0, length_.value);
  for (std::size_t i = 1; i < cities_.size(); ++i) {
    if (p <= cities_[i].route_pos.value) {
      const double a = cities_[i - 1].route_pos.value;
      const double b = cities_[i].route_pos.value;
      const double t = b > a ? (p - a) / (b - a) : 0.0;
      return interpolate(cities_[i - 1].location, cities_[i].location, t);
    }
  }
  return cities_.back().location;
}

TimeZone Route::timezone_at(Meters pos) const {
  return timezone_from_longitude(position_at(pos).lon);
}

Meters Route::distance_to_nearest_city(Meters pos) const {
  double best = std::abs(cities_.front().route_pos.value - pos.value);
  for (const auto& c : cities_) {
    best = std::min(best, std::abs(c.route_pos.value - pos.value));
  }
  return Meters{best};
}

}  // namespace wheels::trip
