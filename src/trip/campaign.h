// The measurement campaign: drives the route once, running the study's
// round-robin network test suite (30 s downlink bulk, 30 s uplink bulk,
// 20 s ICMP RTT) simultaneously on three phones (one per operator), while
// three passive "handover-logger" phones record technology and handovers
// continuously. Also provides the per-city static baselines of Fig. 3a.
//
// Execution model (see DESIGN.md "Parallel execution model"): the drive is
// recorded once into a Trajectory, then each operator's PhoneSet replays it
// on its own worker thread. Results are bit-identical for any jobs count
// because every stochastic process is pinned to per-operator (or per-city)
// Rng forks and outputs land in per-operator slots assembled in fixed
// order.
#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <vector>

#include "core/rng.h"
#include "net/server.h"
#include "net/tcp_cubic.h"
#include "ran/corridor.h"
#include "ran/deployment.h"
#include "ran/kernel.h"
#include "ran/ue.h"
#include "scenario/spec.h"
#include "trip/records.h"
#include "trip/region.h"
#include "trip/route.h"
#include "trip/trajectory.h"
#include "trip/trip_simulator.h"

namespace wheels::trip {

struct CampaignConfig {
  std::uint64_t seed = 42;
  Millis slot{20.0};  // PHY/TCP simulation slot during active tests
  Millis tput_test_duration{30'000.0};
  Millis rtt_test_duration{20'000.0};
  Millis gap{3'000.0};
  Millis ping_interval{200.0};
  Millis sample_window{500.0};  // XCAL throughput logging period
  // Run every k-th test cycle and fast-forward the rest: k=1 reproduces
  // the full campaign; k=4 gives a 4x faster run with 1/4 of the samples
  // but the same geographic spread.
  int cycle_stride = 1;
  DriveConfig drive{};
  // The declarative scenario the campaign realizes. The timing/seed/drive
  // fields above are *derived* from it by from_scenario(); the spec is the
  // single owner of those values (the defaults here match paper-default so
  // a plain CampaignConfig{} still reproduces the study).
  scenario::ScenarioSpec spec = scenario::paper_default();
  // Execution knobs (worker count) live outside this struct on purpose:
  // they must never affect the dataset fingerprint or the result bytes.

  // Derive a config from a validated scenario. `cycle_stride` is an
  // execution knob, not part of the scenario (it changes sample density,
  // not the world being simulated).
  static CampaignConfig from_scenario(const scenario::ScenarioSpec& spec,
                                      int cycle_stride = 1);
};

struct CampaignResult {
  std::array<OperatorLogs, 3> logs;  // indexed by OperatorId value
  Meters route_length{0.0};
  int days = 0;
  Millis drive_time{0.0};

  [[nodiscard]] const OperatorLogs& for_op(ran::OperatorId op) const {
    return logs[static_cast<std::size_t>(op)];
  }

  friend bool operator==(const CampaignResult&,
                         const CampaignResult&) = default;
};

// Per-city static baseline (the "best static conditions" of Fig. 3a).
struct StaticBaseline {
  ran::OperatorId op = ran::OperatorId::Verizon;
  std::vector<double> dl_tput_mbps;  // 500 ms samples over all cities
  std::vector<double> ul_tput_mbps;
  std::vector<double> rtt_ms;
  int cities_tested = 0;

  friend bool operator==(const StaticBaseline&,
                         const StaticBaseline&) = default;
};

class Campaign {
 public:
  explicit Campaign(CampaignConfig cfg = CampaignConfig{});
  ~Campaign();

  Campaign(const Campaign&) = delete;
  Campaign& operator=(const Campaign&) = delete;

  // Run the full driving campaign (idempotent and safe to call from
  // several threads: the first call simulates, later calls return the same
  // result). The reference stays valid for the lifetime of the Campaign;
  // copy every sample vector only if you need it to outlive the instance.
  const CampaignResult& run();

  // Static measurements near the best high-speed-5G site of each major
  // city (skipping operator-city pairs without mmWave/mid-band, like the
  // study did). Cities fan out across workers; samples are merged in route
  // order so the result is independent of the jobs count.
  StaticBaseline run_static_baseline(ran::OperatorId op);

  // Worker threads used by run()/run_static_baseline. jobs <= 0 resolves
  // from WHEELS_JOBS (default 1). Changing it never changes results, only
  // wall-clock time.
  void set_jobs(int jobs);
  [[nodiscard]] int jobs() const { return jobs_; }

  // Select the batched structure-of-arrays replay kernel (the default) or
  // the original per-slot scalar path. Like the jobs count this is an
  // execution knob: both paths produce byte-identical results (pinned by
  // tests/test_replay_kernel.cpp). Resolved from WHEELS_REPLAY_KERNEL at
  // construction; call before run().
  void set_replay_kernel(bool enabled) { use_kernel_ = enabled; }
  [[nodiscard]] bool replay_kernel() const { return use_kernel_; }

  [[nodiscard]] const Route& route() const { return route_; }
  [[nodiscard]] const ran::Corridor& corridor() const { return corridor_; }
  [[nodiscard]] const ran::Deployment& deployment(ran::OperatorId op) const;

 private:
  struct PhoneSet;  // per-operator UEs + TCP flow + bookkeeping

  void replay_operator(PhoneSet& ph, const Trajectory& traj);
  void replay_bulk(PhoneSet& ph, const Trajectory& traj,
                   const TrajectorySegment& seg, TestType type);
  void replay_rtt(PhoneSet& ph, const Trajectory& traj,
                  const TrajectorySegment& seg);
  void replay_idle(PhoneSet& ph, const Trajectory& traj,
                   const TrajectorySegment& seg);
  // `batch`/`row`, when given, route the passive UE through the batched
  // step (geometry from the segment batch instead of per-slot lookups).
  void step_passive(PhoneSet& ph, const TrajectoryPoint& pt, Millis dt,
                    const ran::SegmentBatch* batch, std::size_t row);
  // Prepare the scratch batch for `seg` if the kernel is enabled and the
  // segment is non-empty; returns the batch to replay with, or nullptr
  // for the scalar path.
  const ran::SegmentBatch* maybe_batch(PhoneSet& ph, const Trajectory& traj,
                                       const TrajectorySegment& seg);

  CampaignConfig cfg_;
  Rng rng_;
  Route route_;
  ran::Corridor corridor_;
  ran::LoadRegime regime_;
  // Realized roster profiles, indexed like result_.logs. Declared before
  // deployments_/phones_: both keep pointers/references into this array.
  std::array<ran::OperatorProfile, 3> profiles_;
  std::array<std::unique_ptr<ran::Deployment>, 3> deployments_;
  net::ServerSelector servers_;
  TripSimulator trip_;
  std::vector<std::unique_ptr<PhoneSet>> phones_;
  CampaignResult result_;
  int jobs_ = 1;
  bool use_kernel_ = true;  // ctor resolves WHEELS_REPLAY_KERNEL
  std::mutex run_mu_;
  bool ran_ = false;
};

}  // namespace wheels::trip
