// Advances the vehicle along the route over the multi-day campaign.
//
// Each campaign day starts at 08:00 local time and covers a driving budget
// of ~9 hours; overnight the clock jumps to the next morning while the
// position holds. The simulator owns the speed process and reports
// (time, position, speed) points to whoever steps it (the campaign runner).
#pragma once

#include "core/rng.h"
#include "core/sim_time.h"
#include "core/units.h"
#include "ran/corridor.h"
#include "trip/route.h"
#include "trip/speed_profile.h"

namespace wheels::trip {

struct TripPoint {
  SimTime time;
  Meters position{0.0};
  Mph speed{0.0};
  int day = 1;
};

struct DriveConfig {
  double hours_per_day = 11.0;
  int start_hour_local = 8;
  SpeedTargets speed{};
};

class TripSimulator {
 public:
  TripSimulator(const Route& route, const ran::Corridor& corridor, Rng rng,
                DriveConfig cfg = DriveConfig{});

  // Advance by dt of driving time (handles the overnight jump internally).
  TripPoint advance(Millis dt);

  [[nodiscard]] const TripPoint& current() const { return point_; }
  [[nodiscard]] bool finished() const;
  [[nodiscard]] Millis total_drive_time() const { return drive_time_; }

 private:
  void start_day();

  const Route& route_;
  const ran::Corridor& corridor_;
  SpeedProfile speed_;
  DriveConfig cfg_;
  TripPoint point_;
  Millis driven_today_{0.0};
  Millis drive_time_{0.0};
};

}  // namespace wheels::trip
