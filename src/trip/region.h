// Builds the RAN corridor (environment + timezone segments) from the
// geographic route: urban cores around the major cities, suburban rings,
// additional small towns sprinkled along the highways, rural elsewhere.
#pragma once

#include "core/rng.h"
#include "ran/corridor.h"
#include "trip/route.h"

namespace wheels::trip {

struct RegionConfig {
  Meters urban_radius = Meters::from_kilometers(22.0);
  Meters suburban_radius = Meters::from_kilometers(55.0);
  // Small towns along the highway: mean spacing and suburban footprint.
  Meters town_spacing = Meters::from_kilometers(90.0);
  Meters town_radius = Meters::from_kilometers(6.0);
  Meters granularity = Meters::from_kilometers(2.0);
};

[[nodiscard]] ran::Corridor build_corridor(const Route& route, Rng rng,
                                           const RegionConfig& cfg = RegionConfig{});

}  // namespace wheels::trip
