// Vehicle speed model.
//
// Speed follows an Ornstein-Uhlenbeck process around an environment target
// (city traffic ~12 mph with stoplight stops, suburban ~38 mph, interstate
// ~70 mph) plus occasional slow-downs (congestion/construction). The three
// bins of the paper's analysis (0-20 / 20-60 / 60+ mph) map onto the three
// environments, which is exactly the proxy relationship §4.2 describes.
#pragma once

#include "core/rng.h"
#include "core/units.h"
#include "radio/pathloss.h"

namespace wheels::trip {

// Per-environment target speeds (and the hard cap) the OU process relaxes
// toward. Defaults reproduce the paper's drive; scenarios may override.
struct SpeedTargets {
  double urban_mph = 14.0;
  double suburban_mph = 38.0;
  double rural_mph = 70.0;
  double max_mph = 82.0;
};

class SpeedProfile {
 public:
  explicit SpeedProfile(Rng rng, SpeedTargets targets = SpeedTargets{});

  // Advance by dt within the given environment; returns the new speed.
  Mph step(radio::Environment env, Millis dt);

  [[nodiscard]] Mph current() const { return Mph{speed_mph_}; }

 private:
  [[nodiscard]] double target_mph(radio::Environment env) const;

  Rng rng_;
  SpeedTargets targets_;
  double speed_mph_ = 0.0;
  // Stop-and-go state (urban) and slow-down state (congestion anywhere).
  Millis stop_remaining_{0.0};
  Millis slowdown_remaining_{0.0};
  double slowdown_factor_ = 1.0;
};

}  // namespace wheels::trip
