#include "trip/replay_kernel.h"

#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace wheels::trip {
namespace {

// Batch preparation is wall-clock (scheduling-dependent); the slot count
// is a pure function of config + stride and must match across jobs.
struct KernelMetrics {
  obs::Counter& batch_us;
  obs::Counter& slots;
};

KernelMetrics& kernel_metrics() {
  // wheels-lint: allow(static-local)
  static KernelMetrics m{
      obs::Registry::global().counter("campaign.kernel.batch_us",
                                      obs::Det::WallClock),
      obs::Registry::global().counter("campaign.kernel.slots",
                                      obs::Det::Stable),
  };
  return m;
}

}  // namespace

bool replay_kernel_enabled_from_env() {
  const char* v = std::getenv("WHEELS_REPLAY_KERNEL");
  return v == nullptr || std::string_view(v) != "0";
}

void prepare_segment_batch(const Trajectory& traj, const TrajectorySegment& seg,
                           const ran::Deployment& dep,
                           const ran::OperatorProfile& profile,
                           ran::SegmentBatch& batch) {
  const std::int64_t start_ns = obs::now_ns();
  const std::size_t n = seg.end - seg.begin;
  batch.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TrajectoryPoint& pt = traj.points[seg.begin + i];
    batch.pos_m[i] = pt.position.value;
    batch.speed_mph[i] = pt.speed.value;
    batch.env[i] = pt.env;
    batch.tz[i] = pt.tz;
  }
  ran::fill_nearest_cells(dep, profile, batch);
  KernelMetrics& m = kernel_metrics();
  const std::int64_t d = obs::now_ns() - start_ns;
  m.batch_us.add(d > 0 ? static_cast<std::uint64_t>(d) / 1000 : 0);
  m.slots.add(n);
}

}  // namespace wheels::trip
