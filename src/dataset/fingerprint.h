// Stable content-address of a campaign configuration.
//
// Two configs with the same fingerprint produce bit-identical datasets
// (every stochastic process forks from cfg.seed), so the fingerprint is the
// cache key of the simulate -> analyze split. FNV-1a over the fields in a
// fixed declaration order; doubles are hashed by bit pattern, so -0.0 and
// 0.0 differ (harmless: both keys regenerate correctly).
//
// IMPORTANT: adding a field to CampaignConfig / AppCampaignConfig requires
// hashing it here AND bumping dataset::kSchemaVersion if the encoded result
// layout changed with it.
#pragma once

#include <cstdint>

#include "apps/app_campaign.h"
#include "trip/campaign.h"

namespace wheels::dataset {

[[nodiscard]] std::uint64_t fingerprint(const trip::CampaignConfig& cfg);
[[nodiscard]] std::uint64_t fingerprint(const apps::AppCampaignConfig& cfg);

// Static baselines never execute the strided drive loop, so their result is
// independent of cycle_stride: these variants hash with the stride zeroed,
// letting benches with different strides share one cached baseline.
[[nodiscard]] std::uint64_t fingerprint_static(
    const trip::CampaignConfig& cfg);
[[nodiscard]] std::uint64_t fingerprint_static(
    const apps::AppCampaignConfig& cfg);

}  // namespace wheels::dataset
