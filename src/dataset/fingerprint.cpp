#include "dataset/fingerprint.h"

#include <bit>

#include "scenario/spec.h"

namespace wheels::dataset {
namespace {

class FnvHasher {
 public:
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFFu;
      h_ *= 0x100000001B3ull;
    }
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void i32(int v) { u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }

  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ull;
};

// Domain tags keep the four key spaces disjoint even for configs whose
// hashed fields happen to collide (e.g. a CampaignConfig and an
// AppCampaignConfig sharing seed/stride).
constexpr std::uint64_t kTagCampaign = 0x77686C2D63616D70ull;     // "whl-camp"
constexpr std::uint64_t kTagAppCampaign = 0x77686C2D61707073ull;  // "whl-apps"

std::uint64_t hash_campaign(const trip::CampaignConfig& cfg, int stride) {
  FnvHasher h;
  h.u64(kTagCampaign);
  h.u64(cfg.seed);
  h.f64(cfg.slot.value);
  h.f64(cfg.tput_test_duration.value);
  h.f64(cfg.rtt_test_duration.value);
  h.f64(cfg.gap.value);
  h.f64(cfg.ping_interval.value);
  h.f64(cfg.sample_window.value);
  h.i32(stride);
  h.f64(cfg.drive.hours_per_day);
  h.i32(cfg.drive.start_hour_local);
  // Distinct scenarios (route, roster, bands, regime, app mix) must never
  // share a cache slot even when the derived timing fields coincide.
  h.u64(scenario::scenario_hash(cfg.spec));
  return h.value();
}

std::uint64_t hash_apps(const apps::AppCampaignConfig& cfg, int stride) {
  FnvHasher h;
  h.u64(kTagAppCampaign);
  h.u64(cfg.seed);
  h.i32(stride);
  h.f64(cfg.gap.value);
  h.f64(cfg.drive.hours_per_day);
  h.i32(cfg.drive.start_hour_local);
  h.u64(scenario::scenario_hash(cfg.spec));
  return h.value();
}

}  // namespace

std::uint64_t fingerprint(const trip::CampaignConfig& cfg) {
  return hash_campaign(cfg, cfg.cycle_stride);
}

std::uint64_t fingerprint(const apps::AppCampaignConfig& cfg) {
  return hash_apps(cfg, cfg.cycle_stride);
}

std::uint64_t fingerprint_static(const trip::CampaignConfig& cfg) {
  return hash_campaign(cfg, 0);
}

std::uint64_t fingerprint_static(const apps::AppCampaignConfig& cfg) {
  return hash_apps(cfg, 0);
}

}  // namespace wheels::dataset
