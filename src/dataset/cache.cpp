#include "dataset/cache.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wheels::dataset {
namespace {

namespace fs = std::filesystem;

// All Det::Stable: for a given cache state and workload, the set of load
// and store operations -- and the exact bytes moved -- is a pure function
// of the configs requested, independent of WHEELS_JOBS and scheduling.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& bytes_read;
  obs::Counter& bytes_written;
};

CacheMetrics& cache_metrics() {
  // wheels-lint: allow(static-local)
  static CacheMetrics m{
      obs::Registry::global().counter("dataset.cache.hits"),
      obs::Registry::global().counter("dataset.cache.misses"),
      obs::Registry::global().counter("dataset.cache.bytes_read"),
      obs::Registry::global().counter("dataset.cache.bytes_written"),
  };
  return m;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

std::string kind_slug(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::Campaign: return "campaign";
    case DatasetKind::StaticBaseline: return "static";
    case DatasetKind::AppCampaign: return "apps";
    case DatasetKind::AppStaticBaseline: return "apps-static";
  }
  return "unknown";
}

std::string op_slug(ran::OperatorId op) {
  switch (op) {
    case ran::OperatorId::Verizon: return "verizon";
    case ran::OperatorId::TMobile: return "tmobile";
    case ran::OperatorId::ATT: return "att";
  }
  return "op";
}

bool is_per_operator(DatasetKind kind) {
  return kind == DatasetKind::StaticBaseline ||
         kind == DatasetKind::AppStaticBaseline;
}

}  // namespace

std::string resolve_cache_dir(const std::string& dir) {
  if (!dir.empty()) return dir;
  if (const char* env = std::getenv("WHEELS_DATASET_DIR")) {
    if (*env != '\0') return env;
  }
  return "build/dataset-cache";
}

DatasetCache::DatasetCache(std::string dir)
    : dir_(resolve_cache_dir(dir)) {}

std::string DatasetCache::file_name(DatasetKind kind,
                                    std::uint64_t fingerprint,
                                    ran::OperatorId op) {
  std::string name = kind_slug(kind) + "-" + hex16(fingerprint);
  if (is_per_operator(kind)) name += "-" + op_slug(op);
  return name + ".wds";
}

std::string DatasetCache::path_for(DatasetKind kind, std::uint64_t fingerprint,
                                   ran::OperatorId op) const {
  return (fs::path(dir_) / file_name(kind, fingerprint, op)).string();
}

std::optional<std::string> DatasetCache::load(DatasetKind kind,
                                              std::uint64_t fingerprint,
                                              ran::OperatorId op) const {
  const obs::Span span("dataset.cache.load", "dataset");
  const std::string path = path_for(kind, fingerprint, op);
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    cache_metrics().misses.inc();
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  if (!is.good() && !is.eof()) {
    cache_metrics().misses.inc();
    return std::nullopt;
  }
  const std::string file = std::move(buf).str();
  const auto payload = unwrap_dataset(file, kind, fingerprint);
  if (!payload) {  // corrupt/stale: caller re-simulates
    cache_metrics().misses.inc();
    return std::nullopt;
  }
  cache_metrics().hits.inc();
  cache_metrics().bytes_read.add(file.size());
  return std::string(*payload);
}

std::optional<std::string> DatasetCache::store(DatasetKind kind,
                                               std::uint64_t fingerprint,
                                               ran::OperatorId op,
                                               std::string_view payload) const {
  const obs::Span span("dataset.cache.store", "dataset");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return std::nullopt;

  const std::string path = path_for(kind, fingerprint, op);
  // Per-process + per-call temp name so concurrent writers never interleave
  // into the same temp file; the final rename is atomic on POSIX. The atomic
  // is constant-initialised, so its magic-static guard never races.
  // wheels-lint: allow(static-local)
  static std::atomic<unsigned> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  const std::string file = wrap_dataset(kind, fingerprint, payload);
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return std::nullopt;
    os.write(file.data(), static_cast<std::streamsize>(file.size()));
    if (!os.good()) {
      os.close();
      fs::remove(tmp, ec);
      return std::nullopt;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return std::nullopt;
  }
  cache_metrics().bytes_written.add(file.size());
  return path;
}

}  // namespace wheels::dataset
