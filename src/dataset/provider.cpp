#include "dataset/provider.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/thread_pool.h"
#include "dataset/fingerprint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wheels::dataset {
namespace {

bool cache_disabled_by_env() {
  const char* env = std::getenv("WHEELS_DATASET_CACHE");
  return env != nullptr && std::string_view(env) == "0";
}

int op_index(ran::OperatorId op) { return static_cast<int>(op); }

// Mirrors of the per-provider member counters, aggregated process-wide so
// exporters and the bench metrics object can read them without a handle on
// the provider instance. All Det::Stable: resolution outcomes are a pure
// function of the requested configs and the cache state.
struct ProviderMetrics {
  obs::Counter& memo_hits;
  obs::Counter& disk_hits;
  obs::Counter& campaign_simulations;
  obs::Counter& baseline_simulations;
  obs::Counter& inflight_leaders;
  obs::Counter& inflight_joins;
};

ProviderMetrics& provider_metrics() {
  // wheels-lint: allow(static-local)
  static ProviderMetrics m{
      obs::Registry::global().counter("dataset.provider.memo_hits"),
      obs::Registry::global().counter("dataset.provider.disk_hits"),
      obs::Registry::global().counter("dataset.provider.campaign_simulations"),
      obs::Registry::global().counter("dataset.provider.baseline_simulations"),
      obs::Registry::global().counter("dataset.provider.inflight_leaders"),
      obs::Registry::global().counter("dataset.provider.inflight_joins"),
  };
  return m;
}

// Span around an actual simulation (the expensive branch of load_or_run*).
std::string simulate_span_name(DatasetKind kind) {
  std::string name = "dataset.simulate.";
  name += to_string(kind);
  return name;
}

}  // namespace

CampaignProvider::CampaignProvider(ProviderOptions opts)
    : cache_(opts.cache_dir),
      use_cache_(opts.use_cache && !cache_disabled_by_env()),
      verbose_(opts.verbose),
      memoize_(opts.memoize),
      jobs_(resolve_jobs(opts.jobs)) {}

CampaignProvider::~CampaignProvider() = default;

void CampaignProvider::set_jobs(int jobs) {
  const std::lock_guard<std::mutex> lock(mu_);
  jobs_ = resolve_jobs(jobs);
  for (auto& [fp, campaign] : campaigns_) campaign->set_jobs(jobs_);
}

void CampaignProvider::set_inflight_hook(InflightHook hook) {
  const std::lock_guard<std::mutex> lock(mu_);
  inflight_hook_ = std::move(hook);
}

trip::Campaign& CampaignProvider::campaign_for(
    const trip::CampaignConfig& cfg) {
  const std::uint64_t fp = fingerprint(cfg);
  auto it = campaigns_.find(fp);
  if (it == campaigns_.end()) {
    it = campaigns_.emplace(fp, std::make_unique<trip::Campaign>(cfg)).first;
    it->second->set_jobs(jobs_);
  }
  return *it->second;
}

void CampaignProvider::note(DatasetKind kind, std::uint64_t fp,
                            const char* source) const {
  if (!verbose_) return;
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fp));
  // One write per note: notes from concurrent workers must not interleave
  // mid-line on stderr.
  std::string line = "[dataset] ";
  line += to_string(kind);
  line += " ";
  line += hex;
  line += ": ";
  line += source;
  line += "\n";
  std::fputs(line.c_str(), stderr);
}

template <typename Result, typename Simulate>
std::shared_ptr<const Result> CampaignProvider::resolve_impl(
    Memo<Result>& memo, SingleFlight<Key, Result>& flights, DatasetKind kind,
    std::uint64_t fp, int opi, ran::OperatorId op, SimKind sim,
    Simulate simulate) {
  const Key key{fp, opi};
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = memo.find(key); it != memo.end()) {
      provider_metrics().memo_hits.inc();
      return it->second;
    }
  }

  auto compute = [&]() -> std::shared_ptr<const Result> {
    // Losing the pre-flight race (a previous leader retired its flight and
    // published to the memo between our memo miss and our flight insert)
    // must not re-resolve.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (const auto it = memo.find(key); it != memo.end()) {
        provider_metrics().memo_hits.inc();
        return it->second;
      }
    }
    if (use_cache_) {
      if (const auto payload = cache_.load(kind, fp, op)) {
        auto loaded = std::make_shared<Result>();
        if (decode(*payload, *loaded)) {
          const std::lock_guard<std::mutex> lock(mu_);
          ++disk_hits_;
          provider_metrics().disk_hits.inc();
          note(kind, fp, "cache hit");
          if (memoize_) memo.emplace(key, loaded);
          return loaded;
        }
      }
    }
    note(kind, fp, "simulating");
    std::shared_ptr<const Result> owned = [&] {
      const obs::Span span(simulate_span_name(kind), "dataset");
      return std::shared_ptr<const Result>(simulate());
    }();
    const std::lock_guard<std::mutex> lock(mu_);
    if (sim == SimKind::Campaign) {
      ++campaign_simulations_;
      provider_metrics().campaign_simulations.inc();
    } else {
      ++baseline_simulations_;
      provider_metrics().baseline_simulations.inc();
    }
    if (use_cache_) cache_.store(kind, fp, op, encode(*owned));
    if (memoize_) memo.emplace(key, owned);
    return owned;
  };

  return flights.resolve(
      key, compute,
      /*on_lead=*/
      [&] {
        InflightHook hook;
        {
          const std::lock_guard<std::mutex> lock(mu_);
          ++inflight_leaders_;
          hook = inflight_hook_;
        }
        provider_metrics().inflight_leaders.inc();
        if (hook) hook(kind, fp, /*joined=*/false);
      },
      /*on_join=*/
      [&] {
        InflightHook hook;
        {
          const std::lock_guard<std::mutex> lock(mu_);
          ++inflight_joins_;
          hook = inflight_hook_;
        }
        provider_metrics().inflight_joins.inc();
        if (hook) hook(kind, fp, /*joined=*/true);
      });
}

std::shared_ptr<const trip::CampaignResult> CampaignProvider::resolve(
    const trip::CampaignConfig& cfg) {
  const std::uint64_t fp = fingerprint(cfg);
  return resolve_impl(
      results_, result_flights_, DatasetKind::Campaign, fp, 0,
      ran::OperatorId::Verizon, SimKind::Campaign, [&] {
        std::unique_ptr<trip::Campaign> local;
        trip::Campaign* campaign = nullptr;
        {
          const std::lock_guard<std::mutex> lock(mu_);
          if (memoize_) {
            campaign = &campaign_for(cfg);
          } else {
            local = std::make_unique<trip::Campaign>(cfg);
            local->set_jobs(jobs_);
            campaign = local.get();
          }
        }
        return std::make_shared<trip::CampaignResult>(campaign->run());
      });
}

std::shared_ptr<const trip::StaticBaseline> CampaignProvider::resolve_static(
    const trip::CampaignConfig& cfg, ran::OperatorId op) {
  const std::uint64_t fp = fingerprint_static(cfg);
  return resolve_impl(
      baselines_, baseline_flights_, DatasetKind::StaticBaseline, fp,
      op_index(op), op, SimKind::Baseline, [&] {
        std::unique_ptr<trip::Campaign> local;
        trip::Campaign* campaign = nullptr;
        {
          const std::lock_guard<std::mutex> lock(mu_);
          if (memoize_) {
            campaign = &campaign_for(cfg);
          } else {
            local = std::make_unique<trip::Campaign>(cfg);
            local->set_jobs(jobs_);
            campaign = local.get();
          }
        }
        return std::make_shared<trip::StaticBaseline>(
            campaign->run_static_baseline(op));
      });
}

std::shared_ptr<const apps::AppCampaignResult> CampaignProvider::resolve_apps(
    const apps::AppCampaignConfig& cfg) {
  const std::uint64_t fp = fingerprint(cfg);
  return resolve_impl(
      app_results_, app_result_flights_, DatasetKind::AppCampaign, fp, 0,
      ran::OperatorId::Verizon, SimKind::Campaign, [&] {
        apps::AppCampaign campaign(cfg);
        return std::make_shared<apps::AppCampaignResult>(campaign.run());
      });
}

std::shared_ptr<const std::vector<apps::AppRunRecord>>
CampaignProvider::resolve_apps_static(const apps::AppCampaignConfig& cfg,
                                      ran::OperatorId op) {
  const std::uint64_t fp = fingerprint_static(cfg);
  return resolve_impl(
      app_baselines_, app_baseline_flights_, DatasetKind::AppStaticBaseline,
      fp, op_index(op), op, SimKind::Baseline, [&] {
        apps::AppCampaign campaign(cfg);
        return std::make_shared<std::vector<apps::AppRunRecord>>(
            campaign.run_static_baseline(op));
      });
}

const trip::CampaignResult& CampaignProvider::load_or_run(
    const trip::CampaignConfig& cfg) {
  auto ptr = resolve(cfg);
  const Key key{fingerprint(cfg), 0};
  // Pin in the memo regardless of memoize_ so the reference stays valid
  // for the provider's lifetime (first insert wins; same bytes either way).
  const std::lock_guard<std::mutex> lock(mu_);
  return *results_.emplace(key, std::move(ptr)).first->second;
}

const trip::StaticBaseline& CampaignProvider::load_or_run_static(
    const trip::CampaignConfig& cfg, ran::OperatorId op) {
  auto ptr = resolve_static(cfg, op);
  const Key key{fingerprint_static(cfg), op_index(op)};
  const std::lock_guard<std::mutex> lock(mu_);
  return *baselines_.emplace(key, std::move(ptr)).first->second;
}

const apps::AppCampaignResult& CampaignProvider::load_or_run_apps(
    const apps::AppCampaignConfig& cfg) {
  auto ptr = resolve_apps(cfg);
  const Key key{fingerprint(cfg), 0};
  const std::lock_guard<std::mutex> lock(mu_);
  return *app_results_.emplace(key, std::move(ptr)).first->second;
}

const std::vector<apps::AppRunRecord>&
CampaignProvider::load_or_run_apps_static(const apps::AppCampaignConfig& cfg,
                                          ran::OperatorId op) {
  auto ptr = resolve_apps_static(cfg, op);
  const Key key{fingerprint_static(cfg), op_index(op)};
  const std::lock_guard<std::mutex> lock(mu_);
  return *app_baselines_.emplace(key, std::move(ptr)).first->second;
}

}  // namespace wheels::dataset
