#include "dataset/provider.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/thread_pool.h"
#include "dataset/fingerprint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wheels::dataset {
namespace {

bool cache_disabled_by_env() {
  const char* env = std::getenv("WHEELS_DATASET_CACHE");
  return env != nullptr && std::string_view(env) == "0";
}

int op_index(ran::OperatorId op) { return static_cast<int>(op); }

// Mirrors of the per-provider member counters, aggregated process-wide so
// exporters and the bench metrics object can read them without a handle on
// the provider instance. All Det::Stable: resolution outcomes are a pure
// function of the requested configs and the cache state.
struct ProviderMetrics {
  obs::Counter& memo_hits;
  obs::Counter& disk_hits;
  obs::Counter& campaign_simulations;
  obs::Counter& baseline_simulations;
};

ProviderMetrics& provider_metrics() {
  // wheels-lint: allow(static-local)
  static ProviderMetrics m{
      obs::Registry::global().counter("dataset.provider.memo_hits"),
      obs::Registry::global().counter("dataset.provider.disk_hits"),
      obs::Registry::global().counter("dataset.provider.campaign_simulations"),
      obs::Registry::global().counter("dataset.provider.baseline_simulations"),
  };
  return m;
}

// Span around an actual simulation (the expensive branch of load_or_run*).
std::string simulate_span_name(DatasetKind kind) {
  std::string name = "dataset.simulate.";
  name += to_string(kind);
  return name;
}

}  // namespace

CampaignProvider::CampaignProvider(ProviderOptions opts)
    : cache_(opts.cache_dir),
      use_cache_(opts.use_cache && !cache_disabled_by_env()),
      verbose_(opts.verbose),
      jobs_(resolve_jobs(opts.jobs)) {}

CampaignProvider::~CampaignProvider() = default;

void CampaignProvider::set_jobs(int jobs) {
  const std::lock_guard<std::mutex> lock(mu_);
  jobs_ = resolve_jobs(jobs);
  for (auto& [fp, campaign] : campaigns_) campaign->set_jobs(jobs_);
}

trip::Campaign& CampaignProvider::campaign_for(
    const trip::CampaignConfig& cfg) {
  const std::uint64_t fp = fingerprint(cfg);
  auto it = campaigns_.find(fp);
  if (it == campaigns_.end()) {
    it = campaigns_.emplace(fp, std::make_unique<trip::Campaign>(cfg)).first;
    it->second->set_jobs(jobs_);
  }
  return *it->second;
}

void CampaignProvider::note(DatasetKind kind, std::uint64_t fp,
                            const char* source) const {
  if (!verbose_) return;
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fp));
  // One write per note: notes from concurrent workers must not interleave
  // mid-line on stderr.
  std::string line = "[dataset] ";
  line += to_string(kind);
  line += " ";
  line += hex;
  line += ": ";
  line += source;
  line += "\n";
  std::fputs(line.c_str(), stderr);
}

const trip::CampaignResult& CampaignProvider::load_or_run(
    const trip::CampaignConfig& cfg) {
  const std::uint64_t fp = fingerprint(cfg);
  const auto key = std::make_pair(fp, 0);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = results_.find(key); it != results_.end()) {
      provider_metrics().memo_hits.inc();
      return *it->second;
    }
  }

  if (use_cache_) {
    if (const auto payload = cache_.load(DatasetKind::Campaign, fp,
                                         ran::OperatorId::Verizon)) {
      auto loaded = std::make_unique<trip::CampaignResult>();
      if (decode(*payload, *loaded)) {
        const std::lock_guard<std::mutex> lock(mu_);
        const auto [it, inserted] = results_.emplace(key, std::move(loaded));
        if (inserted) {
          ++disk_hits_;
          provider_metrics().disk_hits.inc();
          note(DatasetKind::Campaign, fp, "cache hit");
        }
        return *it->second;
      }
    }
  }

  trip::Campaign* campaign = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    campaign = &campaign_for(cfg);
  }
  note(DatasetKind::Campaign, fp, "simulating");
  // Simulate outside the lock so distinct keys overlap; Campaign::run is
  // itself idempotent, so a same-key race costs a copy, not a re-run.
  auto owned = [&] {
    const obs::Span span(simulate_span_name(DatasetKind::Campaign), "dataset");
    return std::make_unique<trip::CampaignResult>(campaign->run());
  }();

  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = results_.emplace(key, std::move(owned));
  if (inserted) {
    ++campaign_simulations_;
    provider_metrics().campaign_simulations.inc();
    if (use_cache_) {
      cache_.store(DatasetKind::Campaign, fp, ran::OperatorId::Verizon,
                   encode(*it->second));
    }
  }
  return *it->second;
}

const trip::StaticBaseline& CampaignProvider::load_or_run_static(
    const trip::CampaignConfig& cfg, ran::OperatorId op) {
  const std::uint64_t fp = fingerprint_static(cfg);
  const auto key = std::make_pair(fp, op_index(op));
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = baselines_.find(key); it != baselines_.end()) {
      provider_metrics().memo_hits.inc();
      return *it->second;
    }
  }

  if (use_cache_) {
    if (const auto payload =
            cache_.load(DatasetKind::StaticBaseline, fp, op)) {
      auto loaded = std::make_unique<trip::StaticBaseline>();
      if (decode(*payload, *loaded)) {
        const std::lock_guard<std::mutex> lock(mu_);
        const auto [it, inserted] = baselines_.emplace(key, std::move(loaded));
        if (inserted) {
          ++disk_hits_;
          provider_metrics().disk_hits.inc();
          note(DatasetKind::StaticBaseline, fp, "cache hit");
        }
        return *it->second;
      }
    }
  }

  trip::Campaign* campaign = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    campaign = &campaign_for(cfg);
  }
  note(DatasetKind::StaticBaseline, fp, "simulating");
  auto owned = [&] {
    const obs::Span span(simulate_span_name(DatasetKind::StaticBaseline),
                         "dataset");
    return std::make_unique<trip::StaticBaseline>(
        campaign->run_static_baseline(op));
  }();

  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = baselines_.emplace(key, std::move(owned));
  if (inserted) {
    ++baseline_simulations_;
    provider_metrics().baseline_simulations.inc();
    if (use_cache_) {
      cache_.store(DatasetKind::StaticBaseline, fp, op, encode(*it->second));
    }
  }
  return *it->second;
}

const apps::AppCampaignResult& CampaignProvider::load_or_run_apps(
    const apps::AppCampaignConfig& cfg) {
  const std::uint64_t fp = fingerprint(cfg);
  const auto key = std::make_pair(fp, 0);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = app_results_.find(key); it != app_results_.end()) {
      provider_metrics().memo_hits.inc();
      return *it->second;
    }
  }

  if (use_cache_) {
    if (const auto payload = cache_.load(DatasetKind::AppCampaign, fp,
                                         ran::OperatorId::Verizon)) {
      auto loaded = std::make_unique<apps::AppCampaignResult>();
      if (decode(*payload, *loaded)) {
        const std::lock_guard<std::mutex> lock(mu_);
        const auto [it, inserted] =
            app_results_.emplace(key, std::move(loaded));
        if (inserted) {
          ++disk_hits_;
          provider_metrics().disk_hits.inc();
          note(DatasetKind::AppCampaign, fp, "cache hit");
        }
        return *it->second;
      }
    }
  }

  note(DatasetKind::AppCampaign, fp, "simulating");
  apps::AppCampaign campaign(cfg);
  auto owned = [&] {
    const obs::Span span(simulate_span_name(DatasetKind::AppCampaign),
                         "dataset");
    return std::make_unique<apps::AppCampaignResult>(campaign.run());
  }();

  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = app_results_.emplace(key, std::move(owned));
  if (inserted) {
    ++campaign_simulations_;
    provider_metrics().campaign_simulations.inc();
    if (use_cache_) {
      cache_.store(DatasetKind::AppCampaign, fp, ran::OperatorId::Verizon,
                   encode(*it->second));
    }
  }
  return *it->second;
}

const std::vector<apps::AppRunRecord>&
CampaignProvider::load_or_run_apps_static(const apps::AppCampaignConfig& cfg,
                                          ran::OperatorId op) {
  const std::uint64_t fp = fingerprint_static(cfg);
  const auto key = std::make_pair(fp, op_index(op));
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = app_baselines_.find(key); it != app_baselines_.end()) {
      provider_metrics().memo_hits.inc();
      return *it->second;
    }
  }

  if (use_cache_) {
    if (const auto payload =
            cache_.load(DatasetKind::AppStaticBaseline, fp, op)) {
      auto loaded = std::make_unique<std::vector<apps::AppRunRecord>>();
      if (decode(*payload, *loaded)) {
        const std::lock_guard<std::mutex> lock(mu_);
        const auto [it, inserted] =
            app_baselines_.emplace(key, std::move(loaded));
        if (inserted) {
          ++disk_hits_;
          provider_metrics().disk_hits.inc();
          note(DatasetKind::AppStaticBaseline, fp, "cache hit");
        }
        return *it->second;
      }
    }
  }

  note(DatasetKind::AppStaticBaseline, fp, "simulating");
  apps::AppCampaign campaign(cfg);
  auto owned = [&] {
    const obs::Span span(simulate_span_name(DatasetKind::AppStaticBaseline),
                         "dataset");
    return std::make_unique<std::vector<apps::AppRunRecord>>(
        campaign.run_static_baseline(op));
  }();

  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = app_baselines_.emplace(key, std::move(owned));
  if (inserted) {
    ++baseline_simulations_;
    provider_metrics().baseline_simulations.inc();
    if (use_cache_) {
      cache_.store(DatasetKind::AppStaticBaseline, fp, op, encode(*it->second));
    }
  }
  return *it->second;
}

}  // namespace wheels::dataset
