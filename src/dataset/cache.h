// Content-addressed on-disk cache of serialized campaign datasets.
//
// Files are keyed by dataset kind + config fingerprint (+ operator for the
// per-operator baselines): `campaign-<fp>.wds`, `static-<fp>-tmobile.wds`.
// Writes go to a per-process temp name and are renamed into place, so
// concurrent producers (parallel ctest smoke runs) race benignly: the last
// atomic rename wins and every reader sees either a complete file or none.
// Loads validate the container header + checksum and treat any mismatch as
// a miss, so a corrupt or truncated file degrades to re-simulation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "dataset/serialize.h"
#include "ran/operator_profile.h"

namespace wheels::dataset {

// Resolution order: explicit `dir` argument, then the WHEELS_DATASET_DIR
// environment variable, then "build/dataset-cache" relative to the CWD.
[[nodiscard]] std::string resolve_cache_dir(const std::string& dir);

class DatasetCache {
 public:
  explicit DatasetCache(std::string dir = "");

  [[nodiscard]] const std::string& dir() const { return dir_; }

  // File name (without directory) for a cache entry. `op` is ignored for
  // the whole-campaign kinds.
  [[nodiscard]] static std::string file_name(DatasetKind kind,
                                             std::uint64_t fingerprint,
                                             ran::OperatorId op);

  [[nodiscard]] std::string path_for(DatasetKind kind,
                                     std::uint64_t fingerprint,
                                     ran::OperatorId op) const;

  // Load + validate an entry; nullopt on miss, corruption, version or
  // fingerprint mismatch. Returns the raw payload (serialize.h decodes it).
  [[nodiscard]] std::optional<std::string> load(DatasetKind kind,
                                                std::uint64_t fingerprint,
                                                ran::OperatorId op) const;

  // Atomically persist an encoded payload; returns the final path, or
  // nullopt when the directory or file could not be written (cache is
  // best-effort: simulation results are still served from memory).
  std::optional<std::string> store(DatasetKind kind, std::uint64_t fingerprint,
                                   ran::OperatorId op,
                                   std::string_view payload) const;

 private:
  std::string dir_;
};

}  // namespace wheels::dataset
