// CampaignProvider: the simulate -> dataset -> analyze seam.
//
// Every figure/table printer used to re-simulate the whole 8-day campaign;
// the provider instead serves datasets content-addressed by the config
// fingerprint, in resolution order:
//
//   1. in-memory memo (one process asking twice pays nothing),
//   2. on-disk cache (WHEELS_DATASET_DIR, default build/dataset-cache/),
//   3. fresh simulation (result is persisted back to the cache).
//
// A warm cache therefore turns `for b in build/bench/*; do $b; done` from
// ~20 campaign simulations into at most 2 (measurement + apps), with
// bit-identical outputs either way. simulations-run counters expose the
// distinction for tests and for the EXPERIMENTS.md measurement.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "apps/app_campaign.h"
#include "dataset/cache.h"
#include "trip/campaign.h"

namespace wheels::dataset {

struct ProviderOptions {
  // Cache directory; empty resolves via WHEELS_DATASET_DIR then the
  // build/dataset-cache default (see resolve_cache_dir).
  std::string cache_dir;
  // Disk cache on/off; additionally forced off by WHEELS_DATASET_CACHE=0
  // in the environment. The in-memory memo is always on.
  bool use_cache = true;
  // Provenance notes ("[dataset] campaign ... cache hit") on stderr.
  // Figures go to stdout, so cached and fresh runs stay byte-identical
  // where it matters.
  bool verbose = false;
  // Worker threads handed to every Campaign this provider builds (replay
  // and per-city baseline fan-out). <= 0 resolves from WHEELS_JOBS. Never
  // part of the fingerprint: jobs changes wall-clock, not bytes.
  int jobs = 0;
};

class CampaignProvider {
 public:
  explicit CampaignProvider(ProviderOptions opts = ProviderOptions{});
  ~CampaignProvider();

  CampaignProvider(const CampaignProvider&) = delete;
  CampaignProvider& operator=(const CampaignProvider&) = delete;

  // The load_or_run* methods are safe to call from several threads (the
  // tools materialize the campaign and all static baselines concurrently);
  // concurrent requests for the same key simulate at most once.
  const trip::CampaignResult& load_or_run(const trip::CampaignConfig& cfg);
  const trip::StaticBaseline& load_or_run_static(
      const trip::CampaignConfig& cfg, ran::OperatorId op);
  const apps::AppCampaignResult& load_or_run_apps(
      const apps::AppCampaignConfig& cfg);
  const std::vector<apps::AppRunRecord>& load_or_run_apps_static(
      const apps::AppCampaignConfig& cfg, ran::OperatorId op);

  // Re-resolve the worker count (jobs <= 0 reads WHEELS_JOBS); applies to
  // existing memoized Campaigns as well as future ones.
  void set_jobs(int jobs);
  [[nodiscard]] int jobs() const { return jobs_; }

  // Full-drive campaign simulations executed by this provider (measurement
  // and app campaigns both count; cache/memo hits do not).
  [[nodiscard]] int campaign_simulations() const {
    return campaign_simulations_;
  }
  // Per-city static-baseline simulations executed (per operator).
  [[nodiscard]] int baseline_simulations() const {
    return baseline_simulations_;
  }
  [[nodiscard]] int disk_hits() const { return disk_hits_; }

  [[nodiscard]] const DatasetCache& cache() const { return cache_; }
  [[nodiscard]] bool cache_enabled() const { return use_cache_; }

 private:
  template <typename Result>
  using Memo = std::map<std::pair<std::uint64_t, int>,
                        std::unique_ptr<Result>>;

  // Memoized Campaign instance per full-config fingerprint, so a bench
  // needing both baselines and the drive builds the corridor/deployments
  // once. Callers must hold mu_.
  trip::Campaign& campaign_for(const trip::CampaignConfig& cfg);

  void note(DatasetKind kind, std::uint64_t fp, const char* source) const;

  DatasetCache cache_;
  bool use_cache_;
  bool verbose_;
  int jobs_ = 1;
  int campaign_simulations_ = 0;
  int baseline_simulations_ = 0;
  int disk_hits_ = 0;

  // Guards the memo maps, the Campaign table, and the counters. Never held
  // across a simulation: concurrent distinct-key requests simulate in
  // parallel, and same-key losers discard their copy at emplace time.
  std::mutex mu_;

  std::map<std::uint64_t, std::unique_ptr<trip::Campaign>> campaigns_;
  Memo<trip::CampaignResult> results_;
  Memo<trip::StaticBaseline> baselines_;
  Memo<apps::AppCampaignResult> app_results_;
  Memo<std::vector<apps::AppRunRecord>> app_baselines_;
};

}  // namespace wheels::dataset
