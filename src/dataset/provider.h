// CampaignProvider: the simulate -> dataset -> analyze seam.
//
// Every figure/table printer used to re-simulate the whole 8-day campaign;
// the provider instead serves datasets content-addressed by the config
// fingerprint, in resolution order:
//
//   1. in-memory memo (one process asking twice pays nothing),
//   2. on-disk cache (WHEELS_DATASET_DIR, default build/dataset-cache/),
//   3. fresh simulation (result is persisted back to the cache).
//
// A warm cache therefore turns `for b in build/bench/*; do $b; done` from
// ~20 campaign simulations into at most 2 (measurement + apps), with
// bit-identical outputs either way. simulations-run counters expose the
// distinction for tests and for the EXPERIMENTS.md measurement.
//
// Concurrent requests for one key are single-flighted through a keyed
// in-flight table (core/singleflight.h): the first request simulates, the
// rest wait on its future and share the result. The serve daemon builds on
// this to guarantee a thundering herd on one cold fingerprint simulates
// exactly once, with memoize=false so residency is owned by its LRU store
// rather than this process-lifetime memo.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "apps/app_campaign.h"
#include "core/singleflight.h"
#include "dataset/cache.h"
#include "trip/campaign.h"

namespace wheels::dataset {

struct ProviderOptions {
  // Cache directory; empty resolves via WHEELS_DATASET_DIR then the
  // build/dataset-cache default (see resolve_cache_dir).
  std::string cache_dir;
  // Disk cache on/off; additionally forced off by WHEELS_DATASET_CACHE=0
  // in the environment. The in-memory memo is always on.
  bool use_cache = true;
  // Provenance notes ("[dataset] campaign ... cache hit") on stderr.
  // Figures go to stdout, so cached and fresh runs stay byte-identical
  // where it matters.
  bool verbose = false;
  // Worker threads handed to every Campaign this provider builds (replay
  // and per-city baseline fan-out). <= 0 resolves from WHEELS_JOBS. Never
  // part of the fingerprint: jobs changes wall-clock, not bytes.
  int jobs = 0;
  // Pin every resolved dataset in the process-lifetime memo. The
  // figure/bench tools want this (ask twice, pay nothing, references stay
  // stable); the serve daemon turns it off and owns residency in its
  // LRU-bounded store instead. The reference-returning load_or_run* API
  // pins its results regardless of this flag, so references never dangle.
  bool memoize = true;
};

class CampaignProvider {
 public:
  explicit CampaignProvider(ProviderOptions opts = ProviderOptions{});
  ~CampaignProvider();

  CampaignProvider(const CampaignProvider&) = delete;
  CampaignProvider& operator=(const CampaignProvider&) = delete;

  // Shared-ownership resolution. Safe to call from several threads;
  // concurrent requests for one key are single-flighted (exactly one
  // simulation, the rest join the in-flight computation and share its
  // result). With memoize=false the returned shared_ptr is the only
  // ownership handle once the flight retires.
  std::shared_ptr<const trip::CampaignResult> resolve(
      const trip::CampaignConfig& cfg);
  std::shared_ptr<const trip::StaticBaseline> resolve_static(
      const trip::CampaignConfig& cfg, ran::OperatorId op);
  std::shared_ptr<const apps::AppCampaignResult> resolve_apps(
      const apps::AppCampaignConfig& cfg);
  std::shared_ptr<const std::vector<apps::AppRunRecord>> resolve_apps_static(
      const apps::AppCampaignConfig& cfg, ran::OperatorId op);

  // Reference-returning conveniences over resolve*. They pin the result in
  // the memo (even with memoize=false) so the reference stays valid for
  // the provider's lifetime.
  const trip::CampaignResult& load_or_run(const trip::CampaignConfig& cfg);
  const trip::StaticBaseline& load_or_run_static(
      const trip::CampaignConfig& cfg, ran::OperatorId op);
  const apps::AppCampaignResult& load_or_run_apps(
      const apps::AppCampaignConfig& cfg);
  const std::vector<apps::AppRunRecord>& load_or_run_apps_static(
      const apps::AppCampaignConfig& cfg, ran::OperatorId op);

  // Re-resolve the worker count (jobs <= 0 reads WHEELS_JOBS); applies to
  // existing memoized Campaigns as well as future ones.
  void set_jobs(int jobs);
  [[nodiscard]] int jobs() const { return jobs_; }

  // Full-drive campaign simulations executed by this provider (measurement
  // and app campaigns both count; cache/memo hits do not).
  [[nodiscard]] int campaign_simulations() const {
    return campaign_simulations_;
  }
  // Per-city static-baseline simulations executed (per operator).
  [[nodiscard]] int baseline_simulations() const {
    return baseline_simulations_;
  }
  [[nodiscard]] int disk_hits() const { return disk_hits_; }
  // Flights led (one per cold resolution) and flights joined (waiters that
  // shared an in-progress computation instead of re-resolving).
  [[nodiscard]] int inflight_leaders() const { return inflight_leaders_; }
  [[nodiscard]] int inflight_joins() const { return inflight_joins_; }

  // Observation hook for cross-request single-flight, called outside the
  // provider lock: once per leader (joined=false) before it resolves, and
  // once per waiter (joined=true) before it blocks on the flight. Tests
  // latch the leader in here until the expected waiters have joined,
  // making the herd assertion deterministic. Set before concurrent use.
  using InflightHook =
      std::function<void(DatasetKind kind, std::uint64_t fp, bool joined)>;
  void set_inflight_hook(InflightHook hook);

  [[nodiscard]] const DatasetCache& cache() const { return cache_; }
  [[nodiscard]] bool cache_enabled() const { return use_cache_; }

 private:
  // (fingerprint, operator index) -- operator index is 0 for whole-drive
  // datasets, the OperatorId for per-operator baselines.
  using Key = std::pair<std::uint64_t, int>;
  template <typename Result>
  using Memo = std::map<Key, std::shared_ptr<const Result>>;

  enum class SimKind : std::uint8_t { Campaign, Baseline };

  // Shared memo -> disk -> single-flight-simulate resolution; `simulate`
  // runs outside mu_ inside the flight.
  template <typename Result, typename Simulate>
  std::shared_ptr<const Result> resolve_impl(
      Memo<Result>& memo, SingleFlight<Key, Result>& flights,
      DatasetKind kind, std::uint64_t fp, int opi, ran::OperatorId op,
      SimKind sim, Simulate simulate);

  // Memoized Campaign instance per full-config fingerprint, so a bench
  // needing both baselines and the drive builds the corridor/deployments
  // once. Callers must hold mu_.
  trip::Campaign& campaign_for(const trip::CampaignConfig& cfg);

  void note(DatasetKind kind, std::uint64_t fp, const char* source) const;

  DatasetCache cache_;
  bool use_cache_;
  bool verbose_;
  bool memoize_;
  int jobs_ = 1;
  int campaign_simulations_ = 0;
  int baseline_simulations_ = 0;
  int disk_hits_ = 0;
  int inflight_leaders_ = 0;
  int inflight_joins_ = 0;
  InflightHook inflight_hook_;

  // Guards the memo maps, the Campaign table, and the counters. Never held
  // across a simulation: concurrent distinct-key requests simulate in
  // parallel, and same-key requests coalesce in the flight tables below.
  std::mutex mu_;

  std::map<std::uint64_t, std::unique_ptr<trip::Campaign>> campaigns_;
  Memo<trip::CampaignResult> results_;
  Memo<trip::StaticBaseline> baselines_;
  Memo<apps::AppCampaignResult> app_results_;
  Memo<std::vector<apps::AppRunRecord>> app_baselines_;

  SingleFlight<Key, trip::CampaignResult> result_flights_;
  SingleFlight<Key, trip::StaticBaseline> baseline_flights_;
  SingleFlight<Key, apps::AppCampaignResult> app_result_flights_;
  SingleFlight<Key, std::vector<apps::AppRunRecord>> app_baseline_flights_;
};

}  // namespace wheels::dataset
