// Versioned binary (de)serialization for campaign datasets.
//
// The simulate -> analyze split hinges on a stable on-disk form of every
// record the campaign produces (mirroring the study's consolidated XCAL
// database): a fixed little-endian field-by-field encoding wrapped in a
// self-describing container header (magic, schema version, dataset kind,
// config fingerprint, payload checksum). Readers are fully bounds-checked
// and reject any file whose header, length, or checksum disagrees with the
// payload, so a corrupt or stale cache entry degrades to re-simulation,
// never to a wrong figure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "apps/app_campaign.h"
#include "trip/campaign.h"

namespace wheels::dataset {

// Bump whenever the encoded layout of any record changes, or when the
// simulation bytes change for an unchanged fingerprint (v2: per-city ping
// RNG streams in the static baseline). Readers reject files written under
// a different version (no migration: datasets are cheap to regenerate from
// the seed). Both pins are registered in tools/contracts.json -- bump the
// registry (with a fresh golden) in the same change, or the
// wheels-contract schema-pin rule fails CI.
inline constexpr std::uint32_t kSchemaVersion = 2;

inline constexpr std::string_view kMagic = "WDS1";

enum class DatasetKind : std::uint8_t {
  Campaign = 1,          // trip::CampaignResult
  StaticBaseline = 2,    // trip::StaticBaseline (one operator)
  AppCampaign = 3,       // apps::AppCampaignResult
  AppStaticBaseline = 4  // std::vector<apps::AppRunRecord> (one operator)
};

[[nodiscard]] std::string_view to_string(DatasetKind k);

struct DatasetHeader {
  std::uint32_t version = 0;
  DatasetKind kind = DatasetKind::Campaign;
  std::uint64_t fingerprint = 0;  // of the producing config (fingerprint.h)
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;  // FNV-1a over the payload bytes
};

// FNV-1a 64-bit over a byte range (also the checksum used in headers).
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes);

// --- payload encoding -------------------------------------------------------
[[nodiscard]] std::string encode(const trip::CampaignResult& r);
[[nodiscard]] std::string encode(const trip::StaticBaseline& b);
[[nodiscard]] std::string encode(const apps::AppCampaignResult& r);
[[nodiscard]] std::string encode(const std::vector<apps::AppRunRecord>& runs);

// Decoders return false (leaving `out` unspecified) on any malformed,
// truncated, or out-of-range input.
[[nodiscard]] bool decode(std::string_view payload, trip::CampaignResult& out);
[[nodiscard]] bool decode(std::string_view payload, trip::StaticBaseline& out);
[[nodiscard]] bool decode(std::string_view payload,
                          apps::AppCampaignResult& out);
[[nodiscard]] bool decode(std::string_view payload,
                          std::vector<apps::AppRunRecord>& out);

// --- container --------------------------------------------------------------
// Prepend the header to an encoded payload, producing the full file image.
[[nodiscard]] std::string wrap_dataset(DatasetKind kind,
                                       std::uint64_t fingerprint,
                                       std::string_view payload);

// Parse just the header (for `wheels_campaign info`); nullopt when the file
// is too short or the magic/version tag is unrecognisable.
[[nodiscard]] std::optional<DatasetHeader> parse_header(std::string_view file);

// Validate the container end-to-end (magic, version, kind, fingerprint,
// length, checksum) and return a view of the payload. `expected_fingerprint`
// of 0 skips the fingerprint match (any config accepted).
[[nodiscard]] std::optional<std::string_view> unwrap_dataset(
    std::string_view file, DatasetKind expected_kind,
    std::uint64_t expected_fingerprint);

}  // namespace wheels::dataset
