#include "dataset/serialize.h"

#include <bit>
#include <cstddef>
#include <limits>

namespace wheels::dataset {
namespace {

// Fixed little-endian byte order, independent of the host, so datasets are
// portable between machines (and checksums comparable in CI).
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      u8(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      u8(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
    }
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(int v) { i64(v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void size(std::size_t n) { u64(static_cast<std::uint64_t>(n)); }

  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    if (pos_ >= data_.size()) {
      fail_ = true;
      return 0;
    }
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    }
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    }
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  int i32() {
    const std::int64_t v = i64();
    if (v < std::numeric_limits<int>::min() ||
        v > std::numeric_limits<int>::max()) {
      fail_ = true;
      return 0;
    }
    return static_cast<int>(v);
  }

  double f64() { return std::bit_cast<double>(u64()); }

  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) fail_ = true;
    return v == 1;
  }

  // Element counts are sanity-capped against the remaining bytes: each
  // element takes at least `min_elem_bytes`, so a length prefix implying
  // more data than the buffer holds is rejected immediately (instead of
  // attempting a multi-gigabyte reserve on a corrupt file).
  std::size_t size(std::size_t min_elem_bytes) {
    const std::uint64_t n = u64();
    const std::size_t left = data_.size() - std::min(pos_, data_.size());
    if (min_elem_bytes > 0 && n > left / min_elem_bytes) {
      fail_ = true;
      return 0;
    }
    return static_cast<std::size_t>(n);
  }

  // Enum decoded from u8, validated against the inclusive max value.
  template <typename E>
  E enum8(std::uint8_t max_value) {
    const std::uint8_t v = u8();
    if (v > max_value) fail_ = true;
    return static_cast<E>(v);
  }

  [[nodiscard]] bool failed() const { return fail_; }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

// Inclusive max underlying values of the enums that appear in records.
constexpr std::uint8_t kMaxTestType = 2;    // trip::TestType::Ping
constexpr std::uint8_t kMaxOperator = 2;    // ran::OperatorId::ATT
constexpr std::uint8_t kMaxTimeZone = 3;    // TimeZone::Eastern
constexpr std::uint8_t kMaxEnvironment = 2; // radio::Environment::Rural
constexpr std::uint8_t kMaxTech = 4;        // radio::Tech::NR_MMWAVE
constexpr std::uint8_t kMaxServerKind = 1;  // net::ServerKind::Edge
constexpr std::uint8_t kMaxAppKind = 3;     // apps::AppKind::Gaming

// --- per-record field codecs ------------------------------------------------

void put(ByteWriter& w, const trip::KpiSample& s) {
  w.f64(s.time.ms_since_epoch);
  w.i32(s.test_id);
  w.u8(static_cast<std::uint8_t>(s.test));
  w.u8(static_cast<std::uint8_t>(s.op));
  w.f64(s.position.value);
  w.f64(s.speed.value);
  w.u8(static_cast<std::uint8_t>(s.tz));
  w.u8(static_cast<std::uint8_t>(s.env));
  w.boolean(s.connected);
  w.u8(static_cast<std::uint8_t>(s.tech));
  w.f64(s.rsrp_dbm);
  w.f64(s.mcs);
  w.f64(s.bler);
  w.f64(s.num_cc);
  w.f64(s.tput_mbps);
  w.i32(s.handovers);
  w.u8(static_cast<std::uint8_t>(s.server));
}

void get(ByteReader& r, trip::KpiSample& s) {
  s.time.ms_since_epoch = r.f64();
  s.test_id = r.i32();
  s.test = r.enum8<trip::TestType>(kMaxTestType);
  s.op = r.enum8<ran::OperatorId>(kMaxOperator);
  s.position = Meters{r.f64()};
  s.speed = Mph{r.f64()};
  s.tz = r.enum8<TimeZone>(kMaxTimeZone);
  s.env = r.enum8<radio::Environment>(kMaxEnvironment);
  s.connected = r.boolean();
  s.tech = r.enum8<radio::Tech>(kMaxTech);
  s.rsrp_dbm = r.f64();
  s.mcs = r.f64();
  s.bler = r.f64();
  s.num_cc = r.f64();
  s.tput_mbps = r.f64();
  s.handovers = r.i32();
  s.server = r.enum8<net::ServerKind>(kMaxServerKind);
}

void put(ByteWriter& w, const trip::RttSample& s) {
  w.f64(s.time.ms_since_epoch);
  w.i32(s.test_id);
  w.u8(static_cast<std::uint8_t>(s.op));
  w.f64(s.position.value);
  w.f64(s.speed.value);
  w.u8(static_cast<std::uint8_t>(s.tz));
  w.boolean(s.success);
  w.f64(s.rtt_ms);
  w.boolean(s.connected);
  w.u8(static_cast<std::uint8_t>(s.tech));
  w.u8(static_cast<std::uint8_t>(s.server));
}

void get(ByteReader& r, trip::RttSample& s) {
  s.time.ms_since_epoch = r.f64();
  s.test_id = r.i32();
  s.op = r.enum8<ran::OperatorId>(kMaxOperator);
  s.position = Meters{r.f64()};
  s.speed = Mph{r.f64()};
  s.tz = r.enum8<TimeZone>(kMaxTimeZone);
  s.success = r.boolean();
  s.rtt_ms = r.f64();
  s.connected = r.boolean();
  s.tech = r.enum8<radio::Tech>(kMaxTech);
  s.server = r.enum8<net::ServerKind>(kMaxServerKind);
}

void put(ByteWriter& w, const trip::PassiveSample& s) {
  w.f64(s.time.ms_since_epoch);
  w.u8(static_cast<std::uint8_t>(s.op));
  w.f64(s.position.value);
  w.f64(s.speed.value);
  w.u8(static_cast<std::uint8_t>(s.tz));
  w.boolean(s.connected);
  w.u8(static_cast<std::uint8_t>(s.tech));
  w.u32(s.cell);
}

void get(ByteReader& r, trip::PassiveSample& s) {
  s.time.ms_since_epoch = r.f64();
  s.op = r.enum8<ran::OperatorId>(kMaxOperator);
  s.position = Meters{r.f64()};
  s.speed = Mph{r.f64()};
  s.tz = r.enum8<TimeZone>(kMaxTimeZone);
  s.connected = r.boolean();
  s.tech = r.enum8<radio::Tech>(kMaxTech);
  s.cell = r.u32();
}

void put(ByteWriter& w, const trip::TestSummary& s) {
  w.i32(s.test_id);
  w.u8(static_cast<std::uint8_t>(s.test));
  w.u8(static_cast<std::uint8_t>(s.op));
  w.f64(s.start.ms_since_epoch);
  w.f64(s.duration.value);
  w.f64(s.start_position.value);
  w.f64(s.distance.value);
  w.u8(static_cast<std::uint8_t>(s.tz));
  w.u8(static_cast<std::uint8_t>(s.server));
  w.f64(s.mean);
  w.f64(s.stddev);
  w.i32(s.samples);
  w.i32(s.handovers);
  w.f64(s.frac_high_speed_5g);
  w.f64(s.bytes_transferred);
}

void get(ByteReader& r, trip::TestSummary& s) {
  s.test_id = r.i32();
  s.test = r.enum8<trip::TestType>(kMaxTestType);
  s.op = r.enum8<ran::OperatorId>(kMaxOperator);
  s.start.ms_since_epoch = r.f64();
  s.duration = Millis{r.f64()};
  s.start_position = Meters{r.f64()};
  s.distance = Meters{r.f64()};
  s.tz = r.enum8<TimeZone>(kMaxTimeZone);
  s.server = r.enum8<net::ServerKind>(kMaxServerKind);
  s.mean = r.f64();
  s.stddev = r.f64();
  s.samples = r.i32();
  s.handovers = r.i32();
  s.frac_high_speed_5g = r.f64();
  s.bytes_transferred = r.f64();
}

void put(ByteWriter& w, const ran::HandoverRecord& h) {
  w.f64(h.time.ms_since_epoch);
  w.f64(h.duration.value);
  w.u8(static_cast<std::uint8_t>(h.from_tech));
  w.u8(static_cast<std::uint8_t>(h.to_tech));
  w.u32(h.from_cell);
  w.u32(h.to_cell);
  w.f64(h.position.value);
}

void get(ByteReader& r, ran::HandoverRecord& h) {
  h.time.ms_since_epoch = r.f64();
  h.duration = Millis{r.f64()};
  h.from_tech = r.enum8<radio::Tech>(kMaxTech);
  h.to_tech = r.enum8<radio::Tech>(kMaxTech);
  h.from_cell = r.u32();
  h.to_cell = r.u32();
  h.position = Meters{r.f64()};
}

void put(ByteWriter& w, const apps::AppRunRecord& a) {
  w.u8(static_cast<std::uint8_t>(a.app));
  w.boolean(a.compression);
  w.u8(static_cast<std::uint8_t>(a.op));
  w.f64(a.start.ms_since_epoch);
  w.f64(a.position.value);
  w.u8(static_cast<std::uint8_t>(a.tz));
  w.u8(static_cast<std::uint8_t>(a.server));
  w.i32(a.handovers);
  w.f64(a.frac_high_speed_5g);
  w.f64(a.mean_e2e_ms);
  w.f64(a.median_e2e_ms);
  w.f64(a.offloaded_fps);
  w.f64(a.map);
  w.size(a.e2e_ms.size());
  for (double v : a.e2e_ms) w.f64(v);
  w.f64(a.qoe);
  w.f64(a.avg_bitrate_mbps);
  w.f64(a.rebuffer_fraction);
  w.f64(a.gaming_bitrate_mbps);
  w.f64(a.gaming_latency_ms);
  w.f64(a.frame_drop_rate);
}

void get(ByteReader& r, apps::AppRunRecord& a) {
  a.app = r.enum8<apps::AppKind>(kMaxAppKind);
  a.compression = r.boolean();
  a.op = r.enum8<ran::OperatorId>(kMaxOperator);
  a.start.ms_since_epoch = r.f64();
  a.position = Meters{r.f64()};
  a.tz = r.enum8<TimeZone>(kMaxTimeZone);
  a.server = r.enum8<net::ServerKind>(kMaxServerKind);
  a.handovers = r.i32();
  a.frac_high_speed_5g = r.f64();
  a.mean_e2e_ms = r.f64();
  a.median_e2e_ms = r.f64();
  a.offloaded_fps = r.f64();
  a.map = r.f64();
  const std::size_t n = r.size(sizeof(double));
  a.e2e_ms.clear();
  a.e2e_ms.reserve(n);
  for (std::size_t i = 0; i < n && !r.failed(); ++i) {
    a.e2e_ms.push_back(r.f64());
  }
  a.qoe = r.f64();
  a.avg_bitrate_mbps = r.f64();
  a.rebuffer_fraction = r.f64();
  a.gaming_bitrate_mbps = r.f64();
  a.gaming_latency_ms = r.f64();
  a.frame_drop_rate = r.f64();
}

template <typename T>
void put_vec(ByteWriter& w, const std::vector<T>& v) {
  w.size(v.size());
  for (const T& e : v) put(w, e);
}

// Conservative lower bound on any record's encoded size (the smallest,
// PassiveSample, is 33 bytes); used only to reject absurd length prefixes.
constexpr std::size_t kMinRecordBytes = 16;

template <typename T>
bool get_vec(ByteReader& r, std::vector<T>& v) {
  const std::size_t n = r.size(kMinRecordBytes);
  v.clear();
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (r.failed()) return false;
    T e;
    get(r, e);
    v.push_back(std::move(e));
  }
  return !r.failed();
}

void put(ByteWriter& w, const trip::OperatorLogs& log) {
  w.u8(static_cast<std::uint8_t>(log.op));
  put_vec(w, log.kpi);
  put_vec(w, log.rtt);
  put_vec(w, log.tests);
  put_vec(w, log.test_handovers);
  put_vec(w, log.passive);
  put_vec(w, log.passive_handovers);
  w.size(log.unique_cells);
  w.f64(log.experiment_runtime.value);
}

bool get(ByteReader& r, trip::OperatorLogs& log) {
  log.op = r.enum8<ran::OperatorId>(kMaxOperator);
  if (!get_vec(r, log.kpi)) return false;
  if (!get_vec(r, log.rtt)) return false;
  if (!get_vec(r, log.tests)) return false;
  if (!get_vec(r, log.test_handovers)) return false;
  if (!get_vec(r, log.passive)) return false;
  if (!get_vec(r, log.passive_handovers)) return false;
  log.unique_cells = static_cast<std::size_t>(r.u64());
  log.experiment_runtime = Millis{r.f64()};
  return !r.failed();
}

}  // namespace

std::string_view to_string(DatasetKind k) {
  switch (k) {
    case DatasetKind::Campaign: return "campaign";
    case DatasetKind::StaticBaseline: return "static-baseline";
    case DatasetKind::AppCampaign: return "app-campaign";
    case DatasetKind::AppStaticBaseline: return "app-static-baseline";
  }
  return "?";
}

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

std::string encode(const trip::CampaignResult& r) {
  ByteWriter w;
  for (const auto& log : r.logs) put(w, log);
  w.f64(r.route_length.value);
  w.i32(r.days);
  w.f64(r.drive_time.value);
  return w.take();
}

bool decode(std::string_view payload, trip::CampaignResult& out) {
  ByteReader r(payload);
  for (auto& log : out.logs) {
    if (!get(r, log)) return false;
  }
  out.route_length = Meters{r.f64()};
  out.days = r.i32();
  out.drive_time = Millis{r.f64()};
  return !r.failed() && r.exhausted();
}

std::string encode(const trip::StaticBaseline& b) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(b.op));
  w.size(b.dl_tput_mbps.size());
  for (double v : b.dl_tput_mbps) w.f64(v);
  w.size(b.ul_tput_mbps.size());
  for (double v : b.ul_tput_mbps) w.f64(v);
  w.size(b.rtt_ms.size());
  for (double v : b.rtt_ms) w.f64(v);
  w.i32(b.cities_tested);
  return w.take();
}

bool decode(std::string_view payload, trip::StaticBaseline& out) {
  ByteReader r(payload);
  out.op = r.enum8<ran::OperatorId>(kMaxOperator);
  for (auto* vec : {&out.dl_tput_mbps, &out.ul_tput_mbps, &out.rtt_ms}) {
    const std::size_t n = r.size(sizeof(double));
    vec->clear();
    vec->reserve(n);
    for (std::size_t i = 0; i < n && !r.failed(); ++i) {
      vec->push_back(r.f64());
    }
  }
  out.cities_tested = r.i32();
  return !r.failed() && r.exhausted();
}

std::string encode(const apps::AppCampaignResult& r) {
  ByteWriter w;
  for (const auto& runs : r.runs) put_vec(w, runs);
  return w.take();
}

bool decode(std::string_view payload, apps::AppCampaignResult& out) {
  ByteReader r(payload);
  for (auto& runs : out.runs) {
    if (!get_vec(r, runs)) return false;
  }
  return !r.failed() && r.exhausted();
}

std::string encode(const std::vector<apps::AppRunRecord>& runs) {
  ByteWriter w;
  put_vec(w, runs);
  return w.take();
}

bool decode(std::string_view payload, std::vector<apps::AppRunRecord>& out) {
  ByteReader r(payload);
  return get_vec(r, out) && r.exhausted();
}

std::string wrap_dataset(DatasetKind kind, std::uint64_t fingerprint,
                         std::string_view payload) {
  ByteWriter w;
  for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kSchemaVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(fingerprint);
  w.u64(payload.size());
  w.u64(fnv1a(payload));
  std::string out = w.take();
  out.append(payload);
  return out;
}

namespace {
constexpr std::size_t kHeaderBytes = 4 + 4 + 1 + 8 + 8 + 8;
}  // namespace

std::optional<DatasetHeader> parse_header(std::string_view file) {
  if (file.size() < kHeaderBytes) return std::nullopt;
  if (file.substr(0, kMagic.size()) != kMagic) return std::nullopt;
  ByteReader r(file.substr(kMagic.size()));
  DatasetHeader h;
  h.version = r.u32();
  const std::uint8_t kind = r.u8();
  if (kind < 1 || kind > 4) return std::nullopt;
  h.kind = static_cast<DatasetKind>(kind);
  h.fingerprint = r.u64();
  h.payload_bytes = r.u64();
  h.checksum = r.u64();
  if (r.failed()) return std::nullopt;
  return h;
}

std::optional<std::string_view> unwrap_dataset(
    std::string_view file, DatasetKind expected_kind,
    std::uint64_t expected_fingerprint) {
  const auto h = parse_header(file);
  if (!h) return std::nullopt;
  if (h->version != kSchemaVersion) return std::nullopt;
  if (h->kind != expected_kind) return std::nullopt;
  if (expected_fingerprint != 0 && h->fingerprint != expected_fingerprint) {
    return std::nullopt;
  }
  const std::string_view payload = file.substr(kHeaderBytes);
  if (payload.size() != h->payload_bytes) return std::nullopt;
  if (fnv1a(payload) != h->checksum) return std::nullopt;
  return payload;
}

}  // namespace wheels::dataset
