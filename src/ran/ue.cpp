#include "ran/ue.h"

#include <algorithm>
#include <cmath>

#include "radio/link_budget.h"

namespace wheels::ran {
namespace {

using radio::Direction;
using radio::Environment;
using radio::Tech;

constexpr std::size_t idx(Tech t) { return static_cast<std::size_t>(t); }

// One-way RAN latency floor per technology (scheduling + frame alignment).
Millis base_air_latency(Tech t) {
  switch (t) {
    case Tech::LTE: return Millis{16.0};
    case Tech::LTE_A: return Millis{13.0};
    case Tech::NR_LOW: return Millis{12.0};
    case Tech::NR_MID: return Millis{9.0};
    case Tech::NR_MMWAVE: return Millis{3.5};
  }
  return Millis{16.0};
}

}  // namespace

UeSimulator::UeSimulator(const Corridor& corridor,
                         const Deployment& deployment,
                         const OperatorProfile& profile, Rng rng,
                         TrafficProfile traffic, const radio::BandPlan& plan,
                         LoadRegime regime)
    : corridor_(corridor),
      deployment_(deployment),
      profile_(profile),
      rng_(rng),
      traffic_(traffic),
      plan_(plan),
      regime_(regime),
      blockage_(rng.fork("blockage"), Tech::NR_MMWAVE),
      fading_sub6_(rng.fork("fading-sub6"), Tech::NR_MID),
      fading_mmwave_(rng.fork("fading-mmw"), Tech::NR_MMWAVE),
      derived_(radio::derive_plan(plan)) {}

void UeSimulator::set_traffic(TrafficProfile t) {
  if (t == traffic_) return;
  traffic_ = t;
  policy_initialized_ = false;  // re-evaluate promptly with the new context
}

std::size_t UeSimulator::unique_cell_count() const {
  std::vector<CellId> v = seen_cells_;
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v.size();
}

void UeSimulator::clear_history() {
  handovers_.clear();
  // seen_cells_ intentionally kept: Table 1 counts over the whole campaign.
}

double UeSimulator::draw_cell_load(Environment env, SimTime now, Meters pos) {
  (void)pos;
  // Identity regimes skip the scaling entirely so the paper-default draw
  // stays bit-identical (same arithmetic, same RNG consumption).
  double target = target_load(env);
  if (!regime_.is_identity()) {
    const CivilTime civil = to_civil(now, slot_.tz);
    target = std::clamp(target * regime_.scale(civil.hour), 0.0, 1.0);
  }
  if (favourable_) {
    // Hand-picked static spot: moderately loaded downtown sector.
    return std::clamp(
        target * 0.9 + rng_.normal(0.0, 0.5 * profile_.load_sigma),
        0.03, 0.70);
  }
  // A third of the cells along an interstate are congested (sector
  // overload) -- the main source of the paper's heavy <5 Mbps tail.
  if (rng_.chance(0.40)) return rng_.uniform(0.82, 0.99);
  return std::clamp(target + rng_.normal(0.0, profile_.load_sigma),
                    0.03, 0.98);
}

double UeSimulator::target_load(Environment env) const {
  switch (env) {
    case Environment::Urban: return profile_.load_urban;
    case Environment::Suburban: return profile_.load_suburban;
    case Environment::Rural: return profile_.load_rural;
  }
  return 0.4;
}

Dbm UeSimulator::layer_rsrp(Tech tech, const Cell& cell, double dist_m,
                            Environment env, Db shadow) const {
  radio::ChannelState ch;
  ch.shadowing = Db{shadow.value - cell.site_offset_db};
  if (tech == Tech::NR_MMWAVE) {
    ch.shadowing = ch.shadowing + profile_.mmwave_beam_penalty;
  }
  if (slot_.batch != nullptr) {
    // Cached mirror of radio::rsrp: ((const - pl) - shadowing) - blockage,
    // with blockage 0 here (RSRP excludes fast fading and blockage by
    // construction of the callers).
    const radio::BandDerived& bd = derived_.band(tech);
    const double pl = radio::cached_pathloss_db(bd, env, dist_m);
    return Dbm{(bd.rsrp_const_db - pl) - ch.shadowing.value};
  }
  return radio::rsrp(plan_.profile(tech), env, Meters{dist_m}, ch);
}

double UeSimulator::candidate_distance(Tech tech, Meters pos) const {
  if (slot_.batch != nullptr) {
    return slot_.batch->layers[idx(tech)].dist_m[slot_.row];
  }
  return Deployment::distance_to(*layers_[idx(tech)]->candidate, pos).value;
}

double UeSimulator::serving_distance_m(Meters pos) const {
  if (slot_.batch != nullptr) {
    const auto& layer = slot_.batch->layers[idx(serving_tech_)];
    if (layer.cell[slot_.row] == serving_cell_) {
      return layer.dist_m[slot_.row];  // same hypot, computed by the sweep
    }
  }
  return Deployment::distance_to(*serving_cell_, pos).value;
}

void UeSimulator::ensure_layers(Environment env) {
  if (layers_ready_) return;
  for (Tech tech : radio::kAllTechs) {
    auto& layer = layers_[idx(tech)];
    if (!layer) {
      layer.emplace(LayerState{
          radio::ShadowingProcess::for_tech(
              // wheels-rng: dynamic(per-tech shadowing stream)
              rng_.fork(to_string(tech)).fork("shadow"), tech, env),
          nullptr});
    }
  }
  layers_ready_ = true;
}

void UeSimulator::begin_segment(const SegmentBatch& batch) {
  shadow_prefilled_ = false;
  const std::size_t n = batch.size();
  if (n == 0) return;
  ensure_layers(batch.env[0]);

  // Per-slot travelled distance, from this UE's own last position -- the
  // exact per-step deltas the scalar path would compute.
  travelled_scratch_.resize(n);
  travelled_scratch_[0] =
      first_step_ ? 0.0 : batch.pos_m[0] - last_pos_.value;
  for (std::size_t i = 1; i < n; ++i) {
    travelled_scratch_[i] = batch.pos_m[i] - batch.pos_m[i - 1];
  }

  // rho and sqrt(1 - rho^2) depend only on the layer's decorrelation
  // distance, so layers sharing a decorrelation class share the arrays
  // (three classes across the five technologies).
  std::array<std::size_t, 5> share{};
  for (std::size_t i = 0; i < 5; ++i) {
    share[i] = i;
    const double d_i = layers_[i]->shadowing.decorrelation_m();
    for (std::size_t j = 0; j < i; ++j) {
      const double d_j = layers_[j]->shadowing.decorrelation_m();
      if (!(d_i < d_j) && !(d_j < d_i)) {  // equal decorrelation
        share[i] = j;
        break;
      }
    }
    if (share[i] == i) {
      rho_rows_[i].resize(n);
      noise_rows_[i].resize(n);
      const radio::ShadowingProcess& sp = layers_[i]->shadowing;
      for (std::size_t k = 0; k < n; ++k) {
        const double rho = sp.rho_for(travelled_scratch_[k]);
        rho_rows_[i][k] = rho;
        noise_rows_[i][k] = std::sqrt(1.0 - rho * rho);
      }
    }
  }
  for (Tech tech : radio::kAllTechs) {
    const std::size_t i = idx(tech);
    shadow_rows_[i].resize(n);
    layers_[i]->shadowing.advance_span(rho_rows_[share[i]],
                                       noise_rows_[share[i]],
                                       shadow_rows_[i]);
  }
  shadow_prefilled_ = true;
}

LinkSample UeSimulator::step(SimTime now, Meters pos, Mph speed, Millis dt) {
  const CorridorSegment& here = corridor_.at(pos);
  slot_ = SlotContext{};
  slot_.env = here.env;
  slot_.tz = here.tz;

  const Meters travelled =
      first_step_ ? Meters{0.0} : Meters{pos.value - last_pos_.value};
  last_pos_ = pos;
  first_step_ = false;

  ensure_layers(here.env);
  for (Tech tech : radio::kAllTechs) {
    auto& layer = layers_[idx(tech)];
    slot_.shadow_db[idx(tech)] = layer->shadowing.advance(travelled).value;
    layer->candidate = deployment_.nearest_cell(tech, pos);
  }
  return step_core(now, pos, speed, dt);
}

LinkSample UeSimulator::step(SimTime now, Millis dt, const SegmentBatch& batch,
                             std::size_t row) {
  slot_ = SlotContext{};
  slot_.env = batch.env[row];
  slot_.tz = batch.tz[row];
  slot_.batch = &batch;
  slot_.row = row;

  const Meters pos{batch.pos_m[row]};
  const Mph speed{batch.speed_mph[row]};
  ensure_layers(batch.env[row]);
  if (shadow_prefilled_) {
    for (Tech tech : radio::kAllTechs) {
      slot_.shadow_db[idx(tech)] = shadow_rows_[idx(tech)][row];
    }
  } else {
    // Passive logger: no prefill, advance scalar on its own cadence.
    const Meters travelled =
        first_step_ ? Meters{0.0} : Meters{pos.value - last_pos_.value};
    for (Tech tech : radio::kAllTechs) {
      slot_.shadow_db[idx(tech)] =
          layers_[idx(tech)]->shadowing.advance(travelled).value;
    }
  }
  last_pos_ = pos;
  first_step_ = false;
  for (Tech tech : radio::kAllTechs) {
    layers_[idx(tech)]->candidate = batch.layers[idx(tech)].cell[row];
  }
  return step_core(now, pos, speed, dt);
}

void UeSimulator::evaluate_policy(SimTime now, Meters pos, Mph speed) {
  const auto candidate = [&](Tech t) -> const Cell* {
    return layers_[idx(t)] ? layers_[idx(t)]->candidate : nullptr;
  };
  const Cell* mmw = candidate(Tech::NR_MMWAVE);
  const Cell* mid = candidate(Tech::NR_MID);
  const Cell* low = candidate(Tech::NR_LOW);
  const Cell* ltea = candidate(Tech::LTE_A);
  const Cell* lte = candidate(Tech::LTE);

  const ServicePolicy& pol = profile_.policy;
  double p_hs = 0.0;
  double p_any5g = 0.0;
  switch (traffic_) {
    case TrafficProfile::BackloggedDl:
      p_hs = pol.hs5g_given_dl;
      p_any5g = pol.low5g_given_traffic;
      break;
    case TrafficProfile::BackloggedUl:
      p_hs = pol.hs5g_given_ul;
      p_any5g = pol.low5g_given_traffic;
      break;
    case TrafficProfile::Interactive:
      p_hs = pol.hs5g_given_interactive;
      p_any5g = pol.low5g_given_traffic;
      break;
    case TrafficProfile::Idle:
      // Operators almost never elevate an idle UE to high-speed 5G --
      // the source of the passive-logger artifact (Fig. 1) -- and mmWave
      // essentially only when (nearly) stationary next to a site (Fig. 8).
      p_hs = pol.any5g_given_idle * 0.3;
      p_any5g = pol.any5g_given_idle;
      break;
  }

  // Standing right under a high-speed-5G site (the static baselines, or a
  // red light next to a mmWave pole): the strong CQI makes the operator
  // much more willing to promote.
  if (traffic_ != TrafficProfile::Idle) {
    const bool very_close =
        (mmw && candidate_distance(Tech::NR_MMWAVE, pos) < 120.0) ||
        (mid && candidate_distance(Tech::NR_MID, pos) < 250.0);
    if (very_close) {
      // Uplink promotion stays more conservative even next to the site.
      p_hs = std::max(
          p_hs, traffic_ == TrafficProfile::BackloggedUl ? 0.60 : 0.88);
    }
  }

  Tech pick;
  const Cell* pick_cell = nullptr;
  const bool mmwave_allowed =
      traffic_ != TrafficProfile::Idle || speed.value < 5.0;
  if ((mmw || mid) && rng_.chance(p_hs)) {
    if (mmw && mmwave_allowed) {
      pick = Tech::NR_MMWAVE;
      pick_cell = mmw;
    } else if (mid) {
      pick = Tech::NR_MID;
      pick_cell = mid;
    } else {
      pick = Tech::NR_MMWAVE;
      pick_cell = mmw;
    }
  } else if (low && rng_.chance(p_any5g)) {
    pick = Tech::NR_LOW;
    pick_cell = low;
  } else if (ltea) {
    pick = Tech::LTE_A;
    pick_cell = ltea;
  } else if (lte) {
    pick = Tech::LTE;
    pick_cell = lte;
  } else if (low) {
    pick = Tech::NR_LOW;
    pick_cell = low;
  } else if (mid) {
    pick = Tech::NR_MID;
    pick_cell = mid;
  } else {
    connected_ = false;
    serving_cell_ = nullptr;
    policy_initialized_ = true;
    next_policy_eval_ =
        now + profile_.policy.policy_dwell * rng_.uniform(0.7, 1.3);
    return;
  }

  // Carrier-aggregation configuration is re-negotiated with the decision.
  const radio::BandProfile& bp = plan_.profile(pick);
  auto draw_cc = [&](int max_cc, double p_extra) {
    int cc = 1;
    for (int i = 1; i < max_cc; ++i) {
      if (rng_.chance(p_extra)) ++cc;
    }
    return cc;
  };
  int max_cc_dl = bp.max_cc_dl;
  if (pick == Tech::NR_MMWAVE) {
    max_cc_dl = std::min(max_cc_dl, profile_.mmwave_max_cc_dl);
  }
  num_cc_dl_ = draw_cc(max_cc_dl, profile_.ca_extra_dl);
  num_cc_ul_ = draw_cc(bp.max_cc_ul, profile_.ca_extra_ul);

  const bool tech_change = !connected_ || pick != serving_tech_;
  const bool cell_change =
      connected_ && serving_cell_ && pick_cell->id != serving_cell_->id;
  if (tech_change || cell_change) {
    if (connected_ && serving_cell_) {
      begin_handover(now, pos, pick, pick_cell);
    } else {
      // Initial attach: no handover event.
      serving_tech_ = pick;
      serving_cell_ = pick_cell;
      connected_ = true;
      seen_cells_.push_back(pick_cell->id);
      load_ = load_target_ = draw_cell_load(slot_.env, now, pos);
    }
  }
  policy_initialized_ = true;
  next_policy_eval_ =
      now + profile_.policy.policy_dwell * rng_.uniform(0.7, 1.3);
}

Millis UeSimulator::sample_ho_duration() {
  const HandoverTiming& ht = profile_.handover;
  const Millis med = traffic_ == TrafficProfile::BackloggedUl
                         ? ht.median_ul
                         : ht.median_dl;
  return Millis{med.value * std::exp(rng_.normal(0.0, ht.sigma))};
}

void UeSimulator::begin_handover(SimTime now, Meters pos, Tech to_tech,
                                 const Cell* to_cell) {
  HandoverRecord rec;
  rec.time = now;
  rec.duration = sample_ho_duration();
  rec.from_tech = serving_tech_;
  rec.to_tech = to_tech;
  rec.from_cell = serving_cell_ ? serving_cell_->id : 0;
  rec.to_cell = to_cell->id;
  rec.position = pos;
  handovers_.push_back(rec);

  serving_tech_ = to_tech;
  serving_cell_ = to_cell;
  connected_ = true;
  ho_remaining_ = rec.duration;
  a3_target_ = nullptr;
  a3_accumulated_ = Millis{0.0};
  seen_cells_.push_back(to_cell->id);
  // New cell, new load conditions. An upgrade to 5G is not blind: the
  // network promotes UEs toward cells with spare capacity, so redraw once
  // if the first draw came up congested.
  load_ = load_target_ = draw_cell_load(slot_.env, now, pos);
  if (radio::is_5g(rec.to_tech) && !radio::is_5g(rec.from_tech) &&
      load_ > 0.8) {
    load_ = load_target_ = draw_cell_load(slot_.env, now, pos);
  }
}

void UeSimulator::maybe_start_handover(SimTime now, Meters pos, Millis dt) {
  if (!connected_ || !serving_cell_) return;
  auto& layer = layers_[idx(serving_tech_)];
  if (!layer) return;

  const Meters serving_dist{serving_distance_m(pos)};
  const Meters range = Deployment::service_range(serving_tech_, profile_);

  // Radio-link failure: serving cell left behind; snap to whatever the
  // layer offers now, or force a policy re-evaluation (possibly dropping
  // to another technology).
  if (serving_dist.value > range.value * 1.2) {
    if (layer->candidate && layer->candidate->id != serving_cell_->id) {
      begin_handover(now, pos, serving_tech_, layer->candidate);
    } else {
      policy_initialized_ = false;
    }
    return;
  }

  const Cell* neighbour = layer->candidate;
  if (!neighbour || neighbour->id == serving_cell_->id) {
    a3_target_ = nullptr;
    a3_accumulated_ = Millis{0.0};
    return;
  }

  // A3 event: neighbour better than serving by the offset, sustained for
  // the time-to-trigger. Measurement noise makes the comparison flicker,
  // which is the source of occasional ping-pong handovers.
  const Db shadow{slot_.shadow_db[idx(serving_tech_)]};
  const Dbm serving_rsrp = layer_rsrp(serving_tech_, *serving_cell_,
                                      serving_dist.value, slot_.env, shadow);
  const Dbm neigh_rsrp =
      layer_rsrp(serving_tech_, *neighbour,
                 candidate_distance(serving_tech_, pos), slot_.env, shadow);
  const double noise_db =
      rng_.normal(0.0, profile_.handover.measurement_noise_db);
  const double advantage =
      neigh_rsrp.value - serving_rsrp.value + noise_db;

  if (advantage > profile_.handover.a3_offset.value) {
    if (a3_target_ != neighbour) {
      a3_target_ = neighbour;
      a3_target_tech_ = serving_tech_;
      a3_accumulated_ = Millis{0.0};
    }
    a3_accumulated_ += dt;
    if (a3_accumulated_.value >= profile_.handover.time_to_trigger.value) {
      begin_handover(now, pos, serving_tech_, neighbour);
    }
  } else {
    a3_target_ = nullptr;
    a3_accumulated_ = Millis{0.0};
  }
}

LinkSample UeSimulator::step_core(SimTime now, Meters pos, Mph speed,
                                  Millis dt) {
  // Coverage signature: which technology layers are usable here. The
  // serving decision is sticky -- it is only reconsidered when the
  // signature changes (a layer appeared/disappeared), the traffic context
  // changed (set_traffic), or the dwell expires.
  unsigned signature = 0;
  for (Tech t : radio::kAllTechs) {
    if (layers_[idx(t)] && layers_[idx(t)]->candidate) {
      signature |= 1u << idx(t);
    }
  }
  if (!policy_initialized_ || signature != last_avail_signature_ ||
      !(now < next_policy_eval_)) {
    last_avail_signature_ = signature;
    evaluate_policy(now, pos, speed);
  }
  // Coverage lost for the serving technology: re-evaluate immediately.
  if (connected_ && serving_cell_) {
    const Meters d{serving_distance_m(pos)};
    if (d.value >
        Deployment::service_range(serving_tech_, profile_).value * 1.2) {
      maybe_start_handover(now, pos, dt);
    }
  }
  if (!connected_) {
    evaluate_policy(now, pos, speed);
  }

  // Serving-cell load drifts as an OU process.
  const Environment env = slot_.env;
  {
    // The load fluctuates around the cell's own character: a congested
    // cell stays congested for the whole dwell on it.
    const double theta = std::min(1.0, dt.value / 60'000.0);
    load_ += theta * (load_target_ - load_) +
             0.35 * profile_.load_sigma *
                 std::sqrt(std::min(1.0, dt.value / 1'000.0)) *
                 rng_.normal();
    load_ = std::clamp(load_, 0.03, 0.98);
  }

  LinkSample s;
  s.cell_load = load_;
  if (!connected_ || !serving_cell_) {
    return s;  // disconnected sample: rate 0, rsrp floor
  }

  // Handover progression.
  if (ho_remaining_.value > 0.0) {
    ho_remaining_ -= dt;
    s.in_handover = true;
  } else {
    maybe_start_handover(now, pos, dt);
    if (ho_remaining_.value > 0.0) s.in_handover = true;
  }

  const Tech tech = serving_tech_;
  const Db shadow{slot_.shadow_db[idx(tech)]};
  const Meters dist{serving_distance_m(pos)};

  s.connected = true;
  s.tech = tech;
  s.cell = serving_cell_->id;

  // Channel for SINR: shadowing + fast fading + blockage. (Built before
  // the RSRP so the batched branch can share one path-loss evaluation;
  // neither the channel construction nor the RSRP draws from the RNG, so
  // the stream order is unchanged.)
  radio::ChannelState ch;
  ch.shadowing = Db{shadow.value - serving_cell_->site_offset_db +
                    (tech == Tech::NR_MMWAVE
                         ? profile_.mmwave_beam_penalty.value
                         : 0.0)};
  ch.blockage_loss = blockage_.advance(dt);
  const double doppler_scale = 1.0 + speed.value / 150.0;
  const Db ff = (tech == Tech::NR_MMWAVE ? fading_mmwave_ : fading_sub6_)
                    .sample_db();
  ch.fast_fading = Db{ff.value * doppler_scale};

  // Neighbour-cell interference grows with load and towards the cell
  // edge (frequency reuse 1).
  const double range =
      Deployment::service_range(tech, profile_).value;
  const double edge = std::max(0.0, dist.value / range - 0.55) / 0.45;
  // Channel aging: at speed, CQI reports lag the channel and beam/MIMO
  // tracking degrades, costing effective SINR.
  const double aging_db = std::min(9.0, 0.12 * speed.value);
  const Db margin_dl{2.0 + 22.0 * load_ + 9.0 * edge + aging_db};
  const Db margin_ul{1.0 + 7.0 * load_ + 5.0 * edge + aging_db};
  // Downlink PRBs are contended by every user of the cell; the uplink is
  // typically emptier, so the backlogged UE keeps a larger share there.
  const double prb_dl = std::max(0.02, std::pow(1.0 - load_, 1.5));
  const double prb_ul = std::max(0.06, std::pow(1.0 - load_, 0.6));

  radio::PhyRateResult dl;
  radio::PhyRateResult ul;
  if (slot_.batch != nullptr) {
    // Cached mirrors: one hoisted path loss shared by the reported RSRP,
    // RSRP-for-SINR and both SINR directions (the scalar path evaluates
    // the identical expression four times), table-driven adaptation.
    const radio::BandDerived& bd = derived_.band(tech);
    const double pl = radio::cached_pathloss_db(bd, env, dist.value);
    s.rsrp = Dbm{(bd.rsrp_const_db - pl) - ch.shadowing.value};
    const double rsrp_sinr =
        ((bd.rsrp_const_db - pl) - ch.shadowing.value) -
        ch.blockage_loss.value;
    const double rx_dl = rsrp_sinr + ch.fast_fading.value;
    s.sinr_dl = Db{(rx_dl - radio::kNoisePerRe.value) - margin_dl.value};
    const double rx_ul = (((bd.ul_const_db - pl) - ch.shadowing.value) -
                          ch.blockage_loss.value) +
                         ch.fast_fading.value;
    s.sinr_ul = Db{(rx_ul - radio::kNoisePerRe.value) - margin_ul.value};
    dl = radio::cached_phy_rate(derived_, bd, Direction::Downlink, s.sinr_dl,
                                num_cc_dl_, prb_dl);
    ul = radio::cached_phy_rate(derived_, bd, Direction::Uplink, s.sinr_ul,
                                num_cc_ul_, prb_ul);
  } else {
    s.rsrp = layer_rsrp(tech, *serving_cell_, dist.value, env, shadow);
    const radio::BandProfile& band = plan_.profile(tech);
    s.sinr_dl = radio::sinr_downlink(band, env, dist, ch, margin_dl);
    s.sinr_ul = radio::sinr_uplink(band, env, dist, ch, margin_ul);
    dl = radio::compute_phy_rate(band, Direction::Downlink, s.sinr_dl,
                                 num_cc_dl_, prb_dl);
    ul = radio::compute_phy_rate(band, Direction::Uplink, s.sinr_ul,
                                 num_cc_ul_, prb_ul);
  }
  s.mcs_dl = dl.mcs;
  s.mcs_ul = ul.mcs;
  s.bler_dl = dl.bler;
  s.bler_ul = ul.bler;
  s.num_cc_dl = dl.num_cc;
  s.num_cc_ul = ul.num_cc;
  // The site's wired backhaul caps what the radio can deliver; the cap is
  // shared with the other users of the cell.
  Mbps rate_dl = dl.rate;
  Mbps rate_ul = ul.rate * profile_.ul_peak_scale;
  if (!favourable_) {
    const double bh =
        serving_cell_->backhaul_dl_mbps * profile_.backhaul_scale;
    const double bh_share = std::max(0.08, 1.0 - 0.75 * load_);
    rate_dl = std::min(rate_dl, Mbps{bh * bh_share});
    rate_ul = std::min(rate_ul, Mbps{bh / 4.5 * bh_share});
  }
  s.phy_rate_dl = s.in_handover ? Mbps{0.0} : rate_dl;
  s.phy_rate_ul = s.in_handover ? Mbps{0.0} : rate_ul;

  // One-way RAN latency: technology floor + load-dependent queueing +
  // HARQ retransmission spikes + speed sensitivity.
  double lat = base_air_latency(tech).value + profile_.core_latency_ms;
  lat += rng_.exponential(1.0 + 6.0 * load_);
  if (rng_.chance(std::min(0.5, dl.bler))) lat += rng_.exponential(12.0);
  lat += profile_.latency_per_mph * speed.value;
  if (s.in_handover) lat += std::max(0.0, ho_remaining_.value);
  s.air_latency = Millis{std::max(0.5, lat)};

  return s;
}

}  // namespace wheels::ran
