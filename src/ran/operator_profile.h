// Per-operator deployment strategies and service policies.
//
// The paper's central observation about coverage (Figs. 1-2) is that what a
// UE experiences is the product of (a) where each operator deployed which
// technology and (b) the operator's *promotion policy* -- whether it
// elevates a UE from LTE to 5G given the current traffic. Both are modeled
// here as data, calibrated to the paper's qualitative description:
//
//  - Verizon: prioritized mmWave in downtown areas of major cities; modest
//    mid/low-band footprint, better in the eastern half; uses a small
//    number of wide mmWave beams (lower beam gain -> lower RSRP).
//  - T-Mobile: broad low-band + aggressive mid-band (n41), the only
//    carrier with substantial mid-band on highways; mid-band strongest in
//    the Pacific region.
//  - AT&T: strongest LTE-A footprint, thin high-speed 5G (~3% of miles),
//    very little 5G in the Mountain/Central zones; does not promote to 5G
//    under light traffic at all (Fig. 1d shows zero 5G on the passive
//    logger).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "core/sim_time.h"
#include "core/units.h"
#include "radio/pathloss.h"
#include "radio/technology.h"

namespace wheels::ran {

enum class OperatorId : std::uint8_t { Verizon, TMobile, ATT };

inline constexpr std::array<OperatorId, 3> kAllOperators = {
    OperatorId::Verizon, OperatorId::TMobile, OperatorId::ATT};

[[nodiscard]] constexpr std::string_view to_string(OperatorId op) {
  switch (op) {
    case OperatorId::Verizon: return "Verizon";
    case OperatorId::TMobile: return "T-Mobile";
    case OperatorId::ATT: return "AT&T";
  }
  return "?";
}

// Deployment of one technology layer for one operator.
struct TechDeployment {
  // Probability that a given corridor block (few km) has this layer
  // deployed, per environment. Zero means the layer is absent there.
  double avail_urban = 0.0;
  double avail_suburban = 0.0;
  double avail_rural = 0.0;
  // Regional multiplier indexed by TimeZone (Pacific..Eastern), capturing
  // e.g. T-Mobile's Pacific mid-band strength.
  std::array<double, 4> timezone_scale{1.0, 1.0, 1.0, 1.0};
  // Inter-site distance along the corridor when deployed.
  Meters site_spacing{2000.0};

  [[nodiscard]] double availability(radio::Environment env,
                                    TimeZone tz) const;
};

// Traffic context the service policy conditions on.
enum class TrafficProfile : std::uint8_t {
  Idle,          // light ICMP keep-alive (handover-logger phones)
  BackloggedDl,  // saturating downlink transfer
  BackloggedUl,  // saturating uplink transfer
  Interactive,   // app traffic: moderate bidirectional
};

struct ServicePolicy {
  // P(promote to the named class | that class has radio coverage here),
  // conditioned on the traffic profile. High-speed = mid-band or mmWave.
  double hs5g_given_dl = 0.9;
  double hs5g_given_ul = 0.4;
  double hs5g_given_interactive = 0.6;
  double low5g_given_traffic = 0.8;  // any backlogged/interactive traffic
  double any5g_given_idle = 0.1;     // the passive-logger artifact knob
  // Dwell time between policy re-evaluations (promotion decisions are
  // sticky at second scale, not per-slot).
  Millis policy_dwell{5'000.0};
};

struct HandoverTiming {
  // Interruption (data stall) duration: lognormal(median, sigma).
  Millis median_dl{55.0};
  Millis median_ul{52.0};
  double sigma = 0.45;  // log-space sigma
  // A3-event parameters.
  Db a3_offset{3.0};
  Millis time_to_trigger{320.0};
  // RSRP measurement noise entering the A3 comparison: larger values give
  // more boundary ping-pong (more handovers per mile).
  double measurement_noise_db = 1.5;
};

struct OperatorProfile {
  OperatorId id;
  std::array<TechDeployment, 5> deploy;  // indexed by Tech
  ServicePolicy policy;
  HandoverTiming handover;
  // Extra loss applied to mmWave RSRP (Verizon's wide beams, §5.5 "RSRP").
  Db mmwave_beam_penalty{0.0};
  // Cell-load model: mean background load (fraction of PRBs taken by other
  // users), per environment.
  double load_urban = 0.55;
  double load_suburban = 0.45;
  double load_rural = 0.30;
  // Carrier-aggregation propensity: probability that each additional CC
  // beyond the first is configured. Verizon rarely aggregates uplink
  // carriers; T-Mobile often runs 2 UL CCs (§5.5 "CA").
  double ca_extra_dl = 0.6;
  double ca_extra_ul = 0.2;
  // Downlink component carriers the operator's mmWave deployment actually
  // aggregates (Verizon's 8CC "ultra wideband" vs thinner rivals).
  int mmwave_max_cc_dl = 4;
  // Scale on the achievable uplink rate: how much UL spectrum/grant the
  // operator actually provisions (Verizon's UL clearly outclasses the
  // others in the study's static tests: 167 vs 62 vs 39 Mbps medians).
  double ul_peak_scale = 1.0;
  // RAN latency sensitivity to vehicle speed (ms of extra one-way latency
  // per mph). Fig. 8: Verizon and T-Mobile RTTs grow with speed; AT&T's
  // are dominated by its LTE anchor instead.
  double latency_per_mph = 0.1;
  // Extra one-way core-network latency (ms): how deep in the operator's
  // core the internet peering sits.
  double core_latency_ms = 5.0;
  // Multiplier on every site's wired backhaul: AT&T's wireline backbone
  // gives its cells better transport than the pure-wireless rivals.
  double backhaul_scale = 1.0;
  // Spread of per-cell background load around the environment mean: large
  // values produce the bimodal "great or terrible" behaviour T-Mobile's
  // loaded n41 mid-band shows (40% of samples below 2 Mbps, Fig. 4).
  double load_sigma = 0.18;

  [[nodiscard]] const TechDeployment& deployment(radio::Tech t) const {
    return deploy[static_cast<std::size_t>(t)];
  }
};

// The calibrated profile for each of the three operators.
[[nodiscard]] const OperatorProfile& operator_profile(OperatorId op);

// Diurnal cell-load multipliers by quarter of the local day (night 00-06,
// morning 06-12, afternoon 12-18, evening 18-24), applied to the
// environment's mean load when a cell's load character is drawn. The
// identity regime (all ones) is the paper's behavior and adds no work on
// the draw path, keeping the golden checksum untouched.
struct LoadRegime {
  std::array<double, 4> by_quarter{1.0, 1.0, 1.0, 1.0};

  [[nodiscard]] bool is_identity() const {
    return by_quarter[0] == 1.0 && by_quarter[1] == 1.0 &&
           by_quarter[2] == 1.0 && by_quarter[3] == 1.0;
  }
  // local_hour in [0, 23].
  [[nodiscard]] double scale(int local_hour) const {
    return by_quarter[static_cast<std::size_t>(local_hour / 6) & 3];
  }
};

}  // namespace wheels::ran
