#include "ran/operator_profile.h"

namespace wheels::ran {
namespace {

using radio::Environment;
using radio::Tech;

constexpr std::size_t idx(Tech t) { return static_cast<std::size_t>(t); }

// Timezone scale arrays are indexed Pacific, Mountain, Central, Eastern.

constexpr OperatorProfile make_verizon() {
  OperatorProfile p{};
  p.id = OperatorId::Verizon;

  // Ubiquitous 4G; LTE-A the workhorse.
  p.deploy[idx(Tech::LTE)] = {.avail_urban = 1.0,
                              .avail_suburban = 1.0,
                              .avail_rural = 0.98,
                              .timezone_scale = {1, 1, 1, 1},
                              .site_spacing = Meters{2400.0}};
  p.deploy[idx(Tech::LTE_A)] = {.avail_urban = 0.95,
                                .avail_suburban = 0.85,
                                .avail_rural = 0.70,
                                .timezone_scale = {1, 0.95, 1, 1},
                                .site_spacing = Meters{1800.0}};
  // Thin nationwide low-band (DSS-based in 2022), better in the east.
  p.deploy[idx(Tech::NR_LOW)] = {.avail_urban = 0.55,
                                 .avail_suburban = 0.28,
                                 .avail_rural = 0.075,
                                 .timezone_scale = {0.8, 0.7, 1.1, 1.25},
                                 .site_spacing = Meters{3200.0}};
  // C-band mid-band just ramping up; mostly metro, east-leaning.
  p.deploy[idx(Tech::NR_MID)] = {.avail_urban = 0.50,
                                 .avail_suburban = 0.22,
                                 .avail_rural = 0.045,
                                 .timezone_scale = {0.9, 0.6, 1.1, 1.3},
                                 .site_spacing = Meters{1500.0}};
  // The flagship: downtown mmWave, by far the widest of the three.
  p.deploy[idx(Tech::NR_MMWAVE)] = {.avail_urban = 0.55,
                                    .avail_suburban = 0.06,
                                    .avail_rural = 0.0,
                                    .timezone_scale = {1.0, 0.8, 1.0, 1.1},
                                    .site_spacing = Meters{280.0}};

  p.policy = {.hs5g_given_dl = 0.85,
              .hs5g_given_ul = 0.33,
              .hs5g_given_interactive = 0.55,
              .low5g_given_traffic = 0.72,
              .any5g_given_idle = 0.10,
              .policy_dwell = Millis{45'000.0}};

  p.handover = {.median_dl = Millis{53.0},
                .median_ul = Millis{49.0},
                .sigma = 0.47,
                .a3_offset = Db{3.0},
                .time_to_trigger = Millis{256.0},
                .measurement_noise_db = 2.8};

  // Verizon uses fewer, wider mmWave beams: lower array gain, hence the
  // -80..-110 dBm mmWave RSRP the paper reports (vs AT&T's -70..-90).
  p.mmwave_beam_penalty = Db{12.0};
  p.load_urban = 0.50;
  p.load_suburban = 0.34;
  p.load_rural = 0.22;
  p.ca_extra_dl = 0.60;
  p.ca_extra_ul = 0.05;  // Verizon rarely uses uplink CA
  p.latency_per_mph = 0.10;
  p.core_latency_ms = 0.5;
  p.mmwave_max_cc_dl = 8;
  p.ul_peak_scale = 1.0;  // rich peering + Wavelength presence
  p.load_sigma = 0.20;
  return p;
}

constexpr OperatorProfile make_tmobile() {
  OperatorProfile p{};
  p.id = OperatorId::TMobile;

  p.deploy[idx(Tech::LTE)] = {.avail_urban = 1.0,
                              .avail_suburban = 1.0,
                              .avail_rural = 0.97,
                              .timezone_scale = {1, 1, 1, 1},
                              .site_spacing = Meters{2600.0}};
  p.deploy[idx(Tech::LTE_A)] = {.avail_urban = 0.90,
                                .avail_suburban = 0.80,
                                .avail_rural = 0.60,
                                .timezone_scale = {1, 1, 1, 1},
                                .site_spacing = Meters{2200.0}};
  // Extended-range 600 MHz blanket: the coverage leader.
  p.deploy[idx(Tech::NR_LOW)] = {.avail_urban = 0.88,
                                 .avail_suburban = 0.72,
                                 .avail_rural = 0.45,
                                 .timezone_scale = {1, 0.9, 1, 1},
                                 .site_spacing = Meters{3600.0}};
  // n41 mid-band along highways too -- the only carrier with significant
  // high-speed 5G at 60+ mph; strongest in the Pacific zone (Fig. 2c).
  p.deploy[idx(Tech::NR_MID)] = {.avail_urban = 0.90,
                                 .avail_suburban = 0.62,
                                 .avail_rural = 0.30,
                                 .timezone_scale = {1.35, 0.85, 0.95, 1.0},
                                 .site_spacing = Meters{1600.0}};
  // Token mmWave; the paper rarely saw it.
  p.deploy[idx(Tech::NR_MMWAVE)] = {.avail_urban = 0.012,
                                    .avail_suburban = 0.0,
                                    .avail_rural = 0.0,
                                    .timezone_scale = {1, 0.5, 1, 1},
                                    .site_spacing = Meters{280.0}};

  p.policy = {.hs5g_given_dl = 0.90,
              .hs5g_given_ul = 0.60,
              .hs5g_given_interactive = 0.70,
              .low5g_given_traffic = 0.78,
              .any5g_given_idle = 0.30,
              .policy_dwell = Millis{45'000.0}};

  p.handover = {.median_dl = Millis{76.0},
                .median_ul = Millis{75.0},
                .sigma = 0.51,
                .a3_offset = Db{2.5},
                .time_to_trigger = Millis{256.0},
                .measurement_noise_db = 1.2};

  p.mmwave_beam_penalty = Db{6.0};
  p.load_urban = 0.55;  // mid-band carries most load -> deep fluctuation
  p.load_suburban = 0.38;
  p.load_rural = 0.28;
  p.ca_extra_dl = 0.60;
  p.ca_extra_ul = 0.60;  // T-Mobile often aggregates 2 UL carriers
  p.latency_per_mph = 0.12;
  p.core_latency_ms = 6.0;
  p.mmwave_max_cc_dl = 4;
  p.ul_peak_scale = 0.60;
  p.load_sigma = 0.30;  // heavily loaded n41: feast-or-famine samples
  return p;
}

constexpr OperatorProfile make_att() {
  OperatorProfile p{};
  p.id = OperatorId::ATT;

  // The best 4G footprint: LTE-A nearly everywhere.
  p.deploy[idx(Tech::LTE)] = {.avail_urban = 1.0,
                              .avail_suburban = 1.0,
                              .avail_rural = 0.99,
                              .timezone_scale = {1, 1, 1, 1},
                              .site_spacing = Meters{2400.0}};
  p.deploy[idx(Tech::LTE_A)] = {.avail_urban = 0.97,
                                .avail_suburban = 0.93,
                                .avail_rural = 0.85,
                                .timezone_scale = {1, 1, 1, 1},
                                .site_spacing = Meters{1500.0}};
  // 850 MHz low-band 5G, but sparse in the Mountain/Central interior.
  p.deploy[idx(Tech::NR_LOW)] = {.avail_urban = 0.78,
                                 .avail_suburban = 0.50,
                                 .avail_rural = 0.24,
                                 .timezone_scale = {1.25, 0.30, 0.35, 1.3},
                                 .site_spacing = Meters{3400.0}};
  // Very thin mid-band (C-band ramping), metro only.
  p.deploy[idx(Tech::NR_MID)] = {.avail_urban = 0.50,
                                 .avail_suburban = 0.14,
                                 .avail_rural = 0.015,
                                 .timezone_scale = {1.1, 0.3, 0.4, 1.2},
                                 .site_spacing = Meters{1700.0}};
  // A handful of downtown mmWave pockets ("5G+").
  p.deploy[idx(Tech::NR_MMWAVE)] = {.avail_urban = 0.30,
                                    .avail_suburban = 0.01,
                                    .avail_rural = 0.0,
                                    .timezone_scale = {1.1, 0.4, 0.6, 1.1},
                                    .site_spacing = Meters{280.0}};

  p.policy = {.hs5g_given_dl = 0.80,
              .hs5g_given_ul = 0.22,
              .hs5g_given_interactive = 0.45,
              .low5g_given_traffic = 0.75,
              // Fig. 1d: the passive logger never saw AT&T 5G at all.
              .any5g_given_idle = 0.0,
              .policy_dwell = Millis{45'000.0}};

  p.handover = {.median_dl = Millis{58.0},
                .median_ul = Millis{57.0},
                .sigma = 0.36,
                .a3_offset = Db{3.0},
                .time_to_trigger = Millis{320.0},
                .measurement_noise_db = 2.6};

  // AT&T's narrow high-gain beams: strong mmWave RSRP (-70..-90 dBm).
  p.mmwave_beam_penalty = Db{0.0};
  p.load_urban = 0.48;
  p.load_suburban = 0.33;
  p.load_rural = 0.21;
  p.ca_extra_dl = 0.70;
  p.ca_extra_ul = 0.30;
  p.latency_per_mph = 0.04;
  p.core_latency_ms = 8.0;
  p.mmwave_max_cc_dl = 4;
  p.ul_peak_scale = 0.45;
  p.backhaul_scale = 1.45;
  p.load_sigma = 0.15;
  return p;
}

// Constant-initialized at compile time: replay workers may hit their first
// operator_profile() call concurrently, so the tables must not be magic
// statics (no initialization race, no guard-variable synchronization).
constexpr OperatorProfile kVerizonProfile = make_verizon();
constexpr OperatorProfile kTMobileProfile = make_tmobile();
constexpr OperatorProfile kAttProfile = make_att();

}  // namespace

double TechDeployment::availability(Environment env, TimeZone tz) const {
  double base = 0.0;
  switch (env) {
    case Environment::Urban: base = avail_urban; break;
    case Environment::Suburban: base = avail_suburban; break;
    case Environment::Rural: base = avail_rural; break;
  }
  const double scaled =
      base * timezone_scale[static_cast<std::size_t>(tz)];
  return scaled < 0.0 ? 0.0 : (scaled > 1.0 ? 1.0 : scaled);
}

const OperatorProfile& operator_profile(OperatorId op) {
  switch (op) {
    case OperatorId::Verizon: return kVerizonProfile;
    case OperatorId::TMobile: return kTMobileProfile;
    case OperatorId::ATT: return kAttProfile;
  }
  return kVerizonProfile;
}

}  // namespace wheels::ran
