// Cell deployment generation along the corridor.
//
// For each operator and each technology layer, coverage is generated as a
// two-state Markov chain over ~3 km corridor blocks (covered / hole) whose
// stationary distribution matches the profile's availability for the local
// environment and timezone -- this produces the *fragmented* coverage the
// paper emphasizes rather than uniformly sprinkled cells. Within covered
// stretches, cell sites are laid out at the profile's inter-site spacing
// with jitter and a lateral offset from the road.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/rng.h"
#include "core/units.h"
#include "ran/corridor.h"
#include "ran/operator_profile.h"
#include "radio/technology.h"

namespace wheels::ran {

using CellId = std::uint32_t;

struct Cell {
  CellId id = 0;
  radio::Tech tech = radio::Tech::LTE;
  Meters route_pos{0.0};  // corridor coordinate of the site
  Meters lateral{50.0};   // perpendicular offset from the road
  // Static per-cell calibration offset (installation variance, dB).
  double site_offset_db = 0.0;
  // Wired backhaul capacity of the site (downlink Mbps). Urban sites are
  // fibered; many rural interstate sites run on microwave links that cap
  // user throughput far below the radio's ability.
  double backhaul_dl_mbps = 500.0;
};

class Deployment {
 public:
  // Generate the deployment for one operator along the corridor.
  static Deployment generate(const Corridor& corridor,
                             const OperatorProfile& profile, Rng rng);

  // Nearest cell of `tech` to corridor position `pos`, if any is within
  // its service range (a multiple of the layer's site spacing).
  [[nodiscard]] const Cell* nearest_cell(radio::Tech tech, Meters pos) const;

  // 3-D-ish distance from `pos` to a cell (route delta + lateral offset).
  // Inline: this is evaluated a few times per simulation slot (serving
  // link, handover evaluation, batched candidate sweep) and the hypot is
  // the whole body.
  [[nodiscard]] static Meters distance_to(const Cell& cell, Meters pos) {
    const double dx = cell.route_pos.value - pos.value;
    return Meters{std::hypot(dx, cell.lateral.value)};
  }

  [[nodiscard]] std::span<const Cell> cells(radio::Tech tech) const;
  [[nodiscard]] std::size_t total_cells() const;

  // Service range beyond which a cell of this layer is unusable. A site
  // serves up to ~0.9x the inter-site distance along the road (beyond
  // that a neighbour would be serving, or it is a coverage edge).
  [[nodiscard]] static Meters service_range(radio::Tech tech,
                                            const OperatorProfile& profile) {
    return profile.deployment(tech).site_spacing * 0.9;
  }

 private:
  Deployment() = default;

  // Per-tech cells sorted by route position.
  std::array<std::vector<Cell>, 5> by_tech_;
  const OperatorProfile* profile_ = nullptr;
};

}  // namespace wheels::ran
