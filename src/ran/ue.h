// The UE (user equipment) simulator: serving-technology selection,
// measurement-driven handovers, carrier aggregation, and per-slot PHY
// rates, as the vehicle moves along the corridor.
//
// This is the component the XCAL Solo taps in the real study: every call to
// step() corresponds to one diagnostic snapshot (RSRP, MCS, BLER, CA,
// serving cell, handover state) plus the achievable PHY goodput that feeds
// the transport simulation.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "core/rng.h"
#include "core/sim_time.h"
#include "core/units.h"
#include "radio/band.h"
#include "radio/fading.h"
#include "radio/kernel.h"
#include "radio/phy_rate.h"
#include "ran/deployment.h"
#include "ran/kernel.h"
#include "ran/operator_profile.h"

namespace wheels::ran {

// One diagnostic snapshot, produced per simulation step.
struct LinkSample {
  bool connected = false;
  radio::Tech tech = radio::Tech::LTE;
  CellId cell = 0;
  Dbm rsrp{-140.0};
  Db sinr_dl{-10.0};
  Db sinr_ul{-10.0};
  int mcs_dl = 0;
  int mcs_ul = 0;
  double bler_dl = 1.0;
  double bler_ul = 1.0;
  int num_cc_dl = 1;
  int num_cc_ul = 1;
  Mbps phy_rate_dl{0.0};
  Mbps phy_rate_ul{0.0};
  bool in_handover = false;
  Millis air_latency{20.0};  // one-way RAN latency component
  double cell_load = 0.0;

  [[nodiscard]] Mbps phy_rate(radio::Direction d) const {
    return d == radio::Direction::Downlink ? phy_rate_dl : phy_rate_ul;
  }
};

struct HandoverRecord {
  SimTime time;
  Millis duration{0.0};
  radio::Tech from_tech = radio::Tech::LTE;
  radio::Tech to_tech = radio::Tech::LTE;
  CellId from_cell = 0;
  CellId to_cell = 0;
  Meters position{0.0};

  [[nodiscard]] radio::HandoverKind kind() const {
    return radio::classify_handover(from_tech, to_tech);
  }

  friend bool operator==(const HandoverRecord&,
                         const HandoverRecord&) = default;
};

class UeSimulator {
 public:
  // `plan` selects the band catalog every link-budget/PHY computation uses
  // (scenarios swap it wholesale); `regime` applies diurnal load scaling
  // when a cell's load character is drawn. The defaults reproduce the
  // paper's behavior exactly.
  UeSimulator(const Corridor& corridor, const Deployment& deployment,
              const OperatorProfile& profile, Rng rng,
              TrafficProfile traffic = TrafficProfile::Idle,
              const radio::BandPlan& plan = radio::default_band_plan(),
              LoadRegime regime = LoadRegime{});

  // Change the traffic context (forces a policy re-evaluation).
  void set_traffic(TrafficProfile t);

  // "Best static conditions": the study's per-city baselines were taken
  // facing a downtown site (fibered backhaul, off-peak sector). Suppresses
  // the congested-cell mixture and the backhaul cap.
  void set_favourable_conditions(bool f) { favourable_ = f; }
  [[nodiscard]] TrafficProfile traffic() const { return traffic_; }

  // Advance the UE to corridor position `pos` (monotonic non-decreasing)
  // at simulated time `now`; `dt` is the elapsed time since the previous
  // step and `speed` the current vehicle speed.
  LinkSample step(SimTime now, Meters pos, Mph speed, Millis dt);

  // Batched replay. begin_segment() prefetches the per-layer shadowing
  // rows for every slot of the batch (same recurrence, same per-stream RNG
  // draw order as scalar stepping); the batched step() then consumes rows
  // 0..size-1 in order, one step per row, with geometry, environment and
  // candidate cells read from the batch instead of Corridor/Deployment
  // lookups. Bit-identical to the scalar step() at the same
  // position/speed/dt. A UE that steps a batch *without* begin_segment()
  // (the passive logger, on its own cadence) advances shadowing scalar
  // per call and only borrows the batch geometry.
  void begin_segment(const SegmentBatch& batch);
  LinkSample step(SimTime now, Millis dt, const SegmentBatch& batch,
                  std::size_t row);

  [[nodiscard]] const std::vector<HandoverRecord>& handovers() const {
    return handovers_;
  }
  // Unique cells ever connected to (Table 1 statistic).
  [[nodiscard]] std::size_t unique_cell_count() const;
  // Raw connection history (cell ids in attach order, with repeats).
  [[nodiscard]] const std::vector<CellId>& seen_cells() const {
    return seen_cells_;
  }

  // Drop accumulated history (between campaign phases) without resetting
  // radio state.
  void clear_history();

 private:
  struct LayerState {
    radio::ShadowingProcess shadowing;
    const Cell* candidate = nullptr;  // nearest usable cell this step
  };

  // Everything about the step in flight that used to be re-derived from
  // Corridor/Deployment lookups. Valid for the duration of one step();
  // `batch` selects the cached-constant math mirrors when non-null.
  struct SlotContext {
    radio::Environment env = radio::Environment::Rural;
    TimeZone tz = TimeZone::Pacific;
    const SegmentBatch* batch = nullptr;
    std::size_t row = 0;
    std::array<double, 5> shadow_db{};  // this step's shadowing, per layer
  };

  LinkSample step_core(SimTime now, Meters pos, Mph speed, Millis dt);
  void ensure_layers(radio::Environment env);
  void evaluate_policy(SimTime now, Meters pos, Mph speed);
  // Distance to the current candidate of `tech` (batch column when
  // batched, Deployment::distance_to otherwise).
  [[nodiscard]] double candidate_distance(radio::Tech tech, Meters pos) const;
  // Distance to the serving cell; the batched path reuses the fill
  // sweep's hypot whenever the serving cell is this row's candidate.
  [[nodiscard]] double serving_distance_m(Meters pos) const;
  [[nodiscard]] Dbm layer_rsrp(radio::Tech tech, const Cell& cell,
                               double dist_m, radio::Environment env,
                               Db shadow) const;
  void maybe_start_handover(SimTime now, Meters pos, Millis dt);
  void begin_handover(SimTime now, Meters pos, radio::Tech to_tech,
                      const Cell* to_cell);
  [[nodiscard]] double target_load(radio::Environment env) const;
  [[nodiscard]] double draw_cell_load(radio::Environment env, SimTime now,
                                      Meters pos);
  [[nodiscard]] Millis sample_ho_duration();

  const Corridor& corridor_;
  const Deployment& deployment_;
  const OperatorProfile& profile_;
  Rng rng_;
  TrafficProfile traffic_;
  const radio::BandPlan& plan_;
  LoadRegime regime_;

  std::array<std::optional<LayerState>, 5> layers_;
  radio::BlockageProcess blockage_;
  radio::FastFading fading_sub6_;
  radio::FastFading fading_mmwave_;

  // Serving state.
  bool connected_ = false;
  radio::Tech serving_tech_ = radio::Tech::LTE;
  const Cell* serving_cell_ = nullptr;
  double load_ = 0.4;  // serving-cell background load (OU process)
  double load_target_ = 0.4;  // the cell's own character (congested or not)
  int num_cc_dl_ = 1;
  int num_cc_ul_ = 1;

  // Policy stickiness: decisions persist until the coverage signature
  // changes, the traffic context changes, or a long dwell expires.
  SimTime next_policy_eval_{};
  bool policy_initialized_ = false;
  unsigned last_avail_signature_ = 0;

  // A3 time-to-trigger accumulation toward a candidate target.
  const Cell* a3_target_ = nullptr;
  radio::Tech a3_target_tech_ = radio::Tech::LTE;
  Millis a3_accumulated_{0.0};

  // In-progress handover interruption.
  Millis ho_remaining_{0.0};

  Meters last_pos_{0.0};
  bool first_step_ = true;
  bool favourable_ = false;

  // Batched-replay state. `derived_` hoists the plan's band constants and
  // adaptation tables; the scratch rows are reused segment to segment.
  radio::DerivedPlan derived_;
  SlotContext slot_;
  bool layers_ready_ = false;
  bool shadow_prefilled_ = false;
  std::array<std::vector<double>, 5> shadow_rows_;
  std::array<std::vector<double>, 5> rho_rows_;
  std::array<std::vector<double>, 5> noise_rows_;
  std::vector<double> travelled_scratch_;

  std::vector<HandoverRecord> handovers_;
  std::vector<CellId> seen_cells_;  // sorted-unique on query
};

}  // namespace wheels::ran
