// Adapters from declarative scenario specs to calibrated RAN profiles.
//
// A scenario names a calibration ("verizon"/"tmobile"/"att") per roster
// slot and optionally overrides the promotion policy or scales coverage
// and load. The adapters below start from the calibrated profile and apply
// only the overrides that were actually specified, so the paper-default
// roster reproduces operator_profile() bit-for-bit.
#pragma once

#include "ran/operator_profile.h"
#include "scenario/spec.h"

namespace wheels::ran {

// Build the profile for one roster slot. `slot` fixes the OperatorId used
// for result indexing (the roster order defines the slot order). Throws
// std::invalid_argument for an unknown calibration name.
[[nodiscard]] OperatorProfile profile_from_spec(
    const scenario::OperatorSpec& spec, OperatorId slot);

[[nodiscard]] LoadRegime regime_from_spec(const scenario::LoadRegimeSpec& spec);

}  // namespace wheels::ran
