// A 1-D abstraction of the drive route used by the RAN layer.
//
// The trip layer flattens the geographic route into a corridor: a sequence
// of segments along the driven distance, each carrying the radio
// environment (urban / suburban / rural) and the timezone. Deployment and
// UE simulation work in corridor coordinates (meters from the start), which
// keeps the RAN layer independent of geodesy.
#pragma once

#include <stdexcept>
#include <vector>

#include "core/sim_time.h"
#include "core/units.h"
#include "radio/pathloss.h"

namespace wheels::ran {

struct CorridorSegment {
  Meters begin{0.0};
  Meters end{0.0};
  radio::Environment env = radio::Environment::Rural;
  TimeZone tz = TimeZone::Pacific;
};

class Corridor {
 public:
  // Segments must be contiguous, ordered, and start at 0.
  explicit Corridor(std::vector<CorridorSegment> segments);

  [[nodiscard]] Meters length() const { return length_; }
  [[nodiscard]] const std::vector<CorridorSegment>& segments() const {
    return segments_;
  }

  // Segment containing `pos` (clamped to the corridor).
  [[nodiscard]] const CorridorSegment& at(Meters pos) const;

 private:
  std::vector<CorridorSegment> segments_;
  Meters length_{0.0};
};

}  // namespace wheels::ran
