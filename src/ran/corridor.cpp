#include "ran/corridor.h"

#include <algorithm>

#include "core/stats.h"

namespace wheels::ran {

Corridor::Corridor(std::vector<CorridorSegment> segments)
    : segments_(std::move(segments)) {
  if (segments_.empty()) {
    throw std::invalid_argument("Corridor: no segments");
  }
  if (!approx_zero(segments_.front().begin.value)) {
    throw std::invalid_argument("Corridor: must start at 0");
  }
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (!(segments_[i].end > segments_[i].begin)) {
      throw std::invalid_argument("Corridor: empty or inverted segment");
    }
    if (i && !approx_equal(segments_[i].begin.value,
                           segments_[i - 1].end.value)) {
      throw std::invalid_argument("Corridor: segments not contiguous");
    }
  }
  length_ = segments_.back().end;
}

const CorridorSegment& Corridor::at(Meters pos) const {
  const double p = std::clamp(pos.value, 0.0, length_.value);
  // Binary search over segment starts.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), p,
      [](double v, const CorridorSegment& s) { return v < s.end.value; });
  if (it == segments_.end()) return segments_.back();
  return *it;
}

}  // namespace wheels::ran
