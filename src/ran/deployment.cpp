#include "ran/deployment.h"

#include <algorithm>
#include <cmath>

namespace wheels::ran {
namespace {

using radio::Tech;

constexpr double kBlockMeters = 3000.0;
// Mean sojourn in the "covered" state, in blocks: coverage comes in
// ~4-block (12 km) stretches, matching the fragmented maps of Fig. 1.
constexpr double kMeanCoveredRunBlocks = 4.0;

constexpr std::size_t idx(Tech t) { return static_cast<std::size_t>(t); }

}  // namespace

Deployment Deployment::generate(const Corridor& corridor,
                                const OperatorProfile& profile, Rng rng) {
  Deployment d;
  d.profile_ = &profile;
  CellId next_id = 1;

  for (Tech tech : radio::kAllTechs) {
    // wheels-rng: dynamic(one placement stream per radio tech)
    Rng layer_rng = rng.fork(to_string(tech));
    auto& cells = d.by_tech_[idx(tech)];
    const TechDeployment& td = profile.deployment(tech);

    bool covered = false;
    bool first_block = true;
    // Walk the corridor block by block, flipping the coverage state with
    // the Markov transition probabilities implied by (availability, mean
    // covered run length).
    for (double block_start = 0.0; block_start < corridor.length().value;
         block_start += kBlockMeters) {
      const auto& seg = corridor.at(Meters{block_start + kBlockMeters / 2});
      const double avail = td.availability(seg.env, seg.tz);
      if (avail <= 0.0) {
        covered = false;
        first_block = true;  // re-seed the chain after a forced gap
        continue;
      }
      if (first_block) {
        covered = layer_rng.chance(avail);
        first_block = false;
      } else {
        // Two-state chain with stationary P(covered) = avail and mean
        // covered sojourn kMeanCoveredRunBlocks.
        const double p_leave_covered =
            std::min(1.0, 1.0 / kMeanCoveredRunBlocks);
        const double p_enter_covered =
            avail >= 1.0 ? 1.0
                         : std::min(1.0, p_leave_covered * avail /
                                             (1.0 - avail));
        covered = covered ? !layer_rng.chance(p_leave_covered)
                          : layer_rng.chance(p_enter_covered);
      }
      if (!covered) continue;

      // Lay out sites within the covered block.
      const double spacing = td.site_spacing.value;
      double pos = block_start + layer_rng.uniform(0.0, spacing);
      while (pos < block_start + kBlockMeters) {
        Cell c;
        c.id = next_id++;
        c.tech = tech;
        c.route_pos = Meters{pos};
        const double min_lateral = tech == Tech::NR_MMWAVE ? 15.0 : 30.0;
        c.lateral = Meters{min_lateral +
                           std::abs(layer_rng.normal(0.0, spacing / 6.0))};
        c.site_offset_db = layer_rng.normal(0.0, 2.0);
        // Backhaul: lognormal around an environment-dependent median.
        // Sites carrying a 5G upgrade usually received a backhaul upgrade
        // with it, which is what makes a 4G->5G handover typically pay
        // off (Fig. 12).
        double bh_median = 0.0, bh_sigma = 0.0;
        switch (seg.env) {
          case radio::Environment::Urban:
            bh_median = 500.0;
            bh_sigma = 0.7;
            break;
          case radio::Environment::Suburban:
            bh_median = 60.0;
            bh_sigma = 0.9;
            break;
          case radio::Environment::Rural:
            bh_median = 27.0;
            bh_sigma = 1.1;
            break;
        }
        switch (tech) {
          case Tech::NR_LOW: bh_median *= 1.4; break;
          case Tech::NR_MID: bh_median *= 1.9; break;
          case Tech::NR_MMWAVE: bh_median *= 3.0; break;
          default: break;
        }
        c.backhaul_dl_mbps =
            bh_median * std::exp(layer_rng.normal(0.0, bh_sigma));
        cells.push_back(c);
        pos += spacing * layer_rng.uniform(0.75, 1.25);
      }
    }
    std::sort(cells.begin(), cells.end(),
              [](const Cell& a, const Cell& b) {
                return a.route_pos < b.route_pos;
              });
  }
  return d;
}

const Cell* Deployment::nearest_cell(Tech tech, Meters pos) const {
  const auto& cells = by_tech_[idx(tech)];
  if (cells.empty()) return nullptr;
  // Lateral offsets mean the route-adjacent site is not always the
  // nearest in 2-D: scan every site within the service range along the
  // route (a handful at most).
  const double range = service_range(tech, *profile_).value;
  const auto lo = std::lower_bound(
      cells.begin(), cells.end(), pos.value - range,
      [](const Cell& c, double v) { return c.route_pos.value < v; });
  const Cell* best = nullptr;
  double best_d = 0.0;
  for (auto it = lo; it != cells.end(); ++it) {
    if (it->route_pos.value > pos.value + range) break;
    const double d = distance_to(*it, pos).value;
    if (!best || d < best_d) {
      best = &*it;
      best_d = d;
    }
  }
  if (!best || best_d > range) return nullptr;
  return best;
}

std::span<const Cell> Deployment::cells(Tech tech) const {
  return by_tech_[idx(tech)];
}

std::size_t Deployment::total_cells() const {
  std::size_t n = 0;
  for (const auto& v : by_tech_) n += v.size();
  return n;
}

}  // namespace wheels::ran
