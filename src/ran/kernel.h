// Batched replay kernel, RAN half: the structure-of-arrays view of one
// trajectory segment shared by every UE replaying it.
//
// A SegmentBatch hoists everything about a segment that does not depend on
// UE state: per-slot position/speed, the pre-resolved environment and
// timezone (recorded into the TrajectoryPoint at trajectory time, so the
// batch needs zero Corridor lookups), and -- per technology layer -- the
// nearest usable cell with its 2-D distance. Candidate cells are a pure
// function of position, so one monotone sweep over the sorted cell list
// replaces a binary search per slot per layer. Everything consuming RNG
// (shadowing, fading, policy draws) stays owned by the UE; the batch is
// read-only geometry.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "core/sim_time.h"
#include "radio/pathloss.h"
#include "radio/technology.h"
#include "ran/deployment.h"
#include "ran/operator_profile.h"

namespace wheels::ran {

struct SegmentBatch {
  std::vector<double> pos_m;
  std::vector<double> speed_mph;
  std::vector<radio::Environment> env;
  std::vector<TimeZone> tz;

  struct Layer {
    std::vector<const Cell*> cell;  // nearest usable cell, or nullptr
    std::vector<double> dist_m;     // distance_to(*cell, pos); 0 when null
  };
  std::array<Layer, 5> layers{};  // indexed by Tech

  [[nodiscard]] std::size_t size() const { return pos_m.size(); }
  void resize(std::size_t n);
};

// Fill every layer's candidate-cell columns for the batch positions.
// Produces, slot for slot, the exact cell pointer and distance that
// Deployment::nearest_cell + distance_to would: same range cut, same scan
// order, same strict-less tie-break. Positions are visited in order, so
// the per-layer window start only moves forward (the sweep restarts if a
// segment ever runs backwards).
void fill_nearest_cells(const Deployment& dep, const OperatorProfile& profile,
                        SegmentBatch& b);

}  // namespace wheels::ran
