#include "ran/kernel.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wheels::ran {

void SegmentBatch::resize(std::size_t n) {
  pos_m.resize(n);
  speed_mph.resize(n);
  env.resize(n);
  tz.resize(n);
  for (Layer& layer : layers) {
    layer.cell.resize(n);
    layer.dist_m.resize(n);
  }
}

void fill_nearest_cells(const Deployment& dep, const OperatorProfile& profile,
                        SegmentBatch& b) {
  const std::size_t n = b.size();
  for (radio::Tech tech : radio::kAllTechs) {
    auto& layer = b.layers[static_cast<std::size_t>(tech)];
    const std::span<const Cell> cells = dep.cells(tech);
    if (cells.empty()) {
      std::fill(layer.cell.begin(), layer.cell.end(), nullptr);
      std::fill(layer.dist_m.begin(), layer.dist_m.end(), 0.0);
      continue;
    }
    const double range = Deployment::service_range(tech, profile).value;
    std::size_t lo = 0;
    double prev_pos = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      const double pos = b.pos_m[i];
      if (pos < prev_pos) lo = 0;  // backwards jump: restart the sweep
      prev_pos = pos;
      // Advance the window start exactly as nearest_cell's lower_bound
      // would (same `route_pos < pos - range` predicate).
      while (lo < cells.size() && cells[lo].route_pos.value < pos - range) {
        ++lo;
      }
      const Cell* best = nullptr;
      double best_d = 0.0;
      for (std::size_t j = lo; j < cells.size(); ++j) {
        const double dx = cells[j].route_pos.value - pos;
        if (dx > range) break;
        // hypot(dx, lateral) >= |dx| (hypot never rounds below an exact
        // operand), so when |dx| >= best_d the strict `d < best_d` test
        // cannot pass -- skip the hypot without changing the winner.
        if (best != nullptr && std::fabs(dx) >= best_d) continue;
        const double d = Deployment::distance_to(cells[j], Meters{pos}).value;
        if (best == nullptr || d < best_d) {
          best = &cells[j];
          best_d = d;
        }
      }
      if (best == nullptr || best_d > range) {
        layer.cell[i] = nullptr;
        layer.dist_m[i] = 0.0;
      } else {
        layer.cell[i] = best;
        layer.dist_m[i] = best_d;
      }
    }
  }
}

}  // namespace wheels::ran
