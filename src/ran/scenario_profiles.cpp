#include "ran/scenario_profiles.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wheels::ran {
namespace {

OperatorId calibration_id(const std::string& name) {
  if (name == "verizon") return OperatorId::Verizon;
  if (name == "tmobile") return OperatorId::TMobile;
  if (name == "att") return OperatorId::ATT;
  throw std::invalid_argument(
      "scenario: unknown calibration \"" + name +
      "\" (expected verizon/tmobile/att)");
}

void apply_override(double& field, double value) {
  if (!std::isnan(value)) field = value;
}

}  // namespace

OperatorProfile profile_from_spec(const scenario::OperatorSpec& spec,
                                  OperatorId slot) {
  OperatorProfile p = operator_profile(calibration_id(spec.calibration));
  p.id = slot;

  apply_override(p.policy.hs5g_given_dl, spec.promotion.hs5g_given_dl);
  apply_override(p.policy.hs5g_given_ul, spec.promotion.hs5g_given_ul);
  apply_override(p.policy.hs5g_given_interactive,
                 spec.promotion.hs5g_given_interactive);
  apply_override(p.policy.low5g_given_traffic,
                 spec.promotion.low5g_given_traffic);
  apply_override(p.policy.any5g_given_idle, spec.promotion.any5g_given_idle);

  // Guarded so the default scale of exactly 1.0 leaves the calibrated
  // profile bit-identical (no clamp can perturb it).
  if (spec.availability_scale != 1.0) {
    for (TechDeployment& d : p.deploy) {
      d.avail_urban = std::clamp(d.avail_urban * spec.availability_scale,
                                 0.0, 1.0);
      d.avail_suburban = std::clamp(
          d.avail_suburban * spec.availability_scale, 0.0, 1.0);
      d.avail_rural = std::clamp(d.avail_rural * spec.availability_scale,
                                 0.0, 1.0);
    }
  }
  if (spec.load_scale != 1.0) {
    p.load_urban = std::clamp(p.load_urban * spec.load_scale, 0.01, 0.95);
    p.load_suburban = std::clamp(p.load_suburban * spec.load_scale,
                                 0.01, 0.95);
    p.load_rural = std::clamp(p.load_rural * spec.load_scale, 0.01, 0.95);
  }
  return p;
}

LoadRegime regime_from_spec(const scenario::LoadRegimeSpec& spec) {
  LoadRegime r;
  r.by_quarter = {spec.night, spec.morning, spec.afternoon, spec.evening};
  return r;
}

}  // namespace wheels::ran
