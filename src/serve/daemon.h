// Socket / stdio transport of the serve daemon.
//
// Socket mode listens on an AF_UNIX stream socket and serves each
// connection on its own thread; stdio mode serves exactly one session on
// fds 0/1 (pipe transport for harnesses without socket plumbing). Both
// feed complete frames to the shared Router. A self-pipe unblocks the
// accept loop and a stop flag (checked on a 100 ms poll tick) unwinds
// every session, so request_stop() -- from a signal handler, a Shutdown
// request, or a test -- always converges to run() returning 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/router.h"

namespace wheels::serve {

struct DaemonOptions {
  // AF_UNIX socket path (socket mode). Bound fresh on run(); unlinked on
  // shutdown. Ignored in stdio mode.
  std::string socket_path;
  // Serve one session on stdin/stdout instead of listening.
  bool stdio = false;
  // Per-connection idle/read timeout in ms; < 0 resolves
  // WHEELS_SERVE_IDLE_MS, then defaults to 30000. 0 disables timeouts.
  int idle_timeout_ms = -1;
  // Max concurrent sessions; excess connections get a typed Busy error.
  int max_sessions = 64;
  bool verbose = false;
  RouterOptions router;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions opts = DaemonOptions{});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Serve until request_stop() (or a Shutdown request). Returns 0 on a
  // clean shutdown, 1 on a transport setup failure.
  int run();

  // Thread-safe and signal-friendly; unblocks the accept loop and every
  // in-flight session poll.
  void request_stop();

  [[nodiscard]] Router& router() { return router_; }
  [[nodiscard]] const std::string& socket_path() const {
    return opts_.socket_path;
  }
  [[nodiscard]] int idle_timeout_ms() const { return idle_timeout_ms_; }

 private:
  enum class IoStatus : std::uint8_t { Ok, Closed, Timeout, Stopped, Error };

  int run_socket();
  void serve_session(int in_fd, int out_fd, bool close_fds);
  IoStatus read_exact(int fd, char* buf, std::size_t n, std::size_t& got);
  bool write_all(int fd, std::string_view bytes);
  void reap_finished_sessions();

  DaemonOptions opts_;
  int idle_timeout_ms_;
  Router router_;

  std::atomic<bool> stop_{false};
  int stop_pipe_[2] = {-1, -1};
  std::atomic<std::uint32_t> next_session_id_{1};

  // Session threads stay joinable: finished ones are reaped on each
  // accept, and every remaining one is joined before run() returns. A
  // join is the only synchronization that covers the thread's *complete*
  // teardown (thread-local destructors included), so detaching with a
  // completion latch would let the daemon — or process-exit teardown —
  // destroy state a session epilogue still touches.
  struct SessionSlot {
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::mutex sessions_mu_;
  std::vector<std::unique_ptr<SessionSlot>> sessions_;
  int active_sessions_ = 0;  // guarded by sessions_mu_
};

}  // namespace wheels::serve
