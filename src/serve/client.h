// Blocking client for the serve daemon's framed protocol.
//
// Wraps connect / frame-write / frame-read over an AF_UNIX socket (or an
// arbitrary fd pair for pipe transports). Used by tools/wheels_loadgen and
// tests/test_serve; keeps the raw bytes of the last reply so callers can
// assert byte-identity, and exposes send_raw() for malformed-frame probes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "serve/protocol.h"

namespace wheels::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connect to a daemon's AF_UNIX socket; false on failure.
  [[nodiscard]] bool connect(const std::string& socket_path);
  // Adopt an existing fd pair instead (not closed on destruction).
  void attach(int in_fd, int out_fd);

  [[nodiscard]] bool connected() const { return out_fd_ >= 0; }
  void close();

  // Encode + frame + send a request, then block for the reply. nullopt on
  // transport error (including an unparseable reply).
  std::optional<std::pair<std::uint8_t, Reply>> call(const Request& req);

  // Raw transport access for protocol-robustness probes.
  [[nodiscard]] bool send_raw(std::string_view bytes);
  std::optional<std::pair<std::uint8_t, Reply>> read_reply();
  // Half-close the write side (socket transport): the daemon sees EOF
  // while replies stay readable. Probes use this to truncate mid-frame.
  void shutdown_writes();

  // Full frame bytes of the last successfully read reply.
  [[nodiscard]] const std::string& last_reply_bytes() const {
    return last_reply_bytes_;
  }

 private:
  int in_fd_ = -1;
  int out_fd_ = -1;
  bool owns_fds_ = false;
  std::string last_reply_bytes_;
};

}  // namespace wheels::serve
