#include "serve/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace wheels::serve {
namespace {

bool read_exact(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t r = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

Client::~Client() { close(); }

bool Client::connect(const std::string& socket_path) {
  close();
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path))
    return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return false;
  }
  in_fd_ = out_fd_ = fd;
  owns_fds_ = true;
  return true;
}

void Client::attach(int in_fd, int out_fd) {
  close();
  in_fd_ = in_fd;
  out_fd_ = out_fd;
  owns_fds_ = false;
}

void Client::close() {
  if (owns_fds_) {
    if (in_fd_ >= 0) ::close(in_fd_);
    if (out_fd_ >= 0 && out_fd_ != in_fd_) ::close(out_fd_);
  }
  in_fd_ = out_fd_ = -1;
  owns_fds_ = false;
}

void Client::shutdown_writes() {
  if (out_fd_ >= 0) ::shutdown(out_fd_, SHUT_WR);
}

bool Client::send_raw(std::string_view bytes) {
  if (out_fd_ < 0) return false;
  return write_all(out_fd_, bytes);
}

std::optional<std::pair<std::uint8_t, Reply>> Client::read_reply() {
  if (in_fd_ < 0) return std::nullopt;
  char hdr[kFrameHeaderBytes];
  if (!read_exact(in_fd_, hdr, sizeof(hdr))) return std::nullopt;
  std::uint32_t body_len = 0;
  // Replies are bounded by what the daemon produces; accept anything the
  // length field can express rather than guessing the daemon's cap.
  if (peek_frame(std::string_view(hdr, sizeof(hdr)), 0xffffffffu, body_len) !=
      FrameStatus::Ok)
    return std::nullopt;
  std::string body(body_len, '\0');
  if (body_len > 0 && !read_exact(in_fd_, body.data(), body_len))
    return std::nullopt;
  std::uint8_t kind = 0;
  Reply reply;
  if (!decode_reply(body, kind, reply)) return std::nullopt;
  last_reply_bytes_.assign(hdr, sizeof(hdr));
  last_reply_bytes_ += body;
  return std::make_pair(kind, std::move(reply));
}

std::optional<std::pair<std::uint8_t, Reply>> Client::call(
    const Request& req) {
  if (!send_raw(wrap_frame(encode_request(req)))) return std::nullopt;
  return read_reply();
}

}  // namespace wheels::serve
