#include "serve/store.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "dataset/fingerprint.h"
#include "obs/metrics.h"

namespace wheels::serve {
namespace {

constexpr int kDefaultMaxDatasets = 8;

int resolve_max_datasets(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("WHEELS_SERVE_MAX_DATASETS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return kDefaultMaxDatasets;
}

// Process-wide mirrors of the per-store counters (Det::Stable: cache
// outcomes are a pure function of the request sequence and capacity).
struct StoreMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
};

StoreMetrics& store_metrics() {
  // wheels-lint: allow(static-local)
  static StoreMetrics m{
      obs::Registry::global().counter("serve.store.hits"),
      obs::Registry::global().counter("serve.store.misses"),
      obs::Registry::global().counter("serve.store.evictions"),
  };
  return m;
}

dataset::ProviderOptions without_memo(dataset::ProviderOptions opts) {
  opts.memoize = false;
  return opts;
}

}  // namespace

DatasetStore::DatasetStore(StoreOptions opts)
    : capacity_(resolve_max_datasets(opts.max_datasets)),
      provider_(without_memo(std::move(opts.provider))) {}

void DatasetStore::set_campaign_factory_for_testing(CampaignFactory factory) {
  campaign_factory_ = std::move(factory);
}

std::shared_ptr<const void> DatasetStore::lookup(const Key& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    store_metrics().misses.inc();
    return nullptr;
  }
  it->second.last_use = ++tick_;
  ++hits_;
  store_metrics().hits.inc();
  return it->second.value;
}

void DatasetStore::insert(const Key& key, std::shared_ptr<const void> value) {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_[key] = Entry{std::move(value), ++tick_};
  while (entries_.size() > static_cast<std::size_t>(capacity_)) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    entries_.erase(victim);
    ++evictions_;
    store_metrics().evictions.inc();
  }
}

std::shared_ptr<const trip::CampaignResult> DatasetStore::campaign(
    const trip::CampaignConfig& cfg) {
  const Key key{static_cast<std::uint8_t>(dataset::DatasetKind::Campaign),
                dataset::fingerprint(cfg)};
  if (auto hit = lookup(key))
    return std::static_pointer_cast<const trip::CampaignResult>(hit);
  // Resolve outside the store lock: distinct keys overlap, same-key herds
  // coalesce in the provider's in-flight table.
  std::shared_ptr<const trip::CampaignResult> value =
      campaign_factory_ ? campaign_factory_(cfg) : provider_.resolve(cfg);
  insert(key, value);
  return value;
}

std::shared_ptr<const apps::AppCampaignResult> DatasetStore::apps(
    const apps::AppCampaignConfig& cfg) {
  const Key key{static_cast<std::uint8_t>(dataset::DatasetKind::AppCampaign),
                dataset::fingerprint(cfg)};
  if (auto hit = lookup(key))
    return std::static_pointer_cast<const apps::AppCampaignResult>(hit);
  std::shared_ptr<const apps::AppCampaignResult> value =
      provider_.resolve_apps(cfg);
  insert(key, value);
  return value;
}

std::size_t DatasetStore::resident() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

long long DatasetStore::hits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

long long DatasetStore::misses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

long long DatasetStore::evictions() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace wheels::serve
