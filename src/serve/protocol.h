// Length-prefixed binary protocol of the campaign query daemon.
//
// Frame := magic "WSV1" (4 bytes) | u32 body length (LE) | body.
// A request body is one tag byte (QueryKind) followed by the kind-specific
// payload; a response body is a status byte (0 ok, 1 error), the echoed
// request kind, and the reply payload. All integers are little-endian and
// doubles travel by bit pattern -- the same conventions as
// dataset/serialize.h -- so identical queries over identical datasets
// produce byte-identical response frames regardless of jobs count or
// request interleaving (pinned by tests/test_serve.cpp).
//
// Malformed input is a first-class citizen: bad magic, oversize length,
// truncated payloads and unknown tags each map to a typed ErrorCode the
// daemon answers with instead of crashing or wedging the connection.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace wheels::serve {

inline constexpr std::string_view kFrameMagic = "WSV1";
inline constexpr std::size_t kFrameHeaderBytes = 8;  // magic + u32 length
// Default cap on a frame body; override with WHEELS_SERVE_MAX_FRAME or
// RouterOptions/DaemonOptions.
inline constexpr std::size_t kDefaultMaxFrameBytes = 1 << 20;
// Scenario names / paths travel with a u8 length prefix.
inline constexpr std::size_t kMaxNameBytes = 255;

enum class QueryKind : std::uint8_t {
  Ping = 1,
  KpiPercentiles = 2,
  RegionSlice = 3,
  AppQoe = 4,
  Stats = 5,
  Shutdown = 6,
};

enum class ErrorCode : std::uint16_t {
  BadMagic = 1,
  Oversize = 2,
  Truncated = 3,
  UnknownKind = 4,
  BadPayload = 5,
  BadScenario = 6,
  Internal = 7,
  IdleTimeout = 8,
  Busy = 9,
};

[[nodiscard]] const char* to_string(QueryKind kind);
[[nodiscard]] const char* to_string(ErrorCode code);

// Which dataset a query runs against: a scenario from the built-in
// library (or a JSON path), with an optional seed override and the
// replay/cycle stride (an execution knob of sample density -- part of the
// dataset fingerprint, so distinct strides are distinct datasets).
struct DatasetSelector {
  std::string scenario = "paper-default";
  bool has_seed = false;
  std::uint64_t seed = 0;
  std::uint32_t stride = 64;

  friend bool operator==(const DatasetSelector&,
                         const DatasetSelector&) = default;
};

// ---- Requests --------------------------------------------------------------

struct PingRequest {
  std::uint64_t token = 0;
  friend bool operator==(const PingRequest&, const PingRequest&) = default;
};

// KPI distribution summary over one operator's campaign logs.
struct KpiQuery {
  DatasetSelector dataset;
  std::uint8_t op = 0;    // OperatorId value (0 Verizon, 1 T-Mobile, 2 AT&T)
  std::uint8_t test = 0;  // 0 DL tput, 1 UL tput, 2 RTT
  std::uint8_t tz = 255;  // TimeZone value; 255 = whole drive
  double min_mph = -1.0;
  double max_mph = 1e9;
  friend bool operator==(const KpiQuery&, const KpiQuery&) = default;
};

// Per-time-zone slices of one KPI (the regional Fig. 4 cut).
struct RegionSliceQuery {
  DatasetSelector dataset;
  std::uint8_t op = 0;
  std::uint8_t test = 0;
  friend bool operator==(const RegionSliceQuery&,
                         const RegionSliceQuery&) = default;
};

// App QoE summary rows over one operator's app-campaign runs.
struct AppQoeQuery {
  DatasetSelector dataset;
  std::uint8_t op = 0;
  friend bool operator==(const AppQoeQuery&, const AppQoeQuery&) = default;
};

struct StatsRequest {
  friend bool operator==(const StatsRequest&, const StatsRequest&) = default;
};

struct ShutdownRequest {
  friend bool operator==(const ShutdownRequest&,
                         const ShutdownRequest&) = default;
};

using Request = std::variant<PingRequest, KpiQuery, RegionSliceQuery,
                             AppQoeQuery, StatsRequest, ShutdownRequest>;

[[nodiscard]] QueryKind kind_of(const Request& req);

// ---- Replies ---------------------------------------------------------------

struct ErrorReply {
  ErrorCode code = ErrorCode::Internal;
  std::string message;
  friend bool operator==(const ErrorReply&, const ErrorReply&) = default;
};

struct PongReply {
  std::uint64_t token = 0;
  friend bool operator==(const PongReply&, const PongReply&) = default;
};

struct KpiReply {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p10 = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  friend bool operator==(const KpiReply&, const KpiReply&) = default;
};

struct RegionRow {
  std::uint8_t tz = 0;
  std::uint64_t count = 0;
  double median = 0.0;
  double p90 = 0.0;
  friend bool operator==(const RegionRow&, const RegionRow&) = default;
};

struct RegionReply {
  std::vector<RegionRow> rows;  // one per TimeZone, fixed west-to-east order
  friend bool operator==(const RegionReply&, const RegionReply&) = default;
};

struct AppQoeRow {
  std::uint8_t app = 0;  // AppKind value
  std::uint8_t compression = 0;
  std::uint64_t count = 0;
  // Meaning depends on app: AR/CAV = (mean e2e ms, offloaded fps, mAP);
  // Video = (QoE, avg bitrate Mbps, rebuffer fraction); Gaming = (latency
  // ms, bitrate Mbps, frame drop rate).
  double m1 = 0.0;
  double m2 = 0.0;
  double m3 = 0.0;
  friend bool operator==(const AppQoeRow&, const AppQoeRow&) = default;
};

struct AppQoeReply {
  std::vector<AppQoeRow> rows;  // fixed order: AR, AR+comp, CAV, CAV+comp,
                                // Video, Gaming
  friend bool operator==(const AppQoeReply&, const AppQoeReply&) = default;
};

// Daemon-lifetime counters, fixed field order. Explicitly NOT part of the
// byte-determinism claim: stats depend on request history.
struct StatsReply {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t sessions = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t store_misses = 0;
  std::uint64_t store_evictions = 0;
  std::uint64_t store_resident = 0;
  std::uint64_t store_capacity = 0;
  std::uint64_t inflight_leaders = 0;
  std::uint64_t inflight_joins = 0;
  std::uint64_t campaign_simulations = 0;
  std::uint64_t baseline_simulations = 0;
  std::uint64_t disk_hits = 0;
  friend bool operator==(const StatsReply&, const StatsReply&) = default;
};

struct ShutdownReply {
  friend bool operator==(const ShutdownReply&, const ShutdownReply&) = default;
};

using Reply = std::variant<ErrorReply, PongReply, KpiReply, RegionReply,
                           AppQoeReply, StatsReply, ShutdownReply>;

// ---- Framing ---------------------------------------------------------------

enum class FrameStatus : std::uint8_t { Ok, NeedMore, BadMagic, Oversize };

// Inspect (without consuming) the frame header at the head of `bytes`.
// NeedMore: fewer than kFrameHeaderBytes available yet. On Ok, body_len is
// the body size that follows the header.
[[nodiscard]] FrameStatus peek_frame(std::string_view bytes,
                                     std::size_t max_body_bytes,
                                     std::uint32_t& body_len);

// Prefix `body` with magic + length.
[[nodiscard]] std::string wrap_frame(std::string_view body);

// ---- Body encode / decode --------------------------------------------------

enum class DecodeStatus : std::uint8_t { Ok, UnknownKind, Malformed };

[[nodiscard]] std::string encode_request(const Request& req);
[[nodiscard]] DecodeStatus decode_request(std::string_view body, Request& out);

// `kind` echoes the request the reply answers (ErrorReply uses the kind of
// the offending request, or 0 when it never decoded).
[[nodiscard]] std::string encode_reply(std::uint8_t kind, const Reply& reply);
[[nodiscard]] bool decode_reply(std::string_view body, std::uint8_t& kind,
                                Reply& out);

}  // namespace wheels::serve
