// Memory-resident WDS1 dataset store for the serve daemon.
//
// An LRU-bounded table of resolved datasets keyed by (kind, fingerprint).
// Hits bump recency and share ownership via shared_ptr (an evicted dataset
// stays alive for requests still reading it); misses resolve through the
// CampaignProvider outside the store lock, so the provider's keyed
// in-flight table gives cross-request single-flight: a thundering herd on
// one cold fingerprint simulates exactly once.
//
// The provider runs with memoize=false -- this store is the only residency
// policy, so WHEELS_SERVE_MAX_DATASETS actually bounds memory instead of
// shadowing a process-lifetime memo.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "dataset/provider.h"

namespace wheels::serve {

struct StoreOptions {
  // Max resident datasets; <= 0 resolves WHEELS_SERVE_MAX_DATASETS, then
  // defaults to 8.
  int max_datasets = 0;
  dataset::ProviderOptions provider;  // memoize is forced off by the store
};

class DatasetStore {
 public:
  explicit DatasetStore(StoreOptions opts = StoreOptions{});

  DatasetStore(const DatasetStore&) = delete;
  DatasetStore& operator=(const DatasetStore&) = delete;

  std::shared_ptr<const trip::CampaignResult> campaign(
      const trip::CampaignConfig& cfg);
  std::shared_ptr<const apps::AppCampaignResult> apps(
      const apps::AppCampaignConfig& cfg);

  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] std::size_t resident() const;
  [[nodiscard]] long long hits() const;
  [[nodiscard]] long long misses() const;
  [[nodiscard]] long long evictions() const;

  [[nodiscard]] dataset::CampaignProvider& provider() { return provider_; }
  [[nodiscard]] const dataset::CampaignProvider& provider() const {
    return provider_;
  }

  // Test seam: replaces the provider on the campaign miss path with a
  // synthetic factory so LRU bounds are testable without simulating.
  // Bypasses the provider (and with it single-flight).
  using CampaignFactory = std::function<std::shared_ptr<const trip::CampaignResult>(
      const trip::CampaignConfig&)>;
  void set_campaign_factory_for_testing(CampaignFactory factory);

 private:
  using Key = std::pair<std::uint8_t, std::uint64_t>;  // (kind, fingerprint)

  std::shared_ptr<const void> lookup(const Key& key);
  void insert(const Key& key, std::shared_ptr<const void> value);

  struct Entry {
    std::shared_ptr<const void> value;
    std::uint64_t last_use = 0;
  };

  int capacity_;
  dataset::CampaignProvider provider_;
  CampaignFactory campaign_factory_;

  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  std::uint64_t tick_ = 0;
  long long hits_ = 0;
  long long misses_ = 0;
  long long evictions_ = 0;
};

}  // namespace wheels::serve
