#include "serve/daemon.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/metrics.h"

namespace wheels::serve {
namespace {

// Poll granularity: the stop flag and idle clock are checked this often,
// bounding shutdown latency without a wakeup fd per session.
constexpr int kPollTickMs = 100;

int resolve_idle_ms(int requested) {
  if (requested >= 0) return requested;
  if (const char* env = std::getenv("WHEELS_SERVE_IDLE_MS")) {
    const int v = std::atoi(env);
    if (v >= 0) return v;
  }
  return 30000;
}

obs::Counter& sessions_counter() {
  // wheels-lint: allow(static-local)
  static obs::Counter& c = obs::Registry::global().counter("serve.sessions");
  return c;
}

}  // namespace

Daemon::Daemon(DaemonOptions opts)
    : opts_(std::move(opts)),
      idle_timeout_ms_(resolve_idle_ms(opts_.idle_timeout_ms)),
      router_(opts_.router) {
  // The stop pipe lives for the daemon's lifetime so request_stop() stays
  // safe from any thread (including a signal handler) at any time.
  if (::pipe2(stop_pipe_, O_CLOEXEC) != 0) {
    stop_pipe_[0] = stop_pipe_[1] = -1;
  }
}

Daemon::~Daemon() {
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

void Daemon::request_stop() {
  stop_.store(true, std::memory_order_release);
  const int fd = stop_pipe_[1];
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t rc = ::write(fd, &byte, 1);
  }
}

Daemon::IoStatus Daemon::read_exact(int fd, char* buf, std::size_t n,
                                    std::size_t& got) {
  got = 0;
  int waited_ms = 0;
  while (got < n) {
    if (stop_.load(std::memory_order_acquire)) return IoStatus::Stopped;
    pollfd p{fd, POLLIN, 0};
    const int rc = ::poll(&p, 1, kPollTickMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return IoStatus::Error;
    }
    if (rc == 0) {
      waited_ms += kPollTickMs;
      if (idle_timeout_ms_ > 0 && waited_ms >= idle_timeout_ms_)
        return IoStatus::Timeout;
      continue;
    }
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoStatus::Error;
    }
    if (r == 0) return IoStatus::Closed;
    got += static_cast<std::size_t>(r);
    waited_ms = 0;
  }
  return IoStatus::Ok;
}

bool Daemon::write_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t r = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

void Daemon::serve_session(int in_fd, int out_fd, bool close_fds) {
  SessionState session;
  session.id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  router_.add_session();
  sessions_counter().inc();
  if (opts_.verbose)
    std::fprintf(stderr, "[serve] session %u open\n", session.id);

  for (;;) {
    char hdr[kFrameHeaderBytes];
    std::size_t got = 0;
    IoStatus st = read_exact(in_fd, hdr, sizeof(hdr), got);
    if (st == IoStatus::Stopped) break;
    if (st == IoStatus::Closed || st == IoStatus::Error) {
      // Mid-header EOF is a truncated frame; a clean close between frames
      // is just a client hanging up.
      if (got > 0)
        write_all(out_fd, router_.error_frame(ErrorCode::Truncated,
                                              "connection closed mid-header",
                                              session));
      break;
    }
    if (st == IoStatus::Timeout) {
      const ErrorCode code =
          got == 0 ? ErrorCode::IdleTimeout : ErrorCode::Truncated;
      write_all(out_fd, router_.error_frame(
                            code,
                            got == 0 ? "idle timeout" : "timed out mid-header",
                            session));
      break;
    }

    std::uint32_t body_len = 0;
    const FrameStatus fs = peek_frame(std::string_view(hdr, sizeof(hdr)),
                                      router_.max_frame_bytes(), body_len);
    if (fs == FrameStatus::BadMagic) {
      write_all(out_fd, router_.error_frame(ErrorCode::BadMagic,
                                            "bad frame magic", session));
      break;
    }
    if (fs == FrameStatus::Oversize) {
      write_all(out_fd, router_.error_frame(ErrorCode::Oversize,
                                            "frame body too large", session));
      break;
    }

    std::string body(body_len, '\0');
    if (body_len > 0) {
      st = read_exact(in_fd, body.data(), body_len, got);
      if (st == IoStatus::Stopped) break;
      if (st != IoStatus::Ok) {
        write_all(out_fd, router_.error_frame(ErrorCode::Truncated,
                                              "truncated frame body",
                                              session));
        break;
      }
    }

    if (!write_all(out_fd, router_.handle(body, session))) break;
    if (router_.shutdown_requested()) {
      request_stop();
      break;
    }
  }

  if (opts_.verbose)
    std::fprintf(stderr, "[serve] session %u closed (%llu requests)\n",
                 session.id,
                 static_cast<unsigned long long>(session.requests));
  if (close_fds) {
    ::close(in_fd);
    if (out_fd != in_fd) ::close(out_fd);
  }
}

int Daemon::run() {
  // Broken-pipe writes (client gone before the reply) must surface as
  // write() errors, not kill the process.
  std::signal(SIGPIPE, SIG_IGN);
  stop_.store(false, std::memory_order_release);
  if (opts_.stdio) {
    serve_session(/*in_fd=*/0, /*out_fd=*/1, /*close_fds=*/false);
    return 0;
  }
  return run_socket();
}

int Daemon::run_socket() {
  sockaddr_un addr{};
  if (opts_.socket_path.empty() ||
      opts_.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "[serve] invalid socket path (empty or >= %zu)\n",
                 sizeof(addr.sun_path));
    return 1;
  }
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) {
    std::perror("[serve] socket");
    return 1;
  }
  ::unlink(opts_.socket_path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    std::perror("[serve] bind/listen");
    ::close(listen_fd);
    return 1;
  }
  if (opts_.verbose)
    std::fprintf(stderr, "[serve] listening on %s\n",
                 opts_.socket_path.c_str());

  while (!stop_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int cfd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (cfd < 0) continue;

    bool busy = false;
    {
      const std::lock_guard<std::mutex> lock(sessions_mu_);
      if (active_sessions_ >= opts_.max_sessions)
        busy = true;
      else
        ++active_sessions_;
    }
    if (busy) {
      SessionState tmp;
      write_all(cfd, router_.error_frame(ErrorCode::Busy,
                                         "session limit reached", tmp));
      ::close(cfd);
      continue;
    }
    auto slot = std::make_unique<SessionSlot>();
    SessionSlot* raw = slot.get();
    raw->thread = std::thread([this, raw, cfd] {
      serve_session(cfd, cfd, /*close_fds=*/true);
      {
        const std::lock_guard<std::mutex> lock(sessions_mu_);
        --active_sessions_;
      }
      raw->done.store(true, std::memory_order_release);
    });
    {
      const std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(std::move(slot));
    }
    reap_finished_sessions();
  }

  ::close(listen_fd);
  // Stop is latched, so every session unwinds within a poll tick; joining
  // them all guarantees no session thread (or its thread-local teardown)
  // outlives run().
  std::vector<std::unique_ptr<SessionSlot>> remaining;
  {
    const std::lock_guard<std::mutex> lock(sessions_mu_);
    remaining.swap(sessions_);
  }
  for (auto& s : remaining)
    if (s->thread.joinable()) s->thread.join();
  ::unlink(opts_.socket_path.c_str());
  if (opts_.verbose) std::fprintf(stderr, "[serve] clean shutdown\n");
  return 0;
}

void Daemon::reap_finished_sessions() {
  // Finished threads set `done` as their final store, so a true flag means
  // the thread is past serve_session and join() returns near-instantly.
  // Joining outside the lock keeps accept from blocking session exits.
  std::vector<std::unique_ptr<SessionSlot>> finished;
  {
    const std::lock_guard<std::mutex> lock(sessions_mu_);
    const auto live_end = std::partition(
        sessions_.begin(), sessions_.end(), [](const auto& s) {
          return !s->done.load(std::memory_order_acquire);
        });
    finished.assign(std::make_move_iterator(live_end),
                    std::make_move_iterator(sessions_.end()));
    sessions_.erase(live_end, sessions_.end());
  }
  for (auto& s : finished)
    if (s->thread.joinable()) s->thread.join();
}

}  // namespace wheels::serve
