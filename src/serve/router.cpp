#include "serve/router.h"

#include <cstdlib>
#include <exception>
#include <limits>
#include <vector>

#include "analysis/performance.h"
#include "core/stats.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "scenario/spec.h"

namespace wheels::serve {
namespace {

long long resolve_max_frame(long long requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("WHEELS_SERVE_MAX_FRAME")) {
    const long long v = std::atoll(env);
    if (v > 0) return v;
  }
  return static_cast<long long>(kDefaultMaxFrameBytes);
}

// Request counters are Det::Stable (a pure function of the request
// stream); latency histograms are Det::WallClock by construction.
struct ServeMetrics {
  obs::Counter& requests;
  obs::Counter& errors;
  obs::Histogram& lat_ping;
  obs::Histogram& lat_kpi;
  obs::Histogram& lat_region;
  obs::Histogram& lat_app_qoe;
  obs::Histogram& lat_stats;
  obs::Histogram& lat_shutdown;
  obs::Histogram& lat_other;
};

ServeMetrics& serve_metrics() {
  const std::vector<std::int64_t> us_bounds = {
      100,    300,    1000,    3000,    10000,   30000,
      100000, 300000, 1000000, 3000000, 10000000};
  auto lat = [&](const char* name) -> obs::Histogram& {
    return obs::Registry::global().histogram(name, us_bounds,
                                             obs::Det::WallClock);
  };
  // wheels-lint: allow(static-local)
  static ServeMetrics m{
      obs::Registry::global().counter("serve.requests"),
      obs::Registry::global().counter("serve.errors"),
      lat("serve.latency_us.ping"),
      lat("serve.latency_us.kpi"),
      lat("serve.latency_us.region"),
      lat("serve.latency_us.app_qoe"),
      lat("serve.latency_us.stats"),
      lat("serve.latency_us.shutdown"),
      lat("serve.latency_us.other"),
  };
  return m;
}

obs::Histogram& latency_for(std::uint8_t kind) {
  ServeMetrics& m = serve_metrics();
  switch (static_cast<QueryKind>(kind)) {
    case QueryKind::Ping: return m.lat_ping;
    case QueryKind::KpiPercentiles: return m.lat_kpi;
    case QueryKind::RegionSlice: return m.lat_region;
    case QueryKind::AppQoe: return m.lat_app_qoe;
    case QueryKind::Stats: return m.lat_stats;
    case QueryKind::Shutdown: return m.lat_shutdown;
  }
  return m.lat_other;
}

// Resolve the selector's scenario (library name or JSON path) and apply
// the seed override. False + message on unknown/invalid scenarios.
bool try_resolve_spec(const DatasetSelector& sel, scenario::ScenarioSpec& spec,
                      std::string& err) {
  try {
    spec = scenario::load_scenario(sel.scenario);
  } catch (const std::exception& e) {
    err = e.what();
    return false;
  }
  if (sel.has_seed) spec.seed = sel.seed;
  return true;
}

// KPI sample extraction shared by the kpi and region queries.
std::vector<double> kpi_samples(const trip::OperatorLogs& logs,
                                std::uint8_t test, analysis::PerfFilter f) {
  if (test == 2) return analysis::rtt_samples(logs.rtt, f);
  f.test = test == 0 ? trip::TestType::DownlinkBulk
                     : trip::TestType::UplinkBulk;
  return analysis::tput_samples(logs.kpi, f);
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0.0;
  for (const double v : xs) sum += v;
  return sum / static_cast<double>(xs.size());
}

}  // namespace

Router::Router(RouterOptions opts)
    : max_frame_bytes_(
          static_cast<std::size_t>(resolve_max_frame(opts.max_frame_bytes))),
      store_(std::move(opts.store)) {}

Reply Router::run_kpi(const KpiQuery& q) {
  scenario::ScenarioSpec spec;
  std::string err;
  if (!try_resolve_spec(q.dataset, spec, err))
    return ErrorReply{ErrorCode::BadScenario, err};
  const trip::CampaignConfig cfg = trip::CampaignConfig::from_scenario(
      spec, static_cast<int>(q.dataset.stride));
  const auto res = store_.campaign(cfg);
  const trip::OperatorLogs& logs =
      res->for_op(static_cast<ran::OperatorId>(q.op));
  analysis::PerfFilter f;
  if (q.tz != 255) f.tz = static_cast<TimeZone>(q.tz);
  f.min_mph = q.min_mph;
  f.max_mph = q.max_mph;
  const std::vector<double> xs = kpi_samples(logs, q.test, f);
  KpiReply k;
  k.count = xs.size();
  k.mean = mean_of(xs);
  k.p10 = percentile(xs, 10.0);
  k.p50 = percentile(xs, 50.0);
  k.p90 = percentile(xs, 90.0);
  k.p99 = percentile(xs, 99.0);
  return k;
}

Reply Router::run_region(const RegionSliceQuery& q) {
  scenario::ScenarioSpec spec;
  std::string err;
  if (!try_resolve_spec(q.dataset, spec, err))
    return ErrorReply{ErrorCode::BadScenario, err};
  const trip::CampaignConfig cfg = trip::CampaignConfig::from_scenario(
      spec, static_cast<int>(q.dataset.stride));
  const auto res = store_.campaign(cfg);
  const trip::OperatorLogs& logs =
      res->for_op(static_cast<ran::OperatorId>(q.op));
  RegionReply rr;
  // Fixed west-to-east TimeZone order: the reply shape never depends on
  // which zones happen to hold samples.
  for (std::uint8_t tz = 0; tz < 4; ++tz) {
    analysis::PerfFilter f;
    f.tz = static_cast<TimeZone>(tz);
    const std::vector<double> xs = kpi_samples(logs, q.test, f);
    RegionRow row;
    row.tz = tz;
    row.count = xs.size();
    row.median = percentile(xs, 50.0);
    row.p90 = percentile(xs, 90.0);
    rr.rows.push_back(row);
  }
  return rr;
}

Reply Router::run_app_qoe(const AppQoeQuery& q) {
  scenario::ScenarioSpec spec;
  std::string err;
  if (!try_resolve_spec(q.dataset, spec, err))
    return ErrorReply{ErrorCode::BadScenario, err};
  const apps::AppCampaignConfig cfg = apps::AppCampaignConfig::from_scenario(
      spec, static_cast<int>(q.dataset.stride));
  const auto res = store_.apps(cfg);
  const std::vector<apps::AppRunRecord>& runs =
      res->for_op(static_cast<ran::OperatorId>(q.op));
  struct RowSpec {
    apps::AppKind app;
    bool compression;
  };
  constexpr RowSpec kRows[] = {
      {apps::AppKind::Ar, false},  {apps::AppKind::Ar, true},
      {apps::AppKind::Cav, false}, {apps::AppKind::Cav, true},
      {apps::AppKind::Video, false}, {apps::AppKind::Gaming, false}};
  AppQoeReply reply;
  for (const RowSpec& rs : kRows) {
    AppQoeRow row;
    row.app = static_cast<std::uint8_t>(rs.app);
    row.compression = rs.compression ? 1 : 0;
    double s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (const apps::AppRunRecord& rec : runs) {
      if (rec.app != rs.app || rec.compression != rs.compression) continue;
      row.count += 1;
      switch (rs.app) {
        case apps::AppKind::Ar:
          s1 += rec.mean_e2e_ms;
          s2 += rec.offloaded_fps;
          s3 += rec.map;
          break;
        case apps::AppKind::Cav:
          s1 += rec.mean_e2e_ms;
          s2 += rec.offloaded_fps;
          break;
        case apps::AppKind::Video:
          s1 += rec.qoe;
          s2 += rec.avg_bitrate_mbps;
          s3 += rec.rebuffer_fraction;
          break;
        case apps::AppKind::Gaming:
          s1 += rec.gaming_latency_ms;
          s2 += rec.gaming_bitrate_mbps;
          s3 += rec.frame_drop_rate;
          break;
      }
    }
    if (row.count > 0) {
      const double n = static_cast<double>(row.count);
      row.m1 = s1 / n;
      row.m2 = s2 / n;
      row.m3 = s3 / n;
    }
    reply.rows.push_back(row);
  }
  return reply;
}

Reply Router::dispatch(const Request& req) {
  struct Visitor {
    Router& r;
    Reply operator()(const PingRequest& q) { return PongReply{q.token}; }
    Reply operator()(const KpiQuery& q) { return r.run_kpi(q); }
    Reply operator()(const RegionSliceQuery& q) { return r.run_region(q); }
    Reply operator()(const AppQoeQuery& q) { return r.run_app_qoe(q); }
    Reply operator()(const StatsRequest&) { return r.stats(); }
    Reply operator()(const ShutdownRequest&) {
      r.shutdown_.store(true, std::memory_order_release);
      return ShutdownReply{};
    }
  };
  try {
    return std::visit(Visitor{*this}, req);
  } catch (const std::exception& e) {
    return ErrorReply{ErrorCode::Internal, e.what()};
  }
}

std::string Router::handle(std::string_view body, SessionState& session) {
  const std::int64_t t0 = obs::now_ns();
  requests_.fetch_add(1, std::memory_order_relaxed);
  serve_metrics().requests.inc();
  session.requests += 1;
  session.bytes_in += body.size() + kFrameHeaderBytes;

  Request req;
  const DecodeStatus st = decode_request(body, req);
  std::uint8_t kind =
      body.empty() ? 0 : static_cast<std::uint8_t>(body.front());
  Reply reply;
  if (st == DecodeStatus::UnknownKind) {
    reply = ErrorReply{ErrorCode::UnknownKind, "unknown query kind"};
  } else if (st == DecodeStatus::Malformed) {
    reply = ErrorReply{ErrorCode::BadPayload, "malformed request payload"};
  } else {
    kind = static_cast<std::uint8_t>(kind_of(req));
    reply = dispatch(req);
  }
  if (std::holds_alternative<ErrorReply>(reply)) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    serve_metrics().errors.inc();
    session.errors += 1;
  }

  std::string frame = wrap_frame(encode_reply(kind, reply));
  session.bytes_out += frame.size();
  session.last_kind = kind;
  latency_for(kind).observe((obs::now_ns() - t0) / 1000);
  return frame;
}

std::string Router::error_frame(ErrorCode code, std::string_view message,
                                SessionState& session) {
  errors_.fetch_add(1, std::memory_order_relaxed);
  serve_metrics().errors.inc();
  session.errors += 1;
  std::string frame =
      wrap_frame(encode_reply(0, ErrorReply{code, std::string(message)}));
  session.bytes_out += frame.size();
  return frame;
}

StatsReply Router::stats() const {
  StatsReply s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.sessions = sessions_.load(std::memory_order_relaxed);
  s.store_hits = static_cast<std::uint64_t>(store_.hits());
  s.store_misses = static_cast<std::uint64_t>(store_.misses());
  s.store_evictions = static_cast<std::uint64_t>(store_.evictions());
  s.store_resident = store_.resident();
  s.store_capacity = static_cast<std::uint64_t>(store_.capacity());
  const dataset::CampaignProvider& p = store_.provider();
  s.inflight_leaders = static_cast<std::uint64_t>(p.inflight_leaders());
  s.inflight_joins = static_cast<std::uint64_t>(p.inflight_joins());
  s.campaign_simulations =
      static_cast<std::uint64_t>(p.campaign_simulations());
  s.baseline_simulations =
      static_cast<std::uint64_t>(p.baseline_simulations());
  s.disk_hits = static_cast<std::uint64_t>(p.disk_hits());
  return s;
}

}  // namespace wheels::serve
