#include "serve/protocol.h"

#include <bit>
#include <cstddef>

namespace wheels::serve {
namespace {

// Little-endian writer/reader over the frame body, mirroring the
// dataset/serialize.cpp conventions (explicit byte order, bounds-checked
// reads that latch a fail flag instead of throwing).
class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(std::string_view v) { out_.append(v); }

  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(std::string_view in) : in_(in) {}

  std::uint8_t u8() {
    if (pos_ + 1 > in_.size()) return fail<std::uint8_t>();
    return static_cast<std::uint8_t>(in_[pos_++]);
  }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    if (pos_ + 2 > in_.size()) return fail<std::uint16_t>();
    for (int i = 0; i < 2; ++i)
      v |= static_cast<std::uint16_t>(
          static_cast<std::uint8_t>(in_[pos_++]) << (8 * i));
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    if (pos_ + 4 > in_.size()) return fail<std::uint32_t>();
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(in_[pos_++]))
           << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    if (pos_ + 8 > in_.size()) return fail<std::uint64_t>();
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in_[pos_++]))
           << (8 * i);
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str(std::size_t n) {
    if (pos_ + n > in_.size()) {
      fail_ = true;
      return {};
    }
    std::string v(in_.substr(pos_, n));
    pos_ += n;
    return v;
  }

  [[nodiscard]] bool failed() const { return fail_; }
  [[nodiscard]] bool exhausted() const { return pos_ == in_.size(); }

 private:
  template <typename T>
  T fail() {
    fail_ = true;
    return T{};
  }

  std::string_view in_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

void put_selector(Writer& w, const DatasetSelector& s) {
  const std::size_t n =
      s.scenario.size() > kMaxNameBytes ? kMaxNameBytes : s.scenario.size();
  w.u8(static_cast<std::uint8_t>(n));
  w.bytes(std::string_view(s.scenario).substr(0, n));
  w.u8(s.has_seed ? 1 : 0);
  w.u64(s.seed);
  w.u32(s.stride);
}

bool get_selector(Reader& r, DatasetSelector& s) {
  const std::uint8_t n = r.u8();
  s.scenario = r.str(n);
  const std::uint8_t has_seed = r.u8();
  s.seed = r.u64();
  s.stride = r.u32();
  if (r.failed() || has_seed > 1 || s.stride == 0) return false;
  s.has_seed = has_seed == 1;
  return true;
}

}  // namespace

const char* to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::Ping: return "ping";
    case QueryKind::KpiPercentiles: return "kpi";
    case QueryKind::RegionSlice: return "region";
    case QueryKind::AppQoe: return "app_qoe";
    case QueryKind::Stats: return "stats";
    case QueryKind::Shutdown: return "shutdown";
  }
  return "?";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::BadMagic: return "bad-magic";
    case ErrorCode::Oversize: return "oversize";
    case ErrorCode::Truncated: return "truncated";
    case ErrorCode::UnknownKind: return "unknown-kind";
    case ErrorCode::BadPayload: return "bad-payload";
    case ErrorCode::BadScenario: return "bad-scenario";
    case ErrorCode::Internal: return "internal";
    case ErrorCode::IdleTimeout: return "idle-timeout";
    case ErrorCode::Busy: return "busy";
  }
  return "?";
}

QueryKind kind_of(const Request& req) {
  struct Visitor {
    QueryKind operator()(const PingRequest&) { return QueryKind::Ping; }
    QueryKind operator()(const KpiQuery&) { return QueryKind::KpiPercentiles; }
    QueryKind operator()(const RegionSliceQuery&) {
      return QueryKind::RegionSlice;
    }
    QueryKind operator()(const AppQoeQuery&) { return QueryKind::AppQoe; }
    QueryKind operator()(const StatsRequest&) { return QueryKind::Stats; }
    QueryKind operator()(const ShutdownRequest&) { return QueryKind::Shutdown; }
  };
  return std::visit(Visitor{}, req);
}

FrameStatus peek_frame(std::string_view bytes, std::size_t max_body_bytes,
                       std::uint32_t& body_len) {
  if (bytes.size() < kFrameHeaderBytes) return FrameStatus::NeedMore;
  if (bytes.substr(0, kFrameMagic.size()) != kFrameMagic)
    return FrameStatus::BadMagic;
  Reader r(bytes.substr(kFrameMagic.size(), 4));
  body_len = r.u32();
  if (body_len > max_body_bytes) return FrameStatus::Oversize;
  return FrameStatus::Ok;
}

std::string wrap_frame(std::string_view body) {
  Writer w;
  w.bytes(kFrameMagic);
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.bytes(body);
  return w.take();
}

std::string encode_request(const Request& req) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(kind_of(req)));
  struct Visitor {
    Writer& w;
    void operator()(const PingRequest& q) { w.u64(q.token); }
    void operator()(const KpiQuery& q) {
      put_selector(w, q.dataset);
      w.u8(q.op);
      w.u8(q.test);
      w.u8(q.tz);
      w.f64(q.min_mph);
      w.f64(q.max_mph);
    }
    void operator()(const RegionSliceQuery& q) {
      put_selector(w, q.dataset);
      w.u8(q.op);
      w.u8(q.test);
    }
    void operator()(const AppQoeQuery& q) {
      put_selector(w, q.dataset);
      w.u8(q.op);
    }
    void operator()(const StatsRequest&) {}
    void operator()(const ShutdownRequest&) {}
  };
  std::visit(Visitor{w}, req);
  return w.take();
}

DecodeStatus decode_request(std::string_view body, Request& out) {
  Reader r(body);
  const std::uint8_t tag = r.u8();
  if (r.failed()) return DecodeStatus::Malformed;
  switch (static_cast<QueryKind>(tag)) {
    case QueryKind::Ping: {
      PingRequest q;
      q.token = r.u64();
      if (r.failed() || !r.exhausted()) return DecodeStatus::Malformed;
      out = q;
      return DecodeStatus::Ok;
    }
    case QueryKind::KpiPercentiles: {
      KpiQuery q;
      if (!get_selector(r, q.dataset)) return DecodeStatus::Malformed;
      q.op = r.u8();
      q.test = r.u8();
      q.tz = r.u8();
      q.min_mph = r.f64();
      q.max_mph = r.f64();
      if (r.failed() || !r.exhausted() || q.op > 2 || q.test > 2 ||
          (q.tz > 3 && q.tz != 255))
        return DecodeStatus::Malformed;
      out = q;
      return DecodeStatus::Ok;
    }
    case QueryKind::RegionSlice: {
      RegionSliceQuery q;
      if (!get_selector(r, q.dataset)) return DecodeStatus::Malformed;
      q.op = r.u8();
      q.test = r.u8();
      if (r.failed() || !r.exhausted() || q.op > 2 || q.test > 2)
        return DecodeStatus::Malformed;
      out = q;
      return DecodeStatus::Ok;
    }
    case QueryKind::AppQoe: {
      AppQoeQuery q;
      if (!get_selector(r, q.dataset)) return DecodeStatus::Malformed;
      q.op = r.u8();
      if (r.failed() || !r.exhausted() || q.op > 2)
        return DecodeStatus::Malformed;
      out = q;
      return DecodeStatus::Ok;
    }
    case QueryKind::Stats: {
      if (!r.exhausted()) return DecodeStatus::Malformed;
      out = StatsRequest{};
      return DecodeStatus::Ok;
    }
    case QueryKind::Shutdown: {
      if (!r.exhausted()) return DecodeStatus::Malformed;
      out = ShutdownRequest{};
      return DecodeStatus::Ok;
    }
  }
  return DecodeStatus::UnknownKind;
}

std::string encode_reply(std::uint8_t kind, const Reply& reply) {
  Writer w;
  w.u8(std::holds_alternative<ErrorReply>(reply) ? 1 : 0);
  w.u8(kind);
  struct Visitor {
    Writer& w;
    void operator()(const ErrorReply& e) {
      w.u16(static_cast<std::uint16_t>(e.code));
      const std::size_t n = e.message.size() > 0xffff ? 0xffff
                                                      : e.message.size();
      w.u16(static_cast<std::uint16_t>(n));
      w.bytes(std::string_view(e.message).substr(0, n));
    }
    void operator()(const PongReply& p) { w.u64(p.token); }
    void operator()(const KpiReply& k) {
      w.u64(k.count);
      w.f64(k.mean);
      w.f64(k.p10);
      w.f64(k.p50);
      w.f64(k.p90);
      w.f64(k.p99);
    }
    void operator()(const RegionReply& rr) {
      w.u32(static_cast<std::uint32_t>(rr.rows.size()));
      for (const RegionRow& row : rr.rows) {
        w.u8(row.tz);
        w.u64(row.count);
        w.f64(row.median);
        w.f64(row.p90);
      }
    }
    void operator()(const AppQoeReply& ar) {
      w.u32(static_cast<std::uint32_t>(ar.rows.size()));
      for (const AppQoeRow& row : ar.rows) {
        w.u8(row.app);
        w.u8(row.compression);
        w.u64(row.count);
        w.f64(row.m1);
        w.f64(row.m2);
        w.f64(row.m3);
      }
    }
    void operator()(const StatsReply& s) {
      w.u64(s.requests);
      w.u64(s.errors);
      w.u64(s.sessions);
      w.u64(s.store_hits);
      w.u64(s.store_misses);
      w.u64(s.store_evictions);
      w.u64(s.store_resident);
      w.u64(s.store_capacity);
      w.u64(s.inflight_leaders);
      w.u64(s.inflight_joins);
      w.u64(s.campaign_simulations);
      w.u64(s.baseline_simulations);
      w.u64(s.disk_hits);
    }
    void operator()(const ShutdownReply&) {}
  };
  std::visit(Visitor{w}, reply);
  return w.take();
}

bool decode_reply(std::string_view body, std::uint8_t& kind, Reply& out) {
  Reader r(body);
  const std::uint8_t status = r.u8();
  kind = r.u8();
  if (r.failed() || status > 1) return false;
  if (status == 1) {
    ErrorReply e;
    e.code = static_cast<ErrorCode>(r.u16());
    const std::uint16_t n = r.u16();
    e.message = r.str(n);
    if (r.failed() || !r.exhausted()) return false;
    out = e;
    return true;
  }
  switch (static_cast<QueryKind>(kind)) {
    case QueryKind::Ping: {
      PongReply p;
      p.token = r.u64();
      if (r.failed() || !r.exhausted()) return false;
      out = p;
      return true;
    }
    case QueryKind::KpiPercentiles: {
      KpiReply k;
      k.count = r.u64();
      k.mean = r.f64();
      k.p10 = r.f64();
      k.p50 = r.f64();
      k.p90 = r.f64();
      k.p99 = r.f64();
      if (r.failed() || !r.exhausted()) return false;
      out = k;
      return true;
    }
    case QueryKind::RegionSlice: {
      RegionReply rr;
      const std::uint32_t n = r.u32();
      // Sanity cap: a row is 25 bytes, so n can never exceed the body.
      if (r.failed() || n > body.size()) return false;
      rr.rows.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        RegionRow row;
        row.tz = r.u8();
        row.count = r.u64();
        row.median = r.f64();
        row.p90 = r.f64();
        rr.rows.push_back(row);
      }
      if (r.failed() || !r.exhausted()) return false;
      out = rr;
      return true;
    }
    case QueryKind::AppQoe: {
      AppQoeReply ar;
      const std::uint32_t n = r.u32();
      if (r.failed() || n > body.size()) return false;
      ar.rows.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        AppQoeRow row;
        row.app = r.u8();
        row.compression = r.u8();
        row.count = r.u64();
        row.m1 = r.f64();
        row.m2 = r.f64();
        row.m3 = r.f64();
        ar.rows.push_back(row);
      }
      if (r.failed() || !r.exhausted()) return false;
      out = ar;
      return true;
    }
    case QueryKind::Stats: {
      StatsReply s;
      s.requests = r.u64();
      s.errors = r.u64();
      s.sessions = r.u64();
      s.store_hits = r.u64();
      s.store_misses = r.u64();
      s.store_evictions = r.u64();
      s.store_resident = r.u64();
      s.store_capacity = r.u64();
      s.inflight_leaders = r.u64();
      s.inflight_joins = r.u64();
      s.campaign_simulations = r.u64();
      s.baseline_simulations = r.u64();
      s.disk_hits = r.u64();
      if (r.failed() || !r.exhausted()) return false;
      out = s;
      return true;
    }
    case QueryKind::Shutdown: {
      if (!r.exhausted()) return false;
      out = ShutdownReply{};
      return true;
    }
  }
  return false;
}

}  // namespace wheels::serve
