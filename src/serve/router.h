// Transport-agnostic request router of the serve daemon.
//
// Maps one decoded frame body to one response frame: resolves the query's
// dataset through the LRU store (single-flight on misses), runs the
// analysis-layer extraction, and encodes the reply. Because every query
// handler is a pure function of the resolved dataset, responses to
// identical queries are byte-identical regardless of request interleaving
// or WHEELS_JOBS -- the Stats query is the one documented exception (it
// reports request history).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "serve/protocol.h"
#include "serve/store.h"

namespace wheels::serve {

struct RouterOptions {
  StoreOptions store;
  // Max accepted frame body; <= 0 resolves WHEELS_SERVE_MAX_FRAME, then
  // defaults to kDefaultMaxFrameBytes.
  long long max_frame_bytes = 0;
};

// Compact per-peer runtime info, updated by the router on every frame and
// owned by the transport (one per connection; the stdio transport has
// exactly one).
struct SessionState {
  std::uint32_t id = 0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint8_t last_kind = 0;
};

class Router {
 public:
  explicit Router(RouterOptions opts = RouterOptions{});

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Handle one request body (the frame payload, header already stripped
  // and validated) and return the full response frame. Thread-safe; never
  // throws -- malformed or failing queries produce typed error frames.
  std::string handle(std::string_view body, SessionState& session);

  // Build a frame-layer error response (bad magic, oversize, truncated,
  // idle timeout -- conditions where no request body ever decoded).
  std::string error_frame(ErrorCode code, std::string_view message,
                          SessionState& session);

  // Latched by a Shutdown request; the transport checks it after replying.
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t max_frame_bytes() const {
    return max_frame_bytes_;
  }
  [[nodiscard]] DatasetStore& store() { return store_; }

  // Router-lifetime counters; also the payload of the Stats query (minus
  // the sessions count, which the daemon owns).
  [[nodiscard]] StatsReply stats() const;

  // The daemon reports accepted connections here so Stats can include
  // them.
  void add_session() { sessions_.fetch_add(1, std::memory_order_relaxed); }

 private:
  Reply dispatch(const Request& req);
  Reply run_kpi(const KpiQuery& q);
  Reply run_region(const RegionSliceQuery& q);
  Reply run_app_qoe(const AppQoeQuery& q);

  std::size_t max_frame_bytes_;
  DatasetStore store_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> sessions_{0};
};

}  // namespace wheels::serve
