// wheels_campaign: command-line front end of the dataset layer.
//
//   wheels_campaign generate [options]    simulate + persist datasets
//   wheels_campaign info [options]        describe a cache directory
//   wheels_campaign export-csv [options]  dump a dataset as CSV files
//
// `generate` warms the content-addressed cache (WHEELS_DATASET_DIR,
// default build/dataset-cache/) so that every figure/table bench afterwards
// is a cache load instead of a fresh 8-day-campaign simulation. `info`
// validates container headers + checksums without decoding payloads.
// `export-csv` writes the consolidated per-record CSVs the study's
// published dataset uses.
#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <functional>

#include "apps/app_campaign.h"
#include "core/csv.h"
#include "core/table.h"
#include "core/thread_pool.h"
#include "dataset/cache.h"
#include "dataset/fingerprint.h"
#include "dataset/provider.h"
#include "dataset/serialize.h"
#include "logsync/timestamp.h"
#include "obs/metrics.h"
#include "obs/runtime.h"
#include "scenario/spec.h"
#include "trip/campaign.h"

namespace {

using namespace wheels;

int usage(std::ostream& os, int code) {
  os << "usage: wheels_campaign <command> [options]\n"
        "\n"
        "commands:\n"
        "  generate    simulate the measurement + app campaigns (and the\n"
        "              per-operator static baselines) and persist them to\n"
        "              the dataset cache; a warm cache makes this a no-op\n"
        "  info        list the datasets in a cache directory, validating\n"
        "              each container header and checksum\n"
        "  export-csv  write the campaign dataset as CSV files\n"
        "  list-scenarios\n"
        "              list the built-in scenario library\n"
        "\n"
        "options:\n"
        "  --dir DIR        cache directory (default: WHEELS_DATASET_DIR\n"
        "                   or build/dataset-cache)\n"
        "  --scenario S     built-in scenario name or path to a scenario\n"
        "                   JSON file (default paper-default)\n"
        "  --stride N       measurement-campaign cycle stride (default 8)\n"
        "  --apps-stride N  app-campaign cycle stride (default 10)\n"
        "  --seed S         override the scenario's campaign seed\n"
        "  --jobs N         worker threads for generate (default: the\n"
        "                   WHEELS_JOBS env var, else 1); any N produces\n"
        "                   byte-identical datasets\n"
        "  --skip-apps      generate: measurement campaign only\n"
        "  --skip-static    generate: skip the static baselines\n"
        "  --out DIR        export-csv: output directory (default .)\n"
        "  --metrics PATH   write a JSON-lines metrics snapshot on exit\n"
        "                   (same as WHEELS_METRICS=PATH)\n"
        "  --trace PATH     write a Chrome trace_event file on exit\n"
        "                   (same as WHEELS_TRACE=PATH)\n";
  return code;
}

long parse_long_or_exit(const std::string& text, const char* opt) {
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || v < 0) {
    std::cerr << "wheels_campaign: invalid value '" << text << "' for "
              << opt << "\n";
    std::exit(2);
  }
  return v;
}

struct Options {
  std::string command;
  std::string dir;
  std::string out = ".";
  std::string scenario = "paper-default";
  int stride = 8;
  int apps_stride = 10;
  std::optional<std::uint64_t> seed;  // --seed: overrides the scenario's
  int jobs = 0;  // 0 = resolve from WHEELS_JOBS
  bool skip_apps = false;
  bool skip_static = false;
  std::string metrics_path;  // --metrics: CLI twin of WHEELS_METRICS
  std::string trace_path;    // --trace: CLI twin of WHEELS_TRACE
};

Options parse_options(int argc, char** argv) {
  if (argc < 2) std::exit(usage(std::cerr, 2));
  Options o;
  o.command = argv[1];
  if (o.command == "-h" || o.command == "--help") {
    std::exit(usage(std::cout, 0));
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "wheels_campaign: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dir") {
      o.dir = value();
    } else if (arg == "--out") {
      o.out = value();
    } else if (arg == "--scenario") {
      o.scenario = value();
    } else if (arg == "--stride") {
      o.stride = static_cast<int>(
          std::max(1L, parse_long_or_exit(value(), "--stride")));
    } else if (arg == "--apps-stride") {
      o.apps_stride = static_cast<int>(
          std::max(1L, parse_long_or_exit(value(), "--apps-stride")));
    } else if (arg == "--seed") {
      o.seed =
          static_cast<std::uint64_t>(parse_long_or_exit(value(), "--seed"));
    } else if (arg == "--jobs") {
      o.jobs = static_cast<int>(parse_long_or_exit(value(), "--jobs"));
    } else if (arg == "--skip-apps") {
      o.skip_apps = true;
    } else if (arg == "--skip-static") {
      o.skip_static = true;
    } else if (arg == "--metrics") {
      o.metrics_path = value();
    } else if (arg == "--trace") {
      o.trace_path = value();
    } else if (arg == "-h" || arg == "--help") {
      std::exit(usage(std::cout, 0));
    } else {
      std::cerr << "wheels_campaign: unknown option '" << arg << "'\n";
      std::exit(usage(std::cerr, 2));
    }
  }
  return o;
}

scenario::ScenarioSpec scenario_spec(const Options& o) {
  try {
    scenario::ScenarioSpec spec = scenario::load_scenario(o.scenario);
    if (o.seed) spec.seed = *o.seed;
    return spec;
  } catch (const std::exception& e) {
    std::cerr << "wheels_campaign: " << e.what() << "\n";
    std::exit(2);
  }
}

trip::CampaignConfig campaign_config(const Options& o) {
  return trip::CampaignConfig::from_scenario(scenario_spec(o), o.stride);
}

apps::AppCampaignConfig app_config(const Options& o) {
  return apps::AppCampaignConfig::from_scenario(scenario_spec(o),
                                                o.apps_stride);
}

// --- list-scenarios ---------------------------------------------------------

int cmd_list_scenarios() {
  TextTable t({"name", "waypoints", "description"});
  for (const auto& spec : scenario::builtin_scenarios()) {
    t.add_row({spec.name, std::to_string(spec.route.waypoints.size()),
               spec.description});
  }
  t.print(std::cout);
  std::cout << "pass --scenario NAME (or a path to a scenario JSON file) "
               "to generate/export-csv\n";
  return 0;
}

// --- generate ---------------------------------------------------------------

int cmd_generate(const Options& o) {
  dataset::ProviderOptions popts;
  popts.cache_dir = o.dir;
  popts.verbose = true;
  popts.jobs = o.jobs;
  dataset::CampaignProvider provider(popts);
  const auto cfg = campaign_config(o);
  const auto acfg = app_config(o);

  // Materialize every requested dataset up front (concurrently when --jobs
  // or WHEELS_JOBS allows), then print the report from the warm memo: the
  // stdout is identical for every jobs value.
  std::vector<std::function<void()>> work;
  work.emplace_back([&] { provider.load_or_run(cfg); });
  if (!o.skip_static) {
    for (auto op : ran::kAllOperators) {
      work.emplace_back([&, op] { provider.load_or_run_static(cfg, op); });
    }
  }
  if (!o.skip_apps) {
    work.emplace_back([&] { provider.load_or_run_apps(acfg); });
    if (!o.skip_static) {
      for (auto op : ran::kAllOperators) {
        work.emplace_back(
            [&, op] { provider.load_or_run_apps_static(acfg, op); });
      }
    }
  }
  parallel_for_each(provider.jobs(), work.size(),
                    [&](std::size_t i) { work[i](); });

  std::cout << "dataset cache: " << provider.cache().dir() << "\n";
  std::cout << "scenario: " << cfg.spec.name << "\n";
  const auto& res = provider.load_or_run(cfg);
  std::cout << "campaign (stride " << cfg.cycle_stride << "): "
            << res.for_op(ran::OperatorId::Verizon).kpi.size()
            << " KPI samples/op over " << res.days << " days\n";
  if (!o.skip_static) {
    for (auto op : ran::kAllOperators) {
      const auto& sb = provider.load_or_run_static(cfg, op);
      std::cout << "static baseline " << to_string(op) << ": "
                << sb.dl_tput_mbps.size() << " DL samples over "
                << sb.cities_tested << " cities\n";
    }
  }
  if (!o.skip_apps) {
    const auto& ares = provider.load_or_run_apps(acfg);
    std::cout << "app campaign (stride " << acfg.cycle_stride << "): "
              << ares.for_op(ran::OperatorId::Verizon).size()
              << " app runs/op\n";
    if (!o.skip_static) {
      for (auto op : ran::kAllOperators) {
        const auto& sb = provider.load_or_run_apps_static(acfg, op);
        std::cout << "app static baseline " << to_string(op) << ": "
                  << sb.size() << " runs\n";
      }
    }
  }
  std::cout << "simulations run: " << provider.campaign_simulations()
            << " campaign, " << provider.baseline_simulations()
            << " baseline; disk hits: " << provider.disk_hits() << "\n";
  return 0;
}

// --- info -------------------------------------------------------------------

int cmd_info(const Options& o) {
  namespace fs = std::filesystem;
  const std::string dir = dataset::resolve_cache_dir(o.dir);
  std::cout << "dataset cache: " << dir << "\n";
  std::error_code ec;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".wds") files.push_back(entry.path());
  }
  if (ec) {
    std::cerr << "wheels_campaign: cannot read " << dir << ": "
              << ec.message() << "\n";
    return 1;
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cout << "(empty -- run `wheels_campaign generate` to warm it)\n";
    return 0;
  }

  // Per-operator container names carry an operator slug; recover the
  // OperatorId by re-deriving the canonical file name for each candidate.
  const auto op_for_file = [](const std::string& name, dataset::DatasetKind k,
                              std::uint64_t fingerprint) {
    for (auto op : ran::kAllOperators) {
      if (dataset::DatasetCache::file_name(k, fingerprint, op) == name) {
        return op;
      }
    }
    return ran::OperatorId::Verizon;  // kind is not per-operator
  };

  // Validation goes through DatasetCache::load -- the same instrumented
  // path the provider uses -- so the hit/miss/bytes counters below report
  // exactly what a bench run against this cache would see.
  dataset::DatasetCache cache(dir);
  TextTable t({"file", "kind", "fingerprint", "payload", "status"});
  int bad = 0;
  for (const auto& path : files) {
    std::ifstream is(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    const auto header = dataset::parse_header(bytes);
    if (!header) {
      t.add_row({path.filename().string(), "?", "?", "?", "bad header"});
      ++bad;
      continue;
    }
    char fp[17];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(header->fingerprint));
    const auto name = path.filename().string();
    const bool ok =
        cache
            .load(header->kind, header->fingerprint,
                  op_for_file(name, header->kind, header->fingerprint))
            .has_value();
    if (!ok) ++bad;
    t.add_row({name, std::string(dataset::to_string(header->kind)), fp,
               std::to_string(header->payload_bytes) + " B",
               ok ? "ok" : "CORRUPT"});
  }
  t.print(std::cout);
  std::cout << files.size() << " dataset(s), " << bad << " invalid\n";

  const obs::Snapshot snap = obs::Registry::global().snapshot();
  const auto counter = [&snap](std::string_view name) -> long long {
    const obs::MetricValue* mv = snap.find(name);
    return mv != nullptr ? static_cast<long long>(mv->value) : 0;
  };
  std::cout << "cache ops: " << counter("dataset.cache.hits") << " hits, "
            << counter("dataset.cache.misses") << " misses, "
            << counter("dataset.cache.bytes_read") << " bytes read\n";
  return bad == 0 ? 0 : 1;
}

// --- export-csv -------------------------------------------------------------

int cmd_export_csv(const Options& o) {
  dataset::ProviderOptions popts;
  popts.cache_dir = o.dir;
  popts.verbose = true;
  dataset::CampaignProvider provider(popts);
  const auto cfg = campaign_config(o);
  const auto& res = provider.load_or_run(cfg);

  std::filesystem::create_directories(o.out);
  const logsync::LogClock utc{logsync::ClockKind::Utc, {}};
  auto stamp = [&](SimTime t) { return logsync::format_timestamp(t, utc); };
  std::size_t rows = 0;

  auto open_csv = [&](const std::string& name,
                      const std::vector<std::string>& header) {
    auto os = std::make_unique<std::ofstream>(o.out + "/" + name);
    CsvWriter(*os).write_row(header);
    return os;
  };

  {
    auto os = open_csv(
        "kpi.csv", {"utc_time", "operator", "test", "test_id", "pos_km",
                    "speed_mph", "timezone", "tech", "rsrp_dbm", "mcs",
                    "bler", "num_cc", "tput_mbps", "handovers", "server"});
    CsvWriter w(*os);
    for (const auto& log : res.logs) {
      for (const auto& s : log.kpi) {
        w.write_row({stamp(s.time), std::string(to_string(s.op)),
                     std::string(to_string(s.test)),
                     std::to_string(s.test_id),
                     fmt(s.position.kilometers(), 3), fmt(s.speed.value, 1),
                     std::string(to_string(s.tz)),
                     s.connected ? std::string(to_string(s.tech)) : "none",
                     fmt(s.rsrp_dbm, 1), fmt(s.mcs, 1), fmt(s.bler, 3),
                     fmt(s.num_cc, 1), fmt(s.tput_mbps, 3),
                     std::to_string(s.handovers),
                     std::string(to_string(s.server))});
        ++rows;
      }
    }
  }
  {
    auto os = open_csv("rtt.csv",
                       {"utc_time", "operator", "test_id", "pos_km",
                        "speed_mph", "success", "rtt_ms", "tech", "server"});
    CsvWriter w(*os);
    for (const auto& log : res.logs) {
      for (const auto& s : log.rtt) {
        w.write_row({stamp(s.time), std::string(to_string(s.op)),
                     std::to_string(s.test_id),
                     fmt(s.position.kilometers(), 3), fmt(s.speed.value, 1),
                     s.success ? "1" : "0", fmt(s.rtt_ms, 3),
                     s.connected ? std::string(to_string(s.tech)) : "none",
                     std::string(to_string(s.server))});
        ++rows;
      }
    }
  }
  {
    auto os = open_csv("passive.csv",
                       {"utc_time", "operator", "pos_km", "speed_mph",
                        "timezone", "tech", "cell"});
    CsvWriter w(*os);
    for (const auto& log : res.logs) {
      for (const auto& s : log.passive) {
        w.write_row({stamp(s.time), std::string(to_string(s.op)),
                     fmt(s.position.kilometers(), 3), fmt(s.speed.value, 1),
                     std::string(to_string(s.tz)),
                     s.connected ? std::string(to_string(s.tech)) : "none",
                     std::to_string(s.cell)});
        ++rows;
      }
    }
  }
  {
    auto os = open_csv(
        "tests.csv",
        {"utc_start", "operator", "test", "test_id", "duration_ms",
         "start_km", "distance_km", "server", "mean", "stddev", "samples",
         "handovers", "frac_high_speed_5g", "bytes"});
    CsvWriter w(*os);
    for (const auto& log : res.logs) {
      for (const auto& s : log.tests) {
        w.write_row(
            {stamp(s.start), std::string(to_string(s.op)),
             std::string(to_string(s.test)), std::to_string(s.test_id),
             fmt(s.duration.value, 0), fmt(s.start_position.kilometers(), 3),
             fmt(s.distance.kilometers(), 3),
             std::string(to_string(s.server)), fmt(s.mean, 3),
             fmt(s.stddev, 3), std::to_string(s.samples),
             std::to_string(s.handovers), fmt(s.frac_high_speed_5g, 4),
             fmt(s.bytes_transferred, 0)});
        ++rows;
      }
    }
  }
  {
    auto os = open_csv("handovers.csv",
                       {"utc_time", "operator", "source", "duration_ms",
                        "from_tech", "to_tech", "from_cell", "to_cell",
                        "pos_km"});
    CsvWriter w(*os);
    for (const auto& log : res.logs) {
      auto dump = [&](const std::vector<ran::HandoverRecord>& hos,
                      const char* source) {
        for (const auto& h : hos) {
          w.write_row({stamp(h.time), std::string(to_string(log.op)),
                       source, fmt(h.duration.value, 1),
                       std::string(to_string(h.from_tech)),
                       std::string(to_string(h.to_tech)),
                       std::to_string(h.from_cell),
                       std::to_string(h.to_cell),
                       fmt(h.position.kilometers(), 3)});
          ++rows;
        }
      };
      dump(log.test_handovers, "test");
      dump(log.passive_handovers, "passive");
    }
  }

  std::cout << "wrote " << rows << " rows to " << o.out
            << "/{kpi,rtt,passive,tests,handovers}.csv (stride "
            << cfg.cycle_stride << ", seed " << cfg.seed << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_options(argc, argv);
  // Env vars first, CLI flags second: --metrics/--trace win when both name
  // a path. Exports flush at process exit.
  obs::init_from_env();
  if (!o.metrics_path.empty()) obs::set_metrics_export_path(o.metrics_path);
  if (!o.trace_path.empty()) obs::set_trace_export_path(o.trace_path);
  if (o.command == "generate") return cmd_generate(o);
  if (o.command == "info") return cmd_info(o);
  if (o.command == "export-csv") return cmd_export_csv(o);
  if (o.command == "list-scenarios") return cmd_list_scenarios();
  std::cerr << "wheels_campaign: unknown command '" << o.command << "'\n";
  return usage(std::cerr, 2);
}
