#!/usr/bin/env python3
"""wheels-arch: compile-free include-graph architecture analyzer.

PR 2 split simulate from analyze and PR 3 sharded the campaign engine;
both stay safe only while the module boundaries they rely on hold. This
tool parses every `#include "..."` edge under src/, tools/, bench/,
tests/ and examples/ (no compiler needed) and enforces the architecture
mechanically:

  layer-violation   an edge between two src/ modules that the layer
                    manifest (tools/layers.json) does not allow. The
                    manifest maps each module to the modules it may
                    include from; `core` must stay leaf-free, `analysis`
                    sits on top. Reported per offending #include line.
  include-cycle     any cycle in the file-level include graph (reported
                    with the full cycle path). Cycles make header
                    self-sufficiency ill-defined and break incremental
                    builds in confusing ways.
  orphan-header     a src/**/*.h that no non-test translation unit
                    (a .cpp under src/, tools/, bench/ or examples/)
                    transitively includes. Dead public headers rot
                    silently; either delete them or allowlist them in
                    the manifest with a reason.
  layer-manifest    the manifest itself is broken: a src/ module missing
                    from it, an unknown module named in it, or declared
                    edges that are not a DAG.

Usage:
  tools/wheels_arch.py [--root DIR] [--manifest FILE]
                       [--format text|json|sarif]
  tools/wheels_arch.py --dot          # DOT module graph on stdout

`--dot` writes a Graphviz digraph of the module-level include graph
(annotated with per-edge include counts) and exits 0 without checking
rules; pipe it through `dot -Tsvg` for docs.

Exits 0 when clean, 1 when any finding fires, 2 on usage/manifest-read
errors.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import sarif  # noqa: E402  (sibling module, shared with the other tools)

RULES = {
    "layer-violation":
        "include edge between src/ modules that the layer manifest forbids",
    "include-cycle":
        "cycle in the file-level include graph",
    "orphan-header":
        "src/ header no non-test translation unit reaches",
    "layer-manifest":
        "tools/layers.json is broken or out of date",
}

SCAN_DIRS = ("src", "tools", "bench", "tests", "examples")
CPP_EXTENSIONS = (".cpp", ".h", ".hpp", ".cc")
# Fixture miniature repos are independent trees checked by their own
# tests; never mix their edges into the real graph.
SKIP_DIR_PARTS = ("lint_fixtures", "fixtures")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
TEST_DIR = "tests/"


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def findings_to_json(findings: list[Finding], files_scanned: int) -> str:
    return json.dumps(
        {
            "tool": "wheels-arch",
            "files_scanned": files_scanned,
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "message": f.message,
                } for f in findings
            ],
        },
        indent=2,
        sort_keys=True)


def gather_files(root: str) -> list[str]:
    """Repo-relative paths of every C++ source under the scan dirs,
    sorted for deterministic reports."""
    files = []
    for scan in SCAN_DIRS:
        base = os.path.join(root, scan)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [
                d for d in dirnames
                if d not in SKIP_DIR_PARTS and not d.startswith("build")
            ]
            for name in filenames:
                if name.endswith(CPP_EXTENSIONS):
                    full = os.path.join(dirpath, name)
                    files.append(
                        os.path.relpath(full, root).replace(os.sep, "/"))
    return sorted(files)


def parse_includes(root: str, relpath: str) -> list[tuple[int, str]]:
    """(line, include-text) pairs for every quoted include. Block
    comments around directives are rare enough that a line scan with a
    /* */ state machine is exact for this codebase."""
    out = []
    in_block = False
    with open(os.path.join(root, relpath), encoding="utf-8",
              errors="replace") as f:
        for lineno, line in enumerate(f, start=1):
            if in_block:
                end = line.find("*/")
                if end == -1:
                    continue
                line = line[end + 2:]
                in_block = False
            stripped = line.split("//")[0]
            start = stripped.find("/*")
            if start != -1:
                if "*/" not in stripped[start:]:
                    in_block = True
                stripped = stripped[:start]
            m = INCLUDE_RE.match(stripped)
            if m:
                out.append((lineno, m.group(1)))
    return out


def resolve_include(root: str, includer: str, inc: str,
                    known: set[str]) -> str | None:
    """Mimic the build's quoted-include lookup: first relative to the
    including file's directory, then relative to src/ (the one public
    include root). Returns the repo-relative target, or None for
    system/external headers."""
    base = os.path.dirname(includer)
    local = os.path.normpath(os.path.join(base, inc)).replace(os.sep, "/")
    if local in known:
        return local
    qualified = os.path.normpath(os.path.join("src", inc)).replace(os.sep, "/")
    if qualified in known:
        return qualified
    return None


def module_of(relpath: str) -> str | None:
    """src/<module>/... -> <module>; None outside src/."""
    parts = relpath.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


# --- manifest ---------------------------------------------------------------


def load_manifest(path: str) -> dict:
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def check_manifest(manifest: dict, src_modules: set[str],
                   manifest_rel: str) -> list[Finding]:
    """The manifest must name exactly the src/ modules and its declared
    edges must form a DAG; everything downstream trusts it."""
    findings = []
    layers = manifest.get("layers", {})
    declared = set(layers)
    for missing in sorted(src_modules - declared):
        findings.append(
            Finding(
                manifest_rel, 1, "layer-manifest",
                f"src module '{missing}' is missing from the layer "
                "manifest; every directory under src/ must declare its "
                "allowed dependencies"))
    for unknown in sorted(declared - src_modules):
        findings.append(
            Finding(
                manifest_rel, 1, "layer-manifest",
                f"manifest names module '{unknown}' but src/{unknown}/ "
                "does not exist"))
    for mod, deps in sorted(layers.items()):
        for dep in deps:
            if dep not in declared:
                findings.append(
                    Finding(
                        manifest_rel, 1, "layer-manifest",
                        f"module '{mod}' lists unknown dependency "
                        f"'{dep}'"))
    # Declared-edge DAG check (colour DFS over the manifest graph).
    colour: dict[str, int] = {}  # 0 in-progress, 1 done

    def visit(mod: str, trail: list[str]) -> list[str] | None:
        colour[mod] = 0
        for dep in layers.get(mod, []):
            if dep not in layers:
                continue
            if colour.get(dep) == 0:
                return trail + [mod, dep]
            if dep not in colour:
                cyc = visit(dep, trail + [mod])
                if cyc:
                    return cyc
        colour[mod] = 1
        return None

    for mod in sorted(layers):
        if mod not in colour:
            cyc = visit(mod, [])
            if cyc:
                tail = cyc[-1]
                loop = cyc[cyc.index(tail):]
                findings.append(
                    Finding(
                        manifest_rel, 1, "layer-manifest",
                        "declared layer dependencies are cyclic: "
                        + " -> ".join(loop)))
                break
    return findings


# --- rules ------------------------------------------------------------------


def check_layering(edges: list[tuple[str, int, str]],
                   layers: dict[str, list[str]]) -> list[Finding]:
    findings = []
    for src_file, line, dst_file in edges:
        src_mod = module_of(src_file)
        dst_mod = module_of(dst_file)
        if src_mod is None or dst_mod is None or src_mod == dst_mod:
            continue
        if src_mod in layers and dst_mod not in layers.get(src_mod, []):
            allowed = ", ".join(layers[src_mod]) or "(nothing: leaf layer)"
            findings.append(
                Finding(
                    src_file, line, "layer-violation",
                    f"module '{src_mod}' may not include from '{dst_mod}' "
                    f"(allowed: {allowed}); fix the dependency or amend "
                    "tools/layers.json with a justification"))
    return findings


def check_cycles(adj: dict[str, list[tuple[int, str]]]) -> list[Finding]:
    """Colour DFS over the file graph; each back edge yields one finding
    carrying the full cycle path. Deterministic: nodes and neighbours are
    visited in sorted order, and each distinct cycle is reported once at
    its lexicographically-first member."""
    colour: dict[str, int] = {}  # 0 in-progress, 1 done
    findings = []
    reported: set[frozenset[str]] = set()

    def visit(node: str, trail: list[tuple[str, int]]) -> None:
        colour[node] = 0
        for line, dst in sorted(adj.get(node, []), key=lambda e: (e[1], e[0])):
            if colour.get(dst) == 0:
                loop = [p for p, _ in trail] + [node]
                loop = loop[loop.index(dst):] + [dst]
                key = frozenset(loop)
                if key not in reported:
                    reported.add(key)
                    findings.append(
                        Finding(
                            node, line, "include-cycle",
                            "include cycle: " + " -> ".join(loop)))
            elif dst not in colour:
                visit(dst, trail + [(node, line)])
        colour[node] = 1

    for node in sorted(adj):
        if node not in colour:
            visit(node, [])
    return findings


def check_orphans(files: list[str], adj: dict[str, list[tuple[int, str]]],
                  allowlist: set[str]) -> list[Finding]:
    """A public header earns its keep by being reachable from a non-test
    translation unit. BFS from every .cpp outside tests/, then flag the
    unreached src/ headers."""
    reached: set[str] = set()
    queue = [
        f for f in files
        if f.endswith((".cpp", ".cc")) and not f.startswith(TEST_DIR)
    ]
    reached.update(queue)
    while queue:
        node = queue.pop()
        for _, dst in adj.get(node, []):
            if dst not in reached:
                reached.add(dst)
                queue.append(dst)
    findings = []
    for f in files:
        if not f.startswith("src/") or not f.endswith((".h", ".hpp")):
            continue
        if f in reached or f in allowlist:
            continue
        findings.append(
            Finding(
                f, 1, "orphan-header",
                "no non-test translation unit (src/tools/bench/examples "
                ".cpp) transitively includes this header; delete it or "
                "add it to orphan_allowlist in tools/layers.json with a "
                "reason"))
    return findings


# --- DOT export -------------------------------------------------------------


def render_dot(edges: list[tuple[str, int, str]],
               layers: dict[str, list[str]]) -> str:
    """Module-level digraph: one node per src/ module (plus the non-src
    scan roots as consumers), one edge per dependency annotated with its
    include count."""
    counts: dict[tuple[str, str], int] = {}
    for src_file, _, dst_file in edges:
        src_mod = module_of(src_file) or src_file.split("/")[0]
        dst_mod = module_of(dst_file) or dst_file.split("/")[0]
        if src_mod == dst_mod:
            continue
        counts[(src_mod, dst_mod)] = counts.get((src_mod, dst_mod), 0) + 1
    lines = [
        "digraph wheels_modules {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    modules = sorted(set(layers) | {m for e in counts for m in e})
    for mod in modules:
        style = "" if mod in layers else ", style=dashed"
        lines.append(f'  "{mod}" [label="{mod}"{style}];')
    for (src_mod, dst_mod), n in sorted(counts.items()):
        style = "" if src_mod in layers and dst_mod in layers \
            else " style=dashed,"
        lines.append(
            f'  "{src_mod}" -> "{dst_mod}" [{style.strip()} label="{n}"];')
    lines.append("}")
    return "\n".join(lines)


# --- driver -----------------------------------------------------------------


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root to analyze (default: repo "
                        "containing this script)")
    parser.add_argument("--manifest", default=None,
                        help="layer manifest path (default: "
                        "<root>/tools/layers.json)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="findings output format (default: text)")
    parser.add_argument("--dot", action="store_true",
                        help="emit the DOT module graph and exit")
    args = parser.parse_args(argv)

    root = os.path.abspath(
        args.root
        or os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    manifest_path = args.manifest or os.path.join(root, "tools", "layers.json")
    try:
        manifest = load_manifest(manifest_path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"wheels-arch: cannot read manifest {manifest_path}: {exc}",
              file=sys.stderr)
        return 2
    layers: dict[str, list[str]] = manifest.get("layers", {})
    allowlist = set(manifest.get("orphan_allowlist", []))

    files = gather_files(root)
    if not files:
        print(f"wheels-arch: no C++ sources found under {root}",
              file=sys.stderr)
        return 2
    known = set(files)

    # Resolved include edges: (includer, line, target), plus adjacency.
    edges: list[tuple[str, int, str]] = []
    adj: dict[str, list[tuple[int, str]]] = {}
    for relpath in files:
        for line, inc in parse_includes(root, relpath):
            target = resolve_include(root, relpath, inc, known)
            if target is None:
                continue
            edges.append((relpath, line, target))
            adj.setdefault(relpath, []).append((line, target))

    if args.dot:
        print(render_dot(edges, layers))
        return 0

    src_modules = {
        d for d in (os.listdir(os.path.join(root, "src"))
                    if os.path.isdir(os.path.join(root, "src")) else [])
        if os.path.isdir(os.path.join(root, "src", d))
    }
    manifest_rel = os.path.relpath(manifest_path, root).replace(os.sep, "/")

    findings = check_manifest(manifest, src_modules, manifest_rel)
    manifest_broken = bool(findings)
    if not manifest_broken:
        findings += check_layering(edges, layers)
    findings += check_cycles(adj)
    if not manifest_broken:
        findings += check_orphans(files, adj, allowlist)

    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    if args.format == "json":
        print(findings_to_json(findings, len(files)))
    elif args.format == "sarif":
        print(sarif.render_sarif("wheels-arch", RULES, findings))
    else:
        for f in findings:
            print(f.render())
        if findings:
            print(f"wheels-arch: {len(findings)} finding(s) in "
                  f"{len({f.path for f in findings})} file(s)")
        else:
            print(f"wheels-arch: OK ({len(files)} files, "
                  f"{len(edges)} include edges)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
